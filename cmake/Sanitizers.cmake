# ASan + UBSan toggle, applied globally so the library, tests, and tools all
# agree on the runtime (mixing sanitized and unsanitized TUs breaks ODR
# checking and container annotations).
option(DAUCT_SANITIZE "Build with AddressSanitizer + UBSan" OFF)

if(DAUCT_SANITIZE)
  add_compile_options(-fsanitize=address,undefined -fno-omit-frame-pointer)
  add_link_options(-fsanitize=address,undefined)
endif()
