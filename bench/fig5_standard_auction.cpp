// Figure 5 reproduction: running time for the standard (VCG) auction vs
// number of users, for parallelism p = 1 (centralized trusted auctioneer),
// p = 2 (m = 8, k = 3) and p = 4 (m = 8, k = 1).
//
// Paper setup (§6.3): same bid/demand distributions as Fig. 4; provider
// capacity scaled by U[0, 0.25] of the demanded total so roughly a quarter
// of the users win; m = 8 providers. The allocation algorithm is the
// (1−ε)-approximate welfare maximizer with Clarke payments — payments are
// one welfare re-solve per user, which is what the groups parallelise.
//
// Expected shape: superlinear growth in n; the distributed runs *beat* the
// centralized one despite coordination overhead, by ≈ the parallelism level
// p (compute-dominated; paper Fig. 5 reports ~400 s vs ~100 s at n = 125 —
// our absolute numbers differ, the ordering and speedup factors must not).
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dauct;
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1;
  const double epsilon = 0.06;

  std::printf("# Figure 5: standard auction running time (seconds) vs users\n");
  std::printf("# epsilon=%.2f, m=8 providers; payments parallelised over p groups\n",
              epsilon);
  const std::vector<std::size_t> user_counts = {25, 50, 75, 100, 125};

  std::vector<std::string> cols;
  for (std::size_t n : user_counts) cols.push_back("n=" + std::to_string(n));
  bench::print_header("series", cols);

  auction::StandardAuctionParams params;
  params.epsilon = epsilon;
  auto adapter = std::make_shared<core::StandardAuctionAdapter>(params);

  // p = 1: the centralized trusted auctioneer.
  {
    core::CentralizedAuctioneer trusted(adapter);
    std::vector<double> cells;
    for (std::size_t n : user_counts) {
      const auto wl = auction::standard_auction_workload(n, 8);
      cells.push_back(bench::centralized_makespan_s(trusted, wl, rounds, 7,
                                                    sim::CostMode::kMeasured));
    }
    bench::print_row("p=1 (central)", cells);
  }

  // Distributed: p = 2 (k = 3) and p = 4 (k = 1).
  struct Series {
    std::size_t k;
    std::size_t p;
  };
  for (const Series s : {Series{3, 2}, Series{1, 4}}) {
    std::vector<double> cells;
    for (std::size_t n : user_counts) {
      core::AuctioneerSpec spec;
      spec.m = 8;
      spec.k = s.k;
      spec.num_bidders = n;
      core::DistributedAuctioneer auctioneer(spec, adapter);
      const auto wl = auction::standard_auction_workload(n, 8);
      cells.push_back(bench::distributed_makespan_s(auctioneer, wl, rounds, 7,
                                                    sim::CostMode::kMeasured));
    }
    bench::print_row("p=" + std::to_string(s.p) + " (k=" + std::to_string(s.k) + ")",
                     cells);
  }

  std::printf("# expectation: p=4 < p=2 < p=1 at large n (speedup ≈ p);\n");
  std::printf("# sharp superlinear growth in n (compute-dominated; paper Fig. 5)\n");
  return 0;
}
