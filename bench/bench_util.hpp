// Shared helpers for the figure-reproduction benches.
#pragma once

#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"

namespace dauct::bench {

/// Mean of seconds.
inline double mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

/// One cell of a running-time table, averaged over `rounds` seeded runs.
/// Returns the mean client-observed makespan in seconds; asserts every run
/// reached (x, p).
inline double distributed_makespan_s(const core::DistributedAuctioneer& auctioneer,
                                     const auction::WorkloadParams& workload,
                                     std::size_t rounds, std::uint64_t seed0,
                                     sim::CostMode cost_mode) {
  std::vector<double> times;
  times.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    crypto::Rng rng(seed0 + r);
    const auto instance = auction::generate(workload, rng);
    runtime::SimRunConfig cfg;
    cfg.seed = seed0 * 1000 + r;
    cfg.cost_mode = cost_mode;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, instance);
    if (!run.global_outcome.ok()) {
      std::fprintf(stderr, "bench: distributed run aborted (%s)\n",
                   abort_reason_name(run.global_outcome.bottom().reason));
      continue;
    }
    times.push_back(sim::to_seconds(run.makespan));
  }
  return mean(times);
}

inline double centralized_makespan_s(const core::CentralizedAuctioneer& auctioneer,
                                     const auction::WorkloadParams& workload,
                                     std::size_t rounds, std::uint64_t seed0,
                                     sim::CostMode cost_mode) {
  std::vector<double> times;
  times.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) {
    crypto::Rng rng(seed0 + r);
    const auto instance = auction::generate(workload, rng);
    runtime::SimRunConfig cfg;
    cfg.seed = seed0 * 1000 + r;
    cfg.cost_mode = cost_mode;
    const auto run = runtime::SimRuntime(cfg).run_centralized(auctioneer, instance);
    if (!run.global_outcome.ok()) continue;
    times.push_back(sim::to_seconds(run.makespan));
  }
  return mean(times);
}

/// Print a table row: first column fixed-width label, then %.4f cells.
inline void print_row(const std::string& label, const std::vector<double>& cells) {
  std::printf("%-14s", label.c_str());
  for (double c : cells) std::printf(" %10.4f", c);
  std::printf("\n");
}

inline void print_header(const std::string& label,
                         const std::vector<std::string>& columns) {
  std::printf("%-14s", label.c_str());
  for (const auto& c : columns) std::printf(" %10s", c.c_str());
  std::printf("\n");
}

}  // namespace dauct::bench
