// Ablation G: the price of truthfulness in the double auction.
//
// The paper's double auction (Zheng et al. flavour) "provides the above
// properties [truthfulness, budget balance] at the expense of social
// welfare". This ablation quantifies the expense: welfare of the McAfee
// trade-reduction mechanism vs the welfare-optimal water-filling baseline
// (pay-as-bid, not truthful), over the paper's workload, and demonstrates
// that the optimal mechanism is indeed manipulable (a sampled bidder can
// gain by underbidding).
#include <cstdio>

#include "auction/double_auction.hpp"
#include "auction/workload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace dauct;

  std::printf("# Ablation G: welfare retained by trade reduction vs optimal\n");
  bench::print_header("market", {"optimal", "mcafee", "retained"});

  for (std::size_t n : {20u, 50u, 100u, 200u, 500u}) {
    double opt_total = 0, tr_total = 0;
    const std::size_t runs = 20;
    for (std::uint64_t seed = 1; seed <= runs; ++seed) {
      crypto::Rng rng(seed * 7 + n);
      const auto inst = auction::generate(auction::double_auction_workload(n, 8), rng);
      opt_total += auction::double_auction_welfare(
                       inst, auction::run_optimal_waterfill(inst).allocation)
                       .to_double();
      tr_total += auction::double_auction_welfare(
                      inst, auction::run_double_auction(inst).allocation)
                      .to_double();
    }
    bench::print_row("n=" + std::to_string(n),
                     {opt_total / runs, tr_total / runs,
                      tr_total / (opt_total > 0 ? opt_total : 1)});
  }

  std::printf("\n# manipulability of the optimal (pay-as-bid) mechanism:\n");
  // A winning buyer shades its bid toward the clearing region and pays less
  // for (almost) the same allocation — impossible under McAfee pricing.
  crypto::Rng rng(99);
  const auto inst = auction::generate(auction::double_auction_workload(30, 5), rng);
  const auto honest = auction::run_optimal_waterfill(inst);
  int gainers = 0;
  for (BidderId i = 0; i < 30; ++i) {
    const Money honest_u =
        auction::user_utility(inst, auction::AuctionOutcome(honest), i);
    Money best = honest_u;
    for (double f : {0.99, 0.9, 0.8, 0.7}) {
      auction::AuctionInstance lied = inst;
      lied.bids[i].unit_value =
          Money::from_double(inst.bids[i].unit_value.to_double() * f);
      const auto res = auction::run_optimal_waterfill(lied);
      best = max(best, auction::user_utility(inst, auction::AuctionOutcome(res), i));
    }
    if (best > honest_u + Money::from_micros(10)) ++gainers;
  }
  std::printf("bidders that gain by underbidding (optimal mech): %d / 30\n", gainers);
  std::printf("bidders that gain by underbidding (mcafee mech):  0 / 30 "
              "(verified by tests/double_auction_test.cpp)\n");
  std::printf("# expectation: trade reduction retains ~94%% of optimal welfare on\n");
  std::printf("# the paper's workload; optimal mechanism manipulable, McAfee not\n");
  return 0;
}
