// Ablation B: building-block round latency vs provider count.
//
// Virtual-time cost of one invocation of each framework block (input
// validation, common coin, data transfer) as m grows — the constant
// coordination floor every distributed run pays (visible as the flat region
// of Fig. 4/5 at small n).
#include <cstdio>

#include "bench_util.hpp"
#include "blocks/common_coin.hpp"
#include "blocks/data_transfer.hpp"
#include "blocks/input_validation.hpp"
#include "net/sim_transport.hpp"

namespace {

using namespace dauct;

template <typename MakeBlock, typename StartBlock>
double run_block(std::size_t m, std::uint64_t seed, MakeBlock make, StartBlock start) {
  sim::Scheduler scheduler(m, sim::LatencyModel::community(), seed);
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints;
  using Block = decltype(make(std::declval<blocks::Endpoint&>()));
  std::vector<Block> nodes;
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(std::make_unique<net::SimEndpoint>(scheduler, j, m, seed + j));
    nodes.push_back(make(*endpoints[j]));
    auto* node = nodes.back().get();
    scheduler.set_deliver(j, [node](const net::Message& msg) { node->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) start(*nodes[j], j);
  scheduler.run();
  sim::SimTime last = 0;
  for (NodeId j = 0; j < m; ++j) last = std::max(last, scheduler.clock(j));
  return sim::to_seconds(last);
}

}  // namespace

int main() {
  std::printf("# Ablation B: per-block round latency (virtual seconds) vs m\n");
  const std::vector<std::size_t> provider_counts = {3, 4, 5, 6, 8, 10, 12, 16};

  std::vector<std::string> cols;
  for (std::size_t m : provider_counts) cols.push_back("m=" + std::to_string(m));
  bench::print_header("block", cols);

  const Bytes payload(512, 0xab);  // a representative 512-byte task result

  {
    std::vector<double> cells;
    for (std::size_t m : provider_counts) {
      cells.push_back(run_block(
          m, 11,
          [](blocks::Endpoint& ep) {
            return std::make_unique<blocks::InputValidation>(ep, "iv");
          },
          [&](blocks::InputValidation& b, NodeId) { b.start(payload); }));
    }
    bench::print_row("input-valid", cells);
  }
  {
    std::vector<double> cells;
    for (std::size_t m : provider_counts) {
      cells.push_back(run_block(
          m, 13,
          [](blocks::Endpoint& ep) {
            return std::make_unique<blocks::CommonCoin>(ep, "coin");
          },
          [](blocks::CommonCoin& b, NodeId) {
            b.start(blocks::DistributionSpec::seed64());
          }));
    }
    bench::print_row("common-coin", cells);
  }
  {
    std::vector<double> cells;
    for (std::size_t m : provider_counts) {
      // k+1 = 2 sources transfer to everyone.
      std::vector<NodeId> sources = {0, 1};
      std::vector<NodeId> receivers(m);
      for (NodeId j = 0; j < m; ++j) receivers[j] = j;
      cells.push_back(run_block(
          m, 17,
          [&](blocks::Endpoint& ep) {
            return std::make_unique<blocks::DataTransfer>(ep, "dt", sources,
                                                          receivers);
          },
          [&](blocks::DataTransfer& b, NodeId j) {
            b.start(j < 2 ? std::optional<Bytes>(payload) : std::nullopt);
          }));
    }
    bench::print_row("data-transfer", cells);
  }

  std::printf("# expectation: coin ≈ 2 rounds > validation ≈ 1 round ≈ transfer;\n");
  std::printf("# near-constant in m: these rounds ship digest-sized payloads, so\n");
  std::printf("# receive occupancy is negligible — this is the fixed coordination\n");
  std::printf("# floor of every distributed run (the small-n plateau of Figs. 4-5)\n");
  return 0;
}
