// Ablation D: crypto & serde microbenchmarks (vendored tinybench harness —
// no external benchmark library needed).
//
// The framework's per-message costs: SHA-256 (digest echoes, commitments,
// validation), HMAC tag derivation, commitment create/verify, bid codec and
// frame round trips, and the PRNG.
#include "tinybench.hpp"

#include "auction/double_auction.hpp"
#include "auction/workload.hpp"
#include "crypto/commitment.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "serde/auction_codec.hpp"
#include "serde/bitstream.hpp"

namespace {

using namespace dauct;
using tinybench::DoNotOptimize;
using tinybench::State;

void BM_Sha256(State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    DoNotOptimize(crypto::sha256(BytesView(data)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
TINYBENCH(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacTagDerivation(State& state) {
  for (auto _ : state) {
    DoNotOptimize(crypto::derive_tag({"dauct/common-coin", "alloc/coin"}));
  }
}
TINYBENCH(BM_HmacTagDerivation);

void BM_CommitAndVerify(State& state) {
  crypto::Rng rng(1);
  const crypto::Digest tag = crypto::derive_tag({"bench"});
  for (auto _ : state) {
    auto [c, o] = crypto::commit(tag, rng.next_u64(), rng);
    DoNotOptimize(crypto::verify(tag, c, o));
  }
}
TINYBENCH(BM_CommitAndVerify);

void BM_RngU64(State& state) {
  crypto::Rng rng(7);
  for (auto _ : state) DoNotOptimize(rng.next_u64());
}
TINYBENCH(BM_RngU64);

void BM_BidVectorCodec(State& state) {
  crypto::Rng rng(3);
  const auto inst = auction::generate(
      auction::double_auction_workload(static_cast<std::size_t>(state.range(0)), 8),
      rng);
  for (auto _ : state) {
    const Bytes enc = serde::encode_bid_vector(inst.bids);
    DoNotOptimize(serde::decode_bid_vector(BytesView(enc)));
  }
}
TINYBENCH(BM_BidVectorCodec)->Arg(100)->Arg(1000);

void BM_BitstreamRoundTrip(State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xc3);
  for (auto _ : state) {
    DoNotOptimize(serde::from_bits(serde::to_bits(BytesView(data))));
  }
}
TINYBENCH(BM_BitstreamRoundTrip)->Arg(20)->Arg(2000);

void BM_FrameRoundTrip(State& state) {
  net::Message msg{1, 2, "alloc/dt/3/val",
                   Bytes(static_cast<std::size_t>(state.range(0)), 0x11)};
  for (auto _ : state) {
    const Bytes frame = net::encode_frame(msg);
    DoNotOptimize(net::decode_frame(BytesView(frame)));
  }
}
TINYBENCH(BM_FrameRoundTrip)->Arg(64)->Arg(4096);

void BM_DoubleAuctionAlgorithm(State& state) {
  crypto::Rng rng(5);
  const auto inst = auction::generate(
      auction::double_auction_workload(static_cast<std::size_t>(state.range(0)), 8),
      rng);
  for (auto _ : state) {
    DoNotOptimize(auction::run_double_auction(inst));
  }
}
TINYBENCH(BM_DoubleAuctionAlgorithm)->Arg(100)->Arg(1000);

}  // namespace

TINYBENCH_MAIN
