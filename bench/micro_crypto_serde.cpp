// Ablation D: crypto & serde microbenchmarks (google-benchmark).
//
// The framework's per-message costs: SHA-256 (digest echoes, commitments,
// validation), HMAC tag derivation, commitment create/verify, bid codec and
// frame round trips, and the PRNG.
#include <benchmark/benchmark.h>

#include "auction/double_auction.hpp"
#include "auction/workload.hpp"
#include "crypto/commitment.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "serde/auction_codec.hpp"
#include "serde/bitstream.hpp"

namespace {

using namespace dauct;

void BM_Sha256(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sha256(BytesView(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacTagDerivation(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::derive_tag({"dauct/common-coin", "alloc/coin"}));
  }
}
BENCHMARK(BM_HmacTagDerivation);

void BM_CommitAndVerify(benchmark::State& state) {
  crypto::Rng rng(1);
  const crypto::Digest tag = crypto::derive_tag({"bench"});
  for (auto _ : state) {
    auto [c, o] = crypto::commit(tag, rng.next_u64(), rng);
    benchmark::DoNotOptimize(crypto::verify(tag, c, o));
  }
}
BENCHMARK(BM_CommitAndVerify);

void BM_RngU64(benchmark::State& state) {
  crypto::Rng rng(7);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_u64());
}
BENCHMARK(BM_RngU64);

void BM_BidVectorCodec(benchmark::State& state) {
  crypto::Rng rng(3);
  const auto inst = auction::generate(
      auction::double_auction_workload(static_cast<std::size_t>(state.range(0)), 8),
      rng);
  for (auto _ : state) {
    const Bytes enc = serde::encode_bid_vector(inst.bids);
    benchmark::DoNotOptimize(serde::decode_bid_vector(BytesView(enc)));
  }
}
BENCHMARK(BM_BidVectorCodec)->Arg(100)->Arg(1000);

void BM_BitstreamRoundTrip(benchmark::State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0xc3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(serde::from_bits(serde::to_bits(BytesView(data))));
  }
}
BENCHMARK(BM_BitstreamRoundTrip)->Arg(20)->Arg(2000);

void BM_FrameRoundTrip(benchmark::State& state) {
  net::Message msg{1, 2, "alloc/dt/3/val",
                   Bytes(static_cast<std::size_t>(state.range(0)), 0x11)};
  for (auto _ : state) {
    const Bytes frame = net::encode_frame(msg);
    benchmark::DoNotOptimize(net::decode_frame(BytesView(frame)));
  }
}
BENCHMARK(BM_FrameRoundTrip)->Arg(64)->Arg(4096);

void BM_DoubleAuctionAlgorithm(benchmark::State& state) {
  crypto::Rng rng(5);
  const auto inst = auction::generate(
      auction::double_auction_workload(static_cast<std::size_t>(state.range(0)), 8),
      rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(auction::run_double_auction(inst));
  }
}
BENCHMARK(BM_DoubleAuctionAlgorithm)->Arg(100)->Arg(1000);

}  // namespace
