// Ablation C: welfare solver quality & cost.
//
// (a) Welfare ratio of the (1−ε) scaled DP against the exact optimum on
//     small instances, sweeping ε.
// (b) Wall-clock cost of a full standard-auction run vs ε and n (the (1/ε)²
//     compute knob behind Fig. 5), plus the loser-short-circuit ablation.
#include <chrono>
#include <cstdio>

#include "auction/standard_auction.hpp"
#include "auction/workload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace dauct;
  using Clock = std::chrono::steady_clock;

  std::printf("# Ablation C(a): DP welfare ratio vs exact optimum (n=14, m=3)\n");
  bench::print_header("epsilon", {"mean-ratio", "min-ratio"});
  for (double eps : {0.5, 0.2, 0.1, 0.05}) {
    double sum = 0, min_ratio = 1.0;
    int counted = 0;
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      crypto::Rng rng(seed);
      const auto inst = auction::generate(auction::standard_auction_workload(14, 3), rng);
      const Money exact = auction::ExactSolver().solve_all(inst, 0).welfare;
      if (exact.is_zero()) continue;
      const Money dp = auction::ScaledDpSolver(eps).solve_all(inst, seed).welfare;
      const double ratio = dp.to_double() / exact.to_double();
      sum += ratio;
      min_ratio = std::min(min_ratio, ratio);
      ++counted;
    }
    bench::print_row("eps=" + std::to_string(eps).substr(0, 4),
                     {sum / counted, min_ratio});
  }

  std::printf("\n# Ablation C(b): full standard auction, seconds vs epsilon (m=4)\n");
  bench::print_header("epsilon", {"n=32", "n=64", "n=96"});
  for (double eps : {0.25, 0.12, 0.06}) {
    std::vector<double> cells;
    for (std::size_t n : {32u, 64u, 96u}) {
      crypto::Rng rng(7 + n);
      const auto inst =
          auction::generate(auction::standard_auction_workload(n, 4), rng);
      auction::StandardAuctionParams params;
      params.epsilon = eps;
      const auto t0 = Clock::now();
      (void)auction::run_standard_auction(inst, params);
      cells.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
    }
    bench::print_row("eps=" + std::to_string(eps).substr(0, 4), cells);
  }

  std::printf("\n# Ablation C(c): loser short-circuit optimization (m=4, eps=0.12)\n");
  bench::print_header("variant", {"n=32", "n=64", "n=96"});
  for (bool skip : {false, true}) {
    std::vector<double> cells;
    for (std::size_t n : {32u, 64u, 96u}) {
      crypto::Rng rng(7 + n);
      const auto inst =
          auction::generate(auction::standard_auction_workload(n, 4), rng);
      auction::StandardAuctionParams params;
      params.epsilon = 0.12;
      params.skip_loser_resolve = skip;
      const auto t0 = Clock::now();
      (void)auction::run_standard_auction(inst, params);
      cells.push_back(std::chrono::duration<double>(Clock::now() - t0).count());
    }
    bench::print_row(skip ? "skip-losers" : "paper-faithful", cells);
  }

  std::printf("# expectation: ratio → 1 as eps shrinks; cost ~ (1/eps)^2;\n");
  std::printf("# skip-losers ≈ 4x cheaper (quarter of users win) but unbalances groups\n");
  return 0;
}
