// Figure 4 reproduction: running time for the double auction vs number of
// users, centralized vs distributed with k = 1 (3 providers), k = 2 (5) and
// k = 3 (8 providers).
//
// Paper setup (§6.2): user bids ~ U[0.75, 1.25], demand ~ U(0, 1], provider
// cost ~ U(0, 1], capacity scaled by U[0.5, 1.5] of the per-provider demand
// share; 8 providers in the market, the protocol executed by the minimum
// 2k+1 of them; values averaged over repeated rounds.
//
// Expected shape (not absolute numbers — the substrate is a calibrated
// virtual-time simulation, see DESIGN.md): centralized fastest; distributed
// cost grows with both n (more bid data per round) and k (more providers
// ingesting more copies); everything stays well under a second.
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"

int main(int argc, char** argv) {
  using namespace dauct;
  const std::size_t rounds = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;

  std::printf("# Figure 4: double auction running time (seconds) vs users\n");
  std::printf("# distributed series: protocol executed by 2k+1 of the providers\n");
  const std::vector<std::size_t> user_counts = {100, 200, 300, 400, 500,
                                                600, 700, 800, 900, 1000};

  std::vector<std::string> cols;
  for (std::size_t n : user_counts) cols.push_back("n=" + std::to_string(n));
  bench::print_header("series", cols);

  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();

  // Centralized trusted auctioneer (m = 8 market).
  {
    core::CentralizedAuctioneer trusted(adapter);
    std::vector<double> cells;
    for (std::size_t n : user_counts) {
      const auto wl = auction::double_auction_workload(n, 8);
      cells.push_back(bench::centralized_makespan_s(trusted, wl, rounds, 42,
                                                    sim::CostMode::kMeasured));
    }
    bench::print_row("centralized", cells);
  }

  // Distributed series.
  for (std::size_t k : {1u, 2u, 3u}) {
    // The paper's executing-provider counts: 3 when k=1, 5 when k=2, 8 when
    // k=3 (m > 2k always holds).
    const std::size_t m = k == 3 ? 8 : 2 * k + 1;
    std::vector<double> cells;
    for (std::size_t n : user_counts) {
      core::AuctioneerSpec spec;
      spec.m = m;
      spec.k = k;
      spec.num_bidders = n;
      core::DistributedAuctioneer auctioneer(spec, adapter);
      const auto wl = auction::double_auction_workload(n, m);
      cells.push_back(bench::distributed_makespan_s(auctioneer, wl, rounds, 42,
                                                    sim::CostMode::kMeasured));
    }
    bench::print_row("k=" + std::to_string(k) + " (m=" + std::to_string(m) + ")",
                     cells);
  }

  std::printf("# expectation: centralized < k=1 < k=2 < k=3, all < 1 s;\n");
  std::printf("# gaps widen with n (communication-dominated; paper Fig. 4)\n");
  return 0;
}
