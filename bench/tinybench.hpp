// tinybench: a minimal, self-contained timing harness (vendored).
//
// Replaces the previous optional dependency on system google-benchmark so the
// crypto/serde microbenches and the perf suite always build. Deliberately a
// small subset of the google-benchmark API shape:
//
//   void BM_Thing(tinybench::State& state) {
//     for (auto _ : state) DoNotOptimize(work(state.range(0)));
//     state.SetBytesProcessed(state.iterations() * state.range(0));
//   }
//   TINYBENCH(BM_Thing)->Arg(64)->Arg(4096);
//   TINYBENCH_MAIN
//
// Each registered (benchmark, arg) pair is run with geometrically growing
// iteration counts until the timed loop exceeds --min-time-ms (default 50),
// then reported as ns/op plus throughput (bytes/s when SetBytesProcessed was
// called, ops/s otherwise). Results can be dumped as JSON (--json=PATH) in
// the BENCH_dauct.json trajectory format: one record per run with
// op / n / ns_per_op / throughput fields.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

namespace dauct::tinybench {

/// Defeat dead-code elimination of a benchmarked value (GCC/Clang).
template <class T>
inline void DoNotOptimize(T const& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}
template <class T>
inline void DoNotOptimize(T& value) {
  asm volatile("" : "+m,r"(value) : : "memory");
}

/// Iteration state handed to the benchmark body. `for (auto _ : state)` runs
/// the timed loop; the clock starts at the first iteration check and stops at
/// the last, so setup before the loop is not billed.
class State {
 public:
  State(std::uint64_t max_iters, std::vector<std::int64_t> args)
      : max_iters_(max_iters), args_(std::move(args)) {}

  /// Value yielded per iteration. The user-provided destructor makes the
  /// conventional `for (auto _ : state)` loop variable count as used, so
  /// -Wunused-variable / -Wunused-but-set-variable stay quiet.
  struct Tick {
    Tick() {}
    ~Tick() {}
  };
  struct iterator {
    State* st;
    bool operator!=(const iterator&) { return st->keep_running(); }
    iterator& operator++() { return *this; }
    Tick operator*() const { return {}; }
  };
  iterator begin() { return {this}; }
  iterator end() { return {this}; }

  /// The i-th Arg of this run (0 when the benchmark was registered without
  /// args).
  std::int64_t range(std::size_t i = 0) const {
    return i < args_.size() ? args_[i] : 0;
  }

  /// Completed iterations (call after the loop).
  std::uint64_t iterations() const { return count_; }

  /// Declare how many payload bytes the whole run processed; switches the
  /// reported throughput from ops/s to bytes/s.
  void SetBytesProcessed(std::int64_t bytes) { bytes_processed_ = bytes; }

  double elapsed_ns() const {
    return std::chrono::duration<double, std::nano>(finish_ - start_).count();
  }
  std::int64_t bytes_processed() const { return bytes_processed_; }

 private:
  bool keep_running() {
    if (count_ == 0) start_ = std::chrono::steady_clock::now();
    if (count_ < max_iters_) {
      ++count_;
      return true;
    }
    finish_ = std::chrono::steady_clock::now();
    return false;
  }

  std::uint64_t max_iters_;
  std::uint64_t count_ = 0;
  std::vector<std::int64_t> args_;
  std::int64_t bytes_processed_ = 0;
  std::chrono::steady_clock::time_point start_{};
  std::chrono::steady_clock::time_point finish_{};
};

using BenchFn = void (*)(State&);

/// One registered benchmark; Arg() appends an additional run configuration.
class Benchmark {
 public:
  Benchmark(std::string name, BenchFn fn) : name_(std::move(name)), fn_(fn) {}

  Benchmark* Arg(std::int64_t a) {
    arg_sets_.push_back({a});
    return this;
  }
  Benchmark* Args(std::vector<std::int64_t> as) {
    arg_sets_.push_back(std::move(as));
    return this;
  }

  const std::string& name() const { return name_; }
  BenchFn fn() const { return fn_; }
  /// Run configurations; a benchmark without Arg() runs once with no args.
  std::vector<std::vector<std::int64_t>> runs() const {
    return arg_sets_.empty() ? std::vector<std::vector<std::int64_t>>{{}} : arg_sets_;
  }

 private:
  std::string name_;
  BenchFn fn_;
  std::vector<std::vector<std::int64_t>> arg_sets_;
};

inline std::vector<std::unique_ptr<Benchmark>>& registry() {
  static std::vector<std::unique_ptr<Benchmark>> benches;
  return benches;
}

inline Benchmark* RegisterBenchmark(const char* name, BenchFn fn) {
  registry().push_back(std::make_unique<Benchmark>(name, fn));
  return registry().back().get();
}

/// One timed (benchmark, arg) run.
struct Result {
  std::string name;  ///< "BM_Sha256/65536"
  std::string op;    ///< "BM_Sha256"
  std::int64_t n = 0;
  std::uint64_t iterations = 0;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  double bytes_per_sec = 0.0;  ///< 0 unless SetBytesProcessed was used
};

struct Options {
  double min_time_ms = 50.0;
  std::string json_path;
  std::string filter;  ///< substring match on the run name
};

inline Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--min-time-ms=", 0) == 0) {
      opt.min_time_ms = std::strtod(a.c_str() + 14, nullptr);
    } else if (a.rfind("--json=", 0) == 0) {
      opt.json_path = a.substr(7);
    } else if (a.rfind("--filter=", 0) == 0) {
      opt.filter = a.substr(9);
    } else if (a == "--help" || a == "-h") {
      std::printf(
          "usage: %s [--min-time-ms=N] [--json=PATH] [--filter=SUBSTR]\n",
          argv[0]);
      std::exit(0);
    } else {
      std::fprintf(stderr, "tinybench: unknown flag '%s' (try --help)\n", a.c_str());
      std::exit(2);
    }
  }
  return opt;
}

inline Result run_one(const Benchmark& b, const std::vector<std::int64_t>& args,
                      double min_time_ms) {
  const double target_ns = min_time_ms * 1e6;
  std::uint64_t iters = 1;
  for (;;) {
    State st(iters, args);
    b.fn()(st);
    const double ns = st.elapsed_ns();
    if (ns >= target_ns || iters >= (std::uint64_t{1} << 40)) {
      Result r;
      r.name = b.name();
      for (std::int64_t a : args) {
        r.name += '/';
        r.name += std::to_string(a);
      }
      r.op = b.name();
      r.n = args.empty() ? 0 : args[0];
      r.iterations = st.iterations();
      r.ns_per_op = ns / static_cast<double>(st.iterations());
      r.ops_per_sec = r.ns_per_op > 0 ? 1e9 / r.ns_per_op : 0.0;
      if (st.bytes_processed() > 0 && ns > 0) {
        r.bytes_per_sec = static_cast<double>(st.bytes_processed()) * 1e9 / ns;
      }
      return r;
    }
    // Grow toward the target with headroom; at least ×2, at most ×100 per
    // step so a mispredicted first probe cannot overshoot wildly.
    std::uint64_t next =
        ns > 0 ? static_cast<std::uint64_t>(static_cast<double>(iters) * target_ns *
                                            1.4 / ns)
               : iters * 16;
    iters = std::clamp<std::uint64_t>(next, iters * 2, iters * 100);
  }
}

inline std::vector<Result> run_all(const Options& opt) {
  std::vector<Result> results;
  for (const auto& b : registry()) {
    for (const auto& args : b->runs()) {
      std::string name = b->name();
      for (std::int64_t a : args) {
        name += '/';
        name += std::to_string(a);
      }
      if (!opt.filter.empty() && name.find(opt.filter) == std::string::npos) continue;
      results.push_back(run_one(*b, args, opt.min_time_ms));
    }
  }
  return results;
}

inline void print_table(const std::vector<Result>& results) {
  std::printf("%-44s %14s %14s %16s\n", "benchmark", "iterations", "ns/op",
              "throughput");
  for (const auto& r : results) {
    char thr[32];
    if (r.bytes_per_sec > 0) {
      std::snprintf(thr, sizeof(thr), "%10.1f MB/s", r.bytes_per_sec / 1e6);
    } else {
      std::snprintf(thr, sizeof(thr), "%10.0f op/s", r.ops_per_sec);
    }
    std::printf("%-44s %14llu %14.1f %16s\n", r.name.c_str(),
                static_cast<unsigned long long>(r.iterations), r.ns_per_op, thr);
  }
}

/// Append one JSON record (no trailing newline handling; caller manages
/// separators). `op` is the benchmark name alone so consumers can group a
/// trajectory series across sizes; `name` carries the full op/arg run id.
inline void json_record(std::FILE* f, const Result& r) {
  std::fprintf(f,
               "    {\"op\": \"%s\", \"name\": \"%s\", \"n\": %lld, "
               "\"iterations\": %llu, \"ns_per_op\": %.2f, \"ops_per_sec\": %.1f, "
               "\"bytes_per_sec\": %.1f}",
               r.op.c_str(), r.name.c_str(), static_cast<long long>(r.n),
               static_cast<unsigned long long>(r.iterations), r.ns_per_op,
               r.ops_per_sec, r.bytes_per_sec);
}

/// Write {"benchmarks": [...]} plus optional extra sections rendered by the
/// caller (raw JSON lines, e.g. a "speedups" object).
inline bool write_json(const std::vector<Result>& results, const std::string& path,
                       const std::string& extra_sections = "") {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "tinybench: cannot open '%s' for writing\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    json_record(f, results[i]);
    std::fprintf(f, "%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]%s%s\n}\n", extra_sections.empty() ? "" : ",\n",
               extra_sections.c_str());
  std::fclose(f);
  return true;
}

inline int run_main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  const std::vector<Result> results = run_all(opt);
  print_table(results);
  if (!opt.json_path.empty() && !write_json(results, opt.json_path)) return 1;
  return 0;
}

}  // namespace dauct::tinybench

/// Register a benchmark function at namespace scope; returns the Benchmark*
/// so runs can be chained: TINYBENCH(BM_Foo)->Arg(64)->Arg(1024);
#define TINYBENCH(fn)                                 \
  static ::dauct::tinybench::Benchmark* tinybench_reg_##fn = \
      ::dauct::tinybench::RegisterBenchmark(#fn, fn)

#define TINYBENCH_MAIN                        \
  int main(int argc, char** argv) {           \
    return ::dauct::tinybench::run_main(argc, argv); \
  }
