// Ablation E: empirical k-resilience (Definition 2).
//
// For every deviation strategy and coalition size, the coalition's mean
// utility under deviation vs the honest baseline, over seeded instances.
// A k-resilient equilibrium shows no positive gain anywhere on this table.
#include <cstdio>

#include "adversary/resilience_harness.hpp"
#include "auction/workload.hpp"
#include "bench_util.hpp"

int main() {
  using namespace dauct;
  const std::size_t m = 8, n = 24, runs = 10;

  std::printf("# Ablation E: coalition utility, honest vs deviant (m=%zu, n=%zu,\n",
              m, n);
  std::printf("# %zu seeded instances; double auction; utility in currency units)\n",
              runs);
  std::printf("%-22s %4s %12s %12s %10s %s\n", "strategy", "|K|", "honest",
              "deviant", "gain", "detected");

  struct Row {
    std::string label;
    std::function<std::shared_ptr<adversary::DeviationStrategy>(std::vector<NodeId>)>
        make;
  };
  const std::vector<Row> strategies = {
      {"corrupt-coin-reveal",
       [](std::vector<NodeId>) { return adversary::corrupt_coin_reveal(); }},
      {"equivocate-votes",
       [](std::vector<NodeId>) { return adversary::equivocate_votes(); }},
      {"forge-output-digest",
       [](std::vector<NodeId> c) { return adversary::forge_output_digest(c); }},
      {"misreport-ask-low",
       [](std::vector<NodeId>) {
         return adversary::misreport_ask(Money::from_micros(1));
       }},
      {"misreport-ask-high",
       [](std::vector<NodeId>) {
         return adversary::misreport_ask(Money::from_units(10));
       }},
      {"honest-control",
       [](std::vector<NodeId>) { return adversary::honest_provider(); }},
  };

  for (std::size_t k : {1u, 2u, 3u}) {
    core::AuctioneerSpec spec;
    spec.m = m;
    spec.k = k;
    spec.num_bidders = n;
    core::DistributedAuctioneer auctioneer(
        spec, std::make_shared<core::DoubleAuctionAdapter>());
    std::vector<NodeId> coalition;
    for (NodeId j = 0; j < k; ++j) coalition.push_back(j * 2 + 1);

    for (const auto& s : strategies) {
      double honest_total = 0, deviant_total = 0;
      std::size_t detected = 0;
      for (std::size_t r = 0; r < runs; ++r) {
        crypto::Rng rng(100 * k + r);
        const auto instance =
            auction::generate(auction::double_auction_workload(n, m), rng);
        runtime::SimRunConfig cfg;
        cfg.seed = 1000 + r;
        const auto report = adversary::measure_deviation(auctioneer, instance, cfg,
                                                         coalition, s.make(coalition));
        honest_total += report.honest_utility.to_double();
        deviant_total += report.deviant_utility.to_double();
        if (!report.deviant_ok && report.honest_ok) ++detected;
      }
      std::printf("%-22s %4zu %12.6f %12.6f %+10.6f %zu/%zu\n", s.label.c_str(), k,
                  honest_total / runs, deviant_total / runs,
                  (deviant_total - honest_total) / runs, detected, runs);
    }
    std::printf("\n");
  }
  std::printf("# expectation: gain ≤ 0 everywhere (micro-unit rounding aside);\n");
  std::printf("# protocol-violating strategies detected in every run\n");
  return 0;
}
