// Ablation F: where does the time go, and how does the network change it?
//
// Phase breakdown (bid agreement vs allocator) of one distributed double
// auction and one distributed standard auction, across three network models:
// zero-latency (pure protocol logic), LAN, and the community-network
// calibration used for Figs. 4–5. Attributes the framework's overhead to its
// parts and shows how the network model moves the centralized/distributed
// trade-off — the sensitivity analysis behind the DESIGN.md substitution
// argument.
#include <cstdio>

#include "bench_util.hpp"

int main() {
  using namespace dauct;

  struct Net {
    const char* name;
    sim::LatencyModel model;
  };
  const std::vector<Net> nets = {
      {"zero", sim::LatencyModel::zero()},
      {"lan", sim::LatencyModel::lan()},
      {"community", sim::LatencyModel::community()},
  };

  std::printf("# Ablation F: phase breakdown vs network model (virtual seconds)\n");
  std::printf("%-12s %-10s %12s %12s %12s\n", "network", "auction", "bid-agree",
              "allocator", "end-to-end");

  for (const auto& net : nets) {
    // Double auction, m = 5, k = 2, n = 200.
    {
      core::AuctioneerSpec spec;
      spec.m = 5;
      spec.k = 2;
      spec.num_bidders = 200;
      core::DistributedAuctioneer auctioneer(
          spec, std::make_shared<core::DoubleAuctionAdapter>());
      crypto::Rng rng(1);
      const auto instance =
          auction::generate(auction::double_auction_workload(200, 5), rng);
      runtime::SimRunConfig cfg;
      cfg.latency = net.model;
      cfg.cost_mode = sim::CostMode::kMeasured;
      const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, instance);
      const double ba = sim::to_seconds(run.bid_agreement_makespan());
      const double fin = sim::to_seconds(run.provider_makespan());
      std::printf("%-12s %-10s %12.4f %12.4f %12.4f\n", net.name, "double", ba,
                  fin - ba, sim::to_seconds(run.makespan));
    }
    // Standard auction, m = 8, k = 1 (p = 4), n = 40.
    {
      core::AuctioneerSpec spec;
      spec.m = 8;
      spec.k = 1;
      spec.num_bidders = 40;
      auction::StandardAuctionParams params;
      params.epsilon = 0.08;
      core::DistributedAuctioneer auctioneer(
          spec, std::make_shared<core::StandardAuctionAdapter>(params));
      crypto::Rng rng(2);
      const auto instance =
          auction::generate(auction::standard_auction_workload(40, 8), rng);
      runtime::SimRunConfig cfg;
      cfg.latency = net.model;
      cfg.cost_mode = sim::CostMode::kMeasured;
      const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, instance);
      const double ba = sim::to_seconds(run.bid_agreement_makespan());
      const double fin = sim::to_seconds(run.provider_makespan());
      std::printf("%-12s %-10s %12.4f %12.4f %12.4f\n", net.name, "standard", ba,
                  fin - ba, sim::to_seconds(run.makespan));
    }
  }

  std::printf("# expectation: double auction is network-bound (zero-latency run\n");
  std::printf("# nearly free); standard auction's allocator phase dominates and\n");
  std::printf("# barely moves across network models (compute-bound)\n");
  return 0;
}
