// perf_suite: the repo's performance trajectory in one binary.
//
// Runs solver / serde / crypto / end-to-end-sim microbenches and emits
// BENCH_dauct.json (op, n, ns/op, throughput, plus a "speedups" section) so
// every PR has a baseline to compare against. Benchmarks come in *_ref /
// *_opt pairs where a pre-optimization implementation is retained:
//
//   exact_solver          ReferenceExactSolver vs ExactSolver (memoized
//                         fractional bound, incremental capacity pool,
//                         provider symmetry breaking)
//   scaled_dp             ReferenceScaledDpSolver vs ScaledDpSolver
//                         (trial-scoped buffer reuse, provider-permutation
//                         trial memoization)
//   payload_encode_hash   seed-style encode (nested temporary buffers,
//                         body→frame copy, scalar SHA-256) vs the optimized
//                         path (exact-size single-buffer encode, hardware-
//                         dispatched SHA-256, cached message digest)
//
// The *_ref and *_opt implementations are proven to produce bit-identical
// outputs by tests/welfare_equivalence_test.cpp and tests/serde_test.cpp, so
// the speedups below are like-for-like.
//
// Usage: perf_suite [--min-time-ms=N] [--json=PATH] [--filter=SUBSTR]
// (JSON defaults to ./BENCH_dauct.json)
#include <cstdio>
#include <string>

#include "auction/welfare.hpp"
#include "auction/welfare_reference.hpp"
#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "core/centralized_auctioneer.hpp"
#include "core/distributed_auctioneer.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"
#include "tinybench.hpp"

namespace {

using namespace dauct;
using tinybench::DoNotOptimize;
using tinybench::State;

auction::AuctionInstance make_instance(std::size_t users, std::size_t providers,
                                       std::uint64_t seed) {
  crypto::Rng rng(seed);
  return auction::generate(auction::standard_auction_workload(users, providers), rng);
}

// ---------------------------------------------------------------------------
// Welfare solvers: reference vs optimized (identical outputs, see header).
// ---------------------------------------------------------------------------

void BM_exact_solver_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4, 7);
  const auction::reference::ReferenceExactSolver solver;
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 0));
}
TINYBENCH(BM_exact_solver_ref)->Arg(24);

void BM_exact_solver_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4, 7);
  const auction::ExactSolver solver;
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 0));
}
TINYBENCH(BM_exact_solver_opt)->Arg(24);

void BM_scaled_dp_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 11);
  const auction::reference::ReferenceScaledDpSolver solver(0.1);
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 42));
}
TINYBENCH(BM_scaled_dp_ref)->Arg(32);

void BM_scaled_dp_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 11);
  const auction::ScaledDpSolver solver(0.1);
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 42));
}
TINYBENCH(BM_scaled_dp_opt)->Arg(32);

// ---------------------------------------------------------------------------
// Payload encode + hash round trip: the per-message cost of producing a
// cross-validatable allocator payload (encode instance, digest it, frame it).
// The _ref variant replicates the seed tree: nested temporary buffers with
// no reservation, a separate body writer copied into the frame, and the
// portable scalar SHA-256.
// ---------------------------------------------------------------------------

Bytes ref_encode_bid_vector(const std::vector<auction::Bid>& bids) {
  serde::Writer w;
  w.varint(bids.size());
  for (const auto& b : bids) serde::write_bid(w, b);
  return w.take();
}

Bytes ref_encode_ask_vector(const std::vector<auction::Ask>& asks) {
  serde::Writer w;
  w.varint(asks.size());
  for (const auto& a : asks) {
    w.u32(a.provider);
    w.money(a.unit_cost);
    w.money(a.capacity);
  }
  return w.take();
}

Bytes ref_encode_instance(const auction::AuctionInstance& instance) {
  serde::Writer w;
  w.bytes(ref_encode_bid_vector(instance.bids));
  w.bytes(ref_encode_ask_vector(instance.asks));
  return w.take();
}

Bytes ref_encode_frame(const net::Message& msg) {
  serde::Writer body;
  body.u32(msg.from);
  body.u32(msg.to);
  body.str(msg.topic);
  body.bytes(msg.payload);

  serde::Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.buffer().size()));
  frame.raw(body.buffer());
  return frame.take();
}

void BM_payload_encode_hash_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 8, 13);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.from = 1;
    msg.to = 2;
    msg.topic = "alloc/iv/digest";
    msg.payload = ref_encode_instance(inst);
    DoNotOptimize(crypto::sha256_portable(BytesView(msg.payload)));
    const Bytes frame = ref_encode_frame(msg);
    bytes += static_cast<std::int64_t>(frame.size());
    DoNotOptimize(frame);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_payload_encode_hash_ref)->Arg(100)->Arg(1000);

void BM_payload_encode_hash_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 8, 13);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.from = 1;
    msg.to = 2;
    msg.topic = "alloc/iv/digest";
    msg.set_payload(serde::encode_instance(inst));
    DoNotOptimize(msg.payload_digest());
    const Bytes frame = net::encode_frame(msg);
    bytes += static_cast<std::int64_t>(frame.size());
    DoNotOptimize(frame);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_payload_encode_hash_opt)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Supporting trajectory points (no retained reference): raw SHA-256
// throughput, frame round trip, and a full end-to-end simulated distributed
// auction (the number the paper's figures are made of).
// ---------------------------------------------------------------------------

void BM_sha256(State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) DoNotOptimize(crypto::sha256(BytesView(data)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
TINYBENCH(BM_sha256)->Arg(1024)->Arg(65536);

void BM_frame_roundtrip(State& state) {
  net::Message msg{1, 2, "alloc/dt/3/val",
                   Bytes(static_cast<std::size_t>(state.range(0)), 0x11)};
  for (auto _ : state) {
    const Bytes frame = net::encode_frame(msg);
    DoNotOptimize(net::decode_frame(BytesView(frame)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
TINYBENCH(BM_frame_roundtrip)->Arg(4096);

void BM_e2e_sim_distributed(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  auction::StandardAuctionParams params;
  params.epsilon = 0.25;
  auto adapter = std::make_shared<core::StandardAuctionAdapter>(params);
  core::AuctioneerSpec spec;
  spec.m = 3;
  spec.k = 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_instance(users, 3, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_sim_distributed)->Arg(12);

// ---------------------------------------------------------------------------

/// "speedups" JSON section from matching *_ref / *_opt result pairs.
std::string speedups_json(const std::vector<tinybench::Result>& results) {
  std::string out = "  \"speedups\": {";
  bool first = true;
  for (const auto& ref : results) {
    const std::size_t pos = ref.op.find("_ref");
    if (pos == std::string::npos) continue;
    const std::string base = ref.op.substr(0, pos);
    for (const auto& opt : results) {
      if (opt.op != base + "_opt" || opt.n != ref.n) continue;
      if (opt.ns_per_op <= 0) continue;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s\n    \"%s/%lld\": %.2f",
                    first ? "" : ",", base.c_str(), static_cast<long long>(ref.n),
                    ref.ns_per_op / opt.ns_per_op);
      out += buf;
      first = false;
    }
  }
  out += "\n  }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tinybench::Options opt = tinybench::parse_args(argc, argv);
  if (opt.json_path.empty()) opt.json_path = "BENCH_dauct.json";

  const auto results = tinybench::run_all(opt);
  tinybench::print_table(results);
  if (!tinybench::write_json(results, opt.json_path, speedups_json(results))) {
    return 1;
  }
  std::printf("\nwrote %s (%zu benchmarks)\n", opt.json_path.c_str(), results.size());
  return 0;
}
