// perf_suite: the repo's performance trajectory in one binary.
//
// Runs solver / serde / crypto / end-to-end-sim microbenches and emits
// BENCH_dauct.json (op, n, ns/op, throughput, plus a "speedups" section) so
// every PR has a baseline to compare against. Benchmarks come in *_ref /
// *_opt pairs where a pre-optimization implementation is retained:
//
//   exact_solver          ReferenceExactSolver vs ExactSolver (memoized
//                         fractional bound, incremental capacity pool,
//                         provider symmetry breaking)
//   scaled_dp             ReferenceScaledDpSolver vs ScaledDpSolver
//                         (trial-scoped buffer reuse, provider-permutation
//                         trial memoization)
//   payload_encode_hash   seed-style encode (nested temporary buffers,
//                         body→frame copy, scalar SHA-256) vs the optimized
//                         path (exact-size single-buffer encode, hardware-
//                         dispatched SHA-256, cached message digest)
//
// The *_ref and *_opt implementations are proven to produce bit-identical
// outputs by tests/welfare_equivalence_test.cpp and tests/serde_test.cpp, so
// the speedups below are like-for-like.
//
// Usage: perf_suite [--min-time-ms=N] [--json=PATH] [--filter=SUBSTR]
// (JSON defaults to ./BENCH_dauct.json)
#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>

#include "auction/welfare.hpp"
#include "blocks/block.hpp"
#include "auction/welfare_reference.hpp"
#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "core/centralized_auctioneer.hpp"
#include "core/distributed_auctioneer.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "core/service_plane.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "runtime/service_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"
#include "store/wal.hpp"
#include "tinybench.hpp"

namespace {

using namespace dauct;
using tinybench::DoNotOptimize;
using tinybench::State;

auction::AuctionInstance make_instance(std::size_t users, std::size_t providers,
                                       std::uint64_t seed) {
  crypto::Rng rng(seed);
  return auction::generate(auction::standard_auction_workload(users, providers), rng);
}

// ---------------------------------------------------------------------------
// Welfare solvers: reference vs optimized (identical outputs, see header).
// ---------------------------------------------------------------------------

void BM_exact_solver_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4, 7);
  const auction::reference::ReferenceExactSolver solver;
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 0));
}
TINYBENCH(BM_exact_solver_ref)->Arg(24);

void BM_exact_solver_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 4, 7);
  const auction::ExactSolver solver;
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 0));
}
TINYBENCH(BM_exact_solver_opt)->Arg(24);

void BM_scaled_dp_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 11);
  const auction::reference::ReferenceScaledDpSolver solver(0.1);
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 42));
}
TINYBENCH(BM_scaled_dp_ref)->Arg(32);

void BM_scaled_dp_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 5, 11);
  const auction::ScaledDpSolver solver(0.1);
  for (auto _ : state) DoNotOptimize(solver.solve_all(inst, 42));
}
TINYBENCH(BM_scaled_dp_opt)->Arg(32);

// ---------------------------------------------------------------------------
// Payload encode + hash round trip: the per-message cost of producing a
// cross-validatable allocator payload (encode instance, digest it, frame it).
// The _ref variant replicates the seed tree: nested temporary buffers with
// no reservation, a separate body writer copied into the frame, and the
// portable scalar SHA-256.
// ---------------------------------------------------------------------------

Bytes ref_encode_bid_vector(const std::vector<auction::Bid>& bids) {
  serde::Writer w;
  w.varint(bids.size());
  for (const auto& b : bids) serde::write_bid(w, b);
  return w.take();
}

Bytes ref_encode_ask_vector(const std::vector<auction::Ask>& asks) {
  serde::Writer w;
  w.varint(asks.size());
  for (const auto& a : asks) {
    w.u32(a.provider);
    w.money(a.unit_cost);
    w.money(a.capacity);
  }
  return w.take();
}

Bytes ref_encode_instance(const auction::AuctionInstance& instance) {
  serde::Writer w;
  w.bytes(ref_encode_bid_vector(instance.bids));
  w.bytes(ref_encode_ask_vector(instance.asks));
  return w.take();
}

Bytes ref_encode_frame(const net::Message& msg) {
  serde::Writer body;
  body.u32(msg.from);
  body.u32(msg.to);
  body.str(msg.topic.str());
  body.bytes(msg.payload.view());

  serde::Writer frame;
  frame.u32(static_cast<std::uint32_t>(body.buffer().size()));
  frame.raw(body.buffer());
  return frame.take();
}

void BM_payload_encode_hash_ref(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 8, 13);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.from = 1;
    msg.to = 2;
    msg.topic = "alloc/iv/digest";
    msg.payload = ref_encode_instance(inst);
    DoNotOptimize(crypto::sha256_portable(msg.payload.view()));
    const Bytes frame = ref_encode_frame(msg);
    bytes += static_cast<std::int64_t>(frame.size());
    DoNotOptimize(frame);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_payload_encode_hash_ref)->Arg(100)->Arg(1000);

void BM_payload_encode_hash_opt(State& state) {
  const auto inst = make_instance(static_cast<std::size_t>(state.range(0)), 8, 13);
  std::int64_t bytes = 0;
  for (auto _ : state) {
    net::Message msg;
    msg.from = 1;
    msg.to = 2;
    msg.topic = "alloc/iv/digest";
    msg.set_payload(serde::encode_instance(inst));
    DoNotOptimize(msg.payload_digest());
    const Bytes frame = net::encode_frame(msg);
    bytes += static_cast<std::int64_t>(frame.size());
    DoNotOptimize(frame);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_payload_encode_hash_opt)->Arg(100)->Arg(1000);

// ---------------------------------------------------------------------------
// Broadcast fan-out: the per-recipient cost of one m-way broadcast, including
// the digest every cross-validating recipient needs. The _ref variant
// replicates the seed messaging spine: a deep copy of the topic string and
// payload per recipient, each boxed into a heap-allocated std::function event
// (the seed scheduler's closure-per-message), and a per-recipient SHA-256
// (the seed digest cache died on copy). The _opt variant is the production
// path: Endpoint::broadcast aliases one SharedBytes + interned Topic into
// plain message structs, and the shared digest slot hashes once per
// broadcast. Equivalence: tests/fanout_test.cpp proves delivered bytes and
// digests are identical.
// ---------------------------------------------------------------------------

/// Seed-shaped message: owning topic string + owning payload.
struct RefMessage {
  NodeId from = 0, to = 0;
  std::string topic;
  Bytes payload;
};

/// Minimal endpoint delivering into a vector (the mailbox/event-queue model).
class FanoutEndpoint final : public blocks::Endpoint {
 public:
  FanoutEndpoint(NodeId self, std::size_t m) : self_(self), m_(m), rng_(1) {}
  NodeId self() const override { return self_; }
  std::size_t num_providers() const override { return m_; }
  crypto::Rng& rng() override { return rng_; }
  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    delivered.push_back(net::Message{self_, to, topic, std::move(payload)});
  }
  std::vector<net::Message> delivered;

 private:
  NodeId self_;
  std::size_t m_;
  crypto::Rng rng_;
};

Bytes make_vote_payload() {
  // A realistic value-batched vote: the encoded 100-bid instance (~3 KB).
  return serde::encode_instance(make_instance(100, 8, 21));
}

void BM_broadcast_fanout_ref(State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const std::string topic = "ba/vb/v";
  const Bytes payload = make_vote_payload();
  std::int64_t bytes = 0;
  for (auto _ : state) {
    // Send: one closure-boxed event per recipient, deep-copying topic+payload.
    std::vector<std::function<void()>> events;
    events.reserve(m);
    std::size_t digests = 0;
    for (NodeId j = 0; j < m; ++j) {
      RefMessage msg{0, j, topic, payload};  // the seed per-recipient copies
      events.push_back([msg = std::move(msg), &digests]() mutable {
        // Deliver: every recipient hashes its own copy (cache died on copy).
        DoNotOptimize(crypto::sha256(BytesView(msg.payload)));
        ++digests;
      });
    }
    for (auto& ev : events) ev();
    bytes += static_cast<std::int64_t>(m * payload.size());
    DoNotOptimize(digests);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_broadcast_fanout_ref)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

void BM_broadcast_fanout_opt(State& state) {
  const std::size_t m = static_cast<std::size_t>(state.range(0));
  const net::Topic topic("ba/vb/v");
  const Bytes payload_bytes = make_vote_payload();
  std::int64_t bytes = 0;
  for (auto _ : state) {
    FanoutEndpoint ep(0, m);
    // Send: one shared buffer, m refcount bumps into plain message structs.
    ep.broadcast(topic, SharedBytes(Bytes(payload_bytes)));
    // Deliver: every recipient asks for the digest; the shared slot computes
    // it once per broadcast.
    std::size_t digests = 0;
    for (const net::Message& msg : ep.delivered) {
      DoNotOptimize(msg.payload_digest());
      ++digests;
    }
    bytes += static_cast<std::int64_t>(m * payload_bytes.size());
    DoNotOptimize(digests);
  }
  state.SetBytesProcessed(bytes);
}
TINYBENCH(BM_broadcast_fanout_opt)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// ---------------------------------------------------------------------------
// Supporting trajectory points (no retained reference): raw SHA-256
// throughput, frame round trip, and a full end-to-end simulated distributed
// auction (the number the paper's figures are made of).
// ---------------------------------------------------------------------------

void BM_sha256(State& state) {
  Bytes data(static_cast<std::size_t>(state.range(0)), 0x5a);
  for (auto _ : state) DoNotOptimize(crypto::sha256(BytesView(data)));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
TINYBENCH(BM_sha256)->Arg(1024)->Arg(65536);

void BM_frame_roundtrip(State& state) {
  net::Message msg{1, 2, "alloc/dt/3/val",
                   Bytes(static_cast<std::size_t>(state.range(0)), 0x11)};
  for (auto _ : state) {
    const Bytes frame = net::encode_frame(msg);
    DoNotOptimize(net::decode_frame(BytesView(frame)));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
TINYBENCH(BM_frame_roundtrip)->Arg(4096);

// End-to-end scenario sweeps: args are {n users, m providers}, k is the
// largest coalition the provider count supports (k = ⌈m/2⌉ − 1, m > 2k).
// The sweep covers the scale band the fan-out work targets — n = 12…512
// bidders, m = 3…16 providers — for both deployment shapes (the paper's
// distributed protocol and the trusted-auctioneer baseline). The workload is
// the paper's Fig-4 double auction: its O(n log n) trade reduction keeps the
// runs messaging/serde-dominated, so these points track the fan-out spine,
// not the welfare solvers (those have their own benches above).
auction::AuctionInstance make_double_instance(std::size_t users, std::size_t m,
                                              std::uint64_t seed) {
  crypto::Rng rng(seed);
  return auction::generate(auction::double_auction_workload(users, m), rng);
}

void BM_e2e_sim_distributed(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_sim_distributed)
    ->Args({12, 3})
    ->Args({48, 4})
    ->Args({128, 8})
    ->Args({256, 12})
    ->Args({512, 16});

void BM_e2e_sim_centralized(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  const core::CentralizedAuctioneer auctioneer(adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    const auto run = runtime::SimRuntime(cfg).run_centralized(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_sim_centralized)
    ->Args({12, 3})
    ->Args({48, 4})
    ->Args({128, 8})
    ->Args({256, 12})
    ->Args({512, 16});

// Faulty end-to-end sweeps: the same double-auction runs with a fault plan
// installed, tracking what the fault-injection subsystem costs when it is
// actually working. (Its cost when *idle* is pinned by BM_e2e_sim_distributed
// staying flat vs the committed baseline: no plan = one null test per
// message.) Two regimes:
//  * _delay — every message matched, delayed, and jittered; the protocol
//    still completes, so this is the per-message fault-path overhead plus
//    the longer virtual timeline at full traffic volume;
//  * _lossy — 2% stochastic loss; rounds starve and the run stalls to ⊥,
//    measuring the drop path and the truncated-run drain.
void BM_e2e_faulty_delay(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  sim::FaultPlan plan;
  plan.seed = 7;
  sim::LinkFault rule;
  rule.extra_delay = sim::from_millis(2);
  rule.jitter = sim::from_millis(1);
  plan.links.push_back(rule);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.faults = plan;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_faulty_delay)->Args({48, 4})->Args({128, 8});

void BM_e2e_faulty_lossy(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  sim::FaultPlan plan;
  plan.seed = 7;
  sim::LinkFault rule;
  rule.drop = 0.02;
  rule.active_from = sim::from_millis(4);  // let the client batches land
  plan.links.push_back(rule);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.faults = plan;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.stalled);
  }
}
TINYBENCH(BM_e2e_faulty_lossy)->Args({48, 4})->Args({128, 8});

// Reliability-layer end-to-end sweeps (net/reliable.hpp). Its cost when
// *disabled* is pinned by BM_e2e_sim_distributed staying flat vs the
// committed baseline — no link is constructed, no timer is ever scheduled.
// Two active regimes:
//  * _clean — reliability on over a fault-free network: pure ack/tracking
//    overhead (one ack per data message, one no-op timer per tracked send);
//  * _lossy — the same 2% loss plan as BM_e2e_faulty_lossy, which *stalled*
//    without the layer; with it the run completes, so this measures the full
//    recovery path (retransmit timers, dedup, re-acks) at full protocol
//    volume, and is directly comparable against the faulty_lossy point.
void BM_e2e_reliable_clean(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.reliability.enable = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_reliable_clean)->Args({48, 4})->Args({128, 8});

void BM_e2e_reliable_lossy(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  sim::FaultPlan plan;
  plan.seed = 7;
  sim::LinkFault rule;
  rule.drop = 0.02;
  rule.active_from = sim::from_millis(4);  // let the client batches land
  plan.links.push_back(rule);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.faults = plan;
    cfg.reliability.enable = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_reliable_lossy)->Args({48, 4})->Args({128, 8});

// Signing-layer points (net/auth.hpp + crypto/ed25519.hpp). The per-message
// cost is one ed25519 sign at the sender and one verify at each receiver,
// both over the 32-byte transcript digest — payload size only enters through
// the SHA-256 transcript hash, so the sweep below fixes the payload and
// varies the batch width m instead. BM_auth_verify_single vs
// BM_auth_verify_batch is the number the validator's batch mode exists for:
// small-exponent batch verification amortizes the doubling ladder across a
// round's m signatures, and the ratio at m = {4, 8, 16} is the round-latency
// saving batch mode buys over eager per-frame verification.
void BM_auth_sign_verify(State& state) {
  const net::KeyDirectory keys(4, 42);
  Bytes payload(256, 0x5a);
  std::uint32_t n = 0;
  for (auto _ : state) {
    payload[0] = static_cast<std::uint8_t>(++n);  // fresh transcript each op
    const crypto::Digest t =
        net::auth_transcript(1, "ba/vb/v", BytesView(payload));
    const auto sig = crypto::ed25519::sign(keys.pair(1), BytesView(t));
    DoNotOptimize(crypto::ed25519::verify(keys.public_key(1), BytesView(t), sig));
  }
}
TINYBENCH(BM_auth_sign_verify);

/// One provider round's worth of signed transcripts: m distinct senders,
/// each signing its own transcript with its own key (the shape flush_batch
/// sees — `m` is state.range(0) at the call sites below).
struct SignedRound {
  const net::KeyDirectory keys;
  std::vector<crypto::Digest> transcripts;
  std::vector<crypto::ed25519::Signature> sigs;

  explicit SignedRound(std::size_t m) : keys(m, 42) {
    for (std::size_t s = 0; s < m; ++s) {
      Bytes payload(256, static_cast<std::uint8_t>(s));
      transcripts.push_back(net::auth_transcript(static_cast<NodeId>(s),
                                                 "ba/vb/v", BytesView(payload)));
      sigs.push_back(
          crypto::ed25519::sign(keys.pair(static_cast<NodeId>(s)),
                                BytesView(transcripts.back())));
    }
  }
};

void BM_auth_verify_single(State& state) {
  const SignedRound round(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    bool ok = true;
    for (std::size_t s = 0; s < round.sigs.size(); ++s) {
      ok = ok && crypto::ed25519::verify(
                     round.keys.public_key(static_cast<NodeId>(s)),
                     BytesView(round.transcripts[s]), round.sigs[s]);
    }
    DoNotOptimize(ok);
  }
}
TINYBENCH(BM_auth_verify_single)->Arg(4)->Arg(8)->Arg(16);

void BM_auth_verify_batch(State& state) {
  const SignedRound round(static_cast<std::size_t>(state.range(0)));
  std::vector<crypto::ed25519::BatchItem> items;
  for (std::size_t s = 0; s < round.sigs.size(); ++s) {
    items.push_back({&round.keys.public_key(static_cast<NodeId>(s)),
                     BytesView(round.transcripts[s]), &round.sigs[s]});
  }
  crypto::Rng rng(99);
  for (auto _ : state) {
    DoNotOptimize(crypto::ed25519::verify_batch(items, rng));
  }
}
TINYBENCH(BM_auth_verify_batch)->Arg(4)->Arg(8)->Arg(16);

// Auth end-to-end sweeps: the same fault-free runs as BM_e2e_sim_distributed
// with the signing layer on. Its cost when *disabled* is pinned by that base
// point staying flat (auth off constructs nothing). _eager verifies every
// frame on delivery; _batch holds a round's signatures and flushes them
// through verify_batch — the e2e realization of the micro ratio above.
void BM_e2e_auth_eager(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.auth.enable = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_auth_eager)->Args({48, 4})->Args({128, 8});

void BM_e2e_auth_batch(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.auth.enable = true;
    cfg.auth.batch_verify = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_auth_batch)->Args({48, 4})->Args({128, 8});

// Durability points (store/wal.hpp). BM_wal_append is the micro cost of one
// journaled delivery: CRC-framed append of an n-byte message record plus its
// share of a batch commit (one sync per 8 records, the runtime's default
// snapshot cadence). BM_e2e_durable_clean is the same fault-free run as
// BM_e2e_sim_distributed with the WAL on — the end-to-end price of
// journaling every engine-consumed delivery (its cost when *disabled* is
// pinned by the base point staying flat; byte-equivalence by
// tests/durability_test.cpp). The ratio durable_clean / sim_distributed is
// the durability overhead quoted in ROADMAP.md.
void BM_wal_append(State& state) {
  const std::size_t payload_len = static_cast<std::size_t>(state.range(0));
  const Bytes payload(payload_len, 0xa5);
  auto mem = std::make_shared<store::MemStorage>();
  store::Wal wal(mem);
  wal.open();
  std::size_t since_commit = 0;
  for (auto _ : state) {
    wal.append_message_record(1, "blk/bids", BytesView(payload));
    if (++since_commit == 8) {
      wal.commit();
      since_commit = 0;
      mem->truncate(0);  // keep the buffer bounded across iterations
    }
    DoNotOptimize(wal.stats().records_appended);
  }
}
TINYBENCH(BM_wal_append)->Arg(64)->Arg(1024);

void BM_e2e_durable_clean(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_double_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    cfg.wal.enable = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_durable_clean)->Args({48, 4})->Args({128, 8});

// Solver-inclusive end-to-end point (the PR 2 trajectory number): the
// ε-approximate standard auction through the full distributed protocol.
void BM_e2e_sim_standard(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  auction::StandardAuctionParams params;
  params.epsilon = 0.25;
  auto adapter = std::make_shared<core::StandardAuctionAdapter>(params);
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = make_instance(users, m, 5);
  for (auto _ : state) {
    runtime::SimRunConfig cfg;
    cfg.seed = 99;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    DoNotOptimize(run.global_outcome.ok());
  }
}
TINYBENCH(BM_e2e_sim_standard)->Args({12, 3})->Args({48, 4});

// Service-plane points (runtime/service_runtime.hpp): a *stream* of N
// auctions multiplexed over one shared transport — the deployment shape the
// service plane exists for. BM_service_throughput runs the six-instance
// stream at pipeline depth 1 vs 2: the virtual-time speedup (depth 2 clears
// ≥ 1.5× more auctions per virtual second, pinned by tests/service_test.cpp)
// is a protocol property; this point tracks the *wall* cost of the
// multiplexing layer itself (topic scoping, demux, per-instance bundles).
// BM_service_p99 is the tail settle latency of a pipelined stream across the
// e2e sweep's scale band up to n = 512 bidders / m = 16 providers.
void BM_service_throughput(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t depth = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kProviders = 4, kInstances = 6;
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = kProviders;
  spec.k = 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  std::vector<auction::AuctionInstance> workloads;
  for (std::size_t t = 0; t < kInstances; ++t) {
    workloads.push_back(make_double_instance(
        users, kProviders, core::derive_instance_seed(5, t)));
  }
  for (auto _ : state) {
    runtime::ServiceRunConfig svc;
    svc.base.seed = 5;
    svc.instances = kInstances;
    svc.pipeline_depth = depth;
    const auto run = runtime::ServiceRuntime(svc).run(auctioneer, workloads);
    DoNotOptimize(run.auctions_per_vsec());
  }
}
TINYBENCH(BM_service_throughput)->Args({48, 1})->Args({48, 2});

void BM_service_p99(State& state) {
  const std::size_t users = static_cast<std::size_t>(state.range(0));
  const std::size_t m = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kInstances = 4;
  auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = (m + 1) / 2 - 1;
  spec.num_bidders = users;
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  std::vector<auction::AuctionInstance> workloads;
  for (std::size_t t = 0; t < kInstances; ++t) {
    workloads.push_back(
        make_double_instance(users, m, core::derive_instance_seed(5, t)));
  }
  for (auto _ : state) {
    runtime::ServiceRunConfig svc;
    svc.base.seed = 99;
    svc.instances = kInstances;
    svc.pipeline_depth = 2;
    const auto run = runtime::ServiceRuntime(svc).run(auctioneer, workloads);
    // Tail settle latency over the stream (p99 of launch→settle spans).
    std::vector<sim::SimTime> spans;
    for (const auto& inst : run.instances) {
      spans.push_back(inst.settled_at - inst.launched_at);
    }
    std::sort(spans.begin(), spans.end());
    DoNotOptimize(spans[(spans.size() * 99) / 100]);
  }
}
TINYBENCH(BM_service_p99)
    ->Args({48, 4})
    ->Args({128, 8})
    ->Args({512, 16});

// ---------------------------------------------------------------------------

/// "speedups" JSON section from matching *_ref / *_opt result pairs.
std::string speedups_json(const std::vector<tinybench::Result>& results) {
  std::string out = "  \"speedups\": {";
  bool first = true;
  for (const auto& ref : results) {
    const std::size_t pos = ref.op.find("_ref");
    if (pos == std::string::npos) continue;
    const std::string base = ref.op.substr(0, pos);
    for (const auto& opt : results) {
      if (opt.op != base + "_opt" || opt.n != ref.n) continue;
      if (opt.ns_per_op <= 0) continue;
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%s\n    \"%s/%lld\": %.2f",
                    first ? "" : ",", base.c_str(), static_cast<long long>(ref.n),
                    ref.ns_per_op / opt.ns_per_op);
      out += buf;
      first = false;
    }
  }
  out += "\n  }";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  tinybench::Options opt = tinybench::parse_args(argc, argv);
  if (opt.json_path.empty()) opt.json_path = "BENCH_dauct.json";

  const auto results = tinybench::run_all(opt);
  tinybench::print_table(results);
  if (!tinybench::write_json(results, opt.json_path, speedups_json(results))) {
    return 1;
  }
  std::printf("\nwrote %s (%zu benchmarks)\n", opt.json_path.c_str(), results.size());
  return 0;
}
