// Ablation A: bid-agreement encoding cost.
//
// The paper's construction feeds one rational-consensus instance per *bit*
// of the serialized bids. This ablation quantifies what that costs against
// the two batched implementations (bit-vector transport; value-level with
// digest echoes) in virtual time, messages, and bytes, for growing bidder
// counts and provider sets.
#include <cstdio>

#include "auction/workload.hpp"
#include "bench_util.hpp"
#include "blocks/bid_agreement.hpp"
#include "net/sim_transport.hpp"

namespace {

using namespace dauct;

struct Cell {
  double seconds;
  std::uint64_t messages;
  std::uint64_t bytes;
};

Cell run_mode(blocks::AgreementMode mode, std::size_t m, std::size_t n,
              std::uint64_t seed) {
  sim::Scheduler scheduler(m, sim::LatencyModel::community(), seed);
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints;
  std::vector<std::unique_ptr<blocks::BidAgreement>> nodes;
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(
        std::make_unique<net::SimEndpoint>(scheduler, j, m, seed + j));
    nodes.push_back(std::make_unique<blocks::BidAgreement>(
        *endpoints[j], "ba", n, auction::BidLimits{}, mode));
    auto* node = nodes.back().get();
    scheduler.set_deliver(j, [node](const net::Message& msg) { node->handle(msg); });
  }

  crypto::Rng rng(seed);
  const auto instance = auction::generate(auction::double_auction_workload(n, m), rng);
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(instance.bids);
  scheduler.run();

  sim::SimTime last = 0;
  for (NodeId j = 0; j < m; ++j) {
    if (!nodes[j]->done() || !nodes[j]->result()->ok()) {
      std::fprintf(stderr, "abl_bid_agreement: run failed\n");
      return {0, 0, 0};
    }
    last = std::max(last, scheduler.clock(j));
  }
  return {sim::to_seconds(last), scheduler.traffic().messages,
          scheduler.traffic().bytes};
}

}  // namespace

int main() {
  std::printf("# Ablation A: bid agreement modes (virtual seconds / messages / KB)\n");
  const std::vector<std::size_t> bidder_counts = {4, 8, 16, 32, 64};

  for (std::size_t m : {3u, 5u, 8u}) {
    std::printf("\n## m = %zu providers\n", m);
    std::printf("%-18s", "mode");
    for (std::size_t n : bidder_counts) std::printf(" %16s", ("n=" + std::to_string(n)).c_str());
    std::printf("\n");
    for (auto mode : {blocks::AgreementMode::kPerBitMessages,
                      blocks::AgreementMode::kBitStream,
                      blocks::AgreementMode::kValueBatched}) {
      std::printf("%-18s", blocks::agreement_mode_name(mode));
      for (std::size_t n : bidder_counts) {
        // The paper-literal per-bit mode explodes in message count; cap it.
        if (mode == blocks::AgreementMode::kPerBitMessages && n * m > 130) {
          std::printf(" %16s", "(skipped)");
          continue;
        }
        const Cell c = run_mode(mode, m, n, 1000 + n);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.3fs/%llu/%lluK", c.seconds,
                      static_cast<unsigned long long>(c.messages),
                      static_cast<unsigned long long>(c.bytes / 1024));
        std::printf(" %16s", buf);
      }
      std::printf("\n");
    }
  }
  std::printf("\n# expectation: per-bit ≫ bit-stream > value-batched in messages;\n");
  std::printf("# value-batched echo size is constant in n (digests)\n");
  return 0;
}
