// Durability equivalence pins (sim runtime).
//
// Three contracts, in increasing strength:
//  1. WAL off constructs nothing — every golden fingerprint (result bytes,
//     virtual makespan, traffic) is reproduced exactly, and the WAL counters
//     stay at zero.
//  2. WAL on, fault-free, is observationally silent — journaling every
//     delivery must not move a single scheduled event, so the *same* golden
//     fingerprints hold, now with nonzero journal counters.
//  3. Amnesia recovery is exact — a provider killed mid-protocol with its
//     memory dropped, rebuilt from the log, yields the byte-identical
//     fault-free result (the kill_restart.scn story, pinned in-process).
#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "crypto/sha256.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

// Golden auctioneer + fingerprint helpers live in test_util.hpp
// (testutil::make_golden_auctioneer / matches_golden_fingerprint) — shared
// with fanout_test and service_test.

std::string result_digest(const runtime::SimRunResult& run) {
  return testutil::outcome_digest(run.global_outcome);
}

TEST(DurabilityEquivalence, WalOffConstructsNothingAndMatchesGolden) {
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("seed=" + std::to_string(g.seed));
    const auto auctioneer = testutil::make_golden_auctioneer(g);
    const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
    runtime::SimRunConfig cfg;
    cfg.seed = g.seed;  // cfg.wal defaults to disabled
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    EXPECT_TRUE(testutil::matches_golden_fingerprint(g, run.global_outcome,
                                                     run.makespan, run.traffic));
    EXPECT_EQ(run.wal_stats.records_appended, 0u);
    EXPECT_EQ(run.wal_stats.commits, 0u);
    EXPECT_EQ(run.wal_stats.messages_replayed, 0u);
  }
}

TEST(DurabilityEquivalence, WalOnFaultFreeIsObservationallySilent) {
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("seed=" + std::to_string(g.seed));
    const auto auctioneer = testutil::make_golden_auctioneer(g);
    const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
    runtime::SimRunConfig cfg;
    cfg.seed = g.seed;
    cfg.wal.enable = true;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
    // Journaling must not perturb the run: identical fingerprints...
    EXPECT_TRUE(testutil::matches_golden_fingerprint(g, run.global_outcome,
                                                     run.makespan, run.traffic));
    // ...while the journal itself did real work.
    EXPECT_GT(run.wal_stats.records_appended, 0u);
    EXPECT_GT(run.wal_stats.commits, 0u);
    EXPECT_EQ(run.wal_stats.messages_replayed, 0u);  // nothing crashed
    EXPECT_EQ(run.wal_stats.snapshot_mismatches, 0u);
    EXPECT_EQ(run.wal_stats.truncated_bytes, 0u);
  }
}

// The kill_restart.scn shape, pinned in-process: provider 2 of 5 killed at
// t = 6 ms with amnesia, rebuilt from its WAL at t = 12 ms. The recovered
// run must land on the exact fault-free digest of this instance — which is
// golden run {12, 5, 2, seed 7} in the table.
TEST(DurabilityRecovery, AmnesiaKillRestartMatchesTheFaultFreeDigest) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  ASSERT_EQ(g.m, 5u);
  ASSERT_EQ(g.seed, 7u);
  const auto auctioneer = testutil::make_golden_auctioneer(g);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);

  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  cfg.latency = sim::LatencyModel::community();
  cfg.wal.enable = true;
  cfg.reliability.enable = true;
  sim::FaultPlan plan;
  plan.seed = 11;
  sim::CrashEvent crash;
  crash.node = 2;
  crash.at = sim::from_millis(6);
  crash.recover_at = sim::from_millis(12);
  crash.mode = sim::CrashMode::kAmnesia;
  plan.crashes.push_back(crash);
  cfg.faults = plan;

  const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
  ASSERT_TRUE(run.global_outcome.ok()) << "amnesia recovery stalled";
  EXPECT_FALSE(run.stalled);

  // The fault-free digest with these layers on (pinned silent above) is the
  // golden digest; the recovered run must reproduce it bit-for-bit.
  runtime::SimRunConfig clean = cfg;
  clean.faults.reset();
  const auto clean_run =
      runtime::SimRuntime(clean).run_distributed(auctioneer, inst);
  ASSERT_TRUE(clean_run.global_outcome.ok());
  EXPECT_EQ(result_digest(run), result_digest(clean_run));

  EXPECT_GT(run.wal_stats.messages_replayed, 0u)
      << "recovery should have replayed the victim's journal";
  EXPECT_EQ(run.wal_stats.snapshot_mismatches, 0u);
  EXPECT_GT(run.reliability_stats.rejoin_requests_sent, 0u);
}

// Beyond-k durability (amnesia_beyond_k.scn in-process): k+1 = 3 amnesia
// kills would stall forever under crash-stop, but with every node restarting
// from its WAL the run completes with the fault-free digest.
TEST(DurabilityRecovery, BeyondKAmnesiaBurstStillCompletes) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  const auto auctioneer = testutil::make_golden_auctioneer(g);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);

  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  cfg.latency = sim::LatencyModel::community();
  cfg.wal.enable = true;
  cfg.reliability.enable = true;
  sim::FaultPlan plan;
  plan.seed = 13;
  for (const NodeId node : {0u, 2u, 4u}) {
    sim::CrashEvent crash;
    crash.node = node;
    crash.at = sim::from_millis(6);
    crash.recover_at = sim::from_millis(30);
    crash.mode = sim::CrashMode::kAmnesia;
    plan.crashes.push_back(crash);
  }
  cfg.faults = plan;

  const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
  ASSERT_TRUE(run.global_outcome.ok()) << "beyond-k amnesia burst stalled";

  runtime::SimRunConfig clean = cfg;
  clean.faults.reset();
  const auto clean_run =
      runtime::SimRuntime(clean).run_distributed(auctioneer, inst);
  EXPECT_EQ(result_digest(run), result_digest(clean_run));
  EXPECT_GT(run.wal_stats.messages_replayed, 0u);
}

}  // namespace
}  // namespace dauct
