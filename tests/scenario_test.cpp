// Fault-injection scenario subsystem tests.
//
// Three layers of guarantees:
//  * parsing — the INI reader and the strict .scn schema (unknown keys and
//    malformed values are errors, not silent defaults);
//  * determinism — same seed + same plan ⇒ byte-identical outcome digest,
//    makespan, traffic and fault counters; an installed zero-rate plan is
//    bit-identical to no plan at all (pinned against the pre-refactor golden
//    fingerprints shared with fanout_test.cpp);
//  * the shipped library — every scenarios/*.scn parses, runs, and satisfies
//    its own [expect] section (the same check CI's scenario-matrix step runs
//    through dauct_cli --scenario).
#include <gtest/gtest.h>

#include <filesystem>

#include "core/adapters.hpp"
#include "crypto/sha256.hpp"
#include "runtime/scenario.hpp"
#include "serde/auction_codec.hpp"
#include "serde/ini.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

// ---------------------------------------------------------------------------
// INI reader
// ---------------------------------------------------------------------------

TEST(Ini, SectionsKeysCommentsAndRepeats) {
  const auto r = serde::parse_ini(
      "# leading comment\n"
      "[alpha]\n"
      "key = value with spaces\n"
      "n=42\n"
      "; semicolon comment\n"
      "\n"
      "[beta]\n"
      "x = 1\n"
      "[alpha]\n"
      "x = 2\n");
  ASSERT_TRUE(r.ok()) << r.error;
  ASSERT_EQ(r.doc->sections.size(), 3u);  // repeated [alpha] = two entries
  EXPECT_EQ(r.doc->sections[0].name, "alpha");
  EXPECT_EQ(*r.doc->sections[0].get("key"), "value with spaces");
  EXPECT_EQ(*r.doc->sections[0].get("n"), "42");
  EXPECT_EQ(r.doc->sections[2].name, "alpha");
  EXPECT_EQ(*r.doc->sections[2].get("x"), "2");
  EXPECT_FALSE(r.doc->sections[0].get("missing").has_value());
}

TEST(Ini, ErrorsCarryLineNumbers) {
  const auto bad_line = serde::parse_ini("[ok]\nkey_without_equals\n");
  ASSERT_FALSE(bad_line.ok());
  EXPECT_NE(bad_line.error.find("line 2"), std::string::npos);

  const auto bad_header = serde::parse_ini("[unclosed\n");
  ASSERT_FALSE(bad_header.ok());
  EXPECT_NE(bad_header.error.find("line 1"), std::string::npos);

  const auto empty_key = serde::parse_ini("[s]\n= value\n");
  EXPECT_FALSE(empty_key.ok());
}

// ---------------------------------------------------------------------------
// Scenario schema
// ---------------------------------------------------------------------------

constexpr const char* kScenarioText = R"(
[scenario]
name = unit
description = schema coverage

[run]
auction = double
users = 12
providers = 5
k = 2
seed = 7
latency = community

[fault]
seed = 99

[link]
from = 0
to = 2
drop = 0.25
duplicate = 0.1
delay_ms = 1.5
jitter_ms = 0.5
from_ms = 2
until_ms = 20

[cut]
a = 1
b = 3
from_ms = 5
until_ms = 6

[partition]
group = 0, 1
from_ms = 0
until_ms = 2

[crash]
node = 4
at_ms = 10
recover_ms = 12

[deviation]
node = 2
strategy = equivocate-votes

[expect]
outcome = bottom
stalled = true
min_faults = 1
)";

TEST(ScenarioParse, FullSchemaRoundTrip) {
  const auto p = runtime::parse_scenario(kScenarioText);
  ASSERT_TRUE(p.ok()) << p.error;
  const runtime::Scenario& sc = *p.scenario;
  EXPECT_EQ(sc.name, "unit");
  EXPECT_EQ(sc.users, 12u);
  EXPECT_EQ(sc.providers, 5u);
  EXPECT_EQ(sc.k, 2u);
  EXPECT_EQ(sc.seed, 7u);
  EXPECT_EQ(sc.faults.seed, 99u);

  ASSERT_EQ(sc.faults.links.size(), 1u);
  const sim::LinkFault& link = sc.faults.links[0];
  EXPECT_EQ(link.from, 0u);
  EXPECT_EQ(link.to, 2u);
  EXPECT_DOUBLE_EQ(link.drop, 0.25);
  EXPECT_DOUBLE_EQ(link.duplicate, 0.1);
  EXPECT_EQ(link.extra_delay, sim::from_micros(1500));
  EXPECT_EQ(link.jitter, sim::from_micros(500));
  EXPECT_EQ(link.active_from, sim::from_millis(2));
  EXPECT_EQ(link.active_until, sim::from_millis(20));

  ASSERT_EQ(sc.faults.cuts.size(), 1u);
  EXPECT_EQ(sc.faults.cuts[0].a, 1u);
  EXPECT_EQ(sc.faults.cuts[0].b, 3u);
  ASSERT_EQ(sc.faults.partitions.size(), 1u);
  EXPECT_EQ(sc.faults.partitions[0].group, (std::vector<NodeId>{0, 1}));
  ASSERT_EQ(sc.faults.crashes.size(), 1u);
  EXPECT_EQ(sc.faults.crashes[0].node, 4u);
  EXPECT_EQ(sc.faults.crashes[0].at, sim::from_millis(10));
  EXPECT_EQ(sc.faults.crashes[0].recover_at, sim::from_millis(12));

  ASSERT_EQ(sc.deviations.size(), 1u);
  EXPECT_EQ(sc.deviations[0].node, 2u);
  EXPECT_EQ(sc.deviations[0].strategy, "equivocate-votes");

  EXPECT_EQ(sc.expect.outcome, runtime::ScenarioExpect::Outcome::kBottom);
  EXPECT_EQ(sc.expect.stalled, std::optional<bool>(true));
  EXPECT_EQ(sc.expect.min_faults, std::optional<std::uint64_t>(1));
}

TEST(ScenarioParse, StrictnessRejectsTypos) {
  // Unknown key in a known section.
  EXPECT_FALSE(runtime::parse_scenario("[run]\nuserz = 10\n").ok());
  // Unknown section.
  EXPECT_FALSE(runtime::parse_scenario("[lnik]\ndrop = 0.5\n").ok());
  // Probability out of range.
  EXPECT_FALSE(runtime::parse_scenario("[link]\ndrop = 1.5\n").ok());
  // Unknown deviation strategy.
  EXPECT_FALSE(
      runtime::parse_scenario("[deviation]\nnode = 1\nstrategy = lie-a-lot\n").ok());
  // Inconsistent spec: m ≤ 2k.
  EXPECT_FALSE(runtime::parse_scenario("[run]\nproviders = 4\nk = 2\n").ok());
  // Deviant node outside the provider range.
  EXPECT_FALSE(runtime::parse_scenario(
                   "[run]\nproviders = 5\nk = 1\n"
                   "[deviation]\nnode = 7\nstrategy = equivocate-votes\n")
                   .ok());
  // Keys before any section header.
  EXPECT_FALSE(runtime::parse_scenario("users = 10\n").ok());
  // Fault-section node beyond the deployment (providers 0..4, client = 5):
  // a typo'd id must be an error, not a rule that silently never fires.
  EXPECT_FALSE(runtime::parse_scenario(
                   "[run]\nproviders = 5\nk = 1\n[crash]\nnode = 7\nat_ms = 1\n")
                   .ok());
  EXPECT_FALSE(runtime::parse_scenario(
                   "[run]\nproviders = 5\nk = 1\n[partition]\ngroup = 0, 9\n")
                   .ok());
}

TEST(ScenarioParse, ReliabilitySectionRoundTrip) {
  const auto p = runtime::parse_scenario(
      "[run]\nproviders = 5\nk = 1\n"
      "[reliability]\nenable = true\nretransmit_delay_ms = 2.5\n"
      "max_retries = 4\nround_timeout_ms = 9\n");
  ASSERT_TRUE(p.ok()) << p.error;
  const net::ReliabilityConfig& r = p.scenario->reliability;
  EXPECT_TRUE(r.enable);
  EXPECT_EQ(r.retransmit_delay, sim::from_micros(2500));
  EXPECT_EQ(r.max_retries, 4u);
  EXPECT_EQ(r.round_timeout, sim::from_millis(9));
  // Defaults when the section is absent: disabled.
  const auto q = runtime::parse_scenario("[run]\nproviders = 5\nk = 1\n");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(q.scenario->reliability.enable);
}

TEST(ScenarioParse, ReliabilityStrictness) {
  // Unknown key.
  EXPECT_FALSE(runtime::parse_scenario("[reliability]\nretries = 3\n").ok());
  // Malformed bool.
  EXPECT_FALSE(runtime::parse_scenario("[reliability]\nenable = maybe\n").ok());
  // A zero retransmit delay would respin the timer wheel; rejected.
  EXPECT_FALSE(
      runtime::parse_scenario("[reliability]\nretransmit_delay_ms = 0\n").ok());
  // round_timeout_ms = 0 is the documented "watchdogs off" value.
  EXPECT_TRUE(
      runtime::parse_scenario("[run]\nproviders = 5\nk = 1\n"
                              "[reliability]\nround_timeout_ms = 0\n")
          .ok());
  // Tuning knobs without enable=true would silently do nothing: rejected.
  const auto dangling =
      runtime::parse_scenario("[run]\nproviders = 5\nk = 1\n"
                              "[reliability]\nround_timeout_ms = 9\n");
  EXPECT_FALSE(dangling.ok());
  EXPECT_NE(dangling.error.find("enable"), std::string::npos);
  EXPECT_FALSE(runtime::parse_scenario("[run]\nproviders = 5\nk = 1\n"
                                       "[reliability]\nmax_retries = 3\n")
                   .ok());
}

TEST(ScenarioParse, AbsurdTimesClampToForever) {
  const auto p = runtime::parse_scenario(
      "[run]\nproviders = 5\nk = 1\n"
      "[crash]\nnode = 1\nat_ms = 1\nrecover_ms = 99999999999999999\n");
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.scenario->faults.crashes[0].recover_at, sim::kSimForever);
}

TEST(ScenarioParse, ClientAndWildcardNodeNames) {
  const auto p = runtime::parse_scenario(
      "[run]\nproviders = 5\nk = 1\n"
      "[link]\nfrom = client\nto = any\ndrop = 0.5\n");
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.scenario->faults.links[0].from, 5u);  // client = node m
  EXPECT_EQ(p.scenario->faults.links[0].to, kNoNode);
}

TEST(ScenarioParse, MaxEventsKey) {
  const auto p = runtime::parse_scenario(
      "[run]\nproviders = 5\nk = 1\nmax_events = 123456\n");
  ASSERT_TRUE(p.ok()) << p.error;
  EXPECT_EQ(p.scenario->max_events, 123'456u);
  // Absent: the generous default budget.
  const auto q = runtime::parse_scenario("[run]\nproviders = 5\nk = 1\n");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.scenario->max_events, runtime::Scenario{}.max_events);
  // Zero would make every run ⊥ event-budget-exceeded: rejected.
  EXPECT_FALSE(
      runtime::parse_scenario("[run]\nproviders = 5\nk = 1\nmax_events = 0\n")
          .ok());
}

// ---------------------------------------------------------------------------
// The .scn emitter (to_scn)
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> scenario_files();  // defined below

TEST(ScenarioEmit, ToScnIsAFixpointOfParseOverTheFullSchema) {
  // One pass through parse ∘ to_scn canonicalizes formatting (key order,
  // float grammar); from then on the text must be stable: parse(to_scn(x))
  // emits byte-identical text, and the reparse carries the same semantics.
  const auto p1 = runtime::parse_scenario(kScenarioText);
  ASSERT_TRUE(p1.ok()) << p1.error;
  const std::string text2 = p1.scenario->to_scn();
  const auto p2 = runtime::parse_scenario(text2);
  ASSERT_TRUE(p2.ok()) << p2.error << "\n--- emitted ---\n" << text2;
  EXPECT_EQ(p2.scenario->to_scn(), text2);

  // Spot-check the semantics survived the trip.
  EXPECT_EQ(p2.scenario->users, p1.scenario->users);
  EXPECT_EQ(p2.scenario->k, p1.scenario->k);
  ASSERT_EQ(p2.scenario->faults.links.size(), 1u);
  EXPECT_DOUBLE_EQ(p2.scenario->faults.links[0].drop, 0.25);
  EXPECT_EQ(p2.scenario->faults.links[0].active_until, sim::from_millis(20));
  ASSERT_EQ(p2.scenario->deviations.size(), 1u);
  EXPECT_EQ(p2.scenario->deviations[0].strategy, "equivocate-votes");
  EXPECT_EQ(p2.scenario->expect.outcome,
            runtime::ScenarioExpect::Outcome::kBottom);
}

TEST(ScenarioEmit, EveryShippedScenarioRoundTripsThroughToScn) {
  for (const auto& path : scenario_files()) {
    SCOPED_TRACE(path.filename().string());
    const auto text = testutil::slurp_file(path);
    ASSERT_TRUE(text.has_value());
    const auto p1 = runtime::parse_scenario(*text);
    ASSERT_TRUE(p1.ok()) << p1.error;
    const std::string text2 = p1.scenario->to_scn();
    const auto p2 = runtime::parse_scenario(text2);
    ASSERT_TRUE(p2.ok()) << p2.error << "\n--- emitted ---\n" << text2;
    EXPECT_EQ(p2.scenario->to_scn(), text2) << "to_scn is not a fixpoint";
  }
}

TEST(ScenarioEmit, ReparsedScenarioRunsIdenticallyToTheOriginal) {
  // The emitter must not change what a scenario *does*: same outcome digest,
  // makespan, and traffic on both sides of the round-trip. One representative
  // (faulty, reliability-on) scenario keeps this fast.
  const auto text = testutil::slurp_file(
      std::filesystem::path(DAUCT_SCENARIO_DIR) / "dup_storm.scn");
  ASSERT_TRUE(text.has_value());
  const auto p1 = runtime::parse_scenario(*text);
  ASSERT_TRUE(p1.ok()) << p1.error;
  const auto p2 = runtime::parse_scenario(p1.scenario->to_scn());
  ASSERT_TRUE(p2.ok()) << p2.error;

  const auto a = runtime::run_scenario(*p1.scenario);
  const auto b = runtime::run_scenario(*p2.scenario);
  EXPECT_EQ(a.result_digest, b.result_digest);
  EXPECT_EQ(a.run.makespan, b.run.makespan);
  EXPECT_EQ(a.run.traffic.messages, b.run.traffic.messages);
  EXPECT_EQ(a.run.traffic.bytes, b.run.traffic.bytes);
}

// ---------------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------------

runtime::SimRunResult run_golden(const testutil::GoldenRun& g,
                                 std::optional<sim::FaultPlan> faults) {
  core::AuctioneerSpec spec;
  spec.m = g.m;
  spec.k = g.k;
  spec.num_bidders = g.n;
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (g.standard) {
    auction::StandardAuctionParams p;
    p.epsilon = 0.25;
    adapter = std::make_shared<core::StandardAuctionAdapter>(p);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  cfg.faults = std::move(faults);
  return runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
}

/// A plan full of rules that can never fire: zero rates, a cut and a
/// partition whose windows are empty, a crash in the unreachable future.
sim::FaultPlan zero_effect_plan() {
  sim::FaultPlan plan;
  plan.seed = 12345;
  sim::LinkFault rule;  // matches everything, does nothing
  plan.links.push_back(rule);
  sim::LinkCut cut;
  cut.a = 0;
  cut.b = 1;
  cut.from = sim::from_millis(5);
  cut.until = sim::from_millis(5);
  plan.cuts.push_back(cut);
  sim::Partition part;
  part.group = {0};
  part.from = sim::from_millis(3);
  part.until = sim::from_millis(3);
  plan.partitions.push_back(part);
  plan.crashes.push_back(
      sim::CrashEvent{0, sim::kSimForever - 1, sim::kSimForever});
  return plan;
}

TEST(ScenarioDeterminism, ZeroRatePlanIsBitIdenticalToNoPlan) {
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " seed=" + std::to_string(g.seed));
    const auto run = run_golden(g, zero_effect_plan());
    ASSERT_TRUE(run.global_outcome.ok());
    const Bytes enc = serde::encode_result(run.global_outcome.value());
    EXPECT_EQ(crypto::digest_hex(crypto::sha256(BytesView(enc))), g.result_sha256);
    EXPECT_EQ(run.makespan, static_cast<sim::SimTime>(g.makespan));
    EXPECT_EQ(run.traffic.messages, g.messages);
    EXPECT_EQ(run.traffic.bytes, g.bytes);
    EXPECT_EQ(run.fault_stats.total_dropped(), 0u);
    EXPECT_EQ(run.fault_stats.duplicated, 0u);
    EXPECT_EQ(run.fault_stats.delayed, 0u);
  }
}

sim::FaultPlan lossy_plan(std::uint64_t seed) {
  sim::FaultPlan plan;
  plan.seed = seed;
  sim::LinkFault rule;
  rule.drop = 0.1;
  rule.duplicate = 0.05;
  rule.extra_delay = sim::from_micros(200);
  rule.jitter = sim::from_micros(700);
  plan.links.push_back(rule);
  plan.crashes.push_back(sim::CrashEvent{2, sim::from_millis(9)});
  return plan;
}

TEST(ScenarioDeterminism, SameSeedSamePlanSameBytes) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  const auto a = run_golden(g, lossy_plan(42));
  const auto b = run_golden(g, lossy_plan(42));

  // Faulty runs of this severity stall; equality must hold for the whole
  // observable fingerprint either way.
  EXPECT_EQ(a.global_outcome.ok(), b.global_outcome.ok());
  if (a.global_outcome.ok()) {
    EXPECT_EQ(serde::encode_result(a.global_outcome.value()),
              serde::encode_result(b.global_outcome.value()));
  } else {
    EXPECT_EQ(a.global_outcome.bottom().reason, b.global_outcome.bottom().reason);
  }
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.traffic.messages, b.traffic.messages);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
  EXPECT_EQ(a.fault_stats.link_dropped, b.fault_stats.link_dropped);
  EXPECT_EQ(a.fault_stats.crash_dropped, b.fault_stats.crash_dropped);
  EXPECT_EQ(a.fault_stats.duplicated, b.fault_stats.duplicated);
  EXPECT_EQ(a.fault_stats.delayed, b.fault_stats.delayed);
}

TEST(ScenarioDeterminism, FaultSeedChangesTheFaultStreamOnly) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  const auto a = run_golden(g, lossy_plan(42));
  const auto b = run_golden(g, lossy_plan(43));
  // Different fault seeds make different drop decisions — the runs diverge
  // somewhere (traffic, stats, or outcome). This is a smoke check that the
  // fault RNG is actually consulted.
  const bool identical = a.traffic.messages == b.traffic.messages &&
                         a.fault_stats.link_dropped == b.fault_stats.link_dropped &&
                         a.fault_stats.duplicated == b.fault_stats.duplicated &&
                         a.makespan == b.makespan;
  EXPECT_FALSE(identical);
}

TEST(ScenarioDeterminism, DelayOnlyPlanPreservesTheResult) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.seed = 9;
  sim::LinkFault rule;
  rule.extra_delay = sim::from_millis(3);
  rule.jitter = sim::from_millis(2);
  plan.links.push_back(rule);

  const auto clean = run_golden(g, std::nullopt);
  const auto slow = run_golden(g, plan);
  ASSERT_TRUE(clean.global_outcome.ok());
  ASSERT_TRUE(slow.global_outcome.ok());
  // Delays reorder deliveries but rounds are content-addressed: the decided
  // result is identical; only the makespan moves.
  EXPECT_EQ(serde::encode_result(clean.global_outcome.value()),
            serde::encode_result(slow.global_outcome.value()));
  EXPECT_GT(slow.makespan, clean.makespan);
  EXPECT_GT(slow.fault_stats.delayed, 0u);
}

// ---------------------------------------------------------------------------
// Crash semantics
// ---------------------------------------------------------------------------

TEST(ScenarioCrash, CrashAfterDecisionPreservesOutcome) {
  // Providers on this instance decide by ~22 ms; the client collects by
  // ~25 ms. Crashing k=2 providers in between must not disturb the outcome.
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashEvent{1, sim::from_millis(23)});
  plan.crashes.push_back(sim::CrashEvent{3, sim::from_millis(23)});
  const auto run = run_golden(g, plan);
  ASSERT_TRUE(run.global_outcome.ok());
  const Bytes enc = serde::encode_result(run.global_outcome.value());
  EXPECT_EQ(crypto::digest_hex(crypto::sha256(BytesView(enc))), g.result_sha256);
  EXPECT_FALSE(run.stalled);
}

TEST(ScenarioCrash, CrashMidRoundStallsToBottom) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashEvent{1, sim::from_millis(8)});
  const auto run = run_golden(g, plan);
  EXPECT_TRUE(run.stalled);
  ASSERT_FALSE(run.global_outcome.ok());
  EXPECT_EQ(run.global_outcome.bottom().reason, AbortReason::kTimeout);
  EXPECT_GT(run.fault_stats.crash_dropped, 0u);
}

TEST(ScenarioCrash, CrashRecoverInQuietWindowIsInvisible) {
  // Down from 0.5 ms to 2 ms: the client batches are still in flight
  // (community base latency is 2.5 ms), so the node misses nothing and the
  // run reproduces the golden fingerprint exactly.
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.crashes.push_back(
      sim::CrashEvent{1, sim::from_micros(500), sim::from_millis(2)});
  const auto run = run_golden(g, plan);
  ASSERT_TRUE(run.global_outcome.ok());
  const Bytes enc = serde::encode_result(run.global_outcome.value());
  EXPECT_EQ(crypto::digest_hex(crypto::sha256(BytesView(enc))), g.result_sha256);
  EXPECT_EQ(run.makespan, static_cast<sim::SimTime>(g.makespan));
  EXPECT_EQ(run.fault_stats.crash_dropped, 0u);
}

// ---------------------------------------------------------------------------
// The shipped scenario library
// ---------------------------------------------------------------------------

std::vector<std::filesystem::path> scenario_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(DAUCT_SCENARIO_DIR)) {
    if (entry.path().extension() == ".scn") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(ScenarioLibrary, EveryShippedScenarioParsesRunsAndSelfChecks) {
  const auto files = scenario_files();
  ASSERT_GE(files.size(), 12u) << "the scenario library shrank below spec";
  std::vector<std::string> names;
  for (const auto& path : files) {
    SCOPED_TRACE(path.filename().string());
    const auto text = testutil::slurp_file(path);
    ASSERT_TRUE(text.has_value());
    const auto parsed = runtime::parse_scenario(*text);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_FALSE(parsed.scenario->name.empty()) << "scenario without a name";
    names.push_back(parsed.scenario->name);
    const auto run = runtime::run_scenario(*parsed.scenario);
    for (const auto& failure : run.failures) ADD_FAILURE() << failure;
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::adjacent_find(names.begin(), names.end()), names.end())
      << "duplicate scenario names";
}

TEST(ScenarioLibrary, CleanScenarioReproducesTheGoldenFingerprint) {
  // scenarios/clean.scn runs the kGoldenRuns[1] instance with an (empty)
  // fault plan *installed* — pinning that hook-but-no-faults equals the
  // pre-fault-subsystem implementation byte for byte.
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  const auto text =
      testutil::slurp_file(std::filesystem::path(DAUCT_SCENARIO_DIR) / "clean.scn");
  ASSERT_TRUE(text.has_value());
  const auto parsed = runtime::parse_scenario(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.scenario->users, g.n);
  ASSERT_EQ(parsed.scenario->providers, g.m);
  ASSERT_EQ(parsed.scenario->seed, g.seed);
  const auto run = runtime::run_scenario(*parsed.scenario);
  EXPECT_TRUE(run.ok());
  EXPECT_EQ(run.result_digest, g.result_sha256);
  EXPECT_EQ(run.run.makespan, static_cast<sim::SimTime>(g.makespan));
  EXPECT_EQ(run.run.traffic.messages, g.messages);
  EXPECT_EQ(run.run.traffic.bytes, g.bytes);
}

TEST(ScenarioLibrary, LossyLanCompletesUnderReliabilityWithAPinnedDigest) {
  // The flipped flagship: 2% loss, n=64 m=9, reliability on. The run must
  // complete with exactly the fault-free result; the digest is pinned so a
  // reliability-layer regression that still "completes" (with the wrong
  // bytes, or by luckily dodging the faults) cannot slip through.
  const auto text = testutil::slurp_file(
      std::filesystem::path(DAUCT_SCENARIO_DIR) / "lossy_lan.scn");
  ASSERT_TRUE(text.has_value());
  const auto parsed = runtime::parse_scenario(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.scenario->reliability.enable);
  const auto run = runtime::run_scenario(*parsed.scenario);
  EXPECT_TRUE(run.ok());
  EXPECT_EQ(run.result_digest,
            "a5923131da9c9439f5a51150baf49aa4d099bb5e85a57f1ec85b8d44c3f8856f");
  EXPECT_EQ(run.result_digest, run.clean_digest);
  EXPECT_GT(run.run.fault_stats.link_dropped, 0u);
  EXPECT_GT(run.run.reliability_stats.retransmits, 0u);
  EXPECT_EQ(run.run.reliability_stats.give_ups, 0u);
}

TEST(ScenarioLibrary, DupStormPairPinsTheMigration) {
  // The same 15%-duplication fault plan, twice: reliability off must keep
  // the historical equivocation-⊥ reading (dup_storm_legacy), reliability on
  // must dedup below the collectors and complete (dup_storm).
  const auto read = [&](const char* name) {
    const auto text =
        testutil::slurp_file(std::filesystem::path(DAUCT_SCENARIO_DIR) / name);
    EXPECT_TRUE(text.has_value());
    const auto parsed = runtime::parse_scenario(*text);
    EXPECT_TRUE(parsed.ok()) << parsed.error;
    return *parsed.scenario;
  };
  const runtime::Scenario legacy = read("dup_storm_legacy.scn");
  const runtime::Scenario migrated = read("dup_storm.scn");
  ASSERT_FALSE(legacy.reliability.enable);
  ASSERT_TRUE(migrated.reliability.enable);
  ASSERT_EQ(legacy.seed, migrated.seed);
  ASSERT_EQ(legacy.faults.seed, migrated.faults.seed);

  const auto off = runtime::run_scenario(legacy);
  EXPECT_TRUE(off.ok());
  EXPECT_FALSE(off.run.global_outcome.ok());

  const auto on = runtime::run_scenario(migrated);
  EXPECT_TRUE(on.ok());
  ASSERT_TRUE(on.run.global_outcome.ok());
  EXPECT_EQ(on.result_digest, on.clean_digest);
  EXPECT_GT(on.run.reliability_stats.duplicates_suppressed, 0u);
}

TEST(ScenarioLibrary, BidderAdversaryReproActuallyBendsTheMarket) {
  // bidder_adversary_replay.scn must not pass vacuously: the bidder scripts
  // have to really change the outcome relative to an all-honest market (the
  // exclusions are the auction's defined result for those users), while the
  // frame tricks stay invisible — the run still matches its clean twin,
  // which keeps the scripts and drops only replay/reorder.
  const auto text = testutil::slurp_file(std::filesystem::path(DAUCT_SCENARIO_DIR) /
                                         "bidder_adversary_replay.scn");
  ASSERT_TRUE(text.has_value());
  const auto parsed = runtime::parse_scenario(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.scenario->bidders.size(), 2u);
  ASSERT_TRUE(parsed.scenario->bid_frames.any());

  const auto run = runtime::run_scenario(*parsed.scenario);
  EXPECT_TRUE(run.ok());
  ASSERT_TRUE(run.run.global_outcome.ok());
  EXPECT_EQ(run.result_digest, run.clean_digest);

  runtime::Scenario honest = *parsed.scenario;
  honest.bidders.clear();
  honest.bid_frames = {};
  honest.expect = {};
  const auto honest_run = runtime::run_scenario(honest);
  ASSERT_TRUE(honest_run.run.global_outcome.ok());
  EXPECT_NE(honest_run.result_digest, run.result_digest)
      << "the adversarial bidders were absorbed without any market effect — "
         "the scenario no longer exercises the bidder-adversary axis";
}

TEST(ScenarioLibrary, WalTornTailReproReallyDamagesTheLog) {
  // wal_torn_tail.scn recovery must come off a genuinely damaged live tail:
  // the lying disk has to drop at least one fsync and apply crash damage,
  // or the scenario degenerates into plain kill_restart.
  const auto text = testutil::slurp_file(std::filesystem::path(DAUCT_SCENARIO_DIR) /
                                         "wal_torn_tail.scn");
  ASSERT_TRUE(text.has_value());
  const auto parsed = runtime::parse_scenario(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_TRUE(parsed.scenario->wal_fault.enable);

  const auto run = runtime::run_scenario(*parsed.scenario);
  EXPECT_TRUE(run.ok());
  ASSERT_TRUE(run.run.global_outcome.ok());
  EXPECT_EQ(run.result_digest, run.clean_digest);

  const auto& sf = run.run.storage_fault_stats;
  EXPECT_EQ(sf.crashes, 1u);  // the decorator saw the amnesia instant
  EXPECT_GT(sf.syncs_dropped, 0u) << "no fsync ever lied";
  EXPECT_GT(sf.torn_bytes + sf.flipped_bytes, 0u)
      << "the crash damaged nothing — the torn-tail path went unexercised";
  // Recovery noticed: the reopened log truncated the damaged tail.
  EXPECT_GT(run.run.wal_stats.truncated_bytes, 0u);
}

}  // namespace
}  // namespace dauct
