#include <gtest/gtest.h>

#include <set>

#include "adversary/provider_deviation.hpp"
#include "blocks/bid_agreement.hpp"
#include "blocks/common_coin.hpp"
#include "blocks/data_transfer.hpp"
#include "blocks/input_validation.hpp"
#include "blocks/output_agreement.hpp"
#include "test_util.hpp"

namespace dauct::blocks {
namespace {

using testutil::LocalNet;

TEST(TopicUtil, JoinAndPrefix) {
  EXPECT_EQ(topic_join("ba", "vote"), "ba/vote");
  EXPECT_TRUE(topic_has_prefix("ba/vote", "ba"));
  EXPECT_TRUE(topic_has_prefix("ba", "ba"));
  EXPECT_FALSE(topic_has_prefix("bank/vote", "ba"));
  EXPECT_FALSE(topic_has_prefix("b", "ba"));
}

TEST(RoundCollector, CollectsOnePerProvider) {
  RoundCollector rc(3);
  EXPECT_FALSE(rc.complete());
  EXPECT_TRUE(rc.add(0, Bytes{1}));
  EXPECT_FALSE(rc.add(0, Bytes{2}));  // duplicate
  EXPECT_FALSE(rc.add(7, Bytes{3}));  // out of range
  EXPECT_TRUE(rc.add(2, Bytes{4}));
  EXPECT_TRUE(rc.add(1, Bytes{5}));
  EXPECT_TRUE(rc.complete());
  EXPECT_EQ(rc.payloads()[2], Bytes{4});
}

// ---------------------------------------------------------------------------
// Input validation
// ---------------------------------------------------------------------------

std::vector<Outcome<Bytes>> run_iv(std::size_t m, const std::vector<Bytes>& inputs) {
  LocalNet net(m);
  std::vector<std::unique_ptr<InputValidation>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    nodes[j] = std::make_unique<InputValidation>(net.endpoint(j), "alloc/iv");
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(inputs[j]);
  net.run();
  std::vector<Outcome<Bytes>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done());
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST(InputValidation, SameInputPasses) {
  const Bytes input = {1, 2, 3};
  const auto outs = run_iv(4, std::vector<Bytes>(4, input));
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), input);
  }
}

TEST(InputValidation, DifferentInputAborts) {
  std::vector<Bytes> inputs(4, Bytes{1, 2, 3});
  inputs[2] = {9, 9};
  const auto outs = run_iv(4, inputs);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.is_bottom());
    EXPECT_EQ(o.bottom().reason, AbortReason::kInputMismatch);
  }
}

TEST(InputValidation, EmptyInputsStillAgree) {
  const auto outs = run_iv(3, std::vector<Bytes>(3));
  for (const auto& o : outs) EXPECT_TRUE(o.ok());
}

// ---------------------------------------------------------------------------
// Common coin
// ---------------------------------------------------------------------------

std::vector<Outcome<CoinValue>> run_coin(std::size_t m, const DistributionSpec& spec,
                                         std::uint64_t seed = 7,
                                         NodeId corrupt = kNoNode) {
  LocalNet net(m, seed);
  std::vector<std::unique_ptr<adversary::DeviantEndpoint>> deviants(m);
  std::vector<std::unique_ptr<CommonCoin>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    blocks::Endpoint* ep = &net.endpoint(j);
    if (j == corrupt) {
      deviants[j] = std::make_unique<adversary::DeviantEndpoint>(
          *ep, adversary::corrupt_coin_reveal());
      ep = deviants[j].get();
    }
    nodes[j] = std::make_unique<CommonCoin>(*ep, "alloc/coin");
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(spec);
  net.run();
  std::vector<Outcome<CoinValue>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done());
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST(CommonCoin, AllProvidersSameValue) {
  const auto outs = run_coin(5, DistributionSpec::seed64());
  ASSERT_TRUE(outs[0].ok());
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value().raw, outs[0].value().raw);
  }
}

TEST(CommonCoin, DifferentSeedsDifferentValues) {
  const auto a = run_coin(3, DistributionSpec::seed64(), 1);
  const auto b = run_coin(3, DistributionSpec::seed64(), 2);
  ASSERT_TRUE(a[0].ok());
  ASSERT_TRUE(b[0].ok());
  EXPECT_NE(a[0].value().raw, b[0].value().raw);
}

TEST(CommonCoin, UniformIntInRange) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto outs = run_coin(3, DistributionSpec::uniform_int(5, 9), seed);
    ASSERT_TRUE(outs[0].ok());
    EXPECT_GE(outs[0].value().integer, 5);
    EXPECT_LE(outs[0].value().integer, 9);
  }
}

TEST(CommonCoin, Uniform01InRange) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto outs = run_coin(3, DistributionSpec::uniform01(), seed);
    ASSERT_TRUE(outs[0].ok());
    EXPECT_GE(outs[0].value().real, 0.0);
    EXPECT_LT(outs[0].value().real, 1.0);
  }
}

TEST(CommonCoin, ExponentialNonNegative) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto outs = run_coin(3, DistributionSpec::exponential(2.0), seed);
    ASSERT_TRUE(outs[0].ok());
    EXPECT_GE(outs[0].value().real, 0.0);
  }
}

TEST(CommonCoin, RoughlyUniformAcrossRuns) {
  // χ²-ish sanity: bucket the raw coin over many seeds.
  std::array<int, 8> buckets{};
  const int runs = 160;
  for (int seed = 1; seed <= runs; ++seed) {
    const auto outs = run_coin(3, DistributionSpec::seed64(), seed);
    ASSERT_TRUE(outs[0].ok());
    ++buckets[outs[0].value().raw >> 61];
  }
  for (int count : buckets) {
    EXPECT_GT(count, runs / 8 / 3);  // no bucket starved
    EXPECT_LT(count, runs / 8 * 3);  // no bucket dominating
  }
}

TEST(CommonCoin, CorruptRevealAborts) {
  const auto outs = run_coin(4, DistributionSpec::seed64(), 7, /*corrupt=*/1);
  for (NodeId j = 0; j < 4; ++j) {
    if (j == 1) continue;  // the deviant's own state is its business
    ASSERT_TRUE(outs[j].is_bottom()) << j;
    EXPECT_EQ(outs[j].bottom().reason, AbortReason::kInvalidCommitment);
  }
}

// ---------------------------------------------------------------------------
// Data transfer
// ---------------------------------------------------------------------------

struct DtRun {
  std::vector<Outcome<Bytes>> outs;
};

DtRun run_dt(std::size_t m, std::vector<NodeId> sources, std::vector<NodeId> receivers,
             const Bytes& value, NodeId forger = kNoNode) {
  LocalNet net(m);
  std::vector<std::unique_ptr<adversary::DeviantEndpoint>> deviants(m);
  std::vector<std::unique_ptr<DataTransfer>> nodes(m);
  std::vector<NodeId> coalition;
  if (forger != kNoNode) coalition.push_back(forger);
  for (NodeId j = 0; j < m; ++j) {
    blocks::Endpoint* ep = &net.endpoint(j);
    if (j == forger) {
      deviants[j] = std::make_unique<adversary::DeviantEndpoint>(
          *ep, adversary::forge_task_results(coalition));
      ep = deviants[j].get();
    }
    nodes[j] = std::make_unique<DataTransfer>(*ep, "alloc/dt/0", sources, receivers);
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) {
    const bool is_src =
        std::find(sources.begin(), sources.end(), j) != sources.end();
    nodes[j]->start(is_src ? std::optional<Bytes>(value) : std::nullopt);
  }
  net.run();
  DtRun run;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done()) << j;
    run.outs.push_back(nodes[j]->done()
                           ? *nodes[j]->result()
                           : Outcome<Bytes>(Bottom{AbortReason::kTimeout, ""}));
  }
  return run;
}

TEST(DataTransfer, DeliversToReceivers) {
  const Bytes value = {1, 2, 3, 4};
  const auto run = run_dt(5, {0, 1}, {2, 3, 4}, value);
  for (NodeId j = 2; j < 5; ++j) {
    ASSERT_TRUE(run.outs[j].ok());
    EXPECT_EQ(run.outs[j].value(), value);
  }
}

TEST(DataTransfer, SourcesCompleteImmediately) {
  const auto run = run_dt(4, {0, 1}, {2, 3}, Bytes{7});
  EXPECT_TRUE(run.outs[0].ok());
  EXPECT_TRUE(run.outs[1].ok());
}

TEST(DataTransfer, SourceAlsoReceiverCrossChecks) {
  const Bytes value = {42};
  const auto run = run_dt(3, {0, 1}, {0, 1, 2}, value);
  for (NodeId j = 0; j < 3; ++j) {
    ASSERT_TRUE(run.outs[j].ok());
  }
  EXPECT_EQ(run.outs[2].value(), value);
}

TEST(DataTransfer, ForgedCopyDetected) {
  // Source 1 forges the value it sends to non-coalition receivers: every
  // receiver sees two different copies → ⊥ (|S| > k makes forgery visible).
  const auto run = run_dt(5, {0, 1}, {2, 3, 4}, Bytes{1, 2, 3}, /*forger=*/1);
  for (NodeId j = 2; j < 5; ++j) {
    ASSERT_TRUE(run.outs[j].is_bottom()) << j;
    EXPECT_EQ(run.outs[j].bottom().reason, AbortReason::kTransferMismatch);
  }
}

TEST(DataTransfer, ValueFromNonSourceAborts) {
  LocalNet net(3);
  DataTransfer node2(net.endpoint(2), "alloc/dt/0", {0}, {2});
  net.set_handler(2, [&](const net::Message& msg) { node2.handle(msg); });
  // Node 1 (not a source) injects a value.
  net.endpoint(1).send(2, "alloc/dt/0/val", Bytes{9});
  net.run();
  ASSERT_TRUE(node2.done());
  EXPECT_TRUE(node2.result()->is_bottom());
}

// ---------------------------------------------------------------------------
// Output agreement
// ---------------------------------------------------------------------------

std::vector<Outcome<Bytes>> run_oa(std::size_t m, const std::vector<Bytes>& results) {
  LocalNet net(m);
  std::vector<std::unique_ptr<OutputAgreement>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    nodes[j] = std::make_unique<OutputAgreement>(net.endpoint(j), "alloc/out");
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(results[j]);
  net.run();
  std::vector<Outcome<Bytes>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done());
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST(OutputAgreement, IdenticalResultsPass) {
  const Bytes result = {5, 5, 5};
  const auto outs = run_oa(4, std::vector<Bytes>(4, result));
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), result);
  }
}

TEST(OutputAgreement, DivergentResultAborts) {
  std::vector<Bytes> results(4, Bytes{5, 5, 5});
  results[3] = {6};
  const auto outs = run_oa(4, results);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.is_bottom());
    EXPECT_EQ(o.bottom().reason, AbortReason::kOutputMismatch);
  }
}

// ---------------------------------------------------------------------------
// Bid agreement (all three modes)
// ---------------------------------------------------------------------------

class BidAgreementModes : public ::testing::TestWithParam<AgreementMode> {};

std::vector<Outcome<std::vector<auction::Bid>>> run_ba(
    std::size_t m, AgreementMode mode,
    const std::vector<std::vector<auction::Bid>>& per_provider_bids,
    std::size_t num_bidders) {
  LocalNet net(m);
  auction::BidLimits limits;
  std::vector<std::unique_ptr<BidAgreement>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    nodes[j] =
        std::make_unique<BidAgreement>(net.endpoint(j), "ba", num_bidders, limits, mode);
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(per_provider_bids[j]);
  net.run();
  std::vector<Outcome<std::vector<auction::Bid>>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done()) << "provider " << j;
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST_P(BidAgreementModes, ValidityForConsistentBidders) {
  const std::size_t m = 3, n = 4;
  std::vector<auction::Bid> bids;
  for (BidderId i = 0; i < n; ++i) {
    bids.push_back({i, Money::from_double(0.8 + 0.1 * i), Money::from_double(0.5)});
  }
  const auto outs = run_ba(m, GetParam(), std::vector(m, bids), n);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), bids);  // every consistent bid survives verbatim
  }
}

TEST_P(BidAgreementModes, AgreementUnderEquivocatingBidder) {
  const std::size_t m = 5, n = 3;
  std::vector<auction::Bid> base;
  for (BidderId i = 0; i < n; ++i) {
    base.push_back({i, Money::from_double(1.0), Money::from_double(0.5)});
  }
  // Bidder 1 told providers 0-1 one thing and providers 2-4 another.
  std::vector<std::vector<auction::Bid>> per_provider(m, base);
  for (NodeId j = 0; j < 2; ++j) {
    per_provider[j][1].unit_value = Money::from_double(0.6);
  }
  const auto outs = run_ba(m, GetParam(), per_provider, n);
  ASSERT_TRUE(outs[0].ok());
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), outs[0].value());  // agreement regardless
    // Consistent bidders keep their bids (validity).
    EXPECT_EQ(o.value()[0], base[0]);
    EXPECT_EQ(o.value()[2], base[2]);
  }
  // The majority view (providers 2-4) wins for bidder 1 in all modes.
  EXPECT_EQ(outs[0].value()[1].unit_value, Money::from_double(1.0));
}

TEST_P(BidAgreementModes, MissingBidderBecomesNeutral) {
  const std::size_t m = 3, n = 2;
  std::vector<auction::Bid> bids = {
      {0, Money::from_double(1.0), Money::from_double(0.5)},
      auction::neutral_bid(1),
  };
  const auto outs = run_ba(m, GetParam(), std::vector(m, bids), n);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value()[1].is_neutral());
  }
}

TEST_P(BidAgreementModes, ShortInputVectorPaddedWithNeutral) {
  const std::size_t m = 3, n = 3;
  std::vector<auction::Bid> bids = {
      {0, Money::from_double(1.0), Money::from_double(0.5)}};  // only bidder 0
  const auto outs = run_ba(m, GetParam(), std::vector(m, bids), n);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    ASSERT_EQ(o.value().size(), n);
    EXPECT_TRUE(o.value()[1].is_neutral());
    EXPECT_TRUE(o.value()[2].is_neutral());
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, BidAgreementModes,
                         ::testing::Values(AgreementMode::kValueBatched,
                                           AgreementMode::kBitStream,
                                           AgreementMode::kPerBitMessages),
                         [](const auto& info) {
                           return std::string(agreement_mode_name(info.param)) ==
                                          "per-bit-messages"
                                      ? "PerBit"
                                  : info.param == AgreementMode::kBitStream
                                      ? "BitStream"
                                      : "ValueBatched";
                         });

}  // namespace
}  // namespace dauct::blocks
