#include <gtest/gtest.h>

#include "auction/workload.hpp"

namespace dauct::auction {
namespace {

TEST(Workload, PaperDistributionsRespected) {
  crypto::Rng rng(1);
  const AuctionInstance inst = generate(double_auction_workload(500, 8), rng);
  ASSERT_EQ(inst.bids.size(), 500u);
  ASSERT_EQ(inst.asks.size(), 8u);
  for (const auto& b : inst.bids) {
    // §6.2: bids ~ U[0.75, 1.25]; demand ~ U(0, 1].
    EXPECT_GE(b.unit_value, Money::from_double(0.75));
    EXPECT_LE(b.unit_value, Money::from_double(1.25));
    EXPECT_GT(b.demand, kZeroMoney);
    EXPECT_LE(b.demand, Money::from_units(1));
  }
  for (const auto& a : inst.asks) {
    EXPECT_GT(a.unit_cost, kZeroMoney);
    EXPECT_LE(a.unit_cost, Money::from_units(1));
    EXPECT_GE(a.capacity, kZeroMoney);
  }
}

TEST(Workload, DoubleAuctionCapacityAroundDemand) {
  crypto::Rng rng(2);
  const AuctionInstance inst = generate(double_auction_workload(400, 8), rng);
  Money demand, capacity;
  for (const auto& b : inst.bids) demand += b.demand;
  for (const auto& a : inst.asks) capacity += a.capacity;
  // Capacity factors ~ U[0.5, 1.5] of the per-provider share: total capacity
  // lands near total demand.
  EXPECT_GT(capacity, demand.mul(Money::from_double(0.5)));
  EXPECT_LT(capacity, demand.mul(Money::from_double(1.5)));
}

TEST(Workload, StandardAuctionScarceCapacity) {
  crypto::Rng rng(3);
  const AuctionInstance inst = generate(standard_auction_workload(400, 8), rng);
  Money demand, capacity;
  for (const auto& b : inst.bids) demand += b.demand;
  for (const auto& a : inst.asks) capacity += a.capacity;
  // §6.3: factors U[0, 0.25] → "roughly no more than a quarter of the users
  // win the bids".
  EXPECT_LT(capacity, demand.mul(Money::from_double(0.3)));
}

TEST(Workload, DeterministicGivenRngState) {
  crypto::Rng a(7), b(7);
  const AuctionInstance x = generate(double_auction_workload(50, 4), a);
  const AuctionInstance y = generate(double_auction_workload(50, 4), b);
  EXPECT_EQ(x.bids, y.bids);
  EXPECT_EQ(x.asks, y.asks);
}

TEST(Workload, BidderIdsAreDense) {
  crypto::Rng rng(9);
  const AuctionInstance inst = generate(double_auction_workload(30, 3), rng);
  for (std::size_t i = 0; i < inst.bids.size(); ++i) {
    EXPECT_EQ(inst.bids[i].bidder, i);
  }
  for (std::size_t j = 0; j < inst.asks.size(); ++j) {
    EXPECT_EQ(inst.asks[j].provider, j);
  }
}

}  // namespace
}  // namespace dauct::auction
