// Direct unit tests of the ParallelAllocator over hand-built task graphs:
// dependency scheduling, data transfer wiring, coin integration, and abort
// propagation — independent of any auction mechanism.
#include <gtest/gtest.h>

#include <atomic>

#include "core/parallel_allocator.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"
#include "test_util.hpp"

namespace dauct::core {
namespace {

using testutil::LocalNet;

// The allocator input must decode as an AuctionInstance; build a minimal one.
Bytes minimal_input() {
  auction::AuctionInstance inst;
  inst.bids = {{0, Money::from_units(1), Money::from_units(1)}};
  inst.asks = {{0, kZeroMoney, Money::from_units(1)}};
  return serde::encode_instance(inst);
}

TaskFn emit(const std::string& text) {
  return [text](const std::vector<Bytes>&, const TaskContext&) {
    return to_bytes(text);
  };
}

/// Concatenate dependency outputs and append own label.
TaskFn concat(const std::string& label) {
  return [label](const std::vector<Bytes>& deps, const TaskContext&) {
    Bytes out;
    for (const auto& d : deps) append(out, BytesView(d));
    append(out, BytesView(to_bytes(label)));
    return out;
  };
}

std::vector<NodeId> all(std::size_t m) {
  std::vector<NodeId> v(m);
  for (NodeId j = 0; j < m; ++j) v[j] = j;
  return v;
}

struct AllocRun {
  std::vector<Outcome<Bytes>> results;
};

AllocRun run_allocator(std::size_t m, std::size_t k, const TaskGraph& graph_template,
                       std::uint64_t seed = 5) {
  LocalNet net(m, seed);
  std::vector<std::unique_ptr<ParallelAllocator>> nodes;
  for (NodeId j = 0; j < m; ++j) {
    TaskGraph graph = graph_template;  // each provider owns a validated copy
    EXPECT_EQ(graph.validate(m, k), std::nullopt);
    nodes.push_back(std::make_unique<ParallelAllocator>(net.endpoint(j), "alloc",
                                                        std::move(graph), k));
    auto* node = nodes.back().get();
    net.set_handler(j, [node](const net::Message& msg) { node->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(minimal_input());
  net.run();
  AllocRun out;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done()) << "provider " << j << " incomplete";
    out.results.push_back(nodes[j]->done()
                              ? *nodes[j]->result()
                              : Outcome<Bytes>(Bottom{AbortReason::kTimeout, ""}));
  }
  return out;
}

TEST(ParallelAllocator, SingleTaskEveryoneComputes) {
  TaskGraph g;
  g.add_task({0, "only", {}, all(3), emit("result")});
  const auto run = run_allocator(3, 1, g);
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(to_string(BytesView(r.value())), "result");
  }
}

TEST(ParallelAllocator, PipelineThroughGroups) {
  // T0 (all) → T1 (group {0,1}) → T2 sink (all). T1's result must travel by
  // data transfer to providers 2..3.
  TaskGraph g;
  g.add_task({0, "t0", {}, all(4), emit("a")});
  g.add_task({1, "t1", {0}, {0, 1}, concat("b")});
  g.add_task({2, "sink", {0, 1}, all(4), concat("c")});
  const auto run = run_allocator(4, 1, g);
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(to_string(BytesView(r.value())), "aabc");  // deps: t0="a", t1="ab"
  }
}

TEST(ParallelAllocator, DiamondDependencies) {
  //      ┌── t1 ({0,1}) ──┐
  //  t0 ─┤                ├─ sink (all)
  //      └── t2 ({2,3}) ──┘
  TaskGraph g;
  g.add_task({0, "t0", {}, all(4), emit("x")});
  g.add_task({1, "t1", {0}, {0, 1}, concat("L")});
  g.add_task({2, "t2", {0}, {2, 3}, concat("R")});
  g.add_task({3, "sink", {1, 2}, all(4), concat("!")});
  const auto run = run_allocator(4, 1, g);
  ASSERT_TRUE(run.results[0].ok());
  const std::string result = to_string(BytesView(run.results[0].value()));
  EXPECT_EQ(result, "xLxR!");
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(to_string(BytesView(r.value())), result);  // agreement
  }
}

TEST(ParallelAllocator, DeepChainAcrossDisjointGroups) {
  // A 4-stage pipeline bouncing between groups {0,1} and {2,3}.
  TaskGraph g;
  g.add_task({0, "s0", {}, all(4), emit("0")});
  g.add_task({1, "s1", {0}, {0, 1}, concat("1")});
  g.add_task({2, "s2", {1}, {2, 3}, concat("2")});
  g.add_task({3, "s3", {2}, {0, 1}, concat("3")});
  g.add_task({4, "sink", {3}, all(4), concat("4")});
  const auto run = run_allocator(4, 1, g);
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(to_string(BytesView(r.value())), "01234");
  }
}

TEST(ParallelAllocator, CoinSeedSharedByAllProviders) {
  // Tasks can read ctx.shared_seed; all replicas must observe the same value
  // or the output round would abort.
  TaskGraph g;
  g.add_task({0, "sink", {}, all(5),
              [](const std::vector<Bytes>&, const TaskContext& ctx) {
                serde::Writer w;
                w.u64(ctx.shared_seed);
                return w.take();
              }});
  const auto run = run_allocator(5, 2, g);
  ASSERT_TRUE(run.results[0].ok());
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), run.results[0].value());
  }
  // And the seed is non-trivial.
  serde::Reader r{BytesView(run.results[0].value())};
  EXPECT_NE(r.u64(), 0u);
}

TEST(ParallelAllocator, ContextExposesInstanceAndParameters) {
  TaskGraph g;
  g.add_task({0, "sink", {}, all(3),
              [](const std::vector<Bytes>&, const TaskContext& ctx) {
                serde::Writer w;
                w.u32(static_cast<std::uint32_t>(ctx.m));
                w.u32(static_cast<std::uint32_t>(ctx.k));
                w.varint(ctx.instance->bids.size());
                return w.take();
              }});
  const auto run = run_allocator(3, 1, g);
  ASSERT_TRUE(run.results[0].ok());
  serde::Reader r{BytesView(run.results[0].value())};
  EXPECT_EQ(r.u32(), 3u);
  EXPECT_EQ(r.u32(), 1u);
  EXPECT_EQ(r.varint(), 1u);
}

TEST(ParallelAllocator, DivergentInputsAbortEverywhere) {
  LocalNet net(3);
  TaskGraph g;
  g.add_task({0, "sink", {}, all(3), emit("r")});
  std::vector<std::unique_ptr<ParallelAllocator>> nodes;
  for (NodeId j = 0; j < 3; ++j) {
    TaskGraph copy = g;
    ASSERT_EQ(copy.validate(3, 1), std::nullopt);
    nodes.push_back(std::make_unique<ParallelAllocator>(net.endpoint(j), "alloc",
                                                        std::move(copy), 1));
    auto* node = nodes.back().get();
    net.set_handler(j, [node](const net::Message& msg) { node->handle(msg); });
  }
  // Provider 2 starts from a *different* input.
  auction::AuctionInstance other;
  other.bids = {{0, Money::from_units(2), Money::from_units(1)}};
  other.asks = {{0, kZeroMoney, Money::from_units(1)}};
  nodes[0]->start(minimal_input());
  nodes[1]->start(minimal_input());
  nodes[2]->start(serde::encode_instance(other));
  net.run();
  for (NodeId j = 0; j < 3; ++j) {
    ASSERT_TRUE(nodes[j]->done());
    ASSERT_TRUE(nodes[j]->result()->is_bottom());
    EXPECT_EQ(nodes[j]->result()->bottom().reason, AbortReason::kInputMismatch);
  }
}

TEST(ParallelAllocator, NonDeterministicTaskCaughtByOutputAgreement) {
  // A task whose result differs between replicas (it reads mutable shared
  // state, so each provider's execution sees a different counter value):
  // output agreement must collapse everyone to ⊥.
  static std::atomic<int> counter{0};
  TaskGraph g;
  g.add_task({0, "sink", {}, all(3),
              [](const std::vector<Bytes>&, const TaskContext&) {
                serde::Writer w;
                w.u32(static_cast<std::uint32_t>(counter++));
                return w.take();
              }});
  const auto run = run_allocator(3, 1, g);
  for (const auto& r : run.results) {
    ASSERT_TRUE(r.is_bottom());
    EXPECT_EQ(r.bottom().reason, AbortReason::kOutputMismatch);
  }
}

TEST(ParallelAllocator, DivergentGroupComputationCaughtByTransfer) {
  // Same trick inside a transferred (non-sink) task: the two executors of t1
  // produce different bytes; receivers see two copies that disagree → ⊥ with
  // kTransferMismatch (or output mismatch at the executors themselves).
  static std::atomic<int> counter{0};
  TaskGraph g;
  g.add_task({0, "t0", {}, all(4), emit("x")});
  g.add_task({1, "t1", {0}, {0, 1},
              [](const std::vector<Bytes>&, const TaskContext&) {
                serde::Writer w;
                w.u32(static_cast<std::uint32_t>(counter++));
                return w.take();
              }});
  g.add_task({2, "sink", {1}, all(4), concat("!")});
  const auto run = run_allocator(4, 1, g);
  int bottoms = 0;
  for (const auto& r : run.results) bottoms += r.is_bottom();
  EXPECT_EQ(bottoms, 4);
}

}  // namespace
}  // namespace dauct::core
