// dauct_cli smoke tests: drive the real binary (path baked in by CMake as
// DAUCT_CLI_PATH) through its user-facing surface.
//
// The --help sync test is the enforcement half of a documentation contract:
// every flag parse_args() understands must appear in the usage text (adding
// a flag without documenting it fails here; kKnownFlags is the review
// checklist — keep it in lockstep with parse_args and the README table).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <string>

namespace {

struct CommandResult {
  int exit_code = -1;
  std::string output;  ///< stdout + stderr, interleaved
};

CommandResult run_binary(const char* binary, const std::string& args) {
  const std::string cmd = std::string(binary) + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  CommandResult result;
  std::array<char, 4096> buf;
  std::size_t n = 0;
  while ((n = fread(buf.data(), 1, buf.size(), pipe)) > 0) {
    result.output.append(buf.data(), n);
  }
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CommandResult run_command(const std::string& args) {
  return run_binary(DAUCT_CLI_PATH, args);
}

CommandResult run_fuzz(const std::string& args) {
  return run_binary(DAUCT_FUZZ_PATH, args);
}

// Every flag the CLI parses. Mirrors parse_args() in tools/dauct_cli.cpp.
constexpr const char* kKnownFlags[] = {
    "--auction",  "--users",   "--providers", "--seed",     "--bids",
    "--asks",     "--k",       "--epsilon",   "--mode",     "--centralized",
    "--runtime",  "--latency", "--trace",     "--scenario", "--csv",
    "--reliable", "--retransmit-delay-ms",    "--max-retries",
    "--round-timeout-ms",      "--auth",      "--auth-batch",
    "--tcp-node", "--base-port",              "--wal-dir",
    "--crash-after",            "--instances", "--pipeline-depth",
    "--help",
};

TEST(Cli, HelpMentionsEveryParsedFlag) {
  const auto r = run_command("--help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag : kKnownFlags) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "flag " << flag << " is parsed but undocumented in --help";
  }
}

TEST(Cli, UnknownFlagFailsAndPointsAtHelp) {
  const auto r = run_command("--no-such-flag");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("--help"), std::string::npos);
}

TEST(Cli, MissingFlagValueFails) {
  const auto r = run_command("--users");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("missing value"), std::string::npos);
}

TEST(Cli, SmallDistributedRunSucceeds) {
  const auto r = run_command(
      "--auction double --users 8 --providers 3 --k 1 --latency zero --seed 3");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("distributed auctioneer"), std::string::npos);
  EXPECT_NE(r.output.find("totals:"), std::string::npos);
}

TEST(Cli, ReliableRunSucceedsAndPrintsCounters) {
  const auto r = run_command(
      "--auction double --users 8 --providers 3 --k 1 --latency zero --seed 3 "
      "--reliable --retransmit-delay-ms 4 --max-retries 3 --round-timeout-ms 8");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("reliability:"), std::string::npos);
  EXPECT_NE(r.output.find("retransmits"), std::string::npos);
  EXPECT_NE(r.output.find("give-ups"), std::string::npos);
}

TEST(Cli, AuthRunSucceedsAndPrintsCounters) {
  const auto r = run_command(
      "--auction double --users 8 --providers 3 --k 1 --latency zero --seed 3 "
      "--auth");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("auth:"), std::string::npos);
  EXPECT_NE(r.output.find("signed"), std::string::npos);
  EXPECT_NE(r.output.find("verified"), std::string::npos);
  const auto batch = run_command(
      "--auction double --users 8 --providers 3 --k 1 --latency zero --seed 3 "
      "--auth-batch");
  EXPECT_EQ(batch.exit_code, 0) << batch.output;
  EXPECT_NE(batch.output.find("batches"), std::string::npos);
}

TEST(Cli, ServicePlaneRunPrintsPerInstanceReport) {
  const auto r = run_command(
      "--auction double --users 8 --providers 3 --k 1 --seed 3 "
      "--instances 3 --pipeline-depth 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("service plane"), std::string::npos);
  EXPECT_NE(r.output.find("instance 0"), std::string::npos);
  EXPECT_NE(r.output.find("instance 2"), std::string::npos);
  EXPECT_NE(r.output.find("3/3 instances ok"), std::string::npos);
  EXPECT_NE(r.output.find("auctions/vsec"), std::string::npos);
}

TEST(Cli, ServicePlaneFlagValidation) {
  const auto depth = run_command("--instances 2 --pipeline-depth 3");
  EXPECT_EQ(depth.exit_code, 1);
  EXPECT_NE(depth.output.find("--pipeline-depth must not exceed"),
            std::string::npos);
  const auto zero = run_command("--instances 0");
  EXPECT_EQ(zero.exit_code, 1);
  EXPECT_NE(zero.output.find("positive integer"), std::string::npos);
  const auto central = run_command("--instances 2 --centralized");
  EXPECT_EQ(central.exit_code, 1) << central.output;
  EXPECT_NE(central.output.find("--centralized"), std::string::npos);
  // Sim-only: the service plane needs virtual-time pipelining.
  const auto threaded = run_command(
      "--runtime thread --instances 2 --users 6 --providers 3");
  EXPECT_EQ(threaded.exit_code, 1) << threaded.output;
  EXPECT_NE(threaded.output.find("requires --runtime sim"), std::string::npos);
}

// Satellite bugfix: sim-only layers on timerless runtimes must fail fast
// instead of silently no-opping (round watchdogs simply would not run).
TEST(Cli, SimOnlyFlagsRejectedOnThreadAndTcpRuntimes) {
  for (const char* rt : {"thread", "tcp"}) {
    const auto reliable = run_command(std::string("--runtime ") + rt +
                                      " --reliable --users 6 --providers 3");
    EXPECT_EQ(reliable.exit_code, 1) << reliable.output;
    EXPECT_NE(reliable.output.find("requires --runtime sim"), std::string::npos)
        << reliable.output;
    const auto timeout = run_command(std::string("--runtime ") + rt +
                                     " --round-timeout-ms 8 --users 6 --providers 3");
    EXPECT_EQ(timeout.exit_code, 1) << timeout.output;
    EXPECT_NE(timeout.output.find("--round-timeout-ms"), std::string::npos);
    const auto auth = run_command(std::string("--runtime ") + rt +
                                  " --auth --users 6 --providers 3");
    EXPECT_EQ(auth.exit_code, 1) << auth.output;
    EXPECT_NE(auth.output.find("requires --runtime sim"), std::string::npos);
  }
}

TEST(Cli, ZeroRetransmitDelayIsRejectedLikeTheScenarioParser) {
  const auto r = run_command("--reliable --retransmit-delay-ms 0");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("must be > 0"), std::string::npos);
  const auto neg = run_command("--reliable --round-timeout-ms -3");
  EXPECT_EQ(neg.exit_code, 1);
  EXPECT_NE(neg.output.find("must be >= 0"), std::string::npos);
  const auto retr = run_command("--reliable --max-retries -1");
  EXPECT_EQ(retr.exit_code, 1);
  EXPECT_NE(retr.output.find("non-negative integer"), std::string::npos);
}

TEST(Cli, ReliableScenarioPrintsCountersNextToFaults) {
  const auto r = run_command(std::string("--scenario ") + DAUCT_SCENARIO_DIR +
                             "/dup_storm.scn");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("faults injected"), std::string::npos);
  EXPECT_NE(r.output.find("duplicates suppressed"), std::string::npos);
  EXPECT_NE(r.output.find("expectations: PASS"), std::string::npos);
}

TEST(Cli, ScenarioRunsAndSelfChecks) {
  const auto r = run_command(std::string("--scenario ") + DAUCT_SCENARIO_DIR +
                             "/clean.scn");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("expectations: PASS"), std::string::npos);
  EXPECT_NE(r.output.find("faults injected"), std::string::npos);
}

TEST(Cli, ScenarioWithMissingFileFails) {
  const auto r = run_command("--scenario /nonexistent/nope.scn");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("cannot read"), std::string::npos);
}

TEST(Cli, FailingScenarioPrintsSeedAndOneLineReproCommand) {
  // A clean run pinned to the wrong expectation: the failure report must
  // carry everything needed to rerun the case — the fault-plan seed and the
  // exact repro command line.
  const std::string path = testing::TempDir() + "/expect_fails.scn";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("[run]\nusers = 6\nproviders = 3\nk = 1\nseed = 5\nlatency = zero\n"
        "[fault]\nseed = 77\n"
        "[expect]\noutcome = bottom\n",
        f);
  fclose(f);
  const auto r = run_command("--scenario " + path);
  EXPECT_EQ(r.exit_code, 3) << r.output;
  EXPECT_NE(r.output.find("expectation FAILED"), std::string::npos);
  EXPECT_NE(r.output.find("fault-plan seed: 77"), std::string::npos);
  EXPECT_NE(r.output.find("repro: dauct_cli --scenario " + path),
            std::string::npos);
  remove(path.c_str());
}

TEST(Cli, ScenarioParseErrorIsReportedWithLine) {
  const std::string path = testing::TempDir() + "/bad_scenario.scn";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("[run]\nusers = twelve\n", f);
  fclose(f);
  const auto r = run_command("--scenario " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("line 2"), std::string::npos);
  remove(path.c_str());
}

// ---------------------------------------------------------------------------
// dauct_fuzz (DAUCT_FUZZ_PATH) — the fault-plan fuzzer's CLI surface
// ---------------------------------------------------------------------------

// Every flag dauct_fuzz parses. Mirrors parse_args() in tools/dauct_fuzz.cpp.
constexpr const char* kKnownFuzzFlags[] = {
    "--plans", "--seed", "--index", "--bounds", "--minimize", "--out",
    "--near-miss-log", "--near-miss-probes", "--help",
};

TEST(Fuzz, HelpMentionsEveryParsedFlag) {
  const auto r = run_fuzz("--help");
  EXPECT_EQ(r.exit_code, 0);
  for (const char* flag : kKnownFuzzFlags) {
    EXPECT_NE(r.output.find(flag), std::string::npos)
        << "flag " << flag << " is parsed but undocumented in --help";
  }
}

TEST(Fuzz, UnknownFlagAndMissingValueFail) {
  EXPECT_EQ(run_fuzz("--no-such-flag").exit_code, 1);
  EXPECT_EQ(run_fuzz("--plans").exit_code, 1);
  EXPECT_EQ(run_fuzz("--bounds /nonexistent/b.ini").exit_code, 1);
}

TEST(Fuzz, SmallFixedSeedRunPassesCleanly) {
  const auto r = run_fuzz("--plans 5 --seed 1");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("5 plan(s) checked"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos) << r.output;
}

TEST(Fuzz, BadBoundsFileIsRejectedWithItsLine) {
  const std::string path = testing::TempDir() + "/bad_bounds.ini";
  FILE* f = fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("[faults]\nmax_drop = 1.5\n", f);
  fclose(f);
  const auto r = run_fuzz("--plans 1 --bounds " + path);
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("line 2"), std::string::npos) << r.output;
  remove(path.c_str());
}

}  // namespace
