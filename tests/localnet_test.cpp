// Tests of the shared test fixture itself (tests/test_util.hpp): the
// zero-latency LocalNet scheduler must deliver messages in a deterministic
// order — for any seed, two identical runs observe the same delivery
// sequence, and with LatencyModel::zero() all deliveries happen at t = 0.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "test_util.hpp"

namespace dauct {
namespace {

/// One observed delivery, flattened for comparison.
struct Delivery {
  NodeId at_node;
  NodeId from;
  std::string topic;
  Bytes payload;

  bool operator==(const Delivery&) const = default;
};

/// Drive a ring workload: every node, on receiving a "ring" message, forwards
/// it to its successor with a decremented hop counter. Returns the exact
/// delivery order observed across all nodes.
std::vector<Delivery> run_ring(std::size_t m, std::uint64_t seed) {
  testutil::LocalNet net(m, seed);
  std::vector<Delivery> log;

  for (NodeId j = 0; j < m; ++j) {
    net.set_handler(j, [&, j](const net::Message& msg) {
      log.push_back(Delivery{j, msg.from, msg.topic.str(), msg.payload.to_bytes()});
      const std::uint8_t hops = msg.payload.empty() ? 0 : msg.payload.front();
      if (hops == 0) return;
      net::Message next;
      next.from = j;
      next.to = static_cast<NodeId>((j + 1) % m);
      next.topic = msg.topic;
      next.payload = Bytes{static_cast<std::uint8_t>(hops - 1)};
      net.scheduler().send(next);
    });
  }

  // Every node starts one token with m hops, all injected at t = 0.
  for (NodeId j = 0; j < m; ++j) {
    net::Message msg;
    msg.from = j;
    msg.to = static_cast<NodeId>((j + 1) % m);
    msg.topic = "ring/" + std::to_string(j);
    msg.payload = Bytes{static_cast<std::uint8_t>(m)};
    net.scheduler().inject(sim::kSimStart, msg);
  }

  net.run();
  return log;
}

TEST(LocalNet, DeliveryOrderDeterministicAcrossSeeds) {
  for (std::uint64_t seed : {1u, 7u, 42u, 1234u, 99999u}) {
    const auto first = run_ring(5, seed);
    const auto second = run_ring(5, seed);
    ASSERT_FALSE(first.empty()) << "seed " << seed;
    EXPECT_EQ(first, second) << "seed " << seed;
  }
}

TEST(LocalNet, AllTokensCompleteTheirHops) {
  const std::size_t m = 4;
  const auto log = run_ring(m, 42);
  // m tokens, each delivered m + 1 times (initial hop + m forwards).
  EXPECT_EQ(log.size(), m * (m + 1));
}

TEST(LocalNet, ZeroLatencyKeepsVirtualClocksAtStart) {
  testutil::LocalNet net(3, 42);
  int delivered = 0;
  for (NodeId j = 0; j < 3; ++j) {
    net.set_handler(j, [&](const net::Message&) { ++delivered; });
  }
  net::Message msg;
  msg.from = 0;
  msg.to = 1;
  msg.topic = "ping";
  net.scheduler().inject(sim::kSimStart, msg);
  net.run();

  EXPECT_EQ(delivered, 1);
  // Zero latency + CostMode::kZero: no virtual time may elapse anywhere.
  EXPECT_EQ(net.scheduler().now(), sim::kSimStart);
  for (NodeId j = 0; j < 3; ++j) {
    EXPECT_EQ(net.scheduler().clock(j), sim::kSimStart);
  }
}

}  // namespace
}  // namespace dauct
