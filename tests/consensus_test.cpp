#include <gtest/gtest.h>

#include "adversary/provider_deviation.hpp"
#include "consensus/batched_consensus.hpp"
#include "consensus/bit_consensus.hpp"
#include "consensus/stream_consensus.hpp"
#include "test_util.hpp"

namespace dauct::consensus {
namespace {

using testutil::LocalNet;

// Drive m BitConsensus instances to completion over a LocalNet.
std::vector<Outcome<bool>> run_bit_consensus(std::size_t m,
                                             const std::vector<bool>& inputs,
                                             NodeId equivocator = kNoNode) {
  LocalNet net(m);
  std::vector<std::unique_ptr<adversary::DeviantEndpoint>> deviants(m);
  std::vector<std::unique_ptr<BitConsensus>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    blocks::Endpoint* ep = &net.endpoint(j);
    if (j == equivocator) {
      deviants[j] = std::make_unique<adversary::DeviantEndpoint>(
          *ep, adversary::equivocate_votes());
      ep = deviants[j].get();
    }
    nodes[j] = std::make_unique<BitConsensus>(*ep, "ba/t");
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(inputs[j]);
  net.run();

  std::vector<Outcome<bool>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done()) << "node " << j << " did not decide";
    outs.push_back(nodes[j]->done() ? *nodes[j]->result()
                                    : Outcome<bool>(Bottom{AbortReason::kTimeout, ""}));
  }
  return outs;
}

TEST(BitConsensus, UnanimousInputDecided) {
  for (bool b : {false, true}) {
    const auto outs = run_bit_consensus(5, std::vector<bool>(5, b));
    for (const auto& o : outs) {
      ASSERT_TRUE(o.ok());
      EXPECT_EQ(o.value(), b);  // validity
    }
  }
}

TEST(BitConsensus, MajorityWins) {
  const auto outs = run_bit_consensus(5, {true, true, true, false, false});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value());
  }
}

TEST(BitConsensus, AgreementUnderMixedInputs) {
  for (std::uint64_t pattern = 0; pattern < 16; ++pattern) {
    std::vector<bool> inputs(4);
    for (int j = 0; j < 4; ++j) inputs[j] = (pattern >> j) & 1;
    const auto outs = run_bit_consensus(4, inputs);
    ASSERT_TRUE(outs[0].ok());
    for (const auto& o : outs) {
      ASSERT_TRUE(o.ok());
      EXPECT_EQ(o.value(), outs[0].value()) << "pattern " << pattern;
    }
  }
}

TEST(BitConsensus, TieBrokenByLowestId) {
  // m = 4, two true / two false → tie → provider 0's bit wins.
  const auto outs = run_bit_consensus(4, {true, false, false, true});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value());
  }
}

TEST(BitConsensus, EquivocationDetected) {
  // Node 0 sends different votes to odd/even peers → every honest node ⊥.
  const auto outs = run_bit_consensus(5, std::vector<bool>(5, true), /*equivocator=*/0);
  int bottoms = 0;
  for (NodeId j = 1; j < 5; ++j) {
    if (outs[j].is_bottom()) {
      ++bottoms;
      EXPECT_EQ(outs[j].bottom().reason, AbortReason::kEquivocationDetected);
    }
  }
  EXPECT_EQ(bottoms, 4);
}

TEST(BitConsensus, DecisionIsSomeNodesInput) {
  // The decided bit was input by at least one provider (rational-consensus
  // condition (a)).
  for (std::uint64_t seed = 1; seed < 20; ++seed) {
    crypto::Rng rng(seed);
    std::vector<bool> inputs(5);
    for (auto&& b : inputs) b = rng.next_below(2) == 1;
    const auto outs = run_bit_consensus(5, inputs);
    ASSERT_TRUE(outs[0].ok());
    EXPECT_TRUE(std::find(inputs.begin(), inputs.end(), outs[0].value()) !=
                inputs.end());
  }
}

// ---------------------------------------------------------------------------

std::vector<Outcome<std::vector<bool>>> run_stream(std::size_t m, std::size_t bits,
                                                   const std::vector<std::vector<bool>>& in) {
  LocalNet net(m);
  std::vector<std::unique_ptr<StreamConsensus>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    nodes[j] = std::make_unique<StreamConsensus>(net.endpoint(j), "ba/s", bits);
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(in[j]);
  net.run();
  std::vector<Outcome<std::vector<bool>>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done());
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST(StreamConsensus, UnanimousStreams) {
  std::vector<bool> stream = {true, false, true, true, false, false, true, false,
                              true, true};
  const auto outs = run_stream(3, stream.size(), {stream, stream, stream});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), stream);
  }
}

TEST(StreamConsensus, PerBitMajority) {
  // Bit 0: 2/3 true; bit 1: 1/3 true.
  std::vector<std::vector<bool>> in = {{true, true}, {true, false}, {false, false}};
  const auto outs = run_stream(3, 2, in);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value()[0]);
    EXPECT_FALSE(o.value()[1]);
  }
}

TEST(StreamConsensus, ShortInputZeroPadded) {
  std::vector<std::vector<bool>> in(3, std::vector<bool>{true});  // 1 of 8 bits
  const auto outs = run_stream(3, 8, in);
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value()[0]);
    for (int b = 1; b < 8; ++b) EXPECT_FALSE(o.value()[b]);
  }
}

// ---------------------------------------------------------------------------

std::vector<Outcome<std::vector<Bytes>>> run_batched(
    std::size_t m, std::size_t slots, const std::vector<std::vector<Bytes>>& in) {
  LocalNet net(m);
  std::vector<std::unique_ptr<BatchedConsensus>> nodes(m);
  for (NodeId j = 0; j < m; ++j) {
    nodes[j] = std::make_unique<BatchedConsensus>(net.endpoint(j), "ba/b", slots);
    net.set_handler(j, [&, j](const net::Message& msg) { nodes[j]->handle(msg); });
  }
  for (NodeId j = 0; j < m; ++j) nodes[j]->start(in[j]);
  net.run();
  std::vector<Outcome<std::vector<Bytes>>> outs;
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_TRUE(nodes[j]->done());
    outs.push_back(*nodes[j]->result());
  }
  return outs;
}

TEST(BatchedConsensus, UnanimousSlots) {
  const std::vector<Bytes> slots = {{1, 2, 3}, {}, {9}};
  const auto outs = run_batched(3, 3, {slots, slots, slots});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), slots);
  }
}

TEST(BatchedConsensus, MajoritySlotValueWins) {
  const Bytes a = {0xaa}, b = {0xbb};
  const auto outs = run_batched(3, 1, {{a}, {a}, {b}});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value()[0], a);
  }
}

TEST(BatchedConsensus, NoMajorityFallsBackToEmpty) {
  const Bytes a = {0xaa}, b = {0xbb}, c = {0xcc};
  const auto outs = run_batched(3, 1, {{a}, {b}, {c}});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_TRUE(o.value()[0].empty());  // neutral fallback
  }
}

TEST(BatchedConsensus, PerSlotIndependence) {
  const Bytes a = {1}, b = {2}, c = {3};
  // Slot 0 unanimous; slot 1 majority; slot 2 split.
  const auto outs =
      run_batched(3, 3, {{a, a, a}, {a, a, b}, {a, b, c}});
  for (const auto& o : outs) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value()[0], a);
    EXPECT_EQ(o.value()[1], a);
    EXPECT_TRUE(o.value()[2].empty());
  }
}

}  // namespace
}  // namespace dauct::consensus
