// Reliable-delivery layer tests (net/reliable.hpp + the timer plumbing and
// round watchdogs behind it).
//
// Four layers of guarantees:
//  * equivalence — reliability disabled is byte-identical to the
//    pre-reliability implementation (full golden fingerprints), and
//    reliability enabled over a fault-free link reproduces every golden
//    *result digest* (acks change traffic and timing, never the outcome);
//  * link mechanics — ack loss is absorbed (retransmit of an already
//    delivered message is dedup'd end-to-end and re-acked), retries
//    exhausted reports a clean give-up, duplicates never reach the app;
//  * timers — a crash-stop node's due timers are discarded with the node;
//  * recovery — lossy and crash-recover runs complete with the fault-free
//    result through retransmits and targeted re-requests.
#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "crypto/sha256.hpp"
#include "net/reliable.hpp"
#include "net/sim_transport.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

// ---------------------------------------------------------------------------
// Link mechanics over a two-node scheduler
// ---------------------------------------------------------------------------

/// Two providers wired through ReliableLinks over a lan-latency scheduler.
struct LinkNet {
  sim::Scheduler scheduler;
  net::SimEndpoint ep0, ep1;
  net::ReliableLink link0, link1;
  std::vector<net::Message> app0, app1;  ///< what survives past the links

  explicit LinkNet(const net::ReliabilityConfig& cfg, std::uint64_t seed = 7)
      : scheduler(2, sim::LatencyModel::lan(), seed, sim::CostMode::kZero),
        ep0(scheduler, 0, 2, 100),
        ep1(scheduler, 1, 2, 101),
        link0(ep0, cfg),
        link1(ep1, cfg) {
    // on_deliver strips the link wire header in place (aliasing copy, like
    // the runtime's deliver hook), so the app vectors hold logical payloads.
    scheduler.set_deliver(0, [this](const net::Message& m) {
      net::Message unwrapped = m;
      if (link0.on_deliver(unwrapped)) app0.push_back(unwrapped);
    });
    scheduler.set_deliver(1, [this](const net::Message& m) {
      net::Message unwrapped = m;
      if (link1.on_deliver(unwrapped)) app1.push_back(unwrapped);
    });
  }

  /// Make node 1 answer every delivered data frame by sending `reply` back
  /// to the sender from inside the deliver handler — the pattern that lets
  /// a queued ack ride the reply for free.
  void reply_from_node1(const Bytes& reply) {
    scheduler.set_deliver(1, [this, reply](const net::Message& m) {
      net::Message unwrapped = m;
      if (!link1.on_deliver(unwrapped)) return;
      app1.push_back(unwrapped);
      link1.send(unwrapped.from, "t/reply", SharedBytes(Bytes(reply)));
    });
  }
};

net::ReliabilityConfig fast_config() {
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  cfg.retransmit_delay = sim::from_millis(1);
  cfg.max_retries = 5;
  cfg.round_timeout = 0;  // watchdogs exercised separately
  return cfg;
}

TEST(ReliableLink, AckLossRecoveredByRetransmitAndReAck) {
  // Acks (1 → 0) are lost until 1.5 ms; the data direction is clean. The
  // sender must retransmit, the receiver must suppress the duplicate AND
  // re-ack it, and the pending entry must drain once the window lifts.
  sim::FaultPlan plan;
  sim::LinkFault rule;
  rule.from = 1;
  rule.to = 0;
  rule.symmetric = false;
  rule.drop = 1.0;
  rule.active_until = sim::from_micros(1'500);
  plan.links.push_back(rule);

  LinkNet net(fast_config());
  net.scheduler.install_fault_plan(plan);
  net.link0.send(1, "t/data", SharedBytes(Bytes{1, 2, 3}));
  net.scheduler.run();

  ASSERT_EQ(net.app1.size(), 1u) << "dedup failed end-to-end";
  EXPECT_EQ(net.app1[0].payload, (Bytes{1, 2, 3}));
  EXPECT_GE(net.link0.stats().retransmits, 1u);
  EXPECT_GE(net.link1.stats().duplicates_suppressed, 1u);
  EXPECT_GE(net.link1.stats().acks_sent, 2u) << "duplicates must be re-acked";
  EXPECT_GE(net.link0.stats().acks_received, 1u) << "pending entry never drained";
  EXPECT_EQ(net.link0.stats().give_ups, 0u);
}

TEST(ReliableLink, RetriesExhaustedReportsCleanGiveUp) {
  sim::FaultPlan plan;
  sim::LinkFault rule;
  rule.from = 0;
  rule.to = 1;
  rule.symmetric = false;
  rule.drop = 1.0;  // the peer is unreachable, forever
  plan.links.push_back(rule);

  net::ReliabilityConfig cfg = fast_config();
  cfg.max_retries = 2;
  LinkNet net(cfg);
  net.scheduler.install_fault_plan(plan);

  NodeId gave_up_on = kNoNode;
  std::string gave_up_topic;
  std::size_t gave_up_attempts = 0;
  int give_up_calls = 0;
  net.link0.set_on_give_up(
      [&](NodeId to, const net::Topic& topic, std::size_t attempts) {
        ++give_up_calls;
        gave_up_on = to;
        gave_up_topic = topic.str();
        gave_up_attempts = attempts;
      });

  net.link0.send(1, "t/data", SharedBytes(Bytes{9}));
  net.scheduler.run();  // must drain: the retransmit chain is bounded

  EXPECT_TRUE(net.app1.empty());
  EXPECT_EQ(give_up_calls, 1);
  EXPECT_EQ(gave_up_on, 1u);
  EXPECT_EQ(gave_up_topic, "t/data");
  EXPECT_EQ(gave_up_attempts, 3u);  // original + max_retries retransmits
  EXPECT_EQ(net.link0.stats().retransmits, 2u);
  EXPECT_EQ(net.link0.stats().give_ups, 1u);
}

TEST(ReliableLink, NetworkDuplicatesNeverReachTheApp) {
  sim::FaultPlan plan;
  sim::LinkFault rule;
  rule.duplicate = 1.0;  // every message delivered twice, both directions
  plan.links.push_back(rule);

  LinkNet net(fast_config());
  net.scheduler.install_fault_plan(plan);
  net.link0.send(1, "t/data", SharedBytes(Bytes{5, 6}));
  net.scheduler.run();

  ASSERT_EQ(net.app1.size(), 1u);
  EXPECT_GE(net.link1.stats().duplicates_suppressed, 1u);
  // The duplicated ack is consumed harmlessly (second erase misses).
  EXPECT_GE(net.link0.stats().acks_received, 2u);
  EXPECT_EQ(net.link0.stats().give_ups, 0u);
}

TEST(ReliableLink, ReRequestAnsweredFromSentCache) {
  LinkNet net(fast_config());
  net.link0.send(1, "round/x", SharedBytes(Bytes{7, 7}));
  net.scheduler.run();
  ASSERT_EQ(net.app1.size(), 1u);

  // Node 1 re-requests the round topic (what a round watchdog sends); node 0
  // must answer from its last-sent cache and node 1 must dedup the copy.
  const std::string topic = "round/x";
  net.link1.send(0, net::kRetransmitRequestTopicName,
                 SharedBytes(Bytes(topic.begin(), topic.end())));
  net.scheduler.run();

  EXPECT_EQ(net.app1.size(), 1u) << "re-sent copy leaked past dedup";
  EXPECT_EQ(net.link0.stats().rerequests_answered, 1u);
  EXPECT_EQ(net.link1.stats().rerequests_sent, 1u);
  EXPECT_GE(net.link1.stats().duplicates_suppressed, 1u);
}

TEST(ReliableLink, UnknownControlTopicNamesAreDroppedWithoutInterning) {
  // Ack/rreq frames carry peer-chosen topic strings; a name no local block
  // ever interned must be dropped via the find-only lookup, never interned —
  // the append-only registry stays bounded by protocol structure.
  LinkNet net(fast_config());
  const std::size_t before = net::topic_registry_size();

  const std::string garbage = "hostile/unseen-topic-87c1";
  net::Message rreq{0, 1, net::kRetransmitRequestTopicName,
                    SharedBytes(Bytes(garbage.begin(), garbage.end()))};
  EXPECT_FALSE(net.link1.on_deliver(rreq));

  Bytes ack_payload(garbage.begin(), garbage.end());
  ack_payload.resize(garbage.size() + 32, 0);  // + a 32-byte "digest"
  net::Message ack{0, 1, net::kAckTopicName, SharedBytes(std::move(ack_payload))};
  EXPECT_FALSE(net.link1.on_deliver(ack));

  EXPECT_EQ(net::topic_registry_size(), before)
      << "a forged control frame grew the topic registry";
  EXPECT_EQ(net.link1.stats().rerequests_answered, 0u);
  EXPECT_EQ(net.link1.stats().acks_received, 0u);
}

/// Endpoint without a timer facility (inherits the default schedule_after).
class TimerlessEndpoint final : public blocks::Endpoint {
 public:
  explicit TimerlessEndpoint(std::size_t m) : m_(m), rng_(1) {}
  NodeId self() const override { return 0; }
  std::size_t num_providers() const override { return m_; }
  crypto::Rng& rng() override { return rng_; }
  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    sent.push_back(net::Message{0, to, topic, std::move(payload)});
  }
  std::vector<net::Message> sent;

 private:
  std::size_t m_;
  crypto::Rng rng_;
};

TEST(ReliableLink, DegradesToFireAndForgetOverATimerlessEndpoint) {
  // Over an endpoint that cannot schedule timers (thread/TCP runtimes) the
  // link must not accumulate pending entries nothing can ever retire: sends
  // pass through untracked, acks and dedup still function.
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  cfg.piggyback_acks = false;  // wire format exercised by the piggyback tests
  TimerlessEndpoint ep(2);
  net::ReliableLink link(ep, cfg);

  for (int i = 0; i < 3; ++i) {
    link.send(1, "t/data", SharedBytes(Bytes{static_cast<std::uint8_t>(i)}));
  }
  EXPECT_EQ(ep.sent.size(), 3u) << "sends must still reach the wire";
  EXPECT_EQ(link.stats().tracked, 0u) << "untracked: nothing could retransmit";

  // Inbound data is still acked and deduplicated.
  net::Message data{1, 0, "t/data", SharedBytes(Bytes{9})};
  EXPECT_TRUE(link.on_deliver(data));
  EXPECT_FALSE(link.on_deliver(data));
  EXPECT_EQ(link.stats().acks_sent, 2u);
  EXPECT_EQ(link.stats().duplicates_suppressed, 1u);
}

TEST(ReliableLink, DedupSetsAreBoundedByTheConfiguredWindow) {
  // Regression for the unbounded-growth bug: the receiver dedup set and the
  // sender key history used to grow with every distinct message for the life
  // of the link. Both are now FIFO-capped at dedup_window entries.
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  cfg.piggyback_acks = false;  // raw frames: wire format covered elsewhere
  cfg.dedup_window = 8;
  TimerlessEndpoint ep(2);
  net::ReliableLink link(ep, cfg);

  for (int i = 0; i < 100; ++i) {
    const auto b = static_cast<std::uint8_t>(i);
    net::Message m{1, 0, "t/data", SharedBytes(Bytes{b, 0x5a})};
    EXPECT_TRUE(link.on_deliver(m));
    EXPECT_LE(link.dedup_entries(), 8u);
    link.send(1, "t/data", SharedBytes(Bytes{b, 0x77}));
    EXPECT_LE(link.sent_key_entries(), 8u);
  }
  EXPECT_EQ(link.dedup_entries(), 8u);
  EXPECT_EQ(link.sent_key_entries(), 8u);
  EXPECT_EQ(link.stats().dedup_evictions, 2u * (100 - 8));
  EXPECT_EQ(link.stats().sender_key_reuses, 0u);

  // FIFO semantics: a key still inside the window dedups...
  net::Message recent{1, 0, "t/data", SharedBytes(Bytes{99, 0x5a})};
  EXPECT_FALSE(link.on_deliver(recent));
  // ...while one evicted long ago is accepted again — the documented
  // trade-off: eviction only forgets messages whose retransmission window
  // has closed, so a "duplicate" this stale cannot occur in a real run.
  net::Message ancient{1, 0, "t/data", SharedBytes(Bytes{0, 0x5a})};
  EXPECT_TRUE(link.on_deliver(ancient));
}

TEST(ReliableLink, SenderKeyReuseIsCountedNotSilentlySwallowed) {
  // The dedup key is (peer, topic, sha256(payload)): if a block re-sent an
  // identical payload as a *new* logical message, receiver-side dedup would
  // silently swallow it. The link counts exactly that pattern on the sender
  // side so the invariant is observable (and pinned to 0 over real runs).
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  TimerlessEndpoint ep(2);
  net::ReliableLink link(ep, cfg);

  link.send(1, "t/data", SharedBytes(Bytes{1, 2}));
  EXPECT_EQ(link.stats().sender_key_reuses, 0u);
  link.send(1, "t/data", SharedBytes(Bytes{1, 2}));  // identical key: flagged
  EXPECT_EQ(link.stats().sender_key_reuses, 1u);
  link.send(1, "t/data", SharedBytes(Bytes{3}));       // new payload: fine
  link.send(1, "t/other", SharedBytes(Bytes{1, 2}));   // new topic: fine
  link.send(0, "t/data", SharedBytes(Bytes{1, 2}));    // new peer: fine
  EXPECT_EQ(link.stats().sender_key_reuses, 1u);
}

// ---------------------------------------------------------------------------
// Piggybacked ack vectors (link wire header)
// ---------------------------------------------------------------------------

TEST(PiggybackAcks, AckRidesAReplyDataFrameInsteadOfItsOwnMessage) {
  // Node 1 replies to every delivery from inside the handler: the ack owed
  // for the inbound frame must ride the reply's link header (count 1), and
  // the end-of-instant flush then finds nothing left to send standalone.
  LinkNet net(fast_config());
  net.reply_from_node1(Bytes{0x42});
  net.link0.send(1, "t/data", SharedBytes(Bytes{1, 2, 3}));
  net.scheduler.run();

  ASSERT_EQ(net.app1.size(), 1u);
  EXPECT_EQ(net.app1[0].payload, (Bytes{1, 2, 3})) << "header not stripped";
  ASSERT_EQ(net.app0.size(), 1u);
  EXPECT_EQ(net.app0[0].payload, (Bytes{0x42}));
  EXPECT_EQ(net.link1.stats().acks_piggybacked, 1u);
  EXPECT_EQ(net.link1.stats().acks_sent, 0u)
      << "the carried ack went out standalone anyway";
  EXPECT_GE(net.link0.stats().acks_received, 1u) << "carried ack not processed";
  // Node 0 has no data frame to carry its ack for the reply: standalone.
  EXPECT_EQ(net.link0.stats().acks_sent, 1u);
  EXPECT_EQ(net.link0.stats().give_ups, 0u);
  EXPECT_EQ(net.link1.stats().give_ups, 0u);
}

TEST(PiggybackAcks, DisabledConfigSendsUnwrappedFramesAndStandaloneAcks) {
  net::ReliabilityConfig cfg = fast_config();
  cfg.piggyback_acks = false;
  LinkNet net(cfg);
  net.link0.send(1, "t/data", SharedBytes(Bytes{7}));
  net.scheduler.run();

  ASSERT_EQ(net.app1.size(), 1u);
  EXPECT_EQ(net.app1[0].payload, (Bytes{7}));
  EXPECT_EQ(net.link1.stats().acks_piggybacked, 0u);
  EXPECT_EQ(net.link1.stats().acks_sent, 1u);
  EXPECT_GE(net.link0.stats().acks_received, 1u);
}

TEST(PiggybackAcks, MalformedHeaderIsDroppedNotDelivered) {
  // With piggybacking on, every provider data frame must carry the header;
  // a frame without the magic (a peer on a mismatched config, or corruption)
  // is dropped at the link rather than delivered with garbage acks parsed.
  net::ReliabilityConfig cfg = fast_config();
  cfg.piggyback_acks = true;
  TimerlessEndpoint ep(2);
  net::ReliableLink link(ep, cfg);

  net::Message bare{1, 0, "t/data", SharedBytes(Bytes{9, 9, 9})};
  EXPECT_FALSE(link.on_deliver(bare));
  EXPECT_EQ(link.stats().duplicates_suppressed, 0u);
}

TEST(PiggybackAcks, TimerlessEndpointFallsBackToImmediateStandaloneAcks) {
  // No timer facility: the end-of-instant flush cannot be scheduled, so the
  // first queued ack degrades the link to immediate standalone acks — while
  // inbound frames (wrapped by a config-matched peer) still unwrap fine.
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  TimerlessEndpoint ep(2);
  net::ReliableLink link(ep, cfg);

  // 0xAB ‖ varint 0 ‖ payload — a wrapped frame carrying no acks.
  net::Message wrapped{1, 0, "t/data", SharedBytes(Bytes{0xAB, 0x00, 0x07})};
  net::Message copy = wrapped;
  EXPECT_TRUE(link.on_deliver(copy));
  EXPECT_EQ(copy.payload, (Bytes{0x07})) << "header not stripped";
  EXPECT_EQ(link.stats().acks_sent, 1u) << "fallback ack not sent immediately";
  net::Message again = wrapped;
  EXPECT_FALSE(link.on_deliver(again)) << "dedup must key the unwrapped payload";
  EXPECT_EQ(link.stats().acks_sent, 2u) << "duplicates must be re-acked";
}

// ---------------------------------------------------------------------------
// Timer semantics
// ---------------------------------------------------------------------------

TEST(SchedulerTimer, DueTimersOfACrashStopNodeAreDiscarded) {
  sim::Scheduler scheduler(2, sim::LatencyModel::zero(), 1, sim::CostMode::kZero);
  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashEvent{0, sim::from_millis(1)});  // crash-stop
  scheduler.install_fault_plan(plan);

  bool fired_on_crashed = false;
  bool fired_on_healthy = false;
  scheduler.schedule_timer(sim::from_millis(2), 0,
                           [&] { fired_on_crashed = true; });
  scheduler.schedule_timer(sim::from_millis(2), 1,
                           [&] { fired_on_healthy = true; });
  scheduler.run();

  EXPECT_FALSE(fired_on_crashed) << "a crash-stop node fired a timer";
  EXPECT_TRUE(fired_on_healthy);
}

TEST(SchedulerTimer, TimerBeforeCrashWindowStillFires) {
  sim::Scheduler scheduler(1, sim::LatencyModel::zero(), 1, sim::CostMode::kZero);
  sim::FaultPlan plan;
  plan.crashes.push_back(sim::CrashEvent{0, sim::from_millis(5)});
  scheduler.install_fault_plan(plan);

  bool fired = false;
  scheduler.schedule_timer(sim::from_millis(2), 0, [&] { fired = true; });
  scheduler.run();
  EXPECT_TRUE(fired);
}

// ---------------------------------------------------------------------------
// Round watchdog (RoundCollector::arm)
// ---------------------------------------------------------------------------

/// Endpoint with a hand-cranked timer wheel: callbacks are stored and fired
/// by the test, sends are recorded.
class ManualTimerEndpoint final : public blocks::Endpoint {
 public:
  ManualTimerEndpoint(std::size_t m, std::int64_t timeout)
      : m_(m), timeout_(timeout), rng_(1) {}

  NodeId self() const override { return 0; }
  std::size_t num_providers() const override { return m_; }
  crypto::Rng& rng() override { return rng_; }
  std::int64_t round_timeout() const override { return timeout_; }
  bool schedule_after(std::int64_t, std::function<void()> fn) override {
    timers.push_back(std::move(fn));
    return true;
  }
  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    sent.push_back(net::Message{0, to, topic, std::move(payload)});
  }

  std::vector<std::function<void()>> timers;
  std::vector<net::Message> sent;

 private:
  std::size_t m_;
  std::int64_t timeout_;
  crypto::Rng rng_;
};

TEST(RoundWatch, ReRequestsExactlyTheMissingContributions) {
  ManualTimerEndpoint ep(4, /*timeout=*/1000);
  blocks::RoundCollector round(4);
  ASSERT_TRUE(round.add(2, SharedBytes(Bytes{1})));

  const net::Topic topic("ba/vb/v");
  round.arm(ep, topic);
  ASSERT_EQ(ep.timers.size(), 1u);
  ep.timers[0]();  // the watchdog comes due

  ASSERT_EQ(ep.sent.size(), 3u);  // 0, 1, 3 — not 2
  std::vector<NodeId> targets;
  for (const auto& m : ep.sent) {
    EXPECT_EQ(m.topic, net::Topic(net::kRetransmitRequestTopicName));
    EXPECT_EQ(m.payload, Bytes(topic.str().begin(), topic.str().end()));
    targets.push_back(m.to);
  }
  EXPECT_EQ(targets, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_EQ(ep.timers.size(), 2u) << "watchdog did not re-arm";
}

TEST(RoundWatch, CompletionAndCancelDisarm) {
  ManualTimerEndpoint ep(3, 1000);
  const net::Topic topic("coin/commit");
  {
    blocks::RoundCollector round(3);
    round.arm(ep, topic);
    for (NodeId j = 0; j < 3; ++j) {
      round.add(j, SharedBytes(Bytes{static_cast<std::uint8_t>(j)}));
    }
    ASSERT_TRUE(round.complete());
    ep.timers[0]();  // due after completion: must do nothing
    EXPECT_TRUE(ep.sent.empty());
    EXPECT_EQ(ep.timers.size(), 1u);
  }
  {
    blocks::RoundCollector round(3);
    round.arm(ep, topic);
    round.cancel();
    ep.timers[1]();  // due after cancel: must do nothing
    EXPECT_TRUE(ep.sent.empty());
  }
  {
    // Zero timeout (reliability off): arm is a no-op, no timer scheduled.
    ManualTimerEndpoint off(3, 0);
    blocks::RoundCollector round(3);
    round.arm(off, topic);
    EXPECT_TRUE(off.timers.empty());
  }
}

// ---------------------------------------------------------------------------
// End-to-end equivalence and recovery
// ---------------------------------------------------------------------------

runtime::SimRunResult run_golden(const testutil::GoldenRun& g,
                                 std::optional<sim::FaultPlan> faults,
                                 net::ReliabilityConfig reliability) {
  core::AuctioneerSpec spec;
  spec.m = g.m;
  spec.k = g.k;
  spec.num_bidders = g.n;
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (g.standard) {
    auction::StandardAuctionParams p;
    p.epsilon = 0.25;
    adapter = std::make_shared<core::StandardAuctionAdapter>(p);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  cfg.faults = std::move(faults);
  cfg.reliability = reliability;
  return runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
}

std::string digest_of(const runtime::SimRunResult& run) {
  const Bytes enc = serde::encode_result(run.global_outcome.value());
  return crypto::digest_hex(crypto::sha256(BytesView(enc)));
}

TEST(ReliableEquivalence, DisabledConfigIsByteIdenticalOverAllGoldens) {
  // "Zero-config reliability ≡ no reliability": a default-constructed
  // ReliabilityConfig in the run config must reproduce the *full* golden
  // fingerprint — outcome bytes, virtual makespan, traffic counters.
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " seed=" + std::to_string(g.seed));
    const auto run = run_golden(g, std::nullopt, net::ReliabilityConfig{});
    ASSERT_TRUE(run.global_outcome.ok());
    EXPECT_EQ(digest_of(run), g.result_sha256);
    EXPECT_EQ(run.makespan, static_cast<sim::SimTime>(g.makespan));
    EXPECT_EQ(run.traffic.messages, g.messages);
    EXPECT_EQ(run.traffic.bytes, g.bytes);
    EXPECT_EQ(run.reliability_stats.tracked, 0u);
    EXPECT_EQ(run.reliability_stats.acks_sent, 0u);
  }
}

TEST(ReliableEquivalence, EnabledOverFaultFreeLinkPinsEveryGoldenDigest) {
  // Reliability on, no faults: acks and timers reshape traffic and timing,
  // but the decided (x, p⃗) must equal the golden result digest exactly.
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " seed=" + std::to_string(g.seed));
    const auto run = run_golden(g, std::nullopt, cfg);
    ASSERT_TRUE(run.global_outcome.ok());
    EXPECT_EQ(digest_of(run), g.result_sha256);
    EXPECT_FALSE(run.stalled);
    EXPECT_GT(run.reliability_stats.tracked, 0u);
    EXPECT_GT(run.traffic.messages, g.messages) << "acks should add traffic";
    EXPECT_EQ(run.reliability_stats.give_ups, 0u);
    EXPECT_EQ(run.reliability_stats.duplicates_suppressed,
              run.reliability_stats.retransmits)
        << "on a fault-free link every retransmit (if any) is spurious";
    EXPECT_EQ(run.reliability_stats.sender_key_reuses, 0u)
        << "a block re-sent an identical (peer, topic, payload) as a new "
           "logical message — digest-keyed dedup would swallow it";
  }
}

TEST(ReliableEquivalence, NoSenderKeyReuseAcrossAgreementModes) {
  // The digest-keyed dedup is sound only while no block — in any round type:
  // value, bit-stream, or per-bit agreement — re-sends an identical
  // (peer, topic, payload) as a new logical message. Pin the invariant over
  // every agreement mode; were it ever violated, the fix is a sender
  // sequence number in MsgKey (docs/RELIABILITY.md).
  net::ReliabilityConfig cfg;
  cfg.enable = true;
  for (const blocks::AgreementMode mode :
       {blocks::AgreementMode::kValueBatched, blocks::AgreementMode::kBitStream,
        blocks::AgreementMode::kPerBitMessages}) {
    SCOPED_TRACE(blocks::agreement_mode_name(mode));
    core::AuctioneerSpec spec;
    spec.m = 3;
    spec.k = 1;
    spec.num_bidders = 4;
    spec.agreement_mode = mode;
    const core::DistributedAuctioneer auctioneer(
        spec, std::make_shared<core::DoubleAuctionAdapter>());
    const auto inst = testutil::make_instance(4, 3, 13, false);
    runtime::SimRunConfig rc;
    rc.seed = 13;
    rc.reliability = cfg;
    const auto run = runtime::SimRuntime(rc).run_distributed(auctioneer, inst);
    ASSERT_TRUE(run.global_outcome.ok());
    EXPECT_GT(run.reliability_stats.tracked, 0u);
    EXPECT_EQ(run.reliability_stats.sender_key_reuses, 0u);
  }
}

TEST(ReliableRecovery, LossyRunCompletesWithTheFaultFreeResult) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.seed = 999;
  sim::LinkFault rule;
  rule.drop = 0.05;
  rule.active_from = sim::from_micros(200);
  plan.links.push_back(rule);

  net::ReliabilityConfig cfg;
  cfg.enable = true;
  const auto run = run_golden(g, plan, cfg);

  ASSERT_TRUE(run.global_outcome.ok())
      << "⊥ (" << abort_reason_name(run.global_outcome.bottom().reason) << ")";
  EXPECT_FALSE(run.stalled);
  EXPECT_EQ(digest_of(run), g.result_sha256);
  EXPECT_GT(run.fault_stats.link_dropped, 0u);
  EXPECT_GT(run.reliability_stats.retransmits, 0u);
  EXPECT_EQ(run.reliability_stats.give_ups, 0u);
  // Retransmits and re-request answers bypass the key history: even a lossy
  // run must not register application-level key reuse.
  EXPECT_EQ(run.reliability_stats.sender_key_reuses, 0u);
}

TEST(PiggybackAcks, LossyRunPinsTheGoldenDigestWithFewerStandaloneAcks) {
  // The satellite claim, end-to-end: piggybacking on a lossy lan run changes
  // only the message economy — the decided (x, p⃗) still matches the golden
  // digest, and the standalone ack-frame count strictly drops because part
  // of the ack volume rides data frames.
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.seed = 999;
  sim::LinkFault rule;
  rule.drop = 0.05;
  rule.active_from = sim::from_micros(200);
  plan.links.push_back(rule);

  net::ReliabilityConfig on;
  on.enable = true;
  net::ReliabilityConfig off = on;
  off.piggyback_acks = false;

  const auto run_on = run_golden(g, plan, on);
  const auto run_off = run_golden(g, plan, off);
  ASSERT_TRUE(run_on.global_outcome.ok());
  ASSERT_TRUE(run_off.global_outcome.ok());
  EXPECT_EQ(digest_of(run_on), g.result_sha256);
  EXPECT_EQ(digest_of(run_off), g.result_sha256);
  EXPECT_GT(run_on.reliability_stats.acks_piggybacked, 0u)
      << "no ack ever rode a data frame";
  EXPECT_LT(run_on.reliability_stats.acks_sent,
            run_off.reliability_stats.acks_sent)
      << "piggybacking should reduce standalone ack traffic";
  EXPECT_EQ(run_off.reliability_stats.acks_piggybacked, 0u);
}

TEST(ReliableRecovery, CrashRecoverMidRoundIsRecovered) {
  // Node 1 is down for [8 ms, 20 ms) — mid bid-agreement. Recovery needs
  // all three mechanisms: peers' sender-side retransmits (for what it
  // missed), its own timer wheel deferred to the recovery instant (for its
  // crash-dropped self-deliveries — e.g. its own echo), and the round
  // watchdogs' re-requests. Without reliability this exact plan stalls to
  // ⊥ (ScenarioCrash.CrashMidRoundStallsToBottom).
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  plan.crashes.push_back(
      sim::CrashEvent{1, sim::from_millis(8), sim::from_millis(20)});

  net::ReliabilityConfig cfg;
  cfg.enable = true;
  const auto run = run_golden(g, plan, cfg);

  ASSERT_TRUE(run.global_outcome.ok())
      << "⊥ (" << abort_reason_name(run.global_outcome.bottom().reason) << ")";
  EXPECT_FALSE(run.stalled);
  EXPECT_EQ(digest_of(run), g.result_sha256);
  EXPECT_GT(run.fault_stats.crash_dropped, 0u);
}

TEST(ReliableRecovery, UnreachablePeerTerminatesWithDeliveryFailed) {
  // Provider 2's inbound direction is dead forever: nobody can reach it, so
  // senders exhaust their retries and abort with the distinct reason instead
  // of hanging until the event budget.
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  sim::FaultPlan plan;
  sim::LinkFault rule;
  rule.to = 2;
  rule.symmetric = false;
  rule.drop = 1.0;
  plan.links.push_back(rule);

  net::ReliabilityConfig cfg;
  cfg.enable = true;
  cfg.max_retries = 2;
  const auto run = run_golden(g, plan, cfg);

  ASSERT_FALSE(run.global_outcome.ok());
  EXPECT_GT(run.reliability_stats.give_ups, 0u);
  bool saw_delivery_failed = false;
  for (const auto& o : run.provider_outcomes) {
    if (o.is_bottom() && o.bottom().reason == AbortReason::kDeliveryFailed) {
      saw_delivery_failed = true;
    }
  }
  EXPECT_TRUE(saw_delivery_failed);
  // The run terminates on its own (bounded retransmit chains drain the
  // queue) — nowhere near the 50M event budget.
  EXPECT_LT(run.traffic.messages, 100'000u);
}

}  // namespace
}  // namespace dauct
