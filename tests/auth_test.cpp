// Tests for the signing layer: the vendored SHA-512/ed25519 primitives
// (known-answer vectors from FIPS 180-4 and RFC 8032) and, above them, the
// sign-on-send / verify-on-deliver message-auth boundary.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/adapters.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "net/auth.hpp"
#include "net/message.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

using crypto::ed25519::BatchItem;
using crypto::ed25519::KeyPair;
using crypto::ed25519::PublicKey;
using crypto::ed25519::Seed;
using crypto::ed25519::Signature;

std::string hex(const std::uint8_t* data, std::size_t n) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

template <std::size_t N>
std::array<std::uint8_t, N> from_hex(std::string_view h) {
  std::array<std::uint8_t, N> out{};
  EXPECT_EQ(h.size(), 2 * N);
  auto nib = [](char c) -> std::uint8_t {
    return static_cast<std::uint8_t>(c <= '9' ? c - '0' : c - 'a' + 10);
  };
  for (std::size_t i = 0; i < N; ++i) {
    out[i] = static_cast<std::uint8_t>((nib(h[2 * i]) << 4) | nib(h[2 * i + 1]));
  }
  return out;
}

BytesView view(const std::string& s) {
  return BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
}

TEST(Sha512, AbcVector) {
  const auto d = crypto::sha512(view("abc"));
  EXPECT_EQ(hex(d.data(), d.size()),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, MillionAStreaming) {
  // FIPS 180-4 long vector; also exercises the buffered multi-block path by
  // feeding chunk sizes that straddle the 128-byte block boundary.
  crypto::Sha512 h;
  const std::string chunk(257, 'a');
  std::size_t fed = 0;
  while (fed + chunk.size() <= 1000000) {
    h.update(view(chunk));
    fed += chunk.size();
  }
  h.update(view(std::string(1000000 - fed, 'a')));
  const auto d = h.finish();
  EXPECT_EQ(hex(d.data(), d.size()),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, OneShotMatchesChunked) {
  const std::string msg(517, 'x');
  crypto::Sha512 h;
  for (std::size_t i = 0; i < msg.size(); i += 13) {
    h.update(view(msg.substr(i, 13)));
  }
  EXPECT_EQ(h.finish(), crypto::sha512(view(msg)));
}

struct Rfc8032Vector {
  const char* seed;
  const char* public_key;
  std::string message;
  const char* signature;
};

// RFC 8032 §7.1 TEST 1 and TEST 2.
const Rfc8032Vector kRfcVectors[] = {
    {"9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60",
     "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a",
     "",
     "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
     "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b"},
    {"4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb",
     "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c",
     std::string(1, '\x72'),
     "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
     "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00"},
};

TEST(Ed25519, Rfc8032KeyDerivation) {
  for (const auto& v : kRfcVectors) {
    const KeyPair kp = crypto::ed25519::keypair_from_seed(from_hex<32>(v.seed));
    EXPECT_EQ(hex(kp.public_key.data(), 32), v.public_key);
  }
}

TEST(Ed25519, Rfc8032SignVectors) {
  for (const auto& v : kRfcVectors) {
    const KeyPair kp = crypto::ed25519::keypair_from_seed(from_hex<32>(v.seed));
    const Signature sig = crypto::ed25519::sign(kp, view(v.message));
    EXPECT_EQ(hex(sig.data(), 64), v.signature);
  }
}

TEST(Ed25519, Rfc8032VerifyVectors) {
  for (const auto& v : kRfcVectors) {
    const auto pk = from_hex<32>(v.public_key);
    const auto sig = from_hex<64>(v.signature);
    EXPECT_TRUE(crypto::ed25519::verify(pk, view(v.message), sig));
  }
}

TEST(Ed25519, RejectsTamperedMessageAndSignature) {
  const KeyPair kp =
      crypto::ed25519::keypair_from_seed(from_hex<32>(kRfcVectors[0].seed));
  const std::string msg = "round 3: bid vector";
  const Signature sig = crypto::ed25519::sign(kp, view(msg));
  ASSERT_TRUE(crypto::ed25519::verify(kp.public_key, view(msg), sig));

  EXPECT_FALSE(crypto::ed25519::verify(kp.public_key, view(msg + "!"), sig));
  for (std::size_t i : {std::size_t{0}, std::size_t{31}, std::size_t{63}}) {
    Signature bad = sig;
    bad[i] ^= 0x01;
    EXPECT_FALSE(crypto::ed25519::verify(kp.public_key, view(msg), bad));
  }
  PublicKey wrong = kp.public_key;
  wrong[5] ^= 0x40;
  EXPECT_FALSE(crypto::ed25519::verify(wrong, view(msg), sig));
}

TEST(Ed25519, RejectsNonCanonicalScalar) {
  const KeyPair kp =
      crypto::ed25519::keypair_from_seed(from_hex<32>(kRfcVectors[0].seed));
  const std::string msg = "m";
  Signature sig = crypto::ed25519::sign(kp, view(msg));
  // s += L: same value mod L but non-canonical encoding; must be rejected,
  // not accepted as a second valid signature (malleability).
  const std::uint8_t kL[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                               0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                               0,    0,    0,    0,    0,    0,    0,    0,
                               0,    0,    0,    0,    0,    0,    0,    0x10};
  unsigned carry = 0;
  for (int i = 0; i < 32; ++i) {
    const unsigned sum = sig[32 + i] + kL[i] + carry;
    sig[32 + i] = static_cast<std::uint8_t>(sum & 0xff);
    carry = sum >> 8;
  }
  EXPECT_FALSE(crypto::ed25519::verify(kp.public_key, view(msg), sig));
}

TEST(Ed25519, BatchVerifyAcceptsValidBatch) {
  crypto::Rng rng(0x5eedULL);
  std::vector<KeyPair> keys;
  std::vector<std::string> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 8; ++i) {
    Seed seed{};
    seed[0] = static_cast<std::uint8_t>(i + 1);
    seed[17] = 0xc3;
    keys.push_back(crypto::ed25519::keypair_from_seed(seed));
    msgs.push_back("payload #" + std::to_string(i));
  }
  for (int i = 0; i < 8; ++i) sigs.push_back(crypto::ed25519::sign(keys[i], view(msgs[i])));

  std::vector<BatchItem> items;
  for (int i = 0; i < 8; ++i) {
    items.push_back({&keys[i].public_key, view(msgs[i]), &sigs[i]});
  }
  EXPECT_TRUE(crypto::ed25519::verify_batch(items, rng));
  EXPECT_TRUE(crypto::ed25519::verify_batch({}, rng));
}

TEST(Ed25519, BatchVerifyRejectsOneBadSignature) {
  crypto::Rng rng(0xbadULL);
  std::vector<KeyPair> keys;
  std::vector<std::string> msgs;
  std::vector<Signature> sigs;
  for (int i = 0; i < 5; ++i) {
    Seed seed{};
    seed[3] = static_cast<std::uint8_t>(0x80 + i);
    keys.push_back(crypto::ed25519::keypair_from_seed(seed));
    msgs.push_back("vote " + std::to_string(i));
    sigs.push_back(crypto::ed25519::sign(keys.back(), view(msgs.back())));
  }
  sigs[3][7] ^= 0x20;  // corrupt R of one signature

  std::vector<BatchItem> items;
  for (int i = 0; i < 5; ++i) {
    items.push_back({&keys[i].public_key, view(msgs[i]), &sigs[i]});
  }
  // Run several times: the random coefficients must not mask the bad item.
  for (int trial = 0; trial < 4; ++trial) {
    EXPECT_FALSE(crypto::ed25519::verify_batch(items, rng));
  }
}

TEST(Ed25519, BatchVerifyRejectsSwappedMessages) {
  crypto::Rng rng(0x77ULL);
  Seed s1{}, s2{};
  s1[0] = 1;
  s2[0] = 2;
  const KeyPair k1 = crypto::ed25519::keypair_from_seed(s1);
  const KeyPair k2 = crypto::ed25519::keypair_from_seed(s2);
  const std::string m1 = "alpha", m2 = "beta";
  const Signature g1 = crypto::ed25519::sign(k1, view(m1));
  const Signature g2 = crypto::ed25519::sign(k2, view(m2));
  // Each signature is individually valid — but attributed to the wrong
  // message. The batch must notice the cross-wiring.
  std::vector<BatchItem> items = {{&k1.public_key, view(m2), &g1},
                                  {&k2.public_key, view(m1), &g2}};
  EXPECT_FALSE(crypto::ed25519::verify_batch(items, rng));
}

TEST(Ed25519, SignIsDeterministic) {
  Seed seed{};
  seed[31] = 0x5a;
  const KeyPair kp = crypto::ed25519::keypair_from_seed(seed);
  const std::string msg = "determinism keeps golden fingerprints stable";
  EXPECT_EQ(crypto::ed25519::sign(kp, view(msg)),
            crypto::ed25519::sign(kp, view(msg)));
}

// ---------------------------------------------------------------------------
// The message-auth boundary: SignerEndpoint framing, MessageValidator
// verdicts, transferable equivocation proofs, and the auditor sweep.
// ---------------------------------------------------------------------------

/// A validly signed frame exactly as SignerEndpoint would put it on the wire.
SharedBytes make_frame(const net::KeyDirectory& keys, NodeId sender,
                       const std::string& topic, Bytes payload) {
  const crypto::Digest t =
      net::auth_transcript(sender, topic, BytesView(payload));
  const Signature sig = crypto::ed25519::sign(keys.pair(sender), BytesView(t));
  Bytes frame;
  frame.reserve(net::kAuthHeaderBytes + payload.size());
  frame.push_back(net::kAuthMagic);
  append(frame, BytesView(sig));
  append(frame, BytesView(payload));
  return SharedBytes(std::move(frame));
}

net::AuthConfig eager_auth() {
  net::AuthConfig cfg;
  cfg.enable = true;
  return cfg;
}

TEST(AuthLayer, ValidFrameIsVerifiedAndStripped) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  const Bytes payload = {1, 2, 3, 4};
  net::Message msg{1, 0, "t/round", make_frame(*keys, 1, "t/round", payload)};
  ASSERT_EQ(v.on_deliver(msg), net::MessageValidator::Action::kDeliver);
  EXPECT_EQ(msg.payload, payload) << "signature header must be stripped";
  EXPECT_EQ(stats.verified_eager, 1u);
  ASSERT_EQ(v.records().size(), 1u);
  EXPECT_EQ(v.records()[0].sender, 1u);
}

TEST(AuthLayer, ClientAndLinkControlTrafficIsExempt) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  // Client traffic (from >= m): unsigned, passes untouched.
  net::Message client{3, 0, "bids", SharedBytes(Bytes{9, 9})};
  EXPECT_EQ(v.on_deliver(client), net::MessageValidator::Action::kDeliver);
  EXPECT_EQ(client.payload, (Bytes{9, 9}));
  // Reliability-layer control frames originate below the signer: exempt.
  net::Message ack{1, 0, net::kAckTopicName, SharedBytes(Bytes{8})};
  EXPECT_EQ(v.on_deliver(ack), net::MessageValidator::Action::kDeliver);
  EXPECT_EQ(stats.verified_eager, 0u);
  EXPECT_EQ(stats.rejected_malformed, 0u);
}

TEST(AuthLayer, ForgedFrameIsRejectedWithoutAbort) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  // A frame whose payload was tampered after signing: signature invalid.
  Bytes forged = make_frame(*keys, 1, "t/round", Bytes{1, 2, 3}).to_bytes();
  forged[net::kAuthHeaderBytes] ^= 0x5a;
  net::Message bad{1, 0, "t/round", SharedBytes(std::move(forged))};
  EXPECT_EQ(v.on_deliver(bad), net::MessageValidator::Action::kDrop);
  EXPECT_EQ(stats.rejected_bad_sig, 1u);
  EXPECT_FALSE(v.proof().has_value());

  // The honest frame still goes through — rejection is not an abort.
  net::Message good{1, 0, "t/round", make_frame(*keys, 1, "t/round", {1, 2, 3})};
  EXPECT_EQ(v.on_deliver(good), net::MessageValidator::Action::kDeliver);

  // Anti-framing: a forged *conflicting* frame against an occupied slot is
  // dropped, not treated as equivocation — an attacker without the key must
  // not be able to frame an honest sender.
  Bytes conflict = make_frame(*keys, 1, "t/round", Bytes{7, 7, 7}).to_bytes();
  conflict[net::kAuthHeaderBytes] ^= 0x11;
  net::Message framed{1, 0, "t/round", SharedBytes(std::move(conflict))};
  EXPECT_EQ(v.on_deliver(framed), net::MessageValidator::Action::kDrop);
  EXPECT_EQ(stats.rejected_bad_sig, 2u);
  EXPECT_FALSE(v.proof().has_value());
  EXPECT_EQ(stats.equivocations, 0u);
}

TEST(AuthLayer, TruncatedAndGarbageHeadersAreRejected) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  const auto drop = net::MessageValidator::Action::kDrop;
  net::Message empty{1, 0, "t/round", SharedBytes(Bytes{})};
  EXPECT_EQ(v.on_deliver(empty), drop);
  net::Message truncated{1, 0, "t/round",
                         SharedBytes(Bytes(net::kAuthHeaderBytes - 1,
                                           net::kAuthMagic))};
  EXPECT_EQ(v.on_deliver(truncated), drop);
  net::Message unsigned_frame{1, 0, "t/round", SharedBytes(Bytes(80, 0x42))};
  EXPECT_EQ(v.on_deliver(unsigned_frame), drop);
  EXPECT_EQ(stats.rejected_malformed, 3u);

  // None of it poisoned the slot: the honest frame still delivers.
  net::Message good{1, 0, "t/round", make_frame(*keys, 1, "t/round", {5})};
  EXPECT_EQ(v.on_deliver(good), net::MessageValidator::Action::kDeliver);
}

TEST(AuthLayer, ReplayedFrameIsSwallowed) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  const SharedBytes frame = make_frame(*keys, 1, "t/round", {1, 2, 3});
  net::Message first{1, 0, "t/round", frame};
  EXPECT_EQ(v.on_deliver(first), net::MessageValidator::Action::kDeliver);
  net::Message replayed{1, 0, "t/round", frame};
  EXPECT_EQ(v.on_deliver(replayed), net::MessageValidator::Action::kDrop);
  EXPECT_EQ(stats.replays_dropped, 1u);
  EXPECT_FALSE(v.proof().has_value()) << "a replay is not equivocation";
}

TEST(AuthLayer, EquivocationYieldsATransferableProof) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthStats stats;
  net::MessageValidator v(0, keys, eager_auth(), 7, &stats);

  net::Message a{1, 0, "t/round", make_frame(*keys, 1, "t/round", {1, 1})};
  ASSERT_EQ(v.on_deliver(a), net::MessageValidator::Action::kDeliver);
  net::Message b{1, 0, "t/round", make_frame(*keys, 1, "t/round", {2, 2})};
  EXPECT_EQ(v.on_deliver(b), net::MessageValidator::Action::kAbort);
  EXPECT_EQ(stats.equivocations, 1u);
  EXPECT_NE(v.abort_detail().find("provider 1"), std::string::npos);

  // The proof is transferable: an independent verifier holding nothing but
  // the accused signer's public key accepts it...
  ASSERT_TRUE(v.proof().has_value());
  const net::EquivocationProof& proof = *v.proof();
  EXPECT_EQ(proof.signer, 1u);
  EXPECT_TRUE(net::verify_equivocation_proof(proof, keys->public_key(1)));
  // ...and it does not incriminate anyone else,
  EXPECT_FALSE(net::verify_equivocation_proof(proof, keys->public_key(2)));
  // nor survive tampering,
  net::EquivocationProof tampered = proof;
  Bytes twisted = tampered.payload2.to_bytes();
  twisted[0] ^= 0xff;
  tampered.payload2 = SharedBytes(std::move(twisted));
  EXPECT_FALSE(net::verify_equivocation_proof(tampered, keys->public_key(1)));
  // nor hold with identical payloads (no conflict, no proof).
  net::EquivocationProof same = proof;
  same.payload2 = same.payload1;
  same.sig2 = same.sig1;
  EXPECT_FALSE(net::verify_equivocation_proof(same, keys->public_key(1)));
}

TEST(AuthLayer, SplitEquivocationIsCaughtByTheAuditorSweep) {
  // The equivocator sends conflicting payloads to *different* receivers: no
  // single validator sees a conflict, but the post-run sweep does.
  const auto keys = std::make_shared<net::KeyDirectory>(4, 42);
  net::MessageValidator v0(0, keys, eager_auth(), 7, nullptr);
  net::MessageValidator v2(2, keys, eager_auth(), 9, nullptr);

  net::Message to0{1, 0, "t/round", make_frame(*keys, 1, "t/round", {1, 1})};
  ASSERT_EQ(v0.on_deliver(to0), net::MessageValidator::Action::kDeliver);
  net::Message to2{1, 2, "t/round", make_frame(*keys, 1, "t/round", {2, 2})};
  ASSERT_EQ(v2.on_deliver(to2), net::MessageValidator::Action::kDeliver);
  EXPECT_FALSE(v0.proof() || v2.proof()) << "locally everything looked fine";

  const auto proof = net::audit_equivocation({&v0, &v2}, *keys);
  ASSERT_TRUE(proof.has_value());
  EXPECT_EQ(proof->signer, 1u);
  EXPECT_EQ(proof->topic, "t/round");
  EXPECT_TRUE(net::verify_equivocation_proof(*proof, keys->public_key(1)));

  // Consistent broadcasts must NOT trigger the auditor.
  net::MessageValidator w0(0, keys, eager_auth(), 7, nullptr);
  net::MessageValidator w2(2, keys, eager_auth(), 9, nullptr);
  net::Message c0{3, 0, "t/next", make_frame(*keys, 3, "t/next", {6})};
  net::Message c2{3, 2, "t/next", make_frame(*keys, 3, "t/next", {6})};
  ASSERT_EQ(w0.on_deliver(c0), net::MessageValidator::Action::kDeliver);
  ASSERT_EQ(w2.on_deliver(c2), net::MessageValidator::Action::kDeliver);
  EXPECT_FALSE(net::audit_equivocation({&w0, &w2}, *keys).has_value());
}

TEST(AuthLayer, BatchModeVerifiesARoundTogether) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthConfig cfg;
  cfg.enable = true;
  cfg.batch_verify = true;
  net::AuthStats stats;
  net::MessageValidator v(0, keys, cfg, 7, &stats);

  // A full round: one frame per sender on one topic. All delivered
  // optimistically; the m-th completes the round and triggers one batch.
  for (NodeId s = 0; s < 3; ++s) {
    net::Message msg{s, 0, "t/round",
                     make_frame(*keys, s, "t/round", {static_cast<std::uint8_t>(s)})};
    EXPECT_EQ(v.on_deliver(msg), net::MessageValidator::Action::kDeliver);
  }
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.verified_batched, 3u);
  EXPECT_EQ(stats.verified_eager, 0u);
  EXPECT_EQ(v.finalize(), net::MessageValidator::Action::kDeliver);
}

TEST(AuthLayer, BatchModeAttributesABadSignatureAtFinalize) {
  const auto keys = std::make_shared<net::KeyDirectory>(3, 42);
  net::AuthConfig cfg;
  cfg.enable = true;
  cfg.batch_verify = true;
  net::AuthStats stats;
  net::MessageValidator v(0, keys, cfg, 7, &stats);

  // An incomplete round with one forged frame: delivered optimistically
  // (that is the batch-mode trade-off), caught and attributed at finalize.
  net::Message good{0, 0, "t/round", make_frame(*keys, 0, "t/round", {0})};
  EXPECT_EQ(v.on_deliver(good), net::MessageValidator::Action::kDeliver);
  Bytes forged = make_frame(*keys, 1, "t/round", Bytes{1}).to_bytes();
  forged[net::kAuthHeaderBytes] ^= 0x5a;
  net::Message bad{1, 0, "t/round", SharedBytes(std::move(forged))};
  EXPECT_EQ(v.on_deliver(bad), net::MessageValidator::Action::kDeliver)
      << "batch mode delivers optimistically";

  EXPECT_EQ(v.finalize(), net::MessageValidator::Action::kAbort);
  EXPECT_NE(v.abort_detail().find("provider 1"), std::string::npos)
      << "the abort must attribute the forgery: " << v.abort_detail();
  EXPECT_EQ(stats.rejected_bad_sig, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end equivalence: the PR-5-style contract, now for auth.
// ---------------------------------------------------------------------------

runtime::SimRunResult run_golden_auth(const testutil::GoldenRun& g,
                                      net::AuthConfig auth) {
  core::AuctioneerSpec spec;
  spec.m = g.m;
  spec.k = g.k;
  spec.num_bidders = g.n;
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (g.standard) {
    auction::StandardAuctionParams p;
    p.epsilon = 0.25;
    adapter = std::make_shared<core::StandardAuctionAdapter>(p);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  const core::DistributedAuctioneer auctioneer(spec, adapter);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  cfg.auth = auth;
  return runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
}

std::string digest_of(const runtime::SimRunResult& run) {
  const Bytes enc = serde::encode_result(run.global_outcome.value());
  return crypto::digest_hex(crypto::sha256(BytesView(enc)));
}

TEST(AuthEquivalence, DisabledConfigIsByteIdenticalOverAllGoldens) {
  // Auth off constructs nothing: the full golden fingerprint — result bytes,
  // virtual makespan, traffic counters — must be reproduced exactly.
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " seed=" + std::to_string(g.seed));
    const auto run = run_golden_auth(g, net::AuthConfig{});
    ASSERT_TRUE(run.global_outcome.ok());
    EXPECT_EQ(digest_of(run), g.result_sha256);
    EXPECT_EQ(run.makespan, static_cast<sim::SimTime>(g.makespan));
    EXPECT_EQ(run.traffic.messages, g.messages);
    EXPECT_EQ(run.traffic.bytes, g.bytes);
    EXPECT_FALSE(run.auth_stats.tracked);
    EXPECT_FALSE(run.equivocation_proof.has_value());
  }
}

TEST(AuthEquivalence, EnabledOverFaultFreeLinkPinsEveryGoldenDigest) {
  // Auth on, fault-free: signature headers change traffic bytes, curve work
  // is free in virtual time (CostMode::kZero), and the decided (x, p⃗) must
  // equal the golden result digest exactly — in eager AND batch mode.
  for (const bool batch : {false, true}) {
    net::AuthConfig cfg;
    cfg.enable = true;
    cfg.batch_verify = batch;
    for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
      SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                   " seed=" + std::to_string(g.seed) +
                   (batch ? " batch" : " eager"));
      const auto run = run_golden_auth(g, cfg);
      ASSERT_TRUE(run.global_outcome.ok());
      EXPECT_EQ(digest_of(run), g.result_sha256);
      EXPECT_TRUE(run.auth_stats.tracked);
      EXPECT_GT(run.auth_stats.signed_sends, 0u);
      EXPECT_GT(batch ? run.auth_stats.verified_batched
                      : run.auth_stats.verified_eager, 0u);
      EXPECT_EQ(run.auth_stats.rejected_bad_sig, 0u);
      EXPECT_EQ(run.auth_stats.rejected_malformed, 0u);
      EXPECT_EQ(run.auth_stats.equivocations, 0u);
      EXPECT_FALSE(run.equivocation_proof.has_value());
      EXPECT_GT(run.auth_stats.signed_reuses, 0u)
          << "broadcast fan-out must reuse the one-slot frame cache";
      EXPECT_GT(run.traffic.bytes, g.bytes) << "65-byte headers add traffic";
    }
  }
}

}  // namespace
}  // namespace dauct
