// Asynchrony robustness: the paper's equilibrium is *ex post* — it must hold
// for every fair schedule. These sweeps perturb the schedule (per-node
// delays, jitter, latency regimes, seeds) and check that (a) the protocol
// always terminates with the same (x, p) the trusted auctioneer computes,
// and (b) only timing changes.
#include <gtest/gtest.h>

#include "auction/double_auction.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

using core::AuctioneerSpec;
using core::DistributedAuctioneer;
using runtime::SimRunConfig;
using runtime::SimRuntime;

DistributedAuctioneer make_double(std::size_t m, std::size_t k, std::size_t n) {
  AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  return DistributedAuctioneer(spec, std::make_shared<core::DoubleAuctionAdapter>());
}

class ScheduleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScheduleFuzz, OutcomeInvariantUnderScheduleSeeds) {
  // Different scheduler seeds = different jitter = different message
  // interleavings. The outcome may not change.
  const auto instance = testutil::make_instance(14, 5, 7);
  const auto auctioneer = make_double(5, 2, 14);
  const auto reference = auction::run_double_auction(instance);

  SimRunConfig cfg;
  cfg.seed = GetParam();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.stalled);
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_EQ(run.global_outcome.value(), reference);
}

TEST_P(ScheduleFuzz, OutcomeInvariantUnderLatencyRegimes) {
  const auto instance = testutil::make_instance(10, 4, GetParam());
  const auto auctioneer = make_double(4, 1, 10);
  const auto reference = auction::run_double_auction(instance);

  for (sim::LatencyModel model :
       {sim::LatencyModel::zero(), sim::LatencyModel::lan(),
        sim::LatencyModel::community()}) {
    SimRunConfig cfg;
    cfg.latency = model;
    cfg.seed = GetParam() * 3 + 1;
    const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
    ASSERT_TRUE(run.global_outcome.ok());
    EXPECT_EQ(run.global_outcome.value(), reference);
  }
}

TEST_P(ScheduleFuzz, ExtremeJitterStillTerminates) {
  const auto instance = testutil::make_instance(8, 5, GetParam() ^ 0xffu);
  const auto auctioneer = make_double(5, 1, 8);
  SimRunConfig cfg;
  cfg.seed = GetParam();
  cfg.latency.jitter = 0.95;  // near-total timing chaos
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.stalled);
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScheduleFuzz, ::testing::Range<std::uint64_t>(1, 16));

TEST(Asynchrony, StragglingProviderDelaysButDoesNotChangeOutcome) {
  // One provider's links are 100× slower: the run completes with the same
  // result, makespan dominated by the straggler (rounds wait for everyone).
  const auto instance = testutil::make_instance(12, 4, 3);
  const auto auctioneer = make_double(4, 1, 12);

  // Baseline.
  SimRunConfig cfg;
  cfg.seed = 9;
  const auto fast = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(fast.global_outcome.ok());

  // Rebuild with a scheduler-level straggler using node delay injection via
  // the config's latency (whole-network slowdown) as proxy plus direct runs:
  // here we emulate the straggler by a dedicated scheduler; the runtime API
  // exposes only whole-network knobs, so we verify the property at the
  // scheduler level in sim_test and at the network level here.
  SimRunConfig slow_cfg;
  slow_cfg.seed = 9;
  slow_cfg.latency.base = sim::from_millis(250);
  const auto slow = SimRuntime(slow_cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(slow.global_outcome.ok());
  EXPECT_EQ(slow.global_outcome.value(), fast.global_outcome.value());
  EXPECT_GT(slow.makespan, fast.makespan * 10);
}

TEST(Asynchrony, PhaseTimesAreMonotone) {
  const auto instance = testutil::make_instance(10, 4, 21);
  const auto auctioneer = make_double(4, 1, 10);
  SimRunConfig cfg;
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  ASSERT_EQ(run.bid_agreement_done_at.size(), 4u);
  for (NodeId j = 0; j < 4; ++j) {
    EXPECT_GT(run.bid_agreement_done_at[j], 0);
    EXPECT_GE(run.provider_done_at[j], run.bid_agreement_done_at[j]);
  }
  EXPECT_GE(run.makespan, run.provider_makespan());
}

TEST(Asynchrony, TraceRecordsProtocolRounds) {
  sim::Scheduler sched(2, sim::LatencyModel::zero(), 1);
  sched.enable_trace(true);
  sched.set_deliver(0, [&](const net::Message&) {});
  sched.set_deliver(1, [&](const net::Message&) {});
  sched.inject(0, net::Message{0, 1, "ba/vb/v", Bytes(10)});
  sched.inject(0, net::Message{1, 0, "ba/vb/e", Bytes(32)});
  sched.run();
  ASSERT_EQ(sched.trace().size(), 2u);
  EXPECT_EQ(sched.trace()[0].topic, "ba/vb/v");
  EXPECT_EQ(sched.trace()[1].to, 0u);
  const std::string text = sched.format_trace();
  EXPECT_NE(text.find("ba/vb/v"), std::string::npos);
  EXPECT_NE(text.find("->"), std::string::npos);
}

TEST(Asynchrony, TraceTruncationNoted) {
  sim::Scheduler sched(1, sim::LatencyModel::zero(), 1);
  sched.enable_trace(true);
  sched.set_deliver(0, [&](const net::Message&) {});
  for (int i = 0; i < 10; ++i) sched.inject(0, net::Message{0, 0, "t", {}});
  sched.run();
  const std::string text = sched.format_trace(/*max_entries=*/3);
  EXPECT_NE(text.find("7 more"), std::string::npos);
}

}  // namespace
}  // namespace dauct
