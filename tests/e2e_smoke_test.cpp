// End-to-end smoke test: a small double auction run through SimRuntime is
// fully deterministic for a fixed seed — two independent runs produce
// byte-identical allocations and payments and the same virtual makespan.
#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

using core::AuctioneerSpec;
using core::DistributedAuctioneer;
using runtime::SimRunConfig;
using runtime::SimRuntime;

struct SmokeRun {
  auction::AuctionInstance instance;
  runtime::SimRunResult result;
};

SmokeRun run_once(std::uint64_t seed) {
  AuctioneerSpec spec;
  spec.m = 5;
  spec.k = 2;
  spec.num_bidders = 12;
  DistributedAuctioneer auctioneer(spec,
                                   std::make_shared<core::DoubleAuctionAdapter>());

  auto instance = testutil::make_instance(spec.num_bidders, spec.m, seed);

  SimRunConfig config;
  config.seed = seed;
  SimRuntime rt(config);
  auto result = rt.run_distributed(auctioneer, instance);
  return SmokeRun{std::move(instance), std::move(result)};
}

TEST(E2ESmoke, SameSeedByteIdenticalOutcome) {
  const auto a = run_once(7).result;
  const auto b = run_once(7).result;

  ASSERT_TRUE(a.global_outcome.ok());
  ASSERT_TRUE(b.global_outcome.ok());
  EXPECT_FALSE(a.stalled);
  EXPECT_FALSE(b.stalled);

  // Byte-identical (x, p⃗): the canonical serialization must match exactly.
  const Bytes bytes_a = serde::encode_result(a.global_outcome.value());
  const Bytes bytes_b = serde::encode_result(b.global_outcome.value());
  EXPECT_EQ(bytes_a, bytes_b);

  // Virtual time and traffic are pure functions of the seed too.
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.traffic.messages, b.traffic.messages);
  EXPECT_EQ(a.traffic.bytes, b.traffic.bytes);
  EXPECT_EQ(a.shared_seed, b.shared_seed);
}

TEST(E2ESmoke, OutcomeIsNonTrivialAndFeasible) {
  const auto run = run_once(7);
  ASSERT_TRUE(run.result.global_outcome.ok());
  const auto& result = run.result.global_outcome.value();

  EXPECT_FALSE(result.allocation.empty());
  EXPECT_TRUE(result.allocation.is_canonical());
  EXPECT_TRUE(result.payments.budget_balanced());
  EXPECT_TRUE(auction::is_feasible(run.instance, result.allocation));
}

TEST(E2ESmoke, DifferentSeedsStillAgreeAcrossProviders) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const auto run = run_once(seed).result;
    ASSERT_TRUE(run.global_outcome.ok()) << "seed " << seed;
    for (const auto& outcome : run.provider_outcomes) {
      ASSERT_TRUE(outcome.ok()) << "seed " << seed;
      EXPECT_EQ(serde::encode_result(outcome.value()),
                serde::encode_result(run.global_outcome.value()))
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dauct
