// The threaded and TCP runtimes execute the same engines as the virtual-time
// simulator; these tests check the concurrency plumbing end to end.
#include <gtest/gtest.h>

#include "auction/double_auction.hpp"
#include "core/adapters.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "net/tcp_transport.hpp"
#include "serde/codec.hpp"
#include "runtime/tcp_runtime.hpp"
#include "runtime/thread_runtime.hpp"
#include "test_util.hpp"

namespace dauct::runtime {
namespace {

core::DistributedAuctioneer make_double(std::size_t m, std::size_t k, std::size_t n) {
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  return core::DistributedAuctioneer(spec,
                                     std::make_shared<core::DoubleAuctionAdapter>());
}

TEST(Frame, RoundTrip) {
  net::Message msg{3, 7, "alloc/dt/1/val", Bytes{1, 2, 3, 4, 5}};
  const Bytes frame = net::encode_frame(msg);
  const auto decoded = net::decode_frame(BytesView(frame));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->consumed, frame.size());
  EXPECT_EQ(decoded->message.from, 3u);
  EXPECT_EQ(decoded->message.to, 7u);
  EXPECT_EQ(decoded->message.topic, "alloc/dt/1/val");
  EXPECT_EQ(decoded->message.payload, msg.payload);
}

TEST(Frame, PartialFrameNeedsMoreBytes) {
  net::Message msg{1, 2, "topic", Bytes{9, 9}};
  Bytes frame = net::encode_frame(msg);
  frame.pop_back();
  EXPECT_FALSE(net::decode_frame(BytesView(frame)));
  EXPECT_FALSE(net::decode_frame(BytesView(frame.data(), 3)));
}

TEST(Frame, OversizedFrameRejected) {
  Bytes bad = {0xff, 0xff, 0xff, 0xff};  // 4 GiB body length
  EXPECT_THROW(net::decode_frame(BytesView(bad)), std::length_error);
}

TEST(Frame, SingleBufferEncodeMatchesTwoWriterReference) {
  // encode_frame now writes body-in-place with an up-front exact size; the
  // wire bytes must be identical to the seed's body-writer-then-copy shape.
  for (std::size_t payload_len : {std::size_t{0}, std::size_t{1}, std::size_t{127},
                                  std::size_t{128}, std::size_t{5000}}) {
    net::Message msg{4, 9, "alloc/out/digest", Bytes(payload_len, 0xad)};
    serde::Writer body;
    body.u32(msg.from);
    body.u32(msg.to);
    body.str(msg.topic.str());
    body.bytes(msg.payload.view());
    serde::Writer ref;
    ref.u32(static_cast<std::uint32_t>(body.buffer().size()));
    ref.raw(BytesView(body.buffer()));
    EXPECT_EQ(net::encode_frame(msg), ref.buffer()) << payload_len;
  }
}

TEST(Message, PayloadDigestMatchesOneShotHash) {
  net::Message msg{1, 2, "t", Bytes{5, 6, 7, 8}};
  EXPECT_EQ(msg.payload_digest(), crypto::sha256(msg.payload.view()));
  // Cached: repeated calls and copies return the same digest object value.
  const crypto::Digest first = msg.payload_digest();
  const net::Message copy = msg;
  EXPECT_EQ(copy.payload_digest(), first);
}

TEST(Message, SetPayloadInvalidatesDigestCache) {
  net::Message msg{1, 2, "t", Bytes{1}};
  const crypto::Digest d1 = msg.payload_digest();
  msg.set_payload(Bytes{2});
  const crypto::Digest d2 = msg.payload_digest();
  EXPECT_NE(d1, d2);
  EXPECT_EQ(d2, crypto::sha256(msg.payload.view()));
}

TEST(Mailbox, PushPopClose) {
  net::Mailbox mb;
  EXPECT_TRUE(mb.push(net::Message{0, 1, "a", {}}));
  EXPECT_TRUE(mb.push(net::Message{0, 1, "b", {}}));
  EXPECT_EQ(mb.size(), 2u);
  EXPECT_EQ(mb.pop()->topic, "a");
  mb.close();
  EXPECT_FALSE(mb.push(net::Message{0, 1, "c", {}}));  // refused
  EXPECT_EQ(mb.pop()->topic, "b");                      // drained
  EXPECT_FALSE(mb.pop());                               // closed + empty
}

TEST(Mailbox, PopForTimesOut) {
  net::Mailbox mb;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(mb.pop_for(std::chrono::milliseconds(30)));
  EXPECT_GE(std::chrono::steady_clock::now() - start,
            std::chrono::milliseconds(25));
}

TEST(ThreadRuntime, MatchesReferenceResult) {
  const auto instance = testutil::make_instance(15, 4, 5);
  const auto auctioneer = make_double(4, 1, 15);
  ThreadRunConfig cfg;
  const auto run = ThreadRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.timed_out);
  ASSERT_TRUE(run.global_outcome.ok())
      << abort_reason_name(run.global_outcome.bottom().reason);
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance));
}

TEST(ThreadRuntime, DetectsDeviationsUnderConcurrency) {
  const auto instance = testutil::make_instance(10, 5, 7);
  const auto auctioneer = make_double(5, 2, 10);
  ThreadRunConfig cfg;
  cfg.deviations[2] = adversary::corrupt_coin_reveal();
  const auto run = ThreadRuntime(cfg).run_distributed(auctioneer, instance);
  EXPECT_TRUE(run.global_outcome.is_bottom());
}

TEST(ThreadRuntime, RepeatedRunsStable) {
  const auto instance = testutil::make_instance(8, 3, 9);
  const auto auctioneer = make_double(3, 1, 8);
  const auto reference = auction::run_double_auction(instance);
  for (int round = 0; round < 5; ++round) {
    ThreadRunConfig cfg;
    cfg.seed = round + 1;
    const auto run = ThreadRuntime(cfg).run_distributed(auctioneer, instance);
    ASSERT_TRUE(run.global_outcome.ok()) << "round " << round;
    EXPECT_EQ(run.global_outcome.value(), reference) << "round " << round;
  }
}

TEST(TcpRuntime, FullProtocolOverRealSockets) {
  const auto instance = testutil::make_instance(10, 3, 21);
  const auto auctioneer = make_double(3, 1, 10);
  TcpRunConfig cfg;
  const auto run = TcpRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.timed_out) << "tcp run stalled";
  ASSERT_TRUE(run.global_outcome.ok())
      << abort_reason_name(run.global_outcome.bottom().reason);
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance));
}

TEST(TcpNode, DirectSendReceive) {
  net::TcpPeers peers;
  peers.base_port = net::pick_base_port(4);
  net::TcpNode a(0, peers);
  net::TcpNode b(1, peers);
  ASSERT_TRUE(a.send(net::Message{0, 1, "hello", Bytes{1, 2, 3}}));
  const auto msg = b.inbox().pop_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(msg);
  EXPECT_EQ(msg->topic, "hello");
  EXPECT_EQ(msg->payload, (Bytes{1, 2, 3}));
  a.shutdown();
  b.shutdown();
}

}  // namespace
}  // namespace dauct::runtime
