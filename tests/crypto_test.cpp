#include <gtest/gtest.h>

#include <set>

#include "crypto/commitment.hpp"
#include "crypto/hmac.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace dauct::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(digest_hex(sha256("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(digest_hex(sha256("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(digest_hex(sha256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(digest_hex(h.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64 bytes = exactly one block; exercises the rem==56..63 padding path too.
  const std::string s64(64, 'x');
  const std::string s55(55, 'x');
  const std::string s56(56, 'x');
  // Incremental == one-shot across boundaries.
  for (const auto& s : {s64, s55, s56}) {
    Sha256 inc;
    inc.update(std::string_view(s).substr(0, 13));
    inc.update(std::string_view(s).substr(13));
    EXPECT_EQ(inc.finish(), sha256(s)) << s.size();
  }
}

TEST(Sha256, IncrementalMatchesOneShotRandomSplits) {
  Rng rng(7);
  Bytes data(997);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
  const Digest expect = sha256(BytesView(data));
  for (int trial = 0; trial < 20; ++trial) {
    Sha256 h;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(data.size() - pos, rng.next_below(200) + 1);
      h.update(BytesView(data.data() + pos, take));
      pos += take;
    }
    EXPECT_EQ(h.finish(), expect);
  }
}

TEST(Sha256, ResetReusable) {
  Sha256 h;
  h.update("abc");
  (void)h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(digest_hex(h.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const Digest d = hmac_sha256(BytesView(key), BytesView(to_bytes("Hi There")));
  EXPECT_EQ(digest_hex(d),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  const Bytes key = to_bytes("Jefe");
  const Digest d =
      hmac_sha256(BytesView(key), BytesView(to_bytes("what do ya want for nothing?")));
  EXPECT_EQ(digest_hex(d),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const Digest d = hmac_sha256(
      BytesView(key),
      BytesView(to_bytes("Test Using Larger Than Block-Size Key - Hash Key First")));
  EXPECT_EQ(digest_hex(d),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, DeriveTagDomainSeparation) {
  const Digest a = derive_tag({"coin", "instance-1"});
  const Digest b = derive_tag({"coin", "instance-2"});
  const Digest c = derive_tag({"coininstance-1"});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, derive_tag({"coin", "instance-1"}));  // deterministic
}

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRangeAndCoversValues) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t v = rng.next_below(7);
    ASSERT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all residues hit
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);  // mean of U[0,1)
}

TEST(Rng, MoneyRangeInclusive) {
  Rng rng(11);
  const Money lo = Money::from_double(0.75), hi = Money::from_double(1.25);
  for (int i = 0; i < 1000; ++i) {
    const Money v = rng.next_money(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

TEST(Rng, MoneyPositiveExcludesZero) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_GT(rng.next_money_positive(Money::from_units(1)), kZeroMoney);
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 20'000; ++i) sum += rng.next_exponential(2.0);
  EXPECT_NEAR(sum / 20'000, 0.5, 0.02);  // mean 1/λ
}

TEST(Rng, ForkIndependentButDeterministic) {
  Rng a(21);
  Rng f1 = a.fork(1);
  Rng f2 = a.fork(2);
  Rng a2(21);
  Rng f1b = a2.fork(1);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Commitment, OpensCorrectly) {
  Rng rng(31);
  const Digest tag = derive_tag({"test"});
  auto [c, o] = commit(tag, 0xdeadbeef, rng);
  EXPECT_TRUE(verify(tag, c, o));
}

TEST(Commitment, RejectsWrongValue) {
  Rng rng(31);
  const Digest tag = derive_tag({"test"});
  auto [c, o] = commit(tag, 42, rng);
  Opening forged = o;
  forged.value = 43;
  EXPECT_FALSE(verify(tag, c, forged));
}

TEST(Commitment, RejectsWrongNonce) {
  Rng rng(31);
  const Digest tag = derive_tag({"test"});
  auto [c, o] = commit(tag, 42, rng);
  Opening forged = o;
  forged.nonce[0] ^= 1;
  EXPECT_FALSE(verify(tag, c, forged));
}

TEST(Commitment, TagBindsInstance) {
  Rng rng(31);
  auto [c, o] = commit(derive_tag({"coin/1"}), 42, rng);
  EXPECT_FALSE(verify(derive_tag({"coin/2"}), c, o));
}

TEST(Commitment, HidingNoncesDiffer) {
  Rng rng(31);
  const Digest tag = derive_tag({"t"});
  auto [c1, o1] = commit(tag, 42, rng);
  auto [c2, o2] = commit(tag, 42, rng);
  EXPECT_NE(c1.digest, c2.digest);  // same value, different blinding
}

}  // namespace
}  // namespace dauct::crypto
