// Fault-plan fuzzer tests (sim/fuzz.hpp + runtime/fuzz_harness.hpp).
//
// Four layers of guarantees:
//  * generator — the case stream is a pure function of the seed (pinned as
//    byte-identical .scn text), nth() replays any case standalone, every
//    sampled case respects the declared bounds (including the k budget), and
//    every case's scenario parses back through the strict .scn parser;
//  * oracle — a clean case passes, a result-bending deviation is caught as
//    wrong-result, a starved event budget is caught as budget-exceeded (and
//    distinguished from the clean twin failing);
//  * minimizer — an injected known-bad oracle is reduced to exactly its
//    triggering clauses, the verdict is preserved at every step, and the
//    minimizer is idempotent;
//  * bounds files — the strict INI parser accepts overrides and rejects
//    unknown keys and inconsistent ranges.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <set>

#include "runtime/fuzz_harness.hpp"
#include "sim/fuzz.hpp"

namespace dauct {
namespace {

using runtime::FuzzVerdict;
using runtime::Scenario;
using sim::FuzzBounds;
using sim::FuzzCase;
using sim::PlanFuzzer;

std::string scn_of(const FuzzCase& c) {
  return runtime::scenario_from_case(c).to_scn();
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

TEST(PlanFuzzer, SameSeedYieldsByteIdenticalCaseStream) {
  PlanFuzzer a(FuzzBounds{}, 42);
  PlanFuzzer b(FuzzBounds{}, 42);
  for (int i = 0; i < 25; ++i) {
    EXPECT_EQ(scn_of(a.next()), scn_of(b.next())) << "stream diverged at " << i;
  }
  // And a different seed diverges somewhere early (overwhelming probability:
  // every case embeds its own 64-bit run seed).
  PlanFuzzer c(FuzzBounds{}, 43);
  PlanFuzzer d(FuzzBounds{}, 42);
  bool differs = false;
  for (int i = 0; i < 5 && !differs; ++i) differs = scn_of(c.next()) != scn_of(d.next());
  EXPECT_TRUE(differs);
}

TEST(PlanFuzzer, NthReplaysAnyCaseWithoutItsPredecessors) {
  PlanFuzzer stream(FuzzBounds{}, 7);
  std::vector<std::string> generated;
  for (int i = 0; i < 10; ++i) generated.push_back(scn_of(stream.next()));
  const PlanFuzzer replay(FuzzBounds{}, 7);
  EXPECT_EQ(scn_of(replay.nth(9)), generated[9]);
  EXPECT_EQ(scn_of(replay.nth(0)), generated[0]);
  EXPECT_EQ(scn_of(replay.nth(4)), generated[4]);
}

TEST(PlanFuzzer, EveryCaseRespectsTheDeclaredBounds) {
  const FuzzBounds b;
  PlanFuzzer fuzzer(b, 3);
  for (int i = 0; i < 200; ++i) {
    const FuzzCase c = fuzzer.next();
    SCOPED_TRACE("case " + std::to_string(c.index));
    EXPECT_GE(c.users, b.min_users);
    EXPECT_LE(c.users, b.max_users);
    EXPECT_GE(c.providers, b.min_providers);
    EXPECT_LE(c.providers, b.max_providers);
    EXPECT_GE(c.k, 1u);
    EXPECT_GT(c.providers, 2 * c.k) << "m > 2k violated";
    EXPECT_LE(c.faults.links.size(), b.max_link_rules);
    for (const sim::LinkFault& f : c.faults.links) {
      EXPECT_LE(f.drop, b.max_drop);
      EXPECT_LE(f.duplicate, b.max_duplicate);
      EXPECT_LE(f.extra_delay, b.max_delay);
      EXPECT_LE(f.jitter, b.max_jitter);
      EXPECT_TRUE(f.drop > 0 || f.duplicate > 0 || f.extra_delay > 0 ||
                  f.jitter > 0)
          << "no-op link rule generated";
      EXPECT_LT(f.active_from, f.active_until);
    }
    EXPECT_LE(c.faults.cuts.size(), b.max_cuts);
    EXPECT_LE(c.faults.partitions.size(), b.max_partitions);
    EXPECT_LE(c.faults.crashes.size(), b.max_crashes);

    // The k budget: crashed + deviant + wire-tampered providers are distinct
    // and total at most k; crashes hit providers only.
    std::set<NodeId> adversarial;
    for (const sim::CrashEvent& cr : c.faults.crashes) {
      EXPECT_LT(cr.node, c.providers) << "crashed a client";
      EXPECT_LT(cr.at, cr.recover_at);
      EXPECT_TRUE(adversarial.insert(cr.node).second) << "node hit twice";
      if (cr.mode == sim::CrashMode::kAmnesia) {
        // Amnesia needs a log to replay and the rejoin sweep to close the
        // gap — the generator must never emit it without both layers.
        EXPECT_TRUE(c.wal) << "amnesia without a WAL";
        EXPECT_TRUE(c.reliability) << "amnesia without the rejoin path";
        EXPECT_NE(cr.recover_at, sim::kSimForever)
            << "amnesia on a crash-stop node";
      }
    }
    if (c.wal) {
      EXPECT_GE(c.wal_snapshot_every, 1u);
      EXPECT_LE(c.wal_snapshot_every, 16u);
    }
    for (const FuzzCase::Deviation& d : c.deviations) {
      EXPECT_LT(d.node, c.providers);
      EXPECT_TRUE(adversarial.insert(d.node).second) << "node hit twice";
      EXPECT_TRUE(std::find(b.strategies.begin(), b.strategies.end(),
                            d.strategy) != b.strategies.end());
      EXPECT_NE(d.strategy, "misreport-ask")
          << "input manipulation must stay out of the fuzz pool";
    }
    if (c.auth_adversary_node != kNoNode) {
      EXPECT_TRUE(c.auth) << "wire adversary without the signing layer";
      EXPECT_LT(c.auth_adversary_node, c.providers);
      EXPECT_TRUE(adversarial.insert(c.auth_adversary_node).second);
    }
    EXPECT_LE(adversarial.size(), c.k) << "k budget exceeded";

    // Service-plane draws: a service case stays inside the declared caps and
    // never carries amnesia (scenario validation rejects amnesia with
    // [service]; the generator degrades those crashes to plain recover and
    // records the degradation).
    if (c.instances > 1) {
      EXPECT_LE(c.instances, b.max_instances);
      EXPECT_GE(c.pipeline_depth, 1u);
      EXPECT_LE(c.pipeline_depth, std::min(b.max_pipeline_depth, c.instances));
      for (const sim::CrashEvent& cr : c.faults.crashes) {
        EXPECT_NE(cr.mode, sim::CrashMode::kAmnesia)
            << "amnesia crash in a service case";
      }
    } else {
      EXPECT_EQ(c.instances, 1u);
      EXPECT_EQ(c.pipeline_depth, 1u);
    }

    // Instance-scoped rules: a drawn filter names a real instance of a
    // service case — and only service cases may carry one at all.
    const auto check_scope = [&](std::uint64_t instance, const char* kind) {
      if (instance == sim::kAnyInstance) return;
      EXPECT_GT(c.instances, 1u) << kind << " instance filter without service";
      EXPECT_LT(instance, c.instances) << kind << " filter names a dead instance";
    };
    for (const sim::LinkFault& f : c.faults.links) check_scope(f.instance, "link");
    for (const sim::LinkCut& cut : c.faults.cuts) check_scope(cut.instance, "cut");
    for (const sim::Partition& p : c.faults.partitions) {
      check_scope(p.instance, "partition");
    }
    for (const FuzzCase::Deviation& d : c.deviations) {
      check_scope(d.instance, "deviation");
    }

    // Bidder adversaries: distinct real bidders, behaviours from the pool,
    // bounded count. (Bidders spend no k budget — they are users, and
    // Definition 1 already excludes their bids from the honest agreement.)
    EXPECT_LE(c.bidder_adversaries.size(),
              std::min<std::size_t>(3, c.users));
    std::set<BidderId> bad_bidders;
    for (const FuzzCase::BidderAdversary& a : c.bidder_adversaries) {
      EXPECT_LT(a.bidder, c.users);
      EXPECT_TRUE(bad_bidders.insert(a.bidder).second) << "bidder drawn twice";
      EXPECT_TRUE(std::find(b.bidder_behaviours.begin(),
                            b.bidder_behaviours.end(),
                            a.behaviour) != b.bidder_behaviours.end())
          << "behaviour '" << a.behaviour << "' not in the declared pool";
    }
    if (c.bidder_adversaries.empty()) {
      EXPECT_FALSE(c.bid_replay) << "frame tricks without a bidder adversary";
      EXPECT_FALSE(c.bid_reorder);
    }

    // In-flight WAL corruption arms only over a live WAL with an amnesia
    // crash to damage at, and its one-draw damage split stays a probability.
    if (c.wal_corrupt) {
      EXPECT_TRUE(c.wal) << "corrupt WAL without a WAL";
      EXPECT_TRUE(std::any_of(c.faults.crashes.begin(), c.faults.crashes.end(),
                              [](const sim::CrashEvent& cr) {
                                return cr.mode == sim::CrashMode::kAmnesia;
                              }))
          << "corrupt WAL with no amnesia crash to damage";
      EXPECT_LE(c.wal_torn + c.wal_flip, 1.0);
      EXPECT_GE(c.wal_sync_drop, 0.0);
      EXPECT_LE(c.wal_sync_drop, 0.9);
    }
  }
}

TEST(PlanFuzzer, ServiceCasesAppearAndMapOntoTheScenario) {
  // Coverage sanity at default bounds (p_service = 0.35): both service and
  // single-run cases must appear, and scenario_from_case must carry the
  // knobs through verbatim.
  PlanFuzzer fuzzer(FuzzBounds{}, 23);
  int service = 0, single = 0;
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = fuzzer.next();
    const Scenario sc = runtime::scenario_from_case(c);
    EXPECT_EQ(sc.instances, c.instances);
    EXPECT_EQ(sc.pipeline_depth, c.pipeline_depth);
    c.instances > 1 ? ++service : ++single;
  }
  EXPECT_GT(service, 0) << "p_service = 0.35 produced no service case in 100";
  EXPECT_GT(single, 0);

  // p_service = 0 eliminates them; p_service = 1 forces them (the checked-in
  // CI shard bounds file relies on this).
  FuzzBounds off;
  off.p_service = 0.0;
  PlanFuzzer none(off, 23);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(none.next().instances, 1u);
  FuzzBounds on;
  on.p_service = 1.0;
  PlanFuzzer all(on, 23);
  for (int i = 0; i < 50; ++i) EXPECT_GT(all.next().instances, 1u);
}

TEST(PlanFuzzer, AmnesiaCrashesActuallyAppearInTheStream) {
  // Coverage sanity: at default bounds the stream must contain amnesia-mode
  // crashes (p_wal · p_reliability · the recover coin make them common
  // enough that 300 cases without one means the post-pass is dead code) —
  // and turning allow_amnesia off must eliminate them entirely.
  PlanFuzzer fuzzer(FuzzBounds{}, 17);
  int amnesia = 0;
  for (int i = 0; i < 300; ++i) {
    for (const sim::CrashEvent& cr : fuzzer.next().faults.crashes) {
      if (cr.mode == sim::CrashMode::kAmnesia) ++amnesia;
    }
  }
  EXPECT_GT(amnesia, 0);

  FuzzBounds off;
  off.allow_amnesia = false;
  PlanFuzzer plain(off, 17);
  for (int i = 0; i < 300; ++i) {
    for (const sim::CrashEvent& cr : plain.next().faults.crashes) {
      EXPECT_EQ(cr.mode, sim::CrashMode::kRecover);
    }
  }
}

/// Bounds that force every new adversarial axis on, so a short stream is
/// guaranteed to exercise them (the checked-in CI shard bounds file mirrors
/// this shape).
FuzzBounds adversary_bounds() {
  FuzzBounds b;
  b.p_service = 0.5;
  b.p_instance_scope = 1.0;
  b.p_bidder_adversary = 1.0;
  b.p_wal_corrupt = 1.0;
  return b;
}

TEST(PlanFuzzer, AdversaryAxesActuallyAppearInTheStream) {
  // Coverage sanity: with the axes forced on, a short stream must contain
  // bidder adversaries, frame tricks, instance-scoped rules, and corrupt-WAL
  // cases — and scenario_from_case must carry each through verbatim.
  PlanFuzzer fuzzer(adversary_bounds(), 29);
  int bidders = 0, tricks = 0, scoped = 0, corrupt = 0;
  for (int i = 0; i < 150; ++i) {
    const FuzzCase c = fuzzer.next();
    const Scenario sc = runtime::scenario_from_case(c);
    ASSERT_EQ(sc.bidders.size(), c.bidder_adversaries.size());
    for (std::size_t j = 0; j < sc.bidders.size(); ++j) {
      EXPECT_EQ(sc.bidders[j].bidder, c.bidder_adversaries[j].bidder);
      EXPECT_EQ(sc.bidders[j].behaviour, c.bidder_adversaries[j].behaviour);
    }
    EXPECT_EQ(sc.bid_frames.replay, c.bid_replay);
    EXPECT_EQ(sc.bid_frames.reorder, c.bid_reorder);
    EXPECT_EQ(sc.wal_fault.enable, c.wal_corrupt);
    if (c.wal_corrupt) {
      EXPECT_EQ(sc.wal_fault.seed, c.wal_fault_seed);
      EXPECT_EQ(sc.wal_fault.sync_drop, c.wal_sync_drop);
      EXPECT_EQ(sc.wal_fault.torn, c.wal_torn);
      EXPECT_EQ(sc.wal_fault.flip, c.wal_flip);
    }
    if (!c.bidder_adversaries.empty()) ++bidders;
    if (c.bid_replay || c.bid_reorder) ++tricks;
    if (c.wal_corrupt) ++corrupt;
    for (const sim::LinkFault& f : c.faults.links) {
      if (f.instance != sim::kAnyInstance) ++scoped;
    }
    for (const sim::LinkCut& cut : c.faults.cuts) {
      if (cut.instance != sim::kAnyInstance) ++scoped;
    }
  }
  EXPECT_GT(bidders, 0) << "p_bidder_adversary = 1 produced no adversary";
  EXPECT_GT(tricks, 0) << "frame tricks never drawn";
  EXPECT_GT(scoped, 0) << "p_instance_scope = 1 produced no scoped rule";
  EXPECT_GT(corrupt, 0) << "p_wal_corrupt = 1 produced no corrupt-WAL case";

  // And zeroing the axes eliminates them (the default-shard contract).
  FuzzBounds off;
  off.p_instance_scope = 0.0;
  off.p_bidder_adversary = 0.0;
  off.p_wal_corrupt = 0.0;
  PlanFuzzer none(off, 29);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = none.next();
    EXPECT_TRUE(c.bidder_adversaries.empty());
    EXPECT_FALSE(c.bid_replay);
    EXPECT_FALSE(c.bid_reorder);
    EXPECT_FALSE(c.wal_corrupt);
    for (const sim::LinkFault& f : c.faults.links) {
      EXPECT_EQ(f.instance, sim::kAnyInstance);
    }
  }
}

// S1 regression: a degraded plan (amnesia crash drawn into a [service] case,
// demoted to plain recover) must record the degradation, and nth() must
// replay the degraded (seed, index) pair byte-identically — the CLI prints
// these lines so an operator replaying a repro sees what changed.
TEST(PlanFuzzer, DegradedCaseIsRecordedAndReplaysByteIdentically) {
  const std::uint64_t seed = 7;
  PlanFuzzer stream(FuzzBounds{}, seed);
  std::optional<std::uint64_t> degraded_index;
  std::vector<std::string> degradations;
  std::string text;
  for (int i = 0; i < 400 && !degraded_index; ++i) {
    const FuzzCase c = stream.next();
    if (!c.degradations.empty()) {
      degraded_index = c.index;
      degradations = c.degradations;
      text = scn_of(c);
    }
  }
  ASSERT_TRUE(degraded_index.has_value())
      << "400 default-bounds cases with no degraded amnesia crash — the "
         "degradation path is dead code";

  const PlanFuzzer replay(FuzzBounds{}, seed);
  const FuzzCase again = replay.nth(*degraded_index);
  EXPECT_EQ(again.degradations, degradations);
  EXPECT_FALSE(again.degradations.empty());
  EXPECT_GT(again.instances, 1u);  // only service cases degrade
  EXPECT_EQ(scn_of(again), text);
  // The record is human-actionable: it names the node and the reason.
  EXPECT_NE(again.degradations[0].find("degraded to recover"),
            std::string::npos);
}

TEST(PlanFuzzer, EveryGeneratedScenarioSurvivesTheStrictScnParser) {
  PlanFuzzer fuzzer(FuzzBounds{}, 11);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = fuzzer.next();
    const std::string text = scn_of(c);
    const runtime::ScenarioParse parsed = runtime::parse_scenario(text);
    ASSERT_TRUE(parsed.ok()) << "case " << c.index << ": " << parsed.error
                             << "\n--- emitted .scn ---\n" << text;
    // And the round-trip is a fixpoint: emit(parse(emit(x))) == emit(x).
    EXPECT_EQ(parsed.scenario->to_scn(), text) << "case " << c.index;
  }
  // Same fixpoint with every adversarial axis forced on, so the [bidder],
  // [bid_frames], [wal] corrupt and instance= emissions all round-trip.
  PlanFuzzer adv(adversary_bounds(), 11);
  for (int i = 0; i < 100; ++i) {
    const FuzzCase c = adv.next();
    const std::string text = scn_of(c);
    const runtime::ScenarioParse parsed = runtime::parse_scenario(text);
    ASSERT_TRUE(parsed.ok()) << "adversary case " << c.index << ": "
                             << parsed.error << "\n--- emitted .scn ---\n"
                             << text;
    EXPECT_EQ(parsed.scenario->to_scn(), text) << "adversary case " << c.index;
  }
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// A small fast scenario (zero latency, no faults) the oracle tests mutate.
Scenario base_scenario() {
  Scenario sc;
  sc.name = "fuzz-oracle-base";
  sc.users = 6;
  sc.providers = 3;
  sc.k = 1;
  sc.seed = 5;
  sc.latency = "zero";
  return sc;
}

TEST(FuzzOracle, CleanCasePasses) {
  const runtime::FuzzReport report = runtime::run_oracle(base_scenario());
  EXPECT_EQ(report.verdict, FuzzVerdict::kPass) << report.detail;
}

TEST(FuzzOracle, ResultBendingDeviationIsCaughtAsWrongResult) {
  // misreport-ask is deliberately excluded from the fuzz strategy pool
  // because it legitimately completes ok with a different result — which is
  // exactly what makes it the perfect probe that the matches-clean oracle
  // would catch a silent wrong result.
  Scenario sc = base_scenario();
  sc.deviations.push_back(runtime::DeviationSpec{
      0, "misreport-ask", Money::from_units(1'000'000)});
  const runtime::FuzzReport report = runtime::run_oracle(sc);
  EXPECT_EQ(report.verdict, FuzzVerdict::kWrongResult) << report.detail;
}

TEST(FuzzOracle, StarvedEventBudgetIsCaughtAsBudgetExceeded) {
  // Position the budget between the clean run's appetite and the faulty
  // run's: heavy duplication makes the faulty run strictly hungrier.
  Scenario sc = base_scenario();
  sim::LinkFault rule;
  rule.duplicate = 1.0;
  sc.faults.links.push_back(rule);

  const runtime::ScenarioRun wide = runtime::run_scenario(sc, true);
  ASSERT_TRUE(wide.clean.has_value());
  const std::uint64_t clean_events = wide.clean->events_dispatched;
  const std::uint64_t faulty_events = wide.run.events_dispatched;
  ASSERT_GT(faulty_events, clean_events) << "duplication added no events?";

  sc.max_events = clean_events + (faulty_events - clean_events) / 2;
  const runtime::FuzzReport report = runtime::run_oracle(sc);
  EXPECT_EQ(report.verdict, FuzzVerdict::kBudgetExceeded) << report.detail;

  // Starve the clean twin too: that must be classified as the harness's own
  // failure, never as a protocol liveness finding.
  sc.max_events = clean_events / 2;
  const runtime::FuzzReport starved = runtime::run_oracle(sc);
  EXPECT_EQ(starved.verdict, FuzzVerdict::kCleanFailed) << starved.detail;
}

TEST(FuzzOracle, SmallDefaultBoundsSweepIsViolationFree) {
  // A miniature of the CI smoke shard: the first few default-bounds cases
  // must all pass the oracle (violations at default bounds are shipped as
  // pinned repro scenarios, not left latent).
  PlanFuzzer fuzzer(FuzzBounds{}, 1);
  for (int i = 0; i < 4; ++i) {
    const FuzzCase c = fuzzer.next();
    const runtime::FuzzReport report =
        runtime::run_oracle(runtime::scenario_from_case(c));
    EXPECT_EQ(report.verdict, FuzzVerdict::kPass)
        << "case " << c.index << " (seed " << c.case_seed
        << "): " << runtime::fuzz_verdict_name(report.verdict) << " — "
        << report.detail;
  }
}

// ---------------------------------------------------------------------------
// Minimizer
// ---------------------------------------------------------------------------

/// Known-bad oracle: "fails" iff the plan still contains a crash of provider
/// 0 AND at least one cut. Everything else in the plan is noise the
/// minimizer must strip.
FuzzVerdict crash0_and_cut_oracle(const Scenario& sc) {
  bool crash0 = false;
  for (const sim::CrashEvent& cr : sc.faults.crashes) {
    if (cr.node == 0) crash0 = true;
  }
  return crash0 && !sc.faults.cuts.empty() ? FuzzVerdict::kWrongResult
                                           : FuzzVerdict::kPass;
}

Scenario noisy_scenario() {
  Scenario sc = base_scenario();
  sc.faults.crashes.push_back(sim::CrashEvent{0, sim::from_millis(10)});
  sc.faults.crashes.push_back(sim::CrashEvent{1, sim::from_millis(20)});
  sc.faults.cuts.push_back(
      sim::LinkCut{2, 5, sim::from_millis(1), sim::from_millis(9)});
  sc.faults.cuts.push_back(sim::LinkCut{0, 1, sim::from_millis(3)});
  sim::LinkFault noise;
  noise.drop = 0.2;
  sc.faults.links.push_back(noise);
  sc.faults.partitions.push_back(
      sim::Partition{{0, 1}, sim::from_millis(2), sim::from_millis(4)});
  sc.deviations.push_back(runtime::DeviationSpec{2, "selective-silence"});
  return sc;
}

TEST(FuzzMinimizer, InjectedBadOracleIsReducedToItsTriggeringClauses) {
  const Scenario failing = noisy_scenario();
  ASSERT_EQ(crash0_and_cut_oracle(failing), FuzzVerdict::kWrongResult);

  const runtime::MinimizeResult min = runtime::minimize(
      failing, FuzzVerdict::kWrongResult, crash0_and_cut_oracle);

  // Locally minimal: exactly the crash-of-0 and one cut survive (≤ 3 active
  // fault clauses, per the acceptance bar; here it is exactly 2).
  EXPECT_EQ(min.scenario.faults.crashes.size(), 1u);
  EXPECT_EQ(min.scenario.faults.crashes[0].node, 0u);
  EXPECT_EQ(min.scenario.faults.cuts.size(), 1u);
  EXPECT_TRUE(min.scenario.faults.links.empty());
  EXPECT_TRUE(min.scenario.faults.partitions.empty());
  EXPECT_TRUE(min.scenario.deviations.empty());
  EXPECT_EQ(min.removed, 5u);
  EXPECT_GT(min.probes, 0u);

  // Soundness: the minimized plan still fails with the same verdict.
  EXPECT_EQ(crash0_and_cut_oracle(min.scenario), FuzzVerdict::kWrongResult);

  // Scalar shrinking ran too: the surviving crash instant was halved to the
  // grid floor and the cut window widened to the whole-run default.
  EXPECT_EQ(min.scenario.faults.crashes[0].at, 0);
  EXPECT_EQ(min.scenario.faults.cuts[0].from, sim::kSimStart);
  EXPECT_EQ(min.scenario.faults.cuts[0].until, sim::kSimForever);
}

TEST(FuzzMinimizer, AmnesiaModeIsShrunkWhenTheFailureDoesNotNeedIt) {
  // The known-bad oracle only looks at "a crash of node 0 exists"; the
  // amnesia mode (and the WAL layer under it) is noise the scalar shrinker
  // must strip — and widening recover_at to forever must reset the mode too,
  // or the emitted repro would fail the .scn validator (mode=amnesia needs
  // recover_ms).
  const auto crash0_oracle = [](const Scenario& sc) {
    for (const sim::CrashEvent& cr : sc.faults.crashes) {
      if (cr.node == 0) return FuzzVerdict::kWrongResult;
    }
    return FuzzVerdict::kPass;
  };
  Scenario sc = base_scenario();
  sc.reliability.enable = true;
  sc.wal.enable = true;
  sim::CrashEvent crash{0, sim::from_millis(10)};
  crash.recover_at = sim::from_millis(30);
  crash.mode = sim::CrashMode::kAmnesia;
  sc.faults.crashes.push_back(crash);

  const runtime::MinimizeResult min =
      runtime::minimize(sc, FuzzVerdict::kWrongResult, crash0_oracle);
  ASSERT_EQ(min.scenario.faults.crashes.size(), 1u);
  EXPECT_EQ(min.scenario.faults.crashes[0].mode, sim::CrashMode::kRecover);
  EXPECT_EQ(min.scenario.faults.crashes[0].recover_at, sim::kSimForever);

  // The emitted repro survives the strict parser (the validator would reject
  // a leftover mode=amnesia without recover_ms).
  const runtime::ScenarioParse parsed =
      runtime::parse_scenario(min.scenario.to_scn());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
}

TEST(FuzzMinimizer, BidderAndFrameClausesAreRemovableNoise) {
  // Known-bad oracle keyed on "a crash of node 0 exists": the bidder
  // adversaries, both frame tricks, and the corrupt-WAL knob are all noise
  // the new clause pool must strip — and dropping the amnesia crash's mode
  // must drop the lying disk with it (it has no crash left to arm at).
  const auto crash0_oracle = [](const Scenario& sc) {
    for (const sim::CrashEvent& cr : sc.faults.crashes) {
      if (cr.node == 0) return FuzzVerdict::kWrongResult;
    }
    return FuzzVerdict::kPass;
  };
  Scenario sc = base_scenario();
  sc.reliability.enable = true;
  sc.wal.enable = true;
  sim::CrashEvent crash{0, sim::from_millis(10)};
  crash.recover_at = sim::from_millis(30);
  crash.mode = sim::CrashMode::kAmnesia;
  sc.faults.crashes.push_back(crash);
  sc.bidders.push_back(runtime::BidderSpec{1, "malformed"});
  sc.bidders.push_back(runtime::BidderSpec{3, "silent"});
  sc.bid_frames.replay = true;
  sc.bid_frames.reorder = true;
  sc.wal_fault.enable = true;
  sc.wal_fault.sync_drop = 0.5;
  sc.wal_fault.torn = 0.5;

  const runtime::MinimizeResult min =
      runtime::minimize(sc, FuzzVerdict::kWrongResult, crash0_oracle);
  EXPECT_TRUE(min.scenario.bidders.empty());
  EXPECT_FALSE(min.scenario.bid_frames.replay);
  EXPECT_FALSE(min.scenario.bid_frames.reorder);
  EXPECT_FALSE(min.scenario.wal_fault.enable);
  ASSERT_EQ(min.scenario.faults.crashes.size(), 1u);
  EXPECT_EQ(min.scenario.faults.crashes[0].mode, sim::CrashMode::kRecover);

  // The emitted repro survives the strict parser (a leftover corrupt knob
  // without an amnesia crash would be rejected).
  const runtime::ScenarioParse parsed =
      runtime::parse_scenario(min.scenario.to_scn());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
}

TEST(FuzzMinimizer, TriggeringBidderClauseSurvivesMinimization) {
  // Dual of the noise test: when the failure IS a bidder clause, ddmin must
  // keep exactly that clause and drop the co-drawn fault noise.
  const auto malformed_oracle = [](const Scenario& sc) {
    for (const runtime::BidderSpec& b : sc.bidders) {
      if (b.behaviour == "malformed") return FuzzVerdict::kWrongResult;
    }
    return FuzzVerdict::kPass;
  };
  Scenario sc = base_scenario();
  sc.bidders.push_back(runtime::BidderSpec{1, "silent"});
  sc.bidders.push_back(runtime::BidderSpec{2, "malformed"});
  sc.bid_frames.reorder = true;
  sc.faults.cuts.push_back(sim::LinkCut{0, 1});
  sim::LinkFault noise;
  noise.drop = 0.2;
  sc.faults.links.push_back(noise);

  const runtime::MinimizeResult min =
      runtime::minimize(sc, FuzzVerdict::kWrongResult, malformed_oracle);
  ASSERT_EQ(min.scenario.bidders.size(), 1u);
  EXPECT_EQ(min.scenario.bidders[0].behaviour, "malformed");
  EXPECT_FALSE(min.scenario.bid_frames.reorder);
  EXPECT_TRUE(min.scenario.faults.cuts.empty());
  EXPECT_TRUE(min.scenario.faults.links.empty());
  EXPECT_EQ(malformed_oracle(min.scenario), FuzzVerdict::kWrongResult);
}

TEST(FuzzMinimizer, InstanceFiltersGeneralizeAwayWhenUnneeded) {
  // A cut confined to instance 1 where the injected failure doesn't care
  // about the confinement: the shrinker must widen the filter back to
  // every-instance (and may shrink the service shape toward the floor).
  const auto any_cut_oracle = [](const Scenario& sc) {
    return sc.faults.cuts.empty() ? FuzzVerdict::kPass
                                  : FuzzVerdict::kWrongResult;
  };
  Scenario sc = base_scenario();
  sc.instances = 3;
  sc.pipeline_depth = 2;
  sim::LinkCut cut{0, 1};
  cut.instance = 1;
  sc.faults.cuts.push_back(cut);

  const runtime::MinimizeResult min =
      runtime::minimize(sc, FuzzVerdict::kWrongResult, any_cut_oracle);
  ASSERT_EQ(min.scenario.faults.cuts.size(), 1u);
  EXPECT_EQ(min.scenario.faults.cuts[0].instance, sim::kAnyInstance);
  EXPECT_LE(min.scenario.instances, 2u);
  EXPECT_EQ(min.scenario.pipeline_depth, 1u);
  const runtime::ScenarioParse parsed =
      runtime::parse_scenario(min.scenario.to_scn());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
}

TEST(FuzzMinimizer, MinimizationIsIdempotent) {
  const runtime::MinimizeResult once = runtime::minimize(
      noisy_scenario(), FuzzVerdict::kWrongResult, crash0_and_cut_oracle);
  const runtime::MinimizeResult twice = runtime::minimize(
      once.scenario, FuzzVerdict::kWrongResult, crash0_and_cut_oracle);
  EXPECT_EQ(twice.scenario.to_scn(), once.scenario.to_scn());
  EXPECT_EQ(twice.removed, 0u);
}

TEST(FuzzMinimizer, VerdictMismatchIsNeverAccepted) {
  // An oracle whose verdict *changes* (rather than passes) when a clause is
  // removed: the minimizer must keep the clause — reproducing a different
  // failure is not reproducing the failure.
  const auto shifting = [](const Scenario& sc) {
    if (!sc.faults.crashes.empty() && !sc.faults.cuts.empty())
      return FuzzVerdict::kWrongResult;
    if (!sc.faults.crashes.empty()) return FuzzVerdict::kBudgetExceeded;
    return FuzzVerdict::kPass;
  };
  Scenario sc = base_scenario();
  sc.faults.crashes.push_back(sim::CrashEvent{1, 0});
  sc.faults.cuts.push_back(sim::LinkCut{0, 1});
  const runtime::MinimizeResult min =
      runtime::minimize(sc, FuzzVerdict::kWrongResult, shifting);
  EXPECT_EQ(min.scenario.faults.crashes.size(), 1u);
  EXPECT_EQ(min.scenario.faults.cuts.size(), 1u);
  EXPECT_EQ(shifting(min.scenario), FuzzVerdict::kWrongResult);
}

TEST(FuzzMinimizer, PinnedExpectationsMakeTheReproSelfChecking) {
  // pin_expectations on a wrong-result report writes the observed mismatch
  // into [expect]; running the pinned scenario then passes exactly while the
  // violation reproduces.
  Scenario sc = base_scenario();
  sc.deviations.push_back(runtime::DeviationSpec{
      0, "misreport-ask", Money::from_units(1'000'000)});
  const runtime::FuzzReport report = runtime::run_oracle(sc);
  ASSERT_EQ(report.verdict, FuzzVerdict::kWrongResult);

  runtime::pin_expectations(sc, report);
  EXPECT_EQ(sc.expect.outcome, runtime::ScenarioExpect::Outcome::kOk);
  ASSERT_TRUE(sc.expect.matches_clean.has_value());
  EXPECT_FALSE(*sc.expect.matches_clean);

  const runtime::ScenarioRun rerun = runtime::run_scenario(sc);
  EXPECT_TRUE(rerun.ok()) << (rerun.failures.empty() ? "" : rerun.failures[0]);

  // The pinned text round-trips through the strict parser unchanged.
  const runtime::ScenarioParse parsed = runtime::parse_scenario(sc.to_scn());
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(parsed.scenario->to_scn(), sc.to_scn());
}

// ---------------------------------------------------------------------------
// Bounds files
// ---------------------------------------------------------------------------

TEST(FuzzBoundsFile, OverridesParseAndApply) {
  const sim::FuzzBoundsParse parsed = sim::parse_fuzz_bounds(R"(
[shape]
min_users = 4
max_users = 8
min_providers = 3
max_providers = 5
latencies = zero, lan
max_events = 500000
max_instances = 4
max_pipeline_depth = 3

[faults]
max_link_rules = 1
max_drop = 0.5
max_delay = 2.5
max_crashes = 1
allow_crash_recover = false
allow_amnesia = false
horizon = 80

[knobs]
p_reliability = 1
p_wal = 0.25
p_deviation = 0
p_service = 0.75
strategies = selective-silence
)");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const FuzzBounds& b = *parsed.bounds;
  EXPECT_EQ(b.min_users, 4u);
  EXPECT_EQ(b.max_users, 8u);
  EXPECT_EQ(b.latencies, (std::vector<std::string>{"zero", "lan"}));
  EXPECT_EQ(b.max_events, 500'000u);
  EXPECT_EQ(b.max_link_rules, 1u);
  EXPECT_DOUBLE_EQ(b.max_drop, 0.5);
  EXPECT_EQ(b.max_delay, sim::from_micros(2'500));
  EXPECT_FALSE(b.allow_crash_recover);
  EXPECT_FALSE(b.allow_amnesia);
  EXPECT_EQ(b.horizon, sim::from_millis(80));
  EXPECT_DOUBLE_EQ(b.p_reliability, 1.0);
  EXPECT_DOUBLE_EQ(b.p_wal, 0.25);
  EXPECT_EQ(b.strategies, (std::vector<std::string>{"selective-silence"}));
  EXPECT_EQ(b.max_instances, 4u);
  EXPECT_EQ(b.max_pipeline_depth, 3u);
  EXPECT_DOUBLE_EQ(b.p_service, 0.75);
  // Untouched keys keep their defaults.
  EXPECT_DOUBLE_EQ(b.max_duplicate, FuzzBounds{}.max_duplicate);
}

TEST(FuzzBoundsFile, RejectsUnknownKeysAndInconsistentRanges) {
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nmax_wombats = 3\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[wombats]\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nmax_drop = 0.1\n").ok())
      << "a [faults] key must not be accepted under [shape]";
  EXPECT_FALSE(
      sim::parse_fuzz_bounds("[shape]\nmin_users = 9\nmax_users = 3\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nmin_providers = 2\n").ok())
      << "m >= 3 is required for k >= 1";
  EXPECT_FALSE(sim::parse_fuzz_bounds("[faults]\nmax_drop = 1.5\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[faults]\nhorizon = 0\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nlatencies = warp\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[knobs]\np_auth = nope\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\np_wal = 0.5\n").ok())
      << "a [knobs] key must not be accepted under [shape]";
  EXPECT_FALSE(sim::parse_fuzz_bounds("[knobs]\nallow_amnesia = true\n").ok())
      << "a [faults] key must not be accepted under [knobs]";
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nmax_instances = 1\n").ok())
      << "a service case multiplexes at least two auctions";
  EXPECT_FALSE(sim::parse_fuzz_bounds("[shape]\nmax_pipeline_depth = 0\n").ok());
  EXPECT_FALSE(sim::parse_fuzz_bounds("[knobs]\nmax_instances = 3\n").ok())
      << "a [shape] key must not be accepted under [knobs]";
  // The empty text is the default bounds.
  EXPECT_TRUE(sim::parse_fuzz_bounds("").ok());
}

}  // namespace
}  // namespace dauct
