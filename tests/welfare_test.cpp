#include <gtest/gtest.h>

#include "auction/welfare.hpp"
#include "auction/workload.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {
namespace {

AuctionInstance knapsack_instance() {
  // 2 providers (cap 1.0 each), 4 users. Optimal: u0+u2 in p0/p1 split.
  AuctionInstance inst;
  inst.bids = {
      {0, Money::from_double(1.0), Money::from_double(0.9)},   // value .9
      {1, Money::from_double(0.8), Money::from_double(0.5)},   // value .4
      {2, Money::from_double(1.2), Money::from_double(0.6)},   // value .72
      {3, Money::from_double(0.5), Money::from_double(0.4)},   // value .2
  };
  inst.asks = {
      {0, kZeroMoney, Money::from_double(1.0)},
      {1, kZeroMoney, Money::from_double(1.0)},
  };
  return inst;
}

TEST(ExactSolver, SmallOptimum) {
  const AuctionInstance inst = knapsack_instance();
  const Assignment a = ExactSolver().solve_all(inst, 0);
  // Capacity 2.0 total, single-provider constraint per user.
  // Best: u0 (.9) + u2 (.72) + u1 (.4) = demands .9 + .6 + .5: u0 alone in
  // one provider (.9), u2+u1 = 1.1 > 1.0 → u2 with u3 (.6+.4=1.0, value .92)
  // and u0+?: u0 (.9) leaves .1. Options: {u0},{u2,u3} = .9+.92 = 1.82;
  // {u0},{u2,u1}=infeasible; {u1,u2}=1.1 no; {u0,u3}? .9+.4=1.3 no.
  // {u1},{u2,u3}: .4+.92=1.32. So optimum = 1.82.
  EXPECT_EQ(a.welfare, Money::from_double(1.82));
  EXPECT_GE(a.provider_of[0], 0);
  EXPECT_GE(a.provider_of[2], 0);
  EXPECT_GE(a.provider_of[3], 0);
  EXPECT_EQ(a.provider_of[1], -1);
}

TEST(ExactSolver, RespectsActiveMask) {
  const AuctionInstance inst = knapsack_instance();
  std::vector<bool> active(4, true);
  active[0] = false;
  const Assignment a = ExactSolver().solve(inst, active, 0);
  EXPECT_EQ(a.provider_of[0], -1);
  // Without u0: {u2,u3} (.92) + {u1} (.4) = 1.32.
  EXPECT_EQ(a.welfare, Money::from_double(1.32));
}

TEST(ExactSolver, EmptyInstance) {
  AuctionInstance inst;
  inst.asks = {{0, kZeroMoney, Money::from_units(1)}};
  const Assignment a = ExactSolver().solve_all(inst, 0);
  EXPECT_EQ(a.welfare, kZeroMoney);
}

TEST(ExactSolver, NeutralBidsIgnored) {
  AuctionInstance inst = knapsack_instance();
  inst.bids[2] = neutral_bid(2);
  const Assignment a = ExactSolver().solve_all(inst, 0);
  EXPECT_EQ(a.provider_of[2], -1);
}

TEST(ExactSolver, OversizedDemandUnplaced) {
  AuctionInstance inst;
  inst.bids = {{0, Money::from_units(1), Money::from_units(5)}};
  inst.asks = {{0, kZeroMoney, Money::from_units(1)}};
  const Assignment a = ExactSolver().solve_all(inst, 0);
  EXPECT_EQ(a.provider_of[0], -1);
  EXPECT_EQ(a.welfare, kZeroMoney);
}

TEST(ScaledDpSolver, MatchesExactOnEasyInstance) {
  const AuctionInstance inst = knapsack_instance();
  const Assignment exact = ExactSolver().solve_all(inst, 0);
  const Assignment dp = ScaledDpSolver(0.05).solve_all(inst, 7);
  // On this tiny instance the fine grid should find the optimum.
  EXPECT_EQ(dp.welfare, exact.welfare);
}

TEST(ScaledDpSolver, DeterministicGivenSeed) {
  crypto::Rng rng(3);
  const AuctionInstance inst = generate(standard_auction_workload(24, 4), rng);
  const ScaledDpSolver solver(0.2);
  const Assignment a = solver.solve_all(inst, 42);
  const Assignment b = solver.solve_all(inst, 42);
  EXPECT_EQ(a, b);
  const Assignment c = solver.solve_all(inst, 43);
  // Different seed may legitimately give a different (equal-or-close) packing;
  // what matters is that equal seeds are bit-identical (checked above). Touch
  // c to document the intent.
  EXPECT_GE(c.welfare, kZeroMoney);
}

TEST(ScaledDpSolver, FeasibleAssignments) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    crypto::Rng rng(seed);
    const AuctionInstance inst = generate(standard_auction_workload(30, 5), rng);
    const Assignment a = ScaledDpSolver(0.1).solve_all(inst, seed);
    // Rebuild the allocation and check capacities.
    Allocation x;
    for (std::size_t i = 0; i < a.provider_of.size(); ++i) {
      if (a.provider_of[i] >= 0) {
        x.add(static_cast<BidderId>(i), static_cast<NodeId>(a.provider_of[i]),
              inst.bids[i].demand);
      }
    }
    EXPECT_TRUE(is_feasible(inst, x)) << "seed " << seed;
    EXPECT_EQ(standard_auction_welfare(inst, x), a.welfare) << "seed " << seed;
  }
}

// (1−ε)-style quality: the DP stays within a modest factor of the exact
// optimum on small instances, improving as ε shrinks.
class WelfareApproximation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WelfareApproximation, RatioWithinBound) {
  crypto::Rng rng(GetParam());
  const AuctionInstance inst = generate(standard_auction_workload(14, 3), rng);
  const Money exact = ExactSolver().solve_all(inst, 0).welfare;
  if (exact.is_zero()) return;

  const Money coarse = ScaledDpSolver(0.5).solve_all(inst, GetParam()).welfare;
  const Money fine = ScaledDpSolver(0.05).solve_all(inst, GetParam()).welfare;

  const double coarse_ratio = coarse.to_double() / exact.to_double();
  const double fine_ratio = fine.to_double() / exact.to_double();
  EXPECT_GE(coarse_ratio, 0.5) << "coarse DP lost too much welfare";
  EXPECT_GE(fine_ratio, 0.75) << "fine DP lost too much welfare";
  EXPECT_LE(fine_ratio, 1.0 + 1e-9);
  EXPECT_LE(coarse_ratio, 1.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WelfareApproximation,
                         ::testing::Range<std::uint64_t>(1, 16));

}  // namespace
}  // namespace dauct::auction
