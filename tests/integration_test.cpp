// End-to-end tests of the distributed auctioneer: Definition 1 (correct
// simulation — the distributed outcome equals the trusted auctioneer's
// output), abort semantics, adversarial bidders, and the three runtimes'
// shared engine logic on the virtual-time runtime.
#include <gtest/gtest.h>

#include "adversary/resilience_harness.hpp"
#include "auction/double_auction.hpp"
#include "core/adapters.hpp"
#include "runtime/sim_runtime.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

using core::AuctioneerSpec;
using core::DistributedAuctioneer;
using runtime::SimRunConfig;
using runtime::SimRuntime;

DistributedAuctioneer make_double(std::size_t m, std::size_t k, std::size_t n,
                                  blocks::AgreementMode mode =
                                      blocks::AgreementMode::kValueBatched) {
  AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  spec.agreement_mode = mode;
  return DistributedAuctioneer(spec, std::make_shared<core::DoubleAuctionAdapter>());
}

DistributedAuctioneer make_standard(std::size_t m, std::size_t k, std::size_t n,
                                    bool exact = true, double epsilon = 0.25) {
  AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  auction::StandardAuctionParams params;
  params.use_exact = exact;
  params.epsilon = epsilon;
  return DistributedAuctioneer(
      spec, std::make_shared<core::StandardAuctionAdapter>(params));
}

TEST(Spec, RejectsInvalidConfigurations) {
  AuctioneerSpec spec;
  spec.m = 4;
  spec.k = 2;  // m ≤ 2k
  spec.num_bidders = 5;
  EXPECT_THROW(
      DistributedAuctioneer(spec, std::make_shared<core::DoubleAuctionAdapter>()),
      std::invalid_argument);
  spec.k = 1;
  spec.num_bidders = 0;
  EXPECT_THROW(
      DistributedAuctioneer(spec, std::make_shared<core::DoubleAuctionAdapter>()),
      std::invalid_argument);
  EXPECT_THROW(DistributedAuctioneer(spec, nullptr), std::invalid_argument);
}

TEST(DistributedDouble, MatchesCentralizedBitForBit) {
  const auto instance = testutil::make_instance(12, 4, 1);
  const auto auctioneer = make_double(4, 1, 12);
  SimRuntime rt(SimRunConfig{});
  const auto run = rt.run_distributed(auctioneer, instance);

  ASSERT_FALSE(run.stalled);
  ASSERT_TRUE(run.global_outcome.ok())
      << abort_reason_name(run.global_outcome.bottom().reason) << ": "
      << run.global_outcome.bottom().detail;

  // Definition 1: the distributed outcome is exactly A(b⃗) — the double
  // auction is deterministic, so bit-for-bit equality with the trusted run.
  const auto reference = auction::run_double_auction(instance);
  EXPECT_EQ(run.global_outcome.value(), reference);
  EXPECT_GT(run.makespan, 0);
  EXPECT_GT(run.traffic.messages, 0u);
}

TEST(DistributedDouble, AllProvidersEmitIdenticalPairs) {
  const auto instance = testutil::make_instance(20, 5, 2);
  const auto auctioneer = make_double(5, 2, 20);
  SimRuntime rt(SimRunConfig{});
  const auto run = rt.run_distributed(auctioneer, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  for (const auto& o : run.provider_outcomes) {
    ASSERT_TRUE(o.ok());
    EXPECT_EQ(o.value(), run.global_outcome.value());
  }
}

TEST(DistributedStandard, MatchesCentralizedGivenSameSeed) {
  const auto instance = testutil::make_instance(8, 3, 4, /*standard=*/true);
  const auto auctioneer = make_standard(3, 1, 8);
  SimRuntime rt(SimRunConfig{});
  const auto run = rt.run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.stalled);
  ASSERT_TRUE(run.global_outcome.ok())
      << abort_reason_name(run.global_outcome.bottom().reason);

  // The exact solver ignores the seed, so the distributed result must equal
  // the trusted execution regardless of the coin value.
  const auto reference = auctioneer.adapter().run_centralized(instance, 0);
  EXPECT_EQ(run.global_outcome.value(), reference);
}

TEST(DistributedStandard, ApproximateSolverStillAgrees) {
  // With the randomized (1−ε) solver, all replicas must still produce the
  // same bytes (shared coin seed): the run succeeds and all outputs match.
  const auto instance = testutil::make_instance(16, 5, 7, /*standard=*/true);
  const auto auctioneer = make_standard(5, 2, 16, /*exact=*/false, 0.5);
  SimRuntime rt(SimRunConfig{});
  const auto run = rt.run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.stalled);
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_TRUE(auction::is_feasible(instance, run.global_outcome.value().allocation));
}

TEST(DistributedStandard, ParallelGroupsProduceSameResultAsSequential) {
  // p = 1 (k = 2 → one group of ≥3 of 5... max_parallelism(5,2)=1) versus
  // p = 2 (k = 1, groups of 2+3): identical results, different schedules.
  const auto instance = testutil::make_instance(10, 5, 11, /*standard=*/true);
  SimRuntime rt(SimRunConfig{});
  const auto run_p1 = rt.run_distributed(make_standard(5, 2, 10), instance);
  const auto run_p2 = rt.run_distributed(make_standard(5, 1, 10), instance);
  ASSERT_TRUE(run_p1.global_outcome.ok());
  ASSERT_TRUE(run_p2.global_outcome.ok());
  EXPECT_EQ(run_p1.global_outcome.value(), run_p2.global_outcome.value());
}

TEST(DistributedDouble, AgreementModesAllWork) {
  const auto instance = testutil::make_instance(4, 3, 13);
  for (auto mode : {blocks::AgreementMode::kValueBatched,
                    blocks::AgreementMode::kBitStream,
                    blocks::AgreementMode::kPerBitMessages}) {
    SimRuntime rt(SimRunConfig{});
    const auto run = rt.run_distributed(make_double(3, 1, 4, mode), instance);
    ASSERT_TRUE(run.global_outcome.ok()) << blocks::agreement_mode_name(mode);
    EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance))
        << blocks::agreement_mode_name(mode);
  }
}

TEST(DistributedDouble, DeterministicGivenSeed) {
  const auto instance = testutil::make_instance(15, 4, 17);
  const auto auctioneer = make_double(4, 1, 15);
  SimRunConfig cfg;
  cfg.seed = 99;
  const auto a = SimRuntime(cfg).run_distributed(auctioneer, instance);
  const auto b = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(a.global_outcome.ok());
  ASSERT_TRUE(b.global_outcome.ok());
  EXPECT_EQ(a.global_outcome.value(), b.global_outcome.value());
  EXPECT_EQ(a.makespan, b.makespan);  // virtual time is deterministic too
  EXPECT_EQ(a.traffic.messages, b.traffic.messages);
}

TEST(Centralized, ProducesReferenceResult) {
  const auto instance = testutil::make_instance(25, 6, 19);
  core::CentralizedAuctioneer trusted(std::make_shared<core::DoubleAuctionAdapter>());
  SimRuntime rt(SimRunConfig{});
  const auto run = rt.run_centralized(trusted, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance));
  EXPECT_GT(run.makespan, 0);
}

TEST(Centralized, CheaperThanDistributedOnCommunicationBoundWorkload) {
  // Fig. 4's qualitative claim: the double auction is communication-bound,
  // so the distributed version pays visible coordination overhead.
  const auto instance = testutil::make_instance(100, 8, 23);
  SimRuntime rt(SimRunConfig{});
  const auto central =
      rt.run_centralized(core::CentralizedAuctioneer(
                             std::make_shared<core::DoubleAuctionAdapter>()),
                         instance);
  const auto distributed = rt.run_distributed(make_double(8, 1, 100), instance);
  ASSERT_TRUE(central.global_outcome.ok());
  ASSERT_TRUE(distributed.global_outcome.ok());
  EXPECT_LT(central.makespan, distributed.makespan);
}

// ---------------------------------------------------------------------------
// Adversarial bidders (§3.2 arbitrary bidder behaviour)
// ---------------------------------------------------------------------------

TEST(AdversarialBidders, EquivocatingBidderResolvedByMajority) {
  const auto instance = testutil::make_instance(10, 5, 29);
  auto auctioneer = make_double(5, 1, 10);
  SimRunConfig cfg;
  cfg.bidder_script[3] = adversary::equivocating_bidder(/*split=*/2);
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  // The protocol still terminates with a valid outcome (agreement), and
  // consistent bidders' bids are untouched: result equals A on a vector
  // where bidder 3 has the majority view (providers 2..4 → true bid... the
  // equivocator sent the true bid to providers < 2 and a doubled bid to the
  // rest, so the majority view is the doubled bid).
  ASSERT_TRUE(run.global_outcome.ok());
  auction::AuctionInstance majority_view = instance;
  majority_view.bids[3].unit_value =
      instance.bids[3].unit_value + instance.bids[3].unit_value;
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(majority_view));
}

TEST(AdversarialBidders, SilentBidderBecomesNeutral) {
  const auto instance = testutil::make_instance(8, 3, 31);
  auto auctioneer = make_double(3, 1, 8);
  SimRunConfig cfg;
  cfg.bidder_script[0] = adversary::silent_bidder();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  auction::AuctionInstance view = instance;
  view.bids[0] = auction::neutral_bid(0);
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(view));
  EXPECT_EQ(run.global_outcome.value().allocation.allocated_to(0), kZeroMoney);
}

TEST(AdversarialBidders, InvalidBidderBecomesNeutral) {
  const auto instance = testutil::make_instance(8, 3, 37);
  auto auctioneer = make_double(3, 1, 8);
  SimRunConfig cfg;
  cfg.bidder_script[2] = adversary::invalid_bidder();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  auction::AuctionInstance view = instance;
  view.bids[2] = auction::neutral_bid(2);
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(view));
}

TEST(AdversarialBidders, RandomBidderStillTerminates) {
  const auto instance = testutil::make_instance(12, 5, 41);
  auto auctioneer = make_double(5, 2, 12);
  SimRunConfig cfg;
  cfg.bidder_script[1] = adversary::random_bidder();
  cfg.bidder_script[4] = adversary::random_bidder();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  // Arbitrary per-provider random bids: agreement still holds (outcome valid
  // or — never, here — ⊥); all providers agree.
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_TRUE(auction::is_feasible(instance, run.global_outcome.value().allocation));
}

// ---------------------------------------------------------------------------
// Deviating providers: detection → ⊥ everywhere
// ---------------------------------------------------------------------------

TEST(DeviatingProviders, ForgedTaskResultAbortsEverywhere) {
  const auto instance = testutil::make_instance(8, 5, 43, /*standard=*/true);
  const auto auctioneer = make_standard(5, 1, 8);
  SimRunConfig cfg;
  cfg.deviations[1] = adversary::forge_task_results({1});
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  EXPECT_TRUE(run.global_outcome.is_bottom());
}

TEST(DeviatingProviders, CorruptCoinRevealAborts) {
  const auto instance = testutil::make_instance(8, 3, 47);
  const auto auctioneer = make_double(3, 1, 8);
  SimRunConfig cfg;
  cfg.deviations[2] = adversary::corrupt_coin_reveal();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  EXPECT_TRUE(run.global_outcome.is_bottom());
}

TEST(DeviatingProviders, VoteEquivocationAborts) {
  const auto instance = testutil::make_instance(6, 5, 53);
  const auto auctioneer = make_double(5, 2, 6);
  SimRunConfig cfg;
  cfg.deviations[0] = adversary::equivocate_votes();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  EXPECT_TRUE(run.global_outcome.is_bottom());
}

TEST(DeviatingProviders, ForgedOutputDigestAborts) {
  const auto instance = testutil::make_instance(6, 3, 59);
  const auto auctioneer = make_double(3, 1, 6);
  SimRunConfig cfg;
  cfg.deviations[1] = adversary::forge_output_digest({1});
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  EXPECT_TRUE(run.global_outcome.is_bottom());
}

TEST(DeviatingProviders, HonestStrategyIsTransparent) {
  const auto instance = testutil::make_instance(10, 4, 61);
  const auto auctioneer = make_double(4, 1, 10);
  SimRunConfig cfg;
  cfg.deviations[0] = adversary::honest_provider();
  const auto run = SimRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_TRUE(run.global_outcome.ok());
  EXPECT_EQ(run.global_outcome.value(), auction::run_double_auction(instance));
}

// ---------------------------------------------------------------------------
// Asynchrony: delayed nodes change nothing but timing
// ---------------------------------------------------------------------------

TEST(Asynchrony, SlowProviderDoesNotChangeOutcome) {
  const auto instance = testutil::make_instance(10, 4, 67);
  const auto auctioneer = make_double(4, 1, 10);

  SimRunConfig fast_cfg;
  const auto fast = SimRuntime(fast_cfg).run_distributed(auctioneer, instance);

  // Same protocol over links 20× slower: identical outcome, larger makespan.
  SimRunConfig cfg2;
  cfg2.latency.base = sim::from_millis(50);
  const auto slow = SimRuntime(cfg2).run_distributed(auctioneer, instance);

  ASSERT_TRUE(fast.global_outcome.ok());
  ASSERT_TRUE(slow.global_outcome.ok());
  EXPECT_EQ(fast.global_outcome.value(), slow.global_outcome.value());
  EXPECT_GT(slow.makespan, fast.makespan);
}

}  // namespace
}  // namespace dauct
