// Shared test helpers: a deterministic local network for driving protocol
// blocks without a full runtime, instance factories, golden end-to-end
// fingerprints (plus the auctioneer factory and the fingerprint assertion
// every equivalence suite shares), and file loading for the scenario-driven
// suites.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "auction/types.hpp"
#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "core/distributed_auctioneer.hpp"
#include "crypto/sha256.hpp"
#include "net/sim_transport.hpp"
#include "serde/auction_codec.hpp"
#include "sim/scheduler.hpp"

namespace dauct::testutil {

/// m providers wired through a zero-latency deterministic scheduler.
/// Install a handler per node, call start() on blocks, then run().
class LocalNet {
 public:
  explicit LocalNet(std::size_t m, std::uint64_t seed = 42,
                    sim::LatencyModel latency = sim::LatencyModel::zero())
      : scheduler_(m, latency, seed, sim::CostMode::kZero) {
    for (NodeId j = 0; j < m; ++j) {
      endpoints_.push_back(
          std::make_unique<net::SimEndpoint>(scheduler_, j, m, seed * 1000 + j));
    }
  }

  blocks::Endpoint& endpoint(NodeId j) { return *endpoints_.at(j); }
  sim::Scheduler& scheduler() { return scheduler_; }

  void set_handler(NodeId j, std::function<void(const net::Message&)> fn) {
    scheduler_.set_deliver(j, std::move(fn));
  }

  void run() { scheduler_.run(); }

 private:
  sim::Scheduler scheduler_;
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints_;
};

/// Small deterministic instance: n users, m providers, paper distributions.
inline auction::AuctionInstance make_instance(std::size_t n, std::size_t m,
                                              std::uint64_t seed,
                                              bool standard = false) {
  crypto::Rng rng(seed);
  const auto params = standard ? auction::standard_auction_workload(n, m)
                               : auction::double_auction_workload(n, m);
  return auction::generate(params, rng);
}

/// Read a whole file; std::nullopt if it cannot be opened (callers ASSERT —
/// a missing scenario file must fail the test, not silently parse as "").
inline std::optional<std::string> slurp_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// One pinned end-to-end run: fixed instance + seed and the full fingerprint
/// the run must reproduce byte-for-byte.
struct GoldenRun {
  std::size_t n, m, k;
  std::uint64_t seed;
  bool standard;
  const char* result_sha256;     ///< sha256(encode_result(outcome))
  std::uint64_t makespan;        ///< virtual ns
  std::uint64_t messages;        ///< traffic counter
  std::uint64_t bytes;           ///< traffic counter
};

// Fingerprints recorded from the pre-zero-copy implementation (deep-copied
// topic + payload per recipient, per-recipient digest cache, std::function
// message events) at fixed seeds. Pinned by fanout_test.cpp (the zero-copy
// spine must reproduce them) and by scenario_test.cpp (a run with a zero-rate
// fault plan installed must too — the fault hooks may not perturb anything).
inline constexpr GoldenRun kGoldenRuns[] = {
    {12, 3, 1, 99, true,
     "c63eaeb3c70dd96aac6ac3f9b808bcb870435de1fd74bc236cb5bd69877e2dc2",
     23823171, 69, 7716},
    {12, 5, 2, 7, false,
     "4533406cdccb450819482cdbdedaaf6b9634158650e8f6fcd5aa18d146fb5e5d",
     25214028, 185, 22520},
    {24, 4, 1, 11, false,
     "9657860815b5dab899fc31b8173b100706284ac018d0e92927d3dc4ba55c2ca5",
     25894473, 120, 20348},
    {48, 7, 3, 5, true,
     "fd60e91fbad69e57c8b0bae2f164d57b4a7fbfc9fce1902ae7be9a7182b60798",
     30011108, 357, 89726},
    {16, 3, 1, 123, false,
     "02a7a7c57c0a090f897ec945a86a6db95ddf4b4019cbc5018f4257bf2eeb524a",
     24210375, 69, 9402},
};

/// The auctioneer a golden run pins (epsilon 0.25 for standard-auction
/// entries — the value the fingerprints were recorded under).
inline core::DistributedAuctioneer make_golden_auctioneer(const GoldenRun& g) {
  core::AuctioneerSpec spec;
  spec.m = g.m;
  spec.k = g.k;
  spec.num_bidders = g.n;
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (g.standard) {
    auction::StandardAuctionParams p;
    p.epsilon = 0.25;
    adapter = std::make_shared<core::StandardAuctionAdapter>(p);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  return core::DistributedAuctioneer(spec, adapter);
}

/// sha256 hex of the canonical result encoding — the value the golden table
/// pins. "" for ⊥, so a failed run can never alias a pinned digest.
inline std::string outcome_digest(const auction::AuctionOutcome& outcome) {
  if (!outcome.ok()) return std::string();
  const Bytes enc = serde::encode_result(outcome.value());
  return crypto::digest_hex(crypto::sha256(BytesView(enc)));
}

/// The golden assertion every equivalence suite shares: the run must
/// reproduce g's ENTIRE fingerprint — result digest, virtual makespan, and
/// both traffic counters — byte-for-byte. Returns a failure naming the first
/// diverging field, so `EXPECT_TRUE(matches_golden_fingerprint(...))` reads
/// like the four EXPECT_EQs it replaces.
inline ::testing::AssertionResult matches_golden_fingerprint(
    const GoldenRun& g, const auction::AuctionOutcome& outcome,
    sim::SimTime makespan, const sim::TrafficStats& traffic) {
  const std::string digest = outcome_digest(outcome);
  if (digest != g.result_sha256) {
    return ::testing::AssertionFailure()
           << "result digest " << (digest.empty() ? "⊥" : digest) << " != golden "
           << g.result_sha256;
  }
  if (makespan != static_cast<sim::SimTime>(g.makespan)) {
    return ::testing::AssertionFailure()
           << "makespan " << makespan << " != golden " << g.makespan;
  }
  if (traffic.messages != g.messages) {
    return ::testing::AssertionFailure()
           << "traffic.messages " << traffic.messages << " != golden " << g.messages;
  }
  if (traffic.bytes != g.bytes) {
    return ::testing::AssertionFailure()
           << "traffic.bytes " << traffic.bytes << " != golden " << g.bytes;
  }
  return ::testing::AssertionSuccess();
}

}  // namespace dauct::testutil
