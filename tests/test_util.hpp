// Shared test helpers: a deterministic local network for driving protocol
// blocks without a full runtime, plus instance factories.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "auction/types.hpp"
#include "auction/workload.hpp"
#include "net/sim_transport.hpp"
#include "sim/scheduler.hpp"

namespace dauct::testutil {

/// m providers wired through a zero-latency deterministic scheduler.
/// Install a handler per node, call start() on blocks, then run().
class LocalNet {
 public:
  explicit LocalNet(std::size_t m, std::uint64_t seed = 42,
                    sim::LatencyModel latency = sim::LatencyModel::zero())
      : scheduler_(m, latency, seed, sim::CostMode::kZero) {
    for (NodeId j = 0; j < m; ++j) {
      endpoints_.push_back(
          std::make_unique<net::SimEndpoint>(scheduler_, j, m, seed * 1000 + j));
    }
  }

  blocks::Endpoint& endpoint(NodeId j) { return *endpoints_.at(j); }
  sim::Scheduler& scheduler() { return scheduler_; }

  void set_handler(NodeId j, std::function<void(const net::Message&)> fn) {
    scheduler_.set_deliver(j, std::move(fn));
  }

  void run() { scheduler_.run(); }

 private:
  sim::Scheduler scheduler_;
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints_;
};

/// Small deterministic instance: n users, m providers, paper distributions.
inline auction::AuctionInstance make_instance(std::size_t n, std::size_t m,
                                              std::uint64_t seed,
                                              bool standard = false) {
  crypto::Rng rng(seed);
  const auto params = standard ? auction::standard_auction_workload(n, m)
                               : auction::double_auction_workload(n, m);
  return auction::generate(params, rng);
}

}  // namespace dauct::testutil
