// Unit tests of the ProviderEngine: ask exchange, abort fan-out, message
// hygiene (stragglers, duplicates, malformed asks) — driving engines directly
// over a LocalNet.
#include <gtest/gtest.h>

#include "auction/double_auction.hpp"
#include "core/adapters.hpp"
#include "core/provider_engine.hpp"
#include "serde/codec.hpp"
#include "test_util.hpp"

namespace dauct::core {
namespace {

using testutil::LocalNet;

struct EngineSet {
  LocalNet net;
  DoubleAuctionAdapter adapter;
  std::vector<std::unique_ptr<ProviderEngine>> engines;
  auction::AuctionInstance instance;

  EngineSet(std::size_t m, std::size_t k, std::size_t n, std::uint64_t seed = 3)
      : net(m, seed), instance(testutil::make_instance(n, m, seed)) {
    EngineConfig cfg;
    cfg.m = m;
    cfg.k = k;
    cfg.num_bidders = n;
    for (NodeId j = 0; j < m; ++j) {
      engines.push_back(std::make_unique<ProviderEngine>(net.endpoint(j), cfg,
                                                         adapter, instance.asks[j]));
      auto* engine = engines.back().get();
      net.set_handler(j, [engine](const net::Message& msg) { engine->on_message(msg); });
    }
  }

  void start_all() {
    for (auto& e : engines) e->start(instance.bids);
  }
};

TEST(ProviderEngine, HappyPathMatchesReference) {
  EngineSet set(4, 1, 8);
  set.start_all();
  set.net.run();
  const auto reference = auction::run_double_auction(set.instance);
  for (const auto& e : set.engines) {
    ASSERT_TRUE(e->done());
    ASSERT_TRUE(e->outcome()->ok());
    EXPECT_EQ(e->outcome()->value(), reference);
  }
}

TEST(ProviderEngine, AgreedBidsExposed) {
  EngineSet set(3, 1, 5);
  set.start_all();
  set.net.run();
  for (const auto& e : set.engines) {
    ASSERT_TRUE(e->agreed_bids().has_value());
    EXPECT_EQ(*e->agreed_bids(), set.instance.bids);
  }
}

TEST(ProviderEngine, RejectsConfigWithTooSmallM) {
  LocalNet net(2);
  DoubleAuctionAdapter adapter;
  EngineConfig cfg;
  cfg.m = 2;
  cfg.k = 1;  // m ≤ 2k
  cfg.num_bidders = 3;
  EXPECT_THROW(ProviderEngine(net.endpoint(0), cfg, adapter, auction::Ask{0, {}, {}}),
               std::invalid_argument);
}

TEST(ProviderEngine, MalformedAskAborts) {
  EngineSet set(3, 1, 5);
  set.start_all();
  // Inject a garbage ask "from provider 1" — the engine must abort, and the
  // abort must cascade.
  set.net.endpoint(1).send(0, "ask/x", Bytes{1, 2, 3});
  set.net.run();
  // Provider 0 received two asks from provider 1 (the real one + garbage) or
  // the garbage first — either way it aborts; the cascade reaches everyone.
  int bottoms = 0;
  for (const auto& e : set.engines) {
    if (e->done() && e->outcome()->is_bottom()) ++bottoms;
  }
  EXPECT_GE(bottoms, 1);
  ASSERT_TRUE(set.engines[0]->done());
  EXPECT_TRUE(set.engines[0]->outcome()->is_bottom());
}

TEST(ProviderEngine, WrongProviderIdInAskAborts) {
  EngineSet set(3, 1, 5);
  set.start_all();
  // Provider 2 claims to be provider 0 in its ask payload.
  serde::Writer w;
  w.u32(0);  // forged id
  w.money(Money::from_double(0.5));
  w.money(Money::from_units(1));
  set.net.endpoint(2).send(0, "ask/x", w.take());
  set.net.run();
  ASSERT_TRUE(set.engines[0]->done());
  EXPECT_TRUE(set.engines[0]->outcome()->is_bottom());
}

TEST(ProviderEngine, AbortMessageCascades) {
  EngineSet set(4, 1, 6);
  set.start_all();
  // An explicit abort notification from provider 3.
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(AbortReason::kProtocolViolation));
  for (NodeId j = 0; j < 4; ++j) set.net.endpoint(3).send(j, "abort", w.buffer());
  set.net.run();
  for (const auto& e : set.engines) {
    ASSERT_TRUE(e->done());
    EXPECT_TRUE(e->outcome()->is_bottom());
  }
}

TEST(ProviderEngine, StragglersAfterCompletionIgnored) {
  EngineSet set(3, 1, 4);
  set.start_all();
  set.net.run();
  ASSERT_TRUE(set.engines[0]->done());
  const auto outcome_before = *set.engines[0]->outcome();
  ASSERT_TRUE(outcome_before.ok());

  // Replay a protocol message and send fresh garbage: state must not change.
  set.engines[0]->on_message(net::Message{1, 0, "alloc/out/digest", Bytes(32, 0)});
  set.engines[0]->on_message(net::Message{1, 0, "no/such/topic", Bytes{1}});
  ASSERT_TRUE(set.engines[0]->done());
  EXPECT_EQ(set.engines[0]->outcome()->ok(), outcome_before.ok());
  EXPECT_EQ(set.engines[0]->outcome()->value(), outcome_before.value());
}

TEST(ProviderEngine, LateAbortDoesNotOverrideResult) {
  EngineSet set(3, 1, 4);
  set.start_all();
  set.net.run();
  ASSERT_TRUE(set.engines[0]->done());
  ASSERT_TRUE(set.engines[0]->outcome()->ok());
  // An abort arriving after the outcome is decided must not flip it (the
  // provider already reported; flipping would violate output monotonicity).
  set.engines[0]->on_message(net::Message{2, 0, "abort", Bytes{0}});
  EXPECT_TRUE(set.engines[0]->outcome()->ok());
}

TEST(ProviderEngine, ShortBidVectorHandled) {
  // A provider that received bids for only some bidders starts with a short
  // vector; agreement must still produce the full-length vector (majority
  // carries the missing slots).
  EngineSet set(3, 1, 6);
  std::vector<auction::Bid> partial(set.instance.bids.begin(),
                                    set.instance.bids.begin() + 2);
  set.engines[0]->start(partial);
  set.engines[1]->start(set.instance.bids);
  set.engines[2]->start(set.instance.bids);
  set.net.run();
  for (const auto& e : set.engines) {
    ASSERT_TRUE(e->done());
    ASSERT_TRUE(e->outcome()->ok());
    ASSERT_TRUE(e->agreed_bids().has_value());
    // Slots 2..5: the two complete providers outvote the short one.
    EXPECT_EQ(*e->agreed_bids(), set.instance.bids);
  }
}

}  // namespace
}  // namespace dauct::core
