#include <gtest/gtest.h>

#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"
#include "sim/scheduler.hpp"

namespace dauct::sim {
namespace {

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, EventsMayScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.schedule(1, [&] {
    ++fired;
    q.schedule(2, [&] { ++fired; });
  });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(fired, 2);
}

TEST(Latency, ZeroModelIsZero) {
  crypto::Rng rng(1);
  EXPECT_EQ(LatencyModel::zero().sample(1000, rng), 0);
}

TEST(Latency, ScalesWithBytes) {
  crypto::Rng rng(1);
  LatencyModel model;
  model.jitter = 0.0;
  const SimTime small = model.sample(10, rng);
  const SimTime big = model.sample(10'000, rng);
  EXPECT_GT(big, small);
  EXPECT_EQ(big - small, model.per_byte * 9'990);
}

TEST(Latency, JitterBounded) {
  crypto::Rng rng(3);
  LatencyModel model;
  model.jitter = 0.2;
  const SimTime nominal = model.base + model.per_byte * 100;
  for (int i = 0; i < 200; ++i) {
    const SimTime s = model.sample(100, rng);
    EXPECT_GE(s, static_cast<SimTime>(nominal * 0.79));
    EXPECT_LE(s, static_cast<SimTime>(nominal * 1.21));
  }
}

TEST(Latency, CommunityModelMilliseconds) {
  // The calibration regime: a small message takes single-digit milliseconds.
  crypto::Rng rng(5);
  const SimTime s = LatencyModel::community().sample(100, rng);
  EXPECT_GT(s, from_micros(1'000));
  EXPECT_LT(s, from_millis(10));
}

TEST(Scheduler, DeliversBetweenNodes) {
  Scheduler sched(2, LatencyModel::zero(), 1);
  std::vector<std::string> log;
  sched.set_deliver(0, [&](const net::Message& m) {
    log.push_back("n0:" + m.topic.str());
    sched.send(net::Message{0, 1, "pong", {}});
  });
  sched.set_deliver(1, [&](const net::Message& m) { log.push_back("n1:" + m.topic.str()); });
  sched.inject(0, net::Message{1, 0, "ping", {}});
  sched.run();
  EXPECT_EQ(log, (std::vector<std::string>{"n0:ping", "n1:pong"}));
  EXPECT_EQ(sched.traffic().messages, 2u);
}

TEST(Scheduler, ChargeAdvancesVirtualClock) {
  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.set_deliver(0, [&](const net::Message&) {
    sched.charge(from_millis(5));
    sched.send(net::Message{0, 1, "done", {}});
  });
  SimTime received_at = -1;
  sched.set_deliver(1, [&](const net::Message&) { received_at = sched.now(); });
  sched.inject(0, net::Message{1, 0, "work", {}});
  sched.run();
  EXPECT_EQ(sched.clock(0), from_millis(5));
  EXPECT_EQ(received_at, from_millis(5));  // sent at handler end time
}

TEST(Scheduler, SequentialProcessingPerNode) {
  // Two messages delivered at t=0 to the same node with 1 ms of charged work
  // each: the second handler starts after the first finishes.
  Scheduler sched(1, LatencyModel::zero(), 1);
  std::vector<SimTime> clocks;
  sched.set_deliver(0, [&](const net::Message&) {
    sched.charge(from_millis(1));
    clocks.push_back(sched.clock(0));
  });
  sched.inject(0, net::Message{kNoNode, 0, "a", {}});
  sched.inject(0, net::Message{kNoNode, 0, "b", {}});
  sched.run();
  ASSERT_EQ(clocks.size(), 2u);
  // clock reads *before* the charge is applied (charge applies at end).
  EXPECT_EQ(sched.clock(0), from_millis(2));
}

TEST(Scheduler, NodeDelayInjection) {
  Scheduler base(2, LatencyModel::zero(), 1);
  Scheduler slow(2, LatencyModel::zero(), 1);
  slow.set_node_delay(1, from_millis(10));

  SimTime base_arrival = -1, slow_arrival = -1;
  base.set_deliver(1, [&](const net::Message&) { base_arrival = base.now(); });
  slow.set_deliver(1, [&](const net::Message&) { slow_arrival = slow.now(); });
  base.inject(0, net::Message{kNoNode, 1, "x", {}});
  slow.inject(0, net::Message{kNoNode, 1, "x", {}});
  base.run();
  slow.run();
  EXPECT_EQ(slow_arrival - base_arrival, from_millis(10));
}

TEST(Scheduler, RunSomeBudget) {
  Scheduler sched(1, LatencyModel::zero(), 1);
  int count = 0;
  sched.set_deliver(0, [&](const net::Message&) {
    if (++count < 100) sched.send(net::Message{0, 0, "loop", {}});
  });
  sched.inject(0, net::Message{kNoNode, 0, "start", {}});
  const bool more = sched.run_some(10);
  EXPECT_TRUE(more);
  EXPECT_EQ(count, 10);
}

TEST(Scheduler, DeterministicWithSeed) {
  auto run_once = [](std::uint64_t seed) {
    Scheduler sched(3, LatencyModel::community(), seed);
    std::vector<SimTime> arrivals;
    for (NodeId j = 0; j < 3; ++j) {
      sched.set_deliver(j, [&](const net::Message&) { arrivals.push_back(sched.now()); });
    }
    for (int i = 0; i < 10; ++i) {
      sched.inject(0, net::Message{kNoNode, static_cast<NodeId>(i % 3), "m",
                                   Bytes(i * 10)});
    }
    sched.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // jitter differs
}

// ---------------------------------------------------------------------------
// Fault injection at the scheduler level. Scenario-level coverage (plans via
// SimRunConfig, .scn files, determinism pins) lives in scenario_test.cpp.
// ---------------------------------------------------------------------------

TEST(SchedulerFaults, DeterministicDropMatchesRule) {
  // drop = 1 on the 0→1 direction only (symmetric = false).
  FaultPlan plan;
  LinkFault rule;
  rule.from = 0;
  rule.to = 1;
  rule.symmetric = false;
  rule.drop = 1.0;
  plan.links.push_back(rule);

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  std::vector<std::string> log;
  sched.set_deliver(0, [&](const net::Message& m) { log.push_back("n0:" + m.topic.str()); });
  sched.set_deliver(1, [&](const net::Message& m) { log.push_back("n1:" + m.topic.str()); });
  sched.inject(0, net::Message{0, 1, "lost", {}});
  sched.inject(0, net::Message{1, 0, "kept", {}});  // reverse direction passes
  sched.run();
  EXPECT_EQ(log, (std::vector<std::string>{"n0:kept"}));
  ASSERT_NE(sched.fault_stats(), nullptr);
  EXPECT_EQ(sched.fault_stats()->link_dropped, 1u);
  // Traffic counts what was *sent*; the drop happened on the wire.
  EXPECT_EQ(sched.traffic().messages, 2u);
}

TEST(SchedulerFaults, DuplicateDeliversTwice) {
  FaultPlan plan;
  LinkFault rule;
  rule.duplicate = 1.0;
  plan.links.push_back(rule);

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  int deliveries = 0;
  sched.set_deliver(1, [&](const net::Message&) { ++deliveries; });
  sched.inject(0, net::Message{0, 1, "echoed", {}});
  sched.run();
  EXPECT_EQ(deliveries, 2);
  EXPECT_EQ(sched.fault_stats()->duplicated, 1u);
}

TEST(SchedulerFaults, ExtraDelayShiftsDelivery) {
  FaultPlan plan;
  LinkFault rule;
  rule.extra_delay = from_millis(7);
  plan.links.push_back(rule);

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  SimTime at = -1;
  sched.set_deliver(1, [&](const net::Message&) { at = sched.now(); });
  sched.inject(from_millis(1), net::Message{0, 1, "late", {}});
  sched.run();
  EXPECT_EQ(at, from_millis(8));
  EXPECT_EQ(sched.fault_stats()->delayed, 1u);
}

TEST(SchedulerFaults, LinkCutIsSymmetricAndWindowed) {
  FaultPlan plan;
  plan.cuts.push_back(LinkCut{0, 1, from_millis(10), from_millis(20)});

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  int delivered = 0;
  sched.set_deliver(0, [&](const net::Message&) { ++delivered; });
  sched.set_deliver(1, [&](const net::Message&) { ++delivered; });
  sched.inject(from_millis(5), net::Message{0, 1, "before", {}});   // passes
  sched.inject(from_millis(15), net::Message{0, 1, "during", {}});  // cut
  sched.inject(from_millis(15), net::Message{1, 0, "reverse", {}});  // cut too
  sched.inject(from_millis(25), net::Message{0, 1, "after", {}});   // healed
  sched.run();
  EXPECT_EQ(delivered, 2);
  EXPECT_EQ(sched.fault_stats()->cut_dropped, 2u);
}

TEST(SchedulerFaults, PartitionDropsCrossTrafficOnly) {
  FaultPlan plan;
  plan.partitions.push_back(Partition{{0, 1}, 0, kSimForever});

  Scheduler sched(3, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  std::vector<std::string> log;
  for (NodeId j = 0; j < 3; ++j) {
    sched.set_deliver(j, [&log, j](const net::Message& m) {
      std::string entry = "n";
      entry += std::to_string(j);
      entry += ":";
      entry += m.topic.str();
      log.push_back(std::move(entry));
    });
  }
  sched.inject(0, net::Message{0, 1, "inside", {}});   // both in group
  sched.inject(0, net::Message{0, 2, "cross", {}});    // dropped
  sched.inject(0, net::Message{2, 1, "cross2", {}});   // dropped
  sched.run();
  EXPECT_EQ(log, (std::vector<std::string>{"n1:inside"}));
  EXPECT_EQ(sched.fault_stats()->partition_dropped, 2u);
}

TEST(SchedulerFaults, CrashedNodeNeitherReceivesNorSends) {
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, from_millis(10)});

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  std::vector<std::string> log;
  sched.set_deliver(0, [&](const net::Message& m) { log.push_back("n0:" + m.topic.str()); });
  sched.set_deliver(1, [&](const net::Message& m) {
    log.push_back("n1:" + m.topic.str());
    sched.send(net::Message{1, 0, "reply/" + m.topic.str(), {}});
  });
  sched.inject(from_millis(5), net::Message{0, 1, "alive", {}});
  // Arrives at 12 ms — after the crash: dropped at delivery, no reply.
  sched.inject(from_millis(12), net::Message{0, 1, "dead", {}});
  sched.run();
  EXPECT_EQ(log, (std::vector<std::string>{"n1:alive", "n0:reply/alive"}));
  EXPECT_EQ(sched.fault_stats()->crash_dropped, 1u);
}

TEST(SchedulerFaults, CrashRecoverRestoresDelivery) {
  FaultPlan plan;
  plan.crashes.push_back(CrashEvent{1, from_millis(10), from_millis(20)});

  Scheduler sched(2, LatencyModel::zero(), 1);
  sched.install_fault_plan(plan);
  std::vector<SimTime> seen;
  sched.set_deliver(1, [&](const net::Message&) { seen.push_back(sched.now()); });
  sched.inject(from_millis(15), net::Message{0, 1, "lost", {}});
  sched.inject(from_millis(21), net::Message{0, 1, "kept", {}});
  sched.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{from_millis(21)}));
  EXPECT_EQ(sched.fault_stats()->crash_dropped, 1u);
}

TEST(SchedulerFaults, NoPlanMeansNoStats) {
  Scheduler sched(2, LatencyModel::zero(), 1);
  EXPECT_EQ(sched.fault_stats(), nullptr);
}

TEST(FormatTime, Millis) { EXPECT_EQ(format_time(from_millis(12) + 345'000), "12.345ms"); }

}  // namespace
}  // namespace dauct::sim
