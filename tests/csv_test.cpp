#include <gtest/gtest.h>

#include <algorithm>

#include "auction/double_auction.hpp"
#include "serde/csv.hpp"
#include "test_util.hpp"

namespace dauct::serde {
namespace {

TEST(Csv, SplitBasics) {
  EXPECT_EQ(csv_split("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(csv_split(""), (std::vector<std::string>{""}));
  EXPECT_EQ(csv_split("x,"), (std::vector<std::string>{"x", ""}));
  EXPECT_EQ(csv_split("1,2\r"), (std::vector<std::string>{"1", "2"}));
}

TEST(Csv, ParseMoneyAcceptsDecimals) {
  EXPECT_EQ(parse_money("1.25"), Money::from_double(1.25));
  EXPECT_EQ(parse_money("0.000001"), Money::from_micros(1));
  EXPECT_EQ(parse_money("42"), Money::from_units(42));
  EXPECT_EQ(parse_money("-3.5"), Money::from_double(-3.5));
  EXPECT_EQ(parse_money("1.2345678"), Money::from_micros(1'234'567));  // truncates
}

TEST(Csv, ParseMoneyRejectsGarbage) {
  EXPECT_FALSE(parse_money(""));
  EXPECT_FALSE(parse_money("abc"));
  EXPECT_FALSE(parse_money("1.2.3"));
  EXPECT_FALSE(parse_money("1e5"));
  EXPECT_FALSE(parse_money("-"));
  EXPECT_FALSE(parse_money("12,5"));
  EXPECT_FALSE(parse_money("99999999999999999999"));  // overflow
}

TEST(Csv, BidsRoundTrip) {
  std::vector<auction::Bid> bids = {
      {0, Money::from_double(1.25), Money::from_double(0.5)},
      {1, Money::from_double(0.75), Money::from_units(1)},
  };
  const auto parsed = parse_bids_csv(bids_to_csv(bids));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(*parsed.value, bids);
}

TEST(Csv, AsksRoundTrip) {
  std::vector<auction::Ask> asks = {
      {0, Money::from_double(0.2), Money::from_units(3)},
      {7, Money::from_double(0.9), Money::from_double(1.5)},
  };
  const auto parsed = parse_asks_csv(asks_to_csv(asks));
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  EXPECT_EQ(*parsed.value, asks);
}

TEST(Csv, RejectsWrongHeader) {
  EXPECT_FALSE(parse_bids_csv("id,value,demand\n1,1,1\n").ok());
  EXPECT_FALSE(parse_asks_csv("bidder,unit_value,demand\n1,1,1\n").ok());
}

TEST(Csv, RejectsMalformedRows) {
  const auto r1 = parse_bids_csv("bidder,unit_value,demand\n1,1.0\n");
  EXPECT_FALSE(r1.ok());
  EXPECT_NE(r1.error.find("line 2"), std::string::npos);
  EXPECT_FALSE(parse_bids_csv("bidder,unit_value,demand\nx,1.0,0.5\n").ok());
  EXPECT_FALSE(parse_bids_csv("bidder,unit_value,demand\n1,cat,0.5\n").ok());
}

TEST(Csv, EmptyFileRejected) {
  EXPECT_FALSE(parse_bids_csv("").ok());
  EXPECT_FALSE(parse_asks_csv("\n\n").ok());
}

TEST(Csv, HeaderOnlyIsEmptyMarket) {
  const auto parsed = parse_bids_csv("bidder,unit_value,demand\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value->empty());
}

TEST(Csv, ResultExport) {
  const auto instance = testutil::make_instance(6, 3, 5);
  const auto result = auction::run_double_auction(instance);
  const std::string csv = result_to_csv(instance, result);
  EXPECT_NE(csv.find("bidder,provider,amount,payment"), std::string::npos);
  EXPECT_NE(csv.find("provider,revenue"), std::string::npos);
  // One row per allocation entry + per provider + two headers.
  const auto lines = static_cast<std::size_t>(
      std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, result.allocation.entries().size() + instance.asks.size() + 2);
}

TEST(Csv, WindowsLineEndingsAccepted) {
  const auto parsed =
      parse_bids_csv("bidder,unit_value,demand\r\n0,1.0,0.5\r\n");
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  ASSERT_EQ(parsed.value->size(), 1u);
  EXPECT_EQ((*parsed.value)[0].unit_value, Money::from_units(1));
}

}  // namespace
}  // namespace dauct::serde
