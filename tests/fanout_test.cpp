// Zero-copy fan-out tests: one broadcast must allocate its payload (and
// digest) once, with every delivered copy aliasing the same immutable buffer
// — plus the pre-refactor equivalence pins (PR 2 style): fixed-seed runs must
// remain byte-identical to the implementation that deep-copied per recipient.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "blocks/block.hpp"
#include "core/adapters.hpp"
#include "crypto/sha256.hpp"
#include "net/message.hpp"
#include "net/topic.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

// ---------------------------------------------------------------------------
// SharedBytes semantics
// ---------------------------------------------------------------------------

TEST(SharedBytes, AliasesAndValueEquality) {
  SharedBytes a(Bytes{1, 2, 3});
  SharedBytes b = a;  // alias
  SharedBytes c(Bytes{1, 2, 3});  // equal bytes, distinct buffer
  EXPECT_TRUE(a.same_buffer(b));
  EXPECT_FALSE(a.same_buffer(c));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, (Bytes{1, 2, 3}));
  EXPECT_NE(a, (Bytes{1, 2, 4}));
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytes, EmptyBufferAllocatesNothing) {
  SharedBytes empty;
  SharedBytes from_empty_bytes((Bytes{}));
  EXPECT_TRUE(empty.same_buffer(from_empty_bytes));  // both rep-less
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.use_count(), 0);
  EXPECT_EQ(empty, from_empty_bytes);
}

TEST(SharedBytes, SenderSideMutationAfterSharingIsUnobservable) {
  Bytes original{10, 20, 30};
  const SharedBytes shared = SharedBytes::copy(BytesView(original));
  original[0] = 99;  // the sender keeps writing into its own buffer
  EXPECT_EQ(shared, (Bytes{10, 20, 30}));
}

TEST(SharedBytes, DigestSlotComputesOnceAcrossAliases) {
  static std::atomic<int> calls{0};
  const SharedBytes::DigestFn counting_fn = [](const std::uint8_t* data,
                                               std::size_t size,
                                               std::uint8_t out[32]) {
    ++calls;
    std::memset(out, 0, 32);
    if (size > 0) out[0] = data[0];
  };
  calls = 0;
  SharedBytes a(Bytes{7, 8, 9});
  SharedBytes b = a;
  const auto& d1 = a.shared_digest(counting_fn);
  const auto& d2 = b.shared_digest(counting_fn);
  EXPECT_EQ(calls.load(), 1);      // one buffer, one computation
  EXPECT_EQ(&d1, &d2);             // the very same slot
  EXPECT_EQ(d1[0], 7);
}

// ---------------------------------------------------------------------------
// Endpoint::broadcast fan-out
// ---------------------------------------------------------------------------

/// Endpoint that records every sent message verbatim.
class CollectingEndpoint final : public blocks::Endpoint {
 public:
  CollectingEndpoint(NodeId self, std::size_t m) : self_(self), m_(m), rng_(1) {}

  NodeId self() const override { return self_; }
  std::size_t num_providers() const override { return m_; }
  crypto::Rng& rng() override { return rng_; }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    sent.push_back(net::Message{self_, to, topic, std::move(payload)});
  }

  std::vector<net::Message> sent;

 private:
  NodeId self_;
  std::size_t m_;
  crypto::Rng rng_;
};

TEST(Fanout, BroadcastPayloadSharedAcrossAllRecipients) {
  const std::size_t m = 8;
  CollectingEndpoint ep(0, m);
  const SharedBytes payload(Bytes(1024, 0x5a));
  ep.broadcast("dt/val", payload);

  ASSERT_EQ(ep.sent.size(), m);
  for (NodeId j = 0; j < m; ++j) {
    EXPECT_EQ(ep.sent[j].to, j);
    EXPECT_TRUE(ep.sent[j].payload.same_buffer(payload))
        << "recipient " << j << " received a deep copy";
    EXPECT_EQ(ep.sent[j].topic, ep.sent[0].topic);
  }
  // m in-flight aliases + the local handle.
  EXPECT_EQ(payload.use_count(), static_cast<long>(m) + 1);
}

TEST(Fanout, DigestComputedExactlyOncePerBroadcast) {
  static std::atomic<int> hash_calls{0};
  const SharedBytes::DigestFn counting_sha = [](const std::uint8_t* data,
                                                std::size_t size,
                                                std::uint8_t out[32]) {
    ++hash_calls;
    const crypto::Digest d = crypto::sha256(BytesView(data, size));
    std::memcpy(out, d.data(), d.size());
  };

  const std::size_t m = 16;
  CollectingEndpoint ep(3, m);
  ep.broadcast("ba/vb/v", SharedBytes(Bytes(4096, 0x11)));

  hash_calls = 0;
  crypto::Digest reference{};
  for (const net::Message& msg : ep.sent) {
    // Every recipient asks for the digest, as the cross-validating blocks do.
    const auto& d = msg.payload.shared_digest(counting_sha);
    if (msg.to == 0) {
      std::memcpy(reference.data(), d.data(), d.size());
    } else {
      EXPECT_TRUE(std::memcmp(reference.data(), d.data(), d.size()) == 0);
    }
  }
  EXPECT_EQ(hash_calls.load(), 1) << "each recipient re-hashed the payload";
}

TEST(Fanout, SimSchedulerDeliversAliasesOfOneBroadcast) {
  const std::size_t m = 6;
  testutil::LocalNet net(m);
  std::vector<net::Message> delivered;
  for (NodeId j = 0; j < m; ++j) {
    net.set_handler(j, [&](const net::Message& msg) { delivered.push_back(msg); });
  }
  net.endpoint(1).broadcast("coin/commit", SharedBytes(Bytes(256, 0xab)));
  net.run();

  ASSERT_EQ(delivered.size(), m);
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    EXPECT_TRUE(delivered[i].payload.same_buffer(delivered[0].payload));
    EXPECT_EQ(delivered[i].topic, delivered[0].topic);
  }
}

// ---------------------------------------------------------------------------
// Topic interning
// ---------------------------------------------------------------------------

TEST(Topic, InternedEqualityAndStrings) {
  const net::Topic a("ba/vb/v");
  const net::Topic b(std::string("ba/vb/v"));
  const net::Topic c("ba/vb/e");
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.str(), "ba/vb/v");
  EXPECT_EQ(a.size(), 7u);
  // Comparing against a literal interns and compares ids.
  EXPECT_EQ(a, "ba/vb/v");
  EXPECT_NE(a, "ba/vb/x");
  // The default topic is the interned empty string.
  EXPECT_EQ(net::Topic{}, net::Topic(""));
  EXPECT_TRUE(net::Topic{}.empty());
}

// ---------------------------------------------------------------------------
// TCP framing over shared payloads
// ---------------------------------------------------------------------------

TEST(Fanout, TcpFrameRoundTripOverSharedPayload) {
  const SharedBytes payload(Bytes{9, 8, 7, 6, 5});
  net::Message a{1, 2, "alloc/dt/4/val", payload};
  net::Message b{1, 3, "alloc/dt/4/val", payload};  // second alias, other peer
  ASSERT_TRUE(a.payload.same_buffer(b.payload));

  const Bytes frame_a = net::encode_frame(a);
  const Bytes frame_b = net::encode_frame(b);
  EXPECT_NE(frame_a, frame_b);  // differ in `to` only

  const auto decoded = net::decode_frame(BytesView(frame_a));
  ASSERT_TRUE(decoded);
  EXPECT_EQ(decoded->consumed, frame_a.size());
  EXPECT_EQ(decoded->message.from, 1u);
  EXPECT_EQ(decoded->message.to, 2u);
  EXPECT_EQ(decoded->message.topic, a.topic);
  EXPECT_EQ(decoded->message.payload, payload);
  // The decoded payload owns its bytes (fresh buffer, not a view into the
  // frame) and its digest agrees with the sender's shared slot.
  EXPECT_FALSE(decoded->message.payload.same_buffer(payload));
  EXPECT_EQ(decoded->message.payload_digest(), a.payload_digest());
}

// ---------------------------------------------------------------------------
// Pre-refactor equivalence pins
// ---------------------------------------------------------------------------

// The golden table lives in test_util.hpp (testutil::kGoldenRuns): the
// zero-copy spine must reproduce every run byte-for-byte — same outcome
// bytes, same virtual makespan, same traffic — and scenario_test.cpp holds
// the fault-injection hooks to the same standard.

TEST(FanoutEquivalence, FixedSeedRunsMatchPreRefactorFingerprints) {
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    const core::DistributedAuctioneer auctioneer =
        testutil::make_golden_auctioneer(g);
    const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);

    runtime::SimRunConfig cfg;
    cfg.seed = g.seed;
    const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);

    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " k=" + std::to_string(g.k) + " seed=" + std::to_string(g.seed));
    EXPECT_TRUE(testutil::matches_golden_fingerprint(g, run.global_outcome,
                                                     run.makespan, run.traffic));
  }
}

// The shared assertion must actually discriminate: a fingerprint perturbed
// in ANY field (digest, makespan, either traffic counter) is rejected, and
// a ⊥ outcome never aliases a pinned digest. Guards the helper itself —
// a fingerprint check that accepts everything pins nothing.
TEST(FanoutEquivalence, GoldenFingerprintHelperRejectsPerturbedFingerprints) {
  const testutil::GoldenRun& g = testutil::kGoldenRuns[1];
  const core::DistributedAuctioneer auctioneer =
      testutil::make_golden_auctioneer(g);
  const auto inst = testutil::make_instance(g.n, g.m, g.seed, g.standard);
  runtime::SimRunConfig cfg;
  cfg.seed = g.seed;
  const auto run = runtime::SimRuntime(cfg).run_distributed(auctioneer, inst);
  ASSERT_TRUE(testutil::matches_golden_fingerprint(g, run.global_outcome,
                                                   run.makespan, run.traffic));

  testutil::GoldenRun bad = g;
  bad.result_sha256 = "0000000000000000000000000000000000000000000000000000000000000000";
  EXPECT_FALSE(testutil::matches_golden_fingerprint(bad, run.global_outcome,
                                                    run.makespan, run.traffic));
  bad = g;
  bad.makespan += 1;
  EXPECT_FALSE(testutil::matches_golden_fingerprint(bad, run.global_outcome,
                                                    run.makespan, run.traffic));
  bad = g;
  bad.messages += 1;
  EXPECT_FALSE(testutil::matches_golden_fingerprint(bad, run.global_outcome,
                                                    run.makespan, run.traffic));
  bad = g;
  bad.bytes -= 1;
  EXPECT_FALSE(testutil::matches_golden_fingerprint(bad, run.global_outcome,
                                                    run.makespan, run.traffic));
  // ⊥ never matches: its digest is "" by construction.
  const auction::AuctionOutcome bottom{Bottom{AbortReason::kTimeout, "test"}};
  EXPECT_FALSE(testutil::matches_golden_fingerprint(g, bottom, run.makespan,
                                                    run.traffic));
}

}  // namespace
}  // namespace dauct
