#include <gtest/gtest.h>

#include <numeric>

#include "core/adapters.hpp"
#include "core/task_graph.hpp"

namespace dauct::core {
namespace {

TaskFn noop() {
  return [](const std::vector<Bytes>&, const TaskContext&) { return Bytes{}; };
}

std::vector<NodeId> nodes(std::initializer_list<NodeId> ids) { return ids; }

TEST(TaskGraph, ValidGraphPasses) {
  TaskGraph g;
  g.add_task({0, "t1", {}, nodes({0, 1, 2, 3}), noop()});
  g.add_task({1, "t2a", {0}, nodes({0, 1}), noop()});
  g.add_task({2, "t2b", {0}, nodes({2, 3}), noop()});
  g.add_task({3, "t3", {0, 1, 2}, nodes({0, 1, 2, 3}), noop()});
  EXPECT_EQ(g.validate(4, 1), std::nullopt);
  EXPECT_EQ(g.sink(), 3u);
}

TEST(TaskGraph, RecipientsAreDependentExecutors) {
  TaskGraph g;
  g.add_task({0, "t1", {}, nodes({0, 1, 2, 3}), noop()});
  g.add_task({1, "t2", {0}, nodes({0, 1}), noop()});
  g.add_task({2, "t3", {0, 1}, nodes({0, 1, 2, 3}), noop()});
  ASSERT_EQ(g.validate(4, 1), std::nullopt);
  // Task 1's result is consumed by the sink (all providers).
  EXPECT_EQ(g.recipients(1), nodes({0, 1, 2, 3}));
  EXPECT_TRUE(g.needs_transfer(1));   // providers 2,3 did not execute it
  EXPECT_FALSE(g.needs_transfer(0));  // everyone executed task 0
  EXPECT_FALSE(g.needs_transfer(2));  // the sink has no recipients
}

TEST(TaskGraph, RejectsTooFewExecutors) {
  TaskGraph g;
  g.add_task({0, "t", {}, nodes({0}), noop()});
  EXPECT_NE(g.validate(3, 1), std::nullopt);  // needs k+1 = 2
}

TEST(TaskGraph, RejectsMultipleSinks) {
  TaskGraph g;
  g.add_task({0, "a", {}, nodes({0, 1, 2}), noop()});
  g.add_task({1, "b", {}, nodes({0, 1, 2}), noop()});
  EXPECT_NE(g.validate(3, 1), std::nullopt);
}

TEST(TaskGraph, RejectsSinkNotExecutedByAll) {
  TaskGraph g;
  g.add_task({0, "a", {}, nodes({0, 1, 2}), noop()});
  g.add_task({1, "b", {0}, nodes({0, 1}), noop()});
  EXPECT_NE(g.validate(3, 1), std::nullopt);
}

TEST(TaskGraph, RejectsForwardDependency) {
  TaskGraph g;
  g.add_task({0, "a", {1}, nodes({0, 1}), noop()});
  g.add_task({1, "b", {}, nodes({0, 1}), noop()});
  EXPECT_NE(g.validate(2, 0), std::nullopt);
}

TEST(TaskGraph, RejectsOutOfRangeExecutor) {
  TaskGraph g;
  g.add_task({0, "a", {}, nodes({0, 5}), noop()});
  EXPECT_NE(g.validate(3, 1), std::nullopt);
}

TEST(TaskGraph, RejectsEmptyGraphAndMissingCompute) {
  TaskGraph empty;
  EXPECT_NE(empty.validate(3, 1), std::nullopt);

  TaskGraph no_fn;
  no_fn.add_task({0, "a", {}, nodes({0, 1}), nullptr});
  EXPECT_NE(no_fn.validate(3, 1), std::nullopt);
}

TEST(Groups, MaxParallelism) {
  EXPECT_EQ(max_parallelism(8, 1), 4u);
  EXPECT_EQ(max_parallelism(8, 3), 2u);
  EXPECT_EQ(max_parallelism(8, 7), 1u);
  EXPECT_EQ(max_parallelism(3, 1), 1u);
}

TEST(Groups, PartitionCoversAllProviders) {
  for (std::size_t m : {3u, 5u, 8u, 13u}) {
    for (std::size_t k : {1u, 2u, 3u}) {
      if (m <= 2 * k) continue;
      const std::size_t c = max_parallelism(m, k);
      const auto groups = assign_groups(m, k, c);
      ASSERT_EQ(groups.size(), c);
      std::vector<NodeId> all;
      for (const auto& g : groups) {
        EXPECT_GE(g.size(), k + 1) << "m=" << m << " k=" << k;
        all.insert(all.end(), g.begin(), g.end());
      }
      std::sort(all.begin(), all.end());
      std::vector<NodeId> expect(m);
      std::iota(expect.begin(), expect.end(), 0);
      EXPECT_EQ(all, expect);
    }
  }
}

TEST(Adapters, DoubleAuctionGraphShape) {
  DoubleAuctionAdapter adapter;
  TaskGraph g = adapter.build(10, 8, 3);
  ASSERT_EQ(g.validate(8, 3), std::nullopt);
  EXPECT_EQ(g.size(), 1u);  // single non-parallelisable task
  EXPECT_FALSE(g.needs_transfer(0));
}

TEST(Adapters, StandardAuctionGraphShape) {
  auction::StandardAuctionParams params;
  params.use_exact = true;
  StandardAuctionAdapter adapter(params);
  // m=8, k=1 → c=4 payment groups → 1 + 4 + 1 tasks.
  TaskGraph g = adapter.build(20, 8, 1);
  ASSERT_EQ(g.validate(8, 1), std::nullopt);
  EXPECT_EQ(g.size(), 6u);
  EXPECT_EQ(g.sink(), 5u);
  for (TaskId t = 1; t <= 4; ++t) {
    EXPECT_TRUE(g.needs_transfer(t)) << t;  // payment chunks ship to all
    EXPECT_GE(g.task(t).executors.size(), 2u);
  }
}

TEST(Adapters, StandardAuctionExplicitGroupCount) {
  auction::StandardAuctionParams params;
  StandardAuctionAdapter adapter(params, /*groups=*/2);
  TaskGraph g = adapter.build(10, 8, 1);
  ASSERT_EQ(g.validate(8, 1), std::nullopt);
  EXPECT_EQ(g.size(), 4u);  // T1 + 2 payment groups + T3
}

}  // namespace
}  // namespace dauct::core
