#include <gtest/gtest.h>

#include "auction/double_auction.hpp"
#include "auction/workload.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {
namespace {

AuctionInstance tiny_market() {
  // 4 buyers, 3 sellers with clean crossing.
  AuctionInstance inst;
  inst.bids = {
      {0, Money::from_double(1.0), Money::from_double(1.0)},
      {1, Money::from_double(0.9), Money::from_double(1.0)},
      {2, Money::from_double(0.5), Money::from_double(1.0)},
      {3, Money::from_double(0.2), Money::from_double(1.0)},
  };
  inst.asks = {
      {0, Money::from_double(0.1), Money::from_double(1.0)},
      {1, Money::from_double(0.3), Money::from_double(1.0)},
      {2, Money::from_double(0.8), Money::from_double(1.0)},
  };
  return inst;
}

TEST(DoubleAuction, TinyMarketTradeReduction) {
  DoubleAuctionInfo info;
  const AuctionResult res = run_double_auction(tiny_market(), &info);

  // Crossing: buyers 0 (1.0) and 1 (0.9) trade with sellers 0 (0.1) and 1
  // (0.3); buyer 2 (0.5) would trade with seller... walk: b0 fills s0, b1
  // fills s1, b2 vs s2: 0.5 < 0.8 stop. Marginal steps: buyer 1, seller 1 —
  // both excluded by trade reduction. Surviving trade: buyer 0 with seller 0.
  EXPECT_TRUE(info.traded);
  EXPECT_EQ(info.buyer_price, Money::from_double(0.9));   // excluded buyer's bid
  EXPECT_EQ(info.seller_price, Money::from_double(0.3));  // excluded seller's ask
  EXPECT_EQ(info.traded_quantity, Money::from_double(1.0));
  EXPECT_EQ(res.allocation.amount(0, 0), Money::from_double(1.0));
  EXPECT_EQ(res.allocation.allocated_to(1), kZeroMoney);  // reduced away
  EXPECT_EQ(res.payments.user_payments[0], Money::from_double(0.9));
  EXPECT_EQ(res.payments.provider_revenues[0], Money::from_double(0.3));
}

TEST(DoubleAuction, NoCrossingNoTrade) {
  AuctionInstance inst;
  inst.bids = {{0, Money::from_double(0.1), Money::from_units(1)}};
  inst.asks = {{0, Money::from_double(0.9), Money::from_units(1)}};
  const AuctionResult res = run_double_auction(inst);
  EXPECT_TRUE(res.allocation.empty());
  EXPECT_EQ(res.payments.total_paid(), kZeroMoney);
}

TEST(DoubleAuction, SingleBuyerOrSellerCannotTrade) {
  // Trade reduction always removes the marginal step: with one participating
  // step on a side there is nothing left.
  AuctionInstance inst;
  inst.bids = {{0, Money::from_double(1.0), Money::from_units(1)}};
  inst.asks = {{0, Money::from_double(0.1), Money::from_units(1)},
               {1, Money::from_double(0.2), Money::from_units(1)}};
  const AuctionResult res = run_double_auction(inst);
  EXPECT_TRUE(res.allocation.empty());
}

TEST(DoubleAuction, NeutralBidsExcluded) {
  AuctionInstance inst = tiny_market();
  inst.bids[0] = neutral_bid(0);
  const AuctionResult res = run_double_auction(inst);
  EXPECT_EQ(res.allocation.allocated_to(0), kZeroMoney);
  EXPECT_EQ(res.payments.user_payments[0], kZeroMoney);
}

TEST(DoubleAuction, DeterministicAcrossCalls) {
  crypto::Rng rng(5);
  const AuctionInstance inst = generate(double_auction_workload(50, 8), rng);
  const AuctionResult a = run_double_auction(inst);
  const AuctionResult b = run_double_auction(inst);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Property sweeps over random markets (the paper's workload distributions).
// ---------------------------------------------------------------------------

class DoubleAuctionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubleAuctionProperty, FeasibleAllocation) {
  crypto::Rng rng(GetParam());
  const AuctionInstance inst = generate(double_auction_workload(40, 6), rng);
  const AuctionResult res = run_double_auction(inst);
  EXPECT_TRUE(is_feasible(inst, res.allocation));
}

TEST_P(DoubleAuctionProperty, BudgetBalanced) {
  crypto::Rng rng(GetParam() ^ 0x5eedu);
  const AuctionInstance inst = generate(double_auction_workload(60, 8), rng);
  const AuctionResult res = run_double_auction(inst);
  // McAfee trade reduction: Σ user payments ≥ Σ provider revenues.
  EXPECT_TRUE(res.payments.budget_balanced())
      << "paid=" << res.payments.total_paid().str()
      << " received=" << res.payments.total_received().str();
}

TEST_P(DoubleAuctionProperty, IndividualRationality) {
  crypto::Rng rng(GetParam() ^ 0x1234u);
  const AuctionInstance inst = generate(double_auction_workload(30, 5), rng);
  const AuctionResult res = run_double_auction(inst);
  const AuctionOutcome outcome(res);
  // Truthful participants never end up with negative utility.
  for (const auto& bid : inst.bids) {
    EXPECT_GE(user_utility(inst, outcome, bid.bidder), kZeroMoney) << bid.bidder;
  }
  for (const auto& ask : inst.asks) {
    EXPECT_GE(provider_utility(inst, outcome, ask.provider), kZeroMoney)
        << ask.provider;
  }
}

TEST_P(DoubleAuctionProperty, UniformPrices) {
  crypto::Rng rng(GetParam() ^ 0x777u);
  const AuctionInstance inst = generate(double_auction_workload(30, 5), rng);
  DoubleAuctionInfo info;
  const AuctionResult res = run_double_auction(inst, &info);
  if (!info.traded) return;
  EXPECT_GE(info.buyer_price, info.seller_price);  // budget balance per unit
  // Payments accumulate per (bidder, provider) chunk, each truncated to a
  // micro-unit, so totals may differ from alloc·price by a few micros.
  const auto near = [](Money a, Money b) {
    const std::int64_t d = a.micros() - b.micros();
    return d >= -32 && d <= 32;
  };
  for (const auto& bid : inst.bids) {
    const Money alloc = res.allocation.allocated_to(bid.bidder);
    EXPECT_TRUE(near(res.payments.user_payments[bid.bidder],
                     alloc.mul(info.buyer_price)));
    if (alloc > kZeroMoney) {
      // Winners value the resource at least at the clearing price.
      EXPECT_GE(bid.unit_value, info.buyer_price);
    }
  }
  for (const auto& ask : inst.asks) {
    const Money sold = res.allocation.allocated_at(ask.provider);
    EXPECT_TRUE(near(res.payments.provider_revenues[ask.provider],
                     sold.mul(info.seller_price)));
    if (sold > kZeroMoney) {
      EXPECT_LE(ask.unit_cost, info.seller_price);
    }
  }
}

TEST_P(DoubleAuctionProperty, BuyerTruthfulness) {
  // No single buyer improves its utility by misreporting its unit value.
  crypto::Rng rng(GetParam() ^ 0xabcdu);
  const AuctionInstance inst = generate(double_auction_workload(20, 4), rng);
  const AuctionOutcome truthful_outcome(run_double_auction(inst));

  for (BidderId i = 0; i < 5; ++i) {  // probe a few bidders
    const Money honest = user_utility(inst, truthful_outcome, i);
    for (double factor : {0.0, 0.3, 0.7, 1.3, 2.0, 10.0}) {
      AuctionInstance lied = inst;
      lied.bids[i].unit_value = Money::from_double(
          inst.bids[i].unit_value.to_double() * factor);
      const AuctionResult lied_res = run_double_auction(lied);
      // Utility still measured against the TRUE valuation.
      const AuctionOutcome lied_outcome(lied_res);
      const Money lied_utility = user_utility(inst, lied_outcome, i);
      // Tolerance: proportional-rationing scale factors truncate at micro-
      // unit granularity; a "gain" of a few micro-units is rounding, not a
      // strategic improvement.
      EXPECT_LE(lied_utility, honest + Money::from_micros(10))
          << "bidder " << i << " gains by reporting " << factor << "x";
    }
  }
}

TEST_P(DoubleAuctionProperty, SellerTruthfulness) {
  crypto::Rng rng(GetParam() ^ 0xef01u);
  const AuctionInstance inst = generate(double_auction_workload(20, 4), rng);
  const AuctionOutcome truthful_outcome(run_double_auction(inst));

  for (NodeId j = 0; j < 4; ++j) {
    const Money honest = provider_utility(inst, truthful_outcome, j);
    for (double factor : {0.1, 0.5, 1.5, 3.0}) {
      AuctionInstance lied = inst;
      lied.asks[j].unit_cost =
          Money::from_double(inst.asks[j].unit_cost.to_double() * factor);
      const AuctionOutcome lied_outcome(run_double_auction(lied));
      // Same micro-unit rounding tolerance as the buyer-side test.
      EXPECT_LE(provider_utility(inst, lied_outcome, j),
                honest + Money::from_micros(10))
          << "provider " << j << " gains by reporting " << factor << "x cost";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubleAuctionProperty,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace dauct::auction

namespace dauct::auction {
namespace {

TEST(OptimalWaterfill, WelfareDominatesTradeReduction) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    crypto::Rng rng(seed);
    const AuctionInstance inst = generate(double_auction_workload(40, 6), rng);
    const Money opt =
        double_auction_welfare(inst, run_optimal_waterfill(inst).allocation);
    const Money mcafee =
        double_auction_welfare(inst, run_double_auction(inst).allocation);
    EXPECT_GE(opt, mcafee) << seed;  // trade reduction only loses welfare
    EXPECT_GE(opt, kZeroMoney);
  }
}

TEST(OptimalWaterfill, FeasibleAndBudgetBalanced) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    crypto::Rng rng(seed ^ 0x0f0fu);
    const AuctionInstance inst = generate(double_auction_workload(30, 5), rng);
    const AuctionResult res = run_optimal_waterfill(inst);
    EXPECT_TRUE(is_feasible(inst, res.allocation));
    // Pay-as-bid ≥ receive-as-ask on every traded unit (v ≥ c at trade time).
    EXPECT_TRUE(res.payments.budget_balanced());
  }
}

TEST(OptimalWaterfill, TradesEveryClearingPair) {
  // Unlike McAfee, a single buyer/seller pair that clears does trade.
  AuctionInstance inst;
  inst.bids = {{0, Money::from_double(1.0), Money::from_units(1)}};
  inst.asks = {{0, Money::from_double(0.2), Money::from_units(1)}};
  const AuctionResult res = run_optimal_waterfill(inst);
  EXPECT_EQ(res.allocation.allocated_to(0), Money::from_units(1));
  EXPECT_EQ(res.payments.user_payments[0], Money::from_double(1.0));   // pays bid
  EXPECT_EQ(res.payments.provider_revenues[0], Money::from_double(0.2));
}

}  // namespace
}  // namespace dauct::auction
