// Equivalence: the optimized welfare solvers must return *byte-identical*
// Assignments to the retained reference implementations (the seed-tree code
// in welfare_reference.hpp) on every instance, active mask, and seed. This
// is what makes the perf suite's solver speedups like-for-like, and what
// keeps optimized and unoptimized providers cross-validating successfully in
// a mixed deployment.
#include <gtest/gtest.h>

#include "auction/welfare.hpp"
#include "auction/welfare_reference.hpp"
#include "auction/workload.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"
#include "serde/auction_codec.hpp"

namespace dauct::auction {
namespace {

AuctionInstance random_instance(std::size_t users, std::size_t providers,
                                std::uint64_t seed) {
  crypto::Rng rng(seed);
  return generate(standard_auction_workload(users, providers), rng);
}

std::vector<bool> random_mask(std::size_t n, crypto::Rng& rng) {
  std::vector<bool> mask(n, true);
  // Knock out ~1/4 of the bidders — the shape of Clarke-pivot re-solves.
  for (std::size_t i = 0; i < n; ++i) mask[i] = rng.next_below(4) != 0;
  return mask;
}

TEST(ExactEquivalence, FullSolveAcrossSeeds) {
  const ExactSolver opt;
  const reference::ReferenceExactSolver ref;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const AuctionInstance inst = random_instance(14 + seed % 5, 2 + seed % 4, seed);
    const Assignment a = opt.solve_all(inst, seed);
    const Assignment b = ref.solve_all(inst, seed);
    EXPECT_EQ(a, b) << "seed " << seed;
  }
}

TEST(ExactEquivalence, AcceptanceSizeInstance) {
  // The perf-suite acceptance configuration: 24 bids, 4 providers.
  const AuctionInstance inst = random_instance(24, 4, 7);
  EXPECT_EQ(ExactSolver().solve_all(inst, 0),
            reference::ReferenceExactSolver().solve_all(inst, 0));
}

TEST(ExactEquivalence, ActiveMasks) {
  const ExactSolver opt;
  const reference::ReferenceExactSolver ref;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AuctionInstance inst = random_instance(12, 3, seed);
    crypto::Rng mask_rng(seed * 31);
    for (int trial = 0; trial < 4; ++trial) {
      const std::vector<bool> mask = random_mask(inst.bids.size(), mask_rng);
      EXPECT_EQ(opt.solve(inst, mask, seed), ref.solve(inst, mask, seed))
          << "seed " << seed << " trial " << trial;
    }
  }
}

TEST(ExactEquivalence, EqualCapacityProviders) {
  // Identical providers exercise the symmetry-breaking path; results must
  // still match the exhaustive reference exactly.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    AuctionInstance inst = random_instance(12, 4, seed);
    for (auto& a : inst.asks) a.capacity = Money::from_double(1.5);
    EXPECT_EQ(ExactSolver().solve_all(inst, seed),
              reference::ReferenceExactSolver().solve_all(inst, seed))
        << "seed " << seed;
  }
}

TEST(ScaledDpEquivalence, FullSolveAcrossSeedsAndEpsilons) {
  for (const double eps : {0.5, 0.2, 0.1}) {
    const ScaledDpSolver opt(eps);
    const reference::ReferenceScaledDpSolver ref(eps);
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      const AuctionInstance inst = random_instance(20 + seed, 3 + seed % 4, seed);
      EXPECT_EQ(opt.solve_all(inst, seed * 7), ref.solve_all(inst, seed * 7))
          << "eps " << eps << " seed " << seed;
    }
  }
}

TEST(ScaledDpEquivalence, ActiveMasks) {
  const ScaledDpSolver opt(0.1);
  const reference::ReferenceScaledDpSolver ref(0.1);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AuctionInstance inst = random_instance(24, 4, seed);
    crypto::Rng mask_rng(seed * 17);
    const std::vector<bool> mask = random_mask(inst.bids.size(), mask_rng);
    EXPECT_EQ(opt.solve(inst, mask, seed), ref.solve(inst, mask, seed))
        << "seed " << seed;
  }
}

TEST(ScaledDpEquivalence, ParallelTrialsMatchSerial) {
  // Thread count must be invisible in the result (and in the serde bytes the
  // providers cross-validate).
  const ScaledDpSolver serial(0.1, 1);
  const ScaledDpSolver parallel(0.1, 4);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const AuctionInstance inst = random_instance(30, 5, seed);
    const Assignment a = serial.solve_all(inst, seed);
    const Assignment b = parallel.solve_all(inst, seed);
    EXPECT_EQ(a, b) << "seed " << seed;
    EXPECT_EQ(serde::encode_assignment(a), serde::encode_assignment(b));
  }
}

TEST(ScaledDpEquivalence, FewProvidersManyTrials) {
  // Small m means many duplicate provider permutations — the memoized path.
  const ScaledDpSolver opt(0.05);  // 20 trials over 3! = 6 permutations
  const reference::ReferenceScaledDpSolver ref(0.05);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const AuctionInstance inst = random_instance(16, 3, seed);
    EXPECT_EQ(opt.solve_all(inst, seed), ref.solve_all(inst, seed)) << "seed " << seed;
  }
}

TEST(DigestEquivalence, HardwareAndPortableSha256Agree) {
  // The CPU-dispatched hasher and the scalar reference must agree on every
  // length straddling block/padding boundaries (providers on heterogeneous
  // hosts cross-validate by digest equality).
  crypto::Rng rng(5);
  for (std::size_t len : {std::size_t{0}, std::size_t{1}, std::size_t{55},
                          std::size_t{56}, std::size_t{63}, std::size_t{64},
                          std::size_t{65}, std::size_t{127}, std::size_t{128},
                          std::size_t{1000}, std::size_t{4096}}) {
    Bytes data(len);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u64());
    EXPECT_EQ(crypto::sha256(BytesView(data)), crypto::sha256_portable(BytesView(data)))
        << "len " << len;
  }
}

TEST(DigestEquivalence, SolveDigestsStable) {
  // End-to-end outcome digest: serialize both solvers' assignments and hash —
  // what output agreement actually compares across providers.
  const AuctionInstance inst = random_instance(24, 4, 3);
  const Bytes opt_bytes = serde::encode_assignment(ExactSolver().solve_all(inst, 0));
  const Bytes ref_bytes =
      serde::encode_assignment(reference::ReferenceExactSolver().solve_all(inst, 0));
  EXPECT_EQ(crypto::sha256(BytesView(opt_bytes)), crypto::sha256(BytesView(ref_bytes)));
}

}  // namespace
}  // namespace dauct::auction
