// Table-driven verdict pins for the fuzz safety oracle
// (runtime/fuzz_harness.hpp).
//
// Each row builds one scenario whose run outcome lands in a known class —
// clean match, explicit ⊥-with-reason, silently wrong digest, event-budget
// trip, starved clean twin — and the table asserts the EXACT verdict plus a
// stable fragment of the human-readable detail line. The point is to pin the
// oracle's decision table itself, independent of the fuzzer: a future edit
// that, say, starts classifying explicit ⊥ as a violation (or stops
// classifying a budget trip as one) fails here with the offending row named.
//
// The per-instance verdicts ([service] runs) get their own suite: a
// deviation confined to instance 1 must produce kWrongResult for exactly
// that instance and kPass for its co-tenant, and the overall verdict must be
// the worst instance verdict.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "runtime/fuzz_harness.hpp"

namespace dauct {
namespace {

using runtime::FuzzVerdict;
using runtime::Scenario;

/// Small fast shape (zero latency): 6 users, 3 providers, k = 1, seed 5.
Scenario base() {
  Scenario sc;
  sc.name = "oracle-table-base";
  sc.users = 6;
  sc.providers = 3;
  sc.k = 1;
  sc.seed = 5;
  sc.latency = "zero";
  return sc;
}

/// The event budget that starves the FAULTY run but not the clean twin:
/// heavy duplication makes the faulty run strictly hungrier, so the midpoint
/// between the two appetites trips exactly one of them.
std::uint64_t budget_between_clean_and_faulty(const Scenario& sc) {
  const runtime::ScenarioRun wide = runtime::run_scenario(sc, true);
  const std::uint64_t clean_events = wide.clean->events_dispatched;
  const std::uint64_t faulty_events = wide.run.events_dispatched;
  return clean_events + (faulty_events - clean_events) / 2;
}

TEST(OracleTable, VerdictsAreExactPerOutcomeClass) {
  struct Row {
    const char* name;
    std::function<Scenario()> build;
    FuzzVerdict want;
    const char* detail_fragment;  ///< must appear in report.detail
  };
  const std::vector<Row> rows = {
      {"clean-match",
       [] { return base(); },
       FuzzVerdict::kPass, "matches clean"},

      {"bottom-with-reason",  // crash-stop of a provider: an allowed ⊥
       [] {
         Scenario sc = base();
         sc.faults.crashes.push_back(sim::CrashEvent{0, 0});
         return sc;
       },
       FuzzVerdict::kPass, "explicit bottom"},

      {"wrong-digest",  // input manipulation: ok, but not the clean result
       [] {
         Scenario sc = base();
         sc.deviations.push_back(runtime::DeviationSpec{
             0, "misreport-ask", Money::from_units(1'000'000)});
         return sc;
       },
       FuzzVerdict::kWrongResult, "!= clean"},

      {"budget-trip",  // duplication storm cut off mid-flight
       [] {
         Scenario sc = base();
         sim::LinkFault rule;
         rule.duplicate = 1.0;
         sc.faults.links.push_back(rule);
         sc.max_events = budget_between_clean_and_faulty(sc);
         return sc;
       },
       FuzzVerdict::kBudgetExceeded, "event budget"},

      {"clean-twin-starved",  // harness misconfiguration, not a finding
       [] {
         Scenario sc = base();
         sc.max_events = 10;
         return sc;
       },
       FuzzVerdict::kCleanFailed, "clean twin failed"},
  };

  for (const Row& row : rows) {
    SCOPED_TRACE(row.name);
    const runtime::FuzzReport report = runtime::run_oracle(row.build());
    EXPECT_EQ(report.verdict, row.want)
        << runtime::fuzz_verdict_name(report.verdict) << " — " << report.detail;
    EXPECT_NE(report.detail.find(row.detail_fragment), std::string::npos)
        << "detail '" << report.detail << "' lacks '" << row.detail_fragment
        << "'";
    // The verdict↔violation mapping is part of the table: only kPass is
    // non-violating.
    EXPECT_EQ(runtime::fuzz_violation(report.verdict),
              row.want != FuzzVerdict::kPass);
  }
}

TEST(OracleInstances, SingleRunProducesNoInstanceVerdicts) {
  const runtime::FuzzReport report = runtime::run_oracle(base());
  EXPECT_TRUE(report.instance_verdicts.empty());
}

TEST(OracleInstances, CleanServiceRunPassesEveryInstance) {
  Scenario sc = base();
  sc.instances = 3;
  sc.pipeline_depth = 2;
  const runtime::FuzzReport report = runtime::run_oracle(sc);
  EXPECT_EQ(report.verdict, FuzzVerdict::kPass) << report.detail;
  ASSERT_EQ(report.instance_verdicts.size(), 3u);
  for (const auto& iv : report.instance_verdicts) {
    EXPECT_EQ(iv.verdict, FuzzVerdict::kPass) << iv.detail;
    EXPECT_NE(iv.detail.find("matches clean instance"), std::string::npos)
        << iv.detail;
  }
}

TEST(OracleInstances, ConfinedDeviationIsCaughtOnExactlyItsInstance) {
  // A result-bending deviation confined to instance 1: the per-instance
  // sweep must flag instance 1 as wrong-result, leave instance 0 passing
  // (it must still match its clean twin bit-for-bit — instance isolation),
  // and surface the worst instance verdict as the overall one.
  Scenario sc = base();
  sc.instances = 2;
  sc.pipeline_depth = 1;
  sc.deviations.push_back(runtime::DeviationSpec{
      0, "misreport-ask", Money::from_units(1'000'000), 1});
  const runtime::FuzzReport report = runtime::run_oracle(sc);
  ASSERT_EQ(report.instance_verdicts.size(), 2u);
  EXPECT_EQ(report.instance_verdicts[0].verdict, FuzzVerdict::kPass)
      << report.instance_verdicts[0].detail;
  EXPECT_EQ(report.instance_verdicts[1].verdict, FuzzVerdict::kWrongResult)
      << report.instance_verdicts[1].detail;
  EXPECT_NE(report.instance_verdicts[1].detail.find("instance 1"),
            std::string::npos);
  EXPECT_EQ(report.verdict, FuzzVerdict::kWrongResult) << report.detail;
}

}  // namespace
}  // namespace dauct
