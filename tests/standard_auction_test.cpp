#include <gtest/gtest.h>

#include "auction/standard_auction.hpp"
#include "auction/workload.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {
namespace {

StandardAuctionParams exact_params() {
  StandardAuctionParams p;
  p.use_exact = true;
  return p;
}

AuctionInstance small_cloud(std::uint64_t seed, std::size_t n = 10,
                            std::size_t m = 3) {
  crypto::Rng rng(seed);
  return generate(standard_auction_workload(n, m), rng);
}

TEST(StandardAuction, WinnersPayAtMostTheirValue) {
  const AuctionInstance inst = small_cloud(1);
  const AuctionResult res = run_standard_auction(inst, exact_params());
  for (const auto& bid : inst.bids) {
    const Money value = res.allocation.allocated_to(bid.bidder).mul(bid.unit_value);
    EXPECT_LE(res.payments.user_payments[bid.bidder], value);
  }
}

TEST(StandardAuction, LosersPayNothing) {
  const AuctionInstance inst = small_cloud(2);
  const AuctionResult res = run_standard_auction(inst, exact_params());
  for (const auto& bid : inst.bids) {
    if (res.allocation.allocated_to(bid.bidder).is_zero()) {
      EXPECT_EQ(res.payments.user_payments[bid.bidder], kZeroMoney);
    }
  }
}

TEST(StandardAuction, ExactlyBudgetBalanced) {
  const AuctionInstance inst = small_cloud(3);
  const AuctionResult res = run_standard_auction(inst, exact_params());
  // User payments flow 1:1 to the hosting providers.
  EXPECT_EQ(res.payments.total_paid(), res.payments.total_received());
}

TEST(StandardAuction, SingleProviderAllocationOnly) {
  const AuctionInstance inst = small_cloud(4);
  const AuctionResult res = run_standard_auction(inst, exact_params());
  for (const auto& bid : inst.bids) {
    // Each winner's demand sits at exactly one provider, in full.
    int providers_used = 0;
    for (const auto& e : res.allocation.entries()) {
      if (e.bidder == bid.bidder) {
        ++providers_used;
        EXPECT_EQ(e.amount, bid.demand);
      }
    }
    EXPECT_LE(providers_used, 1);
  }
}

TEST(StandardAuction, FeasibleAllocation) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const AuctionInstance inst = small_cloud(seed, 12, 4);
    const AuctionResult res = run_standard_auction(inst, exact_params());
    EXPECT_TRUE(is_feasible(inst, res.allocation)) << seed;
  }
}

TEST(StandardAuction, ClarkePaymentNonNegative) {
  const AuctionInstance inst = small_cloud(5);
  const AuctionResult res = run_standard_auction(inst, exact_params());
  for (Money p : res.payments.user_payments) EXPECT_GE(p, kZeroMoney);
}

TEST(StandardAuction, PaymentEqualsExternality) {
  // Hand-built: two users compete for one slot.
  AuctionInstance inst;
  inst.bids = {{0, Money::from_double(1.0), Money::from_double(1.0)},
               {1, Money::from_double(0.6), Money::from_double(1.0)}};
  inst.asks = {{0, kZeroMoney, Money::from_double(1.0)}};
  const AuctionResult res = run_standard_auction(inst, exact_params());
  // u0 wins and pays exactly u1's displaced value (second price).
  EXPECT_EQ(res.allocation.allocated_to(0), Money::from_double(1.0));
  EXPECT_EQ(res.allocation.allocated_to(1), kZeroMoney);
  EXPECT_EQ(res.payments.user_payments[0], Money::from_double(0.6));
}

TEST(StandardAuction, NoCompetitionMeansFreeAllocation) {
  AuctionInstance inst;
  inst.bids = {{0, Money::from_double(1.0), Money::from_double(0.5)}};
  inst.asks = {{0, kZeroMoney, Money::from_double(1.0)}};
  const AuctionResult res = run_standard_auction(inst, exact_params());
  EXPECT_EQ(res.allocation.allocated_to(0), Money::from_double(0.5));
  EXPECT_EQ(res.payments.user_payments[0], kZeroMoney);  // zero externality
}

TEST(StandardAuction, TaskDecompositionMatchesMonolith) {
  // Running Task 1 / Task 2 / Task 3 by hand equals run_standard_auction.
  const AuctionInstance inst = small_cloud(6);
  const auto params = exact_params();
  const Assignment assignment = standard_allocate(inst, params);
  std::vector<Money> payments(inst.bids.size(), kZeroMoney);
  for (std::size_t i = 0; i < inst.bids.size(); ++i) {
    payments[i] = standard_payment(inst, params, assignment, static_cast<BidderId>(i));
  }
  const AuctionResult manual = standard_assemble(inst, assignment, payments);
  const AuctionResult monolith = run_standard_auction(inst, params);
  EXPECT_EQ(manual, monolith);
}

// VCG truthfulness with the exact solver: dominant-strategy, so no value
// misreport may increase utility on any instance.
class VcgTruthfulness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VcgTruthfulness, NoGainFromValueMisreport) {
  const AuctionInstance inst = small_cloud(GetParam(), 8, 2);
  const auto params = exact_params();
  const AuctionOutcome truthful(run_standard_auction(inst, params));

  for (BidderId i = 0; i < 4; ++i) {
    const Money honest = user_utility(inst, truthful, i);
    for (double factor : {0.0, 0.4, 0.8, 1.25, 2.0, 5.0}) {
      AuctionInstance lied = inst;
      lied.bids[i].unit_value =
          Money::from_double(inst.bids[i].unit_value.to_double() * factor);
      const AuctionOutcome lied_outcome(run_standard_auction(lied, params));
      // Tiny tolerance for fixed-point truncation in welfare differences.
      EXPECT_LE(user_utility(inst, lied_outcome, i), honest + Money::from_micros(5))
          << "bidder " << i << " gains from factor " << factor;
    }
  }
}

TEST_P(VcgTruthfulness, IndividualRationality) {
  const AuctionInstance inst = small_cloud(GetParam() ^ 0x99u, 10, 3);
  const AuctionOutcome outcome(run_standard_auction(inst, exact_params()));
  for (const auto& bid : inst.bids) {
    EXPECT_GE(user_utility(inst, outcome, bid.bidder), kZeroMoney);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcgTruthfulness,
                         ::testing::Range<std::uint64_t>(1, 13));

// The approximate mechanism: properties that must survive approximation.
class ApproxMechanism : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApproxMechanism, IndividualRationalityAndBudget) {
  const AuctionInstance inst = small_cloud(GetParam(), 20, 4);
  StandardAuctionParams params;
  params.epsilon = 0.2;
  params.seed = GetParam();
  const AuctionResult res = run_standard_auction(inst, params);
  EXPECT_TRUE(is_feasible(inst, res.allocation));
  EXPECT_EQ(res.payments.total_paid(), res.payments.total_received());
  const AuctionOutcome outcome(res);
  for (const auto& bid : inst.bids) {
    // The payment clamp guarantees IR even under approximation.
    EXPECT_GE(user_utility(inst, outcome, bid.bidder), kZeroMoney);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxMechanism,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace dauct::auction
