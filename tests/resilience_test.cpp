// Empirical k-resilience (Definition 2): for every strategy in the deviation
// library, a coalition of size ≤ k gains nothing — its utility under
// deviation never exceeds the honest baseline (detection collapses the run
// to ⊥, whose utility is 0; solution preference makes that a loss whenever
// the honest outcome pays anything).
#include <gtest/gtest.h>

#include <filesystem>

#include "adversary/resilience_harness.hpp"
#include "core/adapters.hpp"
#include "runtime/scenario.hpp"
#include "test_util.hpp"

namespace dauct::adversary {
namespace {

core::DistributedAuctioneer double_auctioneer(std::size_t m, std::size_t k,
                                              std::size_t n) {
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  return core::DistributedAuctioneer(spec,
                                     std::make_shared<core::DoubleAuctionAdapter>());
}

struct StrategyCase {
  std::string label;
  std::function<std::shared_ptr<DeviationStrategy>(std::vector<NodeId>)> make;
  bool expect_abort;  ///< detection collapses the run to ⊥
};

std::vector<StrategyCase> strategy_library() {
  // Note: forge-task-results is exercised against the *standard* auction in
  // its own test below — the double auction's task graph has no data
  // transfers, so that strategy is a no-op here.
  return {
      {"corrupt-coin-reveal",
       [](std::vector<NodeId>) { return corrupt_coin_reveal(); }, true},
      {"equivocate-votes", [](std::vector<NodeId>) { return equivocate_votes(); },
       true},
      {"forge-output-digest",
       [](std::vector<NodeId> c) { return forge_output_digest(std::move(c)); }, true},
  };
}

class Resilience : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Resilience, NoStrategyGainsForSingletonCoalition) {
  const auto instance = testutil::make_instance(16, 5, GetParam());
  const auto auctioneer = double_auctioneer(5, 1, 16);
  runtime::SimRunConfig cfg;
  cfg.seed = GetParam() * 31 + 1;

  for (const auto& sc : strategy_library()) {
    const std::vector<NodeId> coalition = {1};
    const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                          sc.make(coalition));
    EXPECT_TRUE(report.honest_ok) << sc.label;
    EXPECT_FALSE(report.gained())
        << sc.label << ": honest=" << report.honest_utility.str()
        << " deviant=" << report.deviant_utility.str();
    if (sc.expect_abort) {
      EXPECT_FALSE(report.deviant_ok) << sc.label << " went undetected";
      EXPECT_EQ(report.deviant_utility, kZeroMoney) << sc.label;
    }
  }
}

TEST_P(Resilience, NoStrategyGainsForCoalitionOfK) {
  // m = 8, k = 3: the largest coalition the paper's deployment tolerates.
  const auto instance = testutil::make_instance(20, 8, GetParam() ^ 0xc0ffeeu);
  const auto auctioneer = double_auctioneer(8, 3, 20);
  runtime::SimRunConfig cfg;
  cfg.seed = GetParam() * 17 + 3;

  const std::vector<NodeId> coalition = {2, 4, 7};
  for (const auto& sc : strategy_library()) {
    const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                          sc.make(coalition));
    EXPECT_FALSE(report.gained()) << sc.label;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Resilience, ::testing::Range<std::uint64_t>(1, 9));

TEST(Resilience, ForgedTaskResultGainsNothingInStandardAuction) {
  // The standard auction ships payment chunks between provider groups; a
  // coalition member forging its copy is detected by the receivers.
  core::AuctioneerSpec spec;
  spec.m = 5;
  spec.k = 1;
  spec.num_bidders = 8;
  auction::StandardAuctionParams params;
  params.use_exact = true;
  const core::DistributedAuctioneer auctioneer(
      spec, std::make_shared<core::StandardAuctionAdapter>(params));
  const auto instance = testutil::make_instance(8, 5, 55, /*standard=*/true);
  runtime::SimRunConfig cfg;
  cfg.seed = 23;
  const std::vector<NodeId> coalition = {1};
  const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                        forge_task_results(coalition));
  EXPECT_TRUE(report.honest_ok);
  EXPECT_FALSE(report.deviant_ok);
  EXPECT_FALSE(report.gained());
}

TEST(Resilience, SelectiveSilenceOnlyStallsToBottom) {
  const auto instance = testutil::make_instance(12, 5, 77);
  const auto auctioneer = double_auctioneer(5, 1, 12);
  runtime::SimRunConfig cfg;
  cfg.seed = 5;
  const std::vector<NodeId> coalition = {3};
  const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                        selective_silence(coalition));
  EXPECT_TRUE(report.honest_ok);
  EXPECT_FALSE(report.deviant_ok);   // the run cannot complete
  EXPECT_FALSE(report.gained());     // silence earns nothing
}

TEST(Resilience, MisreportedAskDoesNotPay) {
  // Provider-input truthfulness: a provider understating its cost to win
  // more trade volume does not increase its *true* utility (McAfee pricing).
  const auto instance = testutil::make_instance(24, 5, 91);
  const auto auctioneer = double_auctioneer(5, 1, 24);
  runtime::SimRunConfig cfg;
  cfg.seed = 11;
  for (NodeId j = 0; j < 5; ++j) {
    const std::vector<NodeId> coalition = {j};
    const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                          misreport_ask(Money::from_micros(1)));
    // Micro-unit tolerance for fixed-point rounding.
    EXPECT_LE(report.deviant_utility.micros(),
              report.honest_utility.micros() + 10)
        << "provider " << j;
  }
}

// ---------------------------------------------------------------------------
// Scenario-driven resilience (the .scn library as the experiment script):
// the paper's claim — outcome durable under ≤ k faults, ⊥ but never a wrong
// (x, p⃗) beyond — asserted through the declarative fault subsystem.
// ---------------------------------------------------------------------------

/// Load + parse a shipped scenario; empty on any failure (tests ASSERT).
std::optional<runtime::Scenario> load_scenario(const char* filename) {
  const auto path = std::filesystem::path(DAUCT_SCENARIO_DIR) / filename;
  const auto text = testutil::slurp_file(path);
  if (!text) {
    ADD_FAILURE() << "cannot read " << path;
    return std::nullopt;
  }
  auto parsed = runtime::parse_scenario(*text);
  if (!parsed.ok()) {
    ADD_FAILURE() << path << ": " << parsed.error;
    return std::nullopt;
  }
  return std::move(parsed.scenario);
}

TEST(ResilienceScenarios, KCrashAfterDecisionMatchesFaultFreeOutcome) {
  // k = 2 of m = 5 providers crash-stop post-decision: every provider output
  // (x, p⃗) before the crashes, so the global outcome must equal the
  // fault-free twin — the crash edition of the paper's resilience bound.
  const auto scenario = load_scenario("k_crash.scn");
  ASSERT_TRUE(scenario.has_value());
  const auto run = runtime::run_scenario(*scenario);
  for (const auto& failure : run.failures) ADD_FAILURE() << failure;
  ASSERT_TRUE(run.run.global_outcome.ok());
  ASSERT_TRUE(run.clean.has_value());
  EXPECT_EQ(run.result_digest, run.clean_digest);
  EXPECT_EQ(run.run.makespan, run.clean->makespan);
}

TEST(ResilienceScenarios, BeyondKCrashLosesLivenessNeverSafety) {
  // k+1 crash-stops mid-round: the run stalls to ⊥ (timeout) — liveness is
  // gone, but no provider that did answer emitted a result, so safety holds
  // (⊥ is the paper's legitimate failure outcome, not a wrong allocation).
  const auto scenario = load_scenario("beyond_k.scn");
  ASSERT_TRUE(scenario.has_value());
  const auto run = runtime::run_scenario(*scenario);
  for (const auto& failure : run.failures) ADD_FAILURE() << failure;
  EXPECT_TRUE(run.run.stalled);
  ASSERT_FALSE(run.run.global_outcome.ok());
  EXPECT_EQ(run.run.global_outcome.bottom().reason, AbortReason::kTimeout);
  for (const auto& outcome : run.run.provider_outcomes) {
    EXPECT_FALSE(outcome.ok()) << "a provider emitted a result mid-stall";
  }
}

TEST(ResilienceScenarios, ByzantineEchoCoalitionIsDetectedAndGainsNothing) {
  const auto loaded = load_scenario("byzantine_echo.scn");
  ASSERT_TRUE(loaded.has_value());
  const runtime::Scenario& scenario = *loaded;
  const auto run = runtime::run_scenario(scenario);
  for (const auto& failure : run.failures) ADD_FAILURE() << failure;
  ASSERT_FALSE(run.run.global_outcome.ok());
  EXPECT_FALSE(run.run.stalled);  // detection is explicit, not a hang

  // Definition 2, through the harness: the same coalition + strategy shows
  // no utility gain over honest play (⊥ pays nobody).
  const auto instance = testutil::make_instance(scenario.users, scenario.providers,
                                                scenario.seed);
  const auto auctioneer = double_auctioneer(scenario.providers, scenario.k,
                                            scenario.users);
  runtime::SimRunConfig cfg;
  cfg.seed = scenario.seed;
  std::vector<NodeId> coalition;
  for (const auto& dev : scenario.deviations) coalition.push_back(dev.node);
  const auto report = measure_deviation(auctioneer, instance, cfg, coalition,
                                        equivocate_votes());
  EXPECT_TRUE(report.honest_ok);
  EXPECT_FALSE(report.deviant_ok);
  EXPECT_FALSE(report.gained());
}

TEST(Resilience, HonestControlArmIsNeutral) {
  const auto instance = testutil::make_instance(10, 4, 99);
  const auto auctioneer = double_auctioneer(4, 1, 10);
  runtime::SimRunConfig cfg;
  cfg.seed = 13;
  const std::vector<NodeId> coalition = {0};
  const auto report =
      measure_deviation(auctioneer, instance, cfg, coalition, honest_provider());
  EXPECT_TRUE(report.honest_ok);
  EXPECT_TRUE(report.deviant_ok);
  EXPECT_EQ(report.honest_utility, report.deviant_utility);
}

}  // namespace
}  // namespace dauct::adversary
