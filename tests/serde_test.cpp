#include <gtest/gtest.h>

#include "crypto/rng.hpp"
#include "serde/auction_codec.hpp"
#include "serde/bitstream.hpp"
#include "serde/codec.hpp"

namespace dauct::serde {
namespace {

TEST(Codec, ScalarRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.boolean(true);
  w.money(Money::from_double(1.25));
  w.str("hello");

  Reader r(BytesView(w.buffer()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_EQ(r.money(), Money::from_double(1.25));
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    Reader r(BytesView(w.buffer()));
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Codec, VarintRejectsOverflow) {
  // 11 bytes of continuation: > 64 bits.
  Bytes bad(11, 0xff);
  bad.back() = 0x01;
  Reader r{BytesView(bad)};
  (void)r.varint();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedReadsFailSoft) {
  Writer w;
  w.u32(7);
  Reader r(BytesView(w.buffer()));
  (void)r.u64();  // wants 8 bytes, only 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // all further reads return zero
}

TEST(Codec, BooleanRejectsNonCanonical) {
  const Bytes bad = {2};
  Reader r{BytesView(bad)};
  (void)r.boolean();
  EXPECT_FALSE(r.ok());
}

TEST(Codec, BytesLengthPrefixedDefensive) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes, provides none
  Reader r(BytesView(w.buffer()));
  (void)r.bytes();
  EXPECT_FALSE(r.ok());
}

TEST(Bitstream, RoundTrip) {
  const Bytes data = {0b10110010, 0xff, 0x00, 0x01};
  const auto bits = to_bits(BytesView(data));
  ASSERT_EQ(bits.size(), 32u);
  EXPECT_TRUE(bits[0]);
  EXPECT_FALSE(bits[1]);
  EXPECT_TRUE(bits[2]);
  EXPECT_EQ(from_bits(bits), data);
}

TEST(Bitstream, MsbFirst) {
  const Bytes one = {0x80};
  const auto bits = to_bits(BytesView(one));
  EXPECT_TRUE(bits[0]);
  for (int i = 1; i < 8; ++i) EXPECT_FALSE(bits[i]);
}

TEST(AuctionCodec, BidFixedRoundTrip) {
  auction::Bid b;
  b.bidder = 17;
  b.unit_value = Money::from_double(1.125);
  b.demand = Money::from_double(0.75);
  const Bytes enc = encode_bid_fixed(b);
  EXPECT_EQ(enc.size(), kBidEncodingBytes);
  const auto dec = decode_bid_fixed(BytesView(enc));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, b);
}

TEST(AuctionCodec, BidFixedRejectsWrongLength) {
  Bytes enc(kBidEncodingBytes + 1, 0);
  EXPECT_FALSE(decode_bid_fixed(BytesView(enc)));
  enc.resize(kBidEncodingBytes - 1);
  EXPECT_FALSE(decode_bid_fixed(BytesView(enc)));
}

TEST(AuctionCodec, BidVectorRoundTrip) {
  std::vector<auction::Bid> bids;
  for (BidderId i = 0; i < 5; ++i) {
    bids.push_back({i, Money::from_units(i), Money::from_double(0.5)});
  }
  const auto dec = decode_bid_vector(BytesView(encode_bid_vector(bids)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, bids);
}

TEST(AuctionCodec, AskVectorRoundTrip) {
  std::vector<auction::Ask> asks = {{0, Money::from_double(0.3), Money::from_units(4)},
                                    {1, Money::from_double(0.6), Money::from_units(2)}};
  const auto dec = decode_ask_vector(BytesView(encode_ask_vector(asks)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, asks);
}

TEST(AuctionCodec, AllocationRoundTripCanonical) {
  auction::Allocation x;
  x.add(3, 1, Money::from_double(0.5));
  x.add(1, 0, Money::from_double(0.25));
  x.add(1, 2, Money::from_double(0.75));
  const auto dec = decode_allocation(BytesView(encode_allocation(x)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, x);
  EXPECT_TRUE(dec->is_canonical());
}

TEST(AuctionCodec, AllocationRejectsNonCanonical) {
  // Hand-craft an out-of-order encoding: entries (2,0) then (1,0).
  Writer w;
  w.varint(2);
  w.u32(2); w.u32(0); w.money(Money::from_units(1));
  w.u32(1); w.u32(0); w.money(Money::from_units(1));
  // decode_allocation re-canonicalizes via add(); the duplicate-merge makes
  // this decodable, but the re-encoded form must be canonical.
  const auto dec = decode_allocation(BytesView(w.buffer()));
  ASSERT_TRUE(dec);
  EXPECT_TRUE(dec->is_canonical());
}

TEST(AuctionCodec, AllocationRejectsNonPositiveAmount) {
  Writer w;
  w.varint(1);
  w.u32(0); w.u32(0); w.money(kZeroMoney);
  EXPECT_FALSE(decode_allocation(BytesView(w.buffer())));
}

TEST(AuctionCodec, PaymentsRoundTrip) {
  auction::Payments p;
  p.user_payments = {Money::from_units(1), kZeroMoney, Money::from_double(0.5)};
  p.provider_revenues = {Money::from_double(1.25)};
  const auto dec = decode_payments(BytesView(encode_payments(p)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, p);
}

TEST(AuctionCodec, ResultRoundTrip) {
  auction::AuctionResult res;
  res.allocation.add(0, 1, Money::from_units(2));
  res.payments.user_payments = {Money::from_units(1)};
  res.payments.provider_revenues = {kZeroMoney, Money::from_units(1)};
  const auto dec = decode_result(BytesView(encode_result(res)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, res);
}

TEST(AuctionCodec, AssignmentRoundTrip) {
  auction::Assignment a;
  a.provider_of = {-1, 0, 3, -1};
  a.welfare = Money::from_double(2.5);
  const auto dec = decode_assignment(BytesView(encode_assignment(a)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, a);
}

TEST(AuctionCodec, InstanceRoundTrip) {
  auction::AuctionInstance inst;
  inst.bids = {{0, Money::from_units(1), Money::from_double(0.5)}};
  inst.asks = {{0, Money::from_double(0.2), Money::from_units(3)}};
  const auto dec = decode_instance(BytesView(encode_instance(inst)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(dec->bids, inst.bids);
  EXPECT_EQ(dec->asks, inst.asks);
}

TEST(AuctionCodec, MoneyVectorRoundTrip) {
  const std::vector<Money> v = {kZeroMoney, Money::from_double(-1.5),
                                Money::from_units(7)};
  const auto dec = decode_money_vector(BytesView(encode_money_vector(v)));
  ASSERT_TRUE(dec);
  EXPECT_EQ(*dec, v);
}

// ---------------------------------------------------------------------------
// Zero-copy Reader parity: the *_view accessors must accept and reject
// exactly the same inputs as the owning accessors, with the same ok() state
// transitions and the same produced values.
// ---------------------------------------------------------------------------

TEST(CodecZeroCopy, ViewsMatchOwningOnWellFormed) {
  Writer w;
  w.bytes(to_bytes("payload"));
  w.str("topic/leaf");
  w.raw(to_bytes("xyz"));

  Reader owning(BytesView(w.buffer()));
  Reader viewing(BytesView(w.buffer()));
  const BytesView bytes_view = viewing.bytes_view();
  EXPECT_EQ(owning.bytes(), Bytes(bytes_view.begin(), bytes_view.end()));
  EXPECT_EQ(owning.str(), std::string(viewing.str_view()));
  const Bytes raw_owned = owning.raw(3);
  const BytesView raw_view = viewing.raw_view(3);
  EXPECT_EQ(raw_owned, Bytes(raw_view.begin(), raw_view.end()));
  EXPECT_TRUE(owning.at_end());
  EXPECT_TRUE(viewing.at_end());
}

TEST(CodecZeroCopy, ViewsAliasTheInputBuffer) {
  Writer w;
  w.bytes(to_bytes("abc"));
  const Bytes& buf = w.buffer();
  Reader r{BytesView(buf)};
  const BytesView v = r.bytes_view();
  ASSERT_EQ(v.size(), 3u);
  // Zero-copy means the view points into the original buffer.
  EXPECT_GE(v.data(), buf.data());
  EXPECT_LT(v.data(), buf.data() + buf.size());
}

TEST(CodecZeroCopy, TruncatedLengthPrefixRejectedIdentically) {
  Writer w;
  w.varint(1000);  // claims 1000 bytes, provides none
  Reader owning(BytesView(w.buffer()));
  Reader viewing(BytesView(w.buffer()));
  (void)owning.bytes();
  const BytesView v = viewing.bytes_view();
  EXPECT_FALSE(owning.ok());
  EXPECT_FALSE(viewing.ok());
  EXPECT_TRUE(v.empty());
}

TEST(CodecZeroCopy, TruncatedRawRejectedIdentically) {
  const Bytes buf = {1, 2};
  Reader owning{BytesView(buf)};
  Reader viewing{BytesView(buf)};
  (void)owning.raw(3);
  (void)viewing.raw_view(3);
  EXPECT_FALSE(owning.ok());
  EXPECT_FALSE(viewing.ok());
}

TEST(CodecZeroCopy, MalformedVarintPrefixRejectedIdentically) {
  Bytes bad(11, 0xff);  // varint overflow as a length prefix
  Reader owning{BytesView(bad)};
  Reader viewing{BytesView(bad)};
  (void)owning.str();
  (void)viewing.str_view();
  EXPECT_FALSE(owning.ok());
  EXPECT_FALSE(viewing.ok());
}

TEST(CodecZeroCopy, FuzzedBuffersAgreeEverywhere) {
  crypto::Rng rng(123);
  for (int trial = 0; trial < 200; ++trial) {
    Bytes junk(rng.next_below(40));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    Reader owning{BytesView(junk)};
    Reader viewing{BytesView(junk)};
    for (int op = 0; op < 4; ++op) {
      switch (rng.next_below(3)) {
        case 0: {
          const Bytes a = owning.bytes();
          const BytesView b = viewing.bytes_view();
          EXPECT_EQ(a, Bytes(b.begin(), b.end()));
          break;
        }
        case 1: {
          const std::size_t len = rng.next_below(8);
          const Bytes a = owning.raw(len);
          const BytesView b = viewing.raw_view(len);
          EXPECT_EQ(a, Bytes(b.begin(), b.end()));
          break;
        }
        case 2: {
          EXPECT_EQ(owning.str(), std::string(viewing.str_view()));
          break;
        }
      }
      ASSERT_EQ(owning.ok(), viewing.ok()) << "trial " << trial << " op " << op;
      ASSERT_EQ(owning.remaining(), viewing.remaining());
    }
    EXPECT_EQ(owning.at_end(), viewing.at_end());
  }
}

TEST(CodecWriter, ReserveAndReuseKeepBytesIdentical) {
  const auto encode = [](Writer& w) {
    w.varint(300);
    w.str("reusable");
    w.u64(0x1122334455667788ULL);
  };
  Writer fresh;
  encode(fresh);

  Writer reused(256);
  encode(reused);
  EXPECT_EQ(fresh.buffer(), reused.buffer());

  reused.clear();  // keep capacity, drop contents
  EXPECT_EQ(reused.size(), 0u);
  encode(reused);
  EXPECT_EQ(fresh.buffer(), reused.buffer());
}

TEST(CodecWriter, VarintLenMatchesEncoding) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
                          0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    EXPECT_EQ(varint_len(v), w.size()) << v;
  }
}

TEST(AuctionCodec, GarbageRejectedEverywhere) {
  crypto::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes junk(rng.next_below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    // Must never crash; may or may not decode, but trailing garbage fails.
    junk.push_back(0x17);
    junk.push_back(0x2a);
    (void)decode_bid_vector(BytesView(junk));
    (void)decode_allocation(BytesView(junk));
    (void)decode_result(BytesView(junk));
    (void)decode_instance(BytesView(junk));
  }
  SUCCEED();
}

}  // namespace
}  // namespace dauct::serde
