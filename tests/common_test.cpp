#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/money.hpp"
#include "common/outcome.hpp"

namespace dauct {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(BytesView(data)), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);  // uppercase accepted
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(BytesView{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(BytesView(a), BytesView(b)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(c)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(d)));
}

TEST(Bytes, StringConversions) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(BytesView(b)), "hello");
}

namespace {
void test_digest(const std::uint8_t* data, std::size_t size,
                 std::uint8_t out[32]) {
  // Cheap stand-in: first byte + length, enough to tell two views apart.
  for (int i = 0; i < 32; ++i) out[i] = 0;
  out[0] = size ? data[0] : 0xee;
  out[1] = static_cast<std::uint8_t>(size);
}
}  // namespace

TEST(SharedBytes, SuffixAliasesWithoutCopying) {
  const SharedBytes whole(Bytes{10, 11, 12, 13, 14});
  const SharedBytes tail = whole.suffix(2);
  ASSERT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.view().data(), whole.view().data() + 2)
      << "suffix must alias the parent allocation, not copy";
  EXPECT_EQ(tail, (Bytes{12, 13, 14}));
  // Same allocation, but NOT the same buffer identity: the digest slot is
  // fresh, because a digest must cover the view's bytes.
  EXPECT_FALSE(tail.same_buffer(whole));
  EXPECT_NE(whole.shared_digest(test_digest)[0],
            tail.shared_digest(test_digest)[0]);
}

TEST(SharedBytes, SuffixKeepsTheAllocationAlive) {
  SharedBytes tail;
  {
    SharedBytes whole(Bytes{1, 2, 3, 4});
    tail = whole.suffix(1);
  }  // parent alias gone; the view must still pin the allocation
  EXPECT_EQ(tail, (Bytes{2, 3, 4}));
}

TEST(SharedBytes, SuffixEdgeCases) {
  const SharedBytes whole(Bytes{1, 2, 3});
  // offset 0 is the identity: same buffer, shared digest slot.
  EXPECT_TRUE(whole.suffix(0).same_buffer(whole));
  // Past-the-end offsets clamp to the empty buffer.
  EXPECT_TRUE(whole.suffix(3).empty());
  EXPECT_TRUE(whole.suffix(99).empty());
  EXPECT_TRUE(SharedBytes().suffix(1).empty());
  // A suffix of a suffix chains to the root allocation.
  const SharedBytes inner = whole.suffix(1).suffix(1);
  EXPECT_EQ(inner, (Bytes{3}));
  EXPECT_EQ(inner.view().data(), whole.view().data() + 2);
}

TEST(Bytes, Append) {
  Bytes dst = {1, 2};
  const Bytes src = {3, 4};
  append(dst, BytesView(src));
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(Money, BasicArithmetic) {
  const Money a = Money::from_units(3);
  const Money b = Money::from_double(0.5);
  EXPECT_EQ((a + b).micros(), 3'500'000);
  EXPECT_EQ((a - b).micros(), 2'500'000);
  EXPECT_EQ((-b).micros(), -500'000);
}

TEST(Money, MulIsUnitTimesPrice) {
  const Money quantity = Money::from_double(2.5);
  const Money price = Money::from_double(0.4);
  EXPECT_EQ(quantity.mul(price), Money::from_double(1.0));
}

TEST(Money, MulTruncatesTowardZero) {
  const Money a = Money::from_micros(1);  // 1e-6
  const Money b = Money::from_micros(1);
  EXPECT_EQ(a.mul(b).micros(), 0);  // 1e-12 truncates to 0
}

TEST(Money, MulLargeValuesUse128Bit) {
  const Money big = Money::from_units(3'000'000);
  EXPECT_EQ(big.mul(big), Money::from_units(9'000'000ll * 1'000'000ll));
}

TEST(Money, Div) {
  EXPECT_EQ(Money::from_units(5).div(Money::from_units(2)), Money::from_double(2.5));
  EXPECT_EQ(Money::from_units(1).div(Money::from_units(3)).micros(), 333'333);
}

TEST(Money, Ordering) {
  EXPECT_LT(Money::from_double(0.1), Money::from_double(0.2));
  EXPECT_EQ(min(Money::from_units(1), Money::from_units(2)), Money::from_units(1));
  EXPECT_EQ(max(Money::from_units(1), Money::from_units(2)), Money::from_units(2));
}

TEST(Money, Str) {
  EXPECT_EQ(Money::from_double(1.25).str(), "1.250000");
  EXPECT_EQ(Money::from_micros(-500'000).str(), "-0.500000");
  EXPECT_EQ(kZeroMoney.str(), "0.000000");
}

TEST(Money, FromDoubleRounds) {
  EXPECT_EQ(Money::from_double(0.1234567).micros(), 123'457);
}

TEST(Outcome, ValueAndBottom) {
  Outcome<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.opt(), 7);

  Outcome<int> bad(Bottom{AbortReason::kEquivocationDetected, "x"});
  EXPECT_TRUE(bad.is_bottom());
  EXPECT_EQ(bad.bottom().reason, AbortReason::kEquivocationDetected);
  EXPECT_EQ(bad.opt(), std::nullopt);
}

TEST(Outcome, ReasonNames) {
  EXPECT_STREQ(abort_reason_name(AbortReason::kInputMismatch), "input-mismatch");
  EXPECT_STREQ(abort_reason_name(AbortReason::kTimeout), "timeout");
}

}  // namespace
}  // namespace dauct
