#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/money.hpp"
#include "common/outcome.hpp"

namespace dauct {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(BytesView(data)), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);  // uppercase accepted
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex(BytesView{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);   // odd length
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);    // non-hex
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(BytesView(a), BytesView(b)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(c)));
  EXPECT_FALSE(ct_equal(BytesView(a), BytesView(d)));
}

TEST(Bytes, StringConversions) {
  const Bytes b = to_bytes("hello");
  EXPECT_EQ(b.size(), 5u);
  EXPECT_EQ(to_string(BytesView(b)), "hello");
}

TEST(Bytes, Append) {
  Bytes dst = {1, 2};
  const Bytes src = {3, 4};
  append(dst, BytesView(src));
  EXPECT_EQ(dst, (Bytes{1, 2, 3, 4}));
}

TEST(Money, BasicArithmetic) {
  const Money a = Money::from_units(3);
  const Money b = Money::from_double(0.5);
  EXPECT_EQ((a + b).micros(), 3'500'000);
  EXPECT_EQ((a - b).micros(), 2'500'000);
  EXPECT_EQ((-b).micros(), -500'000);
}

TEST(Money, MulIsUnitTimesPrice) {
  const Money quantity = Money::from_double(2.5);
  const Money price = Money::from_double(0.4);
  EXPECT_EQ(quantity.mul(price), Money::from_double(1.0));
}

TEST(Money, MulTruncatesTowardZero) {
  const Money a = Money::from_micros(1);  // 1e-6
  const Money b = Money::from_micros(1);
  EXPECT_EQ(a.mul(b).micros(), 0);  // 1e-12 truncates to 0
}

TEST(Money, MulLargeValuesUse128Bit) {
  const Money big = Money::from_units(3'000'000);
  EXPECT_EQ(big.mul(big), Money::from_units(9'000'000ll * 1'000'000ll));
}

TEST(Money, Div) {
  EXPECT_EQ(Money::from_units(5).div(Money::from_units(2)), Money::from_double(2.5));
  EXPECT_EQ(Money::from_units(1).div(Money::from_units(3)).micros(), 333'333);
}

TEST(Money, Ordering) {
  EXPECT_LT(Money::from_double(0.1), Money::from_double(0.2));
  EXPECT_EQ(min(Money::from_units(1), Money::from_units(2)), Money::from_units(1));
  EXPECT_EQ(max(Money::from_units(1), Money::from_units(2)), Money::from_units(2));
}

TEST(Money, Str) {
  EXPECT_EQ(Money::from_double(1.25).str(), "1.250000");
  EXPECT_EQ(Money::from_micros(-500'000).str(), "-0.500000");
  EXPECT_EQ(kZeroMoney.str(), "0.000000");
}

TEST(Money, FromDoubleRounds) {
  EXPECT_EQ(Money::from_double(0.1234567).micros(), 123'457);
}

TEST(Outcome, ValueAndBottom) {
  Outcome<int> ok(7);
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 7);
  EXPECT_EQ(ok.opt(), 7);

  Outcome<int> bad(Bottom{AbortReason::kEquivocationDetected, "x"});
  EXPECT_TRUE(bad.is_bottom());
  EXPECT_EQ(bad.bottom().reason, AbortReason::kEquivocationDetected);
  EXPECT_EQ(bad.opt(), std::nullopt);
}

TEST(Outcome, ReasonNames) {
  EXPECT_STREQ(abort_reason_name(AbortReason::kInputMismatch), "input-mismatch");
  EXPECT_STREQ(abort_reason_name(AbortReason::kTimeout), "timeout");
}

}  // namespace
}  // namespace dauct
