// Equivalence-pinned harness for the multi-auction service plane
// (runtime/service_runtime.hpp).
//
// The contract under test, in order of strictness:
//  * identity — one instance routed through the service plane is
//    byte-identical to SimRuntime::run_distributed: same result digest, same
//    virtual makespan, same traffic, against the five golden fingerprints;
//  * twin equality — instance i of an N-instance run reaches the exact
//    result digest of a standalone run at derive_instance_seed(seed, i),
//    with and without the reliability / auth / WAL layers;
//  * isolation — a fault confined to instance t (deviation, crash window,
//    lossy link) must not perturb t±1's digest, and a ⊥ in one instance
//    leaves the pipeline live;
//  * pipelining — depth 2 clears the same workload at least 1.5× faster
//    than strictly sequential;
//  * boundedness — the global topic registry grows with pipeline slots and
//    generations, not with the number of instances served.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "adversary/provider_deviation.hpp"
#include "core/adapters.hpp"
#include "core/service_plane.hpp"
#include "crypto/sha256.hpp"
#include "net/topic.hpp"
#include "runtime/scenario.hpp"
#include "runtime/service_runtime.hpp"
#include "runtime/sim_runtime.hpp"
#include "serde/auction_codec.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

std::string digest_of(const auction::AuctionOutcome& outcome) {
  return testutil::outcome_digest(outcome);  // shared golden helper
}

std::unique_ptr<core::DistributedAuctioneer> make_auctioneer(
    std::size_t n, std::size_t m, std::size_t k, bool standard = false) {
  core::AuctioneerSpec spec;
  spec.m = m;
  spec.k = k;
  spec.num_bidders = n;
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (standard) {
    auction::StandardAuctionParams p;
    p.epsilon = 0.25;
    adapter = std::make_shared<core::StandardAuctionAdapter>(p);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  return std::make_unique<core::DistributedAuctioneer>(spec, adapter);
}

/// Instance i's true valuations — the same generator the scenario runner and
/// the CLI use: a fresh workload at the instance's derived seed.
std::vector<auction::AuctionInstance> derived_workloads(
    std::size_t n, std::size_t m, std::uint64_t base_seed, std::size_t count,
    bool standard = false) {
  std::vector<auction::AuctionInstance> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    out.push_back(testutil::make_instance(
        n, m, core::derive_instance_seed(base_seed, t), standard));
  }
  return out;
}

/// The standalone run instance t of a service run must be equivalent to.
runtime::SimRunResult run_twin(const runtime::SimRunConfig& base,
                               std::uint64_t derived_seed,
                               const core::DistributedAuctioneer& auctioneer,
                               const auction::AuctionInstance& workload) {
  runtime::SimRunConfig cfg = base;
  cfg.seed = derived_seed;
  cfg.faults.reset();
  cfg.deviations.clear();
  cfg.auth_adversary = {};
  return runtime::SimRuntime(cfg).run_distributed(auctioneer, workload);
}

// ---------------------------------------------------------------------------
// Identity: one instance through the service plane == SimRuntime, bytes.
// ---------------------------------------------------------------------------

TEST(ServiceEquivalence, SingleInstanceThroughServicePlanePinsEveryGoldenFingerprint) {
  for (const testutil::GoldenRun& g : testutil::kGoldenRuns) {
    SCOPED_TRACE("n=" + std::to_string(g.n) + " m=" + std::to_string(g.m) +
                 " k=" + std::to_string(g.k) + " seed=" + std::to_string(g.seed));
    const auto auctioneer = make_auctioneer(g.n, g.m, g.k, g.standard);
    const auto workload = testutil::make_instance(g.n, g.m, g.seed, g.standard);

    runtime::ServiceRunConfig svc;
    svc.base.seed = g.seed;
    svc.instances = 1;
    svc.pipeline_depth = 1;
    const auto run = runtime::ServiceRuntime(svc).run(
        *auctioneer, std::span<const auction::AuctionInstance>(&workload, 1));

    ASSERT_EQ(run.instances.size(), 1u);
    const runtime::InstanceRunResult& inst = run.instances[0];
    EXPECT_TRUE(inst.topic_prefix.empty());  // the identity path: bare topics
    EXPECT_EQ(inst.derived_seed, g.seed);    // derive_instance_seed(S, 0) == S
    EXPECT_TRUE(testutil::matches_golden_fingerprint(g, inst.outcome,
                                                     run.makespan, run.traffic));
  }
}

TEST(ServiceEquivalence, SingleInstanceIdentityHoldsWithEveryLayerEnabled) {
  // Reliability + batch auth + WAL all on: the service plane must still be
  // byte-identical to SimRuntime under the same configuration.
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workload = testutil::make_instance(12, 3, 99);

  runtime::SimRunConfig cfg;
  cfg.seed = 99;
  cfg.reliability.enable = true;
  cfg.auth.enable = true;
  cfg.auth.batch_verify = true;
  cfg.wal.enable = true;

  runtime::ServiceRunConfig svc;
  svc.base = cfg;
  svc.instances = 1;
  svc.pipeline_depth = 1;
  const auto service = runtime::ServiceRuntime(svc).run(
      *auctioneer, std::span<const auction::AuctionInstance>(&workload, 1));
  const auto direct = runtime::SimRuntime(cfg).run_distributed(*auctioneer, workload);

  ASSERT_EQ(service.instances.size(), 1u);
  ASSERT_TRUE(service.instances[0].outcome.ok());
  ASSERT_TRUE(direct.global_outcome.ok());
  EXPECT_EQ(digest_of(service.instances[0].outcome),
            digest_of(direct.global_outcome));
  EXPECT_EQ(service.makespan, direct.makespan);
  EXPECT_EQ(service.traffic.messages, direct.traffic.messages);
  EXPECT_EQ(service.traffic.bytes, direct.traffic.bytes);
}

// ---------------------------------------------------------------------------
// Twin equality: instance i of a multi-run == a standalone run at its
// derived seed.
// ---------------------------------------------------------------------------

TEST(ServiceEquivalence, EveryInstanceOfAMultiRunMatchesItsSingleRunTwin) {
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workloads = derived_workloads(12, 3, 99, 5);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 99;
  svc.instances = 5;
  svc.pipeline_depth = 2;
  const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);

  ASSERT_EQ(run.instances.size(), 5u);
  EXPECT_EQ(run.settled_ok, 5u);
  EXPECT_FALSE(run.stalled);
  for (const runtime::InstanceRunResult& inst : run.instances) {
    SCOPED_TRACE("instance " + std::to_string(inst.id));
    EXPECT_EQ(inst.derived_seed, core::derive_instance_seed(99, inst.id));
    ASSERT_TRUE(inst.settled);
    ASSERT_TRUE(inst.outcome.ok());
    const auto twin = run_twin(svc.base, inst.derived_seed, *auctioneer,
                               workloads[inst.id]);
    ASSERT_TRUE(twin.global_outcome.ok());
    EXPECT_EQ(digest_of(inst.outcome), digest_of(twin.global_outcome));
  }
}

TEST(ServiceEquivalence, TwinEqualityHoldsUnderEveryTransportLayerVariant) {
  struct Variant {
    const char* name;
    bool reliability, auth, auth_batch, wal;
  };
  const Variant variants[] = {
      {"reliability", true, false, false, false},
      {"auth-eager", false, true, false, false},
      {"auth-batch", false, true, true, false},
      {"wal", true, false, false, true},
  };
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workloads = derived_workloads(12, 3, 7, 4);
  for (const Variant& v : variants) {
    SCOPED_TRACE(v.name);
    runtime::ServiceRunConfig svc;
    svc.base.seed = 7;
    svc.base.reliability.enable = v.reliability;
    svc.base.auth.enable = v.auth;
    svc.base.auth.batch_verify = v.auth_batch;
    svc.base.wal.enable = v.wal;
    svc.instances = 4;
    svc.pipeline_depth = 2;
    const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);
    ASSERT_EQ(run.settled_ok, 4u);
    for (const runtime::InstanceRunResult& inst : run.instances) {
      SCOPED_TRACE("instance " + std::to_string(inst.id));
      ASSERT_TRUE(inst.outcome.ok());
      const auto twin = run_twin(svc.base, inst.derived_seed, *auctioneer,
                                 workloads[inst.id]);
      ASSERT_TRUE(twin.global_outcome.ok());
      EXPECT_EQ(digest_of(inst.outcome), digest_of(twin.global_outcome));
    }
    if (v.wal) EXPECT_GT(run.wal_stats.records_appended, 0u);
    if (v.auth) EXPECT_GT(run.auth_stats.signed_sends, 0u);
    if (v.reliability) EXPECT_GT(run.reliability_stats.tracked, 0u);
  }
}

// ---------------------------------------------------------------------------
// Isolation: faults confined to instance t leave t±1 byte-clean.
// ---------------------------------------------------------------------------

TEST(ServiceIsolation, EquivocatorConfinedToOneInstanceLeavesNeighborsClean) {
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workloads = derived_workloads(12, 3, 99, 4);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 99;
  svc.instances = 4;
  svc.pipeline_depth = 2;
  runtime::ServiceDeviation dev;
  dev.instance = 1;
  dev.node = 1;
  dev.strategy = adversary::equivocate_votes();
  svc.deviations.push_back(dev);
  const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);

  ASSERT_EQ(run.instances.size(), 4u);
  EXPECT_FALSE(run.instances[1].outcome.ok());  // the digest-echo check fires
  EXPECT_EQ(run.settled_ok, 3u);
  // ⊥ in instance 1 keeps the pipeline live: its settlement still launches
  // instance 3 into the freed slot.
  EXPECT_TRUE(run.instances[3].launched);
  EXPECT_TRUE(run.instances[3].settled);
  for (const core::InstanceId t : {0u, 2u, 3u}) {
    SCOPED_TRACE("instance " + std::to_string(t));
    const runtime::InstanceRunResult& inst = run.instances[t];
    ASSERT_TRUE(inst.outcome.ok());
    const auto twin = run_twin(svc.base, inst.derived_seed, *auctioneer,
                               workloads[t]);
    EXPECT_EQ(digest_of(inst.outcome), digest_of(twin.global_outcome));
  }
}

TEST(ServiceIsolation, LossyLinkConfinedToOneInstanceRetransmitsWithoutPerturbingOthers) {
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workloads = derived_workloads(12, 3, 99, 4);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 99;
  svc.base.reliability.enable = true;
  svc.instances = 4;
  svc.pipeline_depth = 2;
  sim::FaultPlan plan;
  plan.seed = 77;
  sim::LinkFault lossy;
  lossy.drop = 0.2;
  lossy.instance = 2;  // compiled to instance 2's topic prefix by the runtime
  plan.links.push_back(lossy);
  svc.base.faults = plan;
  const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);

  EXPECT_GE(run.fault_stats.link_dropped, 1u);   // the rule actually fired
  EXPECT_GE(run.reliability_stats.retransmits, 1u);  // and was repaired
  ASSERT_EQ(run.settled_ok, 4u);  // retransmits recover every loss
  for (const runtime::InstanceRunResult& inst : run.instances) {
    SCOPED_TRACE("instance " + std::to_string(inst.id));
    ASSERT_TRUE(inst.outcome.ok());
    const auto twin = run_twin(svc.base, inst.derived_seed, *auctioneer,
                               workloads[inst.id]);
    ASSERT_TRUE(twin.global_outcome.ok());
    EXPECT_EQ(digest_of(inst.outcome), digest_of(twin.global_outcome));
  }
}

TEST(ServiceIsolation, CrashWindowInsideOneEpochRecoversWithoutTouchingNeighbors) {
  // Strictly sequential pipeline: instance epochs tile the timeline, so a
  // crash-recover window placed inside instance 1's epoch is a *time*-scoped
  // fault that only instance 1's traffic can hit. The reliability layer
  // retransmits across the outage, so even instance 1 clears and matches its
  // twin.
  const auto auctioneer = make_auctioneer(12, 3, 1);
  const auto workloads = derived_workloads(12, 3, 99, 3);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 99;
  svc.base.reliability.enable = true;
  svc.instances = 3;
  svc.pipeline_depth = 1;
  sim::FaultPlan plan;
  plan.seed = 5;
  sim::CrashEvent crash;
  crash.node = 1;
  crash.at = sim::from_millis(30);
  crash.recover_at = sim::from_millis(40);
  plan.crashes.push_back(crash);
  svc.base.faults = plan;
  const auto run = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);

  // The window must actually bite: it sits inside instance 1's epoch (the
  // first epoch ends ~25 ms virtual at this size under the community model).
  ASSERT_EQ(run.instances.size(), 3u);
  EXPECT_GT(run.instances[1].launched_at, run.instances[0].launched_at);
  EXPECT_GE(run.fault_stats.crash_dropped, 1u);
  ASSERT_EQ(run.settled_ok, 3u);
  for (const runtime::InstanceRunResult& inst : run.instances) {
    SCOPED_TRACE("instance " + std::to_string(inst.id));
    ASSERT_TRUE(inst.outcome.ok());
    const auto twin = run_twin(svc.base, inst.derived_seed, *auctioneer,
                               workloads[inst.id]);
    EXPECT_EQ(digest_of(inst.outcome), digest_of(twin.global_outcome));
  }
}

TEST(ServiceIsolation, ShippedIsolationScenarioHoldsItsExpectations) {
  // The committed CI scenario is the same contract in declarative form:
  // equivocator in instance 1, lossy links in instance 2, three instances
  // clear and match twins, pipeline stays live.
  const auto text = testutil::slurp_file(
      std::filesystem::path(DAUCT_SCENARIO_DIR) / "multi_instance_faulty.scn");
  ASSERT_TRUE(text.has_value());
  const auto parsed = runtime::parse_scenario(*text);
  ASSERT_TRUE(parsed.ok()) << parsed.error;
  const auto run = runtime::run_scenario(*parsed.scenario);
  EXPECT_TRUE(run.ok()) << (run.failures.empty() ? "" : run.failures.front());
  ASSERT_TRUE(run.service.has_value());
  EXPECT_FALSE(run.service->instances[1].outcome.ok());
  EXPECT_TRUE(run.service->instances[3].settled);
  EXPECT_EQ(run.service->settled_ok, 3u);
}

// ---------------------------------------------------------------------------
// Pipelining: overlap must actually buy throughput.
// ---------------------------------------------------------------------------

TEST(ServicePipeline, DepthTwoClearsAtLeastOneAndAHalfTimesFasterThanSequential) {
  const auto auctioneer = make_auctioneer(48, 4, 1);
  const auto workloads = derived_workloads(48, 4, 5, 6);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 5;
  svc.instances = 6;
  svc.pipeline_depth = 1;
  const auto sequential = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);
  svc.pipeline_depth = 2;
  const auto pipelined = runtime::ServiceRuntime(svc).run(*auctioneer, workloads);

  ASSERT_EQ(sequential.settled_ok, 6u);
  ASSERT_EQ(pipelined.settled_ok, 6u);
  // Same results either way — pipelining reshuffles time, not outcomes.
  for (std::size_t t = 0; t < 6; ++t) {
    EXPECT_EQ(digest_of(sequential.instances[t].outcome),
              digest_of(pipelined.instances[t].outcome));
  }
  EXPECT_GE(pipelined.auctions_per_vsec(),
            1.5 * sequential.auctions_per_vsec());
}

// ---------------------------------------------------------------------------
// Boundedness: the global topic registry is O(slots · generations · topics),
// independent of how many instances the service clears.
// ---------------------------------------------------------------------------

TEST(ServiceTopics, RegistryGrowthIsBoundedByPipelineSlotsNotInstanceCount) {
  // Auth off: without signing, generation tags cycle (mod 4), so instance 6
  // and instance 600 intern the *same* prefixed strings. Run 6 instances,
  // snapshot the process-wide registry, then run 12 more: the second run
  // must intern nothing new.
  const auto auctioneer = make_auctioneer(8, 3, 1);

  runtime::ServiceRunConfig svc;
  svc.base.seed = 1;
  svc.pipeline_depth = 1;
  svc.instances = 6;
  (void)runtime::ServiceRuntime(svc).run(*auctioneer,
                                         derived_workloads(8, 3, 1, 6));
  const std::size_t after_six = net::topic_registry_size();

  svc.instances = 12;
  const auto run = runtime::ServiceRuntime(svc).run(
      *auctioneer, derived_workloads(8, 3, 1, 12));
  ASSERT_EQ(run.settled_ok, 12u);
  EXPECT_EQ(net::topic_registry_size(), after_six)
      << "doubling the instance count must not grow the interned-topic "
         "registry: scoped names are keyed by (pipeline slot, generation "
         "cycle), both bounded";
}

// ---------------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------------

TEST(ServiceSeeds, DerivationIsStableInstanceZeroIsTheBaseSeed) {
  EXPECT_EQ(core::derive_instance_seed(99, 0), 99u);
  // Pinned: twin reproducibility depends on this function never changing.
  EXPECT_EQ(core::derive_instance_seed(99, 1), 13671838974969002241ull);
  std::vector<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 8; ++i) {
    const std::uint64_t s = core::derive_instance_seed(99, i);
    for (const std::uint64_t prev : seen) EXPECT_NE(s, prev);
    seen.push_back(s);
  }
}

TEST(ServiceSeeds, DerivationIsInjectiveAcrossBaseSeedsWithinBounds) {
  // Property sweep well past the fuzzer's max_instances cap: every
  // (base_seed, instance) pair must get a distinct derived seed — a
  // collision would hand two instances identical workloads AND coin
  // streams, silently correlating runs the oracle treats as independent.
  // Instance 0 stays the identity for every base seed (the property the
  // single-instance golden byte-identity rests on).
  std::set<std::uint64_t> seen;
  std::size_t pairs = 0;
  for (const std::uint64_t base :
       {std::uint64_t{1}, std::uint64_t{7}, std::uint64_t{99},
        std::uint64_t{123456789}, ~std::uint64_t{0}}) {
    EXPECT_EQ(core::derive_instance_seed(base, 0), base);
    for (std::uint64_t i = 0; i < 64; ++i) {
      EXPECT_TRUE(seen.insert(core::derive_instance_seed(base, i)).second)
          << "collision at base " << base << ", instance " << i;
      ++pairs;
    }
  }
  EXPECT_EQ(seen.size(), pairs);
}

TEST(ServiceTopics, PrefixIsInjectiveOverSlotAndGeneration) {
  // (slot, generation) → "i<slot>g<gen>/" must be injective across every
  // pair the runtime can mint (slots < pipeline depth, generations < the
  // cycle — swept far past both caps): a collision would demultiplex a
  // straggler frame from a settled instance into its slot's next tenant.
  // The trailing '/' keeps prefix-scoping exact: no minted prefix may be a
  // prefix of a different one ("i1g2/" vs "i1g22/").
  std::set<std::string> seen;
  std::vector<std::string> all;
  for (std::size_t slot = 0; slot < 24; ++slot) {
    for (std::uint64_t gen = 0; gen < 24; ++gen) {
      const std::string p = core::instance_topic_prefix(slot, gen);
      EXPECT_TRUE(seen.insert(p).second) << "collision: " << p;
      all.push_back(p);
    }
  }
  EXPECT_EQ(seen.size(), 24u * 24u);
  for (const std::string& a : all) {
    for (const std::string& b : all) {
      if (a == b) continue;
      EXPECT_NE(b.substr(0, a.size()), a)
          << "'" << a << "' is a prefix of '" << b
          << "' — instance-scoped rules would leak across tenants";
    }
  }
}

}  // namespace
}  // namespace dauct
