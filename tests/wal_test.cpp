// Write-ahead-log unit tests: CRC framing, record codecs, and — the part
// that earns the "durable" in durable provider state — damage recovery.
// Every corruption an interrupted append or decaying disk can leave behind
// (truncated tail, torn mid-record, bit-flipped body/CRC/length, empty file)
// must recover to exactly the last good record, never fewer, never garbage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>

#include "store/wal.hpp"

namespace dauct::store {
namespace {

WalMeta sample_meta() {
  WalMeta m;
  m.run_seed = 7;
  m.node = 2;
  m.providers = 5;
  m.users = 12;
  m.k = 2;
  m.endpoint_seed = 0xfeedbeef;
  return m;
}

// ---------------------------------------------------------------------------
// crc32 + record codecs
// ---------------------------------------------------------------------------

TEST(WalCrc, MatchesTheIeeeCheckValue) {
  // The standard check vector for CRC-32/IEEE: crc("123456789") = 0xCBF43926.
  const Bytes data{'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(BytesView(data)), 0xCBF43926u);
  EXPECT_EQ(crc32(BytesView()), 0u);
}

TEST(WalCodec, MetaRoundTripsAndRejectsTrailingBytes) {
  const WalMeta m = sample_meta();
  Bytes enc = encode_meta(m);
  const auto dec = decode_meta(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, m);
  enc.push_back(0);  // trailing byte: defensive decode must refuse
  EXPECT_FALSE(decode_meta(BytesView(enc)).has_value());
  EXPECT_FALSE(decode_meta(BytesView(enc.data(), 3)).has_value());
}

TEST(WalCodec, MessageRoundTripsWithEmptyAndBinaryPayloads) {
  const Bytes payload{0x00, 0xff, 0x7f, 0x80};
  const Bytes enc = encode_message(3, "blk/bids", BytesView(payload));
  const auto dec = decode_message(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->from, 3u);
  EXPECT_EQ(dec->topic, "blk/bids");
  EXPECT_EQ(dec->payload, payload);

  const Bytes empty = encode_message(0, "", BytesView());
  const auto dec2 = decode_message(BytesView(empty));
  ASSERT_TRUE(dec2.has_value());
  EXPECT_TRUE(dec2->topic.empty());
  EXPECT_TRUE(dec2->payload.empty());
}

TEST(WalCodec, DecisionRoundTripsAndValidatesKindAndSignatureLength) {
  Decision d;
  d.kind = DecisionKind::kOutcome;
  d.ok = true;
  d.digest.fill(0xab);
  d.signature.assign(64, 0x11);
  const Bytes enc = encode_decision(d);
  const auto dec = decode_decision(BytesView(enc));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->kind, DecisionKind::kOutcome);
  EXPECT_TRUE(dec->ok);
  EXPECT_EQ(dec->digest, d.digest);
  EXPECT_EQ(dec->signature, d.signature);

  Bytes bad_kind = enc;
  bad_kind[0] = 9;  // unknown decision kind
  EXPECT_FALSE(decode_decision(BytesView(bad_kind)).has_value());

  Decision short_sig = d;
  short_sig.signature.assign(10, 0x22);  // neither empty nor 64 bytes
  EXPECT_FALSE(decode_decision(BytesView(encode_decision(short_sig))).has_value());
}

TEST(WalCodec, SnapshotRoundTrips) {
  Snapshot s;
  s.messages_delivered = 17;
  s.started = true;
  s.bids_agreed = true;
  s.done = false;
  const auto dec = decode_snapshot(BytesView(encode_snapshot(s)));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(dec->messages_delivered, 17u);
  EXPECT_TRUE(dec->started);
  EXPECT_TRUE(dec->bids_agreed);
  EXPECT_FALSE(dec->done);
}

// ---------------------------------------------------------------------------
// scan + damage recovery (satellite: corruption matrix)
// ---------------------------------------------------------------------------

/// A log with meta + `messages` message records; returns per-record end
/// offsets so tests can aim corruption at exact byte positions.
struct BuiltLog {
  std::shared_ptr<MemStorage> mem;
  std::vector<std::size_t> record_ends;
};

BuiltLog build_log(std::size_t messages) {
  BuiltLog out;
  out.mem = std::make_shared<MemStorage>();
  Wal wal(out.mem);
  wal.open();
  EXPECT_TRUE(wal.append(RecordType::kMeta, BytesView(encode_meta(sample_meta()))));
  out.record_ends.push_back(out.mem->size());
  for (std::size_t i = 0; i < messages; ++i) {
    const Bytes payload(5 + i, static_cast<std::uint8_t>(i));
    EXPECT_TRUE(wal.append_message_record(1, "blk/bids", BytesView(payload)));
    out.record_ends.push_back(out.mem->size());
  }
  EXPECT_TRUE(wal.commit());
  return out;
}

TEST(WalScanTest, EmptyLogIsCleanAndReplaysNothing) {
  auto mem = std::make_shared<MemStorage>();
  Wal wal(mem);
  const WalScan scan = wal.open();
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.good_bytes, 0u);
  EXPECT_EQ(scan.truncated_bytes, 0u);
  EXPECT_EQ(wal.message_records(), 0u);
}

TEST(WalScanTest, CleanLogRecoversEveryRecordInOrder) {
  const BuiltLog log = build_log(3);
  Wal wal(log.mem);
  const WalScan scan = wal.open();
  ASSERT_EQ(scan.records.size(), 4u);
  EXPECT_EQ(scan.records[0].type, RecordType::kMeta);
  EXPECT_EQ(scan.truncated_bytes, 0u);
  EXPECT_EQ(wal.message_records(), 3u);
  for (std::size_t i = 1; i < 4; ++i) {
    const auto msg = decode_message(BytesView(scan.records[i].payload));
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload.size(), 5 + (i - 1));
  }
}

TEST(WalScanTest, TruncatedTailRecoversToTheLastGoodRecord) {
  // Chop anywhere inside the final record — every cut point must yield
  // exactly the first two records and truncate the storage to their end.
  const BuiltLog reference = build_log(2);
  const std::size_t second_end = reference.record_ends[1];
  const std::size_t full = reference.record_ends[2];
  for (std::size_t cut = second_end + 1; cut < full; ++cut) {
    const BuiltLog log = build_log(2);
    log.mem->truncate(cut);
    Wal wal(log.mem);
    const WalScan scan = wal.open();
    ASSERT_EQ(scan.records.size(), 2u) << "cut at byte " << cut;
    EXPECT_EQ(scan.good_bytes, second_end);
    EXPECT_EQ(scan.truncated_bytes, cut - second_end);
    EXPECT_EQ(log.mem->size(), second_end) << "open() must truncate the tail";
    EXPECT_EQ(wal.stats().truncated_bytes, cut - second_end);
  }
}

TEST(WalScanTest, TornMidRecordThenAppendYieldsACleanLog) {
  // The interrupted-append lifecycle: tear the last record, reopen (tail
  // dropped), append a replacement, and the log must scan clean again.
  const BuiltLog log = build_log(2);
  log.mem->truncate(log.record_ends[1] + 3);
  Wal wal(log.mem);
  EXPECT_EQ(wal.open().records.size(), 2u);
  EXPECT_TRUE(wal.append_message_record(2, "blk/votes", BytesView()));
  EXPECT_TRUE(wal.commit());

  Wal reread(log.mem);
  const WalScan scan = reread.open();
  ASSERT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.truncated_bytes, 0u);
  const auto msg = decode_message(BytesView(scan.records[2].payload));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->topic, "blk/votes");
}

TEST(WalScanTest, BitFlipAnywhereInARecordInvalidatesItButKeepsThePrefix) {
  // Flip one bit at every byte of the third record (length, type, payload,
  // CRC): the scan must stop after the second record every time.
  const BuiltLog reference = build_log(3);
  const std::size_t third_start = reference.record_ends[1];
  const std::size_t third_end = reference.record_ends[2];
  for (std::size_t off = third_start; off < third_end; ++off) {
    const BuiltLog log = build_log(3);
    log.mem->corrupt_byte(off);
    const WalScan scan = scan_wal(BytesView(log.mem->read_all()));
    ASSERT_EQ(scan.records.size(), 2u) << "bit flip at byte " << off;
    EXPECT_EQ(scan.good_bytes, third_start);
  }
}

TEST(WalScanTest, OversizedOrZeroLengthPrefixStopsTheScan) {
  Bytes data(8, 0);
  data[0] = 0xff; data[1] = 0xff; data[2] = 0xff; data[3] = 0x7f;  // huge len
  EXPECT_TRUE(scan_wal(BytesView(data)).records.empty());
  Bytes zero(8, 0);  // len = 0: not a record
  EXPECT_TRUE(scan_wal(BytesView(zero)).records.empty());
}

TEST(WalScanTest, UnknownRecordTypeStopsTheScanEvenWithAValidCrc) {
  const BuiltLog log = build_log(1);
  Wal wal(log.mem);
  wal.open();
  // A well-formed record of a future type: CRC passes, replay must not.
  EXPECT_TRUE(wal.append(static_cast<RecordType>(9), BytesView()));
  const WalScan scan = scan_wal(BytesView(log.mem->read_all()));
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_GT(scan.truncated_bytes, 0u);
}

// ---------------------------------------------------------------------------
// meta gate
// ---------------------------------------------------------------------------

TEST(WalMetaGate, EachIdentityFieldProducesItsOwnDiagnostic) {
  const WalMeta expected = sample_meta();
  std::string why;
  EXPECT_TRUE(meta_matches(expected, expected, &why));

  WalMeta seed = expected;
  seed.run_seed = 8;
  EXPECT_FALSE(meta_matches(seed, expected, &why));
  EXPECT_NE(why.find("run seed"), std::string::npos);

  WalMeta node = expected;
  node.node = 0;
  EXPECT_FALSE(meta_matches(node, expected, &why));
  EXPECT_NE(why.find("node"), std::string::npos);

  WalMeta shape = expected;
  shape.providers = 3;
  EXPECT_FALSE(meta_matches(shape, expected, &why));
  EXPECT_NE(why.find("deployment shape"), std::string::npos);

  WalMeta version = expected;
  version.version = 2;
  EXPECT_FALSE(meta_matches(version, expected, &why));
  EXPECT_NE(why.find("version"), std::string::npos);

  WalMeta eps = expected;
  eps.endpoint_seed = 1;
  EXPECT_FALSE(meta_matches(eps, expected, &why));
  EXPECT_NE(why.find("endpoint seed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FileStorage: the real-disk sink behind the tcp runtime
// ---------------------------------------------------------------------------

TEST(WalFileStorage, PersistsAcrossReopenAndTruncatesDamage) {
  const std::string path = testing::TempDir() + "/wal_file_test.wal";
  std::remove(path.c_str());
  {
    auto file = FileStorage::open(path);
    ASSERT_NE(file, nullptr);
    Wal wal(std::shared_ptr<Storage>(std::move(file)));
    wal.open();
    ASSERT_TRUE(wal.append(RecordType::kMeta, BytesView(encode_meta(sample_meta()))));
    ASSERT_TRUE(wal.append_message_record(1, "blk/bids", BytesView(Bytes{1, 2, 3})));
    ASSERT_TRUE(wal.commit());
  }
  // Simulate a torn append: garbage past the last committed record.
  {
    auto file = FileStorage::open(path);
    ASSERT_NE(file, nullptr);
    ASSERT_TRUE(file->append(BytesView(Bytes{0x10, 0x00, 0x00, 0x00, 0xde, 0xad})));
    ASSERT_TRUE(file->sync());
  }
  {
    auto file = FileStorage::open(path);
    ASSERT_NE(file, nullptr);
    auto shared = std::shared_ptr<Storage>(std::move(file));
    Wal wal(shared);
    const WalScan scan = wal.open();
    ASSERT_EQ(scan.records.size(), 2u);
    EXPECT_EQ(scan.truncated_bytes, 6u);
    EXPECT_EQ(wal.message_records(), 1u);
    // The truncation is durable: a third open sees a clean file.
    EXPECT_EQ(scan_wal(BytesView(shared->read_all())).truncated_bytes, 0u);
    const auto meta = decode_meta(BytesView(scan.records[0].payload));
    ASSERT_TRUE(meta.has_value());
    EXPECT_TRUE(meta_matches(*meta, sample_meta()));
  }
  std::remove(path.c_str());
}

TEST(WalFileStorage, OpenFailsCleanlyOnAnUnwritablePath) {
  EXPECT_EQ(FileStorage::open("/nonexistent-dir/x/y.wal"), nullptr);
}

// ---------------------------------------------------------------------------
// FaultyStorage: the seeded lying-disk decorator
// ---------------------------------------------------------------------------

StorageFaultConfig faulty(double sync_drop, double torn, double flip,
                          std::uint64_t seed = 42) {
  StorageFaultConfig cfg;
  cfg.enable = true;
  cfg.seed = seed;
  cfg.sync_drop = sync_drop;
  cfg.torn = torn;
  cfg.flip = flip;
  return cfg;
}

TEST(FaultyStorageTest, ZeroRatesAreATransparentPassThrough) {
  auto mem = std::make_shared<MemStorage>();
  FaultyStorage disk(mem, faulty(0.0, 0.0, 0.0));
  const Bytes a(10, 0xaa);
  const Bytes b(6, 0xbb);
  EXPECT_TRUE(disk.append(BytesView(a)));
  EXPECT_TRUE(disk.sync());
  EXPECT_EQ(disk.synced_bytes(), a.size());
  EXPECT_TRUE(disk.append(BytesView(b)));
  disk.crash();  // at-risk suffix exists, but torn and flip both lose the draw
  Bytes expect = a;
  expect.insert(expect.end(), b.begin(), b.end());
  EXPECT_EQ(mem->read_all(), expect);
  EXPECT_EQ(disk.stats().syncs_dropped, 0u);
  EXPECT_EQ(disk.stats().crashes, 1u);
  EXPECT_EQ(disk.stats().torn_bytes, 0u);
  EXPECT_EQ(disk.stats().flipped_bytes, 0u);
}

TEST(FaultyStorageTest, DroppedSyncReportsSuccessButMovesNoFrontier) {
  auto mem = std::make_shared<MemStorage>();
  FaultyStorage disk(mem, faulty(1.0, 0.0, 0.0));
  EXPECT_TRUE(disk.append(BytesView(Bytes(8, 0x11))));
  EXPECT_TRUE(disk.sync());  // the lie: true, yet nothing became durable
  EXPECT_EQ(disk.synced_bytes(), 0u);
  EXPECT_EQ(disk.stats().syncs_dropped, 1u);
  // The bytes themselves are still readable — only durability was lost.
  EXPECT_EQ(mem->read_all().size(), 8u);
}

TEST(FaultyStorageTest, CrashTearsOnlyTheAtRiskSuffix) {
  auto mem = std::make_shared<MemStorage>();
  FaultyStorage disk(mem, faulty(0.0, 1.0, 0.0));
  const Bytes synced(16, 0xcc);
  EXPECT_TRUE(disk.append(BytesView(synced)));
  EXPECT_TRUE(disk.sync());
  EXPECT_TRUE(disk.append(BytesView(Bytes(24, 0xdd))));
  disk.crash();
  const Bytes after = mem->read_all();
  // Everything up to the durable frontier is untouchable; the tail shrank.
  ASSERT_GE(after.size(), synced.size());
  EXPECT_LT(after.size(), synced.size() + 24u);
  EXPECT_TRUE(std::equal(synced.begin(), synced.end(), after.begin()));
  EXPECT_EQ(disk.stats().torn_bytes, synced.size() + 24u - after.size());
  EXPECT_GT(disk.stats().torn_bytes, 0u);
}

TEST(FaultyStorageTest, CrashBitFlipChangesExactlyOneSuffixByte) {
  auto mem = std::make_shared<MemStorage>();
  FaultyStorage disk(mem, faulty(0.0, 0.0, 1.0));
  const Bytes synced(16, 0xcc);
  EXPECT_TRUE(disk.append(BytesView(synced)));
  EXPECT_TRUE(disk.sync());
  EXPECT_TRUE(disk.append(BytesView(Bytes(24, 0xdd))));
  const Bytes before = mem->read_all();
  disk.crash();
  const Bytes after = mem->read_all();
  ASSERT_EQ(after.size(), before.size());
  std::size_t diffs = 0;
  std::size_t diff_at = 0;
  for (std::size_t i = 0; i < after.size(); ++i) {
    if (after[i] != before[i]) {
      ++diffs;
      diff_at = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_GE(diff_at, synced.size());  // never inside the durable prefix
  EXPECT_EQ(after[diff_at], static_cast<std::uint8_t>(before[diff_at] ^ 0x40));
  EXPECT_EQ(disk.stats().flipped_bytes, 1u);
}

TEST(FaultyStorageTest, SameSeedReplaysTheSameDamage) {
  const auto run_once = [](std::uint64_t seed) {
    auto mem = std::make_shared<MemStorage>();
    FaultyStorage disk(mem, faulty(0.5, 0.6, 0.4, seed));
    for (int i = 0; i < 6; ++i) {
      disk.append(BytesView(Bytes(11 + i, static_cast<std::uint8_t>(i))));
      disk.sync();
    }
    disk.crash();
    return mem->read_all();
  };
  EXPECT_EQ(run_once(9), run_once(9));
}

TEST(FaultyStorageTest, WalRecoversACleanPrefixAfterTornCrash) {
  // End-to-end with the log layer: every commit lied, the crash tore the
  // whole at-risk region mid-record — Wal::open must still come back with a
  // valid (possibly empty) prefix of the original records, never garbage.
  auto mem = std::make_shared<MemStorage>();
  auto disk =
      std::make_shared<FaultyStorage>(mem, faulty(1.0, 1.0, 0.0, 7));
  {
    Wal wal(disk);
    wal.open();
    ASSERT_TRUE(
        wal.append(RecordType::kMeta, BytesView(encode_meta(sample_meta()))));
    for (std::size_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(wal.append_message_record(
          1, "blk/bids", BytesView(Bytes(20 + i, static_cast<std::uint8_t>(i)))));
    }
    ASSERT_TRUE(wal.commit());  // dropped: frontier stays at 0
  }
  disk->crash();
  EXPECT_GT(disk->stats().torn_bytes, 0u);

  Wal recovered(mem);
  const WalScan scan = recovered.open();
  EXPECT_LT(scan.records.size(), 5u);  // something was really lost
  if (!scan.records.empty()) {
    // Whatever survived is the original prefix, starting with intact meta.
    EXPECT_EQ(scan.records[0].type, RecordType::kMeta);
    const auto meta = decode_meta(BytesView(scan.records[0].payload));
    ASSERT_TRUE(meta.has_value());
    EXPECT_TRUE(meta_matches(*meta, sample_meta()));
  }
  // Recovery truncated the torn tail durably: a re-open is clean.
  EXPECT_EQ(scan_wal(BytesView(mem->read_all())).truncated_bytes, 0u);
}

}  // namespace
}  // namespace dauct::store
