// Cross-cutting coverage: threaded standard auction (task transfers under
// real concurrency), outcome combination edge cases, allocation bookkeeping,
// bid limits, and the log sink.
#include <gtest/gtest.h>

#include "common/log.hpp"
#include "core/adapters.hpp"
#include "runtime/thread_runtime.hpp"
#include "test_util.hpp"

namespace dauct {
namespace {

TEST(ThreadRuntimeStandard, ParallelPaymentGroupsUnderRealThreads) {
  // The standard auction exercises data transfers between provider groups;
  // run it on real threads to shake out concurrency bugs in the engine path.
  const auto instance = testutil::make_instance(10, 5, 31, /*standard=*/true);
  core::AuctioneerSpec spec;
  spec.m = 5;
  spec.k = 1;
  spec.num_bidders = 10;
  auction::StandardAuctionParams params;
  params.use_exact = true;
  core::DistributedAuctioneer auctioneer(
      spec, std::make_shared<core::StandardAuctionAdapter>(params));

  runtime::ThreadRunConfig cfg;
  const auto run = runtime::ThreadRuntime(cfg).run_distributed(auctioneer, instance);
  ASSERT_FALSE(run.timed_out);
  ASSERT_TRUE(run.global_outcome.ok())
      << abort_reason_name(run.global_outcome.bottom().reason);
  EXPECT_EQ(run.global_outcome.value(),
            auctioneer.adapter().run_centralized(instance, 0));
}

TEST(CombineOutcomes, EmptyIsBottom) {
  EXPECT_TRUE(core::combine_outcomes({}).is_bottom());
}

TEST(CombineOutcomes, AnyBottomWins) {
  auction::AuctionResult r;
  r.payments.user_payments = {Money::from_units(1)};
  std::vector<auction::AuctionOutcome> outs = {
      auction::AuctionOutcome(r),
      auction::AuctionOutcome(Bottom{AbortReason::kTransferMismatch, "x"}),
      auction::AuctionOutcome(r),
  };
  const auto combined = core::combine_outcomes(std::span(outs));
  ASSERT_TRUE(combined.is_bottom());
  EXPECT_EQ(combined.bottom().reason, AbortReason::kTransferMismatch);
}

TEST(CombineOutcomes, DivergentResultsAreBottom) {
  auction::AuctionResult a, b;
  a.payments.user_payments = {Money::from_units(1)};
  b.payments.user_payments = {Money::from_units(2)};
  std::vector<auction::AuctionOutcome> outs = {auction::AuctionOutcome(a),
                                               auction::AuctionOutcome(b)};
  const auto combined = core::combine_outcomes(std::span(outs));
  ASSERT_TRUE(combined.is_bottom());
  EXPECT_EQ(combined.bottom().reason, AbortReason::kOutputMismatch);
}

TEST(CombineOutcomes, UnanimousValuePasses) {
  auction::AuctionResult r;
  r.allocation.add(0, 1, Money::from_units(2));
  std::vector<auction::AuctionOutcome> outs(3, auction::AuctionOutcome(r));
  const auto combined = core::combine_outcomes(std::span(outs));
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined.value(), r);
}

TEST(Allocation, MergesAndCancels) {
  auction::Allocation x;
  x.add(1, 2, Money::from_units(3));
  x.add(1, 2, Money::from_units(4));
  EXPECT_EQ(x.amount(1, 2), Money::from_units(7));
  x.add(1, 2, Money::from_units(-7));
  EXPECT_TRUE(x.amount(1, 2).is_zero());
  EXPECT_TRUE(x.empty());  // zeroed entries are removed
}

TEST(Allocation, ZeroAddIsNoop) {
  auction::Allocation x;
  x.add(0, 0, kZeroMoney);
  EXPECT_TRUE(x.empty());
  EXPECT_TRUE(x.is_canonical());
}

TEST(Allocation, TotalsAcrossAxes) {
  auction::Allocation x;
  x.add(0, 0, Money::from_units(1));
  x.add(0, 1, Money::from_units(2));
  x.add(1, 1, Money::from_units(4));
  EXPECT_EQ(x.allocated_to(0), Money::from_units(3));
  EXPECT_EQ(x.allocated_at(1), Money::from_units(6));
  EXPECT_EQ(x.total(), Money::from_units(7));
}

TEST(BidLimits, ValidityRules) {
  auction::BidLimits limits;
  limits.max_unit_value = Money::from_units(10);
  limits.max_demand = Money::from_units(5);
  EXPECT_TRUE(limits.valid({0, Money::from_units(10), Money::from_units(5)}));
  EXPECT_TRUE(limits.valid(auction::neutral_bid(3)));  // neutral is valid
  EXPECT_FALSE(limits.valid({0, Money::from_units(11), Money::from_units(1)}));
  EXPECT_FALSE(limits.valid({0, Money::from_units(1), Money::from_units(6)}));
  EXPECT_FALSE(limits.valid({0, Money::from_micros(-1), Money::from_units(1)}));
  EXPECT_FALSE(limits.valid({0, Money::from_units(1), Money::from_micros(-1)}));
}

TEST(Log, SinkCapturesAboveLevel) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  const LogLevel before = log_level();
  set_log_level(LogLevel::kInfo);

  DAUCT_DEBUG("hidden " << 1);
  DAUCT_INFO("shown " << 2);
  DAUCT_ERROR("also " << 3);

  set_log_level(before);
  set_log_sink(nullptr);

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_EQ(captured[0].second, "shown 2");
  EXPECT_EQ(captured[1].second, "also 3");
}

TEST(Utilities, BottomOutcomeYieldsZeroUtility) {
  const auto instance = testutil::make_instance(4, 2, 1);
  const auction::AuctionOutcome bottom(Bottom{AbortReason::kCascaded, ""});
  for (BidderId i = 0; i < 4; ++i) {
    EXPECT_EQ(auction::user_utility(instance, bottom, i), kZeroMoney);
  }
  for (NodeId j = 0; j < 2; ++j) {
    EXPECT_EQ(auction::provider_utility(instance, bottom, j), kZeroMoney);
  }
}

TEST(Feasibility, CatchesViolations) {
  const auto instance = testutil::make_instance(3, 2, 9);
  auction::Allocation over_demand;
  over_demand.add(0, 0, instance.bids[0].demand + Money::from_micros(1));
  EXPECT_FALSE(auction::is_feasible(instance, over_demand));

  auction::Allocation over_capacity;
  over_capacity.add(0, 0, instance.asks[0].capacity + Money::from_units(1));
  EXPECT_FALSE(auction::is_feasible(instance, over_capacity));

  auction::Allocation bad_ids;
  bad_ids.add(99, 0, Money::from_micros(1));
  EXPECT_FALSE(auction::is_feasible(instance, bad_ids));

  EXPECT_TRUE(auction::is_feasible(instance, auction::Allocation{}));
}

}  // namespace
}  // namespace dauct
