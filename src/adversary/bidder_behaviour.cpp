#include "adversary/bidder_behaviour.hpp"

namespace dauct::adversary {

namespace {

class Honest final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId,
                                      crypto::Rng&) const override {
    return true_bid;
  }
};

class Silent final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid&, NodeId,
                                      crypto::Rng&) const override {
    return std::nullopt;
  }
};

class Equivocating final : public BidderBehaviour {
 public:
  explicit Equivocating(NodeId split) : split_(split) {}

  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId provider,
                                      crypto::Rng&) const override {
    if (provider < split_) return true_bid;
    auction::Bid forged = true_bid;
    forged.unit_value = forged.unit_value + forged.unit_value;  // doubled
    return forged;
  }

 private:
  NodeId split_;
};

class Invalid final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId,
                                      crypto::Rng&) const override {
    auction::Bid bad = true_bid;
    bad.unit_value = Money::from_micros(-1);  // negative value: never valid
    return bad;
  }
};

class Random final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId,
                                      crypto::Rng& rng) const override {
    auction::Bid b = true_bid;
    b.unit_value = rng.next_money(kZeroMoney, Money::from_units(2));
    b.demand = rng.next_money_positive(Money::from_units(1));
    return b;
  }
};

}  // namespace

std::shared_ptr<BidderBehaviour> honest_bidder() { return std::make_shared<Honest>(); }
std::shared_ptr<BidderBehaviour> silent_bidder() { return std::make_shared<Silent>(); }
std::shared_ptr<BidderBehaviour> equivocating_bidder(NodeId split) {
  return std::make_shared<Equivocating>(split);
}
std::shared_ptr<BidderBehaviour> invalid_bidder() { return std::make_shared<Invalid>(); }
std::shared_ptr<BidderBehaviour> random_bidder() { return std::make_shared<Random>(); }

}  // namespace dauct::adversary
