// Scriptable bidder behaviours (§3.2: "bidders may adopt arbitrary
// behaviours such as submitting different bids to different providers or not
// submitting a bid").
//
// A behaviour decides, per provider, what bid (if any) bidder i submits.
// The runtimes use the behaviour when injecting the client traffic; the
// framework must tolerate every behaviour here (Definition 1: the outcome
// must still match A on a vector containing the correct bidders' bids).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "auction/types.hpp"
#include "crypto/rng.hpp"

namespace dauct::adversary {

class BidderBehaviour {
 public:
  virtual ~BidderBehaviour() = default;

  /// The bid sent to `provider`; std::nullopt = nothing arrives by the
  /// deadline (the provider substitutes the neutral bid).
  virtual std::optional<auction::Bid> bid_for(const auction::Bid& true_bid,
                                              NodeId provider,
                                              crypto::Rng& rng) const = 0;
};

/// Sends the true bid to every provider.
std::shared_ptr<BidderBehaviour> honest_bidder();

/// Sends nothing to anyone (deadline miss everywhere).
std::shared_ptr<BidderBehaviour> silent_bidder();

/// Sends the true bid to providers < `split`, and a perturbed bid (value
/// doubled) to the rest — the canonical equivocation.
std::shared_ptr<BidderBehaviour> equivocating_bidder(NodeId split);

/// Sends an out-of-limits bid to every provider (invalid → neutral).
std::shared_ptr<BidderBehaviour> invalid_bidder();

/// Sends an independently random bid to every provider (the "malicious
/// bidder with uniformly distributed bids" of §4.1's analysis).
std::shared_ptr<BidderBehaviour> random_bidder();

/// Per-bidder overrides; bidders not in the map behave honestly.
using BidderScript = std::map<BidderId, std::shared_ptr<BidderBehaviour>>;

}  // namespace dauct::adversary
