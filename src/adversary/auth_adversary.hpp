// Network-level adversaries against the signing layer.
//
// The deviation strategies (provider_deviation.hpp) model a *compromised
// provider* — it tampers above the signer, so its output is validly signed
// with its own key (the stolen-key equivocator). This file models the other
// threat: an adversary *on the wire* who cannot sign as anyone, only inject
// — forged frames carrying signatures that cannot verify, or byte-identical
// replays of frames already sent. The auth scenarios pin that the validator
// rejects both without aborting an honest run.
//
// AuthTamperEndpoint sits between the SignerEndpoint and the link/transport:
// it sees correctly signed frames going down and injects its extra traffic
// alongside them, exactly what a man-on-the-wire adjacent to this node could.
#pragma once

#include <cstdint>

#include "blocks/block.hpp"
#include "common/ids.hpp"

namespace dauct::adversary {

enum class AuthTamperMode : std::uint8_t {
  kNone,
  /// For every signed frame sent, also inject a copy with a flipped payload
  /// byte — the signature no longer matches, so verification must fail.
  kForge,
  /// For every signed frame sent, also re-inject the *previous* frame sent to
  /// the same peer (byte-identical replay of an older round).
  kReplay,
};

struct AuthAdversaryConfig {
  NodeId node = kNoNode;  ///< which provider's outgoing edge is attacked
  AuthTamperMode mode = AuthTamperMode::kNone;
};

/// Injects forged or replayed frames alongside this node's real sends.
/// Only provider-bound signed frames (to < m, auth magic present) are
/// attacked; client traffic and control frames pass through untouched.
class AuthTamperEndpoint final : public blocks::Endpoint {
 public:
  AuthTamperEndpoint(blocks::Endpoint& inner, AuthTamperMode mode)
      : inner_(inner), mode_(mode) {}

  NodeId self() const override { return inner_.self(); }
  std::size_t num_providers() const override { return inner_.num_providers(); }
  crypto::Rng& rng() override { return inner_.rng(); }
  bool schedule_after(std::int64_t delay_ns,
                      std::function<void()> fn) override {
    return inner_.schedule_after(delay_ns, std::move(fn));
  }
  std::int64_t round_timeout() const override { return inner_.round_timeout(); }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override;

 private:
  blocks::Endpoint& inner_;
  AuthTamperMode mode_;

  struct Remembered {
    net::Topic topic{};
    SharedBytes payload;
  };
  std::vector<Remembered> last_sent_;  ///< per peer, for kReplay
};

}  // namespace dauct::adversary
