// Provider deviation strategies and the deviant endpoint.
//
// A deviation strategy intercepts everything a coalition member sends. The
// k-resilience experiments (tests + bench/abl_resilience) run the protocol
// with a coalition following a strategy and measure whether any member's
// utility exceeds the honest baseline — the empirical counterpart of
// Definition 2.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "blocks/block.hpp"

namespace dauct::adversary {

class DeviationStrategy {
 public:
  virtual ~DeviationStrategy() = default;

  virtual std::string name() const = 0;

  /// Called for every outgoing message of a coalition member.
  /// Return the (possibly rewritten) payload, or std::nullopt to drop the
  /// message entirely. Honest pass-through returns the input SharedBytes
  /// unchanged (a refcount bump — deviation wrappers do not tax the
  /// zero-copy fan-out); rewriters materialize a fresh buffer.
  virtual std::optional<SharedBytes> on_send(NodeId self, NodeId to,
                                             const std::string& topic,
                                             const SharedBytes& payload) = 0;
};

/// Follow the protocol exactly (control arm).
std::shared_ptr<DeviationStrategy> honest_provider();

/// Flip bytes of task-result data transfers sent to providers outside the
/// coalition (forged task result).
std::shared_ptr<DeviationStrategy> forge_task_results(std::vector<NodeId> coalition);

/// Tamper with the common-coin reveal (invalid opening).
std::shared_ptr<DeviationStrategy> corrupt_coin_reveal();

/// Equivocate in the bid-agreement vote round: send different vote payloads
/// to even and odd providers.
std::shared_ptr<DeviationStrategy> equivocate_votes();

/// Forge the output-agreement digest sent to non-coalition providers.
std::shared_ptr<DeviationStrategy> forge_output_digest(std::vector<NodeId> coalition);

/// Drop every message to providers outside the coalition (selective
/// silence — stalls the protocol, outcome ⊥ via timeout or abort).
std::shared_ptr<DeviationStrategy> selective_silence(std::vector<NodeId> coalition);

/// Lie about this provider's own ask: report `fake_cost` instead of the true
/// unit cost (provider-input truthfulness experiment).
std::shared_ptr<DeviationStrategy> misreport_ask(dauct::Money fake_cost);

/// Endpoint wrapper that funnels every outgoing message through a deviation
/// strategy. Runtimes install it for coalition members.
class DeviantEndpoint final : public blocks::Endpoint {
 public:
  DeviantEndpoint(blocks::Endpoint& inner, std::shared_ptr<DeviationStrategy> strategy)
      : inner_(inner), strategy_(std::move(strategy)) {}

  NodeId self() const override { return inner_.self(); }
  std::size_t num_providers() const override { return inner_.num_providers(); }
  crypto::Rng& rng() override { return inner_.rng(); }
  bool schedule_after(std::int64_t delay_ns, std::function<void()> fn) override {
    return inner_.schedule_after(delay_ns, std::move(fn));
  }
  std::int64_t round_timeout() const override { return inner_.round_timeout(); }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override {
    auto rewritten = strategy_->on_send(self(), to, topic.str(), payload);
    if (!rewritten) return;  // dropped
    inner_.send(to, topic, std::move(*rewritten));
  }

 private:
  blocks::Endpoint& inner_;
  std::shared_ptr<DeviationStrategy> strategy_;
};

}  // namespace dauct::adversary
