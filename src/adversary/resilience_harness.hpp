// Empirical k-resilience measurement (Definition 2).
//
// Runs the same auction twice — once with every provider honest, once with a
// coalition K following a deviation strategy — and compares the coalition's
// total utility. A protocol that is a k-resilient equilibrium must show no
// utility gain for any strategy in the library (gains bounded by zero; with
// the approximate welfare solver, by the approximation error).
//
// Utilities are computed against the providers' *true* valuations from the
// instance, regardless of what the deviation made them report.
#pragma once

#include "core/distributed_auctioneer.hpp"
#include "runtime/sim_runtime.hpp"

namespace dauct::adversary {

struct DeviationReport {
  std::string strategy;
  std::vector<NodeId> coalition;

  Money honest_utility;    ///< Σ over coalition, honest run
  Money deviant_utility;   ///< Σ over coalition, deviant run
  bool honest_ok = false;  ///< honest run reached (x, p)
  bool deviant_ok = false; ///< deviant run reached (x, p) (false = ⊥)
  AbortReason deviant_abort_reason = AbortReason::kNone;

  /// True iff the deviation strictly increased the coalition's utility.
  bool gained() const { return deviant_utility > honest_utility; }
};

/// Measure one (coalition, strategy) pair on one instance.
/// `base_config` supplies seed/latency; its deviation map is overwritten.
DeviationReport measure_deviation(
    const core::DistributedAuctioneer& auctioneer,
    const auction::AuctionInstance& instance,
    runtime::SimRunConfig base_config, const std::vector<NodeId>& coalition,
    const std::shared_ptr<DeviationStrategy>& strategy);

/// Coalition utility of an outcome under the true instance.
Money coalition_utility(const auction::AuctionInstance& instance,
                        const auction::AuctionOutcome& outcome,
                        const std::vector<NodeId>& coalition);

}  // namespace dauct::adversary
