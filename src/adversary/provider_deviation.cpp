#include "adversary/provider_deviation.hpp"

#include <algorithm>

#include "serde/codec.hpp"

namespace dauct::adversary {

namespace {

bool in(const std::vector<NodeId>& set, NodeId id) {
  return std::find(set.begin(), set.end(), id) != set.end();
}

class Honest final : public DeviationStrategy {
 public:
  std::string name() const override { return "honest"; }
  std::optional<SharedBytes> on_send(NodeId, NodeId, const std::string&,
                                     const SharedBytes& payload) override {
    return payload;  // alias, not a copy
  }
};

class ForgeTaskResults final : public DeviationStrategy {
 public:
  explicit ForgeTaskResults(std::vector<NodeId> coalition)
      : coalition_(std::move(coalition)) {}
  std::string name() const override { return "forge-task-results"; }

  std::optional<SharedBytes> on_send(NodeId, NodeId to, const std::string& topic,
                               const SharedBytes& payload) override {
    if (!blocks::topic_has_prefix(topic, "alloc/dt") || in(coalition_, to) ||
        payload.empty()) {
      return payload;
    }
    Bytes forged = payload.to_bytes();
    forged.back() ^= 0x01;  // corrupt the encoded result
    return forged;
  }

 private:
  std::vector<NodeId> coalition_;
};

class CorruptCoinReveal final : public DeviationStrategy {
 public:
  std::string name() const override { return "corrupt-coin-reveal"; }

  std::optional<SharedBytes> on_send(NodeId, NodeId, const std::string& topic,
                               const SharedBytes& payload) override {
    if (topic != "alloc/coin/reveal" || payload.empty()) return payload;
    Bytes forged = payload.to_bytes();
    forged[0] ^= 0xff;  // the revealed value no longer opens the commitment
    return forged;
  }
};

class EquivocateVotes final : public DeviationStrategy {
 public:
  std::string name() const override { return "equivocate-votes"; }

  std::optional<SharedBytes> on_send(NodeId, NodeId to, const std::string& topic,
                               const SharedBytes& payload) override {
    // Vote topics end in "/v" for all three agreement modes.
    if (payload.empty() || !blocks::topic_has_prefix(topic, "ba") ||
        topic.size() < 2 || topic.compare(topic.size() - 2, 2, "/v") != 0) {
      return payload;
    }
    if (to % 2 == 0) return payload;
    Bytes forged = payload.to_bytes();
    forged.back() ^= 0x01;  // different vote for odd-id providers
    return forged;
  }
};

class ForgeOutputDigest final : public DeviationStrategy {
 public:
  explicit ForgeOutputDigest(std::vector<NodeId> coalition)
      : coalition_(std::move(coalition)) {}
  std::string name() const override { return "forge-output-digest"; }

  std::optional<SharedBytes> on_send(NodeId, NodeId to, const std::string& topic,
                               const SharedBytes& payload) override {
    if (topic != "alloc/out/digest" || in(coalition_, to) || payload.empty()) {
      return payload;
    }
    Bytes forged = payload.to_bytes();
    forged[0] ^= 0x01;
    return forged;
  }

 private:
  std::vector<NodeId> coalition_;
};

class SelectiveSilence final : public DeviationStrategy {
 public:
  explicit SelectiveSilence(std::vector<NodeId> coalition)
      : coalition_(std::move(coalition)) {}
  std::string name() const override { return "selective-silence"; }

  std::optional<SharedBytes> on_send(NodeId, NodeId to, const std::string&,
                               const SharedBytes& payload) override {
    if (in(coalition_, to)) return payload;
    return std::nullopt;  // drop
  }

 private:
  std::vector<NodeId> coalition_;
};

class MisreportAsk final : public DeviationStrategy {
 public:
  explicit MisreportAsk(dauct::Money fake_cost) : fake_cost_(fake_cost) {}
  std::string name() const override { return "misreport-ask"; }

  std::optional<SharedBytes> on_send(NodeId self, NodeId, const std::string& topic,
                               const SharedBytes& payload) override {
    if (topic != "ask/x") return payload;
    // Payload layout: u32 provider + i64 unit_cost + i64 capacity.
    serde::Reader r{payload.view()};
    const std::uint32_t provider = r.u32();
    r.money();  // true cost, discarded
    const dauct::Money capacity = r.money();
    if (!r.at_end() || provider != self) return payload;
    serde::Writer w;
    w.u32(provider);
    w.money(fake_cost_);
    w.money(capacity);
    return w.take();
  }

 private:
  dauct::Money fake_cost_;
};

}  // namespace

std::shared_ptr<DeviationStrategy> honest_provider() {
  return std::make_shared<Honest>();
}
std::shared_ptr<DeviationStrategy> forge_task_results(std::vector<NodeId> coalition) {
  return std::make_shared<ForgeTaskResults>(std::move(coalition));
}
std::shared_ptr<DeviationStrategy> corrupt_coin_reveal() {
  return std::make_shared<CorruptCoinReveal>();
}
std::shared_ptr<DeviationStrategy> equivocate_votes() {
  return std::make_shared<EquivocateVotes>();
}
std::shared_ptr<DeviationStrategy> forge_output_digest(std::vector<NodeId> coalition) {
  return std::make_shared<ForgeOutputDigest>(std::move(coalition));
}
std::shared_ptr<DeviationStrategy> selective_silence(std::vector<NodeId> coalition) {
  return std::make_shared<SelectiveSilence>(std::move(coalition));
}
std::shared_ptr<DeviationStrategy> misreport_ask(dauct::Money fake_cost) {
  return std::make_shared<MisreportAsk>(fake_cost);
}

}  // namespace dauct::adversary
