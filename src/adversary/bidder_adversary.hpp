// Bidder-side adversaries for the fuzzer (ISSUE 10): named wrappers over
// the scriptable BidderBehaviour layer plus wire-level bid-frame tricks.
//
// Definition 1's promise is that a deviant *bidder* can never corrupt the
// honest providers' agreement: malformed and out-of-range bids are replaced
// by the neutral bid during bid agreement (auction::BidLimits::valid), a
// silent bidder is a deadline miss, and replayed/reordered bid frames are
// absorbed by the reliability layer's dedup and the engines' started-guard.
// The fuzzer samples these behaviours via [knobs] p_bidder_adversary and the
// safety oracle checks the run still matches its clean twin — exactly,
// because the clean twin keeps the same bidder script (the exclusion of a
// deviant bidder's bids is part of the auction's defined outcome, not a
// fault to strip).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/bidder_behaviour.hpp"

namespace dauct::adversary {

/// Structurally broken bid: zero demand with a nonsense negative value —
/// is_neutral() yet value-carrying, probing the sanitize path's edge.
std::shared_ptr<BidderBehaviour> malformed_bidder();

/// Demand far beyond BidLimits::max_demand (invalid → neutral substitution).
std::shared_ptr<BidderBehaviour> out_of_range_bidder();

/// Wire-level tricks applied where the client injects bid frames. Both are
/// behaviour-preserving for honest providers: replays dedup away (or hit the
/// engines' started-guard), reordering only permutes per-provider delivery.
struct BidFrameAdversary {
  bool replay = false;   ///< inject every bid frame twice
  bool reorder = false;  ///< walk providers in reverse order
  bool any() const { return replay || reorder; }
};

/// Registry mapping scenario / fuzzer behaviour names to behaviours.
/// `providers` parameterizes equivocate's split (= providers / 2).
/// Returns null for an unknown name — scenario validation fails fast on it.
std::shared_ptr<BidderBehaviour> bidder_behaviour_by_name(
    std::string_view name, std::size_t providers);

/// Every name bidder_behaviour_by_name accepts, for diagnostics and the
/// fuzzer's draw table.
const std::vector<std::string>& bidder_behaviour_names();

}  // namespace dauct::adversary
