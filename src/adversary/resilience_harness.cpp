#include "adversary/resilience_harness.hpp"

namespace dauct::adversary {

Money coalition_utility(const auction::AuctionInstance& instance,
                        const auction::AuctionOutcome& outcome,
                        const std::vector<NodeId>& coalition) {
  Money total;
  for (NodeId j : coalition) {
    total += auction::provider_utility(instance, outcome, j);
  }
  return total;
}

DeviationReport measure_deviation(
    const core::DistributedAuctioneer& auctioneer,
    const auction::AuctionInstance& instance,
    runtime::SimRunConfig base_config, const std::vector<NodeId>& coalition,
    const std::shared_ptr<DeviationStrategy>& strategy) {
  DeviationReport report;
  report.strategy = strategy->name();
  report.coalition = coalition;

  // Honest control arm.
  runtime::SimRunConfig honest_cfg = base_config;
  honest_cfg.deviations.clear();
  runtime::SimRuntime honest_rt(honest_cfg);
  const auto honest = honest_rt.run_distributed(auctioneer, instance);
  report.honest_ok = honest.global_outcome.ok();
  report.honest_utility =
      coalition_utility(instance, honest.global_outcome, coalition);

  // Deviant arm: same seed and instance, coalition follows the strategy.
  runtime::SimRunConfig deviant_cfg = base_config;
  deviant_cfg.deviations.clear();
  for (NodeId j : coalition) deviant_cfg.deviations[j] = strategy;
  runtime::SimRuntime deviant_rt(deviant_cfg);
  const auto deviant = deviant_rt.run_distributed(auctioneer, instance);
  report.deviant_ok = deviant.global_outcome.ok();
  if (!deviant.global_outcome.ok()) {
    report.deviant_abort_reason = deviant.global_outcome.bottom().reason;
  }
  report.deviant_utility =
      coalition_utility(instance, deviant.global_outcome, coalition);

  return report;
}

}  // namespace dauct::adversary
