#include "adversary/bidder_adversary.hpp"

namespace dauct::adversary {

namespace {

class Malformed final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId,
                                      crypto::Rng&) const override {
    auction::Bid bad = true_bid;
    bad.demand = kZeroMoney;                      // structurally "neutral"...
    bad.unit_value = Money::from_micros(-7);      // ...yet carrying nonsense
    return bad;
  }
};

class OutOfRange final : public BidderBehaviour {
 public:
  std::optional<auction::Bid> bid_for(const auction::Bid& true_bid, NodeId,
                                      crypto::Rng&) const override {
    auction::Bid bad = true_bid;
    bad.demand = Money::from_units(2'000'000);  // 2x BidLimits::max_demand
    return bad;
  }
};

}  // namespace

std::shared_ptr<BidderBehaviour> malformed_bidder() {
  return std::make_shared<Malformed>();
}

std::shared_ptr<BidderBehaviour> out_of_range_bidder() {
  return std::make_shared<OutOfRange>();
}

std::shared_ptr<BidderBehaviour> bidder_behaviour_by_name(
    std::string_view name, std::size_t providers) {
  if (name == "honest") return honest_bidder();
  if (name == "silent") return silent_bidder();
  if (name == "malformed") return malformed_bidder();
  if (name == "out-of-range") return out_of_range_bidder();
  if (name == "invalid") return invalid_bidder();
  if (name == "random") return random_bidder();
  if (name == "equivocate") {
    return equivocating_bidder(static_cast<NodeId>(providers / 2));
  }
  return nullptr;
}

const std::vector<std::string>& bidder_behaviour_names() {
  static const std::vector<std::string> names = {
      "honest", "silent",  "malformed", "out-of-range",
      "invalid", "random", "equivocate"};
  return names;
}

}  // namespace dauct::adversary
