#include "adversary/auth_adversary.hpp"

#include "net/auth.hpp"

namespace dauct::adversary {

void AuthTamperEndpoint::send(NodeId to, const net::Topic& topic,
                              SharedBytes payload) {
  const bool attackable = to < num_providers() &&
                          payload.size() >= net::kAuthHeaderBytes &&
                          payload[0] == net::kAuthMagic;
  if (!attackable || mode_ == AuthTamperMode::kNone) {
    inner_.send(to, topic, std::move(payload));
    return;
  }

  if (mode_ == AuthTamperMode::kReplay) {
    if (last_sent_.size() <= to) last_sent_.resize(to + 1);
    Remembered& prev = last_sent_[to];
    if (!prev.payload.empty()) {
      // Re-inject the previous frame verbatim: same bytes, same (sender,
      // topic) slot — the validator must recognize it and swallow it.
      inner_.send(to, prev.topic, prev.payload);
    }
    prev = Remembered{topic, payload};
    inner_.send(to, topic, std::move(payload));
    return;
  }

  // kForge: the real frame, then a companion whose payload byte is flipped
  // under the untouched signature. The wire adversary cannot re-sign, so
  // this is the strongest frame it can build from observed traffic.
  inner_.send(to, topic, payload);
  Bytes forged = payload.to_bytes();
  if (forged.size() > net::kAuthHeaderBytes) {
    forged[net::kAuthHeaderBytes] ^= 0x5a;  // first payload byte
  } else {
    forged[1] ^= 0x5a;  // empty payload: corrupt the signature instead
  }
  inner_.send(to, topic, SharedBytes(std::move(forged)));
}

}  // namespace dauct::adversary
