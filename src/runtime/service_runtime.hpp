// Multi-auction service plane over the deterministic virtual-time simulator.
//
// The paper clears one double auction per experiment; a deployed marketplace
// clears a *stream* of them on the same provider set. ServiceRuntime runs N
// auction instances over ONE scheduler, ONE reliable link / signer / WAL per
// node (shared transport), and one protocol-engine bundle per (instance,
// node). Instances are multiplexed by topic namespace (core/service_plane.hpp)
// and pipelined: up to `pipeline_depth` instances run concurrently, and
// settling instance t launches instance t + depth in the same virtual instant
// — consensus rounds of the next epoch overlap settlement of the previous.
//
// Equivalence contract (pinned by tests/service_test.cpp):
//  * instances == 1 routes through this runtime byte-identically to
//    SimRuntime::run_distributed — same digest, makespan, and traffic as the
//    golden fingerprints;
//  * instance i of an N-instance run reaches the same result digest as a
//    standalone run at seed derive_instance_seed(base_seed, i) (its "twin").
//    Virtual timings differ (instances contend for node clocks); results do
//    not.
//
// Full lifecycle and shared-link semantics: docs/SERVICE.md.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/service_plane.hpp"
#include "runtime/sim_runtime.hpp"

namespace dauct::runtime {

/// A provider deviation confined to one auction instance (or all of them).
/// ServiceRunConfig::base.deviations entries apply to every instance; these
/// let a fault scenario corrupt instance t while t±1 must stay clean.
struct ServiceDeviation {
  core::InstanceId instance = sim::kAnyInstance;  ///< kAnyInstance = all
  NodeId node = kNoNode;
  std::shared_ptr<adversary::DeviationStrategy> strategy;
};

struct ServiceRunConfig {
  /// Transport/fault/crypto configuration shared by every instance. The base
  /// seed drives the scheduler and derives each instance's twin seed;
  /// base.deviations (if any) apply to all instances. Amnesia crash recovery
  /// is not supported in service mode (scenario validation rejects it); an
  /// amnesia window degrades to a plain crash-recover pause.
  SimRunConfig base;
  std::size_t instances = 1;
  /// Concurrent-instance bound: instances 0..depth-1 launch together at
  /// t = 0; afterwards each settlement launches the next instance into the
  /// freed pipeline slot. 1 = strictly sequential.
  std::size_t pipeline_depth = 1;
  std::vector<ServiceDeviation> deviations;
};

/// Per-instance slice of a service run — the fields service_test compares
/// against the instance's single-run twin.
struct InstanceRunResult {
  core::InstanceId id = 0;
  std::uint64_t derived_seed = 0;  ///< the twin's SimRunConfig::seed
  std::string topic_prefix;        ///< "" on the single-instance identity path
  std::vector<auction::AuctionOutcome> provider_outcomes;
  auction::AuctionOutcome outcome{Bottom{}};  ///< combine_outcomes of the above
  bool launched = false;   ///< false: its pipeline slot never freed up
  bool settled = false;    ///< all m result reports reached the client
  sim::SimTime launched_at = 0;
  sim::SimTime settled_at = 0;
};

struct ServiceRunResult {
  std::vector<InstanceRunResult> instances;
  /// Last settlement instant when every instance settled; else the virtual
  /// time the event queue drained (the single-instance identity value equals
  /// SimRunResult::makespan exactly).
  sim::SimTime makespan = 0;
  sim::TrafficStats traffic;
  sim::FaultStats fault_stats;
  net::ReliabilityStats reliability_stats;  ///< summed over the shared links
  net::AuthStats auth_stats;
  store::WalStats wal_stats;
  std::optional<net::EquivocationProof> equivocation_proof;
  bool stalled = false;  ///< some instance never finished (counts as ⊥)
  bool event_budget_exhausted = false;
  std::uint64_t events_dispatched = 0;
  std::size_t settled_ok = 0;  ///< instances whose combined outcome is ok

  /// Service throughput in auctions per virtual second (0 if nothing
  /// cleared) — what BM_service_throughput sweeps and the ≥1.5× pipelining
  /// acceptance bound is stated in.
  double auctions_per_vsec() const;
};

class ServiceRuntime {
 public:
  explicit ServiceRuntime(ServiceRunConfig config) : config_(std::move(config)) {}

  const ServiceRunConfig& config() const { return config_; }

  /// Run `config().instances` auctions over one shared transport stack.
  /// `workloads[i]` is instance i's true valuations — callers generate it
  /// from derive_instance_seed(base.seed, i) when twin equivalence matters
  /// (the scenario runner and service_test do). Fewer workloads than
  /// configured instances clamps the run.
  ServiceRunResult run(const core::DistributedAuctioneer& auctioneer,
                       std::span<const auction::AuctionInstance> workloads);

 private:
  ServiceRunConfig config_;
};

}  // namespace dauct::runtime
