// Client→provider bid-submission wire format, shared by the single-auction
// runtimes (runtime/sim_runtime.cpp and friends) and the multi-auction
// service plane (runtime/service_runtime.cpp). The encoding is golden-pinned
// (tests/fanout_test.cpp fingerprints cover the bids batch bytes), so both
// runtimes must speak exactly the same dialect — hence one header.
#pragma once

#include <optional>
#include <vector>

#include "auction/types.hpp"
#include "common/bytes.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime::detail {

/// Encode the (possibly absent) bids a provider receives from the client.
inline Bytes encode_submissions(
    const std::vector<std::optional<auction::Bid>>& subs) {
  serde::Writer w;
  w.varint(subs.size());
  for (const auto& s : subs) {
    w.boolean(s.has_value());
    if (s) serde::write_bid(w, *s);
  }
  return w.take();
}

inline std::optional<std::vector<std::optional<auction::Bid>>>
decode_submissions(BytesView data) {
  serde::Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > (1u << 22)) return std::nullopt;
  std::vector<std::optional<auction::Bid>> out(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (r.boolean()) {
      auto b = serde::read_bid(r);
      if (!b) return std::nullopt;
      out[i] = *b;
    }
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

/// What the paper's deadline rule yields as provider input: the submitted
/// bid if present, valid, and correctly addressed; the neutral bid otherwise.
inline std::vector<auction::Bid> sanitize_submissions(
    const std::vector<std::optional<auction::Bid>>& subs,
    const auction::BidLimits& limits) {
  std::vector<auction::Bid> bids;
  bids.reserve(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto& s = subs[i];
    if (s && s->bidder == i && limits.valid(*s)) {
      bids.push_back(*s);
    } else {
      bids.push_back(auction::neutral_bid(static_cast<BidderId>(i)));
    }
  }
  return bids;
}

}  // namespace dauct::runtime::detail
