#include "runtime/fuzz_harness.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "serde/ini_values.hpp"

namespace dauct::runtime {

namespace {

/// The removable fault clauses of a scenario, flattened into one index
/// space for ddmin: [links | cuts | partitions | crashes | deviations |
/// auth_adversary | bidders | bid_replay | bid_reorder | wal_fault]. New
/// clause kinds append AFTER the existing ones so old minimizations keep
/// their index meaning. The order is load-bearing only for determinism.
struct ClausePool {
  std::vector<sim::LinkFault> links;
  std::vector<sim::LinkCut> cuts;
  std::vector<sim::Partition> partitions;
  std::vector<sim::CrashEvent> crashes;
  std::vector<DeviationSpec> deviations;
  bool has_adversary = false;
  adversary::AuthAdversaryConfig adversary;
  std::vector<BidderSpec> bidders;
  bool has_replay = false;
  bool has_reorder = false;
  bool has_wal_fault = false;
  store::StorageFaultConfig wal_fault;

  explicit ClausePool(const Scenario& sc)
      : links(sc.faults.links),
        cuts(sc.faults.cuts),
        partitions(sc.faults.partitions),
        crashes(sc.faults.crashes),
        deviations(sc.deviations),
        has_adversary(sc.auth_adversary.node != kNoNode),
        adversary(sc.auth_adversary),
        bidders(sc.bidders),
        has_replay(sc.bid_frames.replay),
        has_reorder(sc.bid_frames.reorder),
        has_wal_fault(sc.wal_fault.enable),
        wal_fault(sc.wal_fault) {}

  std::size_t size() const {
    return links.size() + cuts.size() + partitions.size() + crashes.size() +
           deviations.size() + (has_adversary ? 1 : 0) + bidders.size() +
           (has_replay ? 1 : 0) + (has_reorder ? 1 : 0) +
           (has_wal_fault ? 1 : 0);
  }

  /// `base` with only the clauses named by `keep` (sorted indices).
  Scenario apply(const Scenario& base, const std::vector<std::size_t>& keep) const {
    Scenario sc = base;
    sc.faults.links.clear();
    sc.faults.cuts.clear();
    sc.faults.partitions.clear();
    sc.faults.crashes.clear();
    sc.deviations.clear();
    sc.auth_adversary = {};
    sc.bidders.clear();
    sc.bid_frames = {};
    sc.wal_fault = {};
    for (std::size_t i : keep) {
      if (i < links.size()) {
        sc.faults.links.push_back(links[i]);
        continue;
      }
      i -= links.size();
      if (i < cuts.size()) {
        sc.faults.cuts.push_back(cuts[i]);
        continue;
      }
      i -= cuts.size();
      if (i < partitions.size()) {
        sc.faults.partitions.push_back(partitions[i]);
        continue;
      }
      i -= partitions.size();
      if (i < crashes.size()) {
        sc.faults.crashes.push_back(crashes[i]);
        continue;
      }
      i -= crashes.size();
      if (i < deviations.size()) {
        sc.deviations.push_back(deviations[i]);
        continue;
      }
      i -= deviations.size();
      if (has_adversary && i == 0) {
        sc.auth_adversary = adversary;
        continue;
      }
      i -= has_adversary ? 1 : 0;
      if (i < bidders.size()) {
        sc.bidders.push_back(bidders[i]);
        continue;
      }
      i -= bidders.size();
      if (has_replay && i == 0) {
        sc.bid_frames.replay = true;
        continue;
      }
      i -= has_replay ? 1 : 0;
      if (has_reorder && i == 0) {
        sc.bid_frames.reorder = true;
        continue;
      }
      sc.wal_fault = wal_fault;
    }
    // Parse-validity invariant: the lying disk only arms at an amnesia
    // crash, so if ddmin dropped the last amnesia crash (but kept the
    // wal_fault clause) the knob is dead weight — clear it.
    if (sc.wal_fault.enable &&
        std::none_of(sc.faults.crashes.begin(), sc.faults.crashes.end(),
                     [](const sim::CrashEvent& c) {
                       return c.mode == sim::CrashMode::kAmnesia;
                     })) {
      sc.wal_fault = {};
    }
    return sc;
  }
};

/// Textbook ddmin (Zeller & Hildebrandt) over clause indices: returns a
/// 1-minimal subset for which `fails` still holds. `fails` must hold for the
/// full set on entry.
std::vector<std::size_t> ddmin(std::size_t n_clauses,
                               const std::function<bool(const std::vector<std::size_t>&)>& fails) {
  std::vector<std::size_t> cx(n_clauses);
  for (std::size_t i = 0; i < n_clauses; ++i) cx[i] = i;
  // The empty plan is a legal candidate too (the "violation" may not need
  // any clause at all — the injected-oracle tests rely on this floor).
  if (fails({})) return {};
  std::size_t granularity = 2;
  while (cx.size() >= 2) {
    const std::size_t chunk = (cx.size() + granularity - 1) / granularity;
    bool reduced = false;
    // Subsets first: can the failure live in one chunk alone?
    for (std::size_t start = 0; start < cx.size() && !reduced; start += chunk) {
      const std::size_t end = std::min(start + chunk, cx.size());
      std::vector<std::size_t> subset(cx.begin() + start, cx.begin() + end);
      if (subset.size() < cx.size() && fails(subset)) {
        cx = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    // Complements: can one chunk be dropped?
    for (std::size_t start = 0; start < cx.size() && !reduced; start += chunk) {
      const std::size_t end = std::min(start + chunk, cx.size());
      std::vector<std::size_t> rest;
      rest.reserve(cx.size() - (end - start));
      rest.insert(rest.end(), cx.begin(), cx.begin() + start);
      rest.insert(rest.end(), cx.begin() + end, cx.end());
      if (!rest.empty() && rest.size() < cx.size() && fails(rest)) {
        cx = std::move(rest);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= cx.size()) break;
      granularity = std::min(cx.size(), granularity * 2);
    }
  }
  return cx;
}

/// Snap-halve a probability on the generator's 1e-4 grid; 0 when already at
/// the floor (the caller skips the candidate — clause removal, not rate
/// zeroing, is how a clause dies).
double halve_rate(double v) {
  const long long steps = std::llround(v * 1e4);
  if (steps <= 1) return 0.0;
  return static_cast<double>(steps / 2) * 1e-4;
}

/// Snap-halve a time on the microsecond grid.
sim::SimTime halve_time(sim::SimTime v) {
  if (v < 2000) return 0;
  return (v / 2) / 1000 * 1000;
}

}  // namespace

const char* fuzz_verdict_name(FuzzVerdict v) {
  switch (v) {
    case FuzzVerdict::kPass: return "pass";
    case FuzzVerdict::kCleanFailed: return "clean-failed";
    case FuzzVerdict::kWrongResult: return "wrong-result";
    case FuzzVerdict::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

Scenario scenario_from_case(const sim::FuzzCase& c) {
  Scenario sc;
  sc.name = "fuzz-" + std::to_string(c.case_seed) + "-" + std::to_string(c.index);
  sc.description = "generated by dauct_fuzz (case seed " +
                   std::to_string(c.case_seed) + ", stream index " +
                   std::to_string(c.index) + ")";
  sc.users = c.users;
  sc.providers = c.providers;
  sc.k = c.k;
  sc.seed = c.run_seed;
  sc.latency = c.latency;
  sc.max_events = c.max_events;
  sc.faults = c.faults;
  sc.reliability.enable = c.reliability;
  if (c.reliability) {
    sc.reliability.retransmit_delay = c.retransmit_delay;
    sc.reliability.max_retries = c.max_retries;
    sc.reliability.round_timeout = c.round_timeout;
    sc.reliability.piggyback_acks = c.piggyback_acks;
  }
  sc.wal.enable = c.wal;
  if (c.wal) sc.wal.snapshot_every = c.wal_snapshot_every;
  sc.auth.enable = c.auth;
  sc.auth.batch_verify = c.auth && c.auth_batch;
  if (c.auth && c.auth_adversary_node != kNoNode) {
    sc.auth_adversary.node = c.auth_adversary_node;
    sc.auth_adversary.mode = c.auth_adversary_mode == "forge"
                                 ? adversary::AuthTamperMode::kForge
                                 : adversary::AuthTamperMode::kReplay;
  }
  for (const sim::FuzzCase::Deviation& d : c.deviations) {
    sc.deviations.push_back(DeviationSpec{d.node, d.strategy, kZeroMoney, d.instance});
  }
  for (const sim::FuzzCase::BidderAdversary& a : c.bidder_adversaries) {
    sc.bidders.push_back(BidderSpec{a.bidder, a.behaviour});
  }
  sc.bid_frames.replay = c.bid_replay;
  sc.bid_frames.reorder = c.bid_reorder;
  if (c.wal_corrupt) {
    sc.wal_fault.enable = true;
    sc.wal_fault.seed = c.wal_fault_seed;
    sc.wal_fault.sync_drop = c.wal_sync_drop;
    sc.wal_fault.torn = c.wal_torn;
    sc.wal_fault.flip = c.wal_flip;
  }
  sc.instances = c.instances;
  sc.pipeline_depth = c.pipeline_depth;
  return sc;
}

FuzzReport run_oracle(const Scenario& sc) {
  FuzzReport report;
  report.run = run_scenario(sc, /*force_clean_twin=*/true);
  const ScenarioRun& r = report.run;
  if (!r.clean || !r.clean->global_outcome.ok() || r.clean->stalled ||
      r.clean->event_budget_exhausted) {
    report.verdict = FuzzVerdict::kCleanFailed;
    report.detail =
        !r.clean ? "clean twin did not run"
                 : "clean twin failed: " +
                       (r.clean->global_outcome.ok()
                            ? std::string("stalled")
                            : std::string(abort_reason_name(
                                  r.clean->global_outcome.bottom().reason)));
    return report;
  }
  if (r.run.event_budget_exhausted) {
    report.verdict = FuzzVerdict::kBudgetExceeded;
    report.detail = "event budget exhausted with events still queued";
    return report;
  }
  // [service]: per-instance verdicts, swept even when the aggregate is ⊥ —
  // an aggregate ⊥ (digest "") must not mask a silently-wrong surviving
  // instance. Each cleared instance must hit the clean twin's SAME-instance
  // digest; a ⊥ instance is an allowed explicit abort.
  if (r.service && r.clean_service) {
    for (std::size_t i = 0; i < r.service->instances.size(); ++i) {
      const InstanceRunResult& inst = r.service->instances[i];
      FuzzReport::InstanceVerdict iv;
      iv.id = inst.id;
      if (!inst.outcome.ok()) {
        iv.detail = std::string("explicit bottom: ") +
                    abort_reason_name(inst.outcome.bottom().reason);
      } else if (i >= r.clean_service->instances.size()) {
        iv.verdict = FuzzVerdict::kCleanFailed;
        iv.detail = "clean twin never launched this instance";
      } else {
        const std::string faulty = instance_result_digest(inst);
        const std::string clean =
            instance_result_digest(r.clean_service->instances[i]);
        if (faulty != clean) {
          iv.verdict = FuzzVerdict::kWrongResult;
          iv.detail = "instance " + std::to_string(inst.id) +
                      " cleared with digest " + faulty + " != clean " + clean;
        } else {
          iv.detail = "ok, matches clean instance (" + faulty + ")";
        }
      }
      report.instance_verdicts.push_back(std::move(iv));
    }
    for (const auto& iv : report.instance_verdicts) {
      if (fuzz_violation(iv.verdict)) {
        report.verdict = iv.verdict;
        report.detail = iv.detail;
        return report;
      }
    }
  }
  if (r.run.global_outcome.ok()) {
    if (r.result_digest != r.clean_digest) {
      report.verdict = FuzzVerdict::kWrongResult;
      report.detail = "completed ok with digest " + r.result_digest +
                      " != clean " + r.clean_digest;
      return report;
    }
    report.verdict = FuzzVerdict::kPass;
    report.detail = "ok, matches clean (" + r.result_digest + ")";
    return report;
  }
  report.verdict = FuzzVerdict::kPass;
  report.detail = std::string("explicit bottom: ") +
                  abort_reason_name(r.run.global_outcome.bottom().reason);
  return report;
}

FuzzVerdict default_oracle(const Scenario& sc) { return run_oracle(sc).verdict; }

MinimizeResult minimize(const Scenario& failing, FuzzVerdict verdict,
                        const FuzzOracle& oracle) {
  MinimizeResult out;
  const ClausePool pool(failing);
  const auto fails = [&](const std::vector<std::size_t>& keep) {
    ++out.probes;
    return oracle(pool.apply(failing, keep)) == verdict;
  };
  const std::vector<std::size_t> kept = ddmin(pool.size(), fails);
  out.removed = pool.size() - kept.size();
  Scenario sc = pool.apply(failing, kept);

  // Scalar shrinking to a fixpoint: each accepted step strictly reduces a
  // clause scalar (or widens a window to the default full-run form), so the
  // loop terminates and re-running minimize() on its own output is a no-op
  // (idempotence, pinned by tests/fuzz_test.cpp).
  const auto probe = [&](const Scenario& candidate) {
    ++out.probes;
    return oracle(candidate) == verdict;
  };
  const auto try_step = [&](Scenario& current, const std::function<void(Scenario&)>& step) {
    Scenario candidate = current;
    step(candidate);
    if (probe(candidate)) {
      current = std::move(candidate);
      return true;
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < sc.faults.links.size(); ++i) {
      sim::LinkFault& f = sc.faults.links[i];
      // Instance filters generalize away first: a rule that still fails when
      // applied to EVERY instance shouldn't carry the narrowing.
      if (f.instance != sim::kAnyInstance) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].instance = sim::kAnyInstance;
        });
      }
      if (f.active_from != sim::kSimStart || f.active_until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].active_from = sim::kSimStart;
          s.faults.links[i].active_until = sim::kSimForever;
        });
      }
      if (halve_rate(f.drop) > 0.0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].drop = halve_rate(s.faults.links[i].drop);
        });
      }
      if (halve_rate(f.duplicate) > 0.0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].duplicate = halve_rate(s.faults.links[i].duplicate);
        });
      }
      if (f.extra_delay > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].extra_delay = halve_time(s.faults.links[i].extra_delay);
        });
      }
      if (f.jitter > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].jitter = halve_time(s.faults.links[i].jitter);
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.cuts.size(); ++i) {
      sim::LinkCut& cut = sc.faults.cuts[i];
      if (cut.instance != sim::kAnyInstance) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.cuts[i].instance = sim::kAnyInstance;
        });
      }
      if (cut.from != sim::kSimStart || cut.until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.cuts[i].from = sim::kSimStart;
          s.faults.cuts[i].until = sim::kSimForever;
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.partitions.size(); ++i) {
      sim::Partition& p = sc.faults.partitions[i];
      if (p.instance != sim::kAnyInstance) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.partitions[i].instance = sim::kAnyInstance;
        });
      }
      if (p.from != sim::kSimStart || p.until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.partitions[i].from = sim::kSimStart;
          s.faults.partitions[i].until = sim::kSimForever;
        });
      }
    }
    for (std::size_t i = 0; i < sc.deviations.size(); ++i) {
      if (sc.deviations[i].instance != sim::kAnyInstance) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.deviations[i].instance = sim::kAnyInstance;
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.crashes.size(); ++i) {
      sim::CrashEvent& crash = sc.faults.crashes[i];
      // Simplify amnesia to plain crash-recover first: if the failure
      // survives without the WAL-replay machinery, the repro shouldn't
      // drag it in. (When the step retires the last amnesia crash, the
      // lying disk has no crash to arm at — drop it with the mode, so the
      // candidate stays parse-valid.)
      const auto clear_dead_wal_fault = [](Scenario& s) {
        if (s.wal_fault.enable &&
            std::none_of(s.faults.crashes.begin(), s.faults.crashes.end(),
                         [](const sim::CrashEvent& c) {
                           return c.mode == sim::CrashMode::kAmnesia;
                         })) {
          s.wal_fault = {};
        }
      };
      if (crash.mode == sim::CrashMode::kAmnesia) {
        changed |= try_step(sc, [i, &clear_dead_wal_fault](Scenario& s) {
          s.faults.crashes[i].mode = sim::CrashMode::kRecover;
          clear_dead_wal_fault(s);
        });
      }
      if (crash.recover_at != sim::kSimForever) {
        // A crash that never recovers cannot be amnesia (the .scn validator
        // rejects mode=amnesia without recover_ms), so widening the down
        // window to forever resets the mode too.
        changed |= try_step(sc, [i, &clear_dead_wal_fault](Scenario& s) {
          s.faults.crashes[i].recover_at = sim::kSimForever;
          s.faults.crashes[i].mode = sim::CrashMode::kRecover;
          clear_dead_wal_fault(s);
        });
      }
      if (crash.at > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.crashes[i].at = halve_time(s.faults.crashes[i].at);
        });
      }
    }
    // Lying-disk knobs shrink like link rates: halve on the 1e-4 grid.
    if (sc.wal_fault.enable) {
      for (double store::StorageFaultConfig::*knob :
           {&store::StorageFaultConfig::sync_drop,
            &store::StorageFaultConfig::torn, &store::StorageFaultConfig::flip}) {
        if (halve_rate(sc.wal_fault.*knob) > 0.0) {
          changed |= try_step(sc, [knob](Scenario& s) {
            s.wal_fault.*knob = halve_rate(s.wal_fault.*knob);
          });
        }
      }
    }
    // [service] shape shrinks toward the single-run floor: halve the
    // instance count (clamped so every surviving instance filter and the
    // pipeline depth stay valid), then the depth toward 1.
    if (sc.instances > 1) {
      std::uint64_t floor_needed = 0;  // smallest count the filters allow
      for (const auto& r : sc.faults.links) {
        if (r.instance != sim::kAnyInstance) {
          floor_needed = std::max(floor_needed, r.instance + 1);
        }
      }
      for (const auto& c : sc.faults.cuts) {
        if (c.instance != sim::kAnyInstance) {
          floor_needed = std::max(floor_needed, c.instance + 1);
        }
      }
      for (const auto& p : sc.faults.partitions) {
        if (p.instance != sim::kAnyInstance) {
          floor_needed = std::max(floor_needed, p.instance + 1);
        }
      }
      for (const auto& d : sc.deviations) {
        if (d.instance != sim::kAnyInstance) {
          floor_needed = std::max(floor_needed, d.instance + 1);
        }
      }
      const std::size_t target = std::max<std::size_t>(
          {static_cast<std::size_t>(floor_needed), sc.pipeline_depth,
           sc.instances / 2, 2});
      if (target < sc.instances) {
        changed |= try_step(sc, [target](Scenario& s) {
          s.instances = target;
        });
      }
      if (sc.pipeline_depth > 1) {
        changed |= try_step(sc, [](Scenario& s) {
          s.pipeline_depth = std::max<std::size_t>(1, s.pipeline_depth / 2);
        });
      }
    }
  }
  out.scenario = std::move(sc);
  return out;
}

void pin_expectations(Scenario& sc, const FuzzReport& report) {
  ScenarioExpect exp;  // start from scratch: only the oracle's observations
  const SimRunResult& run = report.run.run;
  if (run.global_outcome.ok()) {
    exp.outcome = ScenarioExpect::Outcome::kOk;
    // The violation IS the mismatch: pin it so the repro self-checks.
    exp.matches_clean = report.run.result_digest == report.run.clean_digest;
  } else {
    exp.outcome = ScenarioExpect::Outcome::kBottom;
    exp.abort_reason = abort_reason_name(run.global_outcome.bottom().reason);
  }
  sc.expect = exp;
}

}  // namespace dauct::runtime
