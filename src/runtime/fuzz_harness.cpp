#include "runtime/fuzz_harness.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "serde/ini_values.hpp"

namespace dauct::runtime {

namespace {

/// The removable fault clauses of a scenario, flattened into one index
/// space for ddmin: [links | cuts | partitions | crashes | deviations |
/// auth_adversary]. The order is load-bearing only for determinism.
struct ClausePool {
  std::vector<sim::LinkFault> links;
  std::vector<sim::LinkCut> cuts;
  std::vector<sim::Partition> partitions;
  std::vector<sim::CrashEvent> crashes;
  std::vector<DeviationSpec> deviations;
  bool has_adversary = false;
  adversary::AuthAdversaryConfig adversary;

  explicit ClausePool(const Scenario& sc)
      : links(sc.faults.links),
        cuts(sc.faults.cuts),
        partitions(sc.faults.partitions),
        crashes(sc.faults.crashes),
        deviations(sc.deviations),
        has_adversary(sc.auth_adversary.node != kNoNode),
        adversary(sc.auth_adversary) {}

  std::size_t size() const {
    return links.size() + cuts.size() + partitions.size() + crashes.size() +
           deviations.size() + (has_adversary ? 1 : 0);
  }

  /// `base` with only the clauses named by `keep` (sorted indices).
  Scenario apply(const Scenario& base, const std::vector<std::size_t>& keep) const {
    Scenario sc = base;
    sc.faults.links.clear();
    sc.faults.cuts.clear();
    sc.faults.partitions.clear();
    sc.faults.crashes.clear();
    sc.deviations.clear();
    sc.auth_adversary = {};
    for (std::size_t i : keep) {
      if (i < links.size()) {
        sc.faults.links.push_back(links[i]);
        continue;
      }
      i -= links.size();
      if (i < cuts.size()) {
        sc.faults.cuts.push_back(cuts[i]);
        continue;
      }
      i -= cuts.size();
      if (i < partitions.size()) {
        sc.faults.partitions.push_back(partitions[i]);
        continue;
      }
      i -= partitions.size();
      if (i < crashes.size()) {
        sc.faults.crashes.push_back(crashes[i]);
        continue;
      }
      i -= crashes.size();
      if (i < deviations.size()) {
        sc.deviations.push_back(deviations[i]);
        continue;
      }
      sc.auth_adversary = adversary;
    }
    return sc;
  }
};

/// Textbook ddmin (Zeller & Hildebrandt) over clause indices: returns a
/// 1-minimal subset for which `fails` still holds. `fails` must hold for the
/// full set on entry.
std::vector<std::size_t> ddmin(std::size_t n_clauses,
                               const std::function<bool(const std::vector<std::size_t>&)>& fails) {
  std::vector<std::size_t> cx(n_clauses);
  for (std::size_t i = 0; i < n_clauses; ++i) cx[i] = i;
  // The empty plan is a legal candidate too (the "violation" may not need
  // any clause at all — the injected-oracle tests rely on this floor).
  if (fails({})) return {};
  std::size_t granularity = 2;
  while (cx.size() >= 2) {
    const std::size_t chunk = (cx.size() + granularity - 1) / granularity;
    bool reduced = false;
    // Subsets first: can the failure live in one chunk alone?
    for (std::size_t start = 0; start < cx.size() && !reduced; start += chunk) {
      const std::size_t end = std::min(start + chunk, cx.size());
      std::vector<std::size_t> subset(cx.begin() + start, cx.begin() + end);
      if (subset.size() < cx.size() && fails(subset)) {
        cx = std::move(subset);
        granularity = 2;
        reduced = true;
      }
    }
    // Complements: can one chunk be dropped?
    for (std::size_t start = 0; start < cx.size() && !reduced; start += chunk) {
      const std::size_t end = std::min(start + chunk, cx.size());
      std::vector<std::size_t> rest;
      rest.reserve(cx.size() - (end - start));
      rest.insert(rest.end(), cx.begin(), cx.begin() + start);
      rest.insert(rest.end(), cx.begin() + end, cx.end());
      if (!rest.empty() && rest.size() < cx.size() && fails(rest)) {
        cx = std::move(rest);
        granularity = std::max<std::size_t>(granularity - 1, 2);
        reduced = true;
      }
    }
    if (!reduced) {
      if (granularity >= cx.size()) break;
      granularity = std::min(cx.size(), granularity * 2);
    }
  }
  return cx;
}

/// Snap-halve a probability on the generator's 1e-4 grid; 0 when already at
/// the floor (the caller skips the candidate — clause removal, not rate
/// zeroing, is how a clause dies).
double halve_rate(double v) {
  const long long steps = std::llround(v * 1e4);
  if (steps <= 1) return 0.0;
  return static_cast<double>(steps / 2) * 1e-4;
}

/// Snap-halve a time on the microsecond grid.
sim::SimTime halve_time(sim::SimTime v) {
  if (v < 2000) return 0;
  return (v / 2) / 1000 * 1000;
}

}  // namespace

const char* fuzz_verdict_name(FuzzVerdict v) {
  switch (v) {
    case FuzzVerdict::kPass: return "pass";
    case FuzzVerdict::kCleanFailed: return "clean-failed";
    case FuzzVerdict::kWrongResult: return "wrong-result";
    case FuzzVerdict::kBudgetExceeded: return "budget-exceeded";
  }
  return "?";
}

Scenario scenario_from_case(const sim::FuzzCase& c) {
  Scenario sc;
  sc.name = "fuzz-" + std::to_string(c.case_seed) + "-" + std::to_string(c.index);
  sc.description = "generated by dauct_fuzz (case seed " +
                   std::to_string(c.case_seed) + ", stream index " +
                   std::to_string(c.index) + ")";
  sc.users = c.users;
  sc.providers = c.providers;
  sc.k = c.k;
  sc.seed = c.run_seed;
  sc.latency = c.latency;
  sc.max_events = c.max_events;
  sc.faults = c.faults;
  sc.reliability.enable = c.reliability;
  if (c.reliability) {
    sc.reliability.retransmit_delay = c.retransmit_delay;
    sc.reliability.max_retries = c.max_retries;
    sc.reliability.round_timeout = c.round_timeout;
    sc.reliability.piggyback_acks = c.piggyback_acks;
  }
  sc.wal.enable = c.wal;
  if (c.wal) sc.wal.snapshot_every = c.wal_snapshot_every;
  sc.auth.enable = c.auth;
  sc.auth.batch_verify = c.auth && c.auth_batch;
  if (c.auth && c.auth_adversary_node != kNoNode) {
    sc.auth_adversary.node = c.auth_adversary_node;
    sc.auth_adversary.mode = c.auth_adversary_mode == "forge"
                                 ? adversary::AuthTamperMode::kForge
                                 : adversary::AuthTamperMode::kReplay;
  }
  for (const sim::FuzzCase::Deviation& d : c.deviations) {
    sc.deviations.push_back(DeviationSpec{d.node, d.strategy, kZeroMoney});
  }
  sc.instances = c.instances;
  sc.pipeline_depth = c.pipeline_depth;
  return sc;
}

FuzzReport run_oracle(const Scenario& sc) {
  FuzzReport report;
  report.run = run_scenario(sc, /*force_clean_twin=*/true);
  const ScenarioRun& r = report.run;
  if (!r.clean || !r.clean->global_outcome.ok() || r.clean->stalled ||
      r.clean->event_budget_exhausted) {
    report.verdict = FuzzVerdict::kCleanFailed;
    report.detail =
        !r.clean ? "clean twin did not run"
                 : "clean twin failed: " +
                       (r.clean->global_outcome.ok()
                            ? std::string("stalled")
                            : std::string(abort_reason_name(
                                  r.clean->global_outcome.bottom().reason)));
    return report;
  }
  if (r.run.event_budget_exhausted) {
    report.verdict = FuzzVerdict::kBudgetExceeded;
    report.detail = "event budget exhausted with events still queued";
    return report;
  }
  if (r.run.global_outcome.ok()) {
    if (r.result_digest != r.clean_digest) {
      report.verdict = FuzzVerdict::kWrongResult;
      report.detail = "completed ok with digest " + r.result_digest +
                      " != clean " + r.clean_digest;
      return report;
    }
    report.verdict = FuzzVerdict::kPass;
    report.detail = "ok, matches clean (" + r.result_digest + ")";
    return report;
  }
  report.verdict = FuzzVerdict::kPass;
  report.detail = std::string("explicit bottom: ") +
                  abort_reason_name(r.run.global_outcome.bottom().reason);
  return report;
}

FuzzVerdict default_oracle(const Scenario& sc) { return run_oracle(sc).verdict; }

MinimizeResult minimize(const Scenario& failing, FuzzVerdict verdict,
                        const FuzzOracle& oracle) {
  MinimizeResult out;
  const ClausePool pool(failing);
  const auto fails = [&](const std::vector<std::size_t>& keep) {
    ++out.probes;
    return oracle(pool.apply(failing, keep)) == verdict;
  };
  const std::vector<std::size_t> kept = ddmin(pool.size(), fails);
  out.removed = pool.size() - kept.size();
  Scenario sc = pool.apply(failing, kept);

  // Scalar shrinking to a fixpoint: each accepted step strictly reduces a
  // clause scalar (or widens a window to the default full-run form), so the
  // loop terminates and re-running minimize() on its own output is a no-op
  // (idempotence, pinned by tests/fuzz_test.cpp).
  const auto probe = [&](const Scenario& candidate) {
    ++out.probes;
    return oracle(candidate) == verdict;
  };
  const auto try_step = [&](Scenario& current, const std::function<void(Scenario&)>& step) {
    Scenario candidate = current;
    step(candidate);
    if (probe(candidate)) {
      current = std::move(candidate);
      return true;
    }
    return false;
  };
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < sc.faults.links.size(); ++i) {
      sim::LinkFault& f = sc.faults.links[i];
      if (f.active_from != sim::kSimStart || f.active_until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].active_from = sim::kSimStart;
          s.faults.links[i].active_until = sim::kSimForever;
        });
      }
      if (halve_rate(f.drop) > 0.0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].drop = halve_rate(s.faults.links[i].drop);
        });
      }
      if (halve_rate(f.duplicate) > 0.0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].duplicate = halve_rate(s.faults.links[i].duplicate);
        });
      }
      if (f.extra_delay > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].extra_delay = halve_time(s.faults.links[i].extra_delay);
        });
      }
      if (f.jitter > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.links[i].jitter = halve_time(s.faults.links[i].jitter);
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.cuts.size(); ++i) {
      sim::LinkCut& cut = sc.faults.cuts[i];
      if (cut.from != sim::kSimStart || cut.until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.cuts[i].from = sim::kSimStart;
          s.faults.cuts[i].until = sim::kSimForever;
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.partitions.size(); ++i) {
      sim::Partition& p = sc.faults.partitions[i];
      if (p.from != sim::kSimStart || p.until != sim::kSimForever) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.partitions[i].from = sim::kSimStart;
          s.faults.partitions[i].until = sim::kSimForever;
        });
      }
    }
    for (std::size_t i = 0; i < sc.faults.crashes.size(); ++i) {
      sim::CrashEvent& crash = sc.faults.crashes[i];
      // Simplify amnesia to plain crash-recover first: if the failure
      // survives without the WAL-replay machinery, the repro shouldn't
      // drag it in.
      if (crash.mode == sim::CrashMode::kAmnesia) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.crashes[i].mode = sim::CrashMode::kRecover;
        });
      }
      if (crash.recover_at != sim::kSimForever) {
        // A crash that never recovers cannot be amnesia (the .scn validator
        // rejects mode=amnesia without recover_ms), so widening the down
        // window to forever resets the mode too.
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.crashes[i].recover_at = sim::kSimForever;
          s.faults.crashes[i].mode = sim::CrashMode::kRecover;
        });
      }
      if (crash.at > 0) {
        changed |= try_step(sc, [i](Scenario& s) {
          s.faults.crashes[i].at = halve_time(s.faults.crashes[i].at);
        });
      }
    }
  }
  out.scenario = std::move(sc);
  return out;
}

void pin_expectations(Scenario& sc, const FuzzReport& report) {
  ScenarioExpect exp;  // start from scratch: only the oracle's observations
  const SimRunResult& run = report.run.run;
  if (run.global_outcome.ok()) {
    exp.outcome = ScenarioExpect::Outcome::kOk;
    // The violation IS the mismatch: pin it so the repro self-checks.
    exp.matches_clean = report.run.result_digest == report.run.clean_digest;
  } else {
    exp.outcome = ScenarioExpect::Outcome::kBottom;
    exp.abort_reason = abort_reason_name(run.global_outcome.bottom().reason);
  }
  sc.expect = exp;
}

}  // namespace dauct::runtime
