// Threaded runtime: every provider is an OS thread over in-memory mailboxes.
//
// The wall-clock analogue of the paper's deployment (modulo the network):
// engines are the same sans-I/O state machines used by the virtual-time
// runtime, so this runtime doubles as a concurrency stress test of the
// protocol logic and as the execution vehicle for the TCP example.
#pragma once

#include <chrono>

#include "adversary/provider_deviation.hpp"
#include "core/distributed_auctioneer.hpp"
#include "net/mem_transport.hpp"

namespace dauct::runtime {

struct ThreadRunConfig {
  std::uint64_t seed = 1;
  std::chrono::milliseconds timeout{10'000};  ///< watchdog for stalls
  std::map<NodeId, std::shared_ptr<adversary::DeviationStrategy>> deviations;
};

struct ThreadRunResult {
  std::vector<auction::AuctionOutcome> provider_outcomes;
  auction::AuctionOutcome global_outcome{Bottom{}};
  std::chrono::nanoseconds wall_time{0};
  bool timed_out = false;
};

class ThreadRuntime {
 public:
  explicit ThreadRuntime(ThreadRunConfig config) : config_(std::move(config)) {}

  /// Run the distributed protocol with one thread per provider. Bids are
  /// taken directly from `instance` (honest bidders).
  ThreadRunResult run_distributed(const core::DistributedAuctioneer& auctioneer,
                                  const auction::AuctionInstance& instance);

 private:
  ThreadRunConfig config_;
};

}  // namespace dauct::runtime
