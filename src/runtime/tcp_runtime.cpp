#include "runtime/tcp_runtime.hpp"

#include <thread>

#include "common/log.hpp"
#include "serde/auction_codec.hpp"

namespace dauct::runtime {

namespace {
constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";
}  // namespace

TcpRunResult TcpRuntime::run_distributed(const core::DistributedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  const std::size_t m = auctioneer.spec().m;
  const NodeId client = static_cast<NodeId>(m);
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);

  net::TcpPeers peers;
  peers.base_port = config_.base_port != 0
                        ? config_.base_port
                        : net::pick_base_port(static_cast<std::uint16_t>(m + 1));

  TcpRunResult result;
  result.base_port = peers.base_port;

  // Bring up all nodes (listen sockets) before any traffic.
  std::vector<std::unique_ptr<net::TcpNode>> nodes;
  nodes.reserve(m + 1);
  for (NodeId j = 0; j <= m; ++j) {
    nodes.push_back(std::make_unique<net::TcpNode>(j, peers));
  }

  crypto::Rng seeder(config_.seed ^ 0x7c9ULL);
  std::vector<std::unique_ptr<net::TcpEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::ProviderEngine>> engines;
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(
        std::make_unique<net::TcpEndpoint>(*nodes[j], m, seeder.next_u64()));
    auction::Ask ask =
        j < instance.asks.size() ? instance.asks[j] : auction::Ask{j, {}, {}};
    engines.push_back(auctioneer.make_engine(*endpoints[j], ask));
  }

  const auto start_time = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    threads.emplace_back([&, j] {
      core::ProviderEngine& engine = *engines[j];
      bool reported = false;
      while (auto msg = nodes[j]->inbox().pop()) {
        if (msg->topic == bids_topic) {
          auto bids = serde::decode_bid_vector(msg->payload.view());
          if (bids) engine.start(*bids);
        } else {
          engine.on_message(*msg);
        }
        if (engine.done() && !reported) {
          reported = true;
          nodes[j]->send(net::Message{j, client, result_topic, Bytes{}});
        }
      }
    });
  }

  // Client: one bid batch per provider, then await m reports.
  // One shared buffer for the bid batch: every provider's copy aliases it.
  const SharedBytes bid_payload(serde::encode_bid_vector(instance.bids));
  for (NodeId j = 0; j < m; ++j) {
    if (!nodes[client]->send(net::Message{client, j, bids_topic, bid_payload})) {
      DAUCT_ERROR("tcp runtime: bid submission to provider " << j << " failed");
    }
  }

  std::size_t reports = 0;
  const auto deadline = start_time + config_.timeout;
  while (reports < m) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      result.timed_out = true;
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (auto msg = nodes[client]->inbox().pop_for(remaining)) {
      if (msg->topic == result_topic) ++reports;
    } else if (std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
  }
  result.wall_time = std::chrono::steady_clock::now() - start_time;

  for (auto& node : nodes) node->shutdown();
  for (auto& t : threads) t.join();

  result.provider_outcomes.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    if (engines[j]->done()) {
      result.provider_outcomes.push_back(*engines[j]->outcome());
    } else {
      result.provider_outcomes.push_back(auction::AuctionOutcome(
          Bottom{AbortReason::kTimeout, "tcp runtime stall"}));
    }
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  return result;
}

}  // namespace dauct::runtime
