#include "runtime/tcp_runtime.hpp"

#include <cstdlib>
#include <thread>

#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime {

namespace {
constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";
/// Broadcast by the client once all m reports are in: every provider
/// process may exit. Never journaled (it is not engine input).
constexpr const char* kShutdownTopic = "client/shutdown";

/// Provider `node`'s endpoint RNG seed: the (node+1)-th draw of the shared
/// seeder stream — identical across the in-process cluster and any set of
/// one-node processes started with the same run seed, which is what makes a
/// restarted provider's replay (and its re-sent frames) byte-exact.
std::uint64_t endpoint_seed_of(std::uint64_t run_seed, NodeId node) {
  crypto::Rng seeder(run_seed ^ 0x7c9ULL);
  std::uint64_t seed = 0;
  for (NodeId j = 0; j <= node; ++j) seed = seeder.next_u64();
  return seed;
}

/// The result report payload, byte-identical to the sim runtime's (the
/// client digests it; the WAL's kOutcome decision digests the same bytes).
Bytes encode_result_report(const auction::AuctionOutcome& out) {
  serde::Writer w;
  w.boolean(out.ok());
  if (out.ok()) {
    w.bytes(serde::encode_result(out.value()));
  } else {
    w.u8(static_cast<std::uint8_t>(out.bottom().reason));
  }
  return w.take();
}
}  // namespace

TcpRunResult TcpRuntime::run_distributed(const core::DistributedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  const std::size_t m = auctioneer.spec().m;
  const NodeId client = static_cast<NodeId>(m);
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);

  net::TcpPeers peers;
  peers.base_port = config_.base_port != 0
                        ? config_.base_port
                        : net::pick_base_port(static_cast<std::uint16_t>(m + 1));

  TcpRunResult result;
  result.base_port = peers.base_port;

  // Bring up all nodes (listen sockets) before any traffic.
  std::vector<std::unique_ptr<net::TcpNode>> nodes;
  nodes.reserve(m + 1);
  for (NodeId j = 0; j <= m; ++j) {
    nodes.push_back(std::make_unique<net::TcpNode>(j, peers));
  }

  crypto::Rng seeder(config_.seed ^ 0x7c9ULL);
  std::vector<std::unique_ptr<net::TcpEndpoint>> endpoints;
  std::vector<std::unique_ptr<core::ProviderEngine>> engines;
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(
        std::make_unique<net::TcpEndpoint>(*nodes[j], m, seeder.next_u64()));
    auction::Ask ask =
        j < instance.asks.size() ? instance.asks[j] : auction::Ask{j, {}, {}};
    engines.push_back(auctioneer.make_engine(*endpoints[j], ask));
  }

  const auto start_time = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    threads.emplace_back([&, j] {
      core::ProviderEngine& engine = *engines[j];
      bool reported = false;
      while (auto msg = nodes[j]->inbox().pop()) {
        if (msg->topic == bids_topic) {
          auto bids = serde::decode_bid_vector(msg->payload.view());
          if (bids) engine.start(*bids);
        } else {
          engine.on_message(*msg);
        }
        if (engine.done() && !reported) {
          reported = true;
          nodes[j]->send(net::Message{j, client, result_topic, Bytes{}});
        }
      }
    });
  }

  // Client: one bid batch per provider, then await m reports.
  // One shared buffer for the bid batch: every provider's copy aliases it.
  const SharedBytes bid_payload(serde::encode_bid_vector(instance.bids));
  for (NodeId j = 0; j < m; ++j) {
    if (!nodes[client]->send(net::Message{client, j, bids_topic, bid_payload})) {
      DAUCT_ERROR("tcp runtime: bid submission to provider " << j << " failed");
    }
  }

  std::size_t reports = 0;
  const auto deadline = start_time + config_.timeout;
  while (reports < m) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      result.timed_out = true;
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (auto msg = nodes[client]->inbox().pop_for(remaining)) {
      if (msg->topic == result_topic) ++reports;
    } else if (std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
  }
  result.wall_time = std::chrono::steady_clock::now() - start_time;

  for (auto& node : nodes) node->shutdown();
  for (auto& t : threads) t.join();

  result.provider_outcomes.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    if (engines[j]->done()) {
      result.provider_outcomes.push_back(*engines[j]->outcome());
    } else {
      result.provider_outcomes.push_back(auction::AuctionOutcome(
          Bottom{AbortReason::kTimeout, "tcp runtime stall"}));
    }
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  return result;
}

TcpProviderResult run_tcp_provider(const core::DistributedAuctioneer& auctioneer,
                                   const auction::AuctionInstance& instance,
                                   NodeId node, const TcpNodeConfig& config) {
  TcpProviderResult result;
  const std::size_t m = auctioneer.spec().m;
  const NodeId client = static_cast<NodeId>(m);
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  const net::Topic shutdown_topic(kShutdownTopic);
  const net::Topic rreq_topic(net::kRetransmitRequestTopicName);
  const std::uint64_t endpoint_seed = endpoint_seed_of(config.seed, node);

  // --- Durable state, opened BEFORE any socket is bound: a refused WAL must
  // fail fast without ever joining the cluster.
  std::unique_ptr<store::Wal> wal;
  std::vector<store::WalRecord> recovered;
  if (!config.wal_dir.empty()) {
    const std::string path =
        config.wal_dir + "/provider-" + std::to_string(node) + ".wal";
    auto storage = store::FileStorage::open(path);
    if (!storage) {
      result.error = "cannot open wal file " + path;
      return result;
    }
    wal = std::make_unique<store::Wal>(std::move(storage));
    store::WalScan scan = wal->open();
    store::WalMeta expected;
    expected.run_seed = config.seed;
    expected.node = node;
    expected.providers = m;
    expected.users = instance.bids.size();
    expected.k = auctioneer.spec().k;
    expected.endpoint_seed = endpoint_seed;
    if (scan.records.empty()) {
      const Bytes enc = store::encode_meta(expected);
      wal->append(store::RecordType::kMeta, BytesView(enc));
      wal->commit();
    } else {
      // Restart: the log must name THIS run and THIS node, or replaying it
      // would silently diverge — refuse foreign state instead.
      const auto meta = scan.records[0].type == store::RecordType::kMeta
                            ? store::decode_meta(BytesView(scan.records[0].payload))
                            : std::nullopt;
      if (!meta) {
        result.error = "wal recovery refused: " + path + " has no meta record";
        return result;
      }
      std::string why;
      if (!store::meta_matches(*meta, expected, &why)) {
        result.error = "wal recovery refused: " + path + ": " + why;
        return result;
      }
      recovered = std::move(scan.records);
    }
  }

  net::TcpPeers peers;
  peers.base_port = config.base_port;
  net::TcpNode tcp(node, peers);
  net::TcpEndpoint endpoint(tcp, m, endpoint_seed);
  // The reliability layer degrades to timerless over TCP (no retransmits),
  // but its receiver dedup, sent cache, re-request answering, and the rejoin
  // sweep are exactly the recovery machinery a restart needs. Immediate
  // standalone acks: no timer to flush a piggyback queue.
  net::ReliabilityConfig rcfg;
  rcfg.enable = true;
  rcfg.piggyback_acks = false;
  net::ReliableLink link(endpoint, rcfg);
  const std::unique_ptr<core::ProviderEngine> engine = auctioneer.make_engine(
      link, node < instance.asks.size() ? instance.asks[node]
                                        : auction::Ask{node, {}, {}});

  bool started = false, bids_agreed = false, reported = false;
  bool replaying = false;

  const auto journal_decision = [&](store::DecisionKind kind, bool ok,
                                    const crypto::Digest& digest) {
    if (!wal || replaying) return;
    store::Decision d;
    d.kind = kind;
    d.ok = ok;
    d.digest = digest;
    const Bytes enc = store::encode_decision(d);
    wal->append(store::RecordType::kDecision, BytesView(enc));
    wal->commit();
  };

  const auto note_progress = [&] {
    if (!bids_agreed && engine->agreed_bids().has_value()) {
      bids_agreed = true;
      serde::Writer w;
      const auto& bids = *engine->agreed_bids();
      w.varint(bids.size());
      for (const auto& b : bids) serde::write_bid(w, b);
      const Bytes enc = w.take();
      journal_decision(store::DecisionKind::kBidsAgreed, true,
                       crypto::sha256(BytesView(enc)));
    }
    if (engine->done() && !reported) {
      reported = true;
      const auto& out = *engine->outcome();
      Bytes payload = encode_result_report(out);
      journal_decision(store::DecisionKind::kOutcome, out.ok(),
                       crypto::sha256(BytesView(payload)));
      tcp.send(net::Message{node, client, result_topic,
                            SharedBytes(std::move(payload))});
    }
  };

  /// Engine dispatch shared by live deliveries and WAL replay: the replayed
  /// run re-executes the same code over the same bytes.
  const auto dispatch = [&](const net::Message& msg) {
    if (msg.topic == bids_topic) {
      auto bids = serde::decode_bid_vector(msg.payload.view());
      if (bids && !started) {
        started = true;
        journal_decision(store::DecisionKind::kStarted, true,
                         net::payload_digest(msg.payload));
        engine->start(*bids);
      }
    } else {
      engine->on_message(msg);
    }
    note_progress();
  };

  const auto maybe_snapshot = [&] {
    if (!wal || config.snapshot_every == 0) return;
    if (wal->message_records() % config.snapshot_every != 0) return;
    store::Snapshot s;
    s.messages_delivered = wal->message_records();
    s.started = started;
    s.bids_agreed = engine->agreed_bids().has_value();
    s.done = engine->done();
    const Bytes enc = store::encode_snapshot(s);
    wal->append(store::RecordType::kSnapshot, BytesView(enc));
    wal->commit();
  };

  // --- Recovery: replay the log through the real dispatch path, then sweep.
  if (!recovered.empty()) {
    result.recovered = true;
    replaying = true;
    std::uint64_t replayed = 0;
    for (const store::WalRecord& rec : recovered) {
      if (rec.type == store::RecordType::kMessage) {
        auto lm = store::decode_message(BytesView(rec.payload));
        if (!lm) continue;
        net::Message msg{lm->from, node, net::Topic(lm->topic),
                         SharedBytes(std::move(lm->payload))};
        // The key first, the engine second: post-recovery wire duplicates of
        // everything in the log must be swallowed, not re-delivered.
        link.restore_delivered(msg);
        dispatch(msg);
        ++replayed;
        ++wal->stats().messages_replayed;
      } else if (rec.type == store::RecordType::kSnapshot) {
        const auto snap = store::decode_snapshot(BytesView(rec.payload));
        ++wal->stats().snapshots_checked;
        if (!snap || snap->messages_delivered != replayed ||
            snap->started != started ||
            snap->bids_agreed != engine->agreed_bids().has_value() ||
            snap->done != engine->done()) {
          ++wal->stats().snapshot_mismatches;
          DAUCT_WARN("tcp provider " << node
                                     << ": wal snapshot mismatch at record "
                                     << replayed);
        }
      }
    }
    replaying = false;
    // Ask every peer to re-send its cached frames for this node — the
    // messages the dead incarnation never received have no other source
    // (no retransmit timers over TCP).
    link.request_rejoin();
  }

  // --- Live traffic until the client calls the run over (or timeout).
  const auto deadline = std::chrono::steady_clock::now() + config.timeout;
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      result.timed_out = true;
      break;
    }
    auto popped = tcp.inbox().pop_for(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!popped) {
      if (std::chrono::steady_clock::now() >= deadline) {
        result.timed_out = true;
        break;
      }
      continue;
    }
    net::Message msg = std::move(*popped);
    if (msg.topic == shutdown_topic) break;
    // A wildcard re-request announces a restarted peer: our cached outbound
    // socket predates its rebirth, and writes into it would be silently
    // swallowed until the RST — reset before the link answers the sweep.
    if (msg.topic == rreq_topic && msg.payload.view().size() == 1 &&
        msg.payload.view()[0] == '*') {
      tcp.reset_peer(msg.from);
    }
    if (!link.on_deliver(msg)) continue;
    if (wal) {
      // Write-ahead: the delivery is durable before the engine consumes it.
      wal->append_message_record(msg.from, msg.topic.str(),
                                 BytesView(msg.payload));
      wal->commit();
      if (config.crash_after != 0 &&
          wal->message_records() == config.crash_after) {
        // The fault hook: a real kill, not an exception — destructors do not
        // run, sockets die with the process, only the WAL survives.
        DAUCT_WARN("tcp provider " << node << ": crash-after hook, _exit(137)");
        std::_Exit(137);
      }
    }
    dispatch(msg);
    maybe_snapshot();
  }

  tcp.shutdown();
  result.outcome = engine->done()
                       ? *engine->outcome()
                       : auction::AuctionOutcome(Bottom{
                             AbortReason::kTimeout, "tcp provider stall"});
  if (wal) result.wal_stats = wal->stats();
  result.reliability_stats = link.stats();
  return result;
}

TcpClientResult run_tcp_client(const auction::AuctionInstance& instance,
                               std::size_t providers,
                               const TcpNodeConfig& config) {
  TcpClientResult result;
  const std::size_t m = providers;
  const NodeId client = static_cast<NodeId>(m);
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  const net::Topic shutdown_topic(kShutdownTopic);

  net::TcpPeers peers;
  peers.base_port = config.base_port;
  net::TcpNode tcp(client, peers);
  const auto deadline = std::chrono::steady_clock::now() + config.timeout;

  // Submit the batch; keep trying per provider until its listener is up.
  const SharedBytes bid_payload(serde::encode_bid_vector(instance.bids));
  std::vector<bool> submitted(m, false);
  std::size_t submissions = 0;
  while (submissions < m && std::chrono::steady_clock::now() < deadline) {
    for (NodeId j = 0; j < static_cast<NodeId>(m); ++j) {
      if (submitted[j]) continue;
      if (tcp.send(net::Message{client, j, bids_topic, bid_payload})) {
        submitted[j] = true;
        ++submissions;
      }
    }
    if (submissions < m) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (submissions < m) {
    result.timed_out = true;
    result.error = "bid submission timed out";
    tcp.shutdown();
    return result;
  }

  // Await one report per provider; all must agree byte-for-byte.
  std::vector<bool> seen(m, false);
  std::size_t reports = 0;
  std::string digest;
  bool all_ok = true;
  while (reports < m) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      result.timed_out = true;
      result.error = "awaited " + std::to_string(m) + " reports, got " +
                     std::to_string(reports);
      break;
    }
    auto msg = tcp.inbox().pop_for(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now));
    if (!msg || msg->topic != result_topic) continue;
    if (msg->from >= m || seen[msg->from]) continue;  // duplicate-safe
    seen[msg->from] = true;
    ++reports;
    serde::Reader r(msg->payload.view());
    if (!r.boolean()) all_ok = false;
    const std::string d =
        crypto::digest_hex(crypto::sha256(msg->payload.view()));
    if (digest.empty()) {
      digest = d;
    } else if (d != digest) {
      all_ok = false;
      result.error = "divergent result reports";
    }
  }
  if (reports == m) {
    result.ok = all_ok;
    result.result_digest = digest;
    if (!all_ok && result.error.empty()) result.error = "a provider reported ⊥";
  }

  // The run is over either way: release every provider process.
  for (NodeId j = 0; j < static_cast<NodeId>(m); ++j) {
    tcp.send(net::Message{client, j, shutdown_topic, SharedBytes(Bytes{})});
  }
  tcp.shutdown();
  return result;
}

}  // namespace dauct::runtime
