#include "runtime/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "auction/workload.hpp"
#include "core/adapters.hpp"
#include "core/service_plane.hpp"
#include "crypto/sha256.hpp"
#include "serde/auction_codec.hpp"
#include "serde/csv.hpp"
#include "serde/ini.hpp"
#include "serde/ini_values.hpp"

namespace dauct::runtime {

namespace {

// --- Typed value parsing ---------------------------------------------------
// Scalar grammar lives in serde/ini_values.hpp (shared with the fuzz-bounds
// parser and the to_scn emitter); these aliases keep the section schemas
// below readable.

const auto& to_u64 = serde::parse_u64;
const auto& to_double = serde::parse_f64;
const auto& to_bool = serde::parse_bool_word;
const auto& to_time_ms = serde::parse_time_ms;
const auto& to_probability = serde::parse_probability;

/// Node field: a provider index, "client" (= providers, the client node of
/// the sim deployment), or "any" (wildcard, link rules only).
std::optional<NodeId> to_node(const std::string& s, std::size_t providers) {
  if (s == "any" || s == "*") return kNoNode;
  if (s == "client") return static_cast<NodeId>(providers);
  const auto v = to_u64(s);
  if (!v || *v >= kNoNode) return std::nullopt;
  return static_cast<NodeId>(*v);
}

// --- Section schemas -------------------------------------------------------

struct ParseCtx {
  Scenario sc;
  std::string error;  ///< first error; parsing stops

  bool fail(std::size_t line, const std::string& what) {
    if (error.empty()) error = "line " + std::to_string(line) + ": " + what;
    return false;
  }
  bool bad_value(const serde::IniKeyValue& kv) {
    return fail(kv.line, "bad value for '" + kv.key + "': '" + kv.value + "'");
  }
  bool unknown_key(const std::string& section, const serde::IniKeyValue& kv) {
    return fail(kv.line, "unknown key '" + kv.key + "' in [" + section + "]");
  }
};

bool parse_scenario_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "name") ctx.sc.name = kv.value;
    else if (kv.key == "description") ctx.sc.description = kv.value;
    else return ctx.unknown_key("scenario", kv);
  }
  return true;
}

bool parse_run_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "auction") {
      if (kv.value != "double" && kv.value != "standard") return ctx.bad_value(kv);
      ctx.sc.auction = kv.value;
    } else if (kv.key == "users") {
      const auto v = to_u64(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);
      ctx.sc.users = static_cast<std::size_t>(*v);
    } else if (kv.key == "providers") {
      const auto v = to_u64(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);
      ctx.sc.providers = static_cast<std::size_t>(*v);
    } else if (kv.key == "k") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.k = static_cast<std::size_t>(*v);
    } else if (kv.key == "epsilon") {
      const auto v = to_double(kv.value);
      if (!v || *v <= 0 || *v >= 1) return ctx.bad_value(kv);
      ctx.sc.epsilon = *v;
    } else if (kv.key == "seed") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.seed = *v;
    } else if (kv.key == "latency") {
      if (kv.value != "zero" && kv.value != "lan" && kv.value != "community") {
        return ctx.bad_value(kv);
      }
      ctx.sc.latency = kv.value;
    } else if (kv.key == "max_events") {
      const auto v = to_u64(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);
      ctx.sc.max_events = *v;
    } else {
      return ctx.unknown_key("run", kv);
    }
  }
  return true;
}

bool parse_fault_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "seed") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.faults.seed = *v;
    } else {
      return ctx.unknown_key("fault", kv);
    }
  }
  return true;
}

bool parse_link_section(ParseCtx& ctx, const serde::IniSection& sec) {
  sim::LinkFault rule;
  for (const auto& kv : sec.entries) {
    if (kv.key == "from" || kv.key == "to") {
      const auto v = to_node(kv.value, ctx.sc.providers);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "from" ? rule.from : rule.to) = *v;
    } else if (kv.key == "symmetric") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      rule.symmetric = *v;
    } else if (kv.key == "drop" || kv.key == "duplicate") {
      const auto v = to_probability(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "drop" ? rule.drop : rule.duplicate) = *v;
    } else if (kv.key == "delay_ms" || kv.key == "jitter_ms" ||
               kv.key == "from_ms" || kv.key == "until_ms") {
      const auto v = to_time_ms(kv.value);
      if (!v) return ctx.bad_value(kv);
      if (kv.key == "delay_ms") rule.extra_delay = *v;
      else if (kv.key == "jitter_ms") rule.jitter = *v;
      else if (kv.key == "from_ms") rule.active_from = *v;
      else rule.active_until = *v;
    } else if (kv.key == "instance") {
      const auto v = to_u64(kv.value);
      if (!v || *v == sim::kAnyInstance) return ctx.bad_value(kv);
      rule.instance = *v;
    } else {
      return ctx.unknown_key("link", kv);
    }
  }
  ctx.sc.faults.links.push_back(rule);
  return true;
}

bool parse_cut_section(ParseCtx& ctx, const serde::IniSection& sec) {
  sim::LinkCut cut;
  for (const auto& kv : sec.entries) {
    if (kv.key == "a" || kv.key == "b") {
      const auto v = to_node(kv.value, ctx.sc.providers);
      if (!v || *v == kNoNode) return ctx.bad_value(kv);
      (kv.key == "a" ? cut.a : cut.b) = *v;
    } else if (kv.key == "from_ms" || kv.key == "until_ms") {
      const auto v = to_time_ms(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "from_ms" ? cut.from : cut.until) = *v;
    } else if (kv.key == "instance") {
      const auto v = to_u64(kv.value);
      if (!v || *v == sim::kAnyInstance) return ctx.bad_value(kv);
      cut.instance = *v;
    } else {
      return ctx.unknown_key("cut", kv);
    }
  }
  if (cut.a == kNoNode || cut.b == kNoNode) {
    return ctx.fail(sec.line, "[cut] needs both endpoints 'a' and 'b'");
  }
  ctx.sc.faults.cuts.push_back(cut);
  return true;
}

bool parse_partition_section(ParseCtx& ctx, const serde::IniSection& sec) {
  sim::Partition part;
  for (const auto& kv : sec.entries) {
    if (kv.key == "group") {
      std::string_view rest = kv.value;
      while (!rest.empty()) {
        const std::size_t comma = rest.find(',');
        std::string item(rest.substr(0, comma));
        rest.remove_prefix(comma == std::string_view::npos ? rest.size() : comma + 1);
        while (!item.empty() && item.front() == ' ') item.erase(item.begin());
        while (!item.empty() && item.back() == ' ') item.pop_back();
        const auto v = to_node(item, ctx.sc.providers);
        if (!v || *v == kNoNode) return ctx.bad_value(kv);
        part.group.push_back(*v);
      }
      if (part.group.empty()) return ctx.bad_value(kv);
    } else if (kv.key == "from_ms" || kv.key == "until_ms") {
      const auto v = to_time_ms(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "from_ms" ? part.from : part.until) = *v;
    } else if (kv.key == "instance") {
      const auto v = to_u64(kv.value);
      if (!v || *v == sim::kAnyInstance) return ctx.bad_value(kv);
      part.instance = *v;
    } else {
      return ctx.unknown_key("partition", kv);
    }
  }
  if (part.group.empty()) {
    return ctx.fail(sec.line, "[partition] needs a 'group'");
  }
  ctx.sc.faults.partitions.push_back(std::move(part));
  return true;
}

bool parse_crash_section(ParseCtx& ctx, const serde::IniSection& sec) {
  sim::CrashEvent crash;
  bool have_node = false;
  for (const auto& kv : sec.entries) {
    if (kv.key == "node") {
      const auto v = to_node(kv.value, ctx.sc.providers);
      if (!v || *v == kNoNode) return ctx.bad_value(kv);
      crash.node = *v;
      have_node = true;
    } else if (kv.key == "at_ms" || kv.key == "recover_ms") {
      const auto v = to_time_ms(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "at_ms" ? crash.at : crash.recover_at) = *v;
    } else if (kv.key == "mode") {
      if (kv.value == "recover") crash.mode = sim::CrashMode::kRecover;
      else if (kv.value == "amnesia") crash.mode = sim::CrashMode::kAmnesia;
      else return ctx.bad_value(kv);
    } else {
      return ctx.unknown_key("crash", kv);
    }
  }
  if (!have_node) return ctx.fail(sec.line, "[crash] needs a 'node'");
  if (crash.mode == sim::CrashMode::kAmnesia &&
      crash.recover_at == sim::kSimForever) {
    return ctx.fail(sec.line,
                    "[crash] mode=amnesia needs recover_ms (a node that never "
                    "restarts has nothing to recover)");
  }
  ctx.sc.faults.crashes.push_back(crash);
  return true;
}

bool parse_reliability_section(ParseCtx& ctx, const serde::IniSection& sec) {
  bool knobs = false;  // any key besides enable
  for (const auto& kv : sec.entries) {
    if (kv.key == "enable") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.reliability.enable = *v;
    } else if (kv.key == "retransmit_delay_ms") {
      const auto v = to_time_ms(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);  // 0 would retransmit in a spin
      ctx.sc.reliability.retransmit_delay = *v;
      knobs = true;
    } else if (kv.key == "max_retries") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.reliability.max_retries = static_cast<std::size_t>(*v);
      knobs = true;
    } else if (kv.key == "round_timeout_ms") {
      const auto v = to_time_ms(kv.value);  // 0 = watchdogs off
      if (!v) return ctx.bad_value(kv);
      ctx.sc.reliability.round_timeout = *v;
      // 0 is the documented "watchdogs off" value — consistent with a
      // disabled layer, so it does not count as a dangling knob.
      knobs = knobs || *v != 0;
    } else if (kv.key == "piggyback_acks") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.reliability.piggyback_acks = *v;
      // true is the default — only turning the optimization *off* counts as
      // a knob worth failing fast over on a disabled layer.
      knobs = knobs || !*v;
    } else {
      return ctx.unknown_key("reliability", kv);
    }
  }
  // Tuning knobs on a disabled layer would silently do nothing (no link is
  // constructed): that is a config mistake, not a request — fail fast.
  if (knobs && !ctx.sc.reliability.enable) {
    return ctx.fail(sec.line,
                    "[reliability] sets tuning knobs without enable=true; "
                    "they would silently do nothing");
  }
  return true;
}

bool parse_wal_section(ParseCtx& ctx, const serde::IniSection& sec) {
  bool knobs = false;         // any key besides enable
  bool corrupt_knobs = false; // any corrupt sub-knob besides corrupt itself
  for (const auto& kv : sec.entries) {
    if (kv.key == "enable") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.wal.enable = *v;
    } else if (kv.key == "snapshot_every") {
      const auto v = to_u64(kv.value);  // 0 = no snapshots (documented)
      if (!v) return ctx.bad_value(kv);
      ctx.sc.wal.snapshot_every = static_cast<std::size_t>(*v);
      knobs = true;
    } else if (kv.key == "corrupt") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.wal_fault.enable = *v;
      knobs = knobs || *v;
    } else if (kv.key == "corrupt_seed") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.wal_fault.seed = *v;
      knobs = corrupt_knobs = true;
    } else if (kv.key == "sync_drop" || kv.key == "torn" || kv.key == "flip") {
      const auto v = to_probability(kv.value);
      if (!v) return ctx.bad_value(kv);
      if (kv.key == "sync_drop") ctx.sc.wal_fault.sync_drop = *v;
      else if (kv.key == "torn") ctx.sc.wal_fault.torn = *v;
      else ctx.sc.wal_fault.flip = *v;
      knobs = corrupt_knobs = true;
    } else {
      return ctx.unknown_key("wal", kv);
    }
  }
  // Same fail-fast contract as [reliability]: tuning knobs on a disabled
  // layer would silently do nothing (no WAL is constructed).
  if (knobs && !ctx.sc.wal.enable) {
    return ctx.fail(sec.line,
                    "[wal] sets tuning knobs without enable=true; they would "
                    "silently do nothing");
  }
  if (corrupt_knobs && !ctx.sc.wal_fault.enable) {
    return ctx.fail(sec.line,
                    "[wal] sets corrupt knobs without corrupt=true; they "
                    "would silently do nothing");
  }
  if (ctx.sc.wal_fault.torn + ctx.sc.wal_fault.flip > 1.0) {
    return ctx.fail(sec.line,
                    "[wal] torn + flip must not exceed 1 (a crash draws one "
                    "damage mode)");
  }
  return true;
}

bool parse_bidder_section(ParseCtx& ctx, const serde::IniSection& sec) {
  BidderSpec spec;
  bool have_bidder = false;
  for (const auto& kv : sec.entries) {
    if (kv.key == "bidder") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      spec.bidder = static_cast<BidderId>(*v);
      have_bidder = true;
    } else if (kv.key == "behaviour") {
      const auto& names = adversary::bidder_behaviour_names();
      if (std::find(names.begin(), names.end(), kv.value) == names.end()) {
        return ctx.fail(kv.line, "unknown bidder behaviour '" + kv.value + "'");
      }
      spec.behaviour = kv.value;
    } else {
      return ctx.unknown_key("bidder", kv);
    }
  }
  if (!have_bidder || spec.behaviour.empty()) {
    return ctx.fail(sec.line, "[bidder] needs 'bidder' and 'behaviour'");
  }
  ctx.sc.bidders.push_back(std::move(spec));
  return true;
}

bool parse_bid_frames_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "replay" || kv.key == "reorder") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "replay" ? ctx.sc.bid_frames.replay
                          : ctx.sc.bid_frames.reorder) = *v;
    } else {
      return ctx.unknown_key("bid_frames", kv);
    }
  }
  // A no-trick section would silently do nothing — config mistake, fail fast.
  if (!ctx.sc.bid_frames.any()) {
    return ctx.fail(sec.line,
                    "[bid_frames] needs replay=true or reorder=true");
  }
  return true;
}

bool parse_auth_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "enable") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.auth.enable = *v;
    } else if (kv.key == "batch") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.auth.batch_verify = *v;
    } else {
      return ctx.unknown_key("auth", kv);
    }
  }
  // Same fail-fast contract as [reliability]: a batch knob on a disabled
  // layer would silently do nothing.
  if (ctx.sc.auth.batch_verify && !ctx.sc.auth.enable) {
    return ctx.fail(sec.line,
                    "[auth] sets batch without enable=true; it would "
                    "silently do nothing");
  }
  return true;
}

bool parse_auth_adversary_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "node") {
      const auto v = to_node(kv.value, ctx.sc.providers);
      if (!v || *v == kNoNode) return ctx.bad_value(kv);
      ctx.sc.auth_adversary.node = *v;
    } else if (kv.key == "mode") {
      if (kv.value == "forge") {
        ctx.sc.auth_adversary.mode = adversary::AuthTamperMode::kForge;
      } else if (kv.value == "replay") {
        ctx.sc.auth_adversary.mode = adversary::AuthTamperMode::kReplay;
      } else {
        return ctx.bad_value(kv);
      }
    } else {
      return ctx.unknown_key("auth_adversary", kv);
    }
  }
  if (ctx.sc.auth_adversary.node == kNoNode ||
      ctx.sc.auth_adversary.mode == adversary::AuthTamperMode::kNone) {
    return ctx.fail(sec.line, "[auth_adversary] needs 'node' and 'mode'");
  }
  return true;
}

bool parse_deviation_section(ParseCtx& ctx, const serde::IniSection& sec) {
  DeviationSpec dev;
  for (const auto& kv : sec.entries) {
    if (kv.key == "node") {
      const auto v = to_node(kv.value, ctx.sc.providers);
      if (!v || *v == kNoNode) return ctx.bad_value(kv);
      dev.node = *v;
    } else if (kv.key == "strategy") {
      const auto& names = deviation_strategy_names();
      if (std::find(names.begin(), names.end(), kv.value) == names.end()) {
        return ctx.fail(kv.line, "unknown strategy '" + kv.value + "'");
      }
      dev.strategy = kv.value;
    } else if (kv.key == "fake_cost") {
      const auto v = serde::parse_money(kv.value);
      if (!v) return ctx.bad_value(kv);
      dev.fake_cost = *v;
    } else if (kv.key == "instance") {
      const auto v = to_u64(kv.value);
      if (!v || *v == sim::kAnyInstance) return ctx.bad_value(kv);
      dev.instance = *v;
    } else {
      return ctx.unknown_key("deviation", kv);
    }
  }
  if (dev.node == kNoNode || dev.strategy.empty()) {
    return ctx.fail(sec.line, "[deviation] needs 'node' and 'strategy'");
  }
  ctx.sc.deviations.push_back(std::move(dev));
  return true;
}

bool parse_service_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "instances") {
      const auto v = to_u64(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);
      ctx.sc.instances = static_cast<std::size_t>(*v);
    } else if (kv.key == "pipeline_depth") {
      const auto v = to_u64(kv.value);
      if (!v || *v == 0) return ctx.bad_value(kv);
      ctx.sc.pipeline_depth = static_cast<std::size_t>(*v);
    } else {
      return ctx.unknown_key("service", kv);
    }
  }
  return true;
}

bool parse_expect_section(ParseCtx& ctx, const serde::IniSection& sec) {
  for (const auto& kv : sec.entries) {
    if (kv.key == "outcome") {
      if (kv.value == "ok") ctx.sc.expect.outcome = ScenarioExpect::Outcome::kOk;
      else if (kv.value == "bottom") ctx.sc.expect.outcome = ScenarioExpect::Outcome::kBottom;
      else return ctx.bad_value(kv);
    } else if (kv.key == "stalled" || kv.key == "matches_clean") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      (kv.key == "stalled" ? ctx.sc.expect.stalled : ctx.sc.expect.matches_clean) = *v;
    } else if (kv.key == "abort_reason") {
      ctx.sc.expect.abort_reason = kv.value;
    } else if (kv.key == "min_faults") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.expect.min_faults = *v;
    } else if (kv.key == "min_auth_rejects") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.expect.min_auth_rejects = *v;
    } else if (kv.key == "equivocation_proof") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.expect.equivocation_proof = *v;
    } else if (kv.key == "min_instances_ok") {
      const auto v = to_u64(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.expect.min_instances_ok = *v;
    } else if (kv.key == "instances_match_twins") {
      const auto v = to_bool(kv.value);
      if (!v) return ctx.bad_value(kv);
      ctx.sc.expect.instances_match_twins = *v;
    } else {
      return ctx.unknown_key("expect", kv);
    }
  }
  return true;
}

// --- Run helpers -----------------------------------------------------------

sim::LatencyModel latency_by_name(const std::string& name) {
  if (name == "zero") return sim::LatencyModel::zero();
  if (name == "lan") return sim::LatencyModel::lan();
  return sim::LatencyModel::community();
}

std::shared_ptr<adversary::DeviationStrategy> make_strategy(
    const DeviationSpec& dev, std::vector<NodeId> coalition) {
  if (dev.strategy == "honest") return adversary::honest_provider();
  if (dev.strategy == "corrupt-coin-reveal") return adversary::corrupt_coin_reveal();
  if (dev.strategy == "equivocate-votes") return adversary::equivocate_votes();
  if (dev.strategy == "forge-task-results") {
    return adversary::forge_task_results(std::move(coalition));
  }
  if (dev.strategy == "forge-output-digest") {
    return adversary::forge_output_digest(std::move(coalition));
  }
  if (dev.strategy == "selective-silence") {
    return adversary::selective_silence(std::move(coalition));
  }
  if (dev.strategy == "misreport-ask") return adversary::misreport_ask(dev.fake_cost);
  return nullptr;  // unreachable: names validated at parse time
}

std::string digest_of(const SimRunResult& run) {
  if (!run.global_outcome.ok()) return std::string();
  const Bytes enc = serde::encode_result(run.global_outcome.value());
  return crypto::digest_hex(crypto::sha256(BytesView(enc)));
}

/// Per-instance result digest — the value compared against the instance's
/// single-run twin's digest_of().
std::string digest_of_instance(const InstanceRunResult& inst) {
  if (!inst.outcome.ok()) return std::string();
  const Bytes enc = serde::encode_result(inst.outcome.value());
  return crypto::digest_hex(crypto::sha256(BytesView(enc)));
}

/// Service-run digest: sha256 over the concatenated per-instance result
/// encodings; "" when any instance is ⊥ (mirrors digest_of's ⊥ rule).
std::string digest_of_service(const ServiceRunResult& s) {
  Bytes all;
  for (const auto& inst : s.instances) {
    if (!inst.outcome.ok()) return std::string();
    const Bytes enc = serde::encode_result(inst.outcome.value());
    all.insert(all.end(), enc.begin(), enc.end());
  }
  return crypto::digest_hex(crypto::sha256(BytesView(all)));
}

/// Aggregate a service run into the single-run result shape so every
/// [expect] key keeps its meaning: global outcome ok iff ALL instances
/// cleared (else the first ⊥ — its reason drives abort_reason), stats and
/// the proof carried over verbatim.
SimRunResult aggregate_service(const ServiceRunResult& s) {
  SimRunResult r;
  r.global_outcome = auction::AuctionOutcome(
      Bottom{AbortReason::kTimeout, "service run produced no instances"});
  bool all_ok = !s.instances.empty();
  for (const auto& inst : s.instances) {
    if (!inst.outcome.ok()) {
      all_ok = false;
      r.global_outcome = inst.outcome;
      break;
    }
  }
  if (all_ok) r.global_outcome = s.instances.front().outcome;
  r.makespan = s.makespan;
  r.traffic = s.traffic;
  r.fault_stats = s.fault_stats;
  r.reliability_stats = s.reliability_stats;
  r.auth_stats = s.auth_stats;
  r.wal_stats = s.wal_stats;
  r.equivocation_proof = s.equivocation_proof;
  r.stalled = s.stalled;
  r.event_budget_exhausted = s.event_budget_exhausted;
  r.events_dispatched = s.events_dispatched;
  return r;
}

}  // namespace

std::string instance_result_digest(const InstanceRunResult& inst) {
  return digest_of_instance(inst);
}

const std::vector<std::string>& deviation_strategy_names() {
  static const std::vector<std::string> names = {
      "honest",           "corrupt-coin-reveal", "equivocate-votes",
      "forge-task-results", "forge-output-digest", "selective-silence",
      "misreport-ask",
  };
  return names;
}

std::string Scenario::to_scn() const {
  // Emission rules that make to_scn a fixpoint of parse ∘ to_scn:
  //  * keys whose value equals the parsed default are omitted;
  //  * scalars use the canonical serde/ini_values.hpp formatters;
  //  * sections appear in a fixed order (the parser accepts any order).
  const Scenario defaults;
  std::string out;
  const auto node_str = [this](NodeId n) -> std::string {
    if (n == kNoNode) return "any";
    if (n == static_cast<NodeId>(providers)) return "client";
    return std::to_string(n);
  };
  const auto kv = [&out](const char* key, const std::string& value) {
    out += key;
    out += " = ";
    out += value;
    out += "\n";
  };
  const auto time_kv = [&](const char* key, sim::SimTime v, sim::SimTime dflt) {
    if (v != dflt) kv(key, serde::format_time_ms(v));
  };

  if (!name.empty() || !description.empty()) {
    out += "[scenario]\n";
    if (!name.empty()) kv("name", name);
    if (!description.empty()) kv("description", description);
    out += "\n";
  }

  out += "[run]\n";
  if (auction != defaults.auction) kv("auction", auction);
  kv("users", std::to_string(users));
  kv("providers", std::to_string(providers));
  kv("k", std::to_string(k));
  if (epsilon != defaults.epsilon) kv("epsilon", serde::format_f64(epsilon));
  kv("seed", std::to_string(seed));
  if (latency != defaults.latency) kv("latency", latency);
  if (max_events != defaults.max_events) {
    kv("max_events", std::to_string(max_events));
  }

  if (instances != defaults.instances ||
      pipeline_depth != defaults.pipeline_depth) {
    out += "\n[service]\n";
    kv("instances", std::to_string(instances));
    if (pipeline_depth != defaults.pipeline_depth) {
      kv("pipeline_depth", std::to_string(pipeline_depth));
    }
  }

  if (!faults.empty() || faults.seed != defaults.faults.seed) {
    out += "\n[fault]\n";
    kv("seed", std::to_string(faults.seed));
  }
  for (const auto& r : faults.links) {
    const sim::LinkFault d;
    out += "\n[link]\n";
    if (r.from != kNoNode) kv("from", node_str(r.from));
    if (r.to != kNoNode) kv("to", node_str(r.to));
    if (r.symmetric != d.symmetric) kv("symmetric", r.symmetric ? "true" : "false");
    if (r.drop != 0.0) kv("drop", serde::format_f64(r.drop));
    if (r.duplicate != 0.0) kv("duplicate", serde::format_f64(r.duplicate));
    time_kv("delay_ms", r.extra_delay, 0);
    time_kv("jitter_ms", r.jitter, 0);
    time_kv("from_ms", r.active_from, sim::kSimStart);
    time_kv("until_ms", r.active_until, sim::kSimForever);
    if (r.instance != sim::kAnyInstance) {
      kv("instance", std::to_string(r.instance));
    }
  }
  for (const auto& c : faults.cuts) {
    out += "\n[cut]\n";
    kv("a", node_str(c.a));
    kv("b", node_str(c.b));
    time_kv("from_ms", c.from, sim::kSimStart);
    time_kv("until_ms", c.until, sim::kSimForever);
    if (c.instance != sim::kAnyInstance) {
      kv("instance", std::to_string(c.instance));
    }
  }
  for (const auto& p : faults.partitions) {
    out += "\n[partition]\n";
    std::string group;
    for (NodeId n : p.group) {
      if (!group.empty()) group += ", ";
      group += node_str(n);
    }
    kv("group", group);
    time_kv("from_ms", p.from, sim::kSimStart);
    time_kv("until_ms", p.until, sim::kSimForever);
    if (p.instance != sim::kAnyInstance) {
      kv("instance", std::to_string(p.instance));
    }
  }
  for (const auto& c : faults.crashes) {
    out += "\n[crash]\n";
    kv("node", node_str(c.node));
    time_kv("at_ms", c.at, sim::kSimStart);
    time_kv("recover_ms", c.recover_at, sim::kSimForever);
    if (c.mode == sim::CrashMode::kAmnesia) kv("mode", "amnesia");
  }

  if (reliability.enable) {
    const net::ReliabilityConfig d;
    out += "\n[reliability]\n";
    kv("enable", "true");
    time_kv("retransmit_delay_ms", reliability.retransmit_delay, d.retransmit_delay);
    if (reliability.max_retries != d.max_retries) {
      kv("max_retries", std::to_string(reliability.max_retries));
    }
    time_kv("round_timeout_ms", reliability.round_timeout, d.round_timeout);
    if (reliability.piggyback_acks != d.piggyback_acks) {
      kv("piggyback_acks", reliability.piggyback_acks ? "true" : "false");
    }
  }
  if (wal.enable) {
    const store::WalConfig d;
    const store::StorageFaultConfig fd;
    out += "\n[wal]\n";
    kv("enable", "true");
    if (wal.snapshot_every != d.snapshot_every) {
      kv("snapshot_every", std::to_string(wal.snapshot_every));
    }
    if (wal_fault.enable) {
      kv("corrupt", "true");
      if (wal_fault.seed != fd.seed) {
        kv("corrupt_seed", std::to_string(wal_fault.seed));
      }
      if (wal_fault.sync_drop != 0.0) {
        kv("sync_drop", serde::format_f64(wal_fault.sync_drop));
      }
      if (wal_fault.torn != 0.0) kv("torn", serde::format_f64(wal_fault.torn));
      if (wal_fault.flip != 0.0) kv("flip", serde::format_f64(wal_fault.flip));
    }
  }
  if (auth.enable) {
    out += "\n[auth]\n";
    kv("enable", "true");
    if (auth.batch_verify) kv("batch", "true");
  }
  if (auth_adversary.mode != adversary::AuthTamperMode::kNone) {
    out += "\n[auth_adversary]\n";
    kv("node", node_str(auth_adversary.node));
    kv("mode", auth_adversary.mode == adversary::AuthTamperMode::kForge
                   ? "forge"
                   : "replay");
  }
  for (const auto& dev : deviations) {
    out += "\n[deviation]\n";
    kv("node", node_str(dev.node));
    kv("strategy", dev.strategy);
    if (dev.fake_cost != kZeroMoney) kv("fake_cost", dev.fake_cost.str());
    if (dev.instance != sim::kAnyInstance) {
      kv("instance", std::to_string(dev.instance));
    }
  }
  for (const auto& b : bidders) {
    out += "\n[bidder]\n";
    kv("bidder", std::to_string(b.bidder));
    kv("behaviour", b.behaviour);
  }
  if (bid_frames.any()) {
    out += "\n[bid_frames]\n";
    if (bid_frames.replay) kv("replay", "true");
    if (bid_frames.reorder) kv("reorder", "true");
  }

  std::string exp;
  const auto exp_kv = [&exp](const char* key, const std::string& value) {
    exp += key;
    exp += " = ";
    exp += value;
    exp += "\n";
  };
  if (expect.outcome != ScenarioExpect::Outcome::kUnspecified) {
    exp_kv("outcome",
           expect.outcome == ScenarioExpect::Outcome::kOk ? "ok" : "bottom");
  }
  if (expect.stalled) exp_kv("stalled", *expect.stalled ? "true" : "false");
  if (expect.matches_clean) {
    exp_kv("matches_clean", *expect.matches_clean ? "true" : "false");
  }
  if (expect.abort_reason) exp_kv("abort_reason", *expect.abort_reason);
  if (expect.min_faults) exp_kv("min_faults", std::to_string(*expect.min_faults));
  if (expect.min_auth_rejects) {
    exp_kv("min_auth_rejects", std::to_string(*expect.min_auth_rejects));
  }
  if (expect.equivocation_proof) {
    exp_kv("equivocation_proof", *expect.equivocation_proof ? "true" : "false");
  }
  if (expect.min_instances_ok) {
    exp_kv("min_instances_ok", std::to_string(*expect.min_instances_ok));
  }
  if (expect.instances_match_twins) {
    exp_kv("instances_match_twins",
           *expect.instances_match_twins ? "true" : "false");
  }
  if (!exp.empty()) {
    out += "\n[expect]\n";
    out += exp;
  }
  return out;
}

ScenarioParse parse_scenario(std::string_view text) {
  const serde::IniResult ini = serde::parse_ini(text);
  if (!ini.ok()) return {std::nullopt, ini.error};

  // Two passes: [run] first (node fields like "client" and validation need
  // the provider count), then everything else in file order.
  ParseCtx ctx;
  for (const auto& sec : ini.doc->sections) {
    if (sec.name == "run" && !parse_run_section(ctx, sec)) {
      return {std::nullopt, ctx.error};
    }
  }
  for (const auto& sec : ini.doc->sections) {
    bool ok = true;
    if (sec.name == "run") continue;
    else if (sec.name == "scenario") ok = parse_scenario_section(ctx, sec);
    else if (sec.name == "fault") ok = parse_fault_section(ctx, sec);
    else if (sec.name == "link") ok = parse_link_section(ctx, sec);
    else if (sec.name == "cut") ok = parse_cut_section(ctx, sec);
    else if (sec.name == "partition") ok = parse_partition_section(ctx, sec);
    else if (sec.name == "crash") ok = parse_crash_section(ctx, sec);
    else if (sec.name == "reliability") ok = parse_reliability_section(ctx, sec);
    else if (sec.name == "wal") ok = parse_wal_section(ctx, sec);
    else if (sec.name == "auth") ok = parse_auth_section(ctx, sec);
    else if (sec.name == "auth_adversary") ok = parse_auth_adversary_section(ctx, sec);
    else if (sec.name == "deviation") ok = parse_deviation_section(ctx, sec);
    else if (sec.name == "bidder") ok = parse_bidder_section(ctx, sec);
    else if (sec.name == "bid_frames") ok = parse_bid_frames_section(ctx, sec);
    else if (sec.name == "service") ok = parse_service_section(ctx, sec);
    else if (sec.name == "expect") ok = parse_expect_section(ctx, sec);
    else {
      ctx.fail(sec.line, sec.name.empty()
                             ? "keys before any [section] header"
                             : "unknown section [" + sec.name + "]");
      ok = false;
    }
    if (!ok) return {std::nullopt, ctx.error};
  }

  if (ctx.sc.providers <= 2 * ctx.sc.k) {
    return {std::nullopt, "[run] requires providers > 2k (m=" +
                              std::to_string(ctx.sc.providers) +
                              ", k=" + std::to_string(ctx.sc.k) + ")"};
  }
  for (const auto& dev : ctx.sc.deviations) {
    if (dev.node >= ctx.sc.providers) {
      return {std::nullopt, "[deviation] node " + std::to_string(dev.node) +
                                " is not a provider (m=" +
                                std::to_string(ctx.sc.providers) + ")"};
    }
  }
  if (ctx.sc.auth_adversary.mode != adversary::AuthTamperMode::kNone) {
    if (!ctx.sc.auth.enable) {
      return {std::nullopt,
              "[auth_adversary] requires [auth] enable=true (without the "
              "signing layer there is nothing to forge or replay against)"};
    }
    if (ctx.sc.auth_adversary.node >= ctx.sc.providers) {
      return {std::nullopt, "[auth_adversary] node " +
                                std::to_string(ctx.sc.auth_adversary.node) +
                                " is not a provider (m=" +
                                std::to_string(ctx.sc.providers) + ")"};
    }
  }
  if (ctx.sc.expect.min_auth_rejects && !ctx.sc.auth.enable) {
    return {std::nullopt,
            "[expect] min_auth_rejects requires [auth] enable=true"};
  }
  if (ctx.sc.expect.equivocation_proof && *ctx.sc.expect.equivocation_proof &&
      !ctx.sc.auth.enable) {
    return {std::nullopt,
            "[expect] equivocation_proof=true requires [auth] enable=true"};
  }
  // Every concrete node a fault section names must exist in the deployment
  // (providers 0..m-1 plus the client node m) — a typo'd id would otherwise
  // parse fine and silently never fire, turning the scenario into a no-op.
  // (Appends, not one operator+ chain: GCC 12's -Wrestrict misfires on the
  // chained form under -O2.)
  const auto check_node = [&](NodeId n, const char* section)
      -> std::optional<std::string> {
    if (n == kNoNode || n <= ctx.sc.providers) return std::nullopt;
    std::string err = "[";
    err += section;
    err += "] node ";
    err += std::to_string(n);
    err += " does not exist (providers 0..";
    err += std::to_string(ctx.sc.providers - 1);
    err += ", client = ";
    err += std::to_string(ctx.sc.providers);
    err += ")";
    return err;
  };
  for (const auto& r : ctx.sc.faults.links) {
    for (NodeId n : {r.from, r.to}) {
      if (auto err = check_node(n, "link")) return {std::nullopt, *err};
    }
  }
  for (const auto& c : ctx.sc.faults.cuts) {
    for (NodeId n : {c.a, c.b}) {
      if (auto err = check_node(n, "cut")) return {std::nullopt, *err};
    }
  }
  for (const auto& p : ctx.sc.faults.partitions) {
    for (NodeId n : p.group) {
      if (auto err = check_node(n, "partition")) return {std::nullopt, *err};
    }
  }
  for (const auto& c : ctx.sc.faults.crashes) {
    if (auto err = check_node(c.node, "crash")) return {std::nullopt, *err};
  }
  // Amnesia recovery replays durable state and closes the gap over the
  // reliability layer's re-request path: without both, the "recovered" node
  // would silently come back empty — a config mistake, not a request.
  for (const auto& c : ctx.sc.faults.crashes) {
    if (c.mode != sim::CrashMode::kAmnesia) continue;
    if (!ctx.sc.wal.enable) {
      return {std::nullopt,
              "[crash] mode=amnesia requires [wal] enable=true (there is no "
              "durable state to recover from)"};
    }
    if (!ctx.sc.reliability.enable) {
      return {std::nullopt,
              "[crash] mode=amnesia requires [reliability] enable=true (the "
              "rejoin sweep runs over the re-request path)"};
    }
  }
  // [service] consistency. Instance filters and instance-level expectations
  // only mean something when more than one instance runs; a depth above the
  // instance count could never fill its pipeline.
  const bool service = ctx.sc.instances > 1;
  if (ctx.sc.pipeline_depth > ctx.sc.instances) {
    return {std::nullopt,
            "[service] pipeline_depth " + std::to_string(ctx.sc.pipeline_depth) +
                " exceeds instances " + std::to_string(ctx.sc.instances)};
  }
  for (const auto& r : ctx.sc.faults.links) {
    if (r.instance == sim::kAnyInstance) continue;
    if (!service) {
      return {std::nullopt,
              "[link] instance= requires [service] instances > 1"};
    }
    if (r.instance >= ctx.sc.instances) {
      return {std::nullopt, "[link] instance " + std::to_string(r.instance) +
                                " does not exist (instances = " +
                                std::to_string(ctx.sc.instances) + ")"};
    }
  }
  for (const auto& c : ctx.sc.faults.cuts) {
    if (c.instance == sim::kAnyInstance) continue;
    if (!service) {
      return {std::nullopt, "[cut] instance= requires [service] instances > 1"};
    }
    if (c.instance >= ctx.sc.instances) {
      return {std::nullopt, "[cut] instance " + std::to_string(c.instance) +
                                " does not exist (instances = " +
                                std::to_string(ctx.sc.instances) + ")"};
    }
  }
  for (const auto& p : ctx.sc.faults.partitions) {
    if (p.instance == sim::kAnyInstance) continue;
    if (!service) {
      return {std::nullopt,
              "[partition] instance= requires [service] instances > 1"};
    }
    if (p.instance >= ctx.sc.instances) {
      return {std::nullopt, "[partition] instance " +
                                std::to_string(p.instance) +
                                " does not exist (instances = " +
                                std::to_string(ctx.sc.instances) + ")"};
    }
  }
  for (const auto& dev : ctx.sc.deviations) {
    if (dev.instance == sim::kAnyInstance) continue;
    if (!service) {
      return {std::nullopt,
              "[deviation] instance= requires [service] instances > 1"};
    }
    if (dev.instance >= ctx.sc.instances) {
      return {std::nullopt, "[deviation] instance " +
                                std::to_string(dev.instance) +
                                " does not exist (instances = " +
                                std::to_string(ctx.sc.instances) + ")"};
    }
  }
  // [bidder] sanity: the id must be one of the scenario's users, and two
  // sections naming the same bidder would silently shadow each other.
  {
    std::set<BidderId> seen;
    for (const auto& b : ctx.sc.bidders) {
      if (b.bidder >= ctx.sc.users) {
        return {std::nullopt, "[bidder] bidder " + std::to_string(b.bidder) +
                                  " does not exist (users = " +
                                  std::to_string(ctx.sc.users) + ")"};
      }
      if (!seen.insert(b.bidder).second) {
        return {std::nullopt, "[bidder] bidder " + std::to_string(b.bidder) +
                                  " appears in more than one [bidder] section"};
      }
    }
  }
  // [wal] corrupt damages the live tail at an amnesia crash; without one it
  // would never fire — a config mistake, not a request. (enable=true is
  // already enforced section-locally, and amnesia implies no [service].)
  if (ctx.sc.wal_fault.enable &&
      std::none_of(ctx.sc.faults.crashes.begin(), ctx.sc.faults.crashes.end(),
                   [](const sim::CrashEvent& c) {
                     return c.mode == sim::CrashMode::kAmnesia;
                   })) {
    return {std::nullopt,
            "[wal] corrupt=true requires a [crash] with mode=amnesia (the "
            "lying disk only damages the tail at an amnesia crash)"};
  }
  if (!service && ctx.sc.expect.min_instances_ok) {
    return {std::nullopt,
            "[expect] min_instances_ok requires [service] instances > 1"};
  }
  if (!service && ctx.sc.expect.instances_match_twins) {
    return {std::nullopt,
            "[expect] instances_match_twins requires [service] instances > 1"};
  }
  if (service && ctx.sc.expect.min_instances_ok &&
      *ctx.sc.expect.min_instances_ok > ctx.sc.instances) {
    return {std::nullopt,
            "[expect] min_instances_ok " +
                std::to_string(*ctx.sc.expect.min_instances_ok) +
                " exceeds [service] instances " +
                std::to_string(ctx.sc.instances)};
  }
  if (service) {
    // Amnesia recovery rebuilds ONE auction's chain from its log; the
    // service plane shares links/WAL across instances, so a rebuild would
    // tear down every instance's transport at once. Not supported.
    for (const auto& c : ctx.sc.faults.crashes) {
      if (c.mode == sim::CrashMode::kAmnesia) {
        return {std::nullopt,
                "[crash] mode=amnesia is not supported with [service] "
                "(per-node durable state is shared across instances)"};
      }
    }
  }
  return {std::move(ctx.sc), std::string()};
}

ScenarioRun run_scenario(const Scenario& scenario, bool force_clean_twin) {
  ScenarioRun out;

  const auto gen_instance = [&](std::uint64_t seed) {
    crypto::Rng rng(seed);
    if (scenario.auction == "standard") {
      return auction::generate(
          auction::standard_auction_workload(scenario.users, scenario.providers),
          rng);
    }
    return auction::generate(
        auction::double_auction_workload(scenario.users, scenario.providers), rng);
  };
  std::shared_ptr<core::AuctionAdapter> adapter;
  if (scenario.auction == "standard") {
    auction::StandardAuctionParams params;
    params.epsilon = scenario.epsilon;
    adapter = std::make_shared<core::StandardAuctionAdapter>(params);
  } else {
    adapter = std::make_shared<core::DoubleAuctionAdapter>();
  }
  // One workload per instance, each from the seed its single-run twin would
  // use — instance 0 (and every non-[service] run) keeps the scenario seed.
  const bool service = scenario.instances > 1;
  std::vector<auction::AuctionInstance> workloads;
  workloads.reserve(service ? scenario.instances : 1);
  for (std::size_t i = 0; i < (service ? scenario.instances : 1); ++i) {
    workloads.push_back(
        gen_instance(core::derive_instance_seed(scenario.seed, i)));
  }
  const auction::AuctionInstance& instance = workloads.front();

  core::AuctioneerSpec spec;
  spec.m = scenario.providers;
  spec.k = scenario.k;
  spec.num_bidders = instance.bids.size();
  std::unique_ptr<core::DistributedAuctioneer> auctioneer;
  try {
    auctioneer = std::make_unique<core::DistributedAuctioneer>(spec, adapter);
  } catch (const std::invalid_argument& e) {
    out.failures.push_back(std::string("invalid auctioneer spec: ") + e.what());
    return out;
  }

  runtime::SimRunConfig cfg;
  cfg.seed = scenario.seed;
  cfg.latency = latency_by_name(scenario.latency);
  cfg.cost_mode = sim::CostMode::kZero;  // the run is a pure function of the file
  cfg.max_events = scenario.max_events;
  cfg.faults = scenario.faults;
  cfg.reliability = scenario.reliability;
  cfg.wal = scenario.wal;
  cfg.auth = scenario.auth;
  cfg.auth_adversary = scenario.auth_adversary;
  cfg.bid_frames = scenario.bid_frames;
  cfg.wal_fault = scenario.wal_fault;
  for (const auto& b : scenario.bidders) {
    cfg.bidder_script[b.bidder] =
        adversary::bidder_behaviour_by_name(b.behaviour, scenario.providers);
  }
  std::vector<NodeId> coalition;
  for (const auto& dev : scenario.deviations) coalition.push_back(dev.node);
  for (const auto& dev : scenario.deviations) {
    cfg.deviations[dev.node] = make_strategy(dev, coalition);
  }

  const ScenarioExpect& exp = scenario.expect;
  if (service) {
    ServiceRunConfig svc;
    svc.base = cfg;
    svc.base.deviations.clear();  // carried as ServiceDeviations instead
    svc.instances = scenario.instances;
    svc.pipeline_depth = scenario.pipeline_depth;
    for (const auto& dev : scenario.deviations) {
      svc.deviations.push_back(ServiceDeviation{
          dev.instance, dev.node, make_strategy(dev, coalition)});
    }
    out.service = ServiceRuntime(svc).run(*auctioneer, workloads);
    out.run = aggregate_service(*out.service);
    out.result_digest = digest_of_service(*out.service);
    if (exp.matches_clean.has_value() || force_clean_twin) {
      ServiceRunConfig clean_svc = svc;
      clean_svc.base.faults.reset();
      clean_svc.deviations.clear();
      clean_svc.base.auth_adversary = {};  // keeps auth (and wal), loses the attacker
      clean_svc.base.bid_frames = {};      // frame tricks are faults too
      clean_svc.base.wal_fault = {};       // ...and so is the lying disk
      ServiceRunResult clean = ServiceRuntime(clean_svc).run(*auctioneer, workloads);
      out.clean_digest = digest_of_service(clean);
      out.clean = aggregate_service(clean);
      out.clean_service = std::move(clean);
    }
  } else {
    SimRuntime rt(cfg);
    out.run = rt.run_distributed(*auctioneer, instance);
    out.result_digest = digest_of(out.run);
    if (exp.matches_clean.has_value() || force_clean_twin) {
      SimRunConfig clean_cfg = cfg;
      clean_cfg.faults.reset();
      clean_cfg.deviations.clear();
      clean_cfg.auth_adversary = {};  // the twin keeps auth (and wal), loses the attacker
      clean_cfg.bid_frames = {};      // frame tricks are faults too
      clean_cfg.wal_fault = {};       // ...and so is the lying disk
      out.clean = SimRuntime(clean_cfg).run_distributed(*auctioneer, instance);
      out.clean_digest = digest_of(*out.clean);
    }
  }

  // --- Expectation verdicts ---
  const auto& run = out.run;
  if (exp.outcome == ScenarioExpect::Outcome::kOk && !run.global_outcome.ok()) {
    out.failures.push_back(
        "expected outcome=ok, got ⊥ (" +
        std::string(abort_reason_name(run.global_outcome.bottom().reason)) + ")");
  }
  if (exp.outcome == ScenarioExpect::Outcome::kBottom && run.global_outcome.ok()) {
    out.failures.push_back("expected outcome=bottom, run reached (x, p⃗)");
  }
  if (exp.stalled && *exp.stalled != run.stalled) {
    out.failures.push_back(std::string("expected stalled=") +
                           (*exp.stalled ? "true" : "false") + ", run " +
                           (run.stalled ? "stalled" : "completed"));
  }
  if (exp.matches_clean) {
    const bool both_ok = run.global_outcome.ok() && out.clean->global_outcome.ok();
    const bool match = both_ok && out.result_digest == out.clean_digest;
    if (*exp.matches_clean && !match) {
      out.failures.push_back(
          "expected the fault-free result, got " +
          (run.global_outcome.ok() ? "digest " + out.result_digest
                                   : std::string("⊥")) +
          " vs clean " + (out.clean->global_outcome.ok() ? out.clean_digest
                                                         : std::string("⊥")));
    }
    if (!*exp.matches_clean && match) {
      out.failures.push_back("expected a diverging result, got the clean one");
    }
  }
  if (exp.abort_reason) {
    if (run.global_outcome.ok()) {
      out.failures.push_back("expected abort_reason=" + *exp.abort_reason +
                             ", run reached (x, p⃗)");
    } else if (abort_reason_name(run.global_outcome.bottom().reason) !=
               *exp.abort_reason) {
      out.failures.push_back(
          "expected abort_reason=" + *exp.abort_reason + ", got " +
          abort_reason_name(run.global_outcome.bottom().reason));
    }
  }
  if (exp.min_faults) {
    const std::uint64_t injected =
        run.fault_stats.total_dropped() + run.fault_stats.duplicated +
        run.fault_stats.delayed;
    if (injected < *exp.min_faults) {
      out.failures.push_back("expected min_faults=" +
                             std::to_string(*exp.min_faults) + ", injector saw " +
                             std::to_string(injected));
    }
  }
  if (exp.min_auth_rejects) {
    const std::uint64_t rejects = run.auth_stats.rejected_bad_sig +
                                  run.auth_stats.rejected_malformed +
                                  run.auth_stats.replays_dropped;
    if (rejects < *exp.min_auth_rejects) {
      out.failures.push_back(
          "expected min_auth_rejects=" + std::to_string(*exp.min_auth_rejects) +
          ", validators rejected " + std::to_string(rejects));
    }
  }
  if (exp.equivocation_proof) {
    if (*exp.equivocation_proof != run.equivocation_proof.has_value()) {
      out.failures.push_back(std::string("expected equivocation_proof=") +
                             (*exp.equivocation_proof ? "true" : "false") +
                             ", run " +
                             (run.equivocation_proof ? "produced one"
                                                     : "produced none"));
    } else if (run.equivocation_proof) {
      // A proof is only as good as its independent verification: re-derive
      // the run's key directory and check it with the public key alone.
      const net::KeyDirectory keys(scenario.providers, scenario.seed);
      if (run.equivocation_proof->signer >= keys.size() ||
          !net::verify_equivocation_proof(
              *run.equivocation_proof,
              keys.public_key(run.equivocation_proof->signer))) {
        out.failures.push_back(
            "equivocation proof failed independent verification");
      }
    }
  }
  if (exp.min_instances_ok && out.service &&
      out.service->settled_ok < *exp.min_instances_ok) {
    out.failures.push_back(
        "expected min_instances_ok=" + std::to_string(*exp.min_instances_ok) +
        ", only " + std::to_string(out.service->settled_ok) + " of " +
        std::to_string(out.service->instances.size()) + " instances cleared");
  }
  if (exp.instances_match_twins && out.service) {
    // Every instance that cleared must reproduce its single-run twin: a
    // standalone run at the derived seed with the same transport layers and
    // no faults. ⊥ instances are exempt (the faults that poisoned them are
    // exactly what the scenario injected).
    bool all_match = true;
    std::string detail;
    for (const auto& inst : out.service->instances) {
      if (!inst.outcome.ok()) continue;
      SimRunConfig twin_cfg = cfg;
      twin_cfg.seed = inst.derived_seed;
      twin_cfg.faults.reset();
      twin_cfg.deviations.clear();
      twin_cfg.auth_adversary = {};
      twin_cfg.bid_frames = {};
      twin_cfg.wal_fault = {};
      const SimRunResult twin =
          SimRuntime(twin_cfg).run_distributed(*auctioneer, workloads[inst.id]);
      if (digest_of(twin) != digest_of_instance(inst)) {
        all_match = false;
        detail = "instance " + std::to_string(inst.id) + " diverged from its twin";
        break;
      }
    }
    if (*exp.instances_match_twins && !all_match) {
      out.failures.push_back("expected instances_match_twins=true: " + detail);
    }
    if (!*exp.instances_match_twins && all_match) {
      out.failures.push_back(
          "expected instances_match_twins=false, every cleared instance "
          "matched its twin");
    }
  }
  return out;
}

}  // namespace dauct::runtime
