// TCP runtime: the distributed auctioneer over real loopback sockets.
//
// Two deployment shapes:
//
//  * run_distributed() — the in-process cluster: one TcpNode + engine thread
//    per provider plus a client node, all in this process. The original
//    runtime; no durability.
//  * run_tcp_provider() / run_tcp_client() — ONE node per PROCESS: the real
//    kill-and-restart deployment. Every process derives the shared plan
//    (instance, ports, per-node endpoint seeds) from the same --seed, so no
//    coordination channel is needed. A provider process given a WAL
//    directory journals every engine-consumed delivery (store/wal.hpp)
//    before dispatch; killed and restarted, it replays its log through the
//    same dispatch path, broadcasts the rejoin sweep (net/reliable.hpp), and
//    completes with the fault-free result. Sequence: docs/DURABILITY.md;
//    driver: tools/kill_restart_smoke.sh.
#pragma once

#include <chrono>

#include "core/distributed_auctioneer.hpp"
#include "net/reliable.hpp"
#include "net/tcp_transport.hpp"
#include "store/wal.hpp"

namespace dauct::runtime {

struct TcpRunConfig {
  std::uint64_t seed = 1;
  std::uint16_t base_port = 0;  ///< 0 → pick automatically
  std::chrono::milliseconds timeout{20'000};
};

struct TcpRunResult {
  std::vector<auction::AuctionOutcome> provider_outcomes;
  auction::AuctionOutcome global_outcome{Bottom{}};
  std::chrono::nanoseconds wall_time{0};
  bool timed_out = false;
  std::uint16_t base_port = 0;  ///< ports actually used
};

class TcpRuntime {
 public:
  explicit TcpRuntime(TcpRunConfig config) : config_(std::move(config)) {}

  TcpRunResult run_distributed(const core::DistributedAuctioneer& auctioneer,
                               const auction::AuctionInstance& instance);

 private:
  TcpRunConfig config_;
};

/// Shared knobs of the one-node-per-process deployment. All processes of a
/// run must agree on `seed` and `base_port` (node j listens on
/// base_port + j; the client on base_port + m).
struct TcpNodeConfig {
  std::uint64_t seed = 1;
  std::uint16_t base_port = 0;   ///< required: processes cannot auto-agree
  std::chrono::milliseconds timeout{20'000};
  std::string wal_dir;           ///< non-empty: journal to DIR/provider-J.wal
  std::size_t snapshot_every = 8;  ///< WAL checkpoint cadence (0 = never)
  /// Fault hook: _exit(137) right after the Nth WAL message record commits —
  /// a real kill mid-epoch, state durable, memory gone. 0 = never.
  std::uint64_t crash_after = 0;
};

struct TcpProviderResult {
  auction::AuctionOutcome outcome{Bottom{}};
  bool timed_out = false;
  /// Set iff the process refused to run (e.g. the WAL belongs to a different
  /// run or node — the foreign-state gate); nothing was bound or sent.
  std::string error;
  bool recovered = false;  ///< an existing WAL was replayed on startup
  store::WalStats wal_stats;
  net::ReliabilityStats reliability_stats;
};

/// Run provider `node` to completion (or timeout) in this process. With a
/// WAL directory, an existing log is verified against this run's identity
/// (refused via `error` on mismatch), replayed, and closed with a rejoin
/// sweep before live traffic is processed.
TcpProviderResult run_tcp_provider(const core::DistributedAuctioneer& auctioneer,
                                   const auction::AuctionInstance& instance,
                                   NodeId node, const TcpNodeConfig& config);

struct TcpClientResult {
  bool ok = false;          ///< all m providers reported the same ok result
  bool timed_out = false;
  std::string result_digest;  ///< sha256 hex of the agreed result report
  std::string error;          ///< divergent / ⊥ reports
};

/// Run the client in this process: submit the bid batch to every provider,
/// await all m result reports, check they agree, then broadcast shutdown.
TcpClientResult run_tcp_client(const auction::AuctionInstance& instance,
                               std::size_t providers,
                               const TcpNodeConfig& config);

}  // namespace dauct::runtime
