// TCP runtime: the distributed auctioneer over real loopback sockets.
//
// Spawns one TcpNode + engine thread per provider plus a client node that
// submits bids and collects results — the paper's deployment shape with real
// networking plumbing (framing, connection management, concurrent readers).
#pragma once

#include <chrono>

#include "core/distributed_auctioneer.hpp"
#include "net/tcp_transport.hpp"

namespace dauct::runtime {

struct TcpRunConfig {
  std::uint64_t seed = 1;
  std::uint16_t base_port = 0;  ///< 0 → pick automatically
  std::chrono::milliseconds timeout{20'000};
};

struct TcpRunResult {
  std::vector<auction::AuctionOutcome> provider_outcomes;
  auction::AuctionOutcome global_outcome{Bottom{}};
  std::chrono::nanoseconds wall_time{0};
  bool timed_out = false;
  std::uint16_t base_port = 0;  ///< ports actually used
};

class TcpRuntime {
 public:
  explicit TcpRuntime(TcpRunConfig config) : config_(std::move(config)) {}

  TcpRunResult run_distributed(const core::DistributedAuctioneer& auctioneer,
                               const auction::AuctionInstance& instance);

 private:
  TcpRunConfig config_;
};

}  // namespace dauct::runtime
