#include "runtime/thread_runtime.hpp"

#include <thread>

#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime {

namespace {
constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";
}  // namespace

ThreadRunResult ThreadRuntime::run_distributed(
    const core::DistributedAuctioneer& auctioneer,
    const auction::AuctionInstance& instance) {
  const std::size_t m = auctioneer.spec().m;
  const NodeId client = static_cast<NodeId>(m);
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  net::MemNetwork network(m + 1);

  crypto::Rng seeder(config_.seed ^ 0x7713adULL);
  std::vector<std::unique_ptr<net::MemEndpoint>> endpoints;
  std::vector<std::unique_ptr<adversary::DeviantEndpoint>> deviants;
  std::vector<std::unique_ptr<core::ProviderEngine>> engines;
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(
        std::make_unique<net::MemEndpoint>(network, j, m, seeder.next_u64()));
    blocks::Endpoint* ep = endpoints.back().get();
    if (auto it = config_.deviations.find(j); it != config_.deviations.end()) {
      deviants.push_back(
          std::make_unique<adversary::DeviantEndpoint>(*ep, it->second));
      ep = deviants.back().get();
    }
    auction::Ask ask =
        j < instance.asks.size() ? instance.asks[j] : auction::Ask{j, {}, {}};
    engines.push_back(auctioneer.make_engine(*ep, ask));
  }

  const auto start_time = std::chrono::steady_clock::now();

  std::vector<std::thread> threads;
  threads.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    threads.emplace_back([&, j] {
      core::ProviderEngine& engine = *engines[j];
      bool reported = false;
      while (auto msg = network.mailbox(j).pop()) {
        if (msg->topic == bids_topic) {
          auto bids = serde::decode_bid_vector(msg->payload.view());
          if (bids) engine.start(*bids);
        } else {
          engine.on_message(*msg);
        }
        if (engine.done() && !reported) {
          reported = true;
          network.post(net::Message{j, client, result_topic, Bytes{}});
        }
      }
    });
  }

  // The client: submit all bids to every provider, then await m reports.
  // One shared buffer for the bid batch: every provider's copy aliases it.
  const SharedBytes bid_payload(serde::encode_bid_vector(instance.bids));
  for (NodeId j = 0; j < m; ++j) {
    network.post(net::Message{client, j, bids_topic, bid_payload});
  }

  ThreadRunResult result;
  std::size_t reports = 0;
  const auto deadline = start_time + config_.timeout;
  while (reports < m) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      result.timed_out = true;
      break;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    if (auto msg = network.mailbox(client).pop_for(remaining)) {
      if (msg->topic == result_topic) ++reports;
    } else if (std::chrono::steady_clock::now() >= deadline) {
      result.timed_out = true;
      break;
    }
  }
  result.wall_time = std::chrono::steady_clock::now() - start_time;

  network.close_all();
  for (auto& t : threads) t.join();

  result.provider_outcomes.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    if (engines[j]->done()) {
      result.provider_outcomes.push_back(*engines[j]->outcome());
    } else {
      result.provider_outcomes.push_back(auction::AuctionOutcome(
          Bottom{AbortReason::kTimeout, "thread runtime stall"}));
    }
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  return result;
}

}  // namespace dauct::runtime
