#include "runtime/service_runtime.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "net/sim_transport.hpp"
#include "runtime/submission_codec.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime {

namespace {

constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";
/// Epoch-0 launch batch: when pipeline_depth ≥ 2 the first wave of instances
/// departs the client as ONE frame per provider carrying every instance's
/// submissions, instead of depth separate frames. Unscoped (it belongs to no
/// single instance); demultiplexed provider-side into per-instance starts.
constexpr const char* kBatchBidsTopic = "svc/bids";

/// Generation cycle length for slot prefixes when signing is off. A slot's
/// g-th and (g+4)-th tenants share a prefix — unambiguous as long as no
/// straggler frame outlives 3 full slot occupancies (~75ms of virtual time
/// against fault delays bounded in the tens of ms). Under auth the cycle is
/// not used: the validator's equivocation slots are keyed by (sender, topic)
/// for the whole run, so prefixes must be instance-unique or an honest
/// reused topic would read as equivocation.
constexpr std::uint64_t kGenerationCycle = 4;

}  // namespace

double ServiceRunResult::auctions_per_vsec() const {
  if (settled_ok == 0 || makespan <= 0) return 0.0;
  return static_cast<double>(settled_ok) / sim::to_seconds(makespan);
}

ServiceRunResult ServiceRuntime::run(
    const core::DistributedAuctioneer& auctioneer,
    std::span<const auction::AuctionInstance> workloads) {
  const SimRunConfig& base = config_.base;
  const std::size_t m = auctioneer.spec().m;
  const std::size_t n = auctioneer.spec().num_bidders;
  const NodeId client = static_cast<NodeId>(m);

  const std::size_t N = std::min(config_.instances, workloads.size());
  if (N == 0) return ServiceRunResult{};
  if (N < config_.instances) {
    DAUCT_WARN("service runtime: " << config_.instances
                                   << " instances configured but only "
                                   << workloads.size() << " workloads given");
  }
  const std::size_t D = std::clamp<std::size_t>(config_.pipeline_depth, 1, N);
  // Single-instance identity path: no prefixes, no batch frames — the run is
  // byte-identical to SimRuntime::run_distributed (golden-pinned).
  const bool identity = (N == 1);
  const auto gen_of = [&](core::InstanceId t) {
    const std::uint64_t g = t / D;
    return base.auth.enable ? g : g % kGenerationCycle;
  };

  // Instance-filtered deviations, base (all-instance) ones folded in.
  std::vector<ServiceDeviation> deviations = config_.deviations;
  for (const auto& [node, strategy] : base.deviations) {
    deviations.push_back(ServiceDeviation{sim::kAnyInstance, node, strategy});
  }

  sim::Scheduler scheduler(m + 1, base.latency, base.seed, base.cost_mode);
  scheduler.set_cpu_scale(base.cpu_scale);
  if (base.faults) {
    // Compile declarative per-instance link rules into topic-prefix filters.
    // An instance-confined rule can only ever touch scoped traffic: the
    // link's rl/* control frames and the epoch-0 svc/bids batch are outside
    // every instance namespace by construction.
    sim::FaultPlan plan = *base.faults;
    const auto compile_scope = [&](std::uint64_t instance, std::string& scope) {
      if (instance == sim::kAnyInstance) return;
      if (identity || instance >= N) {
        scope = "\x01";  // matches no topic: rule is inert
      } else {
        scope = core::instance_topic_prefix(instance % D, gen_of(instance));
      }
    };
    for (auto& r : plan.links) compile_scope(r.instance, r.topic_scope);
    for (auto& c : plan.cuts) compile_scope(c.instance, c.topic_scope);
    for (auto& p : plan.partitions) compile_scope(p.instance, p.topic_scope);
    scheduler.install_fault_plan(plan);
  }

  // Shared per-node transport: ONE wire endpoint, reliable link, signer, and
  // validator per provider, serving every instance. Scoped topics make the
  // link's dedup keys, the retransmit caches, the signature transcripts, and
  // the WAL records instance-tagged without any of those layers knowing
  // instances exist.
  crypto::Rng seeder(base.seed ^ 0xd15742u);
  std::shared_ptr<const net::KeyDirectory> key_dir;
  net::AuthStats auth_stats;
  if (base.auth.enable) {
    key_dir = std::make_shared<net::KeyDirectory>(m, base.seed);
  }
  struct SharedChain {
    std::unique_ptr<net::SimEndpoint> endpoint;
    std::unique_ptr<net::ReliableLink> link;
    std::unique_ptr<adversary::AuthTamperEndpoint> tamperer;
    std::unique_ptr<net::SignerEndpoint> signer;
    std::unique_ptr<net::MessageValidator> validator;
    blocks::Endpoint* top = nullptr;  ///< what instance endpoints stack on
  };
  std::vector<SharedChain> shared(m);
  // Same seeder stream as the single runtime: one draw per provider. The
  // SimEndpoint's own RNG is shadowed by each instance's ScopedEndpoint
  // stream (seeded identically for instance 0), so instance 0's coin flips
  // equal the classic runtime's.
  std::vector<std::uint64_t> endpoint_seeds(m);
  for (NodeId j = 0; j < m; ++j) endpoint_seeds[j] = seeder.next_u64();

  // Per-instance protocol state. Engine bundles live until the run ends —
  // a settled instance's engines are quiescent, not destroyed, so a late
  // timer or straggler frame can never dangle.
  struct InstanceNode {
    std::unique_ptr<core::ScopedEndpoint> scoped;
    std::unique_ptr<adversary::DeviantEndpoint> deviant;
    std::unique_ptr<core::ProviderEngine> engine;
    bool started = false;
    bool reported = false;
    sim::SimTime ba_done = 0;
    sim::SimTime eng_done = 0;
    std::optional<Bottom> override_abort;  ///< late batch-auth attribution
  };
  struct Instance {
    InstanceRunResult res;
    std::shared_ptr<net::ScopedTopicRegistry> topics;  ///< null = identity
    net::Topic scoped_result;
    std::vector<InstanceNode> nodes;
    std::vector<bool> result_seen;
    std::size_t results_at_client = 0;
  };
  std::vector<std::unique_ptr<Instance>> insts(N);
  // Current tenant of each namespace prefix. Overwritten as generations
  // cycle; a frame for a *settled* tenant is dropped at demux, which is what
  // keeps slot reuse safe against stragglers.
  std::unordered_map<std::string, core::InstanceId> prefix_owner;

  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  const net::Topic batch_topic(kBatchBidsTopic);

  // Durability: one WAL per node, shared by all instances. Message records
  // carry scoped topic strings (instance-tagged); decision records append in
  // commit order across instances. Service mode is write-only — amnesia
  // replay is a single-auction feature (scenario validation rejects it here).
  const bool wal_on = base.wal.enable;
  std::vector<std::shared_ptr<store::MemStorage>> storages(wal_on ? m : 0);
  std::vector<std::unique_ptr<store::Wal>> wals(wal_on ? m : 0);
  std::vector<std::uint64_t> wal_delivered(m, 0);

  const auto journal_decision = [&](NodeId j, store::DecisionKind kind, bool ok,
                                    const crypto::Digest& digest) {
    if (!wal_on) return;
    store::Decision d;
    d.kind = kind;
    d.ok = ok;
    d.digest = digest;
    if (key_dir) {
      Bytes msg;
      msg.reserve(1 + digest.size());
      msg.push_back(static_cast<std::uint8_t>(kind));
      msg.insert(msg.end(), digest.begin(), digest.end());
      const auto sig = crypto::ed25519::sign(key_dir->pair(j), BytesView(msg));
      d.signature.assign(sig.begin(), sig.end());
    }
    const Bytes enc = store::encode_decision(d);
    wals[j]->append(store::RecordType::kDecision, BytesView(enc));
    wals[j]->commit();
  };

  const auto journal_message = [&](NodeId j, const net::Message& msg) {
    if (!wal_on) return;
    wals[j]->append_message_record(msg.from, msg.topic.str(),
                                   BytesView(msg.payload));
    wals[j]->commit();
    ++wal_delivered[j];
  };

  const auto maybe_snapshot = [&](NodeId j) {
    if (!wal_on || base.wal.snapshot_every == 0) return;
    if (wal_delivered[j] % base.wal.snapshot_every != 0) return;
    // The single-auction snapshot flags (started/agreed/done) are per-engine;
    // with many engines per node we checkpoint the delivery count only.
    store::Snapshot s;
    s.messages_delivered = wal_delivered[j];
    const Bytes enc = store::encode_snapshot(s);
    wals[j]->append(store::RecordType::kSnapshot, BytesView(enc));
    wals[j]->commit();
  };

  /// Scoped topic → (owning instance, base topic). Nullopt: not instance
  /// traffic, an unclaimed prefix, or a base topic no engine ever interned.
  const auto demux = [&](const net::Topic& topic)
      -> std::optional<std::pair<core::InstanceId, net::Topic>> {
    if (identity) return std::make_pair(core::InstanceId{0}, topic);
    const std::string& s = topic.str();
    if (s.empty() || s[0] != 'i') return std::nullopt;
    const auto slash = s.find('/');
    if (slash == std::string::npos) return std::nullopt;
    const auto it = prefix_owner.find(s.substr(0, slash + 1));
    if (it == prefix_owner.end()) return std::nullopt;
    const auto b = net::Topic::lookup(std::string_view(s).substr(slash + 1));
    if (!b) return std::nullopt;
    return std::make_pair(it->second, *b);
  };

  const auto note_progress = [&](core::InstanceId t, NodeId j) {
    Instance& inst = *insts[t];
    InstanceNode& nd = inst.nodes[j];
    core::ProviderEngine& engine = *nd.engine;
    if (nd.ba_done == 0 && engine.agreed_bids().has_value()) {
      nd.ba_done = scheduler.now();
      if (wal_on) {
        serde::Writer w;
        const auto& bids = *engine.agreed_bids();
        w.varint(bids.size());
        for (const auto& b : bids) serde::write_bid(w, b);
        const Bytes enc = w.take();
        journal_decision(j, store::DecisionKind::kBidsAgreed, true,
                         crypto::sha256(BytesView(enc)));
      }
    }
    if (nd.eng_done == 0 && engine.done()) {
      nd.eng_done = scheduler.now();
    }
    if (engine.done() && !nd.reported) {
      nd.reported = true;
      const auto& out = *engine.outcome();
      serde::Writer w;
      w.boolean(out.ok());
      if (out.ok()) {
        w.bytes(serde::encode_result(out.value()));
      } else {
        w.u8(static_cast<std::uint8_t>(out.bottom().reason));
      }
      Bytes payload = w.take();
      if (wal_on) {
        journal_decision(j, store::DecisionKind::kOutcome, out.ok(),
                         crypto::sha256(BytesView(payload)));
      }
      scheduler.send(
          net::Message{j, client, inst.scoped_result, std::move(payload)});
    }
  };

  /// Engine-facing dispatch; `msg.topic` is the BASE topic.
  const auto dispatch_app = [&](core::InstanceId t, NodeId j,
                                const net::Message& msg) {
    InstanceNode& nd = insts[t]->nodes[j];
    if (msg.topic == bids_topic) {
      auto subs = detail::decode_submissions(BytesView(msg.payload));
      if (subs && !nd.started) {
        nd.started = true;
        journal_decision(j, store::DecisionKind::kStarted, true,
                         net::payload_digest(msg.payload));
        nd.engine->start(
            detail::sanitize_submissions(*subs, auctioneer.spec().limits));
      }
    } else {
      nd.engine->on_message(msg);
    }
    note_progress(t, j);
  };

  /// Validator + engine dispatch. `in.topic` is the scoped wire topic (the
  /// signature transcript covers it); `base_topic` is its engine-facing form.
  /// An abort lands on the OWNING instance's engine — node j's other
  /// instances keep running.
  const auto dispatch_verified = [&](core::InstanceId t, NodeId j,
                                     const net::Message& in,
                                     const net::Topic& base_topic) {
    net::Message verified;
    const net::Message* delivered = &in;
    if (net::MessageValidator* v = shared[j].validator.get()) {
      verified = in;
      switch (v->on_deliver(verified)) {
        case net::MessageValidator::Action::kDrop:
          return;
        case net::MessageValidator::Action::kAbort:
          insts[t]->nodes[j].engine->abort(
              Bottom{v->proof() ? AbortReason::kEquivocationDetected
                                : AbortReason::kProtocolViolation,
                     v->abort_detail()});
          note_progress(t, j);
          return;
        case net::MessageValidator::Action::kDeliver:
          break;
      }
      delivered = &verified;
    }
    if (delivered->topic == base_topic) {
      dispatch_app(t, j, *delivered);
    } else {
      net::Message app = *delivered;  // payload is refcounted, not copied
      app.topic = base_topic;
      dispatch_app(t, j, app);
    }
  };

  const auto honest = adversary::honest_bidder();
  /// Instance t's client-side submissions toward every provider, drawn from
  /// the instance's private bidder stream in the single-run twin's order
  /// (provider-outer, bidder-inner, one continuous stream).
  const auto make_submissions = [&](core::InstanceId t) {
    std::vector<Bytes> per_provider(m);
    crypto::Rng bidder_rng(insts[t]->res.derived_seed ^ 0xb1dde5u);
    const auction::AuctionInstance& w = workloads[t];
    for (NodeId j = 0; j < m; ++j) {
      std::vector<std::optional<auction::Bid>> subs(n);
      for (std::size_t i = 0; i < n && i < w.bids.size(); ++i) {
        const adversary::BidderBehaviour* behaviour = honest.get();
        if (auto it = base.bidder_script.find(static_cast<BidderId>(i));
            it != base.bidder_script.end()) {
          behaviour = it->second.get();
        }
        subs[i] = behaviour->bid_for(w.bids[i], j, bidder_rng);
      }
      per_provider[j] = detail::encode_submissions(subs);
    }
    return per_provider;
  };

  /// Stand up instance t: claim its namespace, stack a ScopedEndpoint (and
  /// any matching deviation) per node on the shared chain tops, build the
  /// engines. Does not send — launching is the caller's move.
  const auto create_instance = [&](core::InstanceId t) {
    auto up = std::make_unique<Instance>();
    Instance& inst = *up;
    inst.res.id = t;
    inst.res.derived_seed = core::derive_instance_seed(base.seed, t);
    if (!identity) {
      inst.res.topic_prefix = core::instance_topic_prefix(t % D, gen_of(t));
      inst.topics =
          std::make_shared<net::ScopedTopicRegistry>(inst.res.topic_prefix);
      prefix_owner[inst.res.topic_prefix] = t;
      inst.scoped_result = inst.topics->scope(result_topic);
    } else {
      inst.scoped_result = result_topic;
    }
    inst.result_seen.assign(m, false);
    inst.nodes.resize(m);
    crypto::Rng endpoint_seeder(inst.res.derived_seed ^ 0xd15742u);
    for (NodeId j = 0; j < m; ++j) {
      InstanceNode& nd = inst.nodes[j];
      nd.scoped = std::make_unique<core::ScopedEndpoint>(
          *shared[j].top, inst.topics, endpoint_seeder.next_u64());
      blocks::Endpoint* ep = nd.scoped.get();
      for (const auto& dv : deviations) {
        if (dv.node == j && dv.strategy &&
            (dv.instance == sim::kAnyInstance || dv.instance == t)) {
          nd.deviant =
              std::make_unique<adversary::DeviantEndpoint>(*ep, dv.strategy);
          ep = nd.deviant.get();
          break;
        }
      }
      const auction::Ask ask = j < workloads[t].asks.size()
                                   ? workloads[t].asks[j]
                                   : auction::Ask{j, {}, {}};
      nd.engine = auctioneer.make_engine(*ep, ask);
    }
    inst.res.launched = true;
    inst.res.launched_at = scheduler.now();
    insts[t] = std::move(up);
  };

  /// Submit instance t's bids, one frame per provider. `at_start` injects at
  /// t = 0 (initial wave); otherwise the send happens inside the client's
  /// settlement handler and departs with it.
  const auto send_bids = [&](core::InstanceId t, bool at_start) {
    Instance& inst = *insts[t];
    auto per_provider = make_submissions(t);
    const net::Topic topic =
        inst.topics ? inst.topics->scope(bids_topic) : bids_topic;
    // Frame tricks (adversary/bidder_adversary.hpp): submissions above were
    // drawn in canonical order, so only the injection order/count changes.
    for (NodeId idx = 0; idx < m; ++idx) {
      const NodeId j =
          base.bid_frames.reorder ? static_cast<NodeId>(m - 1 - idx) : idx;
      const int copies = base.bid_frames.replay ? 2 : 1;
      for (int rep = 0; rep < copies; ++rep) {
        net::Message msg{client, j, topic, SharedBytes(per_provider[j])};
        if (at_start) {
          scheduler.inject(sim::kSimStart, std::move(msg));
        } else {
          scheduler.send(std::move(msg));
        }
      }
    }
  };

  // Build the shared chains (the give-up hook is wired below, after the
  // demux lambdas it needs exist).
  for (NodeId j = 0; j < m; ++j) {
    SharedChain& c = shared[j];
    c.endpoint =
        std::make_unique<net::SimEndpoint>(scheduler, j, m, endpoint_seeds[j]);
    blocks::Endpoint* ep = c.endpoint.get();
    if (base.reliability.enable) {
      c.link = std::make_unique<net::ReliableLink>(*ep, base.reliability);
      ep = c.link.get();
    }
    if (base.auth.enable) {
      if (base.auth_adversary.node == j &&
          base.auth_adversary.mode != adversary::AuthTamperMode::kNone) {
        c.tamperer = std::make_unique<adversary::AuthTamperEndpoint>(
            *ep, base.auth_adversary.mode);
        ep = c.tamperer.get();
      }
      c.signer = std::make_unique<net::SignerEndpoint>(*ep, key_dir, &auth_stats);
      ep = c.signer.get();
      c.validator = std::make_unique<net::MessageValidator>(
          j, key_dir, base.auth, base.seed ^ (0xba7c4000u + j), &auth_stats);
    }
    c.top = ep;
    if (wal_on) {
      storages[j] = std::make_shared<store::MemStorage>();
      wals[j] = std::make_unique<store::Wal>(storages[j]);
      wals[j]->open();
      store::WalMeta meta;
      meta.run_seed = base.seed;
      meta.node = j;
      meta.providers = m;
      meta.users = n;
      meta.k = auctioneer.spec().k;
      meta.endpoint_seed = endpoint_seeds[j];
      const Bytes enc = store::encode_meta(meta);
      wals[j]->append(store::RecordType::kMeta, BytesView(enc));
      wals[j]->commit();
    }
  }

  // A retransmit give-up names a scoped topic: the failure belongs to that
  // topic's instance alone. (Identity path: same text as the single runtime.)
  for (NodeId j = 0; j < m; ++j) {
    if (!shared[j].link) continue;
    shared[j].link->set_on_give_up(
        [&, j](NodeId to, const net::Topic& topic, std::size_t attempts) {
          const auto d = demux(topic);
          if (!d || !insts[d->first] || insts[d->first]->res.settled) return;
          insts[d->first]->nodes[j].engine->abort(Bottom{
              AbortReason::kDeliveryFailed,
              "provider " + std::to_string(to) + " unreachable on '" +
                  topic.str() + "' after " + std::to_string(attempts) +
                  " attempts"});
          note_progress(d->first, j);
        });
  }

  for (NodeId j = 0; j < m; ++j) {
    scheduler.set_deliver(j, [&, j](const net::Message& raw) {
      // Shared link first: control traffic and wire duplicates die here,
      // headers are stripped in place (payloads are refcounted aliases).
      net::Message unwrapped;
      const net::Message* carried = &raw;
      if (net::ReliableLink* link = shared[j].link.get()) {
        unwrapped = raw;
        if (!link->on_deliver(unwrapped)) return;
        carried = &unwrapped;
      }
      journal_message(j, *carried);
      if (carried->topic == batch_topic) {
        // Epoch-0 batch from the client: split into per-instance starts.
        serde::Reader r(BytesView(carried->payload));
        const std::uint64_t count = r.varint();
        if (!r.ok() || count > N) return;
        for (std::uint64_t e = 0; e < count; ++e) {
          const std::uint64_t t = r.varint();
          Bytes body = r.bytes();
          if (!r.ok() || t >= N || !insts[t]) return;
          const net::Message sub{carried->from, j, bids_topic,
                                 SharedBytes(std::move(body))};
          dispatch_verified(t, j, sub, bids_topic);
        }
        maybe_snapshot(j);
        return;
      }
      const auto d = demux(carried->topic);
      if (!d) return;
      const core::InstanceId t = d->first;
      if (!insts[t] || insts[t]->res.settled) return;  // straggler: drop
      dispatch_verified(t, j, *carried, d->second);
      maybe_snapshot(j);
    });
  }

  // The client settles instances and drives the pipeline: the m-th result
  // report of instance t frees its slot, and instance t + depth launches in
  // the same handler (its bids depart as the handler's outbox flushes).
  sim::SimTime last_settle_at = 0;
  scheduler.set_deliver(client, [&](const net::Message& msg) {
    const auto d = demux(msg.topic);
    if (!d || d->second != result_topic || msg.from >= m) return;
    const core::InstanceId t = d->first;
    if (!insts[t]) return;
    Instance& inst = *insts[t];
    if (inst.res.settled || inst.result_seen[msg.from]) return;
    inst.result_seen[msg.from] = true;
    if (++inst.results_at_client < m) return;
    // Settlement — ⊥ reports settle too: a poisoned instance retires and
    // the pipeline stays live for the rest.
    inst.res.settled = true;
    inst.res.settled_at = scheduler.now();
    last_settle_at = scheduler.now();
    const core::InstanceId next = t + D;
    if (next < N) {
      create_instance(next);
      send_bids(next, /*at_start=*/false);
    }
  });

  // Launch the first wave: instances 0..D-1 at t = 0. Two or more at once
  // batch into one svc/bids frame per provider; a single launch uses the
  // plain per-instance form (identity path: byte-identical to the classic
  // client batch).
  const std::size_t initial = std::min(D, N);
  for (core::InstanceId t = 0; t < initial; ++t) create_instance(t);
  if (initial >= 2) {
    std::vector<std::vector<Bytes>> subs(initial);
    for (core::InstanceId t = 0; t < initial; ++t) subs[t] = make_submissions(t);
    for (NodeId idx = 0; idx < m; ++idx) {
      const NodeId j =
          base.bid_frames.reorder ? static_cast<NodeId>(m - 1 - idx) : idx;
      serde::Writer w;
      w.varint(initial);
      for (core::InstanceId t = 0; t < initial; ++t) {
        w.varint(t);
        w.bytes(BytesView(subs[t][j]));
      }
      const Bytes frame = w.take();
      const int copies = base.bid_frames.replay ? 2 : 1;
      for (int rep = 0; rep < copies; ++rep) {
        scheduler.inject(sim::kSimStart,
                         net::Message{client, j, batch_topic, frame});
      }
    }
  } else {
    send_bids(0, /*at_start=*/true);
  }

  const bool overflow = scheduler.run_some(base.max_events);
  if (overflow) {
    DAUCT_WARN("service runtime: event budget exhausted; treating run as stalled");
  }

  // Flush batch verification. A late abort is attributed by the proof's
  // scoped topic when there is one; a proofless batch failure cannot name
  // its instance, so it lands on every instance still in flight on that
  // node (never on one that settled before the forgery could matter).
  if (base.auth.enable) {
    for (NodeId j = 0; j < m; ++j) {
      net::MessageValidator* v = shared[j].validator.get();
      if (!v || v->finalize() != net::MessageValidator::Action::kAbort) continue;
      const Bottom b{v->proof() ? AbortReason::kEquivocationDetected
                                : AbortReason::kProtocolViolation,
                     v->abort_detail()};
      std::optional<core::InstanceId> who;
      if (identity) {
        who = core::InstanceId{0};
      } else if (v->proof()) {
        const std::string& s = v->proof()->topic;
        const auto slash = s.find('/');
        if (!s.empty() && s[0] == 'i' && slash != std::string::npos) {
          if (const auto it = prefix_owner.find(s.substr(0, slash + 1));
              it != prefix_owner.end()) {
            who = it->second;
          }
        }
      }
      if (who) {
        if (insts[*who]) insts[*who]->nodes[j].override_abort = b;
      } else {
        for (auto& up : insts) {
          if (up && up->res.launched && !up->res.settled) {
            up->nodes[j].override_abort = b;
          }
        }
      }
    }
  }

  ServiceRunResult result;
  result.event_budget_exhausted = overflow;
  result.events_dispatched = scheduler.events_dispatched();
  result.instances.reserve(N);
  bool all_settled = true;
  for (core::InstanceId t = 0; t < N; ++t) {
    if (!insts[t]) {
      // Its pipeline slot never freed: a predecessor stalled or the budget
      // ran out first. The instance never launched — ⊥ by construction.
      InstanceRunResult r;
      r.id = t;
      r.derived_seed = core::derive_instance_seed(base.seed, t);
      r.outcome = auction::AuctionOutcome(
          Bottom{overflow ? AbortReason::kEventBudgetExceeded
                          : AbortReason::kTimeout,
                 "instance " + std::to_string(t) +
                     " never launched (pipeline slot blocked)"});
      result.stalled = true;
      all_settled = false;
      result.instances.push_back(std::move(r));
      continue;
    }
    Instance& inst = *insts[t];
    inst.res.provider_outcomes.reserve(m);
    for (NodeId j = 0; j < m; ++j) {
      InstanceNode& nd = inst.nodes[j];
      if (nd.override_abort) {
        inst.res.provider_outcomes.push_back(
            auction::AuctionOutcome(*nd.override_abort));
      } else if (nd.engine->done()) {
        inst.res.provider_outcomes.push_back(*nd.engine->outcome());
      } else if (overflow) {
        result.stalled = true;
        inst.res.provider_outcomes.push_back(auction::AuctionOutcome(Bottom{
            AbortReason::kEventBudgetExceeded,
            "event budget (" + std::to_string(base.max_events) +
                ") exhausted before the provider finished"}));
      } else {
        result.stalled = true;
        inst.res.provider_outcomes.push_back(auction::AuctionOutcome(
            Bottom{AbortReason::kTimeout, "provider never finished"}));
      }
    }
    inst.res.outcome =
        core::combine_outcomes(std::span(inst.res.provider_outcomes));
    if (inst.res.outcome.ok()) ++result.settled_ok;
    if (!inst.res.settled) all_settled = false;
    result.instances.push_back(std::move(inst.res));
  }
  result.makespan = all_settled ? last_settle_at : scheduler.now();
  result.traffic = scheduler.traffic();
  if (const auto* fs = scheduler.fault_stats()) result.fault_stats = *fs;
  for (const auto& c : shared) {
    if (c.link) result.reliability_stats += c.link->stats();
  }
  if (wal_on) {
    for (const auto& w : wals) result.wal_stats += w->stats();
  }
  if (base.auth.enable) {
    result.auth_stats = auth_stats;
    for (NodeId j = 0; j < m && !result.equivocation_proof; ++j) {
      if (shared[j].validator && shared[j].validator->proof()) {
        result.equivocation_proof = shared[j].validator->proof();
      }
    }
    if (!result.equivocation_proof) {
      std::vector<const net::MessageValidator*> vs;
      for (NodeId j = 0; j < m; ++j) {
        if (shared[j].validator) vs.push_back(shared[j].validator.get());
      }
      result.equivocation_proof = net::audit_equivocation(vs, *key_dir);
    }
    if (result.equivocation_proof) {
      // Surface the transferable proof as the owning instance's reason, as
      // the single runtime does for its global outcome.
      std::optional<core::InstanceId> who;
      if (identity) {
        who = core::InstanceId{0};
      } else {
        const std::string& s = result.equivocation_proof->topic;
        const auto slash = s.find('/');
        if (!s.empty() && s[0] == 'i' && slash != std::string::npos) {
          if (const auto it = prefix_owner.find(s.substr(0, slash + 1));
              it != prefix_owner.end()) {
            who = it->second;
          }
        }
      }
      if (who && *who < result.instances.size() &&
          !result.instances[*who].outcome.ok()) {
        result.instances[*who].outcome = auction::AuctionOutcome(
            Bottom{AbortReason::kEquivocationDetected,
                   "transferable equivocation proof against provider p" +
                       std::to_string(result.equivocation_proof->signer) +
                       " on topic '" + result.equivocation_proof->topic + "'"});
      }
    }
  }
  return result;
}

}  // namespace dauct::runtime
