#include "runtime/sim_runtime.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "net/sim_transport.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime {

namespace {

constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";

/// Encode the (possibly absent) bids a provider receives from the client.
Bytes encode_submissions(const std::vector<std::optional<auction::Bid>>& subs) {
  serde::Writer w;
  w.varint(subs.size());
  for (const auto& s : subs) {
    w.boolean(s.has_value());
    if (s) serde::write_bid(w, *s);
  }
  return w.take();
}

std::optional<std::vector<std::optional<auction::Bid>>> decode_submissions(
    BytesView data) {
  serde::Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > (1u << 22)) return std::nullopt;
  std::vector<std::optional<auction::Bid>> out(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (r.boolean()) {
      auto b = serde::read_bid(r);
      if (!b) return std::nullopt;
      out[i] = *b;
    }
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

/// What the paper's deadline rule yields as provider input: the submitted
/// bid if present, valid, and correctly addressed; the neutral bid otherwise.
std::vector<auction::Bid> sanitize_submissions(
    const std::vector<std::optional<auction::Bid>>& subs,
    const auction::BidLimits& limits) {
  std::vector<auction::Bid> bids;
  bids.reserve(subs.size());
  for (std::size_t i = 0; i < subs.size(); ++i) {
    const auto& s = subs[i];
    if (s && s->bidder == i && limits.valid(*s)) {
      bids.push_back(*s);
    } else {
      bids.push_back(auction::neutral_bid(static_cast<BidderId>(i)));
    }
  }
  return bids;
}

}  // namespace

sim::SimTime SimRunResult::bid_agreement_makespan() const {
  sim::SimTime t = 0;
  for (sim::SimTime v : bid_agreement_done_at) t = std::max(t, v);
  return t;
}

sim::SimTime SimRunResult::provider_makespan() const {
  sim::SimTime t = 0;
  for (sim::SimTime v : provider_done_at) t = std::max(t, v);
  return t;
}

SimRunResult SimRuntime::run_distributed(const core::DistributedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  const std::size_t m = auctioneer.spec().m;
  const std::size_t n = auctioneer.spec().num_bidders;
  const NodeId client = static_cast<NodeId>(m);

  sim::Scheduler scheduler(m + 1, config_.latency, config_.seed, config_.cost_mode);
  scheduler.set_cpu_scale(config_.cpu_scale);
  if (config_.faults) scheduler.install_fault_plan(*config_.faults);

  // Endpoints and engines. The per-provider chain, outermost (engine-facing)
  // first: [DeviantEndpoint →] [SignerEndpoint →] [AuthTamperEndpoint →]
  // [ReliableLink →] SimEndpoint — deviation shapes what the engine sends
  // *before* the signer signs it (a byzantine node signs its tampered output
  // with its own key: the stolen-key equivocator), the wire adversary injects
  // *after* signing (it holds no key, so its frames cannot verify), and the
  // link is the last hop before the wire, tracking the frames actually sent.
  // With reliability and auth off no wrapper exists and the chain is
  // byte-identical to the original runtime.
  crypto::Rng seeder(config_.seed ^ 0xd15742u);
  std::shared_ptr<const net::KeyDirectory> key_dir;
  net::AuthStats auth_stats;
  if (config_.auth.enable) {
    key_dir = std::make_shared<net::KeyDirectory>(m, config_.seed);
  }
  std::vector<std::unique_ptr<net::SimEndpoint>> endpoints;
  std::vector<std::unique_ptr<net::ReliableLink>> links;
  std::vector<net::ReliableLink*> link_of(m, nullptr);
  std::vector<std::unique_ptr<adversary::AuthTamperEndpoint>> tamperers;
  std::vector<std::unique_ptr<net::SignerEndpoint>> signers;
  std::vector<std::unique_ptr<net::MessageValidator>> validators;
  std::vector<net::MessageValidator*> validator_of(m, nullptr);
  std::vector<std::unique_ptr<adversary::DeviantEndpoint>> deviants;
  std::vector<std::unique_ptr<core::ProviderEngine>> engines;
  endpoints.reserve(m);
  engines.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    endpoints.push_back(
        std::make_unique<net::SimEndpoint>(scheduler, j, m, seeder.next_u64()));
    blocks::Endpoint* ep = endpoints.back().get();
    if (config_.reliability.enable) {
      links.push_back(std::make_unique<net::ReliableLink>(*ep, config_.reliability));
      link_of[j] = links.back().get();
      ep = links.back().get();
    }
    if (config_.auth.enable) {
      if (config_.auth_adversary.node == j &&
          config_.auth_adversary.mode != adversary::AuthTamperMode::kNone) {
        tamperers.push_back(std::make_unique<adversary::AuthTamperEndpoint>(
            *ep, config_.auth_adversary.mode));
        ep = tamperers.back().get();
      }
      signers.push_back(
          std::make_unique<net::SignerEndpoint>(*ep, key_dir, &auth_stats));
      ep = signers.back().get();
      validators.push_back(std::make_unique<net::MessageValidator>(
          j, key_dir, config_.auth, config_.seed ^ (0xba7c4000u + j),
          &auth_stats));
      validator_of[j] = validators.back().get();
    }
    if (auto it = config_.deviations.find(j); it != config_.deviations.end()) {
      deviants.push_back(
          std::make_unique<adversary::DeviantEndpoint>(*ep, it->second));
      ep = deviants.back().get();
    }
    auction::Ask ask = j < instance.asks.size() ? instance.asks[j] : auction::Ask{j, {}, {}};
    engines.push_back(auctioneer.make_engine(*ep, ask));
  }

  // Per-provider delivery: client bids start the engine; everything else is
  // protocol traffic. A provider reports to the client exactly once, as soon
  // as its outcome is decided. Topics are interned once here; the per-message
  // dispatch below is integer compares.
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  std::vector<bool> started(m, false);
  std::vector<bool> reported(m, false);
  std::vector<sim::SimTime> ba_done(m, 0), eng_done(m, 0);
  std::vector<bool> result_seen(m, false);
  std::size_t results_at_client = 0;
  sim::SimTime client_done_at = 0;

  // Progress bookkeeping shared by the delivery path and the reliability
  // give-up path (an engine can reach done() from a retransmit timer, with
  // no delivery in flight to piggyback the result report on).
  const auto note_progress = [&](NodeId j) {
    core::ProviderEngine& engine = *engines[j];
    if (ba_done[j] == 0 && engine.agreed_bids().has_value()) {
      ba_done[j] = scheduler.now();
    }
    if (eng_done[j] == 0 && engine.done()) {
      eng_done[j] = scheduler.now();
    }
    if (engine.done() && !reported[j]) {
      reported[j] = true;
      const auto& out = *engine.outcome();
      serde::Writer w;
      w.boolean(out.ok());
      if (out.ok()) {
        w.bytes(serde::encode_result(out.value()));
      } else {
        w.u8(static_cast<std::uint8_t>(out.bottom().reason));
      }
      scheduler.send(net::Message{j, client, result_topic, w.take()});
    }
  };

  for (NodeId j = 0; j < m; ++j) {
    scheduler.set_deliver(j, [&, j](const net::Message& raw) {
      // The reliable link consumes its control traffic (acks, re-requests)
      // and retransmitted duplicates before the engine can misread them,
      // and strips its wire header (piggybacked ack vectors) in place — the
      // copy is an alias (refcounted payload), not a byte copy.
      net::Message unwrapped;
      const net::Message* carried = &raw;
      if (net::ReliableLink* link = link_of[j]) {
        unwrapped = raw;
        if (!link->on_deliver(unwrapped)) return;
        carried = &unwrapped;
      }
      // The validator then verifies and strips the signature header (auth on)
      // — rejected and replayed frames die here; equivocation aborts.
      net::Message verified;
      const net::Message* delivered = carried;
      if (net::MessageValidator* v = validator_of[j]) {
        verified = *carried;
        switch (v->on_deliver(verified)) {
          case net::MessageValidator::Action::kDrop:
            return;
          case net::MessageValidator::Action::kAbort:
            engines[j]->abort(
                Bottom{v->proof() ? AbortReason::kEquivocationDetected
                                  : AbortReason::kProtocolViolation,
                       v->abort_detail()});
            note_progress(j);
            return;
          case net::MessageValidator::Action::kDeliver:
            break;
        }
        delivered = &verified;
      }
      const net::Message& msg = *delivered;
      core::ProviderEngine& engine = *engines[j];
      if (msg.topic == bids_topic) {
        // Idempotent against a (faulty) network duplicating the client batch:
        // the engine starts exactly once.
        auto subs = decode_submissions(BytesView(msg.payload));
        if (subs && !started[j]) {
          started[j] = true;
          engine.start(sanitize_submissions(*subs, auctioneer.spec().limits));
        }
      } else {
        engine.on_message(msg);
      }
      note_progress(j);
    });
    if (net::ReliableLink* link = link_of[j]) {
      link->set_on_give_up([&, j](NodeId to, const net::Topic& topic,
                                  std::size_t attempts) {
        engines[j]->abort(Bottom{
            AbortReason::kDeliveryFailed,
            "provider " + std::to_string(to) + " unreachable on '" +
                topic.str() + "' after " + std::to_string(attempts) +
                " attempts"});
        note_progress(j);
      });
    }
  }

  scheduler.set_deliver(client, [&](const net::Message& msg) {
    // One result per provider (duplicate-safe, same reason as above).
    if (msg.topic == result_topic && msg.from < m && !result_seen[msg.from]) {
      result_seen[msg.from] = true;
      ++results_at_client;
      if (results_at_client == m) client_done_at = scheduler.now();
    }
  });

  // The client submits every bidder's (behaviour-shaped) bids to every
  // provider at t = 0 — one batch message per provider, as in the paper's
  // prototype.
  crypto::Rng bidder_rng(config_.seed ^ 0xb1dde5u);
  const auto honest = adversary::honest_bidder();
  for (NodeId j = 0; j < m; ++j) {
    std::vector<std::optional<auction::Bid>> subs(n);
    for (std::size_t i = 0; i < n && i < instance.bids.size(); ++i) {
      const adversary::BidderBehaviour* behaviour = honest.get();
      if (auto it = config_.bidder_script.find(static_cast<BidderId>(i));
          it != config_.bidder_script.end()) {
        behaviour = it->second.get();
      }
      subs[i] = behaviour->bid_for(instance.bids[i], j, bidder_rng);
    }
    scheduler.inject(sim::kSimStart,
                     net::Message{client, j, bids_topic, encode_submissions(subs)});
  }

  const bool overflow = scheduler.run_some(config_.max_events);
  if (overflow) {
    DAUCT_WARN("sim runtime: event budget exhausted; treating run as stalled");
  }

  // Batch verification delivers optimistically; flush what never reached a
  // full round. A failure here is late detection: it overrides whatever
  // outcome the provider computed from the forged input.
  std::vector<std::optional<Bottom>> late_auth_abort(m);
  for (NodeId j = 0; j < m; ++j) {
    if (net::MessageValidator* v = validator_of[j];
        v && v->finalize() == net::MessageValidator::Action::kAbort) {
      late_auth_abort[j] =
          Bottom{v->proof() ? AbortReason::kEquivocationDetected
                            : AbortReason::kProtocolViolation,
                 v->abort_detail()};
    }
  }

  SimRunResult result;
  result.event_budget_exhausted = overflow;
  result.events_dispatched = scheduler.events_dispatched();
  result.provider_outcomes.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    if (late_auth_abort[j]) {
      result.provider_outcomes.push_back(
          auction::AuctionOutcome(*late_auth_abort[j]));
    } else if (engines[j]->done()) {
      result.provider_outcomes.push_back(*engines[j]->outcome());
    } else if (overflow) {
      // Distinct from a drained-queue stall: events were still pending when
      // the budget ran out, i.e. the run was cut off, not out of moves. The
      // fuzz oracle treats this ⊥ as a liveness violation (a plan that can
      // spin past any budget must not pass as "explicit abort").
      result.stalled = true;
      result.provider_outcomes.push_back(auction::AuctionOutcome(Bottom{
          AbortReason::kEventBudgetExceeded,
          "event budget (" + std::to_string(config_.max_events) +
              ") exhausted before the provider finished"}));
    } else {
      result.stalled = true;
      result.provider_outcomes.push_back(auction::AuctionOutcome(
          Bottom{AbortReason::kTimeout, "provider never finished"}));
    }
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  result.makespan = results_at_client == m ? client_done_at : scheduler.now();
  result.traffic = scheduler.traffic();
  if (const auto* fs = scheduler.fault_stats()) result.fault_stats = *fs;
  for (const auto& link : links) result.reliability_stats += link->stats();
  if (config_.auth.enable) {
    result.auth_stats = auth_stats;
    // Prefer a proof a receiver assembled locally (it saw both conflicting
    // frames); otherwise run the auditor sweep, which cross-references every
    // receiver's records and catches split equivocation.
    for (NodeId j = 0; j < m && !result.equivocation_proof; ++j) {
      if (validator_of[j] && validator_of[j]->proof()) {
        result.equivocation_proof = validator_of[j]->proof();
      }
    }
    if (!result.equivocation_proof) {
      std::vector<const net::MessageValidator*> vs;
      for (NodeId j = 0; j < m; ++j) {
        if (validator_of[j]) vs.push_back(validator_of[j]);
      }
      result.equivocation_proof = net::audit_equivocation(vs, *key_dir);
    }
    if (result.equivocation_proof && !result.global_outcome.ok()) {
      // A transferable proof is the strongest statement about why the run
      // died: surface it as the global reason (the engine-level mismatch it
      // provoked stays visible in the per-provider outcomes).
      result.global_outcome = auction::AuctionOutcome(
          Bottom{AbortReason::kEquivocationDetected,
                 "transferable equivocation proof against provider p" +
                     std::to_string(result.equivocation_proof->signer) +
                     " on topic '" + result.equivocation_proof->topic + "'"});
    }
  }
  result.bid_agreement_done_at = std::move(ba_done);
  result.provider_done_at = std::move(eng_done);
  return result;
}

SimRunResult SimRuntime::run_centralized(const core::CentralizedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  // Node 0 = the trusted auctioneer, node 1 = the client.
  const NodeId trusted = 0, client = 1;
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  sim::Scheduler scheduler(2, config_.latency, config_.seed, config_.cost_mode);
  scheduler.set_cpu_scale(config_.cpu_scale);
  if (config_.faults) scheduler.install_fault_plan(*config_.faults);

  crypto::Rng seed_rng(config_.seed ^ 0xc3a1u);
  const std::uint64_t coin = seed_rng.next_u64();

  std::optional<auction::AuctionResult> result_value;
  sim::SimTime client_done_at = 0;
  bool client_got_result = false;

  scheduler.set_deliver(trusted, [&](const net::Message& msg) {
    if (msg.topic != bids_topic) return;
    auto subs = decode_submissions(BytesView(msg.payload));
    if (!subs) return;
    auction::AuctionInstance run_instance;
    run_instance.bids = sanitize_submissions(*subs, auction::BidLimits{});
    run_instance.asks = instance.asks;
    result_value = auctioneer.run(run_instance, coin);
    scheduler.send(net::Message{trusted, client, result_topic,
                                serde::encode_result(*result_value)});
  });

  scheduler.set_deliver(client, [&](const net::Message& msg) {
    if (msg.topic == result_topic) {
      client_got_result = true;
      client_done_at = scheduler.now();
    }
  });

  // Bids travel client → auctioneer in one batch message.
  std::vector<std::optional<auction::Bid>> subs(instance.bids.size());
  for (std::size_t i = 0; i < instance.bids.size(); ++i) subs[i] = instance.bids[i];
  scheduler.inject(sim::kSimStart,
                   net::Message{client, trusted, bids_topic, encode_submissions(subs)});

  const bool overflow = scheduler.run_some(config_.max_events);

  SimRunResult result;
  result.event_budget_exhausted = overflow;
  result.events_dispatched = scheduler.events_dispatched();
  if (result_value && client_got_result) {
    result.provider_outcomes.push_back(auction::AuctionOutcome(*result_value));
    result.makespan = client_done_at;
  } else {
    result.stalled = true;
    result.provider_outcomes.push_back(auction::AuctionOutcome(
        overflow ? Bottom{AbortReason::kEventBudgetExceeded,
                          "event budget (" + std::to_string(config_.max_events) +
                              ") exhausted before the run completed"}
                 : Bottom{AbortReason::kTimeout,
                          "centralized run never completed"}));
    result.makespan = scheduler.now();
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  result.traffic = scheduler.traffic();
  if (const auto* fs = scheduler.fault_stats()) result.fault_stats = *fs;
  result.shared_seed = coin;
  return result;
}

}  // namespace dauct::runtime
