#include "runtime/sim_runtime.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "net/sim_transport.hpp"
#include "runtime/submission_codec.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::runtime {

namespace {

constexpr const char* kBidsTopic = "client/bids";
constexpr const char* kResultTopic = "client/result";

using detail::decode_submissions;
using detail::encode_submissions;
using detail::sanitize_submissions;

}  // namespace

sim::SimTime SimRunResult::bid_agreement_makespan() const {
  sim::SimTime t = 0;
  for (sim::SimTime v : bid_agreement_done_at) t = std::max(t, v);
  return t;
}

sim::SimTime SimRunResult::provider_makespan() const {
  sim::SimTime t = 0;
  for (sim::SimTime v : provider_done_at) t = std::max(t, v);
  return t;
}

SimRunResult SimRuntime::run_distributed(const core::DistributedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  const std::size_t m = auctioneer.spec().m;
  const std::size_t n = auctioneer.spec().num_bidders;
  const NodeId client = static_cast<NodeId>(m);

  sim::Scheduler scheduler(m + 1, config_.latency, config_.seed, config_.cost_mode);
  scheduler.set_cpu_scale(config_.cpu_scale);
  if (config_.faults) scheduler.install_fault_plan(*config_.faults);

  // Endpoints and engines. The per-provider chain, outermost (engine-facing)
  // first: [DeviantEndpoint →] [SignerEndpoint →] [AuthTamperEndpoint →]
  // [ReliableLink →] SimEndpoint — deviation shapes what the engine sends
  // *before* the signer signs it (a byzantine node signs its tampered output
  // with its own key: the stolen-key equivocator), the wire adversary injects
  // *after* signing (it holds no key, so its frames cannot verify), and the
  // link is the last hop before the wire, tracking the frames actually sent.
  // With reliability and auth off no wrapper exists and the chain is
  // byte-identical to the original runtime.
  //
  // The chain is held per node in a rebuildable bundle: an amnesia recovery
  // (sim::CrashMode::kAmnesia) destroys one node's bundle — its memory — and
  // reconstructs it from the surviving write-ahead log. Members are declared
  // innermost-last so destruction runs engine-first, wire-endpoint-last.
  crypto::Rng seeder(config_.seed ^ 0xd15742u);
  std::shared_ptr<const net::KeyDirectory> key_dir;
  net::AuthStats auth_stats;
  if (config_.auth.enable) {
    key_dir = std::make_shared<net::KeyDirectory>(m, config_.seed);
  }
  struct NodeChain {
    std::unique_ptr<net::SimEndpoint> endpoint;
    std::unique_ptr<net::ReliableLink> link;
    std::unique_ptr<adversary::AuthTamperEndpoint> tamperer;
    std::unique_ptr<net::SignerEndpoint> signer;
    std::unique_ptr<net::MessageValidator> validator;
    std::unique_ptr<adversary::DeviantEndpoint> deviant;
    std::unique_ptr<core::ProviderEngine> engine;
  };
  std::vector<NodeChain> chains(m);
  // Endpoint seeds, drawn up front in node order — the same seeder stream as
  // ever (one draw per provider), and the value a rebuild must reuse for
  // replay re-execution to be exact (recorded in the WAL meta record).
  std::vector<std::uint64_t> endpoint_seeds(m);
  for (NodeId j = 0; j < m; ++j) endpoint_seeds[j] = seeder.next_u64();

  // Per-provider delivery bookkeeping. Topics are interned once here; the
  // per-message dispatch below is integer compares.
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  std::vector<bool> started(m, false);
  std::vector<bool> reported(m, false);
  std::vector<sim::SimTime> ba_done(m, 0), eng_done(m, 0);
  std::vector<bool> result_seen(m, false);
  std::size_t results_at_client = 0;
  sim::SimTime client_done_at = 0;

  // Durability. The MemStorage "disks" live outside the chains: an amnesia
  // crash destroys a chain, never its storage. Stats of Wal/link objects a
  // rebuild destroys are folded into accumulators so the run totals survive.
  const bool wal_on = config_.wal.enable;
  std::vector<std::shared_ptr<store::MemStorage>> storages(wal_on ? m : 0);
  // Lying-disk decorators (store::FaultyStorage), armed per amnesia-crashing
  // node when wal_fault is enabled. The Wal writes through the decorator;
  // the MemStorage underneath is still the "disk" that survives the crash.
  std::vector<std::shared_ptr<store::FaultyStorage>> faulty_disks(wal_on ? m : 0);
  std::vector<std::unique_ptr<store::Wal>> wals(wal_on ? m : 0);
  std::vector<bool> replaying(m, false);
  std::vector<std::uint64_t> wal_delivered(m, 0);
  store::WalStats wal_stats_acc;
  net::ReliabilityStats rel_stats_acc;

  const auto expected_meta = [&](NodeId j) {
    store::WalMeta meta;
    meta.run_seed = config_.seed;
    meta.node = j;
    meta.providers = m;
    meta.users = n;
    meta.k = auctioneer.spec().k;
    meta.endpoint_seed = endpoint_seeds[j];
    return meta;
  };

  /// Durably record a round decision — skipped during replay (the record is
  /// already in the log; the suppressed branches cannot re-fire anyway, since
  /// ba_done/reported survive the rebuild).
  const auto journal_decision = [&](NodeId j, store::DecisionKind kind, bool ok,
                                    const crypto::Digest& digest) {
    if (!wal_on || replaying[j]) return;
    store::Decision d;
    d.kind = kind;
    d.ok = ok;
    d.digest = digest;
    if (key_dir) {
      // Sign kind ‖ digest with the node's run key: the decision record is
      // then transferable evidence of what this provider committed to.
      Bytes msg;
      msg.reserve(1 + digest.size());
      msg.push_back(static_cast<std::uint8_t>(kind));
      msg.insert(msg.end(), digest.begin(), digest.end());
      const auto sig = crypto::ed25519::sign(key_dir->pair(j), BytesView(msg));
      d.signature.assign(sig.begin(), sig.end());
    }
    const Bytes enc = store::encode_decision(d);
    wals[j]->append(store::RecordType::kDecision, BytesView(enc));
    wals[j]->commit();
  };

  // Progress bookkeeping shared by the delivery path, the replay path, and
  // the reliability give-up path (an engine can reach done() from a
  // retransmit timer, with no delivery in flight to piggyback the result
  // report on).
  const auto note_progress = [&](NodeId j) {
    core::ProviderEngine& engine = *chains[j].engine;
    if (ba_done[j] == 0 && engine.agreed_bids().has_value()) {
      ba_done[j] = scheduler.now();
      if (wal_on && !replaying[j]) {
        serde::Writer w;
        const auto& bids = *engine.agreed_bids();
        w.varint(bids.size());
        for (const auto& b : bids) serde::write_bid(w, b);
        const Bytes enc = w.take();
        journal_decision(j, store::DecisionKind::kBidsAgreed, true,
                         crypto::sha256(BytesView(enc)));
      }
    }
    if (eng_done[j] == 0 && engine.done()) {
      eng_done[j] = scheduler.now();
    }
    if (engine.done() && !reported[j]) {
      reported[j] = true;
      const auto& out = *engine.outcome();
      serde::Writer w;
      w.boolean(out.ok());
      if (out.ok()) {
        w.bytes(serde::encode_result(out.value()));
      } else {
        w.u8(static_cast<std::uint8_t>(out.bottom().reason));
      }
      Bytes payload = w.take();
      if (wal_on) {
        // The digest covers the exact report the client receives — the pin
        // the kill-restart equivalence checks compare.
        journal_decision(j, store::DecisionKind::kOutcome, out.ok(),
                         crypto::sha256(BytesView(payload)));
      }
      scheduler.send(net::Message{j, client, result_topic, std::move(payload)});
    }
  };

  /// Application dispatch: the engine-facing tail shared by live deliveries
  /// and WAL replay. `msg` is post-link, post-validator.
  const auto dispatch_app = [&](NodeId j, const net::Message& msg) {
    core::ProviderEngine& engine = *chains[j].engine;
    if (msg.topic == bids_topic) {
      // Idempotent against a (faulty) network duplicating the client batch:
      // the engine starts exactly once.
      auto subs = decode_submissions(BytesView(msg.payload));
      if (subs && !started[j]) {
        started[j] = true;
        journal_decision(j, store::DecisionKind::kStarted, true,
                         net::payload_digest(msg.payload));
        engine.start(sanitize_submissions(*subs, auctioneer.spec().limits));
      }
    } else {
      engine.on_message(msg);
    }
    note_progress(j);
  };

  /// Validator + engine dispatch for a post-link message — the journaled
  /// form. Replay re-enters here: a fresh validator re-verifies every logged
  /// signature, so a WAL tampered with below the CRC still cannot smuggle a
  /// forged frame into the rebuilt engine.
  const auto dispatch_verified = [&](NodeId j, const net::Message& in) {
    net::Message verified;
    const net::Message* delivered = &in;
    if (net::MessageValidator* v = chains[j].validator.get()) {
      verified = in;
      switch (v->on_deliver(verified)) {
        case net::MessageValidator::Action::kDrop:
          return;
        case net::MessageValidator::Action::kAbort:
          chains[j].engine->abort(
              Bottom{v->proof() ? AbortReason::kEquivocationDetected
                                : AbortReason::kProtocolViolation,
                     v->abort_detail()});
          note_progress(j);
          return;
        case net::MessageValidator::Action::kDeliver:
          break;
      }
      delivered = &verified;
    }
    dispatch_app(j, *delivered);
  };

  /// Write-ahead append of one post-link delivery: durable before dispatch.
  /// The logged form keeps the signature header (auth on) — replay re-runs
  /// the validator, and the link's dedup digests (computed pre-validator)
  /// line up with the restored keys.
  const auto journal_message = [&](NodeId j, const net::Message& msg) {
    if (!wal_on) return;
    wals[j]->append_message_record(msg.from, msg.topic.str(),
                                   BytesView(msg.payload));
    wals[j]->commit();
    ++wal_delivered[j];
  };

  /// Periodic consistency checkpoint, appended *after* dispatch so the flags
  /// describe the state the preceding message records produce on replay.
  const auto maybe_snapshot = [&](NodeId j) {
    if (!wal_on || config_.wal.snapshot_every == 0) return;
    if (wal_delivered[j] % config_.wal.snapshot_every != 0) return;
    store::Snapshot s;
    s.messages_delivered = wal_delivered[j];
    s.started = started[j];
    s.bids_agreed = chains[j].engine->agreed_bids().has_value();
    s.done = chains[j].engine->done();
    const Bytes enc = store::encode_snapshot(s);
    wals[j]->append(store::RecordType::kSnapshot, BytesView(enc));
    wals[j]->commit();
  };

  const auto build_chain = [&](NodeId j) {
    NodeChain& c = chains[j];
    c.endpoint =
        std::make_unique<net::SimEndpoint>(scheduler, j, m, endpoint_seeds[j]);
    blocks::Endpoint* ep = c.endpoint.get();
    if (config_.reliability.enable) {
      c.link = std::make_unique<net::ReliableLink>(*ep, config_.reliability);
      ep = c.link.get();
      c.link->set_on_give_up([&, j](NodeId to, const net::Topic& topic,
                                    std::size_t attempts) {
        chains[j].engine->abort(Bottom{
            AbortReason::kDeliveryFailed,
            "provider " + std::to_string(to) + " unreachable on '" +
                topic.str() + "' after " + std::to_string(attempts) +
                " attempts"});
        note_progress(j);
      });
    }
    if (config_.auth.enable) {
      if (config_.auth_adversary.node == j &&
          config_.auth_adversary.mode != adversary::AuthTamperMode::kNone) {
        c.tamperer = std::make_unique<adversary::AuthTamperEndpoint>(
            *ep, config_.auth_adversary.mode);
        ep = c.tamperer.get();
      }
      c.signer = std::make_unique<net::SignerEndpoint>(*ep, key_dir, &auth_stats);
      ep = c.signer.get();
      c.validator = std::make_unique<net::MessageValidator>(
          j, key_dir, config_.auth, config_.seed ^ (0xba7c4000u + j),
          &auth_stats);
    }
    if (auto it = config_.deviations.find(j); it != config_.deviations.end()) {
      c.deviant = std::make_unique<adversary::DeviantEndpoint>(*ep, it->second);
      ep = c.deviant.get();
    }
    auction::Ask ask =
        j < instance.asks.size() ? instance.asks[j] : auction::Ask{j, {}, {}};
    c.engine = auctioneer.make_engine(*ep, ask);
  };

  const auto has_amnesia_crash = [&](NodeId j) {
    if (!config_.faults) return false;
    for (const auto& c : config_.faults->crashes) {
      if (c.node == j && c.mode == sim::CrashMode::kAmnesia) return true;
    }
    return false;
  };
  const auto wal_sink = [&](NodeId j) -> std::shared_ptr<store::Storage> {
    if (faulty_disks[j]) return faulty_disks[j];
    return storages[j];
  };
  for (NodeId j = 0; j < m; ++j) {
    build_chain(j);
    if (wal_on) {
      storages[j] = std::make_shared<store::MemStorage>();
      if (config_.wal_fault.enable && has_amnesia_crash(j)) {
        store::StorageFaultConfig fc = config_.wal_fault;
        fc.seed = config_.wal_fault.seed ^ (0x57a6e000u + j);  // per-node stream
        faulty_disks[j] = std::make_shared<store::FaultyStorage>(storages[j], fc);
      }
      wals[j] = std::make_unique<store::Wal>(wal_sink(j));
      wals[j]->open();  // fresh storage: nothing to scan
      const Bytes enc = store::encode_meta(expected_meta(j));
      wals[j]->append(store::RecordType::kMeta, BytesView(enc));
      wals[j]->commit();
    }
  }

  /// Amnesia recovery (docs/DURABILITY.md): destroy the node's memory,
  /// rebuild the chain over the same endpoint seed, replay the surviving
  /// log through the real dispatch path, then sweep peers for the gap.
  const auto rebuild_node = [&](NodeId j) {
    // The process died: no timer armed by the lost state may ever run — the
    // objects behind those callbacks are about to be destroyed.
    scheduler.bump_incarnation(j);
    if (chains[j].link) rel_stats_acc += chains[j].link->stats();
    wal_stats_acc += wals[j]->stats();
    started[j] = false;  // re-derived by replay (the bids batch is in the log)
    chains[j] = NodeChain{};
    build_chain(j);
    // Power-loss damage lands now, before the log is reopened: no appends
    // happen inside the down window (the injector drops deliveries to a down
    // node), so damaging at the rebuild instant ≡ damaging at the crash.
    if (faulty_disks[j]) faulty_disks[j]->crash();
    wals[j] = std::make_unique<store::Wal>(wal_sink(j));
    const store::WalScan scan = wals[j]->open();
    // Identity gate: a log that does not name this exact run and node is
    // foreign state — replaying it would silently diverge. Cannot happen
    // in-sim (this run wrote it), but recovery refuses exactly like the CLI.
    std::string why;
    bool meta_ok = false;
    if (!scan.records.empty() &&
        scan.records.front().type == store::RecordType::kMeta) {
      if (const auto meta = store::decode_meta(BytesView(scan.records.front().payload))) {
        meta_ok = store::meta_matches(*meta, expected_meta(j), &why);
      } else {
        why = "meta record undecodable";
      }
    } else {
      why = "no meta record";
    }
    if (!meta_ok) {
      chains[j].engine->abort(
          Bottom{AbortReason::kProtocolViolation, "wal recovery refused: " + why});
      note_progress(j);
      return;
    }
    replaying[j] = true;
    std::uint64_t replayed = 0;
    for (std::size_t i = 1; i < scan.records.size(); ++i) {
      const store::WalRecord& rec = scan.records[i];
      if (rec.type == store::RecordType::kMessage) {
        auto lm = store::decode_message(BytesView(rec.payload));
        if (!lm) continue;  // framing passed CRC but the payload is malformed
        net::Message msg{lm->from, j, net::Topic(lm->topic),
                         SharedBytes(std::move(lm->payload))};
        // Dedup key first: post-replay wire copies of an already-consumed
        // message (peer retransmits, rejoin answers) must be suppressed, not
        // double-delivered to the rebuilt engine.
        if (chains[j].link) chains[j].link->restore_delivered(msg);
        ++replayed;
        ++wals[j]->stats().messages_replayed;
        dispatch_verified(j, msg);
      } else if (rec.type == store::RecordType::kSnapshot) {
        const auto s = store::decode_snapshot(BytesView(rec.payload));
        if (!s) continue;
        ++wals[j]->stats().snapshots_checked;
        const bool match =
            s->messages_delivered == replayed && s->started == started[j] &&
            s->bids_agreed == chains[j].engine->agreed_bids().has_value() &&
            s->done == chains[j].engine->done();
        if (!match) {
          ++wals[j]->stats().snapshot_mismatches;
          DAUCT_WARN("wal replay: snapshot checkpoint mismatch at node "
                     << j << " after " << replayed << " messages");
        }
      }
      // Decision records are durable commitments, not replay inputs.
    }
    wal_delivered[j] = replayed;
    replaying[j] = false;
    // Close the gap: ask every peer to re-send its cached frames for this
    // node. Everything already consumed pre-crash dedups against the keys
    // restored above; what the node never saw finally arrives.
    if (chains[j].link) chains[j].link->request_rejoin();
  };

  // Arm one rebuild per amnesia crash window, due at the recovery instant.
  // Scheduled before the first event, so its queue sequence number is lower
  // than any same-instant delivery or deferred timer: the node is whole
  // again before the world talks to it.
  if (config_.faults && wal_on) {
    for (const auto& c : config_.faults->crashes) {
      if (c.mode != sim::CrashMode::kAmnesia) continue;
      if (c.recover_at == sim::kSimForever || c.node >= m) continue;
      scheduler.schedule_timer(c.recover_at, c.node,
                               [&, j = c.node] { rebuild_node(j); });
    }
  }

  for (NodeId j = 0; j < m; ++j) {
    scheduler.set_deliver(j, [&, j](const net::Message& raw) {
      // The reliable link consumes its control traffic (acks, re-requests)
      // and retransmitted duplicates before the engine can misread them,
      // and strips its wire header (piggybacked ack vectors) in place — the
      // copy is an alias (refcounted payload), not a byte copy.
      net::Message unwrapped;
      const net::Message* carried = &raw;
      if (net::ReliableLink* link = chains[j].link.get()) {
        unwrapped = raw;
        if (!link->on_deliver(unwrapped)) return;
        carried = &unwrapped;
      }
      // Write-ahead: the delivery is durable before the engine sees it, so
      // a crash between the two replays it instead of losing it.
      journal_message(j, *carried);
      // The validator then verifies and strips the signature header (auth
      // on) — rejected and replayed frames die here; equivocation aborts.
      dispatch_verified(j, *carried);
      maybe_snapshot(j);
    });
  }

  scheduler.set_deliver(client, [&](const net::Message& msg) {
    // One result per provider (duplicate-safe, same reason as above).
    if (msg.topic == result_topic && msg.from < m && !result_seen[msg.from]) {
      result_seen[msg.from] = true;
      ++results_at_client;
      if (results_at_client == m) client_done_at = scheduler.now();
    }
  });

  // The client submits every bidder's (behaviour-shaped) bids to every
  // provider at t = 0 — one batch message per provider, as in the paper's
  // prototype.
  crypto::Rng bidder_rng(config_.seed ^ 0xb1dde5u);
  const auto honest = adversary::honest_bidder();
  // Batches are always built in canonical forward order so behaviour RNG
  // draws are identical whatever frame tricks follow — a reordered or
  // replayed injection submits byte-identical bids to its trick-free twin.
  std::vector<Bytes> batches(m);
  for (NodeId j = 0; j < m; ++j) {
    std::vector<std::optional<auction::Bid>> subs(n);
    for (std::size_t i = 0; i < n && i < instance.bids.size(); ++i) {
      const adversary::BidderBehaviour* behaviour = honest.get();
      if (auto it = config_.bidder_script.find(static_cast<BidderId>(i));
          it != config_.bidder_script.end()) {
        behaviour = it->second.get();
      }
      subs[i] = behaviour->bid_for(instance.bids[i], j, bidder_rng);
    }
    batches[j] = encode_submissions(subs);
  }
  for (NodeId idx = 0; idx < m; ++idx) {
    const NodeId j = config_.bid_frames.reorder ? static_cast<NodeId>(m - 1 - idx)
                                                : idx;
    const int copies = config_.bid_frames.replay ? 2 : 1;
    for (int rep = 0; rep < copies; ++rep) {
      scheduler.inject(sim::kSimStart,
                       net::Message{client, j, bids_topic, batches[j]});
    }
  }

  const bool overflow = scheduler.run_some(config_.max_events);
  if (overflow) {
    DAUCT_WARN("sim runtime: event budget exhausted; treating run as stalled");
  }

  // Batch verification delivers optimistically; flush what never reached a
  // full round. A failure here is late detection: it overrides whatever
  // outcome the provider computed from the forged input.
  std::vector<std::optional<Bottom>> late_auth_abort(m);
  for (NodeId j = 0; j < m; ++j) {
    if (net::MessageValidator* v = chains[j].validator.get();
        v && v->finalize() == net::MessageValidator::Action::kAbort) {
      late_auth_abort[j] =
          Bottom{v->proof() ? AbortReason::kEquivocationDetected
                            : AbortReason::kProtocolViolation,
                 v->abort_detail()};
    }
  }

  SimRunResult result;
  result.event_budget_exhausted = overflow;
  result.events_dispatched = scheduler.events_dispatched();
  result.provider_outcomes.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    if (late_auth_abort[j]) {
      result.provider_outcomes.push_back(
          auction::AuctionOutcome(*late_auth_abort[j]));
    } else if (chains[j].engine->done()) {
      result.provider_outcomes.push_back(*chains[j].engine->outcome());
    } else if (overflow) {
      // Distinct from a drained-queue stall: events were still pending when
      // the budget ran out, i.e. the run was cut off, not out of moves. The
      // fuzz oracle treats this ⊥ as a liveness violation (a plan that can
      // spin past any budget must not pass as "explicit abort").
      result.stalled = true;
      result.provider_outcomes.push_back(auction::AuctionOutcome(Bottom{
          AbortReason::kEventBudgetExceeded,
          "event budget (" + std::to_string(config_.max_events) +
              ") exhausted before the provider finished"}));
    } else {
      result.stalled = true;
      result.provider_outcomes.push_back(auction::AuctionOutcome(
          Bottom{AbortReason::kTimeout, "provider never finished"}));
    }
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  result.makespan = results_at_client == m ? client_done_at : scheduler.now();
  result.traffic = scheduler.traffic();
  if (const auto* fs = scheduler.fault_stats()) result.fault_stats = *fs;
  result.reliability_stats = rel_stats_acc;
  for (const auto& c : chains) {
    if (c.link) result.reliability_stats += c.link->stats();
  }
  if (wal_on) {
    result.wal_stats = wal_stats_acc;
    for (const auto& w : wals) result.wal_stats += w->stats();
    for (const auto& d : faulty_disks) {
      if (!d) continue;
      result.storage_fault_stats.syncs_dropped += d->stats().syncs_dropped;
      result.storage_fault_stats.crashes += d->stats().crashes;
      result.storage_fault_stats.torn_bytes += d->stats().torn_bytes;
      result.storage_fault_stats.flipped_bytes += d->stats().flipped_bytes;
    }
  }
  if (config_.auth.enable) {
    result.auth_stats = auth_stats;
    // Prefer a proof a receiver assembled locally (it saw both conflicting
    // frames); otherwise run the auditor sweep, which cross-references every
    // receiver's records and catches split equivocation.
    for (NodeId j = 0; j < m && !result.equivocation_proof; ++j) {
      if (chains[j].validator && chains[j].validator->proof()) {
        result.equivocation_proof = chains[j].validator->proof();
      }
    }
    if (!result.equivocation_proof) {
      std::vector<const net::MessageValidator*> vs;
      for (NodeId j = 0; j < m; ++j) {
        if (chains[j].validator) vs.push_back(chains[j].validator.get());
      }
      result.equivocation_proof = net::audit_equivocation(vs, *key_dir);
    }
    if (result.equivocation_proof && !result.global_outcome.ok()) {
      // A transferable proof is the strongest statement about why the run
      // died: surface it as the global reason (the engine-level mismatch it
      // provoked stays visible in the per-provider outcomes).
      result.global_outcome = auction::AuctionOutcome(
          Bottom{AbortReason::kEquivocationDetected,
                 "transferable equivocation proof against provider p" +
                     std::to_string(result.equivocation_proof->signer) +
                     " on topic '" + result.equivocation_proof->topic + "'"});
    }
  }
  result.bid_agreement_done_at = std::move(ba_done);
  result.provider_done_at = std::move(eng_done);
  return result;
}

SimRunResult SimRuntime::run_centralized(const core::CentralizedAuctioneer& auctioneer,
                                         const auction::AuctionInstance& instance) {
  // Node 0 = the trusted auctioneer, node 1 = the client.
  const NodeId trusted = 0, client = 1;
  const net::Topic bids_topic(kBidsTopic);
  const net::Topic result_topic(kResultTopic);
  sim::Scheduler scheduler(2, config_.latency, config_.seed, config_.cost_mode);
  scheduler.set_cpu_scale(config_.cpu_scale);
  if (config_.faults) scheduler.install_fault_plan(*config_.faults);

  crypto::Rng seed_rng(config_.seed ^ 0xc3a1u);
  const std::uint64_t coin = seed_rng.next_u64();

  std::optional<auction::AuctionResult> result_value;
  sim::SimTime client_done_at = 0;
  bool client_got_result = false;

  scheduler.set_deliver(trusted, [&](const net::Message& msg) {
    if (msg.topic != bids_topic) return;
    auto subs = decode_submissions(BytesView(msg.payload));
    if (!subs) return;
    auction::AuctionInstance run_instance;
    run_instance.bids = sanitize_submissions(*subs, auction::BidLimits{});
    run_instance.asks = instance.asks;
    result_value = auctioneer.run(run_instance, coin);
    scheduler.send(net::Message{trusted, client, result_topic,
                                serde::encode_result(*result_value)});
  });

  scheduler.set_deliver(client, [&](const net::Message& msg) {
    if (msg.topic == result_topic) {
      client_got_result = true;
      client_done_at = scheduler.now();
    }
  });

  // Bids travel client → auctioneer in one batch message.
  std::vector<std::optional<auction::Bid>> subs(instance.bids.size());
  for (std::size_t i = 0; i < instance.bids.size(); ++i) subs[i] = instance.bids[i];
  scheduler.inject(sim::kSimStart,
                   net::Message{client, trusted, bids_topic, encode_submissions(subs)});

  const bool overflow = scheduler.run_some(config_.max_events);

  SimRunResult result;
  result.event_budget_exhausted = overflow;
  result.events_dispatched = scheduler.events_dispatched();
  if (result_value && client_got_result) {
    result.provider_outcomes.push_back(auction::AuctionOutcome(*result_value));
    result.makespan = client_done_at;
  } else {
    result.stalled = true;
    result.provider_outcomes.push_back(auction::AuctionOutcome(
        overflow ? Bottom{AbortReason::kEventBudgetExceeded,
                          "event budget (" + std::to_string(config_.max_events) +
                              ") exhausted before the run completed"}
                 : Bottom{AbortReason::kTimeout,
                          "centralized run never completed"}));
    result.makespan = scheduler.now();
  }
  result.global_outcome =
      core::combine_outcomes(std::span(result.provider_outcomes));
  result.traffic = scheduler.traffic();
  if (const auto* fs = scheduler.fault_stats()) result.fault_stats = *fs;
  result.shared_seed = coin;
  return result;
}

}  // namespace dauct::runtime
