// Runtime side of the fault-plan fuzzer (sim/fuzz.hpp): turn a generated
// FuzzCase into a runnable Scenario, apply the safety oracle, and minimize
// violations with delta debugging.
//
// The oracle is the paper's resilience claim, checked mechanically:
//
//   * The fault-free twin of every case must complete ok — it runs the same
//     shape with no faults, so anything else is a generator or runtime bug
//     (kCleanFailed), not a protocol finding.
//   * A faulty run that completes ok must produce the clean twin's result,
//     byte-for-byte (result digests) — the protocol may abort under faults,
//     but it may never silently compute a different outcome (kWrongResult).
//   * Any explicit ⊥ is an allowed outcome — EXCEPT ⊥ event-budget-exceeded,
//     which means the run was still generating events when the hard budget
//     cut it off: a liveness violation, since every recovery mechanism
//     (retransmit chains, round watchdogs) is finite by construction
//     (kBudgetExceeded).
//
// The minimizer is oracle-parameterized so tests can inject a known-bad
// oracle and verify the machinery end-to-end without needing a real protocol
// bug in the tree.
#pragma once

#include <functional>
#include <string>

#include "runtime/scenario.hpp"
#include "sim/fuzz.hpp"

namespace dauct::runtime {

enum class FuzzVerdict {
  kPass,            ///< ok ∧ matches clean, or an allowed explicit ⊥
  kCleanFailed,     ///< the fault-free twin itself failed (harness bug)
  kWrongResult,     ///< completed ok with a result ≠ the clean twin's
  kBudgetExceeded,  ///< event budget exhausted: liveness violation
};

const char* fuzz_verdict_name(FuzzVerdict v);
inline bool fuzz_violation(FuzzVerdict v) { return v != FuzzVerdict::kPass; }

/// Build the runnable Scenario for a generated case. Pure data mapping; the
/// scenario name encodes (case_seed, index) so any emitted repro names its
/// origin.
Scenario scenario_from_case(const sim::FuzzCase& c);

/// One oracle evaluation: the faulty run, its forced clean twin, and the
/// verdict.
///
/// [service] runs additionally get one verdict PER INSTANCE: every instance
/// that cleared (x, p⃗) must reproduce the clean twin's SAME-instance digest
/// (kWrongResult otherwise), and a faulted instance may ⊥ only with an
/// explicit reason. The per-instance sweep runs even when the aggregate is ⊥
/// — an aggregate ⊥ (digest "") would otherwise mask a silently-wrong
/// surviving instance, exactly the corruption instance isolation promises
/// cannot happen. The overall verdict is the worst instance verdict.
struct FuzzReport {
  struct InstanceVerdict {
    std::uint64_t id = 0;
    FuzzVerdict verdict = FuzzVerdict::kPass;
    std::string detail;
  };
  FuzzVerdict verdict = FuzzVerdict::kPass;
  ScenarioRun run;      ///< includes the clean twin (always forced)
  std::string detail;   ///< one human-readable line on the verdict
  std::vector<InstanceVerdict> instance_verdicts;  ///< [service] runs only
};
FuzzReport run_oracle(const Scenario& sc);

/// Verdict-only oracle signature the minimizer probes with. The default
/// oracle is run_oracle(); tests substitute a known-bad one.
using FuzzOracle = std::function<FuzzVerdict(const Scenario&)>;
FuzzVerdict default_oracle(const Scenario& sc);

/// Delta-debugging minimization: ddmin over the scenario's fault clauses
/// (link rules, cuts, partitions, crashes, deviations, the wire adversary),
/// then scalar shrinking of the survivors' rates and times, iterated to a
/// fixpoint. Every candidate is re-verified with `oracle`; a step is taken
/// only if the exact `verdict` reproduces, so the result is a local minimum
/// that still fails the same way. Deterministic: same input → same minimum
/// (the oracle itself is deterministic at a fixed scenario seed).
struct MinimizeResult {
  Scenario scenario;        ///< locally minimal, verdict-preserving
  std::size_t probes = 0;   ///< oracle evaluations spent
  std::size_t removed = 0;  ///< fault clauses eliminated
};
MinimizeResult minimize(const Scenario& failing, FuzzVerdict verdict,
                        const FuzzOracle& oracle);

/// Pin the observed behavior into `sc`'s [expect] block so the emitted .scn
/// is self-checking: `dauct_cli --scenario repro.scn` exits 0 exactly while
/// the violation still reproduces (and fails loudly once the bug is fixed,
/// prompting the scenario's retirement or re-pinning).
void pin_expectations(Scenario& sc, const FuzzReport& report);

}  // namespace dauct::runtime
