// Declarative fault-injection scenarios: data, not code.
//
// A scenario file (.scn, INI-style — serde/ini.hpp) bundles everything needed
// to replay one auction run under faults, bit-reproducibly:
//
//   [scenario] name/description   [run] auction/users/providers/k/seed/...
//   [fault]    fault RNG seed     [link] [cut] [partition] [crash]  (repeat)
//   [reliability] ack/retransmit layer knobs (net/reliable.hpp)
//   [wal]      durable provider state (store/wal.hpp; amnesia recovery)
//   [deviation] byzantine provider strategies (adversary/provider_deviation)
//   [expect]   self-checking assertions (outcome, stall, matches_clean, ...)
//
// run_scenario() executes the scenario on the deterministic virtual-time
// runtime (CostMode::kZero: the run is a pure function of the file), runs the
// fault-free twin when an expectation compares against it, and evaluates the
// [expect] section — which is what makes checked-in scenarios CI-enforceable
// (`dauct_cli --scenario FILE` exits non-zero on a violated expectation).
//
// Full key reference and a cookbook for every shipped scenarios/*.scn:
// docs/SCENARIOS.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/service_runtime.hpp"
#include "runtime/sim_runtime.hpp"

namespace dauct::runtime {

/// One coalition member and the deviation strategy it follows. The coalition
/// passed to coalition-aware strategies is the set of all deviant nodes in
/// the scenario.
struct DeviationSpec {
  NodeId node = kNoNode;
  std::string strategy;            ///< registry name (deviation_strategy_names())
  Money fake_cost = kZeroMoney;    ///< misreport-ask only
  /// Confine the deviation to one auction instance of a [service] run
  /// (kAnyInstance = every instance; the only valid value without [service]).
  std::uint64_t instance = sim::kAnyInstance;
};

/// One adversarial bidder ([bidder] section): which user deviates and how.
/// Behaviour names resolve through adversary::bidder_behaviour_by_name.
struct BidderSpec {
  BidderId bidder = 0;
  std::string behaviour;
};

/// Assertions evaluated after the run; unset fields are not checked.
struct ScenarioExpect {
  enum class Outcome { kUnspecified, kOk, kBottom };
  Outcome outcome = Outcome::kUnspecified;    ///< (x, p⃗) reached vs ⊥
  std::optional<bool> stalled;                ///< some provider never finished
  std::optional<bool> matches_clean;          ///< result ≡ the fault-free twin
  std::optional<std::string> abort_reason;    ///< abort_reason_name() of the ⊥
  std::optional<std::uint64_t> min_faults;    ///< injected-event lower bound
  /// Lower bound on frames the signing layer rejected or swallowed
  /// (bad signature + malformed + replays).
  std::optional<std::uint64_t> min_auth_rejects;
  /// The run must (true) / must not (false) yield a transferable
  /// equivocation proof — and a yielded proof must pass independent
  /// verification against the accused signer's public key.
  std::optional<bool> equivocation_proof;
  /// [service] runs only: at least this many instances must clear (x, p⃗) —
  /// the isolation assertion "a fault confined to instance t leaves the
  /// pipeline live for the rest".
  std::optional<std::uint64_t> min_instances_ok;
  /// [service] runs only: every instance that cleared must reach the exact
  /// result digest of its single-run twin (a standalone run at the
  /// instance's derived seed, same transport layers, no faults).
  std::optional<bool> instances_match_twins;
};

struct Scenario {
  std::string name;
  std::string description;

  // [run]
  std::string auction = "double";    ///< double | standard
  std::size_t users = 16;
  std::size_t providers = 5;
  std::size_t k = 1;
  double epsilon = 0.1;              ///< standard auction approximation
  std::uint64_t seed = 1;            ///< workload + protocol seed
  std::string latency = "community"; ///< zero | lan | community
  /// Hard scheduler event budget: the run is cut off with an explicit
  /// ⊥ event-budget-exceeded when it dispatches this many events with the
  /// queue still non-empty. Fuzzed plans run under a tight budget so a
  /// pathological plan can hang neither the fuzzer nor CI.
  std::uint64_t max_events = 50'000'000;

  // [service] — multi-auction service plane (runtime/service_runtime.hpp).
  // instances > 1 routes the run through ServiceRuntime: instance i's
  // workload is generated from derive_instance_seed(seed, i), and up to
  // pipeline_depth instances run concurrently over the shared transport.
  std::size_t instances = 1;
  std::size_t pipeline_depth = 1;

  sim::FaultPlan faults;
  net::ReliabilityConfig reliability;  ///< [reliability]; disabled by default
  net::AuthConfig auth;                ///< [auth]; disabled by default
  /// [wal]: durable provider state (store/wal.hpp); disabled by default.
  /// Required (with [reliability]) by any [crash] with mode=amnesia.
  store::WalConfig wal;
  /// [auth_adversary]: wire-level forge/replay injection (needs [auth]).
  adversary::AuthAdversaryConfig auth_adversary;
  std::vector<DeviationSpec> deviations;
  /// [bidder] (repeatable): adversarial bidders. Definition 1 promises the
  /// honest providers' agreement excludes their bids; the clean twin KEEPS
  /// the bidder script (the exclusion is the auction's defined outcome, not
  /// a fault to strip), so matches_clean stays exact.
  std::vector<BidderSpec> bidders;
  /// [bid_frames]: wire-level bid-frame tricks at the client's injection
  /// point. The clean twin drops these (they are faults, not inputs).
  adversary::BidFrameAdversary bid_frames;
  /// [wal] corrupt knobs (store::FaultyStorage): in-flight fsync drops plus
  /// crash damage on amnesia nodes. Requires enable=true and an amnesia
  /// crash; the clean twin drops it.
  store::StorageFaultConfig wal_fault;
  ScenarioExpect expect;

  /// Serialize back to .scn text that re-parses to an equivalent scenario
  /// (property-tested over every shipped scenario: to_scn is a fixpoint of
  /// parse ∘ to_scn). Default-valued keys are omitted; this is the emitter
  /// the fuzzer and the minimizer use to write committable repros.
  std::string to_scn() const;
};

struct ScenarioParse {
  std::optional<Scenario> scenario;
  std::string error;
  bool ok() const { return scenario.has_value(); }
};

/// Strict parse: unknown sections/keys, malformed numbers, inconsistent run
/// parameters (m ≤ 2k, no users) and unknown strategy names are errors.
ScenarioParse parse_scenario(std::string_view text);

/// Outcome of executing a scenario, plus the expectation verdicts.
///
/// A [service] scenario (instances > 1) fills `service` with the per-instance
/// results and synthesizes `run` as an aggregate view so every single-run
/// expectation keeps its meaning: global outcome ok iff ALL instances
/// cleared (else the first ⊥), stalled/stats/proof carried over, and
/// result_digest = sha256 over the concatenated per-instance result
/// encodings ("" if any instance is ⊥).
struct ScenarioRun {
  SimRunResult run;                     ///< the faulty/deviant run (aggregate)
  std::optional<SimRunResult> clean;    ///< fault-free twin, when compared
  std::optional<ServiceRunResult> service;  ///< per-instance view, [service] runs
  /// Fault-free twin's per-instance view ([service] runs, when the twin ran):
  /// what the fuzz oracle's per-instance verdicts compare against.
  std::optional<ServiceRunResult> clean_service;
  std::string result_digest;            ///< sha256 hex of the result; "" if ⊥
  std::string clean_digest;             ///< same, for the twin
  std::vector<std::string> failures;    ///< violated expectations

  bool ok() const { return failures.empty(); }
};

/// Execute the scenario. The fault-free twin runs when an expectation
/// compares against it or `force_clean_twin` is set (the fuzz oracle always
/// needs the twin's digest, whatever the generated [expect] block says).
ScenarioRun run_scenario(const Scenario& scenario, bool force_clean_twin = false);

/// Names accepted by [deviation] strategy= (for --help and error messages).
const std::vector<std::string>& deviation_strategy_names();

/// Per-instance result digest (sha256 hex; "" if the instance is ⊥) — the
/// value the per-instance oracle verdicts and instances_match_twins compare
/// against an instance's standalone twin.
std::string instance_result_digest(const InstanceRunResult& inst);

}  // namespace dauct::runtime
