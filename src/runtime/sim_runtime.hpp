// Deterministic virtual-time runtime.
//
// Reproduces the paper's deployment shape on a simulated community network:
// a client node generates the users' bids and submits them to every provider
// at t = 0; the providers run the distributed-auctioneer protocol; each
// provider returns its output to the client. The reported makespan is, as in
// the paper (§6.1), "the time from when the inputs are generated at this
// client node, till the time it receives the results from all the
// experiment instances."
//
// Two execution shapes:
//  * run_distributed — the m-provider simulation of the auctioneer;
//  * run_centralized — the trusted-auctioneer baseline (client → auctioneer
//    node → client).
//
// Adversarial knobs: per-bidder behaviours (equivocation, silence, garbage)
// and per-provider deviation strategies (coalitions).
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "adversary/auth_adversary.hpp"
#include "adversary/bidder_adversary.hpp"
#include "adversary/bidder_behaviour.hpp"
#include "adversary/provider_deviation.hpp"
#include "core/centralized_auctioneer.hpp"
#include "core/distributed_auctioneer.hpp"
#include "net/auth.hpp"
#include "net/reliable.hpp"
#include "sim/fault.hpp"
#include "sim/scheduler.hpp"
#include "store/wal.hpp"

namespace dauct::runtime {

struct SimRunConfig {
  sim::LatencyModel latency = sim::LatencyModel::community();
  sim::CostMode cost_mode = sim::CostMode::kZero;
  double cpu_scale = 1.0;      ///< calibration multiplier on measured CPU
  std::uint64_t seed = 1;      ///< drives jitter, node RNGs, bidder RNG

  /// Per-bidder behaviour overrides (default honest).
  adversary::BidderScript bidder_script;
  /// Wire-level bid-frame tricks at the client's injection point
  /// (adversary/bidder_adversary.hpp). Behaviour-draw order is canonical
  /// (forward, per bidder then provider) regardless of tricks, so a run with
  /// tricks submits byte-identical bids to its trick-free twin.
  adversary::BidFrameAdversary bid_frames;
  /// Coalition members and their deviation strategies.
  std::map<NodeId, std::shared_ptr<adversary::DeviationStrategy>> deviations;

  /// Deterministic fault plan installed into the scheduler (sim/fault.hpp).
  /// Unset = fault-free; an installed plan with all-zero rates is
  /// bit-identical to unset.
  std::optional<sim::FaultPlan> faults;

  /// Reliable-delivery layer (net/reliable.hpp): ack/retransmit + round
  /// timeouts between each provider's protocol chain and the scheduler.
  /// Disabled (the default) constructs no links at all — byte-identical to
  /// the pre-reliability runtime, golden-pinned.
  net::ReliabilityConfig reliability;

  /// Message authentication (net/auth.hpp): ed25519 sign-on-send /
  /// verify-on-deliver under the blocks, with transferable equivocation
  /// proofs. Disabled (the default) constructs no signing layer at all —
  /// byte-identical to the unauthenticated runtime, golden-pinned.
  net::AuthConfig auth;

  /// Wire-level adversary against the signing layer (adversary/
  /// auth_adversary.hpp): inject forged or replayed frames on one
  /// provider's outgoing edge.
  adversary::AuthAdversaryConfig auth_adversary;

  /// Durable provider state (store/wal.hpp): every engine-consumed delivery
  /// is appended to a per-provider write-ahead log *before* dispatch, and an
  /// amnesia crash (sim::CrashMode::kAmnesia) recovers by rebuilding the
  /// node's whole chain and replaying the log. Disabled (the default)
  /// constructs nothing — byte-identical to the pre-WAL runtime,
  /// golden-pinned. In the simulator the log lives in MemStorage: the
  /// "disk" survives the crashed "process" deterministically.
  store::WalConfig wal;

  /// In-flight WAL corruption (store::FaultyStorage): amnesia-crashing
  /// nodes' storage is wrapped in the seeded lying-disk decorator, so
  /// recovery replays from a damaged live tail. Only armed on nodes with an
  /// amnesia crash in the fault plan; requires wal.enable.
  store::StorageFaultConfig wal_fault;

  /// Safety valve against runaway simulations.
  std::uint64_t max_events = 50'000'000;
};

struct SimRunResult {
  std::vector<auction::AuctionOutcome> provider_outcomes;
  auction::AuctionOutcome global_outcome{Bottom{}};
  sim::SimTime makespan = 0;       ///< client-observed end-to-end time
  sim::TrafficStats traffic;
  sim::FaultStats fault_stats;     ///< zeros unless a fault plan was installed
  net::ReliabilityStats reliability_stats;  ///< summed over links; zeros when off
  net::AuthStats auth_stats;  ///< signing-layer counters; zeros when off
  store::WalStats wal_stats;  ///< write-ahead-log counters; zeros when off
  /// Lying-disk counters (store::FaultyStorage); zeros unless wal_fault armed.
  store::FaultyStorage::Stats storage_fault_stats;

  /// Transferable evidence of equivocation (net/auth.hpp), when the signing
  /// layer saw one: either assembled by a receiver that observed both
  /// conflicting frames, or by the post-run auditor sweep that
  /// cross-references all receivers' records (split equivocation).
  std::optional<net::EquivocationProof> equivocation_proof;
  bool stalled = false;  ///< some provider never finished (counts as ⊥)
  /// The scheduler hit config.max_events with events still queued: the run
  /// was cut off, not out of moves. Unfinished providers then carry
  /// ⊥ event-budget-exceeded instead of ⊥ timeout; the fuzz oracle
  /// (runtime/fuzz_harness.hpp) treats this flag as a liveness violation.
  bool event_budget_exhausted = false;
  /// Scheduler events dispatched by this run — what max_events bounds. Lets
  /// callers (tests, the fuzzer) position a budget between a clean run's
  /// appetite and a pathological one's.
  std::uint64_t events_dispatched = 0;
  std::uint64_t shared_seed = 0;   ///< common-coin value (distributed runs)

  /// Phase breakdown (distributed runs): virtual time at which each provider
  /// finished bid agreement / produced its final output. Zero if never.
  std::vector<sim::SimTime> bid_agreement_done_at;
  std::vector<sim::SimTime> provider_done_at;

  /// Max over providers (0 if none finished the phase).
  sim::SimTime bid_agreement_makespan() const;
  sim::SimTime provider_makespan() const;
};

class SimRuntime {
 public:
  explicit SimRuntime(SimRunConfig config) : config_(std::move(config)) {}

  const SimRunConfig& config() const { return config_; }

  /// Run the full distributed protocol on `instance` (true valuations; what
  /// bidders actually send is shaped by the bidder script).
  SimRunResult run_distributed(const core::DistributedAuctioneer& auctioneer,
                               const auction::AuctionInstance& instance);

  /// Run the trusted-auctioneer baseline.
  SimRunResult run_centralized(const core::CentralizedAuctioneer& auctioneer,
                               const auction::AuctionInstance& instance);

 private:
  SimRunConfig config_;
};

}  // namespace dauct::runtime
