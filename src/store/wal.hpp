// Durable provider state: an append-only, CRC-framed write-ahead log.
//
// A provider that is killed loses everything it held in memory — the paper's
// k-resilience claim is only real if a restarted provider can rebuild the
// exact state it died with. The WAL makes that possible with one rule:
//
//   a delivered message reaches the engine only after it is durable.
//
// Every engine-consumed message (post link-unwrap, with any signature header
// still attached — replay re-verifies it through a fresh validator) is
// appended and committed before dispatch. Recovery is then deterministic
// re-execution: construct a fresh engine over an endpoint seeded with the
// *same* per-node RNG seed (recorded in the meta record) and re-feed the
// logged messages in order. Because the engine is a deterministic state
// machine and its RNG draws replay in the same order, the rebuilt state —
// including hidden coin commitments and reveal secrets — is bit-identical to
// the pre-crash state, and everything the engine re-sends during replay is
// byte-identical to what it sent the first time (signatures included:
// ed25519 is deterministic). The re-sends repopulate the reliability layer's
// sent cache, so peers' re-requests get answered; peers deduplicate the
// copies and re-ack. The gap — messages the node never received — is closed
// by a rejoin sweep over the existing rl/rreq path (net/reliable.hpp).
//
// Record framing (versioned via the meta record):
//
//   [u32 len][u8 type][payload: len-1 bytes][u32 crc32(type ‖ payload)]
//
// Record types: meta (run identity + the node's endpoint seed — a WAL from a
// different run or node is refused), message (one delivered message),
// decision (signed round decision: started / bids-agreed / outcome),
// snapshot (periodic consistency checkpoint cross-checked during replay).
// open() scans sequentially and truncates at the first bad record — a torn,
// short, or bit-flipped tail loses at most the uncommitted suffix, never a
// committed record.
//
// The byte sink is abstracted (Storage): FileStorage appends to a real file
// with fsync'd batch commit (tcp runtime, CLI); MemStorage keeps the bytes in
// memory for the deterministic simulator — the WAL logic (framing, CRC,
// truncation, replay) is identical and real in both.
//
// Equivalence contract: with durability disabled nothing here is constructed
// and every runtime is byte-identical to the pre-WAL implementation (pinned
// against the golden fingerprints in tests/durability_test.cpp). Full format
// reference: docs/DURABILITY.md.
#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/rng.hpp"

namespace dauct::store {

/// CRC-32 (IEEE 802.3, reflected) of `data`. Local table implementation —
/// the WAL needs tamper-evidence against torn writes and bit rot, not
/// cryptographic integrity (decision records carry signatures for that).
std::uint32_t crc32(BytesView data);

/// Durability knobs, threaded from scenario files / CLI flags through the
/// runtime configs. Disabled (the default) constructs nothing.
struct WalConfig {
  bool enable = false;
  /// Append a snapshot record every N message records (0 = never). Snapshots
  /// are consistency checkpoints cross-checked during replay, not compaction
  /// points: replay always starts from the beginning of the log.
  std::size_t snapshot_every = 8;
};

/// What the WAL did, for reports and assertions.
struct WalStats {
  std::uint64_t records_appended = 0;
  std::uint64_t bytes_appended = 0;
  std::uint64_t commits = 0;             ///< sync() batch commits
  std::uint64_t messages_replayed = 0;   ///< message records re-fed on recovery
  std::uint64_t snapshots_checked = 0;   ///< snapshot records verified on replay
  std::uint64_t snapshot_mismatches = 0; ///< checkpoints that disagreed (0 = healthy)
  std::uint64_t truncated_bytes = 0;     ///< torn/corrupt tail dropped on open

  WalStats& operator+=(const WalStats& o) {
    records_appended += o.records_appended;
    bytes_appended += o.bytes_appended;
    commits += o.commits;
    messages_replayed += o.messages_replayed;
    snapshots_checked += o.snapshots_checked;
    snapshot_mismatches += o.snapshot_mismatches;
    truncated_bytes += o.truncated_bytes;
    return *this;
  }
};

/// Byte sink under the WAL. Implementations must make append() visible to a
/// subsequent read_all() on the same object; sync() is the durability point
/// (fsync for files, a no-op for memory).
class Storage {
 public:
  virtual ~Storage() = default;
  virtual Bytes read_all() = 0;
  virtual bool append(BytesView data) = 0;
  virtual bool sync() = 0;
  /// Drop everything past `size` bytes (tail truncation on open).
  virtual bool truncate(std::size_t size) = 0;
};

/// In-memory storage: the deterministic simulator's sink. The buffer
/// deliberately lives *outside* the per-node endpoint chain so it survives
/// an amnesia crash (the disk survives the process).
class MemStorage final : public Storage {
 public:
  Bytes read_all() override { return buf_; }
  bool append(BytesView data) override {
    buf_.insert(buf_.end(), data.begin(), data.end());
    return true;
  }
  bool sync() override {
    ++syncs_;
    return true;
  }
  bool truncate(std::size_t size) override {
    if (size < buf_.size()) buf_.resize(size);
    return true;
  }
  std::size_t size() const { return buf_.size(); }
  std::uint64_t syncs() const { return syncs_; }

  /// Test hook: corrupt the byte at `offset` (bit-flip injection).
  void corrupt_byte(std::size_t offset) {
    if (offset < buf_.size()) buf_[offset] ^= 0x40;
  }

 private:
  Bytes buf_;
  std::uint64_t syncs_ = 0;
};

/// POSIX file storage with fsync'd commit. open() creates the file when
/// absent; returns null on any filesystem error.
class FileStorage final : public Storage {
 public:
  static std::unique_ptr<FileStorage> open(const std::string& path);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  Bytes read_all() override;
  bool append(BytesView data) override;
  bool sync() override;
  bool truncate(std::size_t size) override;

  const std::string& path() const { return path_; }

 private:
  FileStorage(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  int fd_ = -1;
  std::string path_;
};

/// Knobs for FaultyStorage below, threaded from scenario files through the
/// runtime configs. Disabled (the default) wraps nothing.
struct StorageFaultConfig {
  bool enable = false;
  std::uint64_t seed = 1;  ///< the decorator's own RNG stream
  /// P(an individual sync() lies: reports success, commits nothing). The
  /// un-committed suffix stays at risk until the next honest sync.
  double sync_drop = 0.0;
  /// P(a crash() tears the at-risk suffix at a drawn byte offset). Offset 0
  /// degenerates to a short append that lost the whole uncommitted tail.
  double torn = 0.0;
  /// P(a crash() bit-flips one byte inside the at-risk suffix instead).
  double flip = 0.0;
};

/// Seeded lying-disk decorator: models fsync drops plus power-loss damage to
/// the bytes a dropped sync left uncommitted. Appends and reads pass through;
/// sync() may silently not advance the durable frontier; crash() — called by
/// the runtime at the amnesia-crash instant, before recovery reopens the log
/// — applies drawn damage (torn write or bit flip) to the at-risk suffix.
/// Everything up to the last *effective* sync is never touched, matching the
/// contract real disks are asked (and sometimes fail) to honour.
///
/// Determinism: all draws come from the decorator's own RNG (seeded from
/// StorageFaultConfig::seed), so a fuzzer case replays bit-identically.
class FaultyStorage final : public Storage {
 public:
  struct Stats {
    std::uint64_t syncs_dropped = 0;
    std::uint64_t crashes = 0;       ///< crash() calls
    std::uint64_t torn_bytes = 0;    ///< at-risk bytes lost to torn writes
    std::uint64_t flipped_bytes = 0; ///< at-risk bytes bit-flipped
  };

  FaultyStorage(std::shared_ptr<Storage> inner, StorageFaultConfig config);

  Bytes read_all() override { return inner_->read_all(); }
  bool append(BytesView data) override;
  bool sync() override;
  bool truncate(std::size_t size) override;

  /// Power-loss moment: damage the suffix written since the last effective
  /// sync. Call before the recovering node reopens the log.
  void crash();

  std::size_t synced_bytes() const { return synced_bytes_; }
  const Stats& stats() const { return stats_; }

 private:
  std::shared_ptr<Storage> inner_;
  StorageFaultConfig config_;
  crypto::Rng rng_;
  std::size_t size_ = 0;          ///< bytes appended (tracked; Storage has no size())
  std::size_t synced_bytes_ = 0;  ///< durable frontier: last effective sync
  Stats stats_;
};

enum class RecordType : std::uint8_t {
  kMeta = 1,      ///< run identity; must be the first record
  kMessage = 2,   ///< one engine-consumed delivered message
  kDecision = 3,  ///< signed round decision (started / bids-agreed / outcome)
  kSnapshot = 4,  ///< periodic consistency checkpoint
};

/// Run identity, written as the first record. A WAL whose meta does not
/// match the recovering run is *foreign state*: replaying it would silently
/// diverge, so recovery refuses it instead (meta_matches()).
struct WalMeta {
  std::uint32_t version = 1;       ///< record-format version (kWalVersion)
  std::uint64_t run_seed = 0;      ///< workload + protocol seed
  NodeId node = kNoNode;           ///< whose log this is
  std::uint64_t providers = 0;
  std::uint64_t users = 0;
  std::uint64_t k = 0;
  /// The node's endpoint RNG seed: what makes replay re-execution exact.
  std::uint64_t endpoint_seed = 0;

  bool operator==(const WalMeta&) const = default;
};

/// One logged delivered message: link header stripped, signature header
/// (auth on) still attached — the reliability layer's dedup digests are
/// computed pre-validator, so restored keys only match wire duplicates if
/// the logged bytes are the pre-validator form; replay re-verifies the
/// signature through a fresh validator. The topic travels as a string —
/// interned ids are per-process, a restarted process re-interns.
struct LoggedMessage {
  NodeId from = kNoNode;
  std::string topic;
  Bytes payload;
};

/// Round decisions a provider commits to durably, signable with the node's
/// ed25519 key when the auth layer is on (64-byte RFC 8032 signature over
/// kind ‖ digest; empty otherwise).
enum class DecisionKind : std::uint8_t {
  kStarted = 1,    ///< engine started on the client's bid batch
  kBidsAgreed = 2, ///< bid agreement reached; digest = sha256(encoded bids)
  kOutcome = 3,    ///< final outcome; digest = sha256(encoded result) or zero on ⊥
};

struct Decision {
  DecisionKind kind = DecisionKind::kStarted;
  bool ok = true;                      ///< kOutcome: (x, p⃗) vs ⊥
  std::array<std::uint8_t, 32> digest{};
  Bytes signature;                     ///< 64 bytes when signed, empty otherwise
};

/// Consistency checkpoint: enough to detect a divergent replay without being
/// a replay input (replay re-derives everything from the message records).
struct Snapshot {
  std::uint64_t messages_delivered = 0;  ///< message records before this point
  bool started = false;
  bool bids_agreed = false;
  bool done = false;
};

// --- Record payload codecs (serde framing, defensive decode) ---------------

Bytes encode_meta(const WalMeta& meta);
std::optional<WalMeta> decode_meta(BytesView payload);
Bytes encode_message(NodeId from, std::string_view topic, BytesView payload);
std::optional<LoggedMessage> decode_message(BytesView payload);
Bytes encode_decision(const Decision& d);
std::optional<Decision> decode_decision(BytesView payload);
Bytes encode_snapshot(const Snapshot& s);
std::optional<Snapshot> decode_snapshot(BytesView payload);

/// One good record recovered from the log.
struct WalRecord {
  RecordType type{};
  Bytes payload;
};

/// Result of scanning a log: every good record up to the first damage.
struct WalScan {
  std::vector<WalRecord> records;
  std::size_t good_bytes = 0;       ///< offset of the first bad byte (= file
                                    ///  size when the whole log is good)
  std::size_t truncated_bytes = 0;  ///< damaged tail length (0 = clean)
};

/// Scan `data` sequentially, stopping at the first short, oversized, or
/// CRC-failing record. Never throws: damage means a shorter scan, not an
/// error — the damaged suffix is exactly what an interrupted append leaves.
WalScan scan_wal(BytesView data);

/// The write-ahead log over a Storage. One writer per log.
class Wal {
 public:
  static constexpr std::uint32_t kVersion = 1;
  /// Defensive bound on a single record (peers never write our WAL, but a
  /// corrupt length prefix must not drive a huge allocation).
  static constexpr std::size_t kMaxRecordBytes = 16u << 20;

  explicit Wal(std::shared_ptr<Storage> storage);

  /// Read the existing log: scan, truncate any damaged tail down to the last
  /// good record, and return the good records. Call before the first append.
  WalScan open();

  /// Append one record (buffered in the storage; durable after commit()).
  bool append(RecordType type, BytesView payload);
  /// Durability point: everything appended so far survives a crash.
  bool commit();

  /// Convenience: append + decide whether a snapshot checkpoint is due.
  bool append_message_record(NodeId from, std::string_view topic,
                             BytesView payload);
  std::uint64_t message_records() const { return message_records_; }

  const WalStats& stats() const { return stats_; }
  WalStats& stats() { return stats_; }
  Storage& storage() { return *storage_; }

 private:
  std::shared_ptr<Storage> storage_;
  std::uint64_t message_records_ = 0;
  WalStats stats_;
};

/// True iff a recovered meta record names the same run and node as `expected`
/// (all fields, version included). The fail-fast gate against foreign state.
bool meta_matches(const WalMeta& recovered, const WalMeta& expected,
                  std::string* why = nullptr);

}  // namespace dauct::store
