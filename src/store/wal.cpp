#include "store/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>

#include "serde/codec.hpp"

namespace dauct::store {

namespace {

/// CRC-32 lookup table (IEEE 802.3 reflected polynomial 0xEDB88320),
/// generated once on first use.
const std::uint32_t* crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int b = 0; b < 8; ++b) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table.data();
}

}  // namespace

std::uint32_t crc32(BytesView data) {
  const std::uint32_t* table = crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    c = table[(c ^ byte) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- FileStorage -----------------------------------------------------------

std::unique_ptr<FileStorage> FileStorage::open(const std::string& path) {
  // O_APPEND: every write lands at the current end regardless of read
  // position — an append-only log must not depend on callers' seek history.
  const int fd = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  if (fd < 0) return nullptr;
  return std::unique_ptr<FileStorage>(new FileStorage(fd, path));
}

FileStorage::~FileStorage() {
  if (fd_ >= 0) ::close(fd_);
}

Bytes FileStorage::read_all() {
  Bytes out;
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end <= 0) return out;
  out.resize(static_cast<std::size_t>(end));
  std::size_t got = 0;
  while (got < out.size()) {
    const ssize_t n =
        ::pread(fd_, out.data() + got, out.size() - got, static_cast<off_t>(got));
    if (n <= 0) {
      out.resize(got);  // short read: scan what we have, truncation handles it
      break;
    }
    got += static_cast<std::size_t>(n);
  }
  return out;
}

bool FileStorage::append(BytesView data) {
  std::size_t put = 0;
  while (put < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + put, data.size() - put);
    if (n <= 0) return false;
    put += static_cast<std::size_t>(n);
  }
  return true;
}

bool FileStorage::sync() { return ::fsync(fd_) == 0; }

bool FileStorage::truncate(std::size_t size) {
  if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) return false;
  return ::lseek(fd_, 0, SEEK_END) >= 0;
}

// --- Record payload codecs -------------------------------------------------

Bytes encode_meta(const WalMeta& meta) {
  serde::Writer w;
  w.u32(meta.version);
  w.u64(meta.run_seed);
  w.u32(meta.node);
  w.u64(meta.providers);
  w.u64(meta.users);
  w.u64(meta.k);
  w.u64(meta.endpoint_seed);
  return w.take();
}

std::optional<WalMeta> decode_meta(BytesView payload) {
  serde::Reader r(payload);
  WalMeta m;
  m.version = r.u32();
  m.run_seed = r.u64();
  m.node = static_cast<NodeId>(r.u32());
  m.providers = r.u64();
  m.users = r.u64();
  m.k = r.u64();
  m.endpoint_seed = r.u64();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return m;
}

Bytes encode_message(NodeId from, std::string_view topic, BytesView payload) {
  serde::Writer w(4 + serde::varint_len(topic.size()) + topic.size() +
                  serde::varint_len(payload.size()) + payload.size());
  w.u32(from);
  w.str(topic);
  w.bytes(payload);
  return w.take();
}

std::optional<LoggedMessage> decode_message(BytesView payload) {
  serde::Reader r(payload);
  LoggedMessage m;
  m.from = static_cast<NodeId>(r.u32());
  const std::string_view topic = r.str_view();
  const BytesView body = r.bytes_view();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  m.topic.assign(topic);
  m.payload.assign(body.begin(), body.end());
  return m;
}

Bytes encode_decision(const Decision& d) {
  serde::Writer w;
  w.u8(static_cast<std::uint8_t>(d.kind));
  w.boolean(d.ok);
  w.raw(BytesView(d.digest.data(), d.digest.size()));
  w.bytes(d.signature);
  return w.take();
}

std::optional<Decision> decode_decision(BytesView payload) {
  serde::Reader r(payload);
  Decision d;
  const std::uint8_t kind = r.u8();
  if (kind < 1 || kind > 3) return std::nullopt;
  d.kind = static_cast<DecisionKind>(kind);
  d.ok = r.boolean();
  const BytesView digest = r.raw_view(32);
  const BytesView sig = r.bytes_view();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  if (!sig.empty() && sig.size() != 64) return std::nullopt;
  std::memcpy(d.digest.data(), digest.data(), 32);
  d.signature.assign(sig.begin(), sig.end());
  return d;
}

Bytes encode_snapshot(const Snapshot& s) {
  serde::Writer w;
  w.u64(s.messages_delivered);
  w.boolean(s.started);
  w.boolean(s.bids_agreed);
  w.boolean(s.done);
  return w.take();
}

std::optional<Snapshot> decode_snapshot(BytesView payload) {
  serde::Reader r(payload);
  Snapshot s;
  s.messages_delivered = r.u64();
  s.started = r.boolean();
  s.bids_agreed = r.boolean();
  s.done = r.boolean();
  if (!r.ok() || !r.at_end()) return std::nullopt;
  return s;
}

// --- Log scan --------------------------------------------------------------

WalScan scan_wal(BytesView data) {
  WalScan out;
  std::size_t off = 0;
  while (off + 4 <= data.size()) {
    std::uint32_t len;
    std::memcpy(&len, data.data() + off, 4);
    // A record is [u32 len][u8 type][payload][u32 crc]; len covers type +
    // payload. Oversized or zero lengths are damage, not records.
    if (len == 0 || len > Wal::kMaxRecordBytes) break;
    const std::size_t total = 4 + static_cast<std::size_t>(len) + 4;
    if (off + total > data.size()) break;  // torn tail: record cut short
    const BytesView body(data.data() + off + 4, len);
    std::uint32_t stored_crc;
    std::memcpy(&stored_crc, data.data() + off + 4 + len, 4);
    if (crc32(body) != stored_crc) break;  // bit flip in body, length, or crc
    const auto type = static_cast<RecordType>(body[0]);
    if (type != RecordType::kMeta && type != RecordType::kMessage &&
        type != RecordType::kDecision && type != RecordType::kSnapshot) {
      break;  // future/unknown type: cannot be replayed safely
    }
    out.records.push_back(
        WalRecord{type, Bytes(body.begin() + 1, body.end())});
    off += total;
  }
  out.good_bytes = off;
  out.truncated_bytes = data.size() - off;
  return out;
}

// --- Wal -------------------------------------------------------------------

Wal::Wal(std::shared_ptr<Storage> storage) : storage_(std::move(storage)) {}

WalScan Wal::open() {
  const Bytes data = storage_->read_all();
  WalScan scan = scan_wal(BytesView(data));
  if (scan.truncated_bytes > 0) {
    // Drop the damaged tail so subsequent appends extend the last *good*
    // record instead of burying garbage mid-log.
    storage_->truncate(scan.good_bytes);
    stats_.truncated_bytes += scan.truncated_bytes;
  }
  for (const auto& rec : scan.records) {
    if (rec.type == RecordType::kMessage) ++message_records_;
  }
  return scan;
}

bool Wal::append(RecordType type, BytesView payload) {
  serde::Writer w(4 + 1 + payload.size() + 4);
  w.u32(static_cast<std::uint32_t>(1 + payload.size()));
  w.u8(static_cast<std::uint8_t>(type));
  w.raw(payload);
  const Bytes frame = w.take();
  // CRC over type ‖ payload (everything between length and trailer).
  const std::uint32_t crc = crc32(BytesView(frame.data() + 4, frame.size() - 4));
  serde::Writer tail(4);
  tail.u32(crc);
  if (!storage_->append(BytesView(frame)) ||
      !storage_->append(BytesView(tail.take()))) {
    return false;
  }
  ++stats_.records_appended;
  stats_.bytes_appended += frame.size() + 4;
  return true;
}

bool Wal::commit() {
  ++stats_.commits;
  return storage_->sync();
}

bool Wal::append_message_record(NodeId from, std::string_view topic,
                                BytesView payload) {
  if (!append(RecordType::kMessage, BytesView(encode_message(from, topic, payload)))) {
    return false;
  }
  ++message_records_;
  return true;
}

bool meta_matches(const WalMeta& recovered, const WalMeta& expected,
                  std::string* why) {
  const auto fail = [&](const std::string& what) {
    if (why) *why = what;
    return false;
  };
  if (recovered.version != expected.version) {
    return fail("wal version " + std::to_string(recovered.version) +
                " != " + std::to_string(expected.version));
  }
  if (recovered.run_seed != expected.run_seed) {
    return fail("wal written by run seed " + std::to_string(recovered.run_seed) +
                ", this run is seed " + std::to_string(expected.run_seed));
  }
  if (recovered.node != expected.node) {
    return fail("wal written by node " + std::to_string(recovered.node) +
                ", this is node " + std::to_string(expected.node));
  }
  if (recovered.providers != expected.providers ||
      recovered.users != expected.users || recovered.k != expected.k) {
    return fail("wal written for a different deployment shape (m=" +
                std::to_string(recovered.providers) + ", n=" +
                std::to_string(recovered.users) + ", k=" +
                std::to_string(recovered.k) + ")");
  }
  if (recovered.endpoint_seed != expected.endpoint_seed) {
    return fail("wal endpoint seed mismatch: replay would diverge");
  }
  return true;
}

// --- FaultyStorage ----------------------------------------------------------

FaultyStorage::FaultyStorage(std::shared_ptr<Storage> inner,
                             StorageFaultConfig config)
    : inner_(std::move(inner)), config_(config), rng_(config.seed) {
  size_ = synced_bytes_ = inner_->read_all().size();
}

bool FaultyStorage::append(BytesView data) {
  if (!inner_->append(data)) return false;
  size_ += data.size();
  return true;
}

bool FaultyStorage::sync() {
  if (config_.sync_drop > 0 && rng_.next_double() < config_.sync_drop) {
    ++stats_.syncs_dropped;
    return true;  // the lying disk: reports success, commits nothing
  }
  if (!inner_->sync()) return false;
  synced_bytes_ = size_;
  return true;
}

bool FaultyStorage::truncate(std::size_t size) {
  if (!inner_->truncate(size)) return false;
  if (size < size_) size_ = size;
  if (synced_bytes_ > size_) synced_bytes_ = size_;
  return true;
}

void FaultyStorage::crash() {
  ++stats_.crashes;
  const std::size_t at_risk = size_ - synced_bytes_;
  if (at_risk == 0) return;
  const double draw = rng_.next_double();
  if (draw < config_.torn) {
    // Torn write: the at-risk suffix survives only up to a drawn offset.
    // keep = 0 degenerates to a short append (the whole tail vanished).
    const auto keep = static_cast<std::size_t>(rng_.next_below(at_risk));
    inner_->truncate(synced_bytes_ + keep);
    stats_.torn_bytes += at_risk - keep;
    size_ = synced_bytes_ + keep;
  } else if (draw < config_.torn + config_.flip) {
    // Bit rot in the at-risk tail: rewrite the suffix with one byte flipped
    // (Storage has no write-at-offset, so flip via truncate + re-append).
    const std::size_t off =
        synced_bytes_ + static_cast<std::size_t>(rng_.next_below(at_risk));
    Bytes all = inner_->read_all();
    all[off] ^= 0x40;
    inner_->truncate(off);
    inner_->append(BytesView(all.data() + off, all.size() - off));
    ++stats_.flipped_bytes;
  }
  // Otherwise the at-risk suffix happened to land intact — real disks
  // usually do commit what an un-synced write buffered.
}

}  // namespace dauct::store
