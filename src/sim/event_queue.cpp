#include "sim/event_queue.hpp"

#include <cassert>
#include <cstdio>

namespace dauct::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(t));
  return buf;
}

void EventQueue::schedule(SimTime at, Callback fn) {
  heap_.push(Event{at, next_seq_++, std::move(fn)});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.top().at;
}

SimTime EventQueue::run_next() {
  assert(!heap_.empty());
  // priority_queue::top() is const; copy the (cheap) std::function handle out
  // rather than const_cast-moving it.
  Event ev = heap_.top();
  heap_.pop();
  ++executed_;
  ev.fn();
  return ev.at;
}

}  // namespace dauct::sim
