#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace dauct::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(t));
  return buf;
}

void EventQueue::schedule(SimTime at, Callback fn) {
  assert(fn && "callback events must carry a callable");
  heap_.push_back(Event{at, next_seq_++, std::move(fn), net::Message{}});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void EventQueue::schedule_message(SimTime at, net::Message msg) {
  heap_.push_back(Event{at, next_seq_++, nullptr, std::move(msg)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().at;
}

SimTime EventQueue::run_next() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  // The earliest event is now at the back: move it out (neither the callback
  // nor the message payload is copied) and drop the slot before running, so
  // the event may freely schedule new events.
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  ++executed_;
  if (ev.fn) {
    ev.fn();
  } else {
    assert(message_handler_ && "message event without an installed handler");
    message_handler_(ev.at, std::move(ev.msg));
  }
  return ev.at;
}

}  // namespace dauct::sim
