#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace dauct::sim {

std::string format_time(SimTime t) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3fms", to_millis(t));
  return buf;
}

void EventQueue::schedule(SimTime at, Callback fn) {
  heap_.push_back(Event{at, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

SimTime EventQueue::next_time() const {
  assert(!heap_.empty());
  return heap_.front().at;
}

SimTime EventQueue::run_next() {
  assert(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  // The earliest event is now at the back: move it out (the callback and its
  // captured state are not copied) and drop the slot before running, so the
  // callback may freely schedule new events.
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  ++executed_;
  ev.fn();
  return ev.at;
}

}  // namespace dauct::sim
