// Link latency model for the simulated community network.
//
// Calibrated to a Guifi.net-style wireless mesh WAN path: a fixed base delay
// (propagation + forwarding through mesh hops) plus a per-byte serialization
// term, with multiplicative jitter. The defaults reproduce the regime of the
// paper's evaluation: milliseconds-scale links where the double-auction run
// is communication-dominated (Fig. 4) while the standard auction is
// computation-dominated (Fig. 5).
#pragma once

#include <cstdint>

#include "crypto/rng.hpp"
#include "sim/clock.hpp"

namespace dauct::sim {

/// latency = base + bytes·per_byte, scaled by U[1−jitter, 1+jitter].
/// In addition, the *receiving node* is occupied for bytes·recv_per_byte of
/// its own (virtual) time per inbound message — deserialization and NIC/IPC
/// processing serialize at the node even when links are parallel. This term
/// is what makes protocol cost grow with the number of participants m
/// (every provider ingests m copies per round), as in the paper's Fig. 4.
struct LatencyModel {
  SimTime base = from_micros(2'500);   ///< 2.5 ms one-way mesh path
  SimTime per_byte = 1'000;            ///< 1 µs/byte ≈ 8 Mbit/s effective
  double jitter = 0.2;                 ///< ±20 % multiplicative jitter
  SimTime recv_per_byte = 500;         ///< 0.5 µs/byte receive occupancy

  /// Zero-latency model (for logic-only tests).
  static LatencyModel zero();

  /// LAN-ish model (for overhead ablations).
  static LatencyModel lan();

  /// Community-network default (the calibration above).
  static LatencyModel community();

  /// Sample the one-way delay of a `bytes`-sized message.
  SimTime sample(std::size_t bytes, crypto::Rng& rng) const;

  /// Receive occupancy charged to the destination node's clock.
  SimTime recv_occupancy(std::size_t bytes) const {
    return recv_per_byte * static_cast<SimTime>(bytes);
  }
};

}  // namespace dauct::sim
