// Deterministic fault injection for the virtual-time simulator.
//
// A FaultPlan is pure data: stochastic per-link models (drop / duplicate /
// extra delay), timed link cuts, timed partitions, and provider crash events,
// all expressed in virtual time. The scheduler compiles an installed plan
// into a FaultInjector and consults it on its dispatch path, so any existing
// run can be replayed under faults — bit-reproducibly at a fixed seed.
//
// Determinism contract:
//  * All stochastic fault decisions draw from the injector's own RNG stream
//    (FaultPlan::seed), never from the scheduler's latency RNG, and a rule
//    with probability 0 (or jitter 0) draws nothing. An installed plan whose
//    every rate is zero is therefore bit-identical to no plan at all — same
//    outcome, same virtual makespan, same traffic counters (pinned by
//    tests/scenario_test.cpp against the fanout_test golden fingerprints).
//  * Fault decisions are made in event-dispatch order, which is itself
//    deterministic, so same seed + same plan → byte-identical run.
//
// Evaluation points (documented in docs/SCENARIOS.md):
//  * link rules, cuts, and partitions are evaluated at the message's DEPART
//    time (a cut link fails traffic entering it);
//  * crash windows are evaluated at both ends: a down sender emits nothing
//    (its depart time falls in the window) and a down receiver loses every
//    delivery whose arrival falls in the window. There is no retransmission
//    layer — what a node misses while down is gone.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/ids.hpp"
#include "crypto/rng.hpp"
#include "sim/clock.hpp"

namespace dauct::sim {

/// LinkFault::instance value meaning "every auction instance" (the default;
/// also the only valid value outside service-plane runs).
inline constexpr std::uint64_t kAnyInstance = ~0ull;

/// Stochastic per-message model on matching links. `from`/`to` default to
/// kNoNode = "any node"; `symmetric` also matches the reverse direction when
/// both endpoints are concrete.
struct LinkFault {
  NodeId from = kNoNode;       ///< sender filter (kNoNode = any)
  NodeId to = kNoNode;         ///< receiver filter (kNoNode = any)
  bool symmetric = true;       ///< also match to→from when both are concrete
  double drop = 0.0;           ///< P(message is lost)
  double duplicate = 0.0;      ///< P(one extra copy is delivered)
  SimTime extra_delay = 0;     ///< fixed extra latency
  SimTime jitter = 0;          ///< extra uniform latency in [0, jitter]
  SimTime active_from = kSimStart;
  SimTime active_until = kSimForever;  ///< window is [active_from, active_until)

  /// Declarative instance filter (service-plane runs): confine the rule to
  /// one auction instance's traffic. kAnyInstance (the default) matches all.
  /// The service runtime compiles this into `topic_scope` below — outside
  /// service runs it must stay kAnyInstance (scenario validation enforces).
  std::uint64_t instance = kAnyInstance;
  /// Compiled topic-prefix filter: when non-empty, the rule matches only
  /// messages whose topic starts with this prefix (the owning instance's
  /// namespace, e.g. "i0g0/"). Runtime-internal — never parsed from .scn;
  /// note that instance-confined rules cannot touch unscoped traffic (the
  /// link's rl/* control frames, cross-instance launch batches).
  std::string topic_scope;

  bool matches(NodeId f, NodeId t, std::string_view topic, SimTime depart) const;
};

/// Total symmetric cut of the a↔b link during [from, until).
struct LinkCut {
  NodeId a = kNoNode;
  NodeId b = kNoNode;
  SimTime from = kSimStart;
  SimTime until = kSimForever;
  /// Instance filter + compiled topic prefix, same contract as LinkFault:
  /// an instance-confined cut severs only that instance's topic namespace
  /// while co-tenant instances keep flowing over the shared link.
  std::uint64_t instance = kAnyInstance;
  std::string topic_scope;
};

/// Network partition during [from, until): messages crossing the boundary
/// between `group` and the rest of the nodes are dropped (both directions).
struct Partition {
  std::vector<NodeId> group;
  SimTime from = kSimStart;
  SimTime until = kSimForever;
  /// Instance filter + compiled topic prefix, same contract as LinkFault.
  std::uint64_t instance = kAnyInstance;
  std::string topic_scope;
};

/// What a crashed node keeps across its down window.
enum class CrashMode : std::uint8_t {
  /// The historical in-memory mode: the simulator keeps engine state alive
  /// across the window, so the node resumes exactly where it stopped (only
  /// the window's traffic is lost). Models a pause, not a kill.
  kRecover,
  /// The node's memory is *dropped* at the crash; at recover_at the runtime
  /// rebuilds the whole per-node chain from durable state (store/wal.hpp):
  /// replay the logged messages through a fresh engine, then re-request the
  /// gap from peers. Models a real kill-and-restart; requires the WAL and
  /// the reliability layer (validated by runtime/scenario.cpp).
  kAmnesia,
};

/// Crash of `node` at virtual time `at`. Crash-stop if `recover_at` is
/// kSimForever, crash-recover otherwise: the node is down in [at, recover_at)
/// and resumes afterwards — with its in-memory state (CrashMode::kRecover)
/// or from its write-ahead log (CrashMode::kAmnesia).
struct CrashEvent {
  NodeId node = kNoNode;
  SimTime at = kSimStart;
  SimTime recover_at = kSimForever;
  CrashMode mode = CrashMode::kRecover;
};

/// The declarative fault plan: data, not code. Parsed from .scn scenario
/// files (runtime/scenario.hpp) or built directly in tests.
struct FaultPlan {
  std::uint64_t seed = 1;  ///< fault-decision RNG stream (independent of the sim seed)
  std::vector<LinkFault> links;
  std::vector<LinkCut> cuts;
  std::vector<Partition> partitions;
  std::vector<CrashEvent> crashes;

  bool empty() const {
    return links.empty() && cuts.empty() && partitions.empty() && crashes.empty();
  }
};

/// What the injector did, for reports and assertions.
struct FaultStats {
  std::uint64_t link_dropped = 0;       ///< stochastic link-rule drops
  std::uint64_t cut_dropped = 0;        ///< dropped by a timed link cut
  std::uint64_t partition_dropped = 0;  ///< dropped crossing a partition
  std::uint64_t crash_dropped = 0;      ///< lost at/into a down node
  std::uint64_t duplicated = 0;         ///< fabricated extra deliveries
  std::uint64_t delayed = 0;            ///< messages given extra delay

  std::uint64_t total_dropped() const {
    return link_dropped + cut_dropped + partition_dropped + crash_dropped;
  }
};

/// Compiled plan + decision RNG, owned by the scheduler while a plan is
/// installed. All sampling happens here, on its own RNG stream.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Fate of a message departing `from`→`to` at `depart` on `topic`.
  struct SendVerdict {
    bool emitted = true;          ///< false: the sender was down — the message
                                  ///  never reached the wire (no traffic)
    bool deliver = true;          ///< false: lost on the wire (counted as sent)
    SimTime extra_delay = 0;      ///< added to the sampled link latency
    bool duplicate = false;       ///< deliver one extra copy...
    SimTime duplicate_delay = 0;  ///< ...this much after the original
  };
  SendVerdict on_send(NodeId from, NodeId to, std::string_view topic,
                      SimTime depart);

  /// True iff `node` is inside a crash window at time `at`. `count` adds the
  /// query to crash_dropped (deliver-side bookkeeping).
  bool down_at(NodeId node, SimTime at, bool count);

  /// Given that `node` is down at `at`: when it comes back up (kSimForever
  /// for a crash-stop). The scheduler uses this to carry a crash-recover
  /// node's timer wheel across the window — engine state survives recovery,
  /// so pending timers do too; they fire (late) at the recovery instant.
  SimTime recovery_time(NodeId node, SimTime at);

  const FaultStats& stats() const { return stats_; }

 private:
  bool severed(NodeId from, NodeId to, std::string_view topic, SimTime depart);

  FaultPlan plan_;
  crypto::Rng rng_;
  FaultStats stats_;
};

}  // namespace dauct::sim
