// Deterministic event queue for the virtual-time simulator.
//
// Events are ordered by (time, sequence-number): ties are broken by insertion
// order, so a run is a pure function of the seed and the charged costs.
//
// Two event kinds share one ordered heap:
//  * callback events — an opaque std::function (timers, bookkeeping);
//  * message events  — a plain net::Message plus its delivery time, handed to
//    the owner-installed message handler. Messages are the overwhelming
//    majority of simulated events; carrying them as a struct member instead
//    of boxing each one in a std::function closure saves one heap allocation
//    and a closure move per simulated message.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/message.hpp"
#include "sim/clock.hpp"

namespace dauct::sim {

/// A scheduled event: a callback or a message firing at a virtual time.
class EventQueue {
 public:
  using Callback = std::function<void()>;
  /// Receives (delivery time, message) for events scheduled with
  /// schedule_message(). Installed once by the owner (the Scheduler).
  using MessageHandler = std::function<void(SimTime, net::Message&&)>;

  /// Install the sink for message events. Must be set before the first
  /// schedule_message() fires.
  void set_message_handler(MessageHandler fn) { message_handler_ = std::move(fn); }

  /// Schedule `fn` at virtual time `at`.
  void schedule(SimTime at, Callback fn);

  /// Schedule delivery of `msg` at virtual time `at` (no closure, no extra
  /// allocation: the message rides in the event struct).
  void schedule_message(SimTime at, net::Message msg);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Virtual time of the earliest pending event.
  SimTime next_time() const;

  /// Pop and run the earliest event; returns its time.
  SimTime run_next();

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;       ///< null for message events
    net::Message msg;  ///< meaningful iff fn is null
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Explicit vector + push_heap/pop_heap instead of std::priority_queue:
  // top() of a priority_queue is const, which forced run_next() to *copy* the
  // std::function (and its captured state) out of every event. pop_heap moves
  // the earliest event to the back, where it can be moved out.
  std::vector<Event> heap_;
  MessageHandler message_handler_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dauct::sim
