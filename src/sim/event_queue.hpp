// Deterministic event queue for the virtual-time simulator.
//
// Events are ordered by (time, sequence-number): ties are broken by insertion
// order, so a run is a pure function of the seed and the charged costs.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hpp"

namespace dauct::sim {

/// A scheduled event: an opaque callback firing at a virtual time.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at virtual time `at`.
  void schedule(SimTime at, Callback fn);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Virtual time of the earliest pending event.
  SimTime next_time() const;

  /// Pop and run the earliest event; returns its time.
  SimTime run_next();

  /// Total events executed so far.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Explicit vector + push_heap/pop_heap instead of std::priority_queue:
  // top() of a priority_queue is const, which forced run_next() to *copy* the
  // std::function (and its captured state) out of every event. pop_heap moves
  // the earliest event to the back, where it can be moved out.
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace dauct::sim
