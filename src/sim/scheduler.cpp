#include "sim/scheduler.hpp"

#include <cassert>
#include <cmath>
#include <ctime>

#include "common/log.hpp"

namespace dauct::sim {

namespace {
SimTime thread_cpu_now() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<SimTime>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}
}  // namespace

Scheduler::Scheduler(std::size_t num_nodes, LatencyModel latency, std::uint64_t seed,
                     CostMode cost_mode)
    : num_nodes_(num_nodes),
      latency_(latency),
      rng_(seed),
      cost_mode_(cost_mode),
      clocks_(num_nodes, kSimStart),
      incarnations_(num_nodes, 0),
      handlers_(num_nodes),
      node_delay_(num_nodes, 0) {
  // In-flight messages ride the event queue as plain structs; this sink is
  // the single delivery point (callback events remain for non-message uses).
  queue_.set_message_handler(
      [this](SimTime at, net::Message&& msg) { deliver(at, std::move(msg)); });
}

void Scheduler::set_deliver(NodeId node, DeliverFn fn) {
  handlers_.at(node) = std::move(fn);
}

void Scheduler::set_node_delay(NodeId node, SimTime extra) {
  node_delay_.at(node) = extra;
}

void Scheduler::install_fault_plan(FaultPlan plan) {
  faults_ = std::make_unique<FaultInjector>(std::move(plan));
}

// Single exit onto the wire: let the fault injector decide the message's
// fate, charge traffic for everything that actually departed (wire drops
// count — the sender did send; a down sender's output does not), and
// schedule the surviving copies. The injector draws from its own RNG
// stream, so the no-plan path (one null test) and a zero-rate plan are both
// bit-identical to the pre-fault-hook scheduler.
void Scheduler::route(SimTime depart, SimTime lat, net::Message msg) {
  if (faults_) {
    const auto verdict =
        faults_->on_send(msg.from, msg.to, msg.topic.str(), depart);
    if (!verdict.emitted) return;  // down sender: never reached the wire
    traffic_.messages += 1;
    traffic_.bytes += msg.wire_size();
    if (!verdict.deliver) return;  // lost on the (faulty) wire
    lat += verdict.extra_delay;
    if (verdict.duplicate) {
      queue_.schedule_message(depart + lat + verdict.duplicate_delay, msg);
    }
    queue_.schedule_message(depart + lat, std::move(msg));
    return;
  }
  traffic_.messages += 1;
  traffic_.bytes += msg.wire_size();
  queue_.schedule_message(depart + lat, std::move(msg));
}

void Scheduler::send(net::Message msg) {
  assert(msg.to < num_nodes_);
  if (in_handler_) {
    outbox_.push_back(std::move(msg));  // departs at handler end
  } else {
    const SimTime depart = msg.from < num_nodes_ ? clocks_[msg.from] : now_;
    SimTime lat = latency_.sample(msg.wire_size(), rng_);
    lat += node_delay_[msg.to];
    if (msg.from < num_nodes_) lat += node_delay_[msg.from];
    route(depart, lat, std::move(msg));
  }
}

void Scheduler::inject(SimTime at, net::Message msg) {
  assert(msg.to < num_nodes_);
  const SimTime lat = latency_.sample(msg.wire_size(), rng_) + node_delay_[msg.to];
  route(at, lat, std::move(msg));
}

void Scheduler::schedule_timer(SimTime at, NodeId node, std::function<void()> fn) {
  assert(node < num_nodes_);
  // The timer is valid for the node incarnation that armed it: an amnesia
  // rebuild bumps the incarnation and every older timer degrades to a no-op.
  const std::uint32_t inc = incarnations_[node];
  queue_.schedule(at, [this, at, node, inc, fn = std::move(fn)] {
    run_timer(at, node, inc, fn);
  });
}

void Scheduler::bump_incarnation(NodeId node) {
  assert(node < num_nodes_);
  ++incarnations_[node];
}

// One execution protocol for handlers and timers: what runs on a node
// occupies its virtual clock and flushes its outbox when done. Kept in one
// place so timer-context and message-context time accounting can never
// drift apart (the golden fingerprints pin the result).
template <typename Fn>
void Scheduler::run_in_node_context(SimTime at, NodeId node, SimTime initial_charge,
                                    Fn&& fn) {
  const SimTime start = std::max(at, clocks_[node]);

  in_handler_ = true;
  current_node_ = node;
  extra_charge_ = initial_charge;
  const SimTime cpu_before = thread_cpu_now();
  fn();
  SimTime cost = extra_charge_;
  if (cost_mode_ == CostMode::kMeasured) {
    const SimTime measured = thread_cpu_now() - cpu_before;
    cost += static_cast<SimTime>(std::llround(measured * cpu_scale_));
  }
  in_handler_ = false;
  current_node_ = kNoNode;

  clocks_[node] = start + cost;
  flush_outbox(clocks_[node]);
}

// A timer is a handler without a message. A timer coming due while its node
// is down is *deferred to the recovery instant*, not dropped — the simulator
// keeps engine state across a crash-recover window, so the node's timer
// wheel survives with it (in-flight *messages* of the window stay lost). A
// crash-stop node never recovers: its due timers are discarded with it and
// the queue drains.
void Scheduler::run_timer(SimTime at, NodeId node, std::uint32_t incarnation,
                          const std::function<void()>& fn) {
  // Stale incarnation: the node was rebuilt from durable state after this
  // timer was armed (amnesia recovery). The state that scheduled it is gone.
  if (incarnation != incarnations_[node]) return;
  if (faults_ && faults_->down_at(node, at, /*count=*/false)) {
    const SimTime recover = faults_->recovery_time(node, at);
    if (recover != kSimForever) {
      // Deferral keeps the arming incarnation: if the recovery is an amnesia
      // rebuild, the bump at the recovery instant invalidates this too.
      queue_.schedule(recover, [this, recover, node, incarnation, fn] {
        run_timer(recover, node, incarnation, fn);
      });
    }
    return;
  }
  run_in_node_context(at, node, /*initial_charge=*/0, fn);
}

void Scheduler::charge(SimTime cost) {
  assert(in_handler_ && "charge() must be called from inside a handler");
  extra_charge_ += cost;
}

void Scheduler::flush_outbox(SimTime depart) {
  for (auto& msg : outbox_) {
    SimTime lat = latency_.sample(msg.wire_size(), rng_);
    lat += node_delay_[msg.to];
    if (msg.from < num_nodes_) lat += node_delay_[msg.from];
    route(depart, lat, std::move(msg));
  }
  outbox_.clear();
}

void Scheduler::deliver(SimTime at, net::Message msg) {
  const NodeId node = msg.to;
  // A crashed receiver loses the delivery outright (no trace entry: the node
  // never saw the message). Recovering a lost delivery is the reliability
  // layer's job (net/reliable.hpp), when one is installed above this.
  if (faults_ && faults_->down_at(node, at, /*count=*/true)) return;
  if (trace_enabled_) {
    trace_.push_back(TraceEntry{at, msg.from, node, msg.topic, msg.wire_size()});
  }
  if (!handlers_[node]) {
    DAUCT_DEBUG("scheduler: dropping message to handlerless node " << node);
    return;
  }
  // Receive occupancy: the node spends virtual time ingesting the message.
  run_in_node_context(at, node, latency_.recv_occupancy(msg.wire_size()),
                      [&] { handlers_[node](msg); });
}

void Scheduler::run() {
  // Pre-size the trace for at least the already-queued deliveries so the hot
  // loop does not start with a cascade of small reallocations.
  if (trace_enabled_) trace_.reserve(trace_.size() + queue_.size());
  while (!queue_.empty()) {
    // Advance the global clock *before* the event runs so handlers observe
    // the current virtual time through now().
    now_ = queue_.next_time();
    ++events_dispatched_;
    queue_.run_next();
  }
}

std::string Scheduler::format_trace(std::size_t max_entries) const {
  std::string out;
  std::size_t count = 0;
  for (const auto& e : trace_) {
    if (count++ >= max_entries) {
      out += "... (" + std::to_string(trace_.size() - max_entries) + " more)\n";
      break;
    }
    out += format_time(e.at) + " " + std::to_string(e.from) + "->" +
           std::to_string(e.to) + " " + e.topic.str() + " (" +
           std::to_string(e.bytes) + "B)\n";
  }
  return out;
}

bool Scheduler::run_some(std::uint64_t max_events) {
  if (trace_enabled_) trace_.reserve(trace_.size() + queue_.size());
  for (std::uint64_t i = 0; i < max_events && !queue_.empty(); ++i) {
    now_ = queue_.next_time();
    ++events_dispatched_;
    queue_.run_next();
  }
  return !queue_.empty();
}

}  // namespace dauct::sim
