// Virtual-time network scheduler.
//
// Simulates an asynchronous message-passing system with reliable channels and
// fair schedules (the paper's game-theoretic model, §3.3): every message sent
// is eventually delivered, and every node is scheduled to move whenever it
// has pending messages. Time is virtual:
//
//  * each node has a virtual clock;
//  * delivering a message to node j starts a handler at
//    max(delivery_time, clock[j]) — nodes process sequentially;
//  * the handler's real CPU time is measured (CLOCK_THREAD_CPUTIME_ID) and
//    charged to clock[j] (CostMode::kMeasured), or charged zero
//    (CostMode::kZero, fully deterministic for logic tests);
//  * messages sent during the handler depart at the handler's end time and
//    arrive after a sampled link latency.
//
// Determinism: with CostMode::kZero, a run is a pure function of the seed
// (events tie-break by sequence number). With kMeasured, timing varies with
// host load but protocol correctness never depends on it — blocks wait for
// complete rounds, not on timing.
//
// Fault injection: install_fault_plan() routes every message through a
// compiled sim::FaultInjector (drop / duplicate / delay / cut / partition /
// crash, all in virtual time, drawing from its own seeded RNG stream). With
// no plan installed the dispatch path pays one null-pointer test per message.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/rng.hpp"
#include "net/message.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault.hpp"
#include "sim/latency.hpp"

namespace dauct::sim {

enum class CostMode {
  kMeasured,  ///< charge real handler CPU time (benchmarks)
  kZero,      ///< charge nothing (deterministic logic tests)
};

/// Per-run traffic statistics.
struct TrafficStats {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// One delivered message, for trace recording. The topic is the interned id
/// (net/topic.hpp): recording a trace entry copies no strings.
struct TraceEntry {
  SimTime at = 0;          ///< delivery time
  NodeId from = kNoNode;
  NodeId to = kNoNode;
  net::Topic topic;
  std::size_t bytes = 0;
};

class Scheduler {
 public:
  using DeliverFn = std::function<void(const net::Message&)>;

  /// `num_nodes` includes any client nodes beyond the providers.
  Scheduler(std::size_t num_nodes, LatencyModel latency, std::uint64_t seed,
            CostMode cost_mode = CostMode::kZero);

  // Pinned: the event queue's message sink captures `this` at construction.
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Install the message handler of `node`.
  void set_deliver(NodeId node, DeliverFn fn);

  /// Send from within a handler: departs at the current handler's end time.
  /// Also valid outside a handler (departs at the sender's current clock).
  void send(net::Message msg);

  /// Inject a message from the outside world at absolute virtual time `at`
  /// (e.g. bidders submitting bids at t=0).
  void inject(SimTime at, net::Message msg);

  /// Run `fn` at absolute virtual time `at` in `node`'s execution context:
  /// sends made from the callback depart like handler sends (at the node's
  /// clock after the callback), and the node's clock advances past `at`.
  /// Timers belong to the node and share its crash fate: a timer coming due
  /// while the node is down is discarded forever on a crash-stop, but
  /// *deferred to the recovery instant* on a crash-recover — engine state
  /// survives the window, so the node's timer wheel does too (in-flight
  /// messages of the window stay lost). Used by the reliability layer
  /// (net/reliable.hpp) for retransmit backoff and round watchdogs; nothing
  /// schedules timers unless reliability is enabled, so the timer-free
  /// event stream is untouched.
  void schedule_timer(SimTime at, NodeId node, std::function<void()> fn);

  /// Invalidate every timer `node` scheduled before this call: a timer fires
  /// only if the node's incarnation still matches the one captured when it
  /// was scheduled. This is what makes an *amnesia* recovery safe — the
  /// rebuilt node must never run a timer armed by the state it lost (the
  /// engine object behind such a timer no longer exists), whether the timer
  /// was deferred through the down window or simply due after recovery.
  /// Deliveries are unaffected: in-flight messages survive a process, not
  /// its memory.
  void bump_incarnation(NodeId node);

  /// Charge extra virtual compute time to the node whose handler is running
  /// (explicit cost-model hook; combinable with measured costs).
  void charge(SimTime cost);

  /// Run until no events remain.
  void run();

  /// Run at most `max_events` events; returns true if events remain.
  /// Overflow is the hard budget guard fuzzed plans run under: the caller
  /// (runtime/sim_runtime.cpp) turns a true return into an explicit
  /// ⊥ event-budget-exceeded instead of letting a pathological plan spin.
  bool run_some(std::uint64_t max_events);

  /// Events dispatched over the scheduler's lifetime (deliveries + timers),
  /// across run()/run_some() calls. Budget accounting for the fuzz oracle.
  std::uint64_t events_dispatched() const { return events_dispatched_; }

  SimTime clock(NodeId node) const { return clocks_.at(node); }
  SimTime now() const { return now_; }
  const TrafficStats& traffic() const { return traffic_; }

  /// Scale factor applied to measured CPU time (calibration; default 1.0).
  void set_cpu_scale(double scale) { cpu_scale_ = scale; }

  /// Extra delay injection for adversarial-schedule tests: messages to/from
  /// `node` get an extra fixed delay.
  void set_node_delay(NodeId node, SimTime extra);

  /// Install a fault plan (sim/fault.hpp): every subsequent send/inject and
  /// delivery is routed through the compiled injector. Install before the
  /// first event runs; installing a plan whose rates are all zero is
  /// bit-identical to installing nothing. With no plan installed the
  /// dispatch path pays a single null-pointer test per message.
  void install_fault_plan(FaultPlan plan);

  /// Injector bookkeeping; null when no plan is installed.
  const FaultStats* fault_stats() const {
    return faults_ ? &faults_->stats() : nullptr;
  }

  /// Record every delivery (off by default; costs memory ∝ messages).
  void enable_trace(bool on) { trace_enabled_ = on; }
  const std::vector<TraceEntry>& trace() const { return trace_; }

  /// Render the trace as "time from->to topic (bytes)" lines.
  std::string format_trace(std::size_t max_entries = 100) const;

 private:
  void deliver(SimTime at, net::Message msg);
  void run_timer(SimTime at, NodeId node, std::uint32_t incarnation,
                 const std::function<void()>& fn);
  /// Shared handler/timer execution protocol: run `fn` on `node` starting no
  /// earlier than `at`, charge `initial_charge` plus (in kMeasured mode) the
  /// callback's real CPU time to the node's clock, then flush its outbox.
  template <typename Fn>
  void run_in_node_context(SimTime at, NodeId node, SimTime initial_charge, Fn&& fn);
  void flush_outbox(SimTime depart);
  void route(SimTime depart, SimTime lat, net::Message msg);

  std::size_t num_nodes_;
  LatencyModel latency_;
  crypto::Rng rng_;
  CostMode cost_mode_;
  double cpu_scale_ = 1.0;

  EventQueue queue_;
  std::vector<SimTime> clocks_;
  /// Per-node timer-validity epoch (bump_incarnation): timers carry the
  /// value current at scheduling time and are dropped on mismatch.
  std::vector<std::uint32_t> incarnations_;
  std::vector<DeliverFn> handlers_;
  std::vector<SimTime> node_delay_;
  SimTime now_ = kSimStart;
  std::uint64_t events_dispatched_ = 0;

  // Handler-execution context.
  bool in_handler_ = false;
  NodeId current_node_ = kNoNode;
  SimTime extra_charge_ = 0;
  std::vector<net::Message> outbox_;

  TrafficStats traffic_;
  std::unique_ptr<FaultInjector> faults_;  ///< null = fault-free (the fast path)
  bool trace_enabled_ = false;
  std::vector<TraceEntry> trace_;
};

}  // namespace dauct::sim
