// Adversarial fault-plan fuzzer: seeded random sampling of FaultPlans (and
// the optional reliability/auth/deviation knobs around them) within declared
// bounds.
//
// The paper's resilience claim — the distributed auction matches the
// fault-free outcome or aborts with an explicit ⊥ under up to k crashes and
// byzantine deviations — is sampled by the hand-written scenarios; the
// fuzzer *searches* for violations. PlanFuzzer only generates: it emits
// plain-data FuzzCases (this layer sits below net/ and runtime/, so knobs
// are plain fields, not net:: configs). The runtime-side harness
// (runtime/fuzz_harness.hpp) turns a case into a runnable Scenario, applies
// the safety oracle against the fault-free twin, and minimizes violations.
//
// Determinism contract:
//  * The case stream is a pure function of the fuzzer seed: same seed ⇒
//    byte-identical cases (pinned by tests/fuzz_test.cpp via to_scn text).
//  * Each case draws from its own Rng(case_seed), with case_seed taken from
//    the stream generator — so any single case is replayable standalone
//    from (seed, index) without generating its predecessors' contents.
//  * Generation honors k: crashed + deviant + wire-tampered providers are
//    distinct and total at most k — beyond k the paper promises nothing,
//    and an over-budget coalition could force a "wrong" result that is not
//    a counterexample to anything.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "crypto/rng.hpp"
#include "sim/fault.hpp"

namespace dauct::sim {

/// Declared sampling bounds. The defaults are the "default bounds" the CI
/// smoke shard and the acceptance fuzz run use: small fast runs (a run plus
/// its twin in a few milliseconds), rates high enough to exercise every
/// recovery path, an event budget a healthy run stays far under.
struct FuzzBounds {
  // --- run shape ---
  std::size_t min_users = 6, max_users = 20;
  std::size_t min_providers = 3, max_providers = 7;
  std::vector<std::string> latencies = {"zero", "lan", "community"};
  /// Hard scheduler event budget per run (⊥ event-budget-exceeded beyond).
  std::uint64_t max_events = 4'000'000;

  // --- fault plan ---
  std::size_t max_link_rules = 3;
  double max_drop = 0.35;
  double max_duplicate = 0.35;
  SimTime max_delay = from_millis(20);
  SimTime max_jitter = from_millis(10);
  std::size_t max_cuts = 2;
  std::size_t max_partitions = 1;
  std::size_t max_crashes = 2;       ///< additionally capped by the sampled k
  bool allow_crash_recover = true;
  /// Recovering crashes may come up as mode=amnesia (state dropped at the
  /// crash instant, real WAL replay on recovery). Only sampled when both the
  /// WAL and the reliability layer came up enabled — amnesia recovery needs
  /// a log to replay and the rejoin sweep to close the gap.
  bool allow_amnesia = true;
  /// Fault windows (cuts, partitions, crash/recover instants, link
  /// activity) are sampled within [0, horizon).
  SimTime horizon = from_millis(150);
  /// Service-plane sampling caps ([service] runs draw instances in
  /// [2, max_instances] and pipeline_depth in [1, min(max_pipeline_depth,
  /// instances)]); kept small by default — every instance multiplies the
  /// twin-oracle cost.
  std::size_t max_instances = 3;
  std::size_t max_pipeline_depth = 2;

  // --- optional layers ---
  double p_reliability = 0.5;
  /// Durable provider state (store/wal.hpp). Orthogonal to the fault plan:
  /// WAL-on runs must behave identically except that amnesia crashes become
  /// recoverable, so the coin is sampled independently of the crash draws.
  double p_wal = 0.5;
  double p_auth = 0.25;
  double p_auth_batch = 0.5;         ///< given auth
  double p_auth_adversary = 0.4;     ///< given auth and k budget left
  double p_deviation = 0.35;         ///< at least one deviant, given k budget
  /// Route the case through the multi-auction service plane
  /// (runtime/service_runtime.hpp). Amnesia crashes degrade to plain
  /// recover in service cases — scenario validation rejects amnesia with
  /// [service] because per-node durable state is shared across instances.
  double p_service = 0.35;
  /// Given a service case: per fault rule (link / cut / partition /
  /// deviation), P(the rule gets an instance= filter confining it to one
  /// auction's topic namespace while co-tenants share the wire).
  double p_instance_scope = 0.5;
  /// At least one adversarial bidder (adversary/bidder_adversary.hpp),
  /// possibly with replayed/reordered bid frames. Bidders are not providers:
  /// no k budget is spent — Definition 1 promises the outcome excludes their
  /// bids no matter how many misbehave.
  double p_bidder_adversary = 0.3;
  /// Given wal + a surviving amnesia crash: P(the recovering node's storage
  /// is wrapped in store::FaultyStorage so recovery replays a damaged live
  /// tail — dropped fsyncs plus torn-write/bit-flip crash damage).
  double p_wal_corrupt = 0.3;
  /// Adversarial bidder behaviour pool (names resolved by
  /// adversary::bidder_behaviour_by_name via the scenario parser). "honest"
  /// would be a no-op draw and is deliberately absent.
  std::vector<std::string> bidder_behaviours = {
      "silent", "malformed", "out-of-range", "equivocate",
  };
  /// Deviation strategy pool. Protocol-level deviations only: misreport-ask
  /// is deliberately absent — lying about one's own cost is input
  /// manipulation the mechanism prices in, so the run completes ok with a
  /// legitimately different result and would false-positive the
  /// matches-clean oracle.
  std::vector<std::string> strategies = {
      "corrupt-coin-reveal", "equivocate-votes",   "forge-task-results",
      "forge-output-digest", "selective-silence",
  };
};

/// Strict INI bounds-file parse (sections [shape] [faults] [knobs]; key
/// reference in docs/FUZZING.md). Unknown keys, malformed values, and
/// inconsistent ranges are errors.
struct FuzzBoundsParse {
  std::optional<FuzzBounds> bounds;
  std::string error;
  bool ok() const { return bounds.has_value(); }
};
FuzzBoundsParse parse_fuzz_bounds(std::string_view text);

/// One generated case: everything the harness needs to build a Scenario.
/// Plain data by design (see file comment).
struct FuzzCase {
  std::uint64_t index = 0;      ///< position in the stream
  std::uint64_t case_seed = 0;  ///< the case is a pure function of this

  std::size_t users = 0;
  std::size_t providers = 0;
  std::size_t k = 0;
  std::uint64_t run_seed = 0;   ///< workload + protocol seed
  std::string latency;
  std::uint64_t max_events = 0;

  FaultPlan faults;

  bool reliability = false;
  SimTime retransmit_delay = 0;
  std::size_t max_retries = 0;
  SimTime round_timeout = 0;
  bool piggyback_acks = true;

  bool wal = false;
  std::size_t wal_snapshot_every = 0;  ///< sampled when wal; 0 = no snapshots

  bool auth = false;
  bool auth_batch = false;
  NodeId auth_adversary_node = kNoNode;
  std::string auth_adversary_mode;  ///< "" | "forge" | "replay"

  struct Deviation {
    NodeId node = kNoNode;
    std::string strategy;
    /// Instance filter (service cases only): kAnyInstance = deviate in every
    /// instance, otherwise the node deviates only in this one.
    std::uint64_t instance = kAnyInstance;
  };
  std::vector<Deviation> deviations;

  /// Service plane: > 1 routes the case through ServiceRuntime with this
  /// many instances; depth is the concurrent-instance bound (see
  /// FuzzBounds::p_service).
  std::size_t instances = 1;
  std::size_t pipeline_depth = 1;

  /// Bidder-side adversaries (FuzzBounds::p_bidder_adversary).
  struct BidderAdversary {
    BidderId bidder = 0;
    std::string behaviour;  ///< name in FuzzBounds::bidder_behaviours
  };
  std::vector<BidderAdversary> bidder_adversaries;
  bool bid_replay = false;   ///< client injects every bid frame twice
  bool bid_reorder = false;  ///< client walks providers in reverse order

  /// In-flight WAL corruption (FuzzBounds::p_wal_corrupt): wrap amnesia
  /// nodes' storage in store::FaultyStorage with these knobs.
  bool wal_corrupt = false;
  std::uint64_t wal_fault_seed = 0;
  double wal_sync_drop = 0.0;
  double wal_torn = 0.0;
  double wal_flip = 0.0;

  /// Plan degradations the generator applied to keep the case valid (e.g.
  /// amnesia → recover in service mode). Replay tooling must surface these —
  /// a shard log that silently diverges from the emitted scenario is a
  /// debugging trap (ISSUE 10 satellite).
  std::vector<std::string> degradations;
};

class PlanFuzzer {
 public:
  PlanFuzzer(FuzzBounds bounds, std::uint64_t seed);

  /// The next case in the stream.
  FuzzCase next();

  /// The case at `index` of this fuzzer's stream, independent of the
  /// current position (replays a reported case without regenerating its
  /// predecessors' contents — only their seeds are drawn, one u64 each).
  FuzzCase nth(std::uint64_t index) const;

  const FuzzBounds& bounds() const { return bounds_; }

 private:
  FuzzCase generate(std::uint64_t index, std::uint64_t case_seed) const;

  FuzzBounds bounds_;
  std::uint64_t seed_;
  crypto::Rng stream_;
  std::uint64_t next_index_ = 0;
};

}  // namespace dauct::sim
