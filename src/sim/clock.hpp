// Virtual time for the deterministic distributed simulation.
//
// The paper evaluates makespans on a real testbed (Guifi.net nodes). We
// substitute a *virtual-time* simulation: protocol handlers run for real on
// the host, their CPU time is measured and charged to the owning node's
// virtual clock, and each message is charged a community-network latency.
// Parallel task groups therefore overlap in virtual time exactly as they
// would on distinct machines — reproducible on a single-core CI box.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dauct::sim {

/// Virtual time in nanoseconds since simulation start.
using SimTime = std::int64_t;

inline constexpr SimTime kSimStart = 0;

/// "Never": the open end of a fault window (a crash that never recovers, a
/// link rule active for the whole run).
inline constexpr SimTime kSimForever = std::numeric_limits<SimTime>::max();

constexpr SimTime from_micros(std::int64_t us) { return us * 1'000; }
constexpr SimTime from_millis(std::int64_t ms) { return ms * 1'000'000; }
constexpr double to_seconds(SimTime t) { return static_cast<double>(t) / 1e9; }
constexpr double to_millis(SimTime t) { return static_cast<double>(t) / 1e6; }

/// Render as "12.345ms" for logs/reports.
std::string format_time(SimTime t);

}  // namespace dauct::sim
