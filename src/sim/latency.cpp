#include "sim/latency.hpp"

#include <algorithm>
#include <cmath>

namespace dauct::sim {

LatencyModel LatencyModel::zero() { return LatencyModel{0, 0, 0.0, 0}; }

LatencyModel LatencyModel::lan() {
  return LatencyModel{from_micros(100), 8 /* ≈1 Gbit/s */, 0.1, 4};
}

LatencyModel LatencyModel::community() { return LatencyModel{}; }

SimTime LatencyModel::sample(std::size_t bytes, crypto::Rng& rng) const {
  const SimTime raw = base + per_byte * static_cast<SimTime>(bytes);
  if (jitter <= 0.0 || raw == 0) return raw;
  const double factor = 1.0 + jitter * (2.0 * rng.next_double() - 1.0);
  const SimTime jittered = static_cast<SimTime>(std::llround(raw * factor));
  return std::max<SimTime>(jittered, 0);
}

}  // namespace dauct::sim
