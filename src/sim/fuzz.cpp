#include "sim/fuzz.hpp"

#include <algorithm>
#include <cmath>

#include "serde/ini.hpp"
#include "serde/ini_values.hpp"

namespace dauct::sim {

namespace {

/// Everything a single case draws from: one Rng plus grid-snapping helpers.
/// All sampled scalars land on coarse grids (microseconds, 1e-4 probability
/// steps) so emitted .scn text is short and the minimizer's scalar-shrinking
/// steps move through the same value space the generator samples from.
struct Sampler {
  crypto::Rng rng;

  explicit Sampler(std::uint64_t seed) : rng(seed) {}

  bool coin(double p) { return rng.next_double() < p; }

  /// Uniform in [lo, hi] (inclusive). Requires lo <= hi.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + rng.next_below(hi - lo + 1);
  }

  /// Uniform probability in (0, max] on a 1e-4 grid; 0 when max rounds to
  /// nothing (the caller treats that effect as unavailable).
  double rate(double max) {
    const std::uint64_t steps = static_cast<std::uint64_t>(std::llround(max * 1e4));
    if (steps == 0) return 0.0;
    return static_cast<double>(1 + rng.next_below(steps)) * 1e-4;
  }

  /// Uniform time in [0, max] on a microsecond grid.
  SimTime time_to(SimTime max) {
    if (max <= 0) return 0;
    return static_cast<SimTime>(
               rng.next_below(static_cast<std::uint64_t>(max / 1000) + 1)) *
           1000;
  }

  /// Uniform time in (lo, hi] on a microsecond grid; requires lo < hi.
  SimTime time_after(SimTime lo, SimTime hi) {
    const std::uint64_t slots = static_cast<std::uint64_t>((hi - lo) / 1000);
    if (slots == 0) return hi;
    return lo + static_cast<SimTime>(1 + rng.next_below(slots)) * 1000;
  }

  /// Remove and return a uniformly chosen element of `pool`.
  NodeId draw(std::vector<NodeId>& pool) {
    const std::size_t i =
        static_cast<std::size_t>(rng.next_below(pool.size()));
    const NodeId picked = pool[i];
    pool[i] = pool.back();
    pool.pop_back();
    return picked;
  }
};

std::vector<std::string> split_words(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    std::size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    std::string word = s.substr(start, comma - start);
    const auto a = word.find_first_not_of(" \t");
    if (a == std::string::npos) {
      word.clear();
    } else {
      const auto b = word.find_last_not_of(" \t");
      word = word.substr(a, b - a + 1);
    }
    if (!word.empty()) out.push_back(std::move(word));
    start = comma + 1;
  }
  return out;
}

std::string line_err(std::size_t line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

}  // namespace

FuzzBoundsParse parse_fuzz_bounds(std::string_view text) {
  FuzzBoundsParse out;
  const serde::IniResult ini = serde::parse_ini(text);
  if (!ini.ok()) {
    out.error = ini.error;
    return out;
  }
  FuzzBounds b;
  bool latencies_set = false, strategies_set = false, bidders_set = false;
  for (const serde::IniSection& sec : ini.doc->sections) {
    if (sec.name.empty() && sec.entries.empty()) continue;
    const bool shape = sec.name == "shape";
    const bool faults = sec.name == "faults";
    const bool knobs = sec.name == "knobs";
    if (!shape && !faults && !knobs) {
      out.error = line_err(sec.line, "unknown section [" + sec.name + "]");
      return out;
    }
    for (const serde::IniKeyValue& kv : sec.entries) {
      // One flat dispatch with per-key section checks beats three near-copies
      // of the same loop; the grammar is small enough to read linearly.
      const auto u64 = [&](std::size_t& field) -> bool {
        const auto v = serde::parse_u64(kv.value);
        if (!v) return false;
        field = static_cast<std::size_t>(*v);
        return true;
      };
      const auto prob = [&](double& field) -> bool {
        const auto v = serde::parse_probability(kv.value);
        if (!v) return false;
        field = *v;
        return true;
      };
      const auto time = [&](SimTime& field) -> bool {
        const auto v = serde::parse_time_ms(kv.value);
        if (!v) return false;
        field = *v;
        return true;
      };
      bool good = true;
      if (shape && kv.key == "min_users") good = u64(b.min_users);
      else if (shape && kv.key == "max_users") good = u64(b.max_users);
      else if (shape && kv.key == "min_providers") good = u64(b.min_providers);
      else if (shape && kv.key == "max_providers") good = u64(b.max_providers);
      else if (shape && kv.key == "latencies") {
        b.latencies = split_words(kv.value);
        latencies_set = true;
      } else if (shape && kv.key == "max_events") {
        const auto v = serde::parse_u64(kv.value);
        good = v.has_value() && *v > 0;
        if (good) b.max_events = *v;
      } else if (faults && kv.key == "max_link_rules") good = u64(b.max_link_rules);
      else if (faults && kv.key == "max_drop") good = prob(b.max_drop);
      else if (faults && kv.key == "max_duplicate") good = prob(b.max_duplicate);
      else if (faults && kv.key == "max_delay") good = time(b.max_delay);
      else if (faults && kv.key == "max_jitter") good = time(b.max_jitter);
      else if (faults && kv.key == "max_cuts") good = u64(b.max_cuts);
      else if (faults && kv.key == "max_partitions") good = u64(b.max_partitions);
      else if (faults && kv.key == "max_crashes") good = u64(b.max_crashes);
      else if (faults && kv.key == "allow_crash_recover") {
        const auto v = serde::parse_bool_word(kv.value);
        good = v.has_value();
        if (good) b.allow_crash_recover = *v;
      } else if (faults && kv.key == "allow_amnesia") {
        const auto v = serde::parse_bool_word(kv.value);
        good = v.has_value();
        if (good) b.allow_amnesia = *v;
      } else if (faults && kv.key == "horizon") good = time(b.horizon);
      else if (shape && kv.key == "max_instances") good = u64(b.max_instances);
      else if (shape && kv.key == "max_pipeline_depth")
        good = u64(b.max_pipeline_depth);
      else if (knobs && kv.key == "p_reliability") good = prob(b.p_reliability);
      else if (knobs && kv.key == "p_wal") good = prob(b.p_wal);
      else if (knobs && kv.key == "p_auth") good = prob(b.p_auth);
      else if (knobs && kv.key == "p_auth_batch") good = prob(b.p_auth_batch);
      else if (knobs && kv.key == "p_auth_adversary") good = prob(b.p_auth_adversary);
      else if (knobs && kv.key == "p_deviation") good = prob(b.p_deviation);
      else if (knobs && kv.key == "p_service") good = prob(b.p_service);
      else if (knobs && kv.key == "p_instance_scope") good = prob(b.p_instance_scope);
      else if (knobs && kv.key == "p_bidder_adversary")
        good = prob(b.p_bidder_adversary);
      else if (knobs && kv.key == "p_wal_corrupt") good = prob(b.p_wal_corrupt);
      else if (knobs && kv.key == "bidder_behaviours") {
        // Like strategies: names are validated downstream by the scenario
        // parser (adversary::bidder_behaviour_by_name); here non-emptiness.
        b.bidder_behaviours = split_words(kv.value);
        bidders_set = true;
      } else if (knobs && kv.key == "strategies") {
        // Names are validated downstream by the scenario parser (the
        // deviation registry lives above this layer); here only non-emptiness.
        b.strategies = split_words(kv.value);
        strategies_set = true;
      } else {
        out.error = line_err(
            kv.line, "unknown key '" + kv.key + "' in [" + sec.name + "]");
        return out;
      }
      if (!good) {
        out.error = line_err(
            kv.line, "malformed value for '" + kv.key + "': " + kv.value);
        return out;
      }
    }
  }
  // Cross-field consistency: a bounds file that can generate nothing (or
  // invalid run shapes) is an error here, not a crash mid-stream.
  if (b.min_users == 0 || b.min_users > b.max_users) {
    out.error = "inconsistent users range [" + std::to_string(b.min_users) +
                ", " + std::to_string(b.max_users) + "]";
    return out;
  }
  if (b.min_providers < 3 || b.min_providers > b.max_providers) {
    out.error = "inconsistent providers range [" +
                std::to_string(b.min_providers) + ", " +
                std::to_string(b.max_providers) + "] (need min >= 3: k >= 1 "
                "requires m > 2k)";
    return out;
  }
  if (latencies_set) {
    if (b.latencies.empty()) {
      out.error = "latencies must name at least one model";
      return out;
    }
    for (const std::string& l : b.latencies) {
      if (l != "zero" && l != "lan" && l != "community") {
        out.error = "unknown latency model '" + l + "'";
        return out;
      }
    }
  }
  if (strategies_set && b.strategies.empty()) {
    out.error = "strategies must name at least one deviation strategy";
    return out;
  }
  if (bidders_set && b.bidder_behaviours.empty()) {
    out.error = "bidder_behaviours must name at least one behaviour";
    return out;
  }
  if (b.horizon <= 0) {
    out.error = "horizon must be positive";
    return out;
  }
  if (b.max_instances < 2) {
    out.error = "max_instances must be >= 2 (a service case multiplexes at "
                "least two auctions; set p_service = 0 to disable)";
    return out;
  }
  if (b.max_pipeline_depth == 0) {
    out.error = "max_pipeline_depth must be positive";
    return out;
  }
  out.bounds = std::move(b);
  return out;
}

PlanFuzzer::PlanFuzzer(FuzzBounds bounds, std::uint64_t seed)
    : bounds_(std::move(bounds)), seed_(seed), stream_(seed) {}

FuzzCase PlanFuzzer::next() {
  const std::uint64_t case_seed = stream_.next_u64();
  return generate(next_index_++, case_seed);
}

FuzzCase PlanFuzzer::nth(std::uint64_t index) const {
  // The stream generator is only ever asked for one u64 per case, so
  // replaying case `index` costs index+1 draws — no case contents are
  // regenerated.
  crypto::Rng stream(seed_);
  std::uint64_t case_seed = 0;
  for (std::uint64_t i = 0; i <= index; ++i) case_seed = stream.next_u64();
  return generate(index, case_seed);
}

FuzzCase PlanFuzzer::generate(std::uint64_t index,
                              std::uint64_t case_seed) const {
  const FuzzBounds& b = bounds_;
  Sampler s(case_seed);
  FuzzCase c;
  c.index = index;
  c.case_seed = case_seed;

  // --- run shape ---
  c.users = static_cast<std::size_t>(s.range(b.min_users, b.max_users));
  c.providers =
      static_cast<std::size_t>(s.range(b.min_providers, b.max_providers));
  // The scenario parser enforces m > 2k; sample k over the full valid range
  // so the fuzzer covers both tight (k = 1) and generous budgets.
  const std::size_t k_max = (c.providers - 1) / 2;
  c.k = static_cast<std::size_t>(s.range(1, k_max));
  c.run_seed = s.rng.next_u64();
  c.latency = b.latencies[s.rng.next_below(b.latencies.size())];
  c.max_events = b.max_events;
  // NodeIds in the deployment: providers 0..m-1, then ONE client node (all
  // users' bids flow through it) — not one node per user.
  const std::size_t n = c.providers + 1;

  // --- link rules ---
  c.faults.seed = s.rng.next_u64();
  // Effects whose bound is zero are unavailable; a rule always gets at least
  // one available effect, so no all-zero no-op clauses are generated (they
  // would only pad minimization).
  std::vector<int> effects;  // 0 drop, 1 duplicate, 2 delay/jitter
  if (std::llround(b.max_drop * 1e4) > 0) effects.push_back(0);
  if (std::llround(b.max_duplicate * 1e4) > 0) effects.push_back(1);
  if (b.max_delay >= 1000 || b.max_jitter >= 1000) effects.push_back(2);
  const std::size_t n_rules =
      effects.empty() ? 0 : s.rng.next_below(b.max_link_rules + 1);
  for (std::size_t i = 0; i < n_rules; ++i) {
    LinkFault f;
    if (s.coin(0.5)) f.from = static_cast<NodeId>(s.rng.next_below(n));
    if (s.coin(0.5)) f.to = static_cast<NodeId>(s.rng.next_below(n));
    f.symmetric = s.coin(0.5);
    // Pick a non-empty subset of the available effects.
    bool any = false;
    while (!any) {
      for (const int e : effects) {
        if (!s.coin(0.5)) continue;
        any = true;
        if (e == 0) f.drop = s.rate(b.max_drop);
        if (e == 1) f.duplicate = s.rate(b.max_duplicate);
        if (e == 2) {
          f.extra_delay = s.time_to(b.max_delay);
          f.jitter = s.time_to(b.max_jitter);
          if (f.extra_delay == 0 && f.jitter == 0) any = f.drop > 0 || f.duplicate > 0;
        }
      }
    }
    // Half the rules are active for the whole run, half in a strict
    // sub-window of the horizon.
    if (s.coin(0.5)) {
      f.active_from = s.time_to(b.horizon - 1000);
      f.active_until = s.time_after(f.active_from, b.horizon);
    }
    c.faults.links.push_back(f);
  }

  // --- cuts ---
  const std::size_t n_cuts = s.rng.next_below(b.max_cuts + 1);
  for (std::size_t i = 0; i < n_cuts && n >= 2; ++i) {
    LinkCut cut;
    cut.a = static_cast<NodeId>(s.rng.next_below(n));
    do {
      cut.b = static_cast<NodeId>(s.rng.next_below(n));
    } while (cut.b == cut.a);
    cut.from = s.time_to(b.horizon - 1000);
    // Healing and permanent cuts are both interesting: a permanent cut of a
    // needed link must end in an explicit ⊥ (timeout / delivery-failed),
    // never a budget blow-up — the round watchdogs and retransmit chains are
    // finite by construction.
    if (s.coin(0.5)) cut.until = s.time_after(cut.from, b.horizon);
    c.faults.cuts.push_back(cut);
  }

  // --- partitions ---
  const std::size_t n_parts = s.rng.next_below(b.max_partitions + 1);
  for (std::size_t i = 0; i < n_parts && n >= 2; ++i) {
    Partition p;
    // A non-empty proper subset: draw a size, then distinct members.
    const std::size_t size = static_cast<std::size_t>(s.range(1, n - 1));
    std::vector<NodeId> pool(n);
    for (std::size_t j = 0; j < n; ++j) pool[j] = static_cast<NodeId>(j);
    for (std::size_t j = 0; j < size; ++j) p.group.push_back(s.draw(pool));
    std::sort(p.group.begin(), p.group.end());
    p.from = s.time_to(b.horizon - 1000);
    if (s.coin(0.5)) p.until = s.time_after(p.from, b.horizon);
    c.faults.partitions.push_back(p);
  }

  // --- k-budgeted adversaries: crashes, wire tampering, deviations ---
  // Crashed, tampered, and deviant providers are drawn from one pool without
  // replacement and their total never exceeds k (file comment in fuzz.hpp).
  std::vector<NodeId> providers(c.providers);
  for (std::size_t j = 0; j < c.providers; ++j)
    providers[j] = static_cast<NodeId>(j);
  std::size_t budget = c.k;

  const std::size_t n_crash =
      s.rng.next_below(std::min(b.max_crashes, budget) + 1);
  for (std::size_t i = 0; i < n_crash; ++i) {
    CrashEvent crash;
    crash.node = s.draw(providers);
    crash.at = s.time_to(b.horizon - 1000);
    if (b.allow_crash_recover && s.coin(0.5))
      crash.recover_at = s.time_after(crash.at, b.horizon);
    c.faults.crashes.push_back(crash);
    --budget;
  }

  // --- reliability layer ---
  c.reliability = s.coin(b.p_reliability);
  if (c.reliability) {
    // The give-up horizon delay·(2^retries − 1) must comfortably exceed the
    // worst latency model's RTT (community: ~5 ms + jitter), or a FAULT-FREE
    // run aborts delivery-failed before the first ack can arrive — the
    // fuzzer's own first 1000-plan run found exactly that with 1 ms × 2
    // retries. Floor: 4 ms × (2^4 − 1) = 60 ms.
    c.retransmit_delay = static_cast<SimTime>(s.range(4, 12)) * 1'000'000;
    c.max_retries = static_cast<std::size_t>(s.range(4, 8));
    c.round_timeout =
        s.coin(0.5) ? 0 : static_cast<SimTime>(s.range(4, 16)) * 1'000'000;
    c.piggyback_acks = s.coin(0.5);
  }

  // --- durability layer ---
  c.wal = s.coin(b.p_wal);
  if (c.wal) {
    // Snapshot cadence sweeps from every-message (1) to rarely (16); the
    // checkpoints must agree at any cadence, so the cadence is fuzzed too.
    c.wal_snapshot_every = static_cast<std::size_t>(s.range(1, 16));
  }
  // Amnesia needs a log to replay and the rejoin sweep to close the gap, so
  // the mode is a post-pass over the recovering crashes once both layer
  // coins are known (crashes are drawn before the layers above).
  if (b.allow_amnesia && c.wal && c.reliability) {
    for (CrashEvent& crash : c.faults.crashes) {
      if (crash.recover_at != kSimForever && s.coin(0.5))
        crash.mode = CrashMode::kAmnesia;
    }
  }

  // --- auth layer + wire adversary ---
  c.auth = s.coin(b.p_auth);
  if (c.auth) {
    c.auth_batch = s.coin(b.p_auth_batch);
    if (budget > 0 && s.coin(b.p_auth_adversary)) {
      c.auth_adversary_node = s.draw(providers);
      c.auth_adversary_mode = s.coin(0.5) ? "forge" : "replay";
      --budget;
    }
  }

  // --- byzantine deviations ---
  if (budget > 0 && !b.strategies.empty() && s.coin(b.p_deviation)) {
    const std::size_t n_dev = static_cast<std::size_t>(s.range(1, budget));
    for (std::size_t i = 0; i < n_dev; ++i) {
      FuzzCase::Deviation d;
      d.node = s.draw(providers);
      d.strategy = b.strategies[s.rng.next_below(b.strategies.size())];
      c.deviations.push_back(d);
    }
  }

  // --- service plane ---
  // New axes only ever *append* draws after the pre-existing ones, so every
  // field drawn above is identical at the same (seed, index) across fuzzer
  // versions that share the draw prefix.
  if (s.coin(b.p_service)) {
    c.instances = static_cast<std::size_t>(s.range(2, b.max_instances));
    c.pipeline_depth = static_cast<std::size_t>(
        s.range(1, std::min(b.max_pipeline_depth, c.instances)));
    // Scenario validation rejects amnesia with [service] (per-node durable
    // state is shared across instances), so degrade those crashes to the
    // plain in-memory recover mode. Record each degradation: replay tooling
    // must print what the generator changed (see FuzzCase::degradations).
    for (CrashEvent& crash : c.faults.crashes) {
      if (crash.mode == CrashMode::kAmnesia) {
        crash.mode = CrashMode::kRecover;
        c.degradations.push_back(
            "amnesia crash on node " + std::to_string(crash.node) +
            " degraded to recover (amnesia is invalid with [service])");
      }
    }

    // --- instance-scoped fault rules ---
    // Confine a coin's worth of rules to one auction instance's topic
    // namespace; the service runtime compiles instance → topic_scope. The
    // faulted instance must then ⊥ (or survive) alone while co-tenant
    // instances sharing the ReliableLink/signer must still match their
    // standalone twins — the per-instance oracle checks exactly that.
    const auto scoped = [&]() -> std::uint64_t {
      return s.rng.next_below(c.instances);
    };
    for (LinkFault& f : c.faults.links)
      if (s.coin(b.p_instance_scope)) f.instance = scoped();
    for (LinkCut& cut : c.faults.cuts)
      if (s.coin(b.p_instance_scope)) cut.instance = scoped();
    for (Partition& p : c.faults.partitions)
      if (s.coin(b.p_instance_scope)) p.instance = scoped();
    for (FuzzCase::Deviation& d : c.deviations)
      if (s.coin(b.p_instance_scope)) d.instance = scoped();
  }

  // --- bidder-side adversaries ---
  // Bidders are not providers: no k budget — however many misbehave, the
  // honest providers' agreement must exclude their bids or ⊥ explicitly.
  if (!b.bidder_behaviours.empty() && s.coin(b.p_bidder_adversary)) {
    std::vector<NodeId> bidder_pool(c.users);
    for (std::size_t j = 0; j < c.users; ++j)
      bidder_pool[j] = static_cast<NodeId>(j);
    const std::size_t n_bad = static_cast<std::size_t>(
        s.range(1, std::min<std::size_t>(3, c.users)));
    for (std::size_t i = 0; i < n_bad; ++i) {
      FuzzCase::BidderAdversary bad;
      bad.bidder = static_cast<BidderId>(s.draw(bidder_pool));
      bad.behaviour =
          b.bidder_behaviours[s.rng.next_below(b.bidder_behaviours.size())];
      c.bidder_adversaries.push_back(bad);
    }
    std::sort(c.bidder_adversaries.begin(), c.bidder_adversaries.end(),
              [](const auto& x, const auto& y) { return x.bidder < y.bidder; });
    c.bid_replay = s.coin(0.3);
    c.bid_reorder = s.coin(0.3);
  }

  // --- in-flight WAL corruption ---
  // Only meaningful when an amnesia crash survived the draws above (service
  // degradation already ran, so the check is deterministic): recovery then
  // replays from a live tail FaultyStorage damaged at the crash instant.
  const bool any_amnesia = std::any_of(
      c.faults.crashes.begin(), c.faults.crashes.end(),
      [](const CrashEvent& cr) { return cr.mode == CrashMode::kAmnesia; });
  if (any_amnesia && s.coin(b.p_wal_corrupt)) {
    c.wal_corrupt = true;
    c.wal_fault_seed = s.rng.next_u64();
    c.wal_sync_drop = s.rate(0.9);
    // torn + flip ≤ 1 by construction: crash() draws one damage mode.
    c.wal_torn = s.rate(0.6);
    c.wal_flip = s.rate(0.4);
  }
  return c;
}

}  // namespace dauct::sim
