#include "sim/fault.hpp"

#include <algorithm>

namespace dauct::sim {

namespace {

bool in_window(SimTime t, SimTime from, SimTime until) {
  return t >= from && t < until;
}

// Compiled instance confinement: an empty scope matches everything, a
// non-empty scope matches only its own topic namespace.
bool in_scope(const std::string& topic_scope, std::string_view topic) {
  return topic_scope.empty() ||
         topic.substr(0, topic_scope.size()) == topic_scope;
}

}  // namespace

bool LinkFault::matches(NodeId f, NodeId t, std::string_view topic,
                        SimTime depart) const {
  if (!in_window(depart, active_from, active_until)) return false;
  if (!in_scope(topic_scope, topic)) {
    return false;  // instance-confined rule, foreign instance's traffic
  }
  const bool forward = (from == kNoNode || from == f) && (to == kNoNode || to == t);
  if (forward) return true;
  if (!symmetric || from == kNoNode || to == kNoNode) return false;
  return from == t && to == f;
}

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed) {}

bool FaultInjector::severed(NodeId from, NodeId to, std::string_view topic,
                            SimTime depart) {
  for (const LinkCut& c : plan_.cuts) {
    if (!in_window(depart, c.from, c.until)) continue;
    if (!in_scope(c.topic_scope, topic)) continue;
    if ((c.a == from && c.b == to) || (c.a == to && c.b == from)) {
      ++stats_.cut_dropped;
      return true;
    }
  }
  for (const Partition& p : plan_.partitions) {
    if (!in_window(depart, p.from, p.until)) continue;
    if (!in_scope(p.topic_scope, topic)) continue;
    const bool from_in = std::find(p.group.begin(), p.group.end(), from) != p.group.end();
    const bool to_in = std::find(p.group.begin(), p.group.end(), to) != p.group.end();
    if (from_in != to_in) {
      ++stats_.partition_dropped;
      return true;
    }
  }
  return false;
}

FaultInjector::SendVerdict FaultInjector::on_send(NodeId from, NodeId to,
                                                  std::string_view topic,
                                                  SimTime depart) {
  SendVerdict v;
  // A down node emits nothing (its handler would not have run on a real
  // crashed machine; the outbox of a handler that straddles the crash time
  // is discarded as of the crash). Unlike wire drops below, the message
  // never departed, so the caller charges no traffic for it.
  if (down_at(from, depart, /*count=*/true)) {
    v.emitted = false;
    v.deliver = false;
    return v;
  }
  if (severed(from, to, topic, depart)) {
    v.deliver = false;
    return v;
  }
  // Stochastic rules: every matching rule applies, in plan order. Rules with
  // zero rates draw nothing, keeping a zero-rate plan bit-identical to no
  // plan (the RNG stream position only matters to *other* fault draws).
  for (const LinkFault& r : plan_.links) {
    if (!r.matches(from, to, topic, depart)) continue;
    if (r.drop > 0 && rng_.next_double() < r.drop) {
      ++stats_.link_dropped;
      v.deliver = false;
      return v;
    }
    SimTime extra = r.extra_delay;
    if (r.jitter > 0) extra += static_cast<SimTime>(rng_.next_below(
        static_cast<std::uint64_t>(r.jitter) + 1));
    v.extra_delay += extra;
    if (r.duplicate > 0 && rng_.next_double() < r.duplicate) {
      v.duplicate = true;
      // The copy trails the original by up to one base-latency-ish window;
      // sampled from the fault stream so it is plan-deterministic.
      v.duplicate_delay = 1 + static_cast<SimTime>(rng_.next_below(from_millis(1)));
    }
  }
  // Stats count *observable* perturbations, once per message, after the
  // whole rule stack has spoken — a later rule dropping the message exits
  // above, so a never-scheduled duplicate or delay is never reported.
  if (v.extra_delay > 0) ++stats_.delayed;
  if (v.duplicate) ++stats_.duplicated;
  return v;
}

bool FaultInjector::down_at(NodeId node, SimTime at, bool count) {
  for (const CrashEvent& c : plan_.crashes) {
    if (c.node == node && in_window(at, c.at, c.recover_at)) {
      if (count) ++stats_.crash_dropped;
      return true;
    }
  }
  return false;
}

SimTime FaultInjector::recovery_time(NodeId node, SimTime at) {
  // Latest recovery among the windows covering `at`: overlapping windows are
  // honoured (the node is up only once *every* covering window has closed);
  // the scheduler re-checks down_at at the returned time anyway.
  SimTime recover = kSimStart;
  for (const CrashEvent& c : plan_.crashes) {
    if (c.node == node && in_window(at, c.at, c.recover_at)) {
      recover = std::max(recover, c.recover_at);
    }
  }
  return recover;
}

}  // namespace dauct::sim
