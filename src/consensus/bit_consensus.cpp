#include "consensus/bit_consensus.hpp"

namespace dauct::consensus {

using blocks::topic_join;

BitConsensus::BitConsensus(blocks::Endpoint& endpoint, std::string topic_prefix)
    : endpoint_(endpoint),
      vote_topic_(topic_join(topic_prefix, "v")),
      echo_topic_(topic_join(topic_prefix, "e")),
      votes_(endpoint.num_providers()),
      echoes_(endpoint.num_providers()) {}

void BitConsensus::start(bool input) {
  endpoint_.broadcast(vote_topic_, Bytes{static_cast<std::uint8_t>(input ? 1 : 0)});
}

void BitConsensus::abort(AbortReason reason, std::string detail) {
  if (!result_) result_ = Outcome<bool>(Bottom{reason, std::move(detail)});
}

bool BitConsensus::handle(const net::Message& msg) {
  if (msg.topic == vote_topic_) {
    if (result_) return true;
    if (msg.payload.size() != 1 || msg.payload[0] > 1) {
      abort(AbortReason::kProtocolViolation, "malformed vote");
      return true;
    }
    if (!votes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate vote");
      return true;
    }
    maybe_echo();
    maybe_decide();
    return true;
  }
  if (msg.topic == echo_topic_) {
    if (result_) return true;
    if (msg.payload.size() != endpoint_.num_providers()) {
      abort(AbortReason::kProtocolViolation, "malformed echo");
      return true;
    }
    if (!echoes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate echo");
      return true;
    }
    maybe_decide();
    return true;
  }
  return false;
}

void BitConsensus::maybe_echo() {
  if (echoed_ || !votes_.complete()) return;
  echoed_ = true;
  Bytes vector(endpoint_.num_providers());
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    vector[j] = votes_.payloads()[j][0];
  }
  endpoint_.broadcast(echo_topic_, std::move(vector));
}

void BitConsensus::maybe_decide() {
  if (result_ || !echoes_.complete() || !echoed_) return;

  // Cross-validate: every echo must report the identical vote vector.
  const SharedBytes& reference = echoes_.payloads()[0];
  for (NodeId j = 1; j < endpoint_.num_providers(); ++j) {
    if (echoes_.payloads()[j] != reference) {
      abort(AbortReason::kEquivocationDetected,
            "echo mismatch at provider " + std::to_string(j));
      return;
    }
  }

  // Majority of the agreed vote vector; ties go to provider 0's bit.
  std::size_t ones = 0;
  for (std::uint8_t b : reference.view()) ones += b;
  const std::size_t m = reference.size();
  bool decision;
  if (ones * 2 > m) {
    decision = true;
  } else if (ones * 2 < m) {
    decision = false;
  } else {
    decision = reference[0] != 0;
  }
  result_ = Outcome<bool>(decision);
}

}  // namespace dauct::consensus
