// Rational consensus on a single bit (Afek et al., PODC'14 building block).
//
// The bid agreement feeds each bit of the serialized bids into one instance
// of rational consensus. The protocol implemented here is the cross-
// validation variant sufficient for the two properties the paper imports
// (§4.1, Property 1 discussion):
//
//   round 1 (vote): every provider broadcasts its input bit;
//   round 2 (echo): upon holding all m votes, every provider broadcasts the
//                   full vote vector it received;
//   decide:         upon holding all m echoes — if any two echoes disagree on
//                   any sender's vote, output ⊥ (equivocation detected);
//                   otherwise output the majority bit of the agreed vote
//                   vector (ties broken by the lowest-id provider's bit).
//
// Guarantees under m > 2k:
//  (a) honest execution → all providers output the same bit, which was input
//      by some provider (validity/agreement);
//  (b) a coalition of ≤ k providers cannot flip the decision when all
//      non-coalition inputs agree (the m−k honest votes are a majority), and
//      any vote equivocation is detected by echo comparison → ⊥, which the
//      coalition dis-prefers (solution preference).
#pragma once

#include "blocks/block.hpp"
#include "common/outcome.hpp"

namespace dauct::consensus {

class BitConsensus {
 public:
  /// `topic_prefix` namespaces this instance's messages.
  BitConsensus(blocks::Endpoint& endpoint, std::string topic_prefix);

  /// Begin: broadcast the vote for `input`.
  void start(bool input);

  /// Feed a message; returns true if it belonged to this instance.
  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  const std::optional<Outcome<bool>>& result() const { return result_; }

 private:
  void maybe_echo();
  void maybe_decide();
  void abort(AbortReason reason, std::string detail);

  blocks::Endpoint& endpoint_;
  net::Topic vote_topic_;
  net::Topic echo_topic_;

  blocks::RoundCollector votes_;
  blocks::RoundCollector echoes_;
  bool echoed_ = false;
  std::optional<Outcome<bool>> result_;
};

}  // namespace dauct::consensus
