#include "consensus/stream_consensus.hpp"

#include "serde/bitstream.hpp"

namespace dauct::consensus {

using blocks::topic_join;

StreamConsensus::StreamConsensus(blocks::Endpoint& endpoint, std::string topic_prefix,
                                 std::size_t num_bits)
    : endpoint_(endpoint),
      vote_topic_(topic_join(topic_prefix, "v")),
      echo_topic_(topic_join(topic_prefix, "e")),
      num_bits_(num_bits),
      packed_len_((num_bits + 7) / 8),
      votes_(endpoint.num_providers()),
      echoes_(endpoint.num_providers()) {}

void StreamConsensus::start(const std::vector<bool>& input) {
  std::vector<bool> bits = input;
  bits.resize(num_bits_, false);
  endpoint_.broadcast(vote_topic_, serde::from_bits(bits));
}

void StreamConsensus::abort(AbortReason reason, std::string detail) {
  if (!result_) result_ = Outcome<std::vector<bool>>(Bottom{reason, std::move(detail)});
}

bool StreamConsensus::handle(const net::Message& msg) {
  if (msg.topic == vote_topic_) {
    if (result_) return true;
    if (msg.payload.size() != packed_len_) {
      abort(AbortReason::kProtocolViolation, "malformed stream vote");
      return true;
    }
    if (!votes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate stream vote");
      return true;
    }
    maybe_echo();
    maybe_decide();
    return true;
  }
  if (msg.topic == echo_topic_) {
    if (result_) return true;
    if (msg.payload.size() != packed_len_ * endpoint_.num_providers()) {
      abort(AbortReason::kProtocolViolation, "malformed stream echo");
      return true;
    }
    if (!echoes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate stream echo");
      return true;
    }
    maybe_decide();
    return true;
  }
  return false;
}

void StreamConsensus::maybe_echo() {
  if (echoed_ || !votes_.complete()) return;
  echoed_ = true;
  // Echo = concatenation of every provider's packed vote, in id order.
  Bytes echo;
  echo.reserve(packed_len_ * endpoint_.num_providers());
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    append(echo, votes_.payloads()[j]);
  }
  endpoint_.broadcast(echo_topic_, std::move(echo));
}

void StreamConsensus::maybe_decide() {
  if (result_ || !echoes_.complete()) return;

  const SharedBytes& reference = echoes_.payloads()[0];
  for (NodeId j = 1; j < endpoint_.num_providers(); ++j) {
    if (echoes_.payloads()[j] != reference) {
      abort(AbortReason::kEquivocationDetected,
            "stream echo mismatch at provider " + std::to_string(j));
      return;
    }
  }

  // Per-bit majority over the agreed vote matrix (row j = provider j's vote).
  const std::size_t m = endpoint_.num_providers();
  std::vector<bool> decided(num_bits_);
  for (std::size_t b = 0; b < num_bits_; ++b) {
    const std::size_t byte = b / 8;
    const std::uint8_t mask = static_cast<std::uint8_t>(1u << (7 - b % 8));
    std::size_t ones = 0;
    for (std::size_t j = 0; j < m; ++j) {
      if (reference[j * packed_len_ + byte] & mask) ++ones;
    }
    bool bit;
    if (ones * 2 > m) {
      bit = true;
    } else if (ones * 2 < m) {
      bit = false;
    } else {
      bit = (reference[byte] & mask) != 0;  // tie: provider 0's bit
    }
    decided[b] = bit;
  }
  result_ = Outcome<std::vector<bool>>(std::move(decided));
}

}  // namespace dauct::consensus
