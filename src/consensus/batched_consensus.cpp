#include "consensus/batched_consensus.hpp"

#include <map>

#include "crypto/sha256.hpp"
#include "serde/codec.hpp"

namespace dauct::consensus {

using blocks::topic_join;

namespace {

Bytes encode_slots(const std::vector<Bytes>& slots) {
  serde::Writer w;
  w.varint(slots.size());
  for (const Bytes& s : slots) w.bytes(s);
  return w.take();
}

std::optional<std::vector<Bytes>> decode_slots(BytesView data, std::size_t expected) {
  serde::Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n != expected) return std::nullopt;
  std::vector<Bytes> out;
  out.reserve(expected);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.bytes());
  if (!r.at_end()) return std::nullopt;
  return out;
}

}  // namespace

BatchedConsensus::BatchedConsensus(blocks::Endpoint& endpoint, std::string topic_prefix,
                                   std::size_t num_slots)
    : endpoint_(endpoint),
      vote_topic_(topic_join(topic_prefix, "v")),
      echo_topic_(topic_join(topic_prefix, "e")),
      num_slots_(num_slots),
      votes_(endpoint.num_providers()),
      echoes_(endpoint.num_providers()) {}

void BatchedConsensus::start(const std::vector<Bytes>& input) {
  std::vector<Bytes> slots = input;
  slots.resize(num_slots_);
  endpoint_.broadcast(vote_topic_, encode_slots(slots));
}

void BatchedConsensus::abort(AbortReason reason, std::string detail) {
  if (!result_) result_ = Outcome<std::vector<Bytes>>(Bottom{reason, std::move(detail)});
}

bool BatchedConsensus::handle(const net::Message& msg) {
  if (msg.topic == vote_topic_) {
    if (result_) return true;
    if (!decode_slots(msg.payload, num_slots_)) {
      abort(AbortReason::kProtocolViolation, "malformed batched vote");
      return true;
    }
    if (!votes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate batched vote");
      return true;
    }
    // Take the digest from the message cache now: the echo round then builds
    // from stored 32-byte digests instead of re-hashing every vote payload.
    if (vote_digests_.size() < endpoint_.num_providers()) {
      vote_digests_.resize(endpoint_.num_providers());
    }
    vote_digests_[msg.from] = msg.payload_digest();
    maybe_echo();
    maybe_decide();
    return true;
  }
  if (msg.topic == echo_topic_) {
    if (result_) return true;
    if (msg.payload.size() != 32 * endpoint_.num_providers()) {
      abort(AbortReason::kProtocolViolation, "malformed batched echo");
      return true;
    }
    if (!echoes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate batched echo");
      return true;
    }
    maybe_decide();
    return true;
  }
  return false;
}

void BatchedConsensus::maybe_echo() {
  if (echoed_ || !votes_.complete()) return;
  echoed_ = true;
  // Echo = digest of every provider's raw vote payload, in id order.
  Bytes echo;
  echo.reserve(32 * endpoint_.num_providers());
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    const crypto::Digest& d = vote_digests_[j];
    append(echo, BytesView(d.data(), d.size()));
  }
  endpoint_.broadcast(echo_topic_, echo);
}

void BatchedConsensus::maybe_decide() {
  if (result_ || !echoes_.complete() || !votes_.complete()) return;

  const Bytes& reference = echoes_.payloads()[0];
  for (NodeId j = 1; j < endpoint_.num_providers(); ++j) {
    if (echoes_.payloads()[j] != reference) {
      abort(AbortReason::kEquivocationDetected,
            "batched echo mismatch at provider " + std::to_string(j));
      return;
    }
  }

  // All received identical vote sets. Decide per slot by strict majority of
  // exact values; fallback = empty bytes (neutral) when no majority.
  const std::size_t m = endpoint_.num_providers();
  std::vector<std::vector<Bytes>> votes_by_sender;
  votes_by_sender.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    auto slots = decode_slots(votes_.payloads()[j], num_slots_);
    if (!slots) {
      abort(AbortReason::kProtocolViolation, "undecodable agreed vote");
      return;
    }
    votes_by_sender.push_back(std::move(*slots));
  }

  std::vector<Bytes> decided(num_slots_);
  for (std::size_t s = 0; s < num_slots_; ++s) {
    std::map<Bytes, std::size_t> counts;
    for (std::size_t j = 0; j < m; ++j) {
      ++counts[votes_by_sender[j][s]];
    }
    for (const auto& [value, count] : counts) {
      if (count * 2 > m) {
        decided[s] = value;
        break;
      }
    }
    // No strict majority → decided[s] stays empty (neutral fallback).
  }
  result_ = Outcome<std::vector<Bytes>>(std::move(decided));
}

}  // namespace dauct::consensus
