#include "consensus/batched_consensus.hpp"

#include "crypto/sha256.hpp"
#include "serde/codec.hpp"

namespace dauct::consensus {

using blocks::topic_join;

namespace {

Bytes encode_slots(const std::vector<Bytes>& slots) {
  serde::Writer w;
  w.varint(slots.size());
  for (const Bytes& s : slots) w.bytes(s);
  return w.take();
}

/// Zero-copy decode: views into `data`. Valid while the backing buffer lives —
/// callers pass views into SharedBytes payloads held by the vote collector.
std::optional<std::vector<BytesView>> decode_slot_views(BytesView data,
                                                        std::size_t expected) {
  serde::Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n != expected) return std::nullopt;
  std::vector<BytesView> out;
  out.reserve(expected);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.bytes_view());
  if (!r.at_end()) return std::nullopt;
  return out;
}

}  // namespace

BatchedConsensus::BatchedConsensus(blocks::Endpoint& endpoint, std::string topic_prefix,
                                   std::size_t num_slots)
    : endpoint_(endpoint),
      vote_topic_(topic_join(topic_prefix, "v")),
      echo_topic_(topic_join(topic_prefix, "e")),
      num_slots_(num_slots),
      votes_(endpoint.num_providers()),
      echoes_(endpoint.num_providers()) {}

void BatchedConsensus::start(const std::vector<Bytes>& input) {
  std::vector<Bytes> slots = input;
  slots.resize(num_slots_);
  endpoint_.broadcast(vote_topic_, encode_slots(slots));
  votes_.arm(endpoint_, vote_topic_);
}

void BatchedConsensus::abort(AbortReason reason, std::string detail) {
  if (!result_) result_ = Outcome<std::vector<Bytes>>(Bottom{reason, std::move(detail)});
  votes_.cancel();
  echoes_.cancel();
}

bool BatchedConsensus::handle(const net::Message& msg) {
  if (msg.topic == vote_topic_) {
    if (result_) return true;
    if (!decode_slot_views(msg.payload.view(), num_slots_)) {
      abort(AbortReason::kProtocolViolation, "malformed batched vote");
      return true;
    }
    if (!votes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate batched vote");
      return true;
    }
    // Take the digest from the message cache now: the echo round then builds
    // from stored 32-byte digests instead of re-hashing every vote payload.
    if (vote_digests_.size() < endpoint_.num_providers()) {
      vote_digests_.resize(endpoint_.num_providers());
    }
    vote_digests_[msg.from] = msg.payload_digest();
    maybe_echo();
    maybe_decide();
    return true;
  }
  if (msg.topic == echo_topic_) {
    if (result_) return true;
    if (msg.payload.size() != 32 * endpoint_.num_providers()) {
      abort(AbortReason::kProtocolViolation, "malformed batched echo");
      return true;
    }
    if (!echoes_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate batched echo");
      return true;
    }
    maybe_decide();
    return true;
  }
  return false;
}

void BatchedConsensus::maybe_echo() {
  if (echoed_ || !votes_.complete()) return;
  echoed_ = true;
  // Echo = digest of every provider's raw vote payload, in id order.
  Bytes echo;
  echo.reserve(32 * endpoint_.num_providers());
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    const crypto::Digest& d = vote_digests_[j];
    append(echo, BytesView(d.data(), d.size()));
  }
  endpoint_.broadcast(echo_topic_, std::move(echo));
  echoes_.arm(endpoint_, echo_topic_);
}

void BatchedConsensus::maybe_decide() {
  if (result_ || !echoes_.complete() || !votes_.complete()) return;

  const SharedBytes& reference = echoes_.payloads()[0];
  for (NodeId j = 1; j < endpoint_.num_providers(); ++j) {
    if (echoes_.payloads()[j] != reference) {
      abort(AbortReason::kEquivocationDetected,
            "batched echo mismatch at provider " + std::to_string(j));
      return;
    }
  }

  // All received identical vote sets. Decide per slot by strict majority of
  // exact values; fallback = empty bytes (neutral) when no majority. The
  // vote payloads stay in the collector's shared buffers, so the per-sender
  // slot vectors are views, not copies.
  const std::size_t m = endpoint_.num_providers();
  std::vector<std::vector<BytesView>> votes_by_sender;
  votes_by_sender.reserve(m);
  for (NodeId j = 0; j < m; ++j) {
    auto slots = decode_slot_views(votes_.payloads()[j].view(), num_slots_);
    if (!slots) {
      abort(AbortReason::kProtocolViolation, "undecodable agreed vote");
      return;
    }
    votes_by_sender.push_back(std::move(*slots));
  }

  // Majority per slot, grouped by a cheap 64-bit slot digest: raw bytes are
  // only compared when digests agree (confirming a group member) — no
  // ordered-map key compares, no per-slot-value allocations.
  struct Candidate {
    std::uint64_t digest;
    BytesView value;
    std::size_t count;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(m);
  std::vector<std::uint64_t> slot_digests(m);

  std::vector<Bytes> decided(num_slots_);
  for (std::size_t s = 0; s < num_slots_; ++s) {
    candidates.clear();
    for (std::size_t j = 0; j < m; ++j) {
      slot_digests[j] = hash64(votes_by_sender[j][s]);
    }
    for (std::size_t j = 0; j < m; ++j) {
      const BytesView v = votes_by_sender[j][s];
      bool grouped = false;
      for (Candidate& c : candidates) {
        if (c.digest == slot_digests[j] && c.value.size() == v.size() &&
            std::equal(v.begin(), v.end(), c.value.begin())) {
          ++c.count;
          grouped = true;
          break;
        }
      }
      if (!grouped) candidates.push_back(Candidate{slot_digests[j], v, 1});
    }
    for (const Candidate& c : candidates) {
      if (c.count * 2 > m) {
        decided[s].assign(c.value.begin(), c.value.end());
        break;
      }
    }
    // No strict majority → decided[s] stays empty (neutral fallback).
  }
  result_ = Outcome<std::vector<Bytes>>(std::move(decided));
}

}  // namespace dauct::consensus
