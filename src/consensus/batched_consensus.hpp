// Value-level rational consensus over a vector of opaque slots.
//
// The production-efficient bid agreement mode: instead of per-bit instances,
// each provider votes its whole slot vector (one message), and the echo round
// carries a SHA-256 digest per sender's vote — constant-size echoes
// regardless of slot count. Decision per slot: the majority *exact value*
// among the m agreed votes, or a fallback (empty bytes → neutral bid at the
// bid-agreement layer) when no strict majority exists.
//
// Same guarantees as the bitwise construction under m > 2k: unanimous honest
// slots win the majority; vote equivocation makes honest digests diverge → ⊥.
#pragma once

#include <vector>

#include "blocks/block.hpp"
#include "common/outcome.hpp"
#include "crypto/sha256.hpp"

namespace dauct::consensus {

class BatchedConsensus {
 public:
  BatchedConsensus(blocks::Endpoint& endpoint, std::string topic_prefix,
                   std::size_t num_slots);

  /// `input[s]` is this provider's value for slot s.
  void start(const std::vector<Bytes>& input);
  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  const std::optional<Outcome<std::vector<Bytes>>>& result() const { return result_; }

 private:
  void maybe_echo();
  void maybe_decide();
  void abort(AbortReason reason, std::string detail);

  blocks::Endpoint& endpoint_;
  net::Topic vote_topic_;
  net::Topic echo_topic_;
  std::size_t num_slots_;

  blocks::RoundCollector votes_;
  blocks::RoundCollector echoes_;
  std::vector<crypto::Digest> vote_digests_;  ///< by sender, from the msg cache
  bool echoed_ = false;
  std::optional<Outcome<std::vector<Bytes>>> result_;
};

}  // namespace dauct::consensus
