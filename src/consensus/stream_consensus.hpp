// Rational consensus over a bit *stream*, physically batched.
//
// Semantically this is L parallel instances of BitConsensus — exactly the
// paper's construction ("generates a stream of bits … and inputs each bit to
// a rational consensus instance"). Physically, the L votes of one provider
// travel in a single message (and likewise the L echo vectors), because the
// per-instance messages would otherwise dominate the experiment; the
// decision rule is still applied independently per bit position.
//
// If any position detects echo inconsistency, the whole stream outputs ⊥
// (the paper: "if some instance outputs ⊥, then j outputs ⊥").
#pragma once

#include <vector>

#include "blocks/block.hpp"
#include "common/outcome.hpp"

namespace dauct::consensus {

class StreamConsensus {
 public:
  /// Agrees on a stream of `num_bits` bits.
  StreamConsensus(blocks::Endpoint& endpoint, std::string topic_prefix,
                  std::size_t num_bits);

  void start(const std::vector<bool>& input);
  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  const std::optional<Outcome<std::vector<bool>>>& result() const { return result_; }

 private:
  void maybe_echo();
  void maybe_decide();
  void abort(AbortReason reason, std::string detail);

  blocks::Endpoint& endpoint_;
  net::Topic vote_topic_;
  net::Topic echo_topic_;
  std::size_t num_bits_;
  std::size_t packed_len_;

  blocks::RoundCollector votes_;
  blocks::RoundCollector echoes_;
  bool echoed_ = false;
  std::optional<Outcome<std::vector<bool>>> result_;
};

}  // namespace dauct::consensus
