// Fixed-point money / valuation type.
//
// All currency amounts, unit valuations, bandwidth demands and capacities are
// represented in fixed point (micro-units in a signed 64-bit integer). The
// distributed auctioneer replicates the allocation algorithm on every provider
// and cross-validates results byte-for-byte; floating point would make the
// replicas diverge (different FPU rounding across platforms / optimization
// levels) and turn honest executions into false ⊥ aborts. Fixed point makes
// replicated computation bit-identical.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace dauct {

/// Fixed-point quantity with 6 decimal places (micro-units).
///
/// Used for both currency (bids, payments) and divisible resource amounts
/// (bandwidth demands and capacities). Arithmetic is exact on integers;
/// multiplication/division of two quantities use 128-bit intermediates and
/// truncate toward zero, deterministically on all platforms.
class Money {
 public:
  static constexpr std::int64_t kScale = 1'000'000;  ///< micro-units per unit

  constexpr Money() = default;

  /// From raw micro-units.
  static constexpr Money from_micros(std::int64_t micros) {
    Money q;
    q.micros_ = micros;
    return q;
  }

  /// From whole units.
  static constexpr Money from_units(std::int64_t units) {
    return from_micros(units * kScale);
  }

  /// From a double (rounded to nearest micro-unit). Intended for workload
  /// generation and human input only; protocol code stays in fixed point.
  static Money from_double(double value);

  constexpr std::int64_t micros() const { return micros_; }
  double to_double() const { return static_cast<double>(micros_) / kScale; }

  constexpr bool is_zero() const { return micros_ == 0; }
  constexpr bool is_negative() const { return micros_ < 0; }

  /// Product of a quantity and a unit price: (this units) * (price per unit).
  /// Exact via 128-bit intermediate, truncated toward zero.
  Money mul(Money unit_price) const;

  /// Ratio of two quantities as fixed point, truncated toward zero.
  /// Dividing by zero is a programming error (asserted).
  Money div(Money divisor) const;

  constexpr Money operator+(Money o) const { return from_micros(micros_ + o.micros_); }
  constexpr Money operator-(Money o) const { return from_micros(micros_ - o.micros_); }
  constexpr Money operator-() const { return from_micros(-micros_); }
  Money& operator+=(Money o) {
    micros_ += o.micros_;
    return *this;
  }
  Money& operator-=(Money o) {
    micros_ -= o.micros_;
    return *this;
  }
  constexpr auto operator<=>(const Money&) const = default;

  /// Render as a decimal string, e.g. "1.250000".
  std::string str() const;

 private:
  std::int64_t micros_ = 0;
};

inline constexpr Money kZeroMoney = Money{};

/// Smaller / larger of two quantities.
constexpr Money min(Money a, Money b) { return a < b ? a : b; }
constexpr Money max(Money a, Money b) { return a < b ? b : a; }

}  // namespace dauct
