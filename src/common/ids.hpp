// Strongly-typed identifiers used throughout the distributed auctioneer.
//
// NodeId identifies a provider (a protocol participant). BidderId identifies a
// user submitting bids. TaskId identifies a node of the allocator task graph.
// All are small integers; strong typedefs prevent accidental mixing.
#pragma once

#include <cstdint>
#include <functional>

namespace dauct {

/// Identifier of a provider node participating in the auctioneer simulation.
/// Providers are numbered 0..m-1; the identifier order is known to everyone
/// (the paper assumes unique identifiers known to every provider).
using NodeId = std::uint32_t;

/// Identifier of a bidder (user). Bidders are numbered 0..n-1.
using BidderId = std::uint32_t;

/// Identifier of a task in the parallel-allocator task graph.
using TaskId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = static_cast<NodeId>(-1);

}  // namespace dauct
