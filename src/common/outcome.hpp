// Outcome<T>: a protocol-block result that is either a value or ⊥ (Bottom).
//
// The paper's blocks output "a valid value or the special value ⊥" which
// signals abortion of the whole auctioneer simulation. Bottom carries a reason
// for diagnostics; reasons never influence protocol decisions (correct
// providers treat every ⊥ identically).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace dauct {

/// Why a protocol block aborted. Diagnostic only.
enum class AbortReason {
  kNone,
  kEquivocationDetected,   ///< conflicting copies of the same broadcast
  kInvalidCommitment,      ///< reveal does not match commitment / out of range
  kInputMismatch,          ///< providers ran with different input vectors
  kTransferMismatch,       ///< data-transfer sources disagreed
  kOutputMismatch,         ///< providers produced different final results
  kConsensusFailure,       ///< a rational-consensus instance returned ⊥
  kProtocolViolation,      ///< malformed message / impossible transition
  kTimeout,                ///< runtime gave up waiting (test harness only)
  kCascaded,               ///< an earlier block aborted
  kDeliveryFailed,         ///< reliability layer exhausted its retransmits
  kEventBudgetExceeded,    ///< scheduler event budget exhausted (runaway run)
};

/// Human-readable reason name (for logs and test failure messages).
constexpr const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone: return "none";
    case AbortReason::kEquivocationDetected: return "equivocation-detected";
    case AbortReason::kInvalidCommitment: return "invalid-commitment";
    case AbortReason::kInputMismatch: return "input-mismatch";
    case AbortReason::kTransferMismatch: return "transfer-mismatch";
    case AbortReason::kOutputMismatch: return "output-mismatch";
    case AbortReason::kConsensusFailure: return "consensus-failure";
    case AbortReason::kProtocolViolation: return "protocol-violation";
    case AbortReason::kTimeout: return "timeout";
    case AbortReason::kCascaded: return "cascaded";
    case AbortReason::kDeliveryFailed: return "delivery-failed";
    case AbortReason::kEventBudgetExceeded: return "event-budget-exceeded";
  }
  return "unknown";
}

/// ⊥: the abort outcome of a block or of the whole simulation.
struct Bottom {
  AbortReason reason = AbortReason::kNone;
  std::string detail;  ///< free-form diagnostic (who/what diverged)
};

/// Either a value of type T or ⊥.
template <typename T>
class Outcome {
 public:
  Outcome(T value) : v_(std::move(value)) {}                // NOLINT implicit
  Outcome(Bottom bottom) : v_(std::move(bottom)) {}         // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }
  bool is_bottom() const { return !ok(); }

  const T& value() const { return std::get<T>(v_); }
  T& value() { return std::get<T>(v_); }
  const Bottom& bottom() const { return std::get<Bottom>(v_); }

  /// The value if ok, otherwise std::nullopt.
  std::optional<T> opt() const {
    if (ok()) return value();
    return std::nullopt;
  }

 private:
  std::variant<T, Bottom> v_;
};

}  // namespace dauct
