// Minimal leveled logger.
//
// Protocol code logs through this sink so that tests can silence or capture
// output. Not thread-safe by design for the deterministic runtime; the
// threaded runtime serializes through a mutex in the sink.
#pragma once

#include <cstdio>
#include <functional>
#include <sstream>
#include <string>

namespace dauct {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. Default: kWarn so
/// library users and tests are quiet unless they opt in.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Replace the sink (e.g. to capture logs in tests). The sink receives the
/// fully formatted line without trailing newline. Pass nullptr to restore the
/// default stderr sink.
using LogSink = std::function<void(LogLevel, const std::string&)>;
void set_log_sink(LogSink sink);

namespace detail {
void emit(LogLevel level, const std::string& line);
}

}  // namespace dauct

#define DAUCT_LOG(level, expr)                                        \
  do {                                                                \
    if (static_cast<int>(level) >= static_cast<int>(::dauct::log_level())) { \
      std::ostringstream dauct_log_os_;                               \
      dauct_log_os_ << expr;                                          \
      ::dauct::detail::emit(level, dauct_log_os_.str());              \
    }                                                                 \
  } while (0)

#define DAUCT_DEBUG(expr) DAUCT_LOG(::dauct::LogLevel::kDebug, expr)
#define DAUCT_INFO(expr) DAUCT_LOG(::dauct::LogLevel::kInfo, expr)
#define DAUCT_WARN(expr) DAUCT_LOG(::dauct::LogLevel::kWarn, expr)
#define DAUCT_ERROR(expr) DAUCT_LOG(::dauct::LogLevel::kError, expr)
