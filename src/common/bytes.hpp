// Byte-buffer utilities: the wire currency of every protocol block.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dauct {

/// A dynamically sized byte buffer. All serialized protocol payloads are
/// carried as Bytes.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Hex-encode `data` (lowercase, two chars per byte).
std::string to_hex(BytesView data);

/// Decode a hex string. Throws std::invalid_argument on malformed input
/// (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// Bytes of a std::string_view (no copy of semantics beyond the buffer).
Bytes to_bytes(std::string_view s);

/// Interpret bytes as a std::string.
std::string to_string(BytesView data);

/// Constant-time equality; avoids leaking match length through timing when
/// comparing secrets (commitment openings).
bool ct_equal(BytesView a, BytesView b);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace dauct
