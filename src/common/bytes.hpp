// Byte-buffer utilities: the wire currency of every protocol block.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dauct {

/// A dynamically sized byte buffer. All serialized protocol payloads are
/// carried as Bytes.
using Bytes = std::vector<std::uint8_t>;

/// Read-only view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// A refcounted *immutable* byte buffer: the fan-out currency of the
/// messaging spine. One broadcast allocates its payload once; every
/// scheduler event, mailbox entry, and round-collector slot that carries it
/// afterwards is a refcount bump, not a deep copy. Immutability is what makes
/// the aliasing safe: there is no API that mutates the bytes after
/// construction, so a sender cannot tweak a payload its recipients alias.
///
/// Each buffer also owns one lazily-computed 32-byte digest slot shared by
/// every alias (see shared_digest()): the m recipients of a broadcast hash
/// the payload once between them instead of once each. The compute function
/// is injected by the caller so this lowest layer stays independent of
/// crypto/ (net::Message::payload_digest() passes SHA-256).
class SharedBytes {
 public:
  /// Digest computation hook: hash `size` bytes at `data` into `out`.
  using DigestFn = void (*)(const std::uint8_t* data, std::size_t size,
                            std::uint8_t out[32]);

  /// Empty buffer (no allocation).
  SharedBytes() = default;

  /// Take ownership of `b` (move in; the common construction is
  /// `SharedBytes(writer.take())`). Implicit on purpose: every legacy
  /// `send(topic, some_bytes)` call site keeps compiling and gains sharing.
  SharedBytes(Bytes b);  // NOLINT(google-explicit-constructor)

  /// Deep-copy construction from a view (the only copying entry point).
  static SharedBytes copy(BytesView v);

  const std::uint8_t* data() const { return rep_ ? rep_->view.data() : nullptr; }
  std::size_t size() const { return rep_ ? rep_->view.size() : 0; }
  bool empty() const { return size() == 0; }
  std::uint8_t operator[](std::size_t i) const { return rep_->view[i]; }
  std::uint8_t front() const { return rep_->view.front(); }
  std::uint8_t back() const { return rep_->view.back(); }

  BytesView view() const { return rep_ ? rep_->view : BytesView(); }
  operator BytesView() const { return view(); }  // NOLINT

  /// Deep copy out (for call sites that need an owning, mutable Bytes).
  Bytes to_bytes() const {
    return rep_ ? Bytes(rep_->view.begin(), rep_->view.end()) : Bytes{};
  }

  /// Aliased subview of this buffer from `offset` to the end: no byte copy —
  /// the returned SharedBytes pins the same underlying allocation — but a
  /// *fresh* digest slot, because a digest must cover the view's bytes, not
  /// the parent buffer's. This is how the auth layer strips signature headers
  /// without re-allocating payloads. `offset` is clamped to size(); the
  /// result compares by its visible bytes like any other SharedBytes, and
  /// same_buffer() with the parent is false (different digest identity).
  SharedBytes suffix(std::size_t offset) const;

  /// True if `other` aliases the same underlying buffer (not just equal
  /// bytes) — what the fan-out tests assert.
  bool same_buffer(const SharedBytes& other) const { return rep_ == other.rep_; }

  /// Number of aliases of the underlying buffer (0 for the empty buffer).
  long use_count() const { return rep_ ? rep_.use_count() : 0; }

  /// The buffer's shared digest slot: computed by `fn` on first call, cached
  /// and returned by reference afterwards — across *all* aliases and threads
  /// (the slot is guarded by a once-flag). All callers must pass the same
  /// `fn` (in this codebase: SHA-256, via net::Message::payload_digest()).
  const std::array<std::uint8_t, 32>& shared_digest(DigestFn fn) const;

  /// Value equality (size + bytes), with an alias fast path.
  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    if (a.rep_ == b.rep_) return true;
    const BytesView av = a.view(), bv = b.view();
    return av.size() == bv.size() &&
           std::equal(av.begin(), av.end(), bv.begin());
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    const BytesView av = a.view();
    return av.size() == b.size() && std::equal(av.begin(), av.end(), b.begin());
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) { return b == a; }

 private:
  struct Rep {
    explicit Rep(Bytes b) : owned(std::move(b)), view(owned) {}
    Rep(std::shared_ptr<const Rep> p, BytesView v)
        : parent(std::move(p)), view(v) {}
    const Bytes owned;                        ///< empty for suffix views
    const std::shared_ptr<const Rep> parent;  ///< pins the allocation for views
    const BytesView view;
    mutable std::once_flag digest_once;
    mutable std::array<std::uint8_t, 32> digest{};
  };
  std::shared_ptr<const Rep> rep_;
};

/// 64-bit FNV-1a over `data`. Not cryptographic — a cheap grouping key for
/// majority counting (raw bytes are still compared on hash agreement).
std::uint64_t hash64(BytesView data);

/// Hex-encode `data` (lowercase, two chars per byte).
std::string to_hex(BytesView data);

/// Decode a hex string. Throws std::invalid_argument on malformed input
/// (odd length or non-hex character).
Bytes from_hex(std::string_view hex);

/// Bytes of a std::string_view (no copy of semantics beyond the buffer).
Bytes to_bytes(std::string_view s);

/// Interpret bytes as a std::string.
std::string to_string(BytesView data);

/// Constant-time equality; avoids leaking match length through timing when
/// comparing secrets (commitment openings).
bool ct_equal(BytesView a, BytesView b);

/// Append `src` to `dst`.
void append(Bytes& dst, BytesView src);

}  // namespace dauct
