#include "common/log.hpp"

#include <atomic>
#include <mutex>

namespace dauct {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_sink_mutex;
LogSink g_sink;  // guarded by g_sink_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void set_log_sink(LogSink sink) {
  std::lock_guard lock(g_sink_mutex);
  g_sink = std::move(sink);
}

namespace detail {
void emit(LogLevel level, const std::string& line) {
  std::lock_guard lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, line);
  } else {
    std::fprintf(stderr, "[dauct %s] %s\n", level_name(level), line.c_str());
  }
}
}  // namespace detail

}  // namespace dauct
