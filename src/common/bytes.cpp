#include "common/bytes.hpp"

#include <stdexcept>

namespace dauct {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string to_hex(BytesView data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0x0f]);
  }
  return out;
}

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_value(hex[i]);
    const int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView data) {
  return std::string(reinterpret_cast<const char*>(data.data()), data.size());
}

bool ct_equal(BytesView a, BytesView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

void append(Bytes& dst, BytesView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

SharedBytes::SharedBytes(Bytes b) {
  // The empty buffer stays rep-less: no allocation, digest handled by the
  // static slot in shared_digest().
  if (!b.empty()) rep_ = std::make_shared<const Rep>(std::move(b));
}

SharedBytes SharedBytes::copy(BytesView v) {
  return SharedBytes(Bytes(v.begin(), v.end()));
}

SharedBytes SharedBytes::suffix(std::size_t offset) const {
  SharedBytes out;
  if (!rep_ || offset >= rep_->view.size()) return out;  // empty, rep-less
  if (offset == 0) return *this;  // same bytes, same digest: share the rep
  // Chain through to the root so a suffix-of-a-suffix pins one allocation,
  // not a linked list of intermediate reps.
  const std::shared_ptr<const Rep>& root = rep_->parent ? rep_->parent : rep_;
  out.rep_ = std::make_shared<const Rep>(root, rep_->view.subspan(offset));
  return out;
}

const std::array<std::uint8_t, 32>& SharedBytes::shared_digest(DigestFn fn) const {
  if (!rep_) {
    // Empty buffers have no rep to cache into; recompute per call (hashing
    // zero bytes is one compression) rather than latching the first caller's
    // fn into a process-global slot. The reference stays valid, but its
    // contents track the most recent call on this thread.
    thread_local std::array<std::uint8_t, 32> empty_digest;
    fn(nullptr, 0, empty_digest.data());
    return empty_digest;
  }
  std::call_once(rep_->digest_once,
                 [&] { fn(rep_->view.data(), rep_->view.size(), rep_->digest.data()); });
  return rep_->digest;
}

std::uint64_t hash64(BytesView data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace dauct
