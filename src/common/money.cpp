#include "common/money.hpp"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace dauct {

Money Money::from_double(double value) {
  return from_micros(static_cast<std::int64_t>(std::llround(value * kScale)));
}

Money Money::mul(Money unit_price) const {
  const __int128 prod =
      static_cast<__int128>(micros_) * static_cast<__int128>(unit_price.micros_);
  return from_micros(static_cast<std::int64_t>(prod / kScale));
}

Money Money::div(Money divisor) const {
  assert(divisor.micros_ != 0 && "Money::div by zero");
  const __int128 num = static_cast<__int128>(micros_) * kScale;
  return from_micros(static_cast<std::int64_t>(num / divisor.micros_));
}

std::string Money::str() const {
  const std::int64_t m = micros_;
  const std::int64_t whole = m / kScale;
  std::int64_t frac = m % kScale;
  if (frac < 0) frac = -frac;
  char buf[40];
  if (m < 0 && whole == 0) {
    std::snprintf(buf, sizeof(buf), "-0.%06lld", static_cast<long long>(frac));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld.%06lld", static_cast<long long>(whole),
                  static_cast<long long>(frac));
  }
  return buf;
}

}  // namespace dauct
