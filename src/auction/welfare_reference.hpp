// Reference welfare solvers: the original (pre-optimization) branch & bound
// and scaled-DP implementations, retained verbatim as ground truth.
//
// The optimized solvers in welfare.{hpp,cpp} must return *byte-identical*
// Assignments to these for every instance/active-mask/seed — that contract is
// enforced by tests/welfare_equivalence_test.cpp and lets the perf suite
// (bench/perf_suite.cpp) report honest speedups against the very code the
// seed tree shipped with. These are deliberately unoptimized; do not "fix"
// them, change the optimized solvers and prove equivalence instead.
#pragma once

#include "auction/welfare.hpp"

namespace dauct::auction::reference {

/// Original exact branch & bound: rescans the provider pool on every bound
/// evaluation (O(n·providers) per node) and explores symmetric provider
/// permutations.
class ReferenceExactSolver final : public WelfareSolver {
 public:
  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;
};

/// Original scaled DP: allocates fresh dp/take buffers per provider per trial
/// (take is a byte matrix, not a bitset) and runs trials serially.
class ReferenceScaledDpSolver final : public WelfareSolver {
 public:
  explicit ReferenceScaledDpSolver(double epsilon);

  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;

  double epsilon() const { return epsilon_; }

 private:
  Assignment solve_one_trial(const AuctionInstance& instance,
                             const std::vector<bool>& active,
                             crypto::Rng& rng) const;

  double epsilon_;
  std::size_t trials_;
};

}  // namespace dauct::auction::reference
