#include "auction/workload.hpp"

namespace dauct::auction {

WorkloadParams double_auction_workload(std::size_t users, std::size_t providers) {
  WorkloadParams p;
  p.num_users = users;
  p.num_providers = providers;
  p.capacity_factor_lo = Money::from_double(0.5);
  p.capacity_factor_hi = Money::from_double(1.5);
  return p;
}

WorkloadParams standard_auction_workload(std::size_t users, std::size_t providers) {
  WorkloadParams p;
  p.num_users = users;
  p.num_providers = providers;
  p.capacity_factor_lo = kZeroMoney;
  p.capacity_factor_hi = Money::from_double(0.25);
  return p;
}

AuctionInstance generate(const WorkloadParams& params, crypto::Rng& rng) {
  AuctionInstance instance;
  instance.bids.reserve(params.num_users);
  Money total_demand;
  for (std::size_t i = 0; i < params.num_users; ++i) {
    Bid b;
    b.bidder = static_cast<BidderId>(i);
    b.unit_value = rng.next_money(params.bid_lo, params.bid_hi);
    b.demand = rng.next_money_positive(params.demand_hi);
    total_demand += b.demand;
    instance.bids.push_back(b);
  }

  const Money base_capacity =
      total_demand.div(Money::from_units(static_cast<std::int64_t>(params.num_providers)));
  instance.asks.reserve(params.num_providers);
  for (std::size_t j = 0; j < params.num_providers; ++j) {
    Ask a;
    a.provider = static_cast<NodeId>(j);
    a.unit_cost = rng.next_money_positive(params.cost_hi);
    const Money factor = rng.next_money(params.capacity_factor_lo, params.capacity_factor_hi);
    a.capacity = base_capacity.mul(factor);
    instance.asks.push_back(a);
  }
  return instance;
}

}  // namespace dauct::auction
