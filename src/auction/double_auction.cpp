#include "auction/double_auction.hpp"

#include <algorithm>
#include <vector>

namespace dauct::auction {

namespace {

struct BuyerStep {
  BidderId bidder;
  Money value;
  Money demand;
};

struct SellerStep {
  NodeId provider;
  Money cost;
  Money capacity;
};

}  // namespace

AuctionResult run_double_auction(const AuctionInstance& instance) {
  return run_double_auction(instance, nullptr);
}

AuctionResult run_double_auction(const AuctionInstance& instance,
                                 DoubleAuctionInfo* info) {
  AuctionResult result;
  result.payments.user_payments.assign(instance.bids.size(), kZeroMoney);
  result.payments.provider_revenues.assign(instance.asks.size(), kZeroMoney);
  if (info) *info = DoubleAuctionInfo{};

  // 1. Order the market. Ties broken by id: replicas must sort identically.
  std::vector<BuyerStep> buyers;
  for (const auto& b : instance.bids) {
    if (!b.is_neutral() && b.demand > kZeroMoney) {
      buyers.push_back({b.bidder, b.unit_value, b.demand});
    }
  }
  std::sort(buyers.begin(), buyers.end(), [](const BuyerStep& a, const BuyerStep& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.bidder < b.bidder;
  });

  std::vector<SellerStep> sellers;
  for (const auto& a : instance.asks) {
    if (a.capacity > kZeroMoney) {
      sellers.push_back({a.provider, a.unit_cost, a.capacity});
    }
  }
  std::sort(sellers.begin(), sellers.end(), [](const SellerStep& a, const SellerStep& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.provider < b.provider;
  });

  if (buyers.empty() || sellers.empty()) return result;

  // 2. Walk the aggregate curves to find the crossing. kb/ks are the current
  // buyer/seller steps; rem_* track the unfilled part of the current step.
  std::size_t kb = 0, ks = 0;
  Money rem_demand = buyers[0].demand;
  Money rem_capacity = sellers[0].capacity;
  // Index *after* the last participating step on each side (0 = none traded).
  std::size_t buyers_traded = 0, sellers_traded = 0;
  while (kb < buyers.size() && ks < sellers.size()) {
    if (buyers[kb].value < sellers[ks].cost) break;  // curves crossed
    const Money q = min(rem_demand, rem_capacity);
    if (q > kZeroMoney) {
      buyers_traded = kb + 1;
      sellers_traded = ks + 1;
      rem_demand -= q;
      rem_capacity -= q;
    }
    if (rem_demand.is_zero()) {
      ++kb;
      if (kb < buyers.size()) rem_demand = buyers[kb].demand;
    }
    if (rem_capacity.is_zero()) {
      ++ks;
      if (ks < sellers.size()) rem_capacity = sellers[ks].capacity;
    }
  }

  // 3. Trade reduction: exclude the marginal steps (indices buyers_traded-1
  // and sellers_traded-1). Their bid/ask set the uniform clearing prices. If
  // either side had at most one participating step, no trade survives.
  if (buyers_traded <= 1 || sellers_traded <= 1) return result;
  const std::size_t K = buyers_traded - 1;  // marginal buyer, excluded
  const std::size_t L = sellers_traded - 1;  // marginal seller, excluded
  const Money buyer_price = buyers[K].value;
  const Money seller_price = sellers[L].cost;

  // 4. Water-fill surviving demand (buyers[0..K-1]) into surviving capacity
  // (sellers[0..L-1]). The long side is rationed *proportionally*: every
  // surviving buyer receives demand_i·Q'/D and every surviving seller sells
  // capacity_j·Q'/C. Proportional shares are order-independent, so no
  // participant can increase its fill by misreporting its price — order-based
  // rationing would let a cut buyer overbid to move up the fill order and
  // gain at the unchanged clearing price.
  Money demand_total, capacity_total;
  for (std::size_t bi = 0; bi < K; ++bi) demand_total += buyers[bi].demand;
  for (std::size_t si = 0; si < L; ++si) capacity_total += sellers[si].capacity;
  const Money traded_target = min(demand_total, capacity_total);
  if (traded_target.is_zero()) return result;
  const Money buyer_scale = traded_target.div(demand_total);    // ≤ 1
  const Money seller_scale = traded_target.div(capacity_total); // ≤ 1

  std::size_t sj = 0;
  Money seller_left = sellers[0].capacity.mul(seller_scale);
  Money traded_total;
  for (std::size_t bi = 0; bi < K && sj < L; ++bi) {
    Money want = buyers[bi].demand.mul(buyer_scale);
    while (want > kZeroMoney && sj < L) {
      const Money q = min(want, seller_left);
      if (q > kZeroMoney) {
        result.allocation.add(buyers[bi].bidder, sellers[sj].provider, q);
        result.payments.user_payments[buyers[bi].bidder] += q.mul(buyer_price);
        result.payments.provider_revenues[sellers[sj].provider] += q.mul(seller_price);
        traded_total += q;
        want -= q;
        seller_left -= q;
      }
      if (seller_left.is_zero()) {
        ++sj;
        if (sj < L) seller_left = sellers[sj].capacity.mul(seller_scale);
      }
    }
  }

  if (info) {
    info->traded = traded_total > kZeroMoney;
    info->buyer_price = buyer_price;
    info->seller_price = seller_price;
    info->traded_quantity = traded_total;
  }
  return result;
}

AuctionResult run_optimal_waterfill(const AuctionInstance& instance) {
  AuctionResult result;
  result.payments.user_payments.assign(instance.bids.size(), kZeroMoney);
  result.payments.provider_revenues.assign(instance.asks.size(), kZeroMoney);

  std::vector<BuyerStep> buyers;
  for (const auto& b : instance.bids) {
    if (!b.is_neutral() && b.demand > kZeroMoney) {
      buyers.push_back({b.bidder, b.unit_value, b.demand});
    }
  }
  std::sort(buyers.begin(), buyers.end(), [](const BuyerStep& a, const BuyerStep& b) {
    if (a.value != b.value) return a.value > b.value;
    return a.bidder < b.bidder;
  });
  std::vector<SellerStep> sellers;
  for (const auto& a : instance.asks) {
    if (a.capacity > kZeroMoney) sellers.push_back({a.provider, a.unit_cost, a.capacity});
  }
  std::sort(sellers.begin(), sellers.end(), [](const SellerStep& a, const SellerStep& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.provider < b.provider;
  });

  // Water-fill greedily while the marginal value clears the marginal cost:
  // this maximizes Σ (v_i − c_j)·q over feasible trades (both curves are
  // monotone), i.e. the double-auction social welfare.
  std::size_t kb = 0, ks = 0;
  Money rem_demand = buyers.empty() ? kZeroMoney : buyers[0].demand;
  Money rem_capacity = sellers.empty() ? kZeroMoney : sellers[0].capacity;
  while (kb < buyers.size() && ks < sellers.size()) {
    if (buyers[kb].value < sellers[ks].cost) break;
    const Money q = min(rem_demand, rem_capacity);
    if (q > kZeroMoney) {
      result.allocation.add(buyers[kb].bidder, sellers[ks].provider, q);
      // Pay-as-bid / receive-as-ask: efficient but manipulable.
      result.payments.user_payments[buyers[kb].bidder] += q.mul(buyers[kb].value);
      result.payments.provider_revenues[sellers[ks].provider] +=
          q.mul(sellers[ks].cost);
      rem_demand -= q;
      rem_capacity -= q;
    }
    if (rem_demand.is_zero()) {
      ++kb;
      if (kb < buyers.size()) rem_demand = buyers[kb].demand;
    }
    if (rem_capacity.is_zero()) {
      ++ks;
      if (ks < sellers.size()) rem_capacity = sellers[ks].capacity;
    }
  }
  return result;
}

}  // namespace auction
