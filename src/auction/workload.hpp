// Workload generation matching the paper's evaluation setup (§6.2–6.3).
//
// "the bids by the users are uniformly distributed in the range [0.75, 1.25],
//  and the requested bandwidth resource is uniformly distributed in (0, 1].
//  We vary the capacity of the providers depending upon the overall bandwidth
//  required, and scale it using a random factor in [0.5, 1.5] ... The
//  providers have a unit cost of bandwidth uniformly distributed in (0, 1]."
// For the standard auction, capacities are scaled by a factor in [0, 0.25]
// "so roughly no more than a quarter of the users win the bids."
#pragma once

#include <cstdint>

#include "auction/types.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {

/// Parameters of the synthetic workload (defaults = the paper's values).
struct WorkloadParams {
  std::size_t num_users = 100;
  std::size_t num_providers = 8;

  Money bid_lo = Money::from_double(0.75);   ///< user unit value, lower bound
  Money bid_hi = Money::from_double(1.25);   ///< user unit value, upper bound
  Money demand_hi = Money::from_units(1);    ///< demand ~ U(0, demand_hi]
  Money cost_hi = Money::from_units(1);      ///< provider cost ~ U(0, cost_hi]

  /// Per-provider capacity = (total demand / m) scaled by a factor drawn
  /// uniformly from [capacity_factor_lo, capacity_factor_hi].
  Money capacity_factor_lo = Money::from_double(0.5);
  Money capacity_factor_hi = Money::from_double(1.5);
};

/// The paper's double-auction workload (§6.2): capacity factor U[0.5, 1.5].
WorkloadParams double_auction_workload(std::size_t users, std::size_t providers);

/// The paper's standard-auction workload (§6.3): capacity factor U[0, 0.25],
/// so roughly a quarter of users can win.
WorkloadParams standard_auction_workload(std::size_t users, std::size_t providers);

/// Draw a complete auction instance from `params` using `rng`.
AuctionInstance generate(const WorkloadParams& params, crypto::Rng& rng);

}  // namespace dauct::auction
