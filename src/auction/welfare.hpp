// Welfare maximization for the standard auction (§5.2.2).
//
// Each bidder's whole demand must be placed in a *single* provider (or not at
// all); welfare is the total value Σ v_i·d_i over placed bidders. This is the
// multiple-knapsack problem (NP-hard), the computational core of the
// VCG-based mechanism of Zhang et al. (INFOCOM'15) that the paper
// parallelises.
//
// Two solvers:
//  * ExactSolver — branch & bound with a fractional single-knapsack bound.
//    Exponential worst case; used as ground truth in tests and ablations.
//  * ScaledDpSolver — (1−ε)-style approximation: providers are processed in
//    sequence; for each, a 0/1 knapsack DP over a capacity grid of
//    ⌈n/ε⌉ cells (demands rounded *up* to grid cells, so the result is always
//    feasible). Runtime Θ(m · n · ⌈n/ε⌉) per solve — the polynomial,
//    ε-controlled cost profile the paper's evaluation depends on (Fig. 5).
//    A randomized perturbation of the bidder order (seeded by the common
//    coin) mirrors the randomized mechanism of [18]; the mechanism runs
//    ⌈1/ε⌉ perturbed trials and keeps the best.
//
// Determinism: given the same seed and inputs, both solvers return
// bit-identical assignments on every platform (fixed-point arithmetic, id
// tie-breaks) — required for replicated cross-validation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "auction/types.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {

/// Result of a welfare solve: provider index per bidder (-1 = unallocated)
/// and the achieved welfare.
struct Assignment {
  std::vector<std::int32_t> provider_of;  ///< [n], -1 if not allocated
  Money welfare;

  bool operator==(const Assignment&) const = default;
};

/// Interface for welfare maximizers. `active[i] == false` excludes bidder i
/// (used for the Clarke-pivot payment re-solves).
class WelfareSolver {
 public:
  virtual ~WelfareSolver() = default;

  /// Solve restricted to active bidders. `seed` drives tie-breaking /
  /// perturbation; identical seeds give identical results.
  virtual Assignment solve(const AuctionInstance& instance,
                           const std::vector<bool>& active,
                           std::uint64_t seed) const = 0;

  Assignment solve_all(const AuctionInstance& instance, std::uint64_t seed) const;
};

/// Exact branch & bound (ground truth; exponential worst case).
class ExactSolver final : public WelfareSolver {
 public:
  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;
};

/// (1−ε)-style scaled dynamic program with randomized perturbed trials.
class ScaledDpSolver final : public WelfareSolver {
 public:
  /// `epsilon` controls the capacity grid (⌈n/ε⌉ cells) and the number of
  /// perturbed trials (⌈1/ε⌉). Must be in (0, 1].
  explicit ScaledDpSolver(double epsilon);

  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;

  double epsilon() const { return epsilon_; }

 private:
  Assignment solve_one_trial(const AuctionInstance& instance,
                             const std::vector<bool>& active,
                             crypto::Rng& rng) const;

  double epsilon_;
  std::size_t trials_;
};

}  // namespace dauct::auction
