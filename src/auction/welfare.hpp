// Welfare maximization for the standard auction (§5.2.2).
//
// Each bidder's whole demand must be placed in a *single* provider (or not at
// all); welfare is the total value Σ v_i·d_i over placed bidders. This is the
// multiple-knapsack problem (NP-hard), the computational core of the
// VCG-based mechanism of Zhang et al. (INFOCOM'15) that the paper
// parallelises.
//
// Two solvers:
//  * ExactSolver — branch & bound with a fractional single-knapsack bound.
//    Exponential worst case; used as ground truth in tests and ablations.
//  * ScaledDpSolver — (1−ε)-style approximation: providers are processed in
//    sequence; for each, a 0/1 knapsack DP over a capacity grid of
//    ⌈n/ε⌉ cells (demands rounded *up* to grid cells, so the result is always
//    feasible). Runtime Θ(m · n · ⌈n/ε⌉) per solve — the polynomial,
//    ε-controlled cost profile the paper's evaluation depends on (Fig. 5).
//    A randomized perturbation of the bidder order (seeded by the common
//    coin) mirrors the randomized mechanism of [18]; the mechanism runs
//    ⌈1/ε⌉ perturbed trials and keeps the best.
//
// Determinism: given the same seed and inputs, both solvers return
// bit-identical assignments on every platform (fixed-point arithmetic, id
// tie-breaks) — required for replicated cross-validation.
//
// Both solvers are the optimized hot-path implementations; the original
// (seed-tree) versions live on in welfare_reference.hpp and the equivalence
// tests assert byte-identical Assignments between the two.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "auction/types.hpp"
#include "crypto/rng.hpp"

namespace dauct::auction {

/// Result of a welfare solve: provider index per bidder (-1 = unallocated)
/// and the achieved welfare.
struct Assignment {
  std::vector<std::int32_t> provider_of;  ///< [n], -1 if not allocated
  Money welfare;

  bool operator==(const Assignment&) const = default;
};

/// Interface for welfare maximizers. `active[i] == false` excludes bidder i
/// (used for the Clarke-pivot payment re-solves).
class WelfareSolver {
 public:
  virtual ~WelfareSolver() = default;

  /// Solve restricted to active bidders. `seed` drives tie-breaking /
  /// perturbation; identical seeds give identical results.
  virtual Assignment solve(const AuctionInstance& instance,
                           const std::vector<bool>& active,
                           std::uint64_t seed) const = 0;

  Assignment solve_all(const AuctionInstance& instance, std::uint64_t seed) const;
};

/// Exact branch & bound (ground truth; exponential worst case). The
/// fractional bound excludes bidders that outsize every provider's remaining
/// capacity and tracks the pooled capacity incrementally — an admissible
/// tightening, so the returned assignment is bit-identical to the reference
/// search at a fraction of the node count.
class ExactSolver final : public WelfareSolver {
 public:
  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;
};

/// (1−ε)-style scaled dynamic program with randomized perturbed trials.
///
/// Hot-path layout: the active item set is materialized once per solve (it is
/// seed-independent), every trial reuses a single scratch arena (DP row, flat
/// take-matrix, perturbation buffers) instead of allocating per provider, and
/// trials can optionally run on a small thread pool. All modes
/// return bit-identical Assignments: trials fork independent RNG streams and
/// the winner is reduced in trial order, so thread count never changes the
/// outcome (enforced against ReferenceScaledDpSolver by the equivalence
/// tests).
class ScaledDpSolver final : public WelfareSolver {
 public:
  /// `epsilon` controls the capacity grid (⌈n/ε⌉ cells) and the number of
  /// perturbed trials (⌈1/ε⌉). Must be in (0, 1]. `parallel_trials` > 1 runs
  /// up to that many trials on concurrent threads (1 = serial, the default;
  /// results are identical either way).
  explicit ScaledDpSolver(double epsilon, std::size_t parallel_trials = 1);

  Assignment solve(const AuctionInstance& instance, const std::vector<bool>& active,
                   std::uint64_t seed) const override;

  double epsilon() const { return epsilon_; }
  std::size_t trials() const { return trials_; }
  std::size_t parallel_trials() const { return parallel_trials_; }

 private:
  struct Scratch;  // per-trial reusable buffers; defined in welfare.cpp

  /// One perturbed trial: deterministic in (instance, active item set,
  /// provider_order) — the basis for trial memoization and parallelism.
  Assignment solve_one_trial(const AuctionInstance& instance, Scratch& scratch,
                             const std::vector<std::size_t>& provider_order) const;

  double epsilon_;
  std::size_t trials_;
  std::size_t parallel_trials_;
};

}  // namespace dauct::auction
