#include "auction/welfare.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <thread>

namespace dauct::auction {

namespace {

struct Item {
  BidderId bidder;
  std::int64_t value;   // v_i * d_i, in micro-money
  std::int64_t demand;  // micros of resource
  std::int64_t unit_value;
};

void active_items(const AuctionInstance& instance, const std::vector<bool>& active,
                  std::vector<Item>& items) {
  items.clear();
  for (std::size_t i = 0; i < instance.bids.size(); ++i) {
    const Bid& b = instance.bids[i];
    if (i < active.size() && !active[i]) continue;
    if (b.is_neutral() || b.demand <= kZeroMoney) continue;
    Item it;
    it.bidder = b.bidder;
    it.value = b.demand.mul(b.unit_value).micros();
    it.demand = b.demand.micros();
    it.unit_value = b.unit_value.micros();
    if (it.value <= 0) continue;
    items.push_back(it);
  }
}

}  // namespace

Assignment WelfareSolver::solve_all(const AuctionInstance& instance,
                                    std::uint64_t seed) const {
  return solve(instance, std::vector<bool>(instance.bids.size(), true), seed);
}

// ---------------------------------------------------------------------------
// ExactSolver: branch & bound
// ---------------------------------------------------------------------------

namespace {

class BranchBound {
 public:
  BranchBound(const AuctionInstance& instance, std::vector<Item> items)
      : instance_(instance), items_(std::move(items)) {
    // Density order (unit value descending): drives both branch order and the
    // admissible fractional bound.
    std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
      if (a.unit_value != b.unit_value) return a.unit_value > b.unit_value;
      return a.bidder < b.bidder;
    });
    caps_.reserve(instance.asks.size());
    for (const auto& a : instance_.asks) {
      caps_.push_back(a.capacity.micros());
      pool_ += a.capacity.micros();
    }
    choice_.assign(items_.size(), -1);
    best_choice_ = choice_;
  }

  Assignment run() {
    recurse(0, 0);
    Assignment out;
    out.provider_of.assign(instance_.bids.size(), -1);
    std::int64_t welfare = 0;
    for (std::size_t idx = 0; idx < items_.size(); ++idx) {
      if (best_choice_[idx] >= 0) {
        out.provider_of[items_[idx].bidder] = best_choice_[idx];
        welfare += items_[idx].value;
      }
    }
    out.welfare = Money::from_micros(welfare);
    return out;
  }

 private:
  // Admissible upper bound: fractional fill of remaining items (in density
  // order) into the *pooled* remaining capacity — a relaxation of multiple
  // knapsack to one knapsack with divisible items — tightened by excluding
  // items whose demand exceeds every provider's remaining capacity:
  // capacities only shrink deeper in the subtree, so such an item can never
  // be placed below this node and contributes nothing to any completion.
  // The tightening is output-preserving: a subtree pruned by an admissible
  // bound contains no strict improvement, so the DFS still returns the same
  // first optimum the untightened search finds (≈14× fewer nodes on the
  // paper's standard-auction workloads, where most bidders outsize most
  // providers). The pooled capacity is maintained incrementally instead of
  // re-summed per call.
  std::int64_t fractional_bound(std::size_t idx) const {
    if (pool_ <= 0) return 0;
    std::int64_t max_cap = 0;
    for (std::int64_t c : caps_) max_cap = std::max(max_cap, c);
    __int128 pool = pool_;
    __int128 bound = 0;
    for (std::size_t i = idx; i < items_.size() && pool > 0; ++i) {
      if (items_[i].demand > max_cap) continue;
      const __int128 take = std::min<__int128>(pool, items_[i].demand);
      bound += take * items_[i].unit_value / Money::kScale;
      pool -= take;
    }
    return static_cast<std::int64_t>(bound);
  }

  void recurse(std::size_t idx, std::int64_t welfare) {
    if (welfare > best_welfare_) {
      best_welfare_ = welfare;
      best_choice_ = choice_;
    }
    if (idx == items_.size()) return;
    if (welfare + fractional_bound(idx) <= best_welfare_) return;  // prune

    const Item& it = items_[idx];
    for (std::size_t j = 0; j < caps_.size(); ++j) {
      if (caps_[j] < it.demand) continue;
      // Symmetry breaking: a provider whose remaining capacity equals an
      // earlier provider's is interchangeable with it — the earlier branch
      // already explored the same welfare outcomes (and best_ only updates on
      // strict improvement), so the duplicate subtree is skipped. This keeps
      // the returned assignment bit-identical to the exhaustive search.
      bool dominated = false;
      for (std::size_t p = 0; p < j; ++p) {
        if (caps_[p] == caps_[j]) {
          dominated = true;
          break;
        }
      }
      if (dominated) continue;
      caps_[j] -= it.demand;
      pool_ -= it.demand;
      choice_[idx] = static_cast<std::int32_t>(j);
      recurse(idx + 1, welfare + it.value);
      choice_[idx] = -1;
      caps_[j] += it.demand;
      pool_ += it.demand;
    }
    recurse(idx + 1, welfare);  // skip this bidder
  }

  const AuctionInstance& instance_;
  std::vector<Item> items_;
  std::vector<std::int64_t> caps_;
  __int128 pool_ = 0;  // Σ caps_, maintained incrementally
  std::vector<std::int32_t> choice_;
  std::vector<std::int32_t> best_choice_;
  std::int64_t best_welfare_ = -1;
};

}  // namespace

Assignment ExactSolver::solve(const AuctionInstance& instance,
                              const std::vector<bool>& active,
                              std::uint64_t /*seed*/) const {
  std::vector<Item> items;
  active_items(instance, active, items);
  return BranchBound(instance, std::move(items)).run();
}

// ---------------------------------------------------------------------------
// ScaledDpSolver: (1−ε)-style grid DP with perturbed trials
// ---------------------------------------------------------------------------

namespace {

struct DpItem {
  std::size_t item_idx;
  std::size_t weight;
  std::int64_t value;
};

}  // namespace

/// Reusable per-trial buffers: one arena instead of fresh allocations per
/// provider, with `items` filled once per solve and shared read-only across
/// trials (the active set is seed-independent). `take` stays a flat *byte*
/// matrix: a one-bit-per-cell variant was tried and measured ~45% slower
/// here — the register bookkeeping for bit packing beats the 8× smaller
/// zeroing on the DP's store-heavy inner loop.
struct ScaledDpSolver::Scratch {
  std::vector<Item> items;  // filled once per solve, read-only per trial
  std::vector<char> placed;
  std::vector<std::int64_t> dp;
  std::vector<DpItem> dp_items;
  std::vector<char> take;  // take[t * (grid+1) + w]
};

ScaledDpSolver::ScaledDpSolver(double epsilon, std::size_t parallel_trials)
    : epsilon_(epsilon), parallel_trials_(std::max<std::size_t>(1, parallel_trials)) {
  assert(epsilon > 0.0 && epsilon <= 1.0);
  trials_ = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
}

Assignment ScaledDpSolver::solve(const AuctionInstance& instance,
                                 const std::vector<bool>& active,
                                 std::uint64_t seed) const {
  // The RNG is only ever fork()ed (const), so trial t's perturbation depends
  // on nothing but (seed, t). A trial's *only* random input is its shuffled
  // provider order, so trials that draw the same permutation are memoized
  // (with few providers — the paper's regime — collisions are frequent:
  // ⌈1/ε⌉ draws from m! permutations), and distinct trials can run
  // concurrently. Neither changes any result: the reduction below picks the
  // earliest trial achieving the maximum welfare, exactly like the reference
  // serial loop.
  crypto::Rng rng(seed);
  std::vector<std::vector<std::size_t>> orders(trials_);
  std::vector<std::size_t> dup_of(trials_);
  for (std::size_t t = 0; t < trials_; ++t) {
    crypto::Rng trial_rng = rng.fork(t);
    std::vector<std::size_t>& order = orders[t];
    order.resize(instance.asks.size());
    std::iota(order.begin(), order.end(), 0);
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[trial_rng.next_below(i)]);
    }
    dup_of[t] = t;
    for (std::size_t u = 0; u < t; ++u) {
      if (orders[u] == order) {
        dup_of[t] = u;
        break;
      }
    }
  }

  std::vector<Assignment> results(trials_);
  const std::size_t workers = std::min(parallel_trials_, trials_);
  if (workers <= 1) {
    Scratch scratch;
    active_items(instance, active, scratch.items);
    for (std::size_t t = 0; t < trials_; ++t) {
      if (dup_of[t] == t) results[t] = solve_one_trial(instance, scratch, orders[t]);
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back([&, w]() {
        Scratch scratch;
        active_items(instance, active, scratch.items);
        for (std::size_t t = w; t < trials_; t += workers) {
          if (dup_of[t] == t) results[t] = solve_one_trial(instance, scratch, orders[t]);
        }
      });
    }
    for (auto& th : threads) th.join();
  }

  Assignment best;
  best.provider_of.assign(instance.bids.size(), -1);
  best.welfare = Money::from_micros(-1);
  for (std::size_t t = 0; t < trials_; ++t) {
    // A duplicated trial can never beat its original (identical welfare,
    // later index), so it never has to be materialized at all.
    if (dup_of[t] != t) continue;
    if (results[t].welfare > best.welfare) best = std::move(results[t]);
  }
  return best;
}

Assignment ScaledDpSolver::solve_one_trial(
    const AuctionInstance& instance, Scratch& scratch,
    const std::vector<std::size_t>& provider_order) const {
  const std::vector<Item>& items = scratch.items;
  Assignment out;
  out.provider_of.assign(instance.bids.size(), -1);
  out.welfare = kZeroMoney;
  if (items.empty()) return out;

  const std::size_t n = items.size();
  // Capacity grid: ⌈n/ε⌉ cells per provider (at least 16). Demands are
  // rounded *up* to cells, so any DP-feasible packing is truly feasible.
  const std::size_t grid =
      std::max<std::size_t>(16, static_cast<std::size_t>(std::ceil(n / epsilon_)));

  scratch.placed.assign(n, 0);
  scratch.dp.resize(grid + 1);

  std::int64_t welfare = 0;
  for (std::size_t j : provider_order) {
    const std::int64_t cap = instance.asks[j].capacity.micros();
    if (cap <= 0) continue;

    // Gather unplaced items that fit, with grid weights w = ⌈d·G/cap⌉.
    std::vector<DpItem>& dp_items = scratch.dp_items;
    dp_items.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (scratch.placed[i] || items[i].demand > cap) continue;
      const __int128 w128 =
          (static_cast<__int128>(items[i].demand) * static_cast<std::int64_t>(grid) +
           cap - 1) /
          cap;
      const auto w = static_cast<std::size_t>(w128);
      if (w > grid) continue;
      dp_items.push_back({i, std::max<std::size_t>(w, 1), items[i].value});
    }
    if (dp_items.empty()) continue;

    // 0/1 knapsack over grid cells. Raw pointers hoisted out of the loops:
    // the take rows are char stores, which alias everything, so indexing
    // through the vectors would force the compiler to reload their data
    // pointers on every iteration.
    std::fill(scratch.dp.begin(), scratch.dp.end(), 0);
    scratch.take.assign(dp_items.size() * (grid + 1), 0);
    std::int64_t* const dp = scratch.dp.data();
    for (std::size_t t = 0; t < dp_items.size(); ++t) {
      const DpItem di = dp_items[t];
      char* const row = scratch.take.data() + t * (grid + 1);
      for (std::size_t w = grid; w >= di.weight; --w) {
        const std::int64_t cand = dp[w - di.weight] + di.value;
        if (cand > dp[w]) {
          dp[w] = cand;
          row[w] = 1;
        }
        if (w == di.weight) break;  // avoid size_t underflow
      }
    }

    // Reconstruct the chosen subset.
    std::size_t w = grid;
    for (std::size_t t = dp_items.size(); t-- > 0;) {
      if (scratch.take[t * (grid + 1) + w]) {
        const auto& di = dp_items[t];
        scratch.placed[di.item_idx] = 1;
        out.provider_of[items[di.item_idx].bidder] = static_cast<std::int32_t>(j);
        welfare += di.value;
        w -= di.weight;
      }
    }
  }

  out.welfare = Money::from_micros(welfare);
  return out;
}

}  // namespace dauct::auction
