#include "auction/types.hpp"

#include <algorithm>
#include <sstream>

namespace dauct::auction {

Bid neutral_bid(BidderId i) {
  Bid b;
  b.bidder = i;
  b.unit_value = kZeroMoney;
  b.demand = kZeroMoney;
  return b;
}

void Allocation::add(BidderId bidder, NodeId provider, Money amount) {
  if (amount.is_zero()) return;
  const auto key = [](const AllocationEntry& e) { return std::pair(e.bidder, e.provider); };
  AllocationEntry entry{bidder, provider, amount};
  auto it = std::lower_bound(entries_.begin(), entries_.end(), entry,
                             [&](const AllocationEntry& a, const AllocationEntry& b) {
                               return key(a) < key(b);
                             });
  if (it != entries_.end() && it->bidder == bidder && it->provider == provider) {
    it->amount += amount;
    if (it->amount.is_zero()) entries_.erase(it);
  } else {
    entries_.insert(it, entry);
  }
}

Money Allocation::allocated_to(BidderId bidder) const {
  Money total;
  for (const auto& e : entries_) {
    if (e.bidder == bidder) total += e.amount;
  }
  return total;
}

Money Allocation::allocated_at(NodeId provider) const {
  Money total;
  for (const auto& e : entries_) {
    if (e.provider == provider) total += e.amount;
  }
  return total;
}

Money Allocation::amount(BidderId bidder, NodeId provider) const {
  for (const auto& e : entries_) {
    if (e.bidder == bidder && e.provider == provider) return e.amount;
  }
  return kZeroMoney;
}

Money Allocation::total() const {
  Money total;
  for (const auto& e : entries_) total += e.amount;
  return total;
}

bool Allocation::is_canonical() const {
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].amount <= kZeroMoney) return false;
    if (i > 0) {
      const auto prev = std::pair(entries_[i - 1].bidder, entries_[i - 1].provider);
      const auto cur = std::pair(entries_[i].bidder, entries_[i].provider);
      if (!(prev < cur)) return false;
    }
  }
  return true;
}

Money Payments::total_paid() const {
  Money total;
  for (Money p : user_payments) total += p;
  return total;
}

Money Payments::total_received() const {
  Money total;
  for (Money p : provider_revenues) total += p;
  return total;
}

bool is_feasible(const AuctionInstance& instance, const Allocation& x) {
  for (const auto& e : x.entries()) {
    if (e.amount.is_negative()) return false;
    if (e.bidder >= instance.bids.size()) return false;
    if (e.provider >= instance.asks.size()) return false;
  }
  for (const auto& bid : instance.bids) {
    if (x.allocated_to(bid.bidder) > bid.demand) return false;
  }
  for (const auto& ask : instance.asks) {
    if (x.allocated_at(ask.provider) > ask.capacity) return false;
  }
  return true;
}

Money double_auction_welfare(const AuctionInstance& instance, const Allocation& x) {
  Money welfare;
  for (const auto& e : x.entries()) {
    welfare += e.amount.mul(instance.bids[e.bidder].unit_value);
    welfare -= e.amount.mul(instance.asks[e.provider].unit_cost);
  }
  return welfare;
}

Money standard_auction_welfare(const AuctionInstance& instance, const Allocation& x) {
  Money welfare;
  for (const auto& e : x.entries()) {
    welfare += e.amount.mul(instance.bids[e.bidder].unit_value);
  }
  return welfare;
}

Money user_utility(const AuctionInstance& instance, const AuctionOutcome& outcome,
                   BidderId i) {
  if (outcome.is_bottom()) return kZeroMoney;
  const auto& result = outcome.value();
  Money value = result.allocation.allocated_to(i).mul(instance.bids[i].unit_value);
  Money paid = i < result.payments.user_payments.size()
                   ? result.payments.user_payments[i]
                   : kZeroMoney;
  return value - paid;
}

Money provider_utility(const AuctionInstance& instance, const AuctionOutcome& outcome,
                       NodeId j) {
  if (outcome.is_bottom()) return kZeroMoney;
  const auto& result = outcome.value();
  Money revenue = j < result.payments.provider_revenues.size()
                      ? result.payments.provider_revenues[j]
                      : kZeroMoney;
  Money cost = result.allocation.allocated_at(j).mul(instance.asks[j].unit_cost);
  return revenue - cost;
}

std::string to_string(const Allocation& x) {
  std::ostringstream os;
  os << "allocation{";
  bool first = true;
  for (const auto& e : x.entries()) {
    if (!first) os << ", ";
    first = false;
    os << "u" << e.bidder << "@p" << e.provider << "=" << e.amount.str();
  }
  os << "}";
  return os.str();
}

std::string to_string(const Payments& p) {
  std::ostringstream os;
  os << "payments{users:[";
  for (std::size_t i = 0; i < p.user_payments.size(); ++i) {
    if (i) os << ", ";
    os << p.user_payments[i].str();
  }
  os << "], providers:[";
  for (std::size_t j = 0; j < p.provider_revenues.size(); ++j) {
    if (j) os << ", ";
    os << p.provider_revenues[j].str();
  }
  os << "]}";
  return os.str();
}

}  // namespace dauct::auction
