// Standard (one-sided) auction with VCG payments (§5.2.2).
//
// Following Zhang et al. (INFOCOM'15): only users bid; each user's demand
// must be satisfied by a single provider; the mechanism targets maximal
// social welfare + truthfulness via VCG, with a (1−ε) approximate welfare
// maximizer to keep the computation polynomial.
//
// The computation decomposes exactly as the paper's Algorithm 1:
//   Task 1   — compute the allocation (one welfare solve);
//   Task 2.S — compute the Clarke-pivot payment of each user in subset S
//              (one welfare *re-solve without that user* per payment: the
//              computationally dominant, embarrassingly parallel part);
//   Task 3   — gather payments and emit (x, p).
// The three functions below are those tasks; run_standard_auction() chains
// them sequentially (the trusted-auctioneer/centralized execution).
//
// Truthfulness: with ExactSolver the mechanism is exactly VCG (dominant-
// strategy truthful; verified by property tests). With ScaledDpSolver it is
// the paper's "(1−ε)-optimal, truthful in expectation" trade-off: payments
// are clamped to [0, v_i·d_i] so individual rationality always holds, and
// deviation gains are bounded by the approximation error (measured in the
// resilience ablation).
#pragma once

#include <cstdint>
#include <memory>

#include "auction/types.hpp"
#include "auction/welfare.hpp"

namespace dauct::auction {

/// Mechanism parameters.
struct StandardAuctionParams {
  double epsilon = 0.1;     ///< approximation knob for ScaledDpSolver
  bool use_exact = false;   ///< use ExactSolver (small instances / tests)
  std::uint64_t seed = 0;   ///< shared randomness (supplied by the common coin)

  /// Skip the welfare re-solve for losers (their Clarke payment is provably
  /// 0 with an exact solver). Default off: the paper's algorithm evaluates
  /// the payment formula for every user, which makes per-user cost uniform —
  /// exactly what lets the payment tasks parallelise with speedup ≈ p
  /// (Fig. 5). The short-circuit is an optimization ablation (see
  /// bench/abl_welfare_solver).
  bool skip_loser_resolve = false;
};

/// Make the solver selected by `params`.
std::unique_ptr<WelfareSolver> make_solver(const StandardAuctionParams& params);

/// Task 1: compute the (approximately) welfare-maximizing assignment.
Assignment standard_allocate(const AuctionInstance& instance,
                             const StandardAuctionParams& params);

/// Task 2 unit: the Clarke-pivot payment of bidder `i` given the Task-1
/// assignment: p_i = W(−i) − (W − v_i·d_i), clamped to [0, v_i·d_i].
/// This is the expensive call (a full welfare re-solve without bidder i).
Money standard_payment(const AuctionInstance& instance,
                       const StandardAuctionParams& params,
                       const Assignment& assignment, BidderId i);

/// Task 3: assemble the final result from the assignment and payments.
/// `user_payments` must have one entry per bidder (zero for losers).
AuctionResult standard_assemble(const AuctionInstance& instance,
                                const Assignment& assignment,
                                const std::vector<Money>& user_payments);

/// The full centralized execution (Tasks 1, 2.0..2.n-1, 3 in sequence).
AuctionResult run_standard_auction(const AuctionInstance& instance,
                                   const StandardAuctionParams& params);

}  // namespace dauct::auction
