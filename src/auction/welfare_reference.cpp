// Verbatim copy of the seed-tree solver implementations (see header). Kept
// unoptimized on purpose: equivalence tests and the perf suite diff the
// optimized solvers against this code.
#include "auction/welfare_reference.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace dauct::auction::reference {

namespace {

struct Item {
  BidderId bidder;
  std::int64_t value;   // v_i * d_i, in micro-money
  std::int64_t demand;  // micros of resource
  std::int64_t unit_value;
};

std::vector<Item> active_items(const AuctionInstance& instance,
                               const std::vector<bool>& active) {
  std::vector<Item> items;
  for (std::size_t i = 0; i < instance.bids.size(); ++i) {
    const Bid& b = instance.bids[i];
    if (i < active.size() && !active[i]) continue;
    if (b.is_neutral() || b.demand <= kZeroMoney) continue;
    Item it;
    it.bidder = b.bidder;
    it.value = b.demand.mul(b.unit_value).micros();
    it.demand = b.demand.micros();
    it.unit_value = b.unit_value.micros();
    if (it.value <= 0) continue;
    items.push_back(it);
  }
  return items;
}

class BranchBound {
 public:
  BranchBound(const AuctionInstance& instance, std::vector<Item> items)
      : instance_(instance), items_(std::move(items)) {
    std::sort(items_.begin(), items_.end(), [](const Item& a, const Item& b) {
      if (a.unit_value != b.unit_value) return a.unit_value > b.unit_value;
      return a.bidder < b.bidder;
    });
    caps_.reserve(instance.asks.size());
    for (const auto& a : instance_.asks) caps_.push_back(a.capacity.micros());
    choice_.assign(items_.size(), -1);
    best_choice_ = choice_;
  }

  Assignment run() {
    recurse(0, 0);
    Assignment out;
    out.provider_of.assign(instance_.bids.size(), -1);
    std::int64_t welfare = 0;
    for (std::size_t idx = 0; idx < items_.size(); ++idx) {
      if (best_choice_[idx] >= 0) {
        out.provider_of[items_[idx].bidder] = best_choice_[idx];
        welfare += items_[idx].value;
      }
    }
    out.welfare = Money::from_micros(welfare);
    return out;
  }

 private:
  std::int64_t fractional_bound(std::size_t idx) const {
    __int128 pool = 0;
    for (std::int64_t c : caps_) pool += c;
    __int128 bound = 0;
    for (std::size_t i = idx; i < items_.size() && pool > 0; ++i) {
      const __int128 take = std::min<__int128>(pool, items_[i].demand);
      bound += take * items_[i].unit_value / Money::kScale;
      pool -= take;
    }
    return static_cast<std::int64_t>(bound);
  }

  void recurse(std::size_t idx, std::int64_t welfare) {
    if (welfare > best_welfare_) {
      best_welfare_ = welfare;
      best_choice_ = choice_;
    }
    if (idx == items_.size()) return;
    if (welfare + fractional_bound(idx) <= best_welfare_) return;  // prune

    const Item& it = items_[idx];
    for (std::size_t j = 0; j < caps_.size(); ++j) {
      if (caps_[j] >= it.demand) {
        caps_[j] -= it.demand;
        choice_[idx] = static_cast<std::int32_t>(j);
        recurse(idx + 1, welfare + it.value);
        choice_[idx] = -1;
        caps_[j] += it.demand;
      }
    }
    recurse(idx + 1, welfare);  // skip this bidder
  }

  const AuctionInstance& instance_;
  std::vector<Item> items_;
  std::vector<std::int64_t> caps_;
  std::vector<std::int32_t> choice_;
  std::vector<std::int32_t> best_choice_;
  std::int64_t best_welfare_ = -1;
};

}  // namespace

Assignment ReferenceExactSolver::solve(const AuctionInstance& instance,
                                       const std::vector<bool>& active,
                                       std::uint64_t /*seed*/) const {
  return BranchBound(instance, active_items(instance, active)).run();
}

ReferenceScaledDpSolver::ReferenceScaledDpSolver(double epsilon) : epsilon_(epsilon) {
  assert(epsilon > 0.0 && epsilon <= 1.0);
  trials_ = static_cast<std::size_t>(std::ceil(1.0 / epsilon));
}

Assignment ReferenceScaledDpSolver::solve(const AuctionInstance& instance,
                                          const std::vector<bool>& active,
                                          std::uint64_t seed) const {
  crypto::Rng rng(seed);
  Assignment best;
  best.provider_of.assign(instance.bids.size(), -1);
  best.welfare = Money::from_micros(-1);
  for (std::size_t t = 0; t < trials_; ++t) {
    crypto::Rng trial_rng = rng.fork(t);
    Assignment a = solve_one_trial(instance, active, trial_rng);
    if (a.welfare > best.welfare) best = std::move(a);
  }
  return best;
}

Assignment ReferenceScaledDpSolver::solve_one_trial(const AuctionInstance& instance,
                                                    const std::vector<bool>& active,
                                                    crypto::Rng& rng) const {
  std::vector<Item> items = active_items(instance, active);
  Assignment out;
  out.provider_of.assign(instance.bids.size(), -1);
  out.welfare = kZeroMoney;
  if (items.empty()) return out;

  const std::size_t n = items.size();
  const std::size_t grid =
      std::max<std::size_t>(16, static_cast<std::size_t>(std::ceil(n / epsilon_)));

  std::vector<std::size_t> provider_order(instance.asks.size());
  std::iota(provider_order.begin(), provider_order.end(), 0);
  for (std::size_t i = provider_order.size(); i > 1; --i) {
    std::swap(provider_order[i - 1], provider_order[rng.next_below(i)]);
  }

  std::vector<bool> placed(n, false);
  std::vector<std::int64_t> dp(grid + 1);
  std::vector<char> take;  // take[i * (grid+1) + w]

  std::int64_t welfare = 0;
  for (std::size_t j : provider_order) {
    const std::int64_t cap = instance.asks[j].capacity.micros();
    if (cap <= 0) continue;

    struct DpItem {
      std::size_t item_idx;
      std::size_t weight;
      std::int64_t value;
    };
    std::vector<DpItem> dp_items;
    for (std::size_t i = 0; i < n; ++i) {
      if (placed[i] || items[i].demand > cap) continue;
      const __int128 w128 =
          (static_cast<__int128>(items[i].demand) * static_cast<std::int64_t>(grid) +
           cap - 1) /
          cap;
      const auto w = static_cast<std::size_t>(w128);
      if (w > grid) continue;
      dp_items.push_back({i, std::max<std::size_t>(w, 1), items[i].value});
    }
    if (dp_items.empty()) continue;

    std::fill(dp.begin(), dp.end(), 0);
    take.assign(dp_items.size() * (grid + 1), 0);
    for (std::size_t t = 0; t < dp_items.size(); ++t) {
      const auto& di = dp_items[t];
      for (std::size_t w = grid; w >= di.weight; --w) {
        const std::int64_t cand = dp[w - di.weight] + di.value;
        if (cand > dp[w]) {
          dp[w] = cand;
          take[t * (grid + 1) + w] = 1;
        }
        if (w == di.weight) break;  // avoid size_t underflow
      }
    }

    std::size_t w = grid;
    for (std::size_t t = dp_items.size(); t-- > 0;) {
      if (take[t * (grid + 1) + w]) {
        const auto& di = dp_items[t];
        placed[di.item_idx] = true;
        out.provider_of[items[di.item_idx].bidder] = static_cast<std::int32_t>(j);
        welfare += di.value;
        w -= di.weight;
      }
    }
  }

  out.welfare = Money::from_micros(welfare);
  return out;
}

}  // namespace dauct::auction::reference
