// Double auction for divisible bandwidth (Zheng et al. STAR flavour, §5.2.1).
//
// Mechanism:
//  1. Sort users by descending unit value, providers by ascending unit cost
//     (ties broken by id — deterministic, since replicas must agree).
//  2. Walk the aggregate demand and supply curves to find the crossing: the
//     largest traded quantity at which the marginal buyer's value is at least
//     the marginal seller's cost. The marginal buyer step K and marginal
//     seller step L are identified.
//  3. McAfee-style *trade reduction*: buyer K and seller L (and everyone after
//     them in the order) are excluded from trading. Their bid/ask become the
//     uniform clearing prices: every trading buyer pays b_K per unit, every
//     trading seller receives s_L per unit. Because prices are set by
//     excluded bids, no trading participant can improve its price by lying,
//     and b_K ≥ s_L at the crossing gives (weak) budget balance.
//  4. The surviving demand is *water-filled* into the surviving capacity in
//     order: each buyer's demand goes to the first provider(s) with remaining
//     capacity (§5.2.1's water-filling method).
//
// Properties (verified by tests): feasibility, truthfulness (no single bidder
// or provider gains by misreporting), budget balance, and the welfare
// trade-off inherent to trade reduction.
//
// Computationally the mechanism is sort-dominated — the paper uses it as the
// non-parallelisable worst case for framework overhead (Fig. 4).
#pragma once

#include "auction/types.hpp"

namespace dauct::auction {

/// Run the double-auction mechanism on `instance`. Deterministic.
AuctionResult run_double_auction(const AuctionInstance& instance);

/// Diagnostic info from a run (marginal prices etc.), for tests and reports.
struct DoubleAuctionInfo {
  bool traded = false;
  Money buyer_price;   ///< uniform unit price paid by trading buyers (= b_K)
  Money seller_price;  ///< uniform unit price received by sellers (= s_L)
  Money traded_quantity;
};

AuctionResult run_double_auction(const AuctionInstance& instance, DoubleAuctionInfo* info);

/// Welfare-*optimal* water-filling WITHOUT trade reduction: every buyer whose
/// value clears a seller's cost trades, buyers pay their own bid and sellers
/// receive their own ask (pay-as-bid). This is the efficiency upper bound the
/// McAfee mechanism sacrifices for truthfulness — it is NOT truthful (your
/// own bid sets your price), which the ablation tests demonstrate. Used by
/// bench/abl_trade_reduction to measure the welfare cost of truthfulness.
AuctionResult run_optimal_waterfill(const AuctionInstance& instance);

}  // namespace dauct::auction
