// Auction model types: bids, asks, allocations, payments, results.
//
// The paper's family of resource-allocation auctions (§3.1): m providers sell
// a divisible resource (bandwidth) with limited capacity; n users bid a unit
// valuation and a demand. A *standard* auction has only user bids; a *double*
// auction also has provider asks. The auctioneer outputs a feasible
// allocation x and a payment vector p, or the special value ⊥.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/money.hpp"
#include "common/outcome.hpp"

namespace dauct::auction {

/// A user's bid: willingness to pay `unit_value` per unit of resource, for up
/// to `demand` units. The *neutral bid* (demand == 0) excludes the bidder
/// from the auction; providers substitute it for missing/invalid bids (§3.2).
struct Bid {
  BidderId bidder = 0;
  Money unit_value;  ///< price the user pays per allocated unit
  Money demand;      ///< amount of resource requested

  bool is_neutral() const { return demand.is_zero(); }
  bool operator==(const Bid&) const = default;
};

/// The neutral bid for bidder `i` (excluded from the auction).
Bid neutral_bid(BidderId i);

/// A provider's ask (double auction): unit cost and sellable capacity.
struct Ask {
  NodeId provider = 0;
  Money unit_cost;  ///< minimum acceptable payment per unit sold
  Money capacity;   ///< units available at this provider

  bool operator==(const Ask&) const = default;
};

/// Bounds on acceptable bids; anything outside is *invalid* and replaced by
/// the neutral bid during bid agreement.
struct BidLimits {
  Money max_unit_value = Money::from_units(1'000'000);
  Money max_demand = Money::from_units(1'000'000);

  bool valid(const Bid& b) const {
    return !b.unit_value.is_negative() && !b.demand.is_negative() &&
           b.unit_value <= max_unit_value && b.demand <= max_demand;
  }
};

/// Amount of resource allocated to one bidder at one provider.
struct AllocationEntry {
  BidderId bidder = 0;
  NodeId provider = 0;
  Money amount;

  bool operator==(const AllocationEntry&) const = default;
};

/// A (sparse) allocation x. Entries are kept sorted by (bidder, provider) so
/// that equal allocations have identical serializations (replicas
/// cross-validate by hash).
class Allocation {
 public:
  Allocation() = default;

  /// Add `amount` for (bidder, provider); merges with an existing entry.
  void add(BidderId bidder, NodeId provider, Money amount);

  const std::vector<AllocationEntry>& entries() const { return entries_; }

  /// Total allocated to `bidder` across providers.
  Money allocated_to(BidderId bidder) const;

  /// Total allocated at `provider` across bidders.
  Money allocated_at(NodeId provider) const;

  /// Amount for a specific (bidder, provider) pair.
  Money amount(BidderId bidder, NodeId provider) const;

  /// Sum of all allocated amounts.
  Money total() const;

  bool empty() const { return entries_.empty(); }
  bool operator==(const Allocation&) const = default;

  /// Canonical ordering invariant check (sorted, positive amounts, no dups).
  bool is_canonical() const;

 private:
  std::vector<AllocationEntry> entries_;  // sorted by (bidder, provider)
};

/// Payment vector p: what each user pays and each provider receives.
/// Indexed by BidderId / NodeId (dense; absent ids pay/receive zero).
struct Payments {
  std::vector<Money> user_payments;      ///< [n] paid by each user
  std::vector<Money> provider_revenues;  ///< [m] received by each provider

  Money total_paid() const;
  Money total_received() const;
  /// Budget balance: users' payments cover providers' revenues.
  bool budget_balanced() const { return total_paid() >= total_received(); }

  bool operator==(const Payments&) const = default;
};

/// The auctioneer's output (x, p).
struct AuctionResult {
  Allocation allocation;
  Payments payments;

  bool operator==(const AuctionResult&) const = default;
};

/// Outcome of a simulation: (x, p) or ⊥.
using AuctionOutcome = Outcome<AuctionResult>;

/// A complete auction instance: the inputs the algorithm A runs on.
struct AuctionInstance {
  std::vector<Bid> bids;  ///< one per bidder, index == BidderId
  std::vector<Ask> asks;  ///< one per provider, index == NodeId

  std::size_t num_users() const { return bids.size(); }
  std::size_t num_providers() const { return asks.size(); }
};

/// Feasibility (§3.1): no provider's capacity is exceeded, every user gets at
/// most its demand, and amounts are non-negative.
bool is_feasible(const AuctionInstance& instance, const Allocation& x);

/// Social welfare of a double auction: Σ_i v_i·alloc_i − Σ_j c_j·alloc_j.
Money double_auction_welfare(const AuctionInstance& instance, const Allocation& x);

/// Social welfare of a standard auction: Σ_i v_i·alloc_i (users only).
Money standard_auction_welfare(const AuctionInstance& instance, const Allocation& x);

/// Utility of user `i` (§3.3): value of allocation minus payment, 0 on ⊥.
Money user_utility(const AuctionInstance& instance, const AuctionOutcome& outcome,
                   BidderId i);

/// Utility of provider `j`: revenue minus value of sold resource, 0 on ⊥.
Money provider_utility(const AuctionInstance& instance, const AuctionOutcome& outcome,
                       NodeId j);

/// Pretty-printers for reports/examples.
std::string to_string(const Allocation& x);
std::string to_string(const Payments& p);

}  // namespace dauct::auction
