#include "auction/standard_auction.hpp"

namespace dauct::auction {

std::unique_ptr<WelfareSolver> make_solver(const StandardAuctionParams& params) {
  if (params.use_exact) return std::make_unique<ExactSolver>();
  return std::make_unique<ScaledDpSolver>(params.epsilon);
}

Assignment standard_allocate(const AuctionInstance& instance,
                             const StandardAuctionParams& params) {
  return make_solver(params)->solve_all(instance, params.seed);
}

Money standard_payment(const AuctionInstance& instance,
                       const StandardAuctionParams& params,
                       const Assignment& assignment, BidderId i) {
  if (i >= assignment.provider_of.size()) return kZeroMoney;
  const bool winner = assignment.provider_of[i] >= 0;
  if (!winner && params.skip_loser_resolve) {
    return kZeroMoney;  // losers pay nothing; re-solve skipped (optimization)
  }
  const Bid& bid = instance.bids[i];
  const Money own_value = winner ? bid.demand.mul(bid.unit_value) : kZeroMoney;

  // Welfare of the others under the chosen assignment.
  const Money others_with_i = assignment.welfare - own_value;

  // Welfare of the others if i did not exist (the Clarke re-solve). The seed
  // is offset per bidder so the perturbed trials differ between re-solves but
  // stay identical across replicas.
  std::vector<bool> active(instance.bids.size(), true);
  active[i] = false;
  const Assignment without =
      make_solver(params)->solve(instance, active, params.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));

  Money payment = without.welfare - others_with_i;
  // Clamp for individual rationality / no-subsidy under approximate solvers
  // (with the exact solver the clamp is a no-op: 0 ≤ p_i ≤ v_i·d_i always,
  // and a loser's formula value is ≤ 0 → 0).
  payment = max(payment, kZeroMoney);
  payment = min(payment, own_value);
  return payment;
}

AuctionResult standard_assemble(const AuctionInstance& instance,
                                const Assignment& assignment,
                                const std::vector<Money>& user_payments) {
  AuctionResult result;
  result.payments.user_payments = user_payments;
  result.payments.user_payments.resize(instance.bids.size(), kZeroMoney);
  result.payments.provider_revenues.assign(instance.asks.size(), kZeroMoney);
  for (std::size_t i = 0; i < instance.bids.size(); ++i) {
    const std::int32_t j = i < assignment.provider_of.size() ? assignment.provider_of[i] : -1;
    if (j < 0) continue;
    result.allocation.add(static_cast<BidderId>(i), static_cast<NodeId>(j),
                          instance.bids[i].demand);
    // The hosting provider receives the user's payment (exactly budget
    // balanced: Σ revenues == Σ payments).
    result.payments.provider_revenues[static_cast<std::size_t>(j)] +=
        result.payments.user_payments[i];
  }
  return result;
}

AuctionResult run_standard_auction(const AuctionInstance& instance,
                                   const StandardAuctionParams& params) {
  const Assignment assignment = standard_allocate(instance, params);
  std::vector<Money> payments(instance.bids.size(), kZeroMoney);
  for (std::size_t i = 0; i < instance.bids.size(); ++i) {
    payments[i] = standard_payment(instance, params, assignment, static_cast<BidderId>(i));
  }
  return standard_assemble(instance, assignment, payments);
}

}  // namespace dauct::auction
