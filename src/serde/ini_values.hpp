// Typed INI value conversions shared by every .scn/.bounds consumer.
//
// serde/ini.hpp returns values verbatim; the scenario parser
// (runtime/scenario.cpp), the fuzz-bounds parser (sim/fuzz.cpp) and the
// scenario emitter (Scenario::to_scn) all need the same scalar grammar. This
// header is the single definition of it, in both directions:
//
//  * parse_* — strict string → value (std::nullopt on anything malformed);
//  * format_* — value → the canonical string the parser accepts, chosen so
//    that format(parse(format(v))) is a fixpoint (the round-trip property
//    the minimizer and the to_scn() tests rely on).
//
// Times in .scn files are decimal milliseconds with at most six fractional
// digits — exactly nanosecond granularity, which is also SimTime's unit, so
// the ms representation is lossless in both directions.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace dauct::serde {

// Times are plain std::int64_t nanoseconds here, not sim::SimTime: serde
// sits below sim in the layer order, and sim::SimTime is exactly this type
// (with "forever" = INT64_MAX, mirrored as kForeverNs).
inline constexpr std::int64_t kForeverNs =
    std::numeric_limits<std::int64_t>::max();

std::optional<std::uint64_t> parse_u64(const std::string& s);
std::optional<double> parse_f64(const std::string& s);
std::optional<bool> parse_bool_word(const std::string& s);

/// Decimal milliseconds → virtual nanoseconds. Values beyond the int64 ns
/// range clamp to kForeverNs ("held for the whole run") instead of hitting
/// llround's out-of-range UB. Negative values are rejected.
std::optional<std::int64_t> parse_time_ms(const std::string& s);

/// A double in [0, 1].
std::optional<double> parse_probability(const std::string& s);

/// Shortest decimal string that parses back to exactly `v` (round-trip via
/// strtod). "0.02" stays "0.02", not "0.020000000000000004".
std::string format_f64(double v);

/// Nanoseconds → decimal milliseconds with up to six fractional digits
/// (trailing zeros trimmed): the exact inverse of parse_time_ms for every
/// representable time. kForeverNs has no finite ms form; callers omit the
/// key instead (the parsed default is already "forever").
std::string format_time_ms(std::int64_t ns);

}  // namespace dauct::serde
