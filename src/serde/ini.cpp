#include "serde/ini.hpp"

namespace dauct::serde {

namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

std::string error_at(std::size_t line, const std::string& what) {
  return "line " + std::to_string(line) + ": " + what;
}

}  // namespace

std::optional<std::string> IniSection::get(std::string_view key) const {
  std::optional<std::string> found;
  for (const IniKeyValue& kv : entries) {
    if (kv.key == key) found = kv.value;
  }
  return found;
}

IniResult parse_ini(std::string_view text) {
  IniDoc doc;
  IniSection* current = nullptr;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);

    line = trim(line);
    if (line.empty() || line.front() == '#' || line.front() == ';') continue;

    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        return {std::nullopt, error_at(line_no, "malformed section header")};
      }
      const std::string_view name = trim(line.substr(1, line.size() - 2));
      if (name.empty()) {
        return {std::nullopt, error_at(line_no, "empty section name")};
      }
      doc.sections.push_back(IniSection{std::string(name), line_no, {}});
      current = &doc.sections.back();
      continue;
    }

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return {std::nullopt, error_at(line_no, "expected 'key = value' or '[section]'")};
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) {
      return {std::nullopt, error_at(line_no, "empty key")};
    }
    if (!current) {
      doc.sections.push_back(IniSection{std::string(), line_no, {}});
      current = &doc.sections.back();
    }
    current->entries.push_back(
        IniKeyValue{std::string(key), std::string(value), line_no});
  }
  return {std::move(doc), std::string()};
}

}  // namespace dauct::serde
