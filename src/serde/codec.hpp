// Binary serialization: Writer/Reader over byte buffers.
//
// All protocol payloads are encoded with this codec. The encoding is
// deterministic and platform-independent (little-endian fixed ints, LEB128
// varints), which matters because providers cross-validate each other's
// payloads by hash equality.
//
// Reader is *defensive*: every accessor reports failure on truncated or
// malformed input instead of crashing — payloads arrive from untrusted peers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/money.hpp"

namespace dauct::serde {

/// Encoded size of a LEB128 varint (1 byte per started 7 bits). Lets encoders
/// compute exact payload sizes up front and write nested sections in place
/// instead of encode-into-temporary-then-copy.
constexpr std::size_t varint_len(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends values to a byte buffer.
class Writer {
 public:
  Writer() = default;
  /// Pre-size the buffer: one allocation when the encoded size is known (or
  /// over-estimated) up front.
  explicit Writer(std::size_t reserve_hint) { buf_.reserve(reserve_hint); }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void varint(std::uint64_t v);  ///< LEB128
  void boolean(bool v);
  void money(dauct::Money v);
  void bytes(BytesView v);    ///< varint length prefix + raw bytes
  void raw(BytesView v);      ///< raw bytes, no length prefix
  void str(std::string_view v);

  /// Grow capacity to at least `n` bytes (never shrinks).
  void reserve(std::size_t n) { buf_.reserve(n); }
  /// Reusable-buffer mode: drop the contents, keep the capacity. A Writer
  /// held across encodes amortizes its allocations to zero.
  void clear() { buf_.clear(); }
  std::size_t size() const { return buf_.size(); }

  const Bytes& buffer() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

/// Reads values from a byte buffer. On any malformed access, ok() turns false
/// and all further reads return zero values; callers check ok() once at the
/// end of decoding a message.
///
/// The *_view accessors are zero-copy: they return spans/views into the
/// underlying buffer instead of owning copies, with exactly the same
/// defensive behaviour (same ok() transitions, same rejected inputs) as the
/// owning accessors — enforced by the serde parity tests. Views are only
/// valid while the buffer passed to the constructor outlives them.
class Reader {
 public:
  explicit Reader(BytesView data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  std::uint64_t varint();
  bool boolean();
  dauct::Money money();
  Bytes bytes();
  Bytes raw(std::size_t len);
  std::string str();

  /// Zero-copy variants: same wire format and failure behaviour as bytes() /
  /// raw() / str(), but returning views into the input buffer (empty on
  /// failure).
  BytesView bytes_view();
  BytesView raw_view(std::size_t len);
  std::string_view str_view();

  /// True while no decode error has occurred.
  bool ok() const { return ok_; }
  /// True when the whole buffer has been consumed (and no error occurred).
  bool at_end() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool need(std::size_t n);

  BytesView data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dauct::serde
