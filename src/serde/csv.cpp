#include "serde/csv.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace dauct::serde {

std::vector<std::string> csv_split(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

std::optional<Money> parse_money(const std::string& text) {
  if (text.empty()) return std::nullopt;
  // Accept [-]digits[.digits], up to 6 fractional digits.
  std::size_t pos = 0;
  bool negative = false;
  if (text[pos] == '-') {
    negative = true;
    ++pos;
  }
  if (pos >= text.size() || !std::isdigit(static_cast<unsigned char>(text[pos]))) {
    return std::nullopt;
  }
  std::int64_t whole = 0;
  while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
    whole = whole * 10 + (text[pos] - '0');
    if (whole > 9'000'000'000'000LL) return std::nullopt;  // overflow guard
    ++pos;
  }
  std::int64_t frac = 0;
  if (pos < text.size() && text[pos] == '.') {
    ++pos;
    int digits = 0;
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) {
      if (digits < 6) {
        frac = frac * 10 + (text[pos] - '0');
        ++digits;
      }
      ++pos;
    }
    while (digits < 6) {
      frac *= 10;
      ++digits;
    }
  }
  if (pos != text.size()) return std::nullopt;  // trailing garbage
  const std::int64_t micros = whole * Money::kScale + frac;
  return Money::from_micros(negative ? -micros : micros);
}

namespace {

std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::istringstream in(content);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

std::optional<std::uint32_t> parse_id(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return std::nullopt;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
    if (v > 0xffffffffULL) return std::nullopt;
  }
  return static_cast<std::uint32_t>(v);
}

}  // namespace

CsvResult<std::vector<auction::Bid>> parse_bids_csv(const std::string& content) {
  CsvResult<std::vector<auction::Bid>> out;
  const auto lines = split_lines(content);
  if (lines.empty()) {
    out.error = "empty bids file";
    return out;
  }
  if (csv_split(lines[0]) != std::vector<std::string>{"bidder", "unit_value", "demand"}) {
    out.error = "bids header must be: bidder,unit_value,demand";
    return out;
  }
  std::vector<auction::Bid> bids;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = csv_split(lines[i]);
    if (fields.size() != 3) {
      out.error = "bids line " + std::to_string(i + 1) + ": expected 3 fields";
      return out;
    }
    const auto id = parse_id(fields[0]);
    const auto value = parse_money(fields[1]);
    const auto demand = parse_money(fields[2]);
    if (!id || !value || !demand) {
      out.error = "bids line " + std::to_string(i + 1) + ": malformed value";
      return out;
    }
    bids.push_back({*id, *value, *demand});
  }
  out.value = std::move(bids);
  return out;
}

CsvResult<std::vector<auction::Ask>> parse_asks_csv(const std::string& content) {
  CsvResult<std::vector<auction::Ask>> out;
  const auto lines = split_lines(content);
  if (lines.empty()) {
    out.error = "empty asks file";
    return out;
  }
  if (csv_split(lines[0]) !=
      std::vector<std::string>{"provider", "unit_cost", "capacity"}) {
    out.error = "asks header must be: provider,unit_cost,capacity";
    return out;
  }
  std::vector<auction::Ask> asks;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    const auto fields = csv_split(lines[i]);
    if (fields.size() != 3) {
      out.error = "asks line " + std::to_string(i + 1) + ": expected 3 fields";
      return out;
    }
    const auto id = parse_id(fields[0]);
    const auto cost = parse_money(fields[1]);
    const auto capacity = parse_money(fields[2]);
    if (!id || !cost || !capacity) {
      out.error = "asks line " + std::to_string(i + 1) + ": malformed value";
      return out;
    }
    asks.push_back({*id, *cost, *capacity});
  }
  out.value = std::move(asks);
  return out;
}

std::string bids_to_csv(const std::vector<auction::Bid>& bids) {
  std::string out = "bidder,unit_value,demand\n";
  for (const auto& b : bids) {
    out += std::to_string(b.bidder) + "," + b.unit_value.str() + "," +
           b.demand.str() + "\n";
  }
  return out;
}

std::string asks_to_csv(const std::vector<auction::Ask>& asks) {
  std::string out = "provider,unit_cost,capacity\n";
  for (const auto& a : asks) {
    out += std::to_string(a.provider) + "," + a.unit_cost.str() + "," +
           a.capacity.str() + "\n";
  }
  return out;
}

std::string result_to_csv(const auction::AuctionInstance& instance,
                          const auction::AuctionResult& result) {
  std::string out = "bidder,provider,amount,payment\n";
  for (const auto& e : result.allocation.entries()) {
    const Money payment = e.bidder < result.payments.user_payments.size()
                              ? result.payments.user_payments[e.bidder]
                              : kZeroMoney;
    out += std::to_string(e.bidder) + "," + std::to_string(e.provider) + "," +
           e.amount.str() + "," + payment.str() + "\n";
  }
  out += "provider,revenue\n";
  for (std::size_t j = 0; j < instance.asks.size(); ++j) {
    const Money rev = j < result.payments.provider_revenues.size()
                          ? result.payments.provider_revenues[j]
                          : kZeroMoney;
    out += std::to_string(j) + "," + rev.str() + "\n";
  }
  return out;
}

}  // namespace dauct::serde
