// Bit-stream codec.
//
// The paper's bid agreement runs one rational-consensus instance per *bit* of
// the serialized bid ("provider j generates a stream of bits uniquely
// determined from b_i^j and inputs each bit to a rational consensus
// instance"). This codec converts byte buffers to/from bit vectors with a
// stable bit order (MSB-first within each byte).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace dauct::serde {

/// Expand bytes into bits, MSB-first.
std::vector<bool> to_bits(BytesView data);

/// Pack bits (MSB-first) back into bytes. The bit count must be a multiple
/// of 8 (bid encodings are fixed-width); otherwise the trailing partial byte
/// is zero-padded.
Bytes from_bits(const std::vector<bool>& bits);

}  // namespace dauct::serde
