#include "serde/auction_codec.hpp"

namespace dauct::serde {

using auction::Allocation;
using auction::AllocationEntry;
using auction::Ask;
using auction::AuctionResult;
using auction::Bid;
using auction::Payments;

namespace {
// Hard cap on decoded element counts: a malicious peer must not be able to
// make an honest provider allocate unbounded memory.
constexpr std::uint64_t kMaxElements = 1u << 22;

// Fixed per-element wire sizes (u32 = 4, money = 8). Encoders use these to
// reserve exact buffer sizes and to write nested length-prefixed sections in
// place instead of encoding into a temporary and copying it over.
constexpr std::size_t kBidWireBytes = 4 + 8 + 8;
constexpr std::size_t kAskWireBytes = 4 + 8 + 8;
constexpr std::size_t kAllocEntryWireBytes = 4 + 4 + 8;

std::size_t bid_vector_wire_len(std::size_t n) {
  return varint_len(n) + n * kBidWireBytes;
}
std::size_t ask_vector_wire_len(std::size_t n) {
  return varint_len(n) + n * kAskWireBytes;
}
std::size_t allocation_wire_len(std::size_t entries) {
  return varint_len(entries) + entries * kAllocEntryWireBytes;
}
std::size_t payments_wire_len(const Payments& p) {
  return varint_len(p.user_payments.size()) + 8 * p.user_payments.size() +
         varint_len(p.provider_revenues.size()) + 8 * p.provider_revenues.size();
}
}  // namespace

Bytes encode_bid_fixed(const Bid& bid) {
  Writer w(kBidEncodingBytes);
  w.u32(bid.bidder);
  w.money(bid.unit_value);
  w.money(bid.demand);
  return w.take();
}

std::optional<Bid> decode_bid_fixed(BytesView data) {
  if (data.size() != kBidEncodingBytes) return std::nullopt;
  Reader r(data);
  Bid b;
  b.bidder = r.u32();
  b.unit_value = r.money();
  b.demand = r.money();
  if (!r.at_end()) return std::nullopt;
  return b;
}

void write_bid(Writer& w, const Bid& bid) {
  w.u32(bid.bidder);
  w.money(bid.unit_value);
  w.money(bid.demand);
}

std::optional<Bid> read_bid(Reader& r) {
  Bid b;
  b.bidder = r.u32();
  b.unit_value = r.money();
  b.demand = r.money();
  if (!r.ok()) return std::nullopt;
  return b;
}

Bytes encode_bid_vector(const std::vector<Bid>& bids) {
  Writer w(bid_vector_wire_len(bids.size()));
  w.varint(bids.size());
  for (const auto& b : bids) write_bid(w, b);
  return w.take();
}

std::optional<std::vector<Bid>> decode_bid_vector(BytesView data) {
  Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxElements) return std::nullopt;
  std::vector<Bid> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    auto b = read_bid(r);
    if (!b) return std::nullopt;
    out.push_back(*b);
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

Bytes encode_ask_vector(const std::vector<Ask>& asks) {
  Writer w(ask_vector_wire_len(asks.size()));
  w.varint(asks.size());
  for (const auto& a : asks) {
    w.u32(a.provider);
    w.money(a.unit_cost);
    w.money(a.capacity);
  }
  return w.take();
}

std::optional<std::vector<Ask>> decode_ask_vector(BytesView data) {
  Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxElements) return std::nullopt;
  std::vector<Ask> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    Ask a;
    a.provider = r.u32();
    a.unit_cost = r.money();
    a.capacity = r.money();
    out.push_back(a);
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

Bytes encode_allocation(const Allocation& x) {
  Writer w(allocation_wire_len(x.entries().size()));
  w.varint(x.entries().size());
  for (const auto& e : x.entries()) {
    w.u32(e.bidder);
    w.u32(e.provider);
    w.money(e.amount);
  }
  return w.take();
}

std::optional<Allocation> decode_allocation(BytesView data) {
  Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxElements) return std::nullopt;
  Allocation x;
  for (std::uint64_t i = 0; i < n; ++i) {
    const BidderId bidder = r.u32();
    const NodeId provider = r.u32();
    const Money amount = r.money();
    if (!r.ok() || amount <= kZeroMoney) return std::nullopt;
    x.add(bidder, provider, amount);
  }
  if (!r.at_end() || !x.is_canonical()) return std::nullopt;
  return x;
}

Bytes encode_payments(const Payments& p) {
  Writer w(payments_wire_len(p));
  w.varint(p.user_payments.size());
  for (Money m : p.user_payments) w.money(m);
  w.varint(p.provider_revenues.size());
  for (Money m : p.provider_revenues) w.money(m);
  return w.take();
}

std::optional<Payments> decode_payments(BytesView data) {
  Reader r(data);
  Payments p;
  const std::uint64_t nu = r.varint();
  if (!r.ok() || nu > kMaxElements) return std::nullopt;
  p.user_payments.reserve(static_cast<std::size_t>(nu));
  for (std::uint64_t i = 0; i < nu; ++i) p.user_payments.push_back(r.money());
  const std::uint64_t np = r.varint();
  if (!r.ok() || np > kMaxElements) return std::nullopt;
  p.provider_revenues.reserve(static_cast<std::size_t>(np));
  for (std::uint64_t i = 0; i < np; ++i) p.provider_revenues.push_back(r.money());
  if (!r.at_end()) return std::nullopt;
  return p;
}

Bytes encode_result(const AuctionResult& res) {
  // Nested sections written in place: sizes are exact, so the length prefixes
  // can be emitted up front — no encode-into-temporary-and-copy.
  const std::size_t alloc_len = allocation_wire_len(res.allocation.entries().size());
  const std::size_t pay_len = payments_wire_len(res.payments);
  Writer w(varint_len(alloc_len) + alloc_len + varint_len(pay_len) + pay_len);
  w.varint(alloc_len);
  w.varint(res.allocation.entries().size());
  for (const auto& e : res.allocation.entries()) {
    w.u32(e.bidder);
    w.u32(e.provider);
    w.money(e.amount);
  }
  w.varint(pay_len);
  w.varint(res.payments.user_payments.size());
  for (Money m : res.payments.user_payments) w.money(m);
  w.varint(res.payments.provider_revenues.size());
  for (Money m : res.payments.provider_revenues) w.money(m);
  return w.take();
}

std::optional<AuctionResult> decode_result(BytesView data) {
  Reader r(data);
  const BytesView alloc_bytes = r.bytes_view();
  const BytesView pay_bytes = r.bytes_view();
  if (!r.at_end()) return std::nullopt;
  auto alloc = decode_allocation(alloc_bytes);
  auto pay = decode_payments(pay_bytes);
  if (!alloc || !pay) return std::nullopt;
  AuctionResult res;
  res.allocation = std::move(*alloc);
  res.payments = std::move(*pay);
  return res;
}

Bytes encode_assignment(const auction::Assignment& a) {
  Writer w;
  w.varint(a.provider_of.size());
  for (std::int32_t p : a.provider_of) w.u32(static_cast<std::uint32_t>(p));
  w.money(a.welfare);
  return w.take();
}

std::optional<auction::Assignment> decode_assignment(BytesView data) {
  Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxElements) return std::nullopt;
  auction::Assignment a;
  a.provider_of.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    a.provider_of.push_back(static_cast<std::int32_t>(r.u32()));
  }
  a.welfare = r.money();
  if (!r.at_end()) return std::nullopt;
  return a;
}

Bytes encode_instance(const auction::AuctionInstance& instance) {
  // In-place nested sections (see encode_result). encode_instance runs once
  // per provider per auction on the allocator input path, right before the
  // payload is hashed for input validation.
  const std::size_t bid_len = bid_vector_wire_len(instance.bids.size());
  const std::size_t ask_len = ask_vector_wire_len(instance.asks.size());
  Writer w(varint_len(bid_len) + bid_len + varint_len(ask_len) + ask_len);
  w.varint(bid_len);
  w.varint(instance.bids.size());
  for (const auto& b : instance.bids) write_bid(w, b);
  w.varint(ask_len);
  w.varint(instance.asks.size());
  for (const auto& a : instance.asks) {
    w.u32(a.provider);
    w.money(a.unit_cost);
    w.money(a.capacity);
  }
  return w.take();
}

std::optional<auction::AuctionInstance> decode_instance(BytesView data) {
  Reader r(data);
  const BytesView bid_bytes = r.bytes_view();
  const BytesView ask_bytes = r.bytes_view();
  if (!r.at_end()) return std::nullopt;
  auto bids = decode_bid_vector(bid_bytes);
  auto asks = decode_ask_vector(ask_bytes);
  if (!bids || !asks) return std::nullopt;
  auction::AuctionInstance out;
  out.bids = std::move(*bids);
  out.asks = std::move(*asks);
  return out;
}

Bytes encode_money_vector(const std::vector<dauct::Money>& v) {
  Writer w(varint_len(v.size()) + 8 * v.size());
  w.varint(v.size());
  for (Money m : v) w.money(m);
  return w.take();
}

std::optional<std::vector<dauct::Money>> decode_money_vector(BytesView data) {
  Reader r(data);
  const std::uint64_t n = r.varint();
  if (!r.ok() || n > kMaxElements) return std::nullopt;
  std::vector<Money> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(r.money());
  if (!r.at_end()) return std::nullopt;
  return out;
}

}  // namespace dauct::serde
