// Minimal INI-style reader for declarative config text (scenario .scn files).
//
// Grammar (strict; anything else is an error with a line number):
//   [section]          — starts a new section entry; repeated names allowed
//                        and kept in file order ([crash] twice = two crashes)
//   key = value        — belongs to the current section; keys may repeat
//   # comment / ; comment — full-line comments; blank lines ignored
//
// Values are returned verbatim (trimmed); typed access and key validation
// belong to the consumer (runtime/scenario.cpp), which knows the schema.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

namespace dauct::serde {

struct IniKeyValue {
  std::string key;
  std::string value;
  std::size_t line = 0;  ///< 1-based source line, for error messages
};

struct IniSection {
  std::string name;
  std::size_t line = 0;
  std::vector<IniKeyValue> entries;

  /// Last value of `key`, or std::nullopt.
  std::optional<std::string> get(std::string_view key) const;
};

/// A parsed document: sections in file order. Keys before any [section]
/// header go into an implicit section with an empty name.
struct IniDoc {
  std::vector<IniSection> sections;
};

/// Parse or fail with a "line N: ..." message.
struct IniResult {
  std::optional<IniDoc> doc;
  std::string error;

  bool ok() const { return doc.has_value(); }
};

IniResult parse_ini(std::string_view text);

}  // namespace dauct::serde
