#include "serde/codec.hpp"

namespace dauct::serde {

void Writer::u8(std::uint8_t v) { buf_.push_back(v); }

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::boolean(bool v) { u8(v ? 1 : 0); }

void Writer::money(dauct::Money v) { i64(v.micros()); }

void Writer::bytes(BytesView v) {
  varint(v.size());
  raw(v);
}

void Writer::raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void Writer::str(std::string_view v) {
  varint(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

bool Reader::need(std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!need(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!need(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(data_[pos_]) |
                    static_cast<std::uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::int64_t Reader::i64() { return static_cast<std::int64_t>(u64()); }

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (!need(1)) return 0;
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0)) {
      ok_ = false;  // overflow
      return 0;
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) ok_ = false;
  return v == 1;
}

dauct::Money Reader::money() { return dauct::Money::from_micros(i64()); }

Bytes Reader::bytes() {
  const BytesView v = bytes_view();
  return Bytes(v.begin(), v.end());
}

Bytes Reader::raw(std::size_t len) {
  const BytesView v = raw_view(len);
  return Bytes(v.begin(), v.end());
}

std::string Reader::str() {
  const std::string_view v = str_view();
  return std::string(v);
}

BytesView Reader::bytes_view() {
  const std::uint64_t len = varint();
  if (!ok_ || len > remaining()) {
    ok_ = false;
    return {};
  }
  return raw_view(static_cast<std::size_t>(len));
}

BytesView Reader::raw_view(std::size_t len) {
  if (!need(len)) return {};
  const BytesView out = data_.subspan(pos_, len);
  pos_ += len;
  return out;
}

std::string_view Reader::str_view() {
  const BytesView v = bytes_view();
  if (v.empty()) return {};
  return std::string_view(reinterpret_cast<const char*>(v.data()), v.size());
}

}  // namespace dauct::serde
