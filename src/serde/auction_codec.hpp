// Wire encodings for auction model types.
//
// Two kinds of encoding:
//  * fixed-width bid encoding (20 bytes = 160 bits) — the "stream of bits
//    uniquely determined from b_i^j" that the bitwise bid agreement feeds one
//    bit at a time into rational-consensus instances;
//  * general variable-length encodings for vectors, allocations, payments and
//    results, used by data transfer / output agreement payloads.
//
// All decoders are defensive (untrusted input) and return std::nullopt on
// malformed bytes.
#pragma once

#include <optional>

#include "auction/types.hpp"
#include "auction/welfare.hpp"
#include "serde/codec.hpp"

namespace dauct::serde {

/// Fixed width of an encoded bid, in bytes (bidder u32 + value i64 + demand
/// i64). The bitwise bid agreement runs exactly 8× this many consensus
/// instances per bidder.
inline constexpr std::size_t kBidEncodingBytes = 20;

/// Fixed-width bid encoding (exactly kBidEncodingBytes bytes).
Bytes encode_bid_fixed(const auction::Bid& bid);
std::optional<auction::Bid> decode_bid_fixed(BytesView data);

/// Variable-length encodings.
void write_bid(Writer& w, const auction::Bid& bid);
std::optional<auction::Bid> read_bid(Reader& r);

Bytes encode_bid_vector(const std::vector<auction::Bid>& bids);
std::optional<std::vector<auction::Bid>> decode_bid_vector(BytesView data);

Bytes encode_ask_vector(const std::vector<auction::Ask>& asks);
std::optional<std::vector<auction::Ask>> decode_ask_vector(BytesView data);

Bytes encode_allocation(const auction::Allocation& x);
std::optional<auction::Allocation> decode_allocation(BytesView data);

Bytes encode_payments(const auction::Payments& p);
std::optional<auction::Payments> decode_payments(BytesView data);

Bytes encode_result(const auction::AuctionResult& r);
std::optional<auction::AuctionResult> decode_result(BytesView data);

Bytes encode_assignment(const auction::Assignment& a);
std::optional<auction::Assignment> decode_assignment(BytesView data);

/// A full auction instance (agreed bids + exchanged asks): the validated
/// allocator input.
Bytes encode_instance(const auction::AuctionInstance& instance);
std::optional<auction::AuctionInstance> decode_instance(BytesView data);

/// Money vector (used by payment-chunk data transfers).
Bytes encode_money_vector(const std::vector<dauct::Money>& v);
std::optional<std::vector<dauct::Money>> decode_money_vector(BytesView data);

}  // namespace dauct::serde
