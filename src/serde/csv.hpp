// Minimal CSV reader/writer for bid and ask files (CLI tool input/output).
//
// Format (header required, fields in order):
//   bids:  bidder,unit_value,demand
//   asks:  provider,unit_cost,capacity
// Values are decimals (converted to fixed-point Money). Parsing is strict:
// any malformed row yields an error message instead of a partial market.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "auction/types.hpp"

namespace dauct::serde {

/// Result of a CSV parse: value or a human-readable error.
template <typename T>
struct CsvResult {
  std::optional<T> value;
  std::string error;

  bool ok() const { return value.has_value(); }
};

/// Split one CSV line into fields (no quoting — numeric data only).
std::vector<std::string> csv_split(const std::string& line);

/// Parse a decimal string into Money. Rejects garbage and overflow.
std::optional<Money> parse_money(const std::string& text);

CsvResult<std::vector<auction::Bid>> parse_bids_csv(const std::string& content);
CsvResult<std::vector<auction::Ask>> parse_asks_csv(const std::string& content);

std::string bids_to_csv(const std::vector<auction::Bid>& bids);
std::string asks_to_csv(const std::vector<auction::Ask>& asks);

/// Render an auction result as CSV ("bidder,provider,amount,payment" rows
/// followed by "provider,revenue" rows), for piping into other tools.
std::string result_to_csv(const auction::AuctionInstance& instance,
                          const auction::AuctionResult& result);

}  // namespace dauct::serde
