#include "serde/bitstream.hpp"

namespace dauct::serde {

std::vector<bool> to_bits(BytesView data) {
  std::vector<bool> bits;
  bits.reserve(data.size() * 8);
  for (std::uint8_t b : data) {
    for (int i = 7; i >= 0; --i) bits.push_back(((b >> i) & 1) != 0);
  }
  return bits;
}

Bytes from_bits(const std::vector<bool>& bits) {
  Bytes out((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) out[i / 8] |= static_cast<std::uint8_t>(1u << (7 - i % 8));
  }
  return out;
}

}  // namespace dauct::serde
