#include "serde/ini_values.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace dauct::serde {

std::optional<std::uint64_t> parse_u64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return std::nullopt;
  return static_cast<std::uint64_t>(v);
}

std::optional<double> parse_f64(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v)) return std::nullopt;
  return v;
}

std::optional<bool> parse_bool_word(const std::string& s) {
  if (s == "true" || s == "yes" || s == "1") return true;
  if (s == "false" || s == "no" || s == "0") return false;
  return std::nullopt;
}

std::optional<std::int64_t> parse_time_ms(const std::string& s) {
  const auto v = parse_f64(s);
  if (!v || *v < 0) return std::nullopt;
  if (*v >= static_cast<double>(kForeverNs) / 1e6) return kForeverNs;
  return static_cast<std::int64_t>(std::llround(*v * 1e6));
}

std::optional<double> parse_probability(const std::string& s) {
  const auto v = parse_f64(s);
  if (!v || *v < 0.0 || *v > 1.0) return std::nullopt;
  return v;
}

std::string format_f64(double v) {
  char buf[32];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string format_time_ms(std::int64_t ns) {
  // Integer split: whole milliseconds plus a six-digit nanosecond fraction.
  // Pure integer arithmetic, so every SimTime round-trips exactly through
  // parse_time_ms (which llrounds ms·1e6 — within its double precision,
  // intact for every time a run can produce).
  const std::int64_t whole = ns / 1'000'000;
  std::int64_t frac = ns % 1'000'000;
  char buf[40];
  if (frac == 0) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(whole));
    return buf;
  }
  std::snprintf(buf, sizeof buf, "%lld.%06lld", static_cast<long long>(whole),
                static_cast<long long>(frac));
  std::string out = buf;
  while (out.back() == '0') out.pop_back();
  return out;
}

}  // namespace dauct::serde
