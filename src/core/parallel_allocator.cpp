#include "core/parallel_allocator.hpp"

#include <algorithm>

#include "serde/auction_codec.hpp"

namespace dauct::core {

namespace {
std::string task_prefix(const std::string& prefix, TaskId id) {
  return blocks::topic_join(prefix, "dt/" + std::to_string(id));
}
}  // namespace

ParallelAllocator::ParallelAllocator(blocks::Endpoint& endpoint,
                                     std::string topic_prefix, TaskGraph graph,
                                     std::size_t k)
    : endpoint_(endpoint),
      prefix_(std::move(topic_prefix)),
      graph_(std::move(graph)),
      k_(k),
      input_validation_(endpoint_, blocks::topic_join(prefix_, "iv")),
      coin_(endpoint_, blocks::topic_join(prefix_, "coin")),
      output_agreement_(endpoint_, blocks::topic_join(prefix_, "out")) {
  states_.resize(graph_.size());
  // Transfer blocks exist from the start: their messages may arrive before
  // this provider has made local progress.
  for (TaskId t = 0; t < graph_.size(); ++t) {
    if (!graph_.needs_transfer(t)) continue;
    std::vector<NodeId> receivers = graph_.recipients(t);
    // Everyone in executors ∪ recipients participates; executors double as
    // receivers so the redundant copies are cross-checked everywhere.
    std::vector<NodeId> all_receivers = receivers;
    const auto& exec = graph_.task(t).executors;
    all_receivers.insert(all_receivers.end(), exec.begin(), exec.end());
    std::sort(all_receivers.begin(), all_receivers.end());
    all_receivers.erase(std::unique(all_receivers.begin(), all_receivers.end()),
                        all_receivers.end());
    states_[t].transfer = std::make_unique<blocks::DataTransfer>(
        endpoint_, task_prefix(prefix_, t), exec, all_receivers);
  }
}

void ParallelAllocator::start(Bytes input) {
  input_validation_.start(std::move(input));
  if (input_validation_.done()) {
    const auto& r = *input_validation_.result();
    if (r.is_bottom()) {
      abort(r.bottom());
    } else {
      on_input_validated(r.value());
    }
  }
}

void ParallelAllocator::abort(const Bottom& bottom) {
  if (!result_) result_ = Outcome<Bytes>(bottom);
}

void ParallelAllocator::on_input_validated(Bytes input) {
  auto instance = serde::decode_instance(BytesView(input));
  if (!instance) {
    abort(Bottom{AbortReason::kProtocolViolation, "undecodable allocator input"});
    return;
  }
  instance_ = std::move(*instance);
  context_.instance = &instance_;
  context_.m = endpoint_.num_providers();
  context_.k = k_;
  // One coin flip supplies the shared randomness tape for the whole run.
  coin_.start(blocks::DistributionSpec::seed64());
}

void ParallelAllocator::on_coin(std::uint64_t seed) {
  context_.shared_seed = seed;
  tasks_running_ = true;
  progress();
}

void ParallelAllocator::progress() {
  if (result_ || !tasks_running_) return;
  const NodeId self = endpoint_.self();

  bool advanced = true;
  while (advanced && !result_) {
    advanced = false;
    for (TaskId t = 0; t < graph_.size(); ++t) {
      TaskState& st = states_[t];
      const TaskSpec& spec = graph_.task(t);
      const bool is_executor =
          std::binary_search(spec.executors.begin(), spec.executors.end(), self);

      // Compute locally when all dependencies are satisfied.
      if (!st.computed && is_executor && !st.local_result) {
        bool ready = true;
        std::vector<Bytes> dep_results;
        dep_results.reserve(spec.deps.size());
        for (TaskId d : spec.deps) {
          if (!states_[d].local_result) {
            ready = false;
            break;
          }
          dep_results.push_back(*states_[d].local_result);
        }
        if (ready) {
          st.local_result = spec.compute(dep_results, context_);
          st.computed = true;
          advanced = true;
        }
      }

      // Ship the result to consumers once computed.
      if (st.transfer && st.local_result && st.computed && !st.transfer_started &&
          st.transfer->is_source()) {
        st.transfer_started = true;
        st.transfer->start(*st.local_result);
        advanced = true;
      }
      // Pure receivers / bystanders arm their transfer immediately.
      if (st.transfer && !st.transfer_started && !st.transfer->is_source()) {
        st.transfer_started = true;
        st.transfer->start(std::nullopt);
        advanced = true;
      }
      // Adopt a completed transfer's value.
      if (st.transfer && st.transfer->done() && !st.local_result) {
        const auto& r = *st.transfer->result();
        if (r.is_bottom()) {
          abort(r.bottom());
          return;
        }
        if (st.transfer->is_receiver()) {
          st.local_result = r.value();
          advanced = true;
        }
      }
      // A completed transfer can also carry ⊥ for executors (mismatch).
      if (st.transfer && st.transfer->done() && st.transfer->result()->is_bottom()) {
        abort(st.transfer->result()->bottom());
        return;
      }
    }
  }

  // Final step: agree on the sink result.
  const TaskId sink = graph_.sink();
  if (!output_started_ && states_[sink].local_result) {
    output_started_ = true;
    output_agreement_.start(*states_[sink].local_result);
    if (output_agreement_.done()) {
      const auto& r = *output_agreement_.result();
      if (r.is_bottom()) {
        abort(r.bottom());
      } else {
        result_ = Outcome<Bytes>(r.value());
      }
    }
  }
}

bool ParallelAllocator::handle(const net::Message& msg) {
  if (!blocks::topic_has_prefix(msg.topic.str(), prefix_)) return false;

  if (input_validation_.handle(msg)) {
    if (input_validation_.done() && !tasks_running_ && !result_ &&
        context_.instance == nullptr) {
      const auto& r = *input_validation_.result();
      if (r.is_bottom()) {
        abort(r.bottom());
      } else {
        on_input_validated(r.value());
      }
    }
    return true;
  }

  if (coin_.handle(msg)) {
    if (coin_.done() && !tasks_running_ && !result_) {
      const auto& r = *coin_.result();
      if (r.is_bottom()) {
        abort(r.bottom());
      } else {
        on_coin(r.value().raw);
      }
    }
    return true;
  }

  for (TaskId t = 0; t < graph_.size(); ++t) {
    if (states_[t].transfer && states_[t].transfer->handle(msg)) {
      progress();
      return true;
    }
  }

  if (output_agreement_.handle(msg)) {
    if (output_agreement_.done() && !result_) {
      const auto& r = *output_agreement_.result();
      if (r.is_bottom()) {
        abort(r.bottom());
      } else if (output_started_) {
        result_ = Outcome<Bytes>(r.value());
      }
    }
    return true;
  }

  return false;
}

}  // namespace dauct::core
