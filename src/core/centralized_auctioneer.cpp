#include "core/centralized_auctioneer.hpp"

#include <cassert>

namespace dauct::core {

CentralizedAuctioneer::CentralizedAuctioneer(
    std::shared_ptr<const AuctionAdapter> adapter)
    : adapter_(std::move(adapter)) {
  assert(adapter_ != nullptr);
}

auction::AuctionResult CentralizedAuctioneer::run(
    const auction::AuctionInstance& instance, std::uint64_t seed) const {
  return adapter_->run_centralized(instance, seed);
}

}  // namespace dauct::core
