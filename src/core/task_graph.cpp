#include "core/task_graph.hpp"

#include <algorithm>
#include <cassert>

namespace dauct::core {

void TaskGraph::add_task(TaskSpec spec) {
  assert(spec.id == tasks_.size() && "tasks must be added in id order");
  tasks_.push_back(std::move(spec));
}

bool TaskGraph::needs_transfer(TaskId id) const {
  const auto& rec = recipients_.at(id);
  const auto& exec = tasks_.at(id).executors;
  // Both sorted: transfer needed iff some recipient is not an executor.
  return !std::includes(exec.begin(), exec.end(), rec.begin(), rec.end());
}

std::optional<std::string> TaskGraph::validate(std::size_t m, std::size_t k) {
  if (tasks_.empty()) return "empty task graph";

  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const TaskSpec& t = tasks_[i];
    if (t.id != i) return "non-dense task ids";
    if (!t.compute) return "task '" + t.name + "' has no compute function";
    if (t.executors.empty()) return "task '" + t.name + "' has no executors";
    if (!std::is_sorted(t.executors.begin(), t.executors.end())) {
      return "task '" + t.name + "' executors not sorted";
    }
    if (std::adjacent_find(t.executors.begin(), t.executors.end()) !=
        t.executors.end()) {
      return "task '" + t.name + "' has duplicate executors";
    }
    if (t.executors.back() >= m) return "task '" + t.name + "' executor out of range";
    if (t.executors.size() < k + 1) {
      return "task '" + t.name + "' has fewer than k+1 executors";
    }
    for (TaskId d : t.deps) {
      if (d >= t.id) return "task '" + t.name + "' depends on a later task (cycle)";
    }
  }

  // Recipients: union of executors of dependents.
  recipients_.assign(tasks_.size(), {});
  std::vector<bool> has_dependent(tasks_.size(), false);
  for (const TaskSpec& t : tasks_) {
    for (TaskId d : t.deps) {
      has_dependent[d] = true;
      auto& rec = recipients_[d];
      rec.insert(rec.end(), t.executors.begin(), t.executors.end());
    }
  }
  for (auto& rec : recipients_) {
    std::sort(rec.begin(), rec.end());
    rec.erase(std::unique(rec.begin(), rec.end()), rec.end());
  }

  // Exactly one sink, executed by all providers.
  std::size_t sinks = 0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    if (!has_dependent[i]) {
      ++sinks;
      sink_ = static_cast<TaskId>(i);
    }
  }
  if (sinks != 1) return "task graph must have exactly one sink";
  if (tasks_[sink_].executors.size() != m) {
    return "the sink task must be executed by all providers";
  }
  return std::nullopt;
}

std::vector<std::vector<NodeId>> assign_groups(std::size_t m,
                                               [[maybe_unused]] std::size_t k,
                                               std::size_t c) {
  assert(c >= 1 && c <= max_parallelism(m, k));
  std::vector<std::vector<NodeId>> groups(c);
  const std::size_t base = m / c;
  const std::size_t extra = m % c;
  NodeId next = 0;
  for (std::size_t g = 0; g < c; ++g) {
    const std::size_t size = base + (g < extra ? 1 : 0);
    for (std::size_t i = 0; i < size; ++i) groups[g].push_back(next++);
  }
  assert(next == m);
  for ([[maybe_unused]] const auto& g : groups) assert(g.size() >= k + 1);
  return groups;
}

std::size_t max_parallelism(std::size_t m, std::size_t k) { return m / (k + 1); }

}  // namespace dauct::core
