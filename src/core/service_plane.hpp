// Instance multiplexing for the multi-auction service plane.
//
// The paper's protocol clears one double auction; the service plane runs a
// *stream* of them over one set of provider nodes and one transport stack.
// This header holds the two primitives every layer above agrees on:
//
//  * seed derivation — instance i of a service run with base seed S behaves
//    exactly like a standalone run with seed derive_instance_seed(S, i).
//    Instance 0 keeps the base seed unchanged, which is what makes a
//    one-instance service run *byte-identical* to the classic single-auction
//    runtime (pinned against the golden fingerprints in service_test).
//
//  * topic scoping — each live instance owns a topic namespace "i<slot>g<gen>/"
//    prepended to every protocol topic. The slot is the instance's pipeline
//    lane (instance % depth), reused as instances retire so the global
//    append-only topic registry stays O(depth · topics), not O(instances ·
//    topics); the generation disambiguates successive tenants of one slot so
//    a straggler frame from a settled instance can never be demultiplexed
//    into its successor. ScopedEndpoint applies the mapping transparently
//    under the engine: protocol blocks keep speaking base topics, the shared
//    transport (signer, reliability link, WAL, wire) sees scoped ones — so
//    dedup keys, signature transcripts, and log records are instance-tagged
//    for free. Full lifecycle: docs/SERVICE.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "blocks/block.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/rng.hpp"
#include "net/topic.hpp"

namespace dauct::core {

/// Position of an auction instance in the service stream (0-based).
using InstanceId = std::uint64_t;

/// The run seed a standalone single-auction run would use to reproduce
/// instance `i` of a service run seeded with `base_seed`. Instance 0 is the
/// identity (byte-compatibility with the classic runtime); later instances
/// get an sha256-mixed seed so their workloads and coin streams are
/// independent draws, yet each is replayable on its own.
std::uint64_t derive_instance_seed(std::uint64_t base_seed, InstanceId i);

/// The topic-namespace prefix of pipeline slot `slot`, generation `gen`
/// ("i2g0/"). Generations cycle as slots are re-tenanted; the service
/// runtime picks the cycle length (docs/SERVICE.md).
std::string instance_topic_prefix(std::size_t slot, std::uint64_t gen);

/// Endpoint wrapper giving one auction instance its own topic namespace and
/// its own RNG stream over a *shared* per-node transport chain.
///
/// Outbound, every topic is rewritten base → scoped through the instance's
/// sub-registry; the reliability layer's re-request frames ("rl/rreq", whose
/// payload *names* a round topic as bytes) keep their control topic but have
/// the payload rewritten, so a peer's shared link finds the scoped entry in
/// its sent cache. rng() serves the instance's private stream — seeded like
/// the standalone run's per-node endpoint RNG, which is what makes each
/// instance's coin flips (the only protocol consumer of endpoint RNG) equal
/// to its single-run twin's. With a null registry the wrapper is a pure
/// pass-through (single-instance byte-identity).
class ScopedEndpoint final : public blocks::Endpoint {
 public:
  ScopedEndpoint(blocks::Endpoint& inner,
                 std::shared_ptr<net::ScopedTopicRegistry> topics,
                 std::uint64_t rng_seed)
      : inner_(inner), topics_(std::move(topics)), rng_(rng_seed) {}

  NodeId self() const override { return inner_.self(); }
  std::size_t num_providers() const override { return inner_.num_providers(); }
  crypto::Rng& rng() override { return rng_; }
  bool schedule_after(std::int64_t delay_ns,
                      std::function<void()> fn) override {
    return inner_.schedule_after(delay_ns, std::move(fn));
  }
  std::int64_t round_timeout() const override { return inner_.round_timeout(); }

  void send(NodeId to, const net::Topic& topic, SharedBytes payload) override;

 private:
  blocks::Endpoint& inner_;
  std::shared_ptr<net::ScopedTopicRegistry> topics_;  ///< null = identity
  crypto::Rng rng_;
};

}  // namespace dauct::core
