// Public API of the distributed auctioneer framework.
//
// A DistributedAuctioneer bundles the framework configuration (m, k, bid
// limits, agreement mode) with an auction adapter, creates the per-provider
// protocol engines, and derives the *global* outcome from the per-provider
// outputs (§3.2: "the outcome is (x, p⃗) if all providers output this pair,
// otherwise the outcome is ⊥").
//
// Engines are transport-agnostic; runtimes (runtime/sim_runtime.hpp — the
// deterministic virtual-time simulator; runtime/thread_runtime.hpp — real
// threads; runtime/tcp_runtime.hpp — real sockets) wire them to a network.
//
// Quick start:
//
//   auto adapter = std::make_shared<core::DoubleAuctionAdapter>();
//   core::DistributedAuctioneer auctioneer(
//       core::AuctioneerSpec{.m = 5, .k = 2, .num_bidders = 10}, adapter);
//   runtime::SimRuntime runtime(runtime::SimRunConfig{});
//   auto run = runtime.run_distributed(auctioneer, instance);
//   if (run.global_outcome.ok()) { ... run.global_outcome.value() ... }
#pragma once

#include <memory>
#include <span>

#include "core/adapters.hpp"
#include "core/provider_engine.hpp"

namespace dauct::core {

/// Top-level configuration of a distributed auction.
struct AuctioneerSpec {
  std::size_t m = 8;            ///< number of providers; must be > 2k
  std::size_t k = 1;            ///< resilience bound (coalition size)
  std::size_t num_bidders = 0;  ///< bidder slots
  auction::BidLimits limits;
  blocks::AgreementMode agreement_mode = blocks::AgreementMode::kValueBatched;
};

class DistributedAuctioneer {
 public:
  /// Throws std::invalid_argument if the spec is inconsistent (m ≤ 2k, no
  /// bidders, null adapter) or the adapter produces an invalid task graph.
  DistributedAuctioneer(AuctioneerSpec spec,
                        std::shared_ptr<const AuctionAdapter> adapter);

  const AuctioneerSpec& spec() const { return spec_; }
  const AuctionAdapter& adapter() const { return *adapter_; }
  std::shared_ptr<const AuctionAdapter> adapter_ptr() const { return adapter_; }

  /// The engine configuration derived from the spec.
  EngineConfig engine_config() const;

  /// Create the protocol engine of provider `my_ask.provider` over
  /// `endpoint`.
  std::unique_ptr<ProviderEngine> make_engine(blocks::Endpoint& endpoint,
                                              auction::Ask my_ask) const;

  /// Maximum parallelism p = ⌊m/(k+1)⌋ for this spec.
  std::size_t parallelism() const;

 private:
  AuctioneerSpec spec_;
  std::shared_ptr<const AuctionAdapter> adapter_;
};

/// Derive the global outcome from per-provider outputs: (x, p⃗) iff every
/// provider produced that same pair; ⊥ otherwise (§3.2).
auction::AuctionOutcome combine_outcomes(
    std::span<const auction::AuctionOutcome> per_provider);

}  // namespace dauct::core
