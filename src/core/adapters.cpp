#include "core/adapters.hpp"

#include <numeric>

#include "auction/double_auction.hpp"
#include "serde/auction_codec.hpp"

namespace dauct::core {

namespace {

std::vector<NodeId> all_providers(std::size_t m) {
  std::vector<NodeId> v(m);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Double auction: one task, no parallelism, no data transfer.
// ---------------------------------------------------------------------------

TaskGraph DoubleAuctionAdapter::build(std::size_t /*num_bidders*/, std::size_t m,
                                      std::size_t /*k*/) const {
  TaskGraph g;
  TaskSpec run;
  run.id = 0;
  run.name = "double-auction/run";
  run.executors = all_providers(m);
  run.compute = [](const std::vector<Bytes>&, const TaskContext& ctx) {
    return serde::encode_result(auction::run_double_auction(*ctx.instance));
  };
  g.add_task(std::move(run));
  return g;
}

auction::AuctionResult DoubleAuctionAdapter::run_centralized(
    const auction::AuctionInstance& instance, std::uint64_t /*seed*/) const {
  return auction::run_double_auction(instance);
}

// ---------------------------------------------------------------------------
// Standard auction: Algorithm 1's three-step task graph.
// ---------------------------------------------------------------------------

StandardAuctionAdapter::StandardAuctionAdapter(auction::StandardAuctionParams params,
                                               std::size_t groups)
    : params_(params), groups_(groups) {}

TaskGraph StandardAuctionAdapter::build(std::size_t num_bidders, std::size_t m,
                                        std::size_t k) const {
  const std::size_t c = groups_ == 0 ? max_parallelism(m, k) : groups_;
  const auto groups = assign_groups(m, k, c);
  const auto params = params_;  // copied into compute closures
  const std::size_t n = num_bidders;

  TaskGraph g;

  // Task 1: the allocation (hard to parallelise → all providers run it).
  TaskSpec t1;
  t1.id = 0;
  t1.name = "standard/allocate";
  t1.executors = all_providers(m);
  t1.compute = [params](const std::vector<Bytes>&, const TaskContext& ctx) {
    auto p = params;
    p.seed = ctx.shared_seed;
    return serde::encode_assignment(auction::standard_allocate(*ctx.instance, p));
  };
  g.add_task(std::move(t1));

  // Tasks 2.g: the payment chunks, one per provider group. Group g computes
  // the Clarke payments of users {i : i ≡ g (mod c)} — a *strided* split, so
  // the expensive users (winners, whose payments need a welfare re-solve)
  // spread evenly over the groups and the parallel makespan tracks the mean
  // group load instead of the worst contiguous cluster.
  for (std::size_t gi = 0; gi < c; ++gi) {
    TaskSpec t2;
    t2.id = static_cast<TaskId>(1 + gi);
    t2.name = "standard/payments/" + std::to_string(gi);
    t2.deps = {0};
    t2.executors = groups[gi];
    t2.compute = [params, gi, c, n](const std::vector<Bytes>& deps,
                                    const TaskContext& ctx) -> Bytes {
      auto assignment = serde::decode_assignment(BytesView(deps[0]));
      if (!assignment) return {};  // diverging bytes → caught by transfer/output
      auto p = params;
      p.seed = ctx.shared_seed;
      std::vector<Money> chunk;
      for (std::size_t i = gi; i < n; i += c) {
        chunk.push_back(auction::standard_payment(*ctx.instance, p, *assignment,
                                                  static_cast<BidderId>(i)));
      }
      return serde::encode_money_vector(chunk);
    };
    g.add_task(std::move(t2));
  }

  // Task 3: gather everything and emit (x, p⃗).
  TaskSpec t3;
  t3.id = static_cast<TaskId>(1 + c);
  t3.name = "standard/assemble";
  t3.deps.resize(1 + c);
  std::iota(t3.deps.begin(), t3.deps.end(), 0);
  t3.executors = all_providers(m);
  t3.compute = [c, n](const std::vector<Bytes>& deps,
                      const TaskContext& ctx) -> Bytes {
    auto assignment = serde::decode_assignment(BytesView(deps[0]));
    if (!assignment) return {};
    std::vector<Money> payments(n, kZeroMoney);
    for (std::size_t gi = 0; gi < c; ++gi) {
      auto chunk = serde::decode_money_vector(BytesView(deps[1 + gi]));
      if (!chunk) return {};
      for (std::size_t j = 0; j < chunk->size(); ++j) {
        const std::size_t i = gi + j * c;  // strided split (see Task 2.g)
        if (i < n) payments[i] = (*chunk)[j];
      }
    }
    return serde::encode_result(
        auction::standard_assemble(*ctx.instance, *assignment, payments));
  };
  g.add_task(std::move(t3));
  return g;
}

auction::AuctionResult StandardAuctionAdapter::run_centralized(
    const auction::AuctionInstance& instance, std::uint64_t seed) const {
  auto p = params_;
  p.seed = seed;
  return auction::run_standard_auction(instance, p);
}

}  // namespace dauct::core
