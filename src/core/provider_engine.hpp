// Provider engine: the full per-provider protocol (paper Fig. 1).
//
// Chains the framework's two blocks — Bid Agreement and (Parallel)
// Allocator — plus two practical rounds:
//  * ask exchange: providers broadcast their own asks (they are bidders too
//    in the double auction; in the standard auction the ask carries the
//    capacity). Ask equivocation is caught downstream by input validation.
//  * abort fan-out: a provider whose local outcome is ⊥ notifies everyone,
//    so correct providers terminate promptly instead of waiting on a round
//    that will never complete. (A malicious abort can only force ⊥, which a
//    coalition can do anyway; it zeroes everyone's utility, including its
//    own — the solution-preference argument.)
#pragma once

#include <optional>

#include "auction/types.hpp"
#include "blocks/bid_agreement.hpp"
#include "blocks/block.hpp"
#include "core/adapters.hpp"
#include "core/parallel_allocator.hpp"

namespace dauct::core {

struct EngineConfig {
  std::size_t m = 0;           ///< providers (must be > 2k)
  std::size_t k = 1;           ///< max coalition size
  std::size_t num_bidders = 0;
  auction::BidLimits limits;
  blocks::AgreementMode agreement_mode = blocks::AgreementMode::kValueBatched;
};

class ProviderEngine {
 public:
  /// Builds and validates the task graph from `adapter` (throws
  /// std::invalid_argument on an invalid graph or m ≤ 2k).
  ProviderEngine(blocks::Endpoint& endpoint, const EngineConfig& config,
                 const AuctionAdapter& adapter, auction::Ask my_ask);

  /// Begin with the bids this provider received from the bidders (one slot
  /// per bidder; neutral bid where nothing valid arrived).
  void start(const std::vector<auction::Bid>& my_bids);

  void on_message(const net::Message& msg);

  /// Abort from outside the message flow (the reliability layer's give-up
  /// path: a peer stayed unreachable through every retransmit). Broadcasts
  /// the abort like any local ⊥; a no-op once an outcome is decided.
  void abort(Bottom bottom) { local_abort(std::move(bottom)); }

  bool done() const { return outcome_.has_value(); }
  const std::optional<auction::AuctionOutcome>& outcome() const { return outcome_; }

  /// The agreed bid vector (valid after bid agreement; tests/metrics).
  const std::optional<std::vector<auction::Bid>>& agreed_bids() const {
    return agreed_bids_;
  }

 private:
  void maybe_start_allocator();
  void finish_from_allocator();
  void local_abort(Bottom bottom);

  blocks::Endpoint& endpoint_;
  EngineConfig config_;
  auction::Ask my_ask_;

  blocks::BidAgreement bid_agreement_;
  ParallelAllocator allocator_;

  // Ask exchange round.
  net::Topic ask_topic_;
  blocks::RoundCollector asks_;
  std::vector<auction::Ask> ask_vector_;

  // Abort fan-out.
  net::Topic abort_topic_;
  bool abort_sent_ = false;

  bool allocator_started_ = false;
  std::optional<std::vector<auction::Bid>> agreed_bids_;
  std::optional<auction::AuctionOutcome> outcome_;
};

}  // namespace dauct::core
