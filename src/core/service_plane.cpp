#include "core/service_plane.hpp"

#include <cstring>

#include "crypto/sha256.hpp"
#include "net/message.hpp"

namespace dauct::core {

std::uint64_t derive_instance_seed(std::uint64_t base_seed, InstanceId i) {
  if (i == 0) return base_seed;  // identity: single-instance byte-compat
  // sha256 over a domain tag + (seed, i) little-endian; first 8 bytes LE.
  // A hash (not an xor/LCG mix) so adjacent instances share no structure a
  // workload generator could accidentally resonate with.
  std::uint8_t buf[14 + 8 + 8];
  std::memcpy(buf, "dauct-svc-seed", 14);
  for (int b = 0; b < 8; ++b) {
    buf[14 + b] = static_cast<std::uint8_t>(base_seed >> (8 * b));
    buf[22 + b] = static_cast<std::uint8_t>(i >> (8 * b));
  }
  const crypto::Digest d = crypto::sha256(BytesView(buf, sizeof buf));
  std::uint64_t seed = 0;
  for (int b = 7; b >= 0; --b) seed = (seed << 8) | d[b];
  return seed;
}

std::string instance_topic_prefix(std::size_t slot, std::uint64_t gen) {
  std::string out;
  out.reserve(8);
  out.push_back('i');
  out.append(std::to_string(slot));
  out.push_back('g');
  out.append(std::to_string(gen));
  out.push_back('/');
  return out;
}

void ScopedEndpoint::send(NodeId to, const net::Topic& topic,
                          SharedBytes payload) {
  if (!topics_) {  // identity scope: the classic single-auction wire format
    inner_.send(to, topic, std::move(payload));
    return;
  }
  static const net::Topic rreq(net::kRetransmitRequestTopicName);
  if (topic == rreq) {
    // Round-watchdog re-request: control topic stays unscoped (the link
    // consumes it), but the payload names the round topic the block is
    // missing — rewrite it so the peer's shared sent cache, which is keyed
    // by scoped topics, can answer. The one-byte "*" rejoin wildcard (and
    // any other non-topic payload) passes through untouched.
    const BytesView v = payload.view();
    if (v.size() == 1 && v[0] == '*') {
      inner_.send(to, topic, std::move(payload));
      return;
    }
    const std::string scoped = topics_->scope_name(
        std::string_view(reinterpret_cast<const char*>(v.data()), v.size()));
    inner_.send(to, topic, SharedBytes(Bytes(scoped.begin(), scoped.end())));
    return;
  }
  inner_.send(to, topics_->scope(topic), std::move(payload));
}

}  // namespace dauct::core
