// Task-graph decomposition of the allocation algorithm A (paper §4.2, Fig. 2).
//
// "it is useful to characterise the execution of A in terms of a graph of
//  tasks, where nodes correspond to tasks to be executed in sequence and
//  edges represent data dependencies … every two tasks that are not ordered
//  can be executed in parallel by different providers. To cope with
//  collusion, each task T is assigned to a set S of at least k+1 providers."
//
// A TaskGraph is built per auction by an adapter (core/adapters.hpp); the
// ParallelAllocator executes it. Task compute functions are deterministic
// pure functions of (dependency results, TaskContext) — replicas must produce
// bit-identical bytes.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "auction/types.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"

namespace dauct::core {

/// Ambient data available to every task: the agreed auction instance and the
/// shared randomness drawn by the common coin.
struct TaskContext {
  const auction::AuctionInstance* instance = nullptr;
  std::uint64_t shared_seed = 0;  ///< common-coin output
  std::size_t m = 0;              ///< number of providers
  std::size_t k = 0;              ///< maximum coalition size
};

/// Deterministic task body: dependency results (ordered as `deps`) → bytes.
using TaskFn = std::function<Bytes(const std::vector<Bytes>&, const TaskContext&)>;

struct TaskSpec {
  TaskId id = 0;
  std::string name;
  std::vector<TaskId> deps;       ///< tasks whose results this task consumes
  std::vector<NodeId> executors;  ///< sorted; |executors| ≥ k+1
  TaskFn compute;
};

class TaskGraph {
 public:
  /// Tasks must be added in id order starting at 0.
  void add_task(TaskSpec spec);

  const std::vector<TaskSpec>& tasks() const { return tasks_; }
  const TaskSpec& task(TaskId id) const { return tasks_.at(id); }
  std::size_t size() const { return tasks_.size(); }

  /// The unique sink task (the paper's "final task that depends on all other
  /// tasks, where all providers gather"). Valid after validate().
  TaskId sink() const { return sink_; }

  /// Providers that consume the result of `id` (union of executors of
  /// dependent tasks), sorted. The sink has no recipients (the output-
  /// agreement block distributes/validates the final result).
  const std::vector<NodeId>& recipients(TaskId id) const {
    return recipients_.at(id);
  }

  /// True if `id`'s result must be shipped by data transfer (some recipient
  /// is not an executor).
  bool needs_transfer(TaskId id) const;

  /// Check structural invariants; returns an error string or std::nullopt.
  ///  * ids dense, deps refer to earlier-validated tasks, acyclic by
  ///    construction (deps must have smaller ids);
  ///  * every executor set is sorted, non-empty, within [0, m), size ≥ k+1;
  ///  * exactly one sink; the sink is executed by all m providers and is
  ///    reachable from every other task.
  std::optional<std::string> validate(std::size_t m, std::size_t k);

 private:
  std::vector<TaskSpec> tasks_;
  std::vector<std::vector<NodeId>> recipients_;
  TaskId sink_ = 0;
};

/// Partition providers 0..m-1 into c groups of size ≥ k+1 each (used for the
/// parallel payment tasks; the paper: "we group the providers into c groups,
/// each containing at least k+1 providers"). Requires c ≤ ⌊m/(k+1)⌋ and
/// c ≥ 1. Groups are contiguous id ranges with remainders spread over the
/// first groups.
std::vector<std::vector<NodeId>> assign_groups(std::size_t m, std::size_t k,
                                               std::size_t c);

/// The maximum parallelism level p = ⌊m/(k+1)⌋ (paper §6).
std::size_t max_parallelism(std::size_t m, std::size_t k);

}  // namespace dauct::core
