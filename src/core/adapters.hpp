// Auction adapters: bind concrete auction algorithms A to the framework.
//
// An adapter provides (a) the task-graph decomposition of A for the parallel
// allocator and (b) the centralized reference execution (what a trusted
// auctioneer would run). The two must produce identical results for the same
// inputs and seed — a correctness property the integration tests check
// (Definition 1: the simulation outputs (x, p) with probability A(x, p | b⃗)).
#pragma once

#include <memory>
#include <string>

#include "auction/standard_auction.hpp"
#include "auction/types.hpp"
#include "core/task_graph.hpp"

namespace dauct::core {

class AuctionAdapter {
 public:
  virtual ~AuctionAdapter() = default;

  virtual std::string name() const = 0;

  /// Task-graph decomposition for n bidders, m providers, coalition bound k.
  virtual TaskGraph build(std::size_t num_bidders, std::size_t m,
                          std::size_t k) const = 0;

  /// The trusted-auctioneer execution (the baseline the simulation must
  /// reproduce distribution-for-distribution).
  virtual auction::AuctionResult run_centralized(const auction::AuctionInstance& instance,
                                                 std::uint64_t seed) const = 0;
};

/// Double auction (§5.2.1): a single task executed by all providers — the
/// algorithm is sort-dominated, so "decomposing its execution into parallel
/// tasks does not provide a performance gain"; the framework's building
/// blocks are pure overhead (the Fig. 4 worst case).
class DoubleAuctionAdapter final : public AuctionAdapter {
 public:
  std::string name() const override { return "double-auction"; }
  TaskGraph build(std::size_t num_bidders, std::size_t m, std::size_t k) const override;
  auction::AuctionResult run_centralized(const auction::AuctionInstance& instance,
                                         std::uint64_t seed) const override;
};

/// Standard auction (§5.2.2, Algorithm 1): Task 1 computes the allocation at
/// every provider; Tasks 2.g compute the VCG payments of a 1/c chunk of the
/// users at each of the c provider groups (|group| ≥ k+1) in parallel;
/// Task 3 gathers everything and emits (x, p⃗).
class StandardAuctionAdapter final : public AuctionAdapter {
 public:
  /// `params.seed` is ignored — the shared seed comes from the common coin
  /// at run time. `groups` = 0 selects the maximum parallelism ⌊m/(k+1)⌋.
  explicit StandardAuctionAdapter(auction::StandardAuctionParams params,
                                  std::size_t groups = 0);

  std::string name() const override { return "standard-auction"; }
  TaskGraph build(std::size_t num_bidders, std::size_t m, std::size_t k) const override;
  auction::AuctionResult run_centralized(const auction::AuctionInstance& instance,
                                         std::uint64_t seed) const override;

  const auction::StandardAuctionParams& params() const { return params_; }

 private:
  auction::StandardAuctionParams params_;
  std::size_t groups_;
};

}  // namespace dauct::core
