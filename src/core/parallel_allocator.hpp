// Parallel Allocator (paper §4.2, Fig. 3; Property 2).
//
// Executes the allocation algorithm A, decomposed into a task graph, at one
// provider. The block chain is:
//
//   Input Validation (all providers hold the same input bytes)
//     → Common Coin (one flip providing the shared randomness seed)
//       → task execution (each task computed by its ≥ k+1 executors;
//         results shipped to consumers with Data Transfer, which aborts on
//         any divergence between the redundant copies)
//         → Output Agreement (digests of the final result cross-validated).
//
// Any block ⊥ collapses the allocator to ⊥. Property 2 is established by
// the per-block properties exactly as in the paper's Theorem 2.
#pragma once

#include <map>
#include <memory>

#include "blocks/block.hpp"
#include "blocks/common_coin.hpp"
#include "blocks/data_transfer.hpp"
#include "blocks/input_validation.hpp"
#include "blocks/output_agreement.hpp"
#include "core/task_graph.hpp"

namespace dauct::core {

class ParallelAllocator {
 public:
  /// `graph` must have been validated for (m, k). `decode_input` turns the
  /// validated input bytes into the AuctionInstance the task context exposes;
  /// it returns false on malformed input (→ ⊥, an honest provider never
  /// feeds malformed bytes to its own allocator).
  ParallelAllocator(blocks::Endpoint& endpoint, std::string topic_prefix,
                    TaskGraph graph, std::size_t k);

  /// Start with this provider's input bytes (the agreed bids + asks).
  void start(Bytes input);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  /// The final task's result bytes, or ⊥.
  const std::optional<Outcome<Bytes>>& result() const { return result_; }

  /// The coin value used (valid once past the coin phase; tests/metrics).
  std::uint64_t shared_seed() const { return context_.shared_seed; }

 private:
  struct TaskState {
    std::optional<Bytes> local_result;
    bool computed = false;
    bool transfer_started = false;
    std::unique_ptr<blocks::DataTransfer> transfer;
  };

  void on_input_validated(Bytes input);
  void on_coin(std::uint64_t seed);
  void progress();
  void abort(const Bottom& bottom);

  blocks::Endpoint& endpoint_;
  std::string prefix_;
  TaskGraph graph_;
  std::size_t k_;

  blocks::InputValidation input_validation_;
  blocks::CommonCoin coin_;
  blocks::OutputAgreement output_agreement_;

  auction::AuctionInstance instance_;
  TaskContext context_;
  std::vector<TaskState> states_;
  bool tasks_running_ = false;
  bool output_started_ = false;
  std::optional<Outcome<Bytes>> result_;
};

}  // namespace dauct::core
