#include "core/distributed_auctioneer.hpp"

#include <stdexcept>

namespace dauct::core {

DistributedAuctioneer::DistributedAuctioneer(
    AuctioneerSpec spec, std::shared_ptr<const AuctionAdapter> adapter)
    : spec_(spec), adapter_(std::move(adapter)) {
  if (!adapter_) throw std::invalid_argument("DistributedAuctioneer: null adapter");
  if (spec_.m <= 2 * spec_.k) {
    throw std::invalid_argument("DistributedAuctioneer: requires m > 2k");
  }
  if (spec_.num_bidders == 0) {
    throw std::invalid_argument("DistributedAuctioneer: no bidders configured");
  }
  // Validate the task graph eagerly so misconfigurations fail at setup, not
  // mid-protocol.
  TaskGraph graph = adapter_->build(spec_.num_bidders, spec_.m, spec_.k);
  if (auto err = graph.validate(spec_.m, spec_.k)) {
    throw std::invalid_argument("DistributedAuctioneer: invalid task graph: " + *err);
  }
}

EngineConfig DistributedAuctioneer::engine_config() const {
  EngineConfig cfg;
  cfg.m = spec_.m;
  cfg.k = spec_.k;
  cfg.num_bidders = spec_.num_bidders;
  cfg.limits = spec_.limits;
  cfg.agreement_mode = spec_.agreement_mode;
  return cfg;
}

std::unique_ptr<ProviderEngine> DistributedAuctioneer::make_engine(
    blocks::Endpoint& endpoint, auction::Ask my_ask) const {
  return std::make_unique<ProviderEngine>(endpoint, engine_config(), *adapter_,
                                          my_ask);
}

std::size_t DistributedAuctioneer::parallelism() const {
  return max_parallelism(spec_.m, spec_.k);
}

auction::AuctionOutcome combine_outcomes(
    std::span<const auction::AuctionOutcome> per_provider) {
  if (per_provider.empty()) {
    return Bottom{AbortReason::kProtocolViolation, "no provider outputs"};
  }
  const auto& first = per_provider.front();
  if (first.is_bottom()) {
    return Bottom{first.bottom().reason, first.bottom().detail};
  }
  for (const auto& o : per_provider) {
    if (o.is_bottom()) return Bottom{o.bottom().reason, o.bottom().detail};
    if (!(o.value() == first.value())) {
      return Bottom{AbortReason::kOutputMismatch,
                    "providers emitted different results"};
    }
  }
  return first;
}

}  // namespace dauct::core
