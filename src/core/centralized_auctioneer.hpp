// Centralized (trusted) auctioneer — the baseline the paper compares against.
//
// Runs the allocation algorithm A directly on the collected bids, as the
// single trusted entity the paper argues does not exist in fully
// decentralized systems. Used (a) as the reference implementation the
// distributed simulation must match bit-for-bit given the same seed, and
// (b) as the "Centralised" series of Figs. 4–5.
#pragma once

#include <memory>

#include "core/adapters.hpp"

namespace dauct::core {

class CentralizedAuctioneer {
 public:
  explicit CentralizedAuctioneer(std::shared_ptr<const AuctionAdapter> adapter);

  /// Run A on `instance` with shared randomness `seed`.
  auction::AuctionResult run(const auction::AuctionInstance& instance,
                             std::uint64_t seed) const;

  const AuctionAdapter& adapter() const { return *adapter_; }

 private:
  std::shared_ptr<const AuctionAdapter> adapter_;
};

}  // namespace dauct::core
