#include "core/provider_engine.hpp"

#include <stdexcept>

#include "common/log.hpp"
#include "serde/auction_codec.hpp"
#include "serde/codec.hpp"

namespace dauct::core {

namespace {
TaskGraph build_validated(const AuctionAdapter& adapter, const EngineConfig& cfg) {
  if (cfg.m <= 2 * cfg.k) {
    throw std::invalid_argument(
        "ProviderEngine: the rational consensus block requires m > 2k");
  }
  TaskGraph graph = adapter.build(cfg.num_bidders, cfg.m, cfg.k);
  if (auto err = graph.validate(cfg.m, cfg.k)) {
    throw std::invalid_argument("ProviderEngine: invalid task graph: " + *err);
  }
  return graph;
}
}  // namespace

ProviderEngine::ProviderEngine(blocks::Endpoint& endpoint, const EngineConfig& config,
                               const AuctionAdapter& adapter, auction::Ask my_ask)
    : endpoint_(endpoint),
      config_(config),
      my_ask_(my_ask),
      bid_agreement_(endpoint_, "ba", config.num_bidders, config.limits,
                     config.agreement_mode),
      allocator_(endpoint_, "alloc", build_validated(adapter, config), config.k),
      ask_topic_("ask/x"),
      asks_(config.m),
      abort_topic_("abort") {}

void ProviderEngine::start(const std::vector<auction::Bid>& my_bids) {
  // Ask exchange and bid agreement run concurrently from the start.
  serde::Writer w;
  w.u32(my_ask_.provider);
  w.money(my_ask_.unit_cost);
  w.money(my_ask_.capacity);
  endpoint_.broadcast(ask_topic_, w.take());
  asks_.arm(endpoint_, ask_topic_);
  bid_agreement_.start(my_bids);
}

void ProviderEngine::local_abort(Bottom bottom) {
  if (outcome_) return;
  asks_.cancel();
  outcome_ = auction::AuctionOutcome(bottom);
  if (!abort_sent_) {
    abort_sent_ = true;
    serde::Writer w;
    w.u8(static_cast<std::uint8_t>(bottom.reason));
    endpoint_.broadcast(abort_topic_, w.take());
  }
}

void ProviderEngine::maybe_start_allocator() {
  if (allocator_started_ || outcome_) return;
  if (!agreed_bids_ || !asks_.complete()) return;
  allocator_started_ = true;

  auction::AuctionInstance instance;
  instance.bids = *agreed_bids_;
  instance.asks = ask_vector_;
  allocator_.start(serde::encode_instance(instance));
  if (allocator_.done()) finish_from_allocator();
}

void ProviderEngine::finish_from_allocator() {
  if (outcome_) return;
  const auto& r = *allocator_.result();
  if (r.is_bottom()) {
    local_abort(r.bottom());
    return;
  }
  auto result = serde::decode_result(BytesView(r.value()));
  if (!result) {
    local_abort(Bottom{AbortReason::kProtocolViolation, "undecodable final result"});
    return;
  }
  outcome_ = auction::AuctionOutcome(std::move(*result));
}

void ProviderEngine::on_message(const net::Message& msg) {
  if (msg.topic == abort_topic_) {
    if (!outcome_ && msg.from < config_.m) {
      DAUCT_DEBUG("provider " << endpoint_.self() << ": cascaded abort from "
                              << msg.from);
      asks_.cancel();
      outcome_ = auction::AuctionOutcome(
          Bottom{AbortReason::kCascaded,
                 "abort notified by provider " + std::to_string(msg.from)});
    }
    return;
  }
  if (outcome_) return;  // finished: ignore stragglers

  if (msg.topic == ask_topic_) {
    serde::Reader r(BytesView(msg.payload));
    auction::Ask ask;
    ask.provider = r.u32();
    ask.unit_cost = r.money();
    ask.capacity = r.money();
    if (!r.at_end() || ask.provider != msg.from || ask.capacity.is_negative()) {
      local_abort(Bottom{AbortReason::kProtocolViolation,
                         "malformed ask from provider " + std::to_string(msg.from)});
      return;
    }
    if (!asks_.add(msg.from, msg.payload)) {
      local_abort(Bottom{AbortReason::kProtocolViolation, "duplicate ask"});
      return;
    }
    if (asks_.complete()) {
      ask_vector_.clear();
      for (NodeId j = 0; j < config_.m; ++j) {
        serde::Reader rr(BytesView(asks_.payloads()[j]));
        auction::Ask a;
        a.provider = rr.u32();
        a.unit_cost = rr.money();
        a.capacity = rr.money();
        ask_vector_.push_back(a);
      }
      maybe_start_allocator();
    }
    return;
  }

  if (bid_agreement_.handle(msg)) {
    if (bid_agreement_.done() && !agreed_bids_ && !outcome_) {
      const auto& r = *bid_agreement_.result();
      if (r.is_bottom()) {
        local_abort(r.bottom());
      } else {
        agreed_bids_ = r.value();
        maybe_start_allocator();
      }
    }
    return;
  }

  if (allocator_.handle(msg)) {
    if (allocator_.done()) finish_from_allocator();
    return;
  }

  DAUCT_DEBUG("provider " << endpoint_.self() << ": unroutable topic '" << msg.topic
                          << "'");
}

}  // namespace dauct::core
