// Output Agreement: the final cross-validation of the simulation.
//
// The outcome of a simulation is (x, p) only "if all providers output this
// pair" (§3.2) — so before emitting, every provider broadcasts the digest of
// its final result and verifies everyone computed the same bytes. Any
// mismatch collapses the outcome to ⊥ at every correct provider. This is
// the last task's data-transfer step specialized to S = O = all providers,
// with digests instead of full results (every provider already holds its own
// copy).
#pragma once

#include "blocks/block.hpp"
#include "common/outcome.hpp"
#include "crypto/sha256.hpp"

namespace dauct::blocks {

class OutputAgreement {
 public:
  OutputAgreement(Endpoint& endpoint, std::string topic_prefix);

  /// Begin agreement on this provider's result bytes.
  void start(Bytes my_result);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  /// On success: the agreed result bytes (== the local ones).
  const std::optional<Outcome<Bytes>>& result() const { return result_; }

 private:
  void maybe_decide();

  Endpoint& endpoint_;
  net::Topic topic_;
  RoundCollector digests_;
  Bytes my_result_;
  Bytes my_digest_;  ///< sha256(my_result_), hashed once at start()
  bool started_ = false;
  std::optional<Outcome<Bytes>> result_;
};

}  // namespace dauct::blocks
