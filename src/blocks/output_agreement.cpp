#include "blocks/output_agreement.hpp"

namespace dauct::blocks {

OutputAgreement::OutputAgreement(Endpoint& endpoint, std::string topic_prefix)
    : endpoint_(endpoint),
      topic_(topic_join(topic_prefix, "digest")),
      digests_(endpoint.num_providers()) {}

void OutputAgreement::start(Bytes my_result) {
  my_result_ = std::move(my_result);
  my_digest_ = crypto::digest_bytes(crypto::sha256(BytesView(my_result_)));
  started_ = true;
  endpoint_.broadcast(topic_, my_digest_);
  digests_.arm(endpoint_, topic_);
  maybe_decide();
}

bool OutputAgreement::handle(const net::Message& msg) {
  if (msg.topic != topic_) return false;
  if (result_) return true;
  if (msg.payload.size() != 32) {
    result_ = Outcome<Bytes>(
        Bottom{AbortReason::kProtocolViolation, "malformed output digest"});
    digests_.cancel();
    return true;
  }
  if (!digests_.add(msg.from, msg.payload)) {
    result_ = Outcome<Bytes>(
        Bottom{AbortReason::kProtocolViolation, "duplicate output digest"});
    digests_.cancel();
    return true;
  }
  maybe_decide();
  return true;
}

void OutputAgreement::maybe_decide() {
  if (result_ || !started_ || !digests_.complete()) return;
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    if (digests_.payloads()[j] != my_digest_) {
      result_ = Outcome<Bytes>(
          Bottom{AbortReason::kOutputMismatch,
                 "output digest differs at provider " + std::to_string(j)});
      digests_.cancel();
      return;
    }
  }
  result_ = Outcome<Bytes>(my_result_);
}

}  // namespace dauct::blocks
