// Input Validation block (paper §4.2, Property 3).
//
// Each provider broadcasts a digest of its allocator input; if any two
// digests differ, every correct provider outputs ⊥. This is the paper's
// "simple implementation ... providers broadcasting their vectors of bids
// and outputting ⊥ when two different vectors are detected" — we broadcast
// the SHA-256 digest instead of the full vector (same detection power,
// constant message size).
//
// Property 3: (1) two honest providers with different inputs both output ⊥;
// (2) all honest with the same input b⃗ output b⃗; (3) k-resiliency for
// solution preference given equal inputs.
#pragma once

#include "blocks/block.hpp"
#include "common/outcome.hpp"
#include "crypto/sha256.hpp"

namespace dauct::blocks {

class InputValidation {
 public:
  InputValidation(Endpoint& endpoint, std::string topic_prefix);

  /// Begin validation of `input` (the serialized allocator input).
  void start(Bytes input);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  /// On success, the outcome carries the (locally kept) validated input.
  const std::optional<Outcome<Bytes>>& result() const { return result_; }

 private:
  void maybe_decide();

  Endpoint& endpoint_;
  net::Topic topic_;
  RoundCollector digests_;
  Bytes input_;
  crypto::Digest my_digest_{};
  bool started_ = false;
  std::optional<Outcome<Bytes>> result_;
};

}  // namespace dauct::blocks
