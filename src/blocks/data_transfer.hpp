// Data Transfer block (paper §4.2, Property 5).
//
// A source set S of providers (the executors of a task, |S| ≥ k+1) each
// broadcast their copy of the task result to the receiver set O. A receiver
// that sees two different values outputs ⊥; otherwise it outputs the common
// value. With |S| > k, a coalition cannot forge a value accepted by honest
// receivers: at least one honest source broadcasts the true value, so a
// forgery produces a detectable mismatch.
//
// A node may be in S, in O, in both, or in neither (then it completes
// immediately with no value — kNotParticipating).
#pragma once

#include <vector>

#include "blocks/block.hpp"
#include "common/outcome.hpp"
#include "crypto/sha256.hpp"

namespace dauct::blocks {

class DataTransfer {
 public:
  /// `sources` and `receivers` are sorted provider-id sets.
  DataTransfer(Endpoint& endpoint, std::string topic_prefix,
               std::vector<NodeId> sources, std::vector<NodeId> receivers);

  /// `my_value` must be set iff this provider is a source.
  void start(std::optional<Bytes> my_value);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  /// For receivers: the transferred value or ⊥. For pure sources /
  /// non-participants: an empty value (success) once their duty is done.
  const std::optional<Outcome<Bytes>>& result() const { return result_; }

  bool is_source() const { return is_source_; }
  bool is_receiver() const { return is_receiver_; }

 private:
  void maybe_decide();

  Endpoint& endpoint_;
  net::Topic topic_;
  std::vector<NodeId> sources_;
  bool is_source_ = false;
  bool is_receiver_ = false;

  // Cross-validation is digest-based (like input validation / output
  // agreement already are): one owned copy of the first-arriving value plus a
  // 32-byte digest per source, instead of a full payload copy per source.
  // Digests come from the Message-level cache, so each payload is hashed at
  // most once.
  std::vector<crypto::Digest> digests_;  // by source rank
  std::vector<bool> seen_;               // by source rank
  SharedBytes value_;                    // first received copy (aliased)
  bool have_value_ = false;
  std::size_t num_received_ = 0;
  std::optional<Outcome<Bytes>> result_;
};

}  // namespace dauct::blocks
