#include "blocks/bid_agreement.hpp"

#include "serde/auction_codec.hpp"
#include "serde/bitstream.hpp"

namespace dauct::blocks {

namespace {
constexpr std::size_t kBitsPerBid = serde::kBidEncodingBytes * 8;
}

const char* agreement_mode_name(AgreementMode mode) {
  switch (mode) {
    case AgreementMode::kPerBitMessages: return "per-bit-messages";
    case AgreementMode::kBitStream: return "bit-stream";
    case AgreementMode::kValueBatched: return "value-batched";
  }
  return "?";
}

BidAgreement::BidAgreement(Endpoint& endpoint, std::string topic_prefix,
                           std::size_t num_bidders, auction::BidLimits limits,
                           AgreementMode mode)
    : endpoint_(endpoint),
      prefix_(std::move(topic_prefix)),
      num_bidders_(num_bidders),
      limits_(limits),
      mode_(mode) {
  switch (mode_) {
    case AgreementMode::kValueBatched:
      value_consensus_ = std::make_unique<consensus::BatchedConsensus>(
          endpoint_, topic_join(prefix_, "vb"), num_bidders_);
      break;
    case AgreementMode::kBitStream:
      stream_consensus_ = std::make_unique<consensus::StreamConsensus>(
          endpoint_, topic_join(prefix_, "bs"), num_bidders_ * kBitsPerBid);
      break;
    case AgreementMode::kPerBitMessages:
      bit_instances_.reserve(num_bidders_ * kBitsPerBid);
      for (std::size_t b = 0; b < num_bidders_ * kBitsPerBid; ++b) {
        bit_instances_.push_back(std::make_unique<consensus::BitConsensus>(
            endpoint_, topic_join(prefix_, "bit/" + std::to_string(b))));
      }
      perbit_counted_.assign(bit_instances_.size(), false);
      perbit_remaining_ = bit_instances_.size();
      break;
  }
}

BidAgreement::~BidAgreement() = default;

void BidAgreement::start(const std::vector<auction::Bid>& my_bids) {
  // Serialize each slot; absent slots become neutral bids.
  std::vector<Bytes> encoded(num_bidders_);
  for (std::size_t i = 0; i < num_bidders_; ++i) {
    const auction::Bid bid = i < my_bids.size() ? my_bids[i]
                                                : auction::neutral_bid(static_cast<BidderId>(i));
    encoded[i] = serde::encode_bid_fixed(bid);
  }

  switch (mode_) {
    case AgreementMode::kValueBatched:
      value_consensus_->start(encoded);
      break;
    case AgreementMode::kBitStream: {
      Bytes stream;
      for (const Bytes& e : encoded) append(stream, e);
      stream_consensus_->start(serde::to_bits(stream));
      break;
    }
    case AgreementMode::kPerBitMessages: {
      Bytes stream;
      for (const Bytes& e : encoded) append(stream, e);
      const std::vector<bool> bits = serde::to_bits(stream);
      for (std::size_t b = 0; b < bit_instances_.size(); ++b) {
        bit_instances_[b]->start(bits[b]);
      }
      break;
    }
  }
}

auction::Bid BidAgreement::sanitize(BidderId i, BytesView encoded) const {
  // Paper: "j converts the stream to a bid b_i and outputs b*_i, where
  // b*_i = b_i if b_i is valid, or b*_i is some pre-determined valid bid
  // otherwise." Our pre-determined bid is the neutral bid.
  auto bid = serde::decode_bid_fixed(encoded);
  if (!bid || bid->bidder != i || !limits_.valid(*bid)) {
    return auction::neutral_bid(i);
  }
  return *bid;
}

void BidAgreement::finish_from_bytes(const std::vector<Bytes>& agreed_slots) {
  std::vector<auction::Bid> out;
  out.reserve(num_bidders_);
  for (std::size_t i = 0; i < num_bidders_; ++i) {
    out.push_back(sanitize(static_cast<BidderId>(i), agreed_slots[i]));
  }
  result_ = Outcome<std::vector<auction::Bid>>(std::move(out));
}

void BidAgreement::finish_from_bits(const std::vector<bool>& agreed_bits) {
  const Bytes stream = serde::from_bits(agreed_bits);
  std::vector<auction::Bid> out;
  out.reserve(num_bidders_);
  for (std::size_t i = 0; i < num_bidders_; ++i) {
    BytesView slice(stream.data() + i * serde::kBidEncodingBytes,
                    serde::kBidEncodingBytes);
    out.push_back(sanitize(static_cast<BidderId>(i), slice));
  }
  result_ = Outcome<std::vector<auction::Bid>>(std::move(out));
}

void BidAgreement::check_perbit_done() {
  std::vector<bool> bits(bit_instances_.size());
  for (std::size_t b = 0; b < bit_instances_.size(); ++b) {
    const auto& r = bit_instances_[b]->result();
    if (!r) return;  // still running
    if (r->is_bottom()) {
      result_ = Outcome<std::vector<auction::Bid>>(r->bottom());
      return;
    }
    bits[b] = r->value();
  }
  finish_from_bits(bits);
}

bool BidAgreement::handle(const net::Message& msg) {
  if (!topic_has_prefix(msg.topic.str(), prefix_)) return false;
  if (result_) return true;

  switch (mode_) {
    case AgreementMode::kValueBatched: {
      if (!value_consensus_->handle(msg)) return false;
      if (value_consensus_->done()) {
        const auto& r = *value_consensus_->result();
        if (r.is_bottom()) {
          result_ = Outcome<std::vector<auction::Bid>>(r.bottom());
        } else {
          finish_from_bytes(r.value());
        }
      }
      return true;
    }
    case AgreementMode::kBitStream: {
      if (!stream_consensus_->handle(msg)) return false;
      if (stream_consensus_->done()) {
        const auto& r = *stream_consensus_->result();
        if (r.is_bottom()) {
          result_ = Outcome<std::vector<auction::Bid>>(r.bottom());
        } else {
          finish_from_bits(r.value());
        }
      }
      return true;
    }
    case AgreementMode::kPerBitMessages: {
      // Route by the bit index embedded in the topic:
      // "<prefix>/bit/<idx>/{v,e}".
      const std::string& topic = msg.topic.str();
      const std::string bit_prefix = topic_join(prefix_, "bit");
      if (!topic_has_prefix(topic, bit_prefix)) return false;
      const std::size_t idx_begin = bit_prefix.size() + 1;
      std::size_t idx = 0;
      std::size_t pos = idx_begin;
      while (pos < topic.size() && topic[pos] >= '0' && topic[pos] <= '9') {
        idx = idx * 10 + static_cast<std::size_t>(topic[pos] - '0');
        ++pos;
      }
      if (pos == idx_begin || idx >= bit_instances_.size()) return false;
      if (bit_instances_[idx]->handle(msg)) {
        if (bit_instances_[idx]->done() && !perbit_counted_[idx]) {
          perbit_counted_[idx] = true;
          const auto& r = *bit_instances_[idx]->result();
          if (r.is_bottom()) {
            result_ = Outcome<std::vector<auction::Bid>>(r.bottom());
            return true;
          }
          if (--perbit_remaining_ == 0) check_perbit_done();
        }
        return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace dauct::blocks
