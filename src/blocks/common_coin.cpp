#include "blocks/common_coin.hpp"

#include <cmath>

#include "crypto/hmac.hpp"
#include "serde/codec.hpp"

namespace dauct::blocks {

DistributionSpec DistributionSpec::uniform01() {
  DistributionSpec s;
  s.kind = Kind::kUniform01;
  return s;
}

DistributionSpec DistributionSpec::uniform_int(std::int64_t lo, std::int64_t hi) {
  DistributionSpec s;
  s.kind = Kind::kUniformInt;
  s.lo = lo;
  s.hi = hi;
  return s;
}

DistributionSpec DistributionSpec::exponential(double lambda) {
  DistributionSpec s;
  s.kind = Kind::kExponential;
  s.lambda = lambda;
  return s;
}

CommonCoin::CommonCoin(Endpoint& endpoint, std::string topic_prefix)
    : endpoint_(endpoint),
      commit_topic_(topic_join(topic_prefix, "commit")),
      reveal_topic_(topic_join(topic_prefix, "reveal")),
      tag_(crypto::derive_tag({"dauct/common-coin", topic_prefix})),
      commits_(endpoint.num_providers()),
      reveals_(endpoint.num_providers()) {}

void CommonCoin::start(const DistributionSpec& spec) {
  spec_ = spec;
  const std::uint64_t share = endpoint_.rng().next_u64();
  auto [commitment, opening] = crypto::commit(tag_, share, endpoint_.rng());
  my_opening_ = opening;
  endpoint_.broadcast(commit_topic_,
                      Bytes(commitment.digest.begin(), commitment.digest.end()));
  commits_.arm(endpoint_, commit_topic_);
}

void CommonCoin::abort(AbortReason reason, std::string detail) {
  if (!result_) result_ = Outcome<CoinValue>(Bottom{reason, std::move(detail)});
  commits_.cancel();
  reveals_.cancel();
}

bool CommonCoin::handle(const net::Message& msg) {
  if (msg.topic == commit_topic_) {
    if (result_) return true;
    if (msg.payload.size() != 32) {
      abort(AbortReason::kProtocolViolation, "malformed commitment");
      return true;
    }
    if (!commits_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate commitment");
      return true;
    }
    maybe_reveal();
    maybe_decide();
    return true;
  }
  if (msg.topic == reveal_topic_) {
    if (result_) return true;
    if (msg.payload.size() != 8 + 32) {
      abort(AbortReason::kInvalidCommitment, "malformed reveal");
      return true;
    }
    if (!reveals_.add(msg.from, msg.payload)) {
      abort(AbortReason::kProtocolViolation, "duplicate reveal");
      return true;
    }
    maybe_decide();
    return true;
  }
  return false;
}

void CommonCoin::maybe_reveal() {
  // Reveal only after holding *all* commitments: nobody learns any share
  // before everyone is bound.
  if (revealed_ || !commits_.complete()) return;
  revealed_ = true;
  serde::Writer w(8 + 32);
  w.u64(my_opening_.value);
  w.raw(BytesView(my_opening_.nonce.data(), my_opening_.nonce.size()));
  endpoint_.broadcast(reveal_topic_, w.take());
  reveals_.arm(endpoint_, reveal_topic_);
}

void CommonCoin::maybe_decide() {
  if (result_ || !commits_.complete() || !reveals_.complete()) return;

  std::uint64_t sum = 0;
  for (NodeId j = 0; j < endpoint_.num_providers(); ++j) {
    serde::Reader r(BytesView(reveals_.payloads()[j]));
    crypto::Opening opening;
    opening.value = r.u64();
    const BytesView nonce = r.raw_view(32);
    std::copy(nonce.begin(), nonce.end(), opening.nonce.begin());
    if (!r.at_end()) {
      abort(AbortReason::kInvalidCommitment, "truncated reveal");
      return;
    }
    crypto::Commitment commitment;
    const BytesView commit = commits_.payloads()[j].view();
    std::copy(commit.begin(), commit.end(), commitment.digest.begin());
    if (!crypto::verify(tag_, commitment, opening)) {
      abort(AbortReason::kInvalidCommitment,
            "reveal does not open commitment of provider " + std::to_string(j));
      return;
    }
    sum += opening.value;  // mod 2^64: uniform if any share is uniform
  }

  CoinValue value;
  value.raw = sum;
  const double u = static_cast<double>(sum >> 11) * 0x1.0p-53;  // [0,1)
  switch (spec_.kind) {
    case DistributionSpec::Kind::kSeed64:
      value.real = u;
      value.integer = static_cast<std::int64_t>(sum);
      break;
    case DistributionSpec::Kind::kUniform01:
      value.real = u;
      break;
    case DistributionSpec::Kind::kUniformInt: {
      const auto span =
          static_cast<std::uint64_t>(spec_.hi - spec_.lo) + 1;  // hi >= lo
      value.integer = spec_.lo + static_cast<std::int64_t>(sum % span);
      value.real = static_cast<double>(value.integer);
      break;
    }
    case DistributionSpec::Kind::kExponential: {
      const double clamped = u >= 1.0 ? 0.9999999999999999 : u;
      value.real = -std::log1p(-clamped) / spec_.lambda;
      break;
    }
  }
  result_ = Outcome<CoinValue>(value);
}

}  // namespace dauct::blocks
