// Bid Agreement block (paper §4.1, Property 1).
//
// Input at provider j: the vector b⃗_j of bids submitted to j (one slot per
// bidder; the neutral bid where the bidder sent nothing or garbage).
// Output: an agreed vector b⃗ containing one *valid* bid per bidder, or ⊥.
//
// Guarantees (Property 1): (1) under honest execution, eventual agreement
// (all providers output the same vector) and validity (a bidder that sent
// the same bid b'_i to all providers gets b_i = b'_i); (2) k-resiliency for
// solution preference under m > 2k (inherited from the consensus layer).
//
// Three agreement modes, all semantically equivalent:
//  * kPerBitMessages — paper-literal: one rational-consensus *message flow*
//    per bit of the serialized bid (2·m broadcasts per bit). Ablation only.
//  * kBitStream      — per-bit consensus decisions, votes/echoes batched into
//    one message per round (the faithful default).
//  * kValueBatched   — value-level majority with digest echoes (production
//    mode; constant-size echo round).
//
// Invalid decoded bids (malformed bytes, out-of-limits, wrong bidder id, or
// a no-majority fallback) are replaced by the *pre-determined valid bid* the
// paper prescribes — the neutral bid that excludes that bidder.
#pragma once

#include <memory>
#include <vector>

#include "auction/types.hpp"
#include "blocks/block.hpp"
#include "consensus/batched_consensus.hpp"
#include "consensus/bit_consensus.hpp"
#include "consensus/stream_consensus.hpp"

namespace dauct::blocks {

enum class AgreementMode {
  kPerBitMessages,  ///< one message flow per bit (paper-literal; ablation)
  kBitStream,       ///< per-bit decisions, batched transport (default)
  kValueBatched,    ///< value-level majority, digest echoes (production)
};

const char* agreement_mode_name(AgreementMode mode);

class BidAgreement {
 public:
  BidAgreement(Endpoint& endpoint, std::string topic_prefix, std::size_t num_bidders,
               auction::BidLimits limits, AgreementMode mode);
  ~BidAgreement();

  /// `my_bids` must have one entry per bidder (index == BidderId); use the
  /// neutral bid for bidders that did not submit a valid bid to this
  /// provider by the deadline.
  void start(const std::vector<auction::Bid>& my_bids);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  const std::optional<Outcome<std::vector<auction::Bid>>>& result() const {
    return result_;
  }

 private:
  void finish_from_bytes(const std::vector<Bytes>& agreed_slots);
  void finish_from_bits(const std::vector<bool>& agreed_bits);
  auction::Bid sanitize(BidderId i, BytesView encoded) const;
  void check_perbit_done();

  Endpoint& endpoint_;
  std::string prefix_;
  std::size_t num_bidders_;
  auction::BidLimits limits_;
  AgreementMode mode_;

  // Exactly one of these is active, per mode.
  std::unique_ptr<consensus::BatchedConsensus> value_consensus_;
  std::unique_ptr<consensus::StreamConsensus> stream_consensus_;
  std::vector<std::unique_ptr<consensus::BitConsensus>> bit_instances_;
  std::vector<bool> perbit_counted_;
  std::size_t perbit_remaining_ = 0;

  std::optional<Outcome<std::vector<auction::Bid>>> result_;
};

}  // namespace dauct::blocks
