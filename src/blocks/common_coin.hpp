// Common Coin block (paper §4.2, Property 4; scheme of Abraham–Dolev–Halpern).
//
// Every provider commits to a random 64-bit share before learning anyone
// else's, then reveals; the coin value is the sum of all shares mod 2^64 —
// uniform as long as at least one provider picked uniformly. A provider that
// reveals a value incompatible with its commitment (or sends garbage) makes
// every correct provider output ⊥.
//
// The output is distributed according to an input distribution Π: the raw
// uniform u64 is pushed through Π's transform. In the allocator framework,
// Π = Seed64 (the shared PRNG seed for the replicated randomized algorithm).
//
// A rushing coalition member that dislikes the revealed outcome can withhold
// its reveal, but this only yields ⊥ (utility 0) — it can never *bias* the
// value. That is exactly the "k-resiliency for solution preference"
// guarantee Property 4 asks for.
#pragma once

#include "blocks/block.hpp"
#include "common/outcome.hpp"
#include "crypto/commitment.hpp"

namespace dauct::blocks {

/// The distribution Π the coin output must follow.
struct DistributionSpec {
  enum class Kind { kSeed64, kUniform01, kUniformInt, kExponential };
  Kind kind = Kind::kSeed64;
  std::int64_t lo = 0, hi = 0;  ///< kUniformInt: inclusive range
  double lambda = 1.0;          ///< kExponential: rate

  static DistributionSpec seed64() { return {}; }
  static DistributionSpec uniform01();
  static DistributionSpec uniform_int(std::int64_t lo, std::int64_t hi);
  static DistributionSpec exponential(double lambda);
};

/// The coin outcome: the raw uniform word plus the Π-transformed views.
struct CoinValue {
  std::uint64_t raw = 0;   ///< uniform u64 (use as PRNG seed)
  double real = 0.0;       ///< Π-transformed real value
  std::int64_t integer = 0;  ///< Π-transformed integer (kUniformInt)
};

class CommonCoin {
 public:
  CommonCoin(Endpoint& endpoint, std::string topic_prefix);

  /// Begin a coin flip with distribution `spec`.
  void start(const DistributionSpec& spec);

  bool handle(const net::Message& msg);

  bool done() const { return result_.has_value(); }
  const std::optional<Outcome<CoinValue>>& result() const { return result_; }

 private:
  void maybe_reveal();
  void maybe_decide();
  void abort(AbortReason reason, std::string detail);

  Endpoint& endpoint_;
  net::Topic commit_topic_;
  net::Topic reveal_topic_;
  crypto::Digest tag_{};

  DistributionSpec spec_;
  crypto::Opening my_opening_{};
  RoundCollector commits_;
  RoundCollector reveals_;
  bool revealed_ = false;
  std::optional<Outcome<CoinValue>> result_;
};

}  // namespace dauct::blocks
